//! **printed-neuromorphic** — a from-scratch Rust reproduction of
//! *Highly-Bespoke Robust Printed Neuromorphic Circuits* (Zhao et al.,
//! DATE 2023).
//!
//! This facade crate re-exports the whole workspace and hosts the runnable
//! examples and cross-crate integration tests. The layers, bottom-up:
//!
//! * [`linalg`] — dense matrices, LU solves, statistics.
//! * [`qmc`] — Sobol'/Halton quasi Monte-Carlo samplers.
//! * [`spice`] — a DC circuit simulator (modified nodal analysis +
//!   Newton–Raphson) with a printed electrolyte-gated transistor model and
//!   the paper's two-stage nonlinear circuit netlists.
//! * [`fit`] — Levenberg–Marquardt fitting of the `ptanh` curve (Eq. 2).
//! * [`autodiff`] — reverse-mode tape autodiff with straight-through
//!   estimators and Adam/SGD.
//! * [`surrogate`] — the Sec. III-A pipeline: design-space sampling →
//!   simulation → curve fitting → the 13-layer surrogate network η̂(ω̃).
//! * [`datasets`] — the 13 benchmark classification tasks of Tab. II.
//! * [`pnn`] — printed neural networks with learnable nonlinear circuits
//!   and variation-aware training (the paper's contribution).
//! * [`obs`] — structured observability: deterministic counters/histograms,
//!   span timers, and the opt-in `PNC_OBS` JSON-lines event sink.
//! * [`serve`] — the batched serving layer: artifact registry,
//!   micro-batching workers over compiled inference plans, and the
//!   framed-TCP front door with bounded-queue backpressure.
//!
//! # Quickstart
//!
//! ```no_run
//! use printed_neuromorphic::artifacts;
//! use printed_neuromorphic::pnn::{
//!     mc_evaluate, LabeledData, Pnn, PnnConfig, TrainConfig, Trainer, VariationModel,
//! };
//! use printed_neuromorphic::datasets::generators::iris;
//! use std::sync::Arc;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let surrogate = Arc::new(artifacts::default_surrogate()?);
//! let data = iris();
//! let (train, val, test) = data.split(1);
//!
//! let mut pnn = Pnn::new(
//!     PnnConfig::for_dataset(data.num_features(), data.num_classes),
//!     surrogate,
//! )?;
//! Trainer::new(TrainConfig {
//!     variation: VariationModel::Uniform { epsilon: 0.10 },
//!     ..TrainConfig::default()
//! })
//! .train(
//!     &mut pnn,
//!     LabeledData::new(&train.features, &train.labels)?,
//!     LabeledData::new(&val.features, &val.labels)?,
//! )?;
//!
//! let stats = mc_evaluate(
//!     &pnn,
//!     LabeledData::new(&test.features, &test.labels)?,
//!     &VariationModel::Uniform { epsilon: 0.10 },
//!     100,
//!     0,
//! )?;
//! println!("accuracy under 10% printing variation: {:.3} ± {:.3}", stats.mean, stats.std);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use pnc_autodiff as autodiff;
pub use pnc_core as pnn;
pub use pnc_datasets as datasets;
pub use pnc_fit as fit;
pub use pnc_linalg as linalg;
pub use pnc_obs as obs;
pub use pnc_qmc as qmc;
pub use pnc_serve as serve;
pub use pnc_spice as spice;
pub use pnc_surrogate as surrogate;

pub mod artifacts {
    //! Shared trained artifacts, cached on disk so examples and experiments
    //! pay the surrogate-training cost once.

    use pnc_surrogate::{DatasetConfig, SurrogateError, SurrogateModel, TrainConfig};
    use std::path::PathBuf;

    /// Directory where cached artifacts live (`$PNC_ARTIFACT_DIR`, default
    /// `artifacts/` under the workspace root).
    pub fn artifact_dir() -> PathBuf {
        std::env::var_os("PNC_ARTIFACT_DIR")
            .map(PathBuf::from)
            .unwrap_or_else(|| PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("artifacts"))
    }

    /// The default surrogate model: 2000 QMC design points, the paper's
    /// 13-layer network. Trains once (about a minute in release mode) and is
    /// cached as JSON afterwards.
    ///
    /// # Errors
    ///
    /// Propagates pipeline and I/O failures.
    pub fn default_surrogate() -> Result<SurrogateModel, SurrogateError> {
        let path = artifact_dir().join("surrogate-default.json");
        let (model, report) = SurrogateModel::load_or_train(
            &path,
            &DatasetConfig {
                samples: 2000,
                sweep_points: 61,
            },
            &TrainConfig {
                max_epochs: 4000,
                patience: 400,
                ..TrainConfig::default()
            },
        )?;
        if let Some(r) = report {
            eprintln!(
                "trained surrogate (cached at {}): val mse {:.5}, test R2 {:.3}",
                path.display(),
                r.val_mse,
                r.test_r2
            );
        }
        Ok(model)
    }

    /// A small, fast surrogate for tests and smoke runs: 300 design points
    /// and a shallow network. Cached separately from the default.
    ///
    /// # Errors
    ///
    /// Propagates pipeline and I/O failures.
    pub fn quick_surrogate() -> Result<SurrogateModel, SurrogateError> {
        let path = artifact_dir().join("surrogate-quick.json");
        let (model, _) = SurrogateModel::load_or_train(
            &path,
            &DatasetConfig {
                samples: 300,
                sweep_points: 41,
            },
            &TrainConfig {
                layer_sizes: vec![10, 9, 7, 5, 4],
                max_epochs: 1500,
                patience: 300,
                ..TrainConfig::default()
            },
        )?;
        Ok(model)
    }
}
