//! Cache-blocked dense kernels behind [`Matrix`]'s hot methods.
//!
//! The inner loops here are the workspace's floating-point hot path: every
//! autodiff forward/backward pass, every Levenberg–Marquardt normal-equation
//! build, and every assembled-Jacobian product funnels into them. Three rules
//! govern the implementations:
//!
//! 1. **Bit-identical accumulation order.** For every output element
//!    `out[i][j]` the contraction index `k` is visited in ascending order, no
//!    matter how the loops are blocked or which variant (`matmul`,
//!    `matmul_nt`, `matmul_tn`, row-partitioned parallel) produced it. This is
//!    what lets the property tests compare every variant against the naive
//!    reference with exact equality, and what keeps the bit-identical-at-any-
//!    thread-count invariant intact.
//! 2. **No data-dependent branches.** The old kernel skipped `a == 0.0`
//!    multiplicands, which made timing vary with weight sparsity and would
//!    defeat blocking. All kernels here are branch-free in the inner loop.
//! 3. **No allocation in `_into` variants.** Callers that hold a
//!    [`Workspace`](crate::Workspace) can run matmuls in steady state without
//!    touching the allocator.
//!
//! The block size is tunable via the `PNC_MATMUL_BLOCK` environment variable
//! (read once per process); any blocking yields the same bits, so the knob is
//! purely a performance control.

use crate::Matrix;
use std::sync::OnceLock;

/// Default cache block (in elements) for the `i`/`k`/`j` loops: 64×64 `f64`
/// tiles are 32 KiB — an A-tile plus a B-tile stay resident in a typical
/// 64 KiB–1 MiB private cache with room for the output rows.
pub const DEFAULT_BLOCK: usize = 64;

/// Environment variable overriding the matmul cache-block size process-wide.
pub const BLOCK_ENV_VAR: &str = "PNC_MATMUL_BLOCK";

const MIN_BLOCK: usize = 4;
const MAX_BLOCK: usize = 4096;

/// The cache-block size in effect: `PNC_MATMUL_BLOCK` clamped to
/// `[4, 4096]` when set to a positive integer, [`DEFAULT_BLOCK`] otherwise.
/// Read once per process; the choice never changes results, only speed.
pub fn block_size() -> usize {
    static BLOCK: OnceLock<usize> = OnceLock::new();
    *BLOCK.get_or_init(|| match std::env::var(BLOCK_ENV_VAR) {
        Ok(raw) => match raw.trim().parse::<usize>() {
            Ok(n) if n >= 1 => n.clamp(MIN_BLOCK, MAX_BLOCK),
            _ => DEFAULT_BLOCK,
        },
        Err(_) => DEFAULT_BLOCK,
    })
}

/// Blocked `out[rs..re] = a[rs..re] · b` over the half-open row band
/// `rs..re`. `out_band` must hold `(re - rs) * b.cols()` elements; it is
/// zeroed first. Shapes are the caller's responsibility.
///
/// The per-tile work is the register-tiled microkernel
/// [`gemm_f64_acc_strided`](crate::simd::gemm_f64_acc_strided). Tiles are
/// visited `i`-block then `k`-block, and the microkernel keeps `k`
/// ascending per output element, so the accumulation order — and therefore
/// every output bit — is identical to the naive `i`/`k`/`j` kernel for any
/// block size. Bands that fit a single cache block (`rows ≤ bs` and
/// `inner ≤ bs`) dispatch straight to one microkernel call with no blocking
/// loop — see the crossover note in DESIGN.md §11.
pub(crate) fn matmul_band_into(a: &Matrix, b: &Matrix, rs: usize, re: usize, out_band: &mut [f64]) {
    let inner = a.cols();
    let n = b.cols();
    out_band.fill(0.0);
    let rows = re - rs;
    if rows == 0 || inner == 0 || n == 0 {
        return;
    }
    let a_band = &a.as_slice()[rs * inner..re * inner];
    let bs = block_size();
    if rows <= bs && inner <= bs {
        // Unblocked fast path: the whole band is one tile, so the blocking
        // loop would only add overhead (the size-64 regression of PR 5).
        crate::simd::gemm_f64_acc_strided(
            a_band,
            inner,
            b.as_slice(),
            n,
            out_band,
            n,
            (rows, inner, n),
        );
        return;
    }
    let mut ib = 0;
    while ib < rows {
        let i_end = (ib + bs).min(rows);
        let mut kb = 0;
        while kb < inner {
            let k_end = (kb + bs).min(inner);
            crate::simd::gemm_f64_acc_strided(
                &a_band[ib * inner + kb..],
                inner,
                &b.as_slice()[kb * n..],
                n,
                &mut out_band[ib * n..],
                n,
                (i_end - ib, k_end - kb, n),
            );
            kb = k_end;
        }
        ib = i_end;
    }
}

/// Naive `i`/`k`/`j` reference matmul into `out_data` (zeroed first). Kept
/// branch-free and block-free as the bit-exactness oracle for the blocked
/// and parallel kernels, and as the pre-overhaul baseline for benchmarks.
pub(crate) fn matmul_reference_into(a: &Matrix, b: &Matrix, out_data: &mut [f64]) {
    let n = b.cols();
    out_data.fill(0.0);
    for i in 0..a.rows() {
        let a_row = a.row(i);
        let out_row = &mut out_data[i * n..(i + 1) * n];
        for (k, &aik) in a_row.iter().enumerate() {
            let b_row = b.row(k);
            for (o, &bv) in out_row.iter_mut().zip(b_row) {
                *o += aik * bv;
            }
        }
    }
}

/// `out = a · bᵀ` (both row-major) into `out_data`, fully overwritten. Each
/// output element is a dot product of two contiguous rows, so no transpose
/// is ever materialized; `k` ascends exactly as in
/// `a.matmul(&b.transpose())`.
pub(crate) fn matmul_nt_into_raw(a: &Matrix, b: &Matrix, out_data: &mut [f64]) {
    let n = b.rows();
    for i in 0..a.rows() {
        let a_row = a.row(i);
        let out_row = &mut out_data[i * n..(i + 1) * n];
        for (j, o) in out_row.iter_mut().enumerate() {
            let b_row = b.row(j);
            let mut acc = 0.0;
            for (&av, &bv) in a_row.iter().zip(b_row) {
                acc += av * bv;
            }
            *o = acc;
        }
    }
}

/// `out = aᵀ · b` (both row-major) into `out_data`, zeroed first. The
/// contraction index `k` (rows of `a` and `b`) is the outermost loop and
/// ascends, matching `a.transpose().matmul(&b)` bit for bit while streaming
/// both operands row-major.
pub(crate) fn matmul_tn_into_raw(a: &Matrix, b: &Matrix, out_data: &mut [f64]) {
    let n = b.cols();
    out_data.fill(0.0);
    for k in 0..a.rows() {
        let a_row = a.row(k);
        let b_row = b.row(k);
        for (i, &aki) in a_row.iter().enumerate() {
            let out_row = &mut out_data[i * n..(i + 1) * n];
            for (o, &bv) in out_row.iter_mut().zip(b_row) {
                *o += aki * bv;
            }
        }
    }
}

/// Row band boundaries for row-partitioned parallel work: contiguous bands
/// of at most `band` rows, in row order. Banding never changes results when
/// each output row depends only on its own inputs (matmul, the compiled
/// inference plans), so the band size is a pure tuning knob.
pub fn row_bands(rows: usize, band: usize) -> Vec<(usize, usize)> {
    let band = band.max(1);
    let mut bands = Vec::with_capacity(rows.div_ceil(band));
    let mut start = 0;
    while start < rows {
        let end = (start + band).min(rows);
        bands.push((start, end));
        start = end;
    }
    bands
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn block_size_is_positive_and_clamped() {
        let bs = block_size();
        assert!((MIN_BLOCK..=MAX_BLOCK).contains(&bs));
    }

    #[test]
    fn row_bands_cover_exactly() {
        for rows in [0usize, 1, 7, 32, 33, 100] {
            let bands = row_bands(rows, 32);
            let mut expect = 0;
            for &(s, e) in &bands {
                assert_eq!(s, expect);
                assert!(e > s);
                expect = e;
            }
            assert_eq!(expect, rows);
        }
    }
}
