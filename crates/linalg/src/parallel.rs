//! Thread-count control and deterministic ordered parallel mapping.
//!
//! Every parallel fan-out in the workspace (Monte-Carlo training draws,
//! SPICE sweep chunks, surrogate dataset characterization, seed search)
//! goes through [`ParallelConfig`], so one knob — programmatic or the
//! `PNC_NUM_THREADS` environment variable — governs them all.
//!
//! Determinism contract: [`ParallelConfig::ordered_par_map`] returns
//! results in input-index order no matter how work was scheduled, and the
//! per-item closures must not share mutable state. Callers then reduce the
//! returned `Vec` left-to-right, which makes every floating-point
//! reduction bit-identical across thread counts — the property
//! `training_is_deterministic_in_the_seed` and the 1-vs-N-thread tests
//! assert.

use rayon::prelude::*;
use serde::{DeError, Deserialize, Serialize, Value};

/// How many worker threads parallel sections may use.
///
/// Resolution order for the effective count:
/// 1. the `PNC_NUM_THREADS` environment variable, when set to a positive
///    integer (lets operators serialize or widen any binary without code
///    changes),
/// 2. the configured [`threads`](Self::threads), when non-zero,
/// 3. the ambient rayon thread count (available parallelism, or 1 inside
///    an outer parallel section so nesting does not oversubscribe).
///
/// # Examples
///
/// ```
/// use pnc_linalg::ParallelConfig;
///
/// let squares = ParallelConfig::with_threads(4)
///     .ordered_par_map(&[1.0_f64, 2.0, 3.0], |x| x * x);
/// assert_eq!(squares, vec![1.0, 4.0, 9.0]);
/// assert_eq!(ParallelConfig::serial().effective_threads(), 1);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ParallelConfig {
    /// Requested thread count; 0 means automatic.
    num_threads: usize,
}

impl ParallelConfig {
    /// Environment variable overriding the thread count process-wide.
    pub const ENV_VAR: &'static str = "PNC_NUM_THREADS";

    /// Automatic thread count (all available cores).
    pub fn automatic() -> Self {
        ParallelConfig { num_threads: 0 }
    }

    /// Single-threaded execution: every `ordered_par_map` degenerates to a
    /// plain serial loop with no pool setup.
    pub fn serial() -> Self {
        ParallelConfig { num_threads: 1 }
    }

    /// A fixed thread count; 0 means automatic.
    pub fn with_threads(num_threads: usize) -> Self {
        ParallelConfig { num_threads }
    }

    /// The configured (not resolved) thread count; 0 means automatic.
    pub fn threads(&self) -> usize {
        self.num_threads
    }

    /// The thread count a parallel section started now would use, after
    /// applying the `PNC_NUM_THREADS` override and automatic resolution.
    pub fn effective_threads(&self) -> usize {
        if let Ok(raw) = std::env::var(Self::ENV_VAR) {
            if let Ok(n) = raw.trim().parse::<usize>() {
                if n >= 1 {
                    return n;
                }
            }
        }
        if self.num_threads >= 1 {
            return self.num_threads;
        }
        rayon::current_num_threads().max(1)
    }

    /// Maps `f` over `items` on up to [`effective_threads`] workers and
    /// returns the results **in input order**. With one effective thread
    /// (or one item) this is exactly `items.iter().map(f).collect()` — the
    /// serial fallback costs no pool setup.
    ///
    /// [`effective_threads`]: Self::effective_threads
    pub fn ordered_par_map<T, R, F>(&self, items: &[T], f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(&T) -> R + Sync,
    {
        let threads = self.effective_threads();
        if threads <= 1 || items.len() <= 1 {
            return items.iter().map(f).collect();
        }
        let pool = match rayon::ThreadPoolBuilder::new().num_threads(threads).build() {
            Ok(pool) => pool,
            // Resource exhaustion at pool construction: degrade to the
            // serial path (identical results — the map is input-ordered).
            Err(_) => return items.iter().map(f).collect(),
        };
        pool.install(|| items.par_iter().map(&f).collect())
    }

    /// Fallible [`ordered_par_map`](Self::ordered_par_map): every item is
    /// evaluated, then the lowest-index error (if any) is returned — so the
    /// reported error does not depend on thread timing.
    pub fn try_ordered_par_map<T, R, E, F>(&self, items: &[T], f: F) -> Result<Vec<R>, E>
    where
        T: Sync,
        R: Send,
        E: Send,
        F: Fn(&T) -> Result<R, E> + Sync,
    {
        self.ordered_par_map(items, f).into_iter().collect()
    }
}

impl Serialize for ParallelConfig {
    fn to_value(&self) -> Value {
        Value::Object(vec![(
            "num_threads".to_string(),
            Value::U64(self.num_threads as u64),
        )])
    }
}

impl Deserialize for ParallelConfig {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        // Null (e.g. the field is absent in a pre-parallelism artifact)
        // deserializes to the automatic default.
        if matches!(v, Value::Null) {
            return Ok(ParallelConfig::default());
        }
        let obj = serde::expect_object(v, "ParallelConfig")?;
        let num_threads = match serde::field(obj, "num_threads") {
            Value::Null => 0,
            other => usize::from_value(other)?,
        };
        Ok(ParallelConfig { num_threads })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordered_map_matches_serial_at_any_width() {
        let items: Vec<f64> = (0..317).map(|i| i as f64 * 0.37 - 40.0).collect();
        let serial = ParallelConfig::serial().ordered_par_map(&items, |x| x.sin() * x.cos());
        for threads in [2, 3, 4, 8] {
            let parallel = ParallelConfig::with_threads(threads)
                .ordered_par_map(&items, |x| x.sin() * x.cos());
            assert_eq!(serial, parallel, "threads = {threads}");
        }
    }

    #[test]
    fn try_map_reports_lowest_index_error() {
        let items: Vec<u32> = (0..64).collect();
        let out = ParallelConfig::with_threads(4).try_ordered_par_map(&items, |&x| {
            if x == 5 || x == 60 {
                Err(format!("bad {x}"))
            } else {
                Ok(x)
            }
        });
        assert_eq!(out, Err("bad 5".to_string()));
        let ok: Result<Vec<u32>, String> =
            ParallelConfig::automatic().try_ordered_par_map(&items, |&x| Ok(x));
        assert_eq!(ok.unwrap(), items);
    }

    #[test]
    fn effective_threads_resolution() {
        assert_eq!(ParallelConfig::serial().effective_threads(), 1);
        assert_eq!(ParallelConfig::with_threads(3).effective_threads(), 3);
        assert!(ParallelConfig::automatic().effective_threads() >= 1);
        assert_eq!(ParallelConfig::with_threads(3).threads(), 3);
        assert_eq!(ParallelConfig::automatic().threads(), 0);
    }

    #[test]
    fn serde_round_trip_and_null_default() {
        let config = ParallelConfig::with_threads(6);
        let back = ParallelConfig::from_value(&config.to_value()).unwrap();
        assert_eq!(config, back);
        // A missing field (Null) means "automatic", so configs saved before
        // parallelism existed still load.
        let defaulted = ParallelConfig::from_value(&Value::Null).unwrap();
        assert_eq!(defaulted, ParallelConfig::automatic());
    }

    #[test]
    fn empty_and_single_inputs() {
        let none: Vec<i32> = vec![];
        assert!(ParallelConfig::automatic()
            .ordered_par_map(&none, |x| *x)
            .is_empty());
        assert_eq!(
            ParallelConfig::with_threads(8).ordered_par_map(&[7], |x| x * 2),
            vec![14]
        );
    }
}
