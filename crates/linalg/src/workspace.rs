//! A reusable pool of matrix buffers for allocation-free steady state.
//!
//! Hot loops that repeatedly build same-shaped matrices — autodiff tapes
//! rebuilt every training step, Newton iterations reassembling a Jacobian,
//! LM damping attempts — can check buffers out of a [`Workspace`], use them
//! as ordinary [`Matrix`] values, and return them when done. After the first
//! pass has populated the pool, subsequent passes recycle capacity instead
//! of touching the allocator.
//!
//! Reuse never changes numeric results: [`Workspace::take`] always hands
//! back a fully zeroed matrix of the requested shape, so a pooled buffer is
//! indistinguishable from a fresh [`Matrix::zeros`].
//!
//! # Examples
//!
//! ```
//! use pnc_linalg::Workspace;
//!
//! let mut ws = Workspace::new();
//! let m = ws.take(3, 4);
//! assert_eq!(m.shape(), (3, 4));
//! ws.give(m);
//! assert_eq!(ws.available(), 1);
//! // The next take of any shape that fits reuses the pooled buffer.
//! let again = ws.take(4, 3);
//! assert_eq!(again.shape(), (4, 3));
//! assert_eq!(ws.available(), 0);
//! ```

use crate::Matrix;

/// A pool of retired `f64` buffers recycled into zeroed [`Matrix`] values.
#[derive(Debug, Default)]
pub struct Workspace {
    pool: Vec<Vec<f64>>,
}

impl Workspace {
    /// Creates an empty pool.
    pub fn new() -> Self {
        Workspace::default()
    }

    /// Number of retired buffers currently available for reuse.
    pub fn available(&self) -> usize {
        self.pool.len()
    }

    /// Total `f64` capacity currently held by the pool.
    pub fn pooled_capacity(&self) -> usize {
        self.pool.iter().map(|b| b.capacity()).sum()
    }

    /// Checks out a zeroed `rows`×`cols` matrix, reusing a pooled buffer
    /// whose capacity already fits when one exists (searched newest-first so
    /// shape-stable loops hit their own buffer), growing one otherwise.
    pub fn take(&mut self, rows: usize, cols: usize) -> Matrix {
        let n = rows * cols;
        let mut buf = match self.pool.iter().rposition(|b| b.capacity() >= n) {
            Some(i) => self.pool.swap_remove(i),
            None => self.pool.pop().unwrap_or_default(),
        };
        buf.clear();
        buf.resize(n, 0.0);
        // Length matches by construction; the fallback keeps this panic-free.
        Matrix::from_vec(rows, cols, buf).unwrap_or_else(|_| Matrix::zeros(rows, cols))
    }

    /// Returns a matrix's buffer to the pool for later reuse.
    pub fn give(&mut self, m: Matrix) {
        let mut buf = m.into_vec();
        buf.clear();
        self.pool.push(buf);
    }

    /// Drops every pooled buffer, releasing the memory.
    pub fn shrink(&mut self) {
        self.pool.clear();
        self.pool.shrink_to_fit();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn take_is_zeroed_even_after_reuse() {
        let mut ws = Workspace::new();
        let mut m = ws.take(2, 2);
        m[(0, 0)] = 7.0;
        m[(1, 1)] = -3.0;
        ws.give(m);
        let again = ws.take(2, 2);
        assert_eq!(again, Matrix::zeros(2, 2));
    }

    #[test]
    fn reuses_capacity_for_smaller_shapes() {
        let mut ws = Workspace::new();
        let big = ws.take(8, 8);
        ws.give(big);
        let cap_before = ws.pooled_capacity();
        assert!(cap_before >= 64);
        let small = ws.take(2, 3);
        assert_eq!(small.shape(), (2, 3));
        assert_eq!(ws.available(), 0);
        ws.give(small);
        // The same (grown) buffer came back: no capacity was lost.
        assert_eq!(ws.pooled_capacity(), cap_before);
    }

    #[test]
    fn prefers_fitting_buffer_over_regrowth() {
        let mut ws = Workspace::new();
        ws.give(Matrix::zeros(1, 2));
        ws.give(Matrix::zeros(10, 10));
        let m = ws.take(3, 3);
        assert_eq!(m.shape(), (3, 3));
        // The 100-element buffer was chosen; the 2-element one remains.
        assert_eq!(ws.pooled_capacity(), 2);
    }

    #[test]
    fn shrink_releases_everything() {
        let mut ws = Workspace::new();
        ws.give(Matrix::zeros(4, 4));
        ws.shrink();
        assert_eq!(ws.available(), 0);
        assert_eq!(ws.pooled_capacity(), 0);
    }
}
