use crate::LinalgError;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Index, IndexMut};

/// A dense, row-major `f64` matrix.
///
/// `Matrix` is the workhorse value type of the workspace: the autodiff engine
/// stores tensor values as matrices, the circuit simulator assembles its
/// Jacobians into them, and the surrogate models hold their weights in them.
///
/// Shapes are checked at runtime; fallible operations return
/// [`LinalgError`](crate::LinalgError) rather than panicking, except for
/// indexing which panics on out-of-bounds like slices do.
///
/// # Examples
///
/// ```
/// use pnc_linalg::Matrix;
///
/// # fn main() -> Result<(), pnc_linalg::LinalgError> {
/// let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]])?;
/// let b = Matrix::identity(2);
/// let c = a.matmul(&b)?;
/// assert_eq!(c, a);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Creates a `rows`×`cols` matrix filled with zeros.
    ///
    /// # Examples
    ///
    /// ```
    /// use pnc_linalg::Matrix;
    /// let z = Matrix::zeros(2, 3);
    /// assert_eq!(z.shape(), (2, 3));
    /// assert_eq!(z[(1, 2)], 0.0);
    /// ```
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates a `rows`×`cols` matrix where every element is `value`.
    pub fn filled(rows: usize, cols: usize, value: f64) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![value; rows * cols],
        }
    }

    /// Creates the `n`×`n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Creates a matrix from row-major data.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::InvalidShape`] if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Result<Self, LinalgError> {
        if data.len() != rows * cols {
            return Err(LinalgError::InvalidShape {
                rows,
                cols,
                len: data.len(),
            });
        }
        Ok(Matrix { rows, cols, data })
    }

    /// Creates a matrix from a slice of equally long rows.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] if the rows have unequal
    /// lengths, and [`LinalgError::InvalidShape`] if `rows` is empty or the
    /// first row is empty.
    pub fn from_rows(rows: &[&[f64]]) -> Result<Self, LinalgError> {
        let r = rows.len();
        let c = rows.first().map_or(0, |row| row.len());
        if r == 0 || c == 0 {
            return Err(LinalgError::InvalidShape {
                rows: r,
                cols: c,
                len: 0,
            });
        }
        let mut data = Vec::with_capacity(r * c);
        for row in rows {
            if row.len() != c {
                return Err(LinalgError::DimensionMismatch {
                    op: "from_rows",
                    lhs: (1, c),
                    rhs: (1, row.len()),
                });
            }
            data.extend_from_slice(row);
        }
        Ok(Matrix {
            rows: r,
            cols: c,
            data,
        })
    }

    /// Creates a matrix by evaluating `f(row, col)` for every element.
    ///
    /// # Examples
    ///
    /// ```
    /// use pnc_linalg::Matrix;
    /// let m = Matrix::from_fn(2, 2, |i, j| (i * 10 + j) as f64);
    /// assert_eq!(m[(1, 0)], 10.0);
    /// ```
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for i in 0..rows {
            for j in 0..cols {
                data.push(f(i, j));
            }
        }
        Matrix { rows, cols, data }
    }

    /// Creates a 1×`n` row vector from a slice.
    pub fn row_vector(values: &[f64]) -> Self {
        Matrix {
            rows: 1,
            cols: values.len(),
            data: values.to_vec(),
        }
    }

    /// Creates an `n`×1 column vector from a slice.
    pub fn col_vector(values: &[f64]) -> Self {
        Matrix {
            rows: values.len(),
            cols: 1,
            data: values.to_vec(),
        }
    }

    /// Returns the shape as `(rows, cols)`.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Returns the number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Returns the number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Returns the total number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Returns `true` if the matrix has no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Returns the underlying row-major data as a slice.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Returns the underlying row-major data as a mutable slice.
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Consumes the matrix and returns the row-major data.
    pub fn into_vec(self) -> Vec<f64> {
        self.data
    }

    /// Returns row `i` as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.rows()`.
    pub fn row(&self, i: usize) -> &[f64] {
        assert!(i < self.rows, "row index {i} out of bounds ({})", self.rows);
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Returns row `i` as a mutable slice.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.rows()`.
    pub fn row_mut(&mut self, i: usize) -> &mut [f64] {
        assert!(i < self.rows, "row index {i} out of bounds ({})", self.rows);
        &mut self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Returns column `j` as an owned vector.
    ///
    /// # Panics
    ///
    /// Panics if `j >= self.cols()`.
    pub fn col(&self, j: usize) -> Vec<f64> {
        assert!(
            j < self.cols,
            "column index {j} out of bounds ({})",
            self.cols
        );
        (0..self.rows).map(|i| self[(i, j)]).collect()
    }

    /// Returns the transpose.
    pub fn transpose(&self) -> Matrix {
        Matrix::from_fn(self.cols, self.rows, |i, j| self[(j, i)])
    }

    /// Matrix product `self * rhs`.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] if
    /// `self.cols() != rhs.rows()`.
    pub fn matmul(&self, rhs: &Matrix) -> Result<Matrix, LinalgError> {
        if self.cols != rhs.rows {
            return Err(LinalgError::DimensionMismatch {
                op: "matmul",
                lhs: self.shape(),
                rhs: rhs.shape(),
            });
        }
        let mut out = Matrix::zeros(self.rows, rhs.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self[(i, k)];
                if a == 0.0 {
                    continue;
                }
                let rhs_row = rhs.row(k);
                let out_row = out.row_mut(i);
                for (o, &b) in out_row.iter_mut().zip(rhs_row) {
                    *o += a * b;
                }
            }
        }
        Ok(out)
    }

    /// Elementwise sum `self + rhs`.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] if the shapes differ.
    pub fn add(&self, rhs: &Matrix) -> Result<Matrix, LinalgError> {
        self.zip_with(rhs, "add", |a, b| a + b)
    }

    /// Elementwise difference `self - rhs`.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] if the shapes differ.
    pub fn sub(&self, rhs: &Matrix) -> Result<Matrix, LinalgError> {
        self.zip_with(rhs, "sub", |a, b| a - b)
    }

    /// Elementwise (Hadamard) product.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] if the shapes differ.
    pub fn hadamard(&self, rhs: &Matrix) -> Result<Matrix, LinalgError> {
        self.zip_with(rhs, "hadamard", |a, b| a * b)
    }

    /// Combines two equal-shaped matrices elementwise with `f`.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] if the shapes differ.
    pub fn zip_with(
        &self,
        rhs: &Matrix,
        op: &'static str,
        f: impl Fn(f64, f64) -> f64,
    ) -> Result<Matrix, LinalgError> {
        if self.shape() != rhs.shape() {
            return Err(LinalgError::DimensionMismatch {
                op,
                lhs: self.shape(),
                rhs: rhs.shape(),
            });
        }
        let data = self
            .data
            .iter()
            .zip(&rhs.data)
            .map(|(&a, &b)| f(a, b))
            .collect();
        Ok(Matrix {
            rows: self.rows,
            cols: self.cols,
            data,
        })
    }

    /// Applies `f` to every element, returning a new matrix.
    pub fn map(&self, f: impl Fn(f64) -> f64) -> Matrix {
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&x| f(x)).collect(),
        }
    }

    /// Multiplies every element by `s`.
    pub fn scale(&self, s: f64) -> Matrix {
        self.map(|x| x * s)
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f64 {
        self.data.iter().sum()
    }

    /// Euclidean (Frobenius) norm.
    pub fn norm(&self) -> f64 {
        self.data.iter().map(|x| x * x).sum::<f64>().sqrt()
    }

    /// Maximum absolute element, or `0.0` for an empty matrix.
    pub fn norm_inf(&self) -> f64 {
        self.data.iter().fold(0.0_f64, |m, &x| m.max(x.abs()))
    }

    /// Returns `true` if every element of `self` is within `tol` of the
    /// corresponding element of `other`. Shapes must match exactly.
    pub fn approx_eq(&self, other: &Matrix, tol: f64) -> bool {
        self.shape() == other.shape()
            && self
                .data
                .iter()
                .zip(&other.data)
                .all(|(&a, &b)| (a - b).abs() <= tol)
    }
}

impl Index<(usize, usize)> for Matrix {
    type Output = f64;

    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        assert!(
            i < self.rows && j < self.cols,
            "index ({i}, {j}) out of bounds for {}x{} matrix",
            self.rows,
            self.cols
        );
        &self.data[i * self.cols + j]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        assert!(
            i < self.rows && j < self.cols,
            "index ({i}, {j}) out of bounds for {}x{} matrix",
            self.rows,
            self.cols
        );
        &mut self.data[i * self.cols + j]
    }
}

impl fmt::Display for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        for i in 0..self.rows {
            write!(f, "  ")?;
            for j in 0..self.cols {
                write!(f, "{:>12.6} ", self[(i, j)])?;
            }
            writeln!(f)?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Matrix {
        Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]).unwrap()
    }

    #[test]
    fn zeros_has_requested_shape_and_content() {
        let z = Matrix::zeros(3, 4);
        assert_eq!(z.shape(), (3, 4));
        assert!(z.as_slice().iter().all(|&x| x == 0.0));
    }

    #[test]
    fn identity_is_diagonal_ones() {
        let i = Matrix::identity(3);
        for r in 0..3 {
            for c in 0..3 {
                assert_eq!(i[(r, c)], if r == c { 1.0 } else { 0.0 });
            }
        }
    }

    #[test]
    fn from_vec_rejects_wrong_length() {
        let err = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0]).unwrap_err();
        assert_eq!(
            err,
            LinalgError::InvalidShape {
                rows: 2,
                cols: 2,
                len: 3
            }
        );
    }

    #[test]
    fn from_rows_rejects_ragged_rows() {
        let err = Matrix::from_rows(&[&[1.0, 2.0], &[3.0]]).unwrap_err();
        assert!(matches!(err, LinalgError::DimensionMismatch { .. }));
    }

    #[test]
    fn from_rows_rejects_empty() {
        assert!(Matrix::from_rows(&[]).is_err());
    }

    #[test]
    fn indexing_is_row_major() {
        let m = sample();
        assert_eq!(m[(0, 0)], 1.0);
        assert_eq!(m[(0, 2)], 3.0);
        assert_eq!(m[(1, 1)], 5.0);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn indexing_out_of_bounds_panics() {
        let m = sample();
        let _ = m[(2, 0)];
    }

    #[test]
    fn row_and_col_accessors() {
        let m = sample();
        assert_eq!(m.row(1), &[4.0, 5.0, 6.0]);
        assert_eq!(m.col(2), vec![3.0, 6.0]);
    }

    #[test]
    fn transpose_swaps_shape_and_elements() {
        let m = sample();
        let t = m.transpose();
        assert_eq!(t.shape(), (3, 2));
        assert_eq!(t[(2, 1)], m[(1, 2)]);
        assert_eq!(t.transpose(), m);
    }

    #[test]
    fn matmul_matches_hand_computation() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]).unwrap();
        let b = Matrix::from_rows(&[&[5.0, 6.0], &[7.0, 8.0]]).unwrap();
        let c = a.matmul(&b).unwrap();
        let expected = Matrix::from_rows(&[&[19.0, 22.0], &[43.0, 50.0]]).unwrap();
        assert!(c.approx_eq(&expected, 1e-12));
    }

    #[test]
    fn matmul_rejects_mismatched_shapes() {
        let a = sample();
        assert!(a.matmul(&sample()).is_err());
    }

    #[test]
    fn matmul_identity_is_noop() {
        let m = sample();
        let i = Matrix::identity(3);
        assert!(m.matmul(&i).unwrap().approx_eq(&m, 1e-12));
    }

    #[test]
    fn elementwise_ops() {
        let a = sample();
        let sum = a.add(&a).unwrap();
        assert_eq!(sum[(1, 2)], 12.0);
        let diff = a.sub(&a).unwrap();
        assert_eq!(diff.norm(), 0.0);
        let prod = a.hadamard(&a).unwrap();
        assert_eq!(prod[(1, 0)], 16.0);
    }

    #[test]
    fn scale_and_map() {
        let a = sample();
        assert_eq!(a.scale(2.0)[(0, 1)], 4.0);
        assert_eq!(a.map(|x| x - 1.0)[(0, 0)], 0.0);
    }

    #[test]
    fn norms_and_sum() {
        let v = Matrix::col_vector(&[3.0, -4.0]);
        assert!((v.norm() - 5.0).abs() < 1e-12);
        assert_eq!(v.norm_inf(), 4.0);
        assert_eq!(v.sum(), -1.0);
    }

    #[test]
    fn display_is_nonempty() {
        let s = format!("{}", sample());
        assert!(s.contains("Matrix 2x3"));
    }

    #[test]
    fn serde_round_trip() {
        let m = sample();
        let json = serde_json::to_string(&m).unwrap();
        let back: Matrix = serde_json::from_str(&json).unwrap();
        assert_eq!(m, back);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    fn arb_matrix(max_dim: usize) -> impl Strategy<Value = Matrix> {
        (1..=max_dim, 1..=max_dim).prop_flat_map(|(r, c)| {
            proptest::collection::vec(-100.0..100.0f64, r * c)
                .prop_map(move |data| Matrix::from_vec(r, c, data).expect("sized"))
        })
    }

    proptest! {
        #[test]
        fn transpose_involution(m in arb_matrix(6)) {
            prop_assert_eq!(m.transpose().transpose(), m);
        }

        #[test]
        fn transpose_of_product((a, b) in (1usize..5, 1usize..5, 1usize..5).prop_flat_map(|(m, k, n)| {
            let a = proptest::collection::vec(-10.0..10.0f64, m * k)
                .prop_map(move |d| Matrix::from_vec(m, k, d).expect("sized"));
            let b = proptest::collection::vec(-10.0..10.0f64, k * n)
                .prop_map(move |d| Matrix::from_vec(k, n, d).expect("sized"));
            (a, b)
        })) {
            let ab_t = a.matmul(&b).unwrap().transpose();
            let bt_at = b.transpose().matmul(&a.transpose()).unwrap();
            prop_assert!(ab_t.approx_eq(&bt_at, 1e-9));
        }

        #[test]
        fn add_commutes(m in arb_matrix(6)) {
            let n = m.map(|x| x * 0.5 + 1.0);
            prop_assert!(m.add(&n).unwrap().approx_eq(&n.add(&m).unwrap(), 1e-12));
        }

        #[test]
        fn scale_distributes_over_add(m in arb_matrix(5), s in -10.0..10.0f64) {
            let lhs = m.add(&m).unwrap().scale(s);
            let rhs = m.scale(s).add(&m.scale(s)).unwrap();
            prop_assert!(lhs.approx_eq(&rhs, 1e-9));
        }

        #[test]
        fn matmul_identity_left(m in arb_matrix(6)) {
            let i = Matrix::identity(m.rows());
            prop_assert!(i.matmul(&m).unwrap().approx_eq(&m, 1e-12));
        }
    }
}
