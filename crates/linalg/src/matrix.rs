use crate::{kernels, LinalgError, ParallelConfig};
use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Index, IndexMut};

/// A dense, row-major `f64` matrix.
///
/// `Matrix` is the workhorse value type of the workspace: the autodiff engine
/// stores tensor values as matrices, the circuit simulator assembles its
/// Jacobians into them, and the surrogate models hold their weights in them.
///
/// Shapes are checked at runtime; fallible operations return
/// [`LinalgError`](crate::LinalgError) rather than panicking, except for
/// indexing which panics on out-of-bounds like slices do.
///
/// # Examples
///
/// ```
/// use pnc_linalg::Matrix;
///
/// # fn main() -> Result<(), pnc_linalg::LinalgError> {
/// let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]])?;
/// let b = Matrix::identity(2);
/// let c = a.matmul(&b)?;
/// assert_eq!(c, a);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

/// Rows per band in [`Matrix::matmul_parallel`]. Banding never changes
/// results (each output row depends only on its own inputs), so this is a
/// pure tuning knob; 32 rows keeps per-band work well above scheduling cost.
const PARALLEL_ROW_BAND: usize = 32;

impl Matrix {
    /// Creates a `rows`×`cols` matrix filled with zeros.
    ///
    /// # Examples
    ///
    /// ```
    /// use pnc_linalg::Matrix;
    /// let z = Matrix::zeros(2, 3);
    /// assert_eq!(z.shape(), (2, 3));
    /// assert_eq!(z[(1, 2)], 0.0);
    /// ```
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates a `rows`×`cols` matrix where every element is `value`.
    pub fn filled(rows: usize, cols: usize, value: f64) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![value; rows * cols],
        }
    }

    /// Creates the `n`×`n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Creates a matrix from row-major data.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::InvalidShape`] if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Result<Self, LinalgError> {
        if data.len() != rows * cols {
            return Err(LinalgError::InvalidShape {
                rows,
                cols,
                len: data.len(),
            });
        }
        Ok(Matrix { rows, cols, data })
    }

    /// Creates a matrix from a slice of equally long rows.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] if the rows have unequal
    /// lengths, and [`LinalgError::InvalidShape`] if `rows` is empty or the
    /// first row is empty.
    pub fn from_rows(rows: &[&[f64]]) -> Result<Self, LinalgError> {
        let r = rows.len();
        let c = rows.first().map_or(0, |row| row.len());
        if r == 0 || c == 0 {
            return Err(LinalgError::InvalidShape {
                rows: r,
                cols: c,
                len: 0,
            });
        }
        let mut data = Vec::with_capacity(r * c);
        for row in rows {
            if row.len() != c {
                return Err(LinalgError::DimensionMismatch {
                    op: "from_rows",
                    lhs: (1, c),
                    rhs: (1, row.len()),
                });
            }
            data.extend_from_slice(row);
        }
        Ok(Matrix {
            rows: r,
            cols: c,
            data,
        })
    }

    /// Creates a matrix by evaluating `f(row, col)` for every element.
    ///
    /// # Examples
    ///
    /// ```
    /// use pnc_linalg::Matrix;
    /// let m = Matrix::from_fn(2, 2, |i, j| (i * 10 + j) as f64);
    /// assert_eq!(m[(1, 0)], 10.0);
    /// ```
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for i in 0..rows {
            for j in 0..cols {
                data.push(f(i, j));
            }
        }
        Matrix { rows, cols, data }
    }

    /// Creates a 1×`n` row vector from a slice.
    pub fn row_vector(values: &[f64]) -> Self {
        Matrix {
            rows: 1,
            cols: values.len(),
            data: values.to_vec(),
        }
    }

    /// Creates an `n`×1 column vector from a slice.
    pub fn col_vector(values: &[f64]) -> Self {
        Matrix {
            rows: values.len(),
            cols: 1,
            data: values.to_vec(),
        }
    }

    /// Returns the shape as `(rows, cols)`.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Returns the number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Returns the number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Returns the total number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Returns `true` if the matrix has no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Returns the underlying row-major data as a slice.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Returns the underlying row-major data as a mutable slice.
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Consumes the matrix and returns the row-major data.
    pub fn into_vec(self) -> Vec<f64> {
        self.data
    }

    /// Returns row `i` as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.rows()`.
    pub fn row(&self, i: usize) -> &[f64] {
        assert!(i < self.rows, "row index {i} out of bounds ({})", self.rows);
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Returns row `i` as a mutable slice.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.rows()`.
    pub fn row_mut(&mut self, i: usize) -> &mut [f64] {
        assert!(i < self.rows, "row index {i} out of bounds ({})", self.rows);
        &mut self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Returns column `j` as an owned vector.
    ///
    /// # Panics
    ///
    /// Panics if `j >= self.cols()`.
    pub fn col(&self, j: usize) -> Vec<f64> {
        assert!(
            j < self.cols,
            "column index {j} out of bounds ({})",
            self.cols
        );
        (0..self.rows).map(|i| self[(i, j)]).collect()
    }

    /// Returns the transpose.
    pub fn transpose(&self) -> Matrix {
        Matrix::from_fn(self.cols, self.rows, |i, j| self[(j, i)])
    }

    /// Matrix product `self * rhs`, computed with the cache-blocked kernel.
    ///
    /// The blocked kernel visits the contraction index in ascending order for
    /// every output element, so its results are bit-identical to the naive
    /// reference ([`Matrix::matmul_reference`]) for any block size.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] if
    /// `self.cols() != rhs.rows()`.
    pub fn matmul(&self, rhs: &Matrix) -> Result<Matrix, LinalgError> {
        let mut out = Matrix::zeros(self.rows, rhs.cols);
        self.matmul_into(rhs, &mut out)?;
        Ok(out)
    }

    /// Cache-blocked matrix product written into a preallocated `out`.
    ///
    /// `out` is fully overwritten (no accumulation with prior contents), so a
    /// recycled [`Workspace`](crate::Workspace) buffer behaves exactly like a
    /// fresh matrix.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] if
    /// `self.cols() != rhs.rows()` or `out` is not
    /// `self.rows()`×`rhs.cols()`.
    pub fn matmul_into(&self, rhs: &Matrix, out: &mut Matrix) -> Result<(), LinalgError> {
        if self.cols != rhs.rows {
            return Err(LinalgError::DimensionMismatch {
                op: "matmul",
                lhs: self.shape(),
                rhs: rhs.shape(),
            });
        }
        if out.shape() != (self.rows, rhs.cols) {
            return Err(LinalgError::DimensionMismatch {
                op: "matmul_into",
                lhs: (self.rows, rhs.cols),
                rhs: out.shape(),
            });
        }
        kernels::matmul_band_into(self, rhs, 0, self.rows, &mut out.data);
        Ok(())
    }

    /// Naive triple-loop matrix product: the bit-exactness oracle for the
    /// blocked, parallel, and transpose kernels, and the pre-overhaul
    /// baseline for benchmarks. Prefer [`Matrix::matmul`] everywhere else.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] if
    /// `self.cols() != rhs.rows()`.
    pub fn matmul_reference(&self, rhs: &Matrix) -> Result<Matrix, LinalgError> {
        if self.cols != rhs.rows {
            return Err(LinalgError::DimensionMismatch {
                op: "matmul",
                lhs: self.shape(),
                rhs: rhs.shape(),
            });
        }
        let mut out = Matrix::zeros(self.rows, rhs.cols);
        kernels::matmul_reference_into(self, rhs, &mut out.data);
        Ok(out)
    }

    /// Deterministic row-partitioned parallel matrix product.
    ///
    /// The output rows are split into contiguous bands; each worker computes
    /// a disjoint band with the same blocked kernel as [`Matrix::matmul`] and
    /// the bands are concatenated in row order (an ordered chunk reduction —
    /// no atomics, no data-dependent scheduling). Every output row depends
    /// only on its own inputs, so the result is bit-identical to the serial
    /// product at any thread count.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] if
    /// `self.cols() != rhs.rows()`.
    pub fn matmul_parallel(
        &self,
        rhs: &Matrix,
        parallel: &ParallelConfig,
    ) -> Result<Matrix, LinalgError> {
        if self.cols != rhs.rows {
            return Err(LinalgError::DimensionMismatch {
                op: "matmul",
                lhs: self.shape(),
                rhs: rhs.shape(),
            });
        }
        // Small products are not worth a pool: fall back to the serial path
        // (identical bits either way).
        if parallel.effective_threads() <= 1 || self.rows < 2 * PARALLEL_ROW_BAND {
            return self.matmul(rhs);
        }
        let bands = kernels::row_bands(self.rows, PARALLEL_ROW_BAND);
        let n = rhs.cols;
        let blocks: Vec<Vec<f64>> = parallel.ordered_par_map(&bands, |&(rs, re)| {
            let mut band = vec![0.0; (re - rs) * n];
            kernels::matmul_band_into(self, rhs, rs, re, &mut band);
            band
        });
        let mut data = Vec::with_capacity(self.rows * n);
        for block in blocks {
            data.extend_from_slice(&block);
        }
        Matrix::from_vec(self.rows, n, data)
    }

    /// Product with a transposed right operand: `self · rhsᵀ`.
    ///
    /// Both operands are walked row-major (each output element is a dot
    /// product of two contiguous rows), so backward passes no longer need to
    /// materialize an explicit transpose. Bit-identical to
    /// `self.matmul(&rhs.transpose())`.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] if
    /// `self.cols() != rhs.cols()`.
    pub fn matmul_nt(&self, rhs: &Matrix) -> Result<Matrix, LinalgError> {
        let mut out = Matrix::zeros(self.rows, rhs.rows);
        self.matmul_nt_into(rhs, &mut out)?;
        Ok(out)
    }

    /// [`Matrix::matmul_nt`] into a preallocated `out` (fully overwritten).
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] if
    /// `self.cols() != rhs.cols()` or `out` is not
    /// `self.rows()`×`rhs.rows()`.
    pub fn matmul_nt_into(&self, rhs: &Matrix, out: &mut Matrix) -> Result<(), LinalgError> {
        if self.cols != rhs.cols {
            return Err(LinalgError::DimensionMismatch {
                op: "matmul_nt",
                lhs: self.shape(),
                rhs: rhs.shape(),
            });
        }
        if out.shape() != (self.rows, rhs.rows) {
            return Err(LinalgError::DimensionMismatch {
                op: "matmul_nt_into",
                lhs: (self.rows, rhs.rows),
                rhs: out.shape(),
            });
        }
        kernels::matmul_nt_into_raw(self, rhs, &mut out.data);
        Ok(())
    }

    /// Product with a transposed left operand: `selfᵀ · rhs`.
    ///
    /// The contraction index (shared row index) is the outermost loop, so
    /// both operands stream row-major without materializing a transpose.
    /// Bit-identical to `self.transpose().matmul(rhs)`.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] if
    /// `self.rows() != rhs.rows()`.
    pub fn matmul_tn(&self, rhs: &Matrix) -> Result<Matrix, LinalgError> {
        let mut out = Matrix::zeros(self.cols, rhs.cols);
        self.matmul_tn_into(rhs, &mut out)?;
        Ok(out)
    }

    /// [`Matrix::matmul_tn`] into a preallocated `out` (fully overwritten).
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] if
    /// `self.rows() != rhs.rows()` or `out` is not
    /// `self.cols()`×`rhs.cols()`.
    pub fn matmul_tn_into(&self, rhs: &Matrix, out: &mut Matrix) -> Result<(), LinalgError> {
        if self.rows != rhs.rows {
            return Err(LinalgError::DimensionMismatch {
                op: "matmul_tn",
                lhs: self.shape(),
                rhs: rhs.shape(),
            });
        }
        if out.shape() != (self.cols, rhs.cols) {
            return Err(LinalgError::DimensionMismatch {
                op: "matmul_tn_into",
                lhs: (self.cols, rhs.cols),
                rhs: out.shape(),
            });
        }
        kernels::matmul_tn_into_raw(self, rhs, &mut out.data);
        Ok(())
    }

    /// Elementwise sum `self + rhs`.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] if the shapes differ.
    pub fn add(&self, rhs: &Matrix) -> Result<Matrix, LinalgError> {
        self.zip_with(rhs, "add", |a, b| a + b)
    }

    /// Elementwise difference `self - rhs`.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] if the shapes differ.
    pub fn sub(&self, rhs: &Matrix) -> Result<Matrix, LinalgError> {
        self.zip_with(rhs, "sub", |a, b| a - b)
    }

    /// Elementwise (Hadamard) product.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] if the shapes differ.
    pub fn hadamard(&self, rhs: &Matrix) -> Result<Matrix, LinalgError> {
        self.zip_with(rhs, "hadamard", |a, b| a * b)
    }

    /// Combines two equal-shaped matrices elementwise with `f`.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] if the shapes differ.
    pub fn zip_with(
        &self,
        rhs: &Matrix,
        op: &'static str,
        f: impl Fn(f64, f64) -> f64,
    ) -> Result<Matrix, LinalgError> {
        if self.shape() != rhs.shape() {
            return Err(LinalgError::DimensionMismatch {
                op,
                lhs: self.shape(),
                rhs: rhs.shape(),
            });
        }
        let data = self
            .data
            .iter()
            .zip(&rhs.data)
            .map(|(&a, &b)| f(a, b))
            .collect();
        Ok(Matrix {
            rows: self.rows,
            cols: self.cols,
            data,
        })
    }

    /// Applies `f` to every element, returning a new matrix.
    pub fn map(&self, f: impl Fn(f64) -> f64) -> Matrix {
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&x| f(x)).collect(),
        }
    }

    /// Writes `f` applied to every element of `self` into a preallocated
    /// equal-shaped `out` (fully overwritten).
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] if the shapes differ.
    pub fn map_into(&self, f: impl Fn(f64) -> f64, out: &mut Matrix) -> Result<(), LinalgError> {
        if self.shape() != out.shape() {
            return Err(LinalgError::DimensionMismatch {
                op: "map_into",
                lhs: self.shape(),
                rhs: out.shape(),
            });
        }
        for (o, &x) in out.data.iter_mut().zip(&self.data) {
            *o = f(x);
        }
        Ok(())
    }

    /// Combines `self` and `rhs` elementwise with `f` into a preallocated
    /// equal-shaped `out` (fully overwritten).
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] if any shape differs.
    pub fn zip_with_into(
        &self,
        rhs: &Matrix,
        op: &'static str,
        f: impl Fn(f64, f64) -> f64,
        out: &mut Matrix,
    ) -> Result<(), LinalgError> {
        if self.shape() != rhs.shape() || self.shape() != out.shape() {
            return Err(LinalgError::DimensionMismatch {
                op,
                lhs: self.shape(),
                rhs: rhs.shape(),
            });
        }
        for ((o, &a), &b) in out.data.iter_mut().zip(&self.data).zip(&rhs.data) {
            *o = f(a, b);
        }
        Ok(())
    }

    /// Multiplies every element by `s`.
    pub fn scale(&self, s: f64) -> Matrix {
        self.map(|x| x * s)
    }

    /// Multiplies every element by `s` in place.
    pub fn scale_in_place(&mut self, s: f64) {
        for x in &mut self.data {
            *x *= s;
        }
    }

    /// Adds `rhs` to `self` elementwise in place. Bit-identical to
    /// `self = self.add(rhs)` without the allocation.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] if the shapes differ.
    pub fn add_assign(&mut self, rhs: &Matrix) -> Result<(), LinalgError> {
        if self.shape() != rhs.shape() {
            return Err(LinalgError::DimensionMismatch {
                op: "add_assign",
                lhs: self.shape(),
                rhs: rhs.shape(),
            });
        }
        for (a, &b) in self.data.iter_mut().zip(&rhs.data) {
            *a += b;
        }
        Ok(())
    }

    /// In-place `self += alpha * x` (the BLAS `axpy` kernel).
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] if the shapes differ.
    pub fn axpy(&mut self, alpha: f64, x: &Matrix) -> Result<(), LinalgError> {
        if self.shape() != x.shape() {
            return Err(LinalgError::DimensionMismatch {
                op: "axpy",
                lhs: self.shape(),
                rhs: x.shape(),
            });
        }
        for (a, &b) in self.data.iter_mut().zip(&x.data) {
            *a += alpha * b;
        }
        Ok(())
    }

    /// Overwrites `self` with the contents of an equal-shaped `src`.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] if the shapes differ.
    pub fn copy_from(&mut self, src: &Matrix) -> Result<(), LinalgError> {
        if self.shape() != src.shape() {
            return Err(LinalgError::DimensionMismatch {
                op: "copy_from",
                lhs: self.shape(),
                rhs: src.shape(),
            });
        }
        self.data.copy_from_slice(&src.data);
        Ok(())
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f64 {
        self.data.iter().sum()
    }

    /// Euclidean (Frobenius) norm.
    pub fn norm(&self) -> f64 {
        self.data.iter().map(|x| x * x).sum::<f64>().sqrt()
    }

    /// Maximum absolute element, or `0.0` for an empty matrix.
    pub fn norm_inf(&self) -> f64 {
        self.data.iter().fold(0.0_f64, |m, &x| m.max(x.abs()))
    }

    /// Returns `true` if every element of `self` is within `tol` of the
    /// corresponding element of `other`. Shapes must match exactly.
    pub fn approx_eq(&self, other: &Matrix, tol: f64) -> bool {
        self.shape() == other.shape()
            && self
                .data
                .iter()
                .zip(&other.data)
                .all(|(&a, &b)| (a - b).abs() <= tol)
    }
}

impl Index<(usize, usize)> for Matrix {
    type Output = f64;

    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        assert!(
            i < self.rows && j < self.cols,
            "index ({i}, {j}) out of bounds for {}x{} matrix",
            self.rows,
            self.cols
        );
        &self.data[i * self.cols + j]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        assert!(
            i < self.rows && j < self.cols,
            "index ({i}, {j}) out of bounds for {}x{} matrix",
            self.rows,
            self.cols
        );
        &mut self.data[i * self.cols + j]
    }
}

impl fmt::Display for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        for i in 0..self.rows {
            write!(f, "  ")?;
            for j in 0..self.cols {
                write!(f, "{:>12.6} ", self[(i, j)])?;
            }
            writeln!(f)?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Matrix {
        Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]).unwrap()
    }

    #[test]
    fn zeros_has_requested_shape_and_content() {
        let z = Matrix::zeros(3, 4);
        assert_eq!(z.shape(), (3, 4));
        assert!(z.as_slice().iter().all(|&x| x == 0.0));
    }

    #[test]
    fn identity_is_diagonal_ones() {
        let i = Matrix::identity(3);
        for r in 0..3 {
            for c in 0..3 {
                assert_eq!(i[(r, c)], if r == c { 1.0 } else { 0.0 });
            }
        }
    }

    #[test]
    fn from_vec_rejects_wrong_length() {
        let err = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0]).unwrap_err();
        assert_eq!(
            err,
            LinalgError::InvalidShape {
                rows: 2,
                cols: 2,
                len: 3
            }
        );
    }

    #[test]
    fn from_rows_rejects_ragged_rows() {
        let err = Matrix::from_rows(&[&[1.0, 2.0], &[3.0]]).unwrap_err();
        assert!(matches!(err, LinalgError::DimensionMismatch { .. }));
    }

    #[test]
    fn from_rows_rejects_empty() {
        assert!(Matrix::from_rows(&[]).is_err());
    }

    #[test]
    fn indexing_is_row_major() {
        let m = sample();
        assert_eq!(m[(0, 0)], 1.0);
        assert_eq!(m[(0, 2)], 3.0);
        assert_eq!(m[(1, 1)], 5.0);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn indexing_out_of_bounds_panics() {
        let m = sample();
        let _ = m[(2, 0)];
    }

    #[test]
    fn row_and_col_accessors() {
        let m = sample();
        assert_eq!(m.row(1), &[4.0, 5.0, 6.0]);
        assert_eq!(m.col(2), vec![3.0, 6.0]);
    }

    #[test]
    fn transpose_swaps_shape_and_elements() {
        let m = sample();
        let t = m.transpose();
        assert_eq!(t.shape(), (3, 2));
        assert_eq!(t[(2, 1)], m[(1, 2)]);
        assert_eq!(t.transpose(), m);
    }

    #[test]
    fn matmul_matches_hand_computation() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]).unwrap();
        let b = Matrix::from_rows(&[&[5.0, 6.0], &[7.0, 8.0]]).unwrap();
        let c = a.matmul(&b).unwrap();
        let expected = Matrix::from_rows(&[&[19.0, 22.0], &[43.0, 50.0]]).unwrap();
        assert!(c.approx_eq(&expected, 1e-12));
    }

    #[test]
    fn matmul_rejects_mismatched_shapes() {
        let a = sample();
        assert!(a.matmul(&sample()).is_err());
    }

    #[test]
    fn matmul_identity_is_noop() {
        let m = sample();
        let i = Matrix::identity(3);
        assert!(m.matmul(&i).unwrap().approx_eq(&m, 1e-12));
    }

    #[test]
    fn elementwise_ops() {
        let a = sample();
        let sum = a.add(&a).unwrap();
        assert_eq!(sum[(1, 2)], 12.0);
        let diff = a.sub(&a).unwrap();
        assert_eq!(diff.norm(), 0.0);
        let prod = a.hadamard(&a).unwrap();
        assert_eq!(prod[(1, 0)], 16.0);
    }

    #[test]
    fn scale_and_map() {
        let a = sample();
        assert_eq!(a.scale(2.0)[(0, 1)], 4.0);
        assert_eq!(a.map(|x| x - 1.0)[(0, 0)], 0.0);
    }

    #[test]
    fn norms_and_sum() {
        let v = Matrix::col_vector(&[3.0, -4.0]);
        assert!((v.norm() - 5.0).abs() < 1e-12);
        assert_eq!(v.norm_inf(), 4.0);
        assert_eq!(v.sum(), -1.0);
    }

    #[test]
    fn display_is_nonempty() {
        let s = format!("{}", sample());
        assert!(s.contains("Matrix 2x3"));
    }

    #[test]
    fn serde_round_trip() {
        let m = sample();
        let json = serde_json::to_string(&m).unwrap();
        let back: Matrix = serde_json::from_str(&json).unwrap();
        assert_eq!(m, back);
    }

    #[test]
    fn matmul_dense_and_sparse_inputs_agree_bitwise() {
        // The kernel must not branch on zero elements: a mostly-zero operand
        // takes exactly the same accumulation path as a dense one, so the
        // result is bit-identical to the naive always-accumulate reference.
        let sparse = Matrix::from_fn(7, 5, |i, j| {
            if (i + j) % 3 == 0 {
                0.0
            } else {
                1.5 * i as f64 - 0.25 * j as f64
            }
        });
        let dense = Matrix::from_fn(7, 5, |i, j| 1.0 + 0.1 * (i * 5 + j) as f64);
        let rhs = Matrix::from_fn(5, 6, |i, j| 0.3 * i as f64 - 0.7 * j as f64 + 0.01);
        for lhs in [&sparse, &dense] {
            let blocked = lhs.matmul(&rhs).unwrap();
            let reference = lhs.matmul_reference(&rhs).unwrap();
            assert_eq!(blocked, reference);
        }
        // An all-zero row contributes exact zeros, same as the reference.
        let zero_row = Matrix::zeros(1, 5);
        assert_eq!(
            zero_row.matmul(&rhs).unwrap(),
            zero_row.matmul_reference(&rhs).unwrap()
        );
    }

    #[test]
    fn matmul_into_rejects_wrong_output_shape() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(3, 4);
        let mut bad = Matrix::zeros(2, 3);
        assert!(a.matmul_into(&b, &mut bad).is_err());
        let mut good = Matrix::zeros(2, 4);
        assert!(a.matmul_into(&b, &mut good).is_ok());
    }

    #[test]
    fn matmul_nt_matches_explicit_transpose() {
        let a = Matrix::from_fn(3, 4, |i, j| (i * 4 + j) as f64 * 0.5 - 2.0);
        let b = Matrix::from_fn(5, 4, |i, j| (i as f64) - 0.3 * (j as f64));
        let fast = a.matmul_nt(&b).unwrap();
        let slow = a.matmul(&b.transpose()).unwrap();
        assert_eq!(fast, slow);
        assert!(a.matmul_nt(&Matrix::zeros(5, 3)).is_err());
    }

    #[test]
    fn matmul_tn_matches_explicit_transpose() {
        let a = Matrix::from_fn(4, 3, |i, j| (i * 3 + j) as f64 * 0.5 - 2.0);
        let b = Matrix::from_fn(4, 5, |i, j| (i as f64) - 0.3 * (j as f64));
        let fast = a.matmul_tn(&b).unwrap();
        let slow = a.transpose().matmul(&b).unwrap();
        assert_eq!(fast, slow);
        assert!(a.matmul_tn(&Matrix::zeros(3, 5)).is_err());
    }

    #[test]
    fn in_place_kernels_match_allocating_ops() {
        let a = sample();
        let b = a.map(|x| 0.5 * x - 1.0);

        let mut acc = a.clone();
        acc.add_assign(&b).unwrap();
        assert_eq!(acc, a.add(&b).unwrap());

        let mut axpy = a.clone();
        axpy.axpy(-2.5, &b).unwrap();
        assert_eq!(axpy, a.add(&b.scale(-2.5)).unwrap());

        let mut scaled = a.clone();
        scaled.scale_in_place(3.0);
        assert_eq!(scaled, a.scale(3.0));

        let mut out = Matrix::zeros(2, 3);
        a.map_into(|x| x * x, &mut out).unwrap();
        assert_eq!(out, a.map(|x| x * x));

        a.zip_with_into(&b, "test", |x, y| x * y, &mut out).unwrap();
        assert_eq!(out, a.hadamard(&b).unwrap());

        let mut copy = Matrix::zeros(2, 3);
        copy.copy_from(&a).unwrap();
        assert_eq!(copy, a);
    }

    #[test]
    fn in_place_kernels_reject_shape_mismatch() {
        let a = sample();
        let wrong = Matrix::zeros(3, 2);
        assert!(a.clone().add_assign(&wrong).is_err());
        assert!(a.clone().axpy(1.0, &wrong).is_err());
        assert!(a.clone().copy_from(&wrong).is_err());
        let mut out = Matrix::zeros(3, 2);
        assert!(a.map_into(|x| x, &mut out).is_err());
        assert!(a.zip_with_into(&a, "test", |x, _| x, &mut out).is_err());
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    fn arb_matrix(max_dim: usize) -> impl Strategy<Value = Matrix> {
        (1..=max_dim, 1..=max_dim).prop_flat_map(|(r, c)| {
            proptest::collection::vec(-100.0..100.0f64, r * c)
                .prop_map(move |data| Matrix::from_vec(r, c, data).expect("sized"))
        })
    }

    proptest! {
        #[test]
        fn transpose_involution(m in arb_matrix(6)) {
            prop_assert_eq!(m.transpose().transpose(), m);
        }

        #[test]
        fn transpose_of_product((a, b) in (1usize..5, 1usize..5, 1usize..5).prop_flat_map(|(m, k, n)| {
            let a = proptest::collection::vec(-10.0..10.0f64, m * k)
                .prop_map(move |d| Matrix::from_vec(m, k, d).expect("sized"));
            let b = proptest::collection::vec(-10.0..10.0f64, k * n)
                .prop_map(move |d| Matrix::from_vec(k, n, d).expect("sized"));
            (a, b)
        })) {
            let ab_t = a.matmul(&b).unwrap().transpose();
            let bt_at = b.transpose().matmul(&a.transpose()).unwrap();
            prop_assert!(ab_t.approx_eq(&bt_at, 1e-9));
        }

        #[test]
        fn add_commutes(m in arb_matrix(6)) {
            let n = m.map(|x| x * 0.5 + 1.0);
            prop_assert!(m.add(&n).unwrap().approx_eq(&n.add(&m).unwrap(), 1e-12));
        }

        #[test]
        fn scale_distributes_over_add(m in arb_matrix(5), s in -10.0..10.0f64) {
            let lhs = m.add(&m).unwrap().scale(s);
            let rhs = m.scale(s).add(&m.scale(s)).unwrap();
            prop_assert!(lhs.approx_eq(&rhs, 1e-9));
        }

        #[test]
        fn matmul_identity_left(m in arb_matrix(6)) {
            let i = Matrix::identity(m.rows());
            prop_assert!(i.matmul(&m).unwrap().approx_eq(&m, 1e-12));
        }
    }

    /// Random rectangular (lhs, rhs) pairs large enough to span several
    /// cache blocks and parallel row bands.
    fn arb_matmul_pair() -> impl Strategy<Value = (Matrix, Matrix)> {
        (1usize..80, 1usize..12, 1usize..12).prop_flat_map(|(m, k, n)| {
            let a = proptest::collection::vec(-10.0..10.0f64, m * k)
                .prop_map(move |d| Matrix::from_vec(m, k, d).expect("sized"));
            let b = proptest::collection::vec(-10.0..10.0f64, k * n)
                .prop_map(move |d| Matrix::from_vec(k, n, d).expect("sized"));
            (a, b)
        })
    }

    proptest! {
        // Fewer, larger cases: each exercises the full kernel stack.
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn blocked_matmul_is_bit_identical_to_reference((a, b) in arb_matmul_pair()) {
            let blocked = a.matmul(&b).unwrap();
            let reference = a.matmul_reference(&b).unwrap();
            prop_assert_eq!(blocked, reference);
        }

        #[test]
        fn parallel_matmul_is_bit_identical_at_1_2_8_threads((a, b) in arb_matmul_pair()) {
            let reference = a.matmul_reference(&b).unwrap();
            for threads in [1usize, 2, 8] {
                let par = a
                    .matmul_parallel(&b, &ParallelConfig::with_threads(threads))
                    .unwrap();
                prop_assert_eq!(&par, &reference);
            }
        }

        #[test]
        fn transpose_matmul_variants_are_bit_identical((a, b) in arb_matmul_pair()) {
            // self · rhsᵀ against the materialized transpose.
            let nt = a.matmul_nt(&b.transpose()).unwrap();
            prop_assert_eq!(nt, a.matmul_reference(&b).unwrap());
            // selfᵀ · rhs against the materialized transpose.
            let tn = a.transpose().matmul_tn(&b).unwrap();
            prop_assert_eq!(tn, a.matmul_reference(&b).unwrap());
        }

        #[test]
        fn matmul_into_reuses_buffers_bit_identically((a, b) in arb_matmul_pair()) {
            // A dirty recycled buffer must not leak into the result.
            let mut out = Matrix::filled(a.rows(), b.cols(), f64::NAN);
            a.matmul_into(&b, &mut out).unwrap();
            prop_assert_eq!(&out, &a.matmul_reference(&b).unwrap());

            let mut nt = Matrix::filled(a.rows(), b.cols(), f64::NAN);
            a.matmul_nt_into(&b.transpose(), &mut nt).unwrap();
            prop_assert_eq!(&nt, &out);

            let mut tn = Matrix::filled(a.rows(), b.cols(), f64::NAN);
            a.transpose().matmul_tn_into(&b, &mut tn).unwrap();
            prop_assert_eq!(&tn, &out);
        }
    }
}
