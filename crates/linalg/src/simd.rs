//! Autovectorization-friendly dense microkernels (f64×4, f32×8, i16→i32).
//!
//! These are the register-tiled inner loops behind both the cache-blocked
//! [`Matrix`](crate::Matrix) matmul and the compiled inference plans in
//! `pnc-core`. Everything is safe code: the kernels are written so LLVM's
//! autovectorizer turns the fixed-width accumulator arrays into SIMD
//! registers (4-wide for `f64`, 8-wide for `f32`), without `unsafe`,
//! intrinsics, or feature detection.
//!
//! The one non-negotiable rule carries over from [`crate::kernels`]: **for
//! every output element the contraction index `k` ascends in exactly the
//! order the naive triple loop uses**. Register tiling unrolls across output
//! *columns* (independent accumulators per output element) and output
//! *rows*, never across `k` — so every kernel here is bit-identical to
//! [`Matrix::matmul_reference`](crate::Matrix::matmul_reference) and its
//! element type's naive loop.
//!
//! The strided entry points (`*_acc_strided`) accumulate into `out` instead
//! of overwriting it, which is what lets the blocked driver sweep `k` in
//! cache-sized panels: storing a partial sum to memory and reloading it is
//! exact in IEEE arithmetic, so panel boundaries never change results.

/// Rows per register tile: four independent output rows share each loaded
/// slice of `B`, quadrupling the arithmetic intensity of the inner loop.
const MR: usize = 4;

/// `f64` accumulator width (one AVX2 register).
const NR_F64: usize = 4;

/// `f32` accumulator width (one AVX2 register).
const NR_F32: usize = 8;

macro_rules! gemm_acc_strided {
    ($(#[$doc:meta])* $name:ident, $t:ty, $nr:expr) => {
        $(#[$doc])*
        pub fn $name(
            a: &[$t],
            lda: usize,
            b: &[$t],
            ldb: usize,
            out: &mut [$t],
            ldo: usize,
            (m, kk, n): (usize, usize, usize),
        ) {
            const NR: usize = $nr;
            let mut i = 0;
            // Four-row register tile: every loaded B slice feeds 4 rows.
            while i + MR <= m {
                let a0 = &a[i * lda..i * lda + kk];
                let a1 = &a[(i + 1) * lda..(i + 1) * lda + kk];
                let a2 = &a[(i + 2) * lda..(i + 2) * lda + kk];
                let a3 = &a[(i + 3) * lda..(i + 3) * lda + kk];
                let mut j = 0;
                while j + NR <= n {
                    let mut c0 = [0 as $t; NR];
                    let mut c1 = [0 as $t; NR];
                    let mut c2 = [0 as $t; NR];
                    let mut c3 = [0 as $t; NR];
                    c0.copy_from_slice(&out[i * ldo + j..i * ldo + j + NR]);
                    c1.copy_from_slice(&out[(i + 1) * ldo + j..(i + 1) * ldo + j + NR]);
                    c2.copy_from_slice(&out[(i + 2) * ldo + j..(i + 2) * ldo + j + NR]);
                    c3.copy_from_slice(&out[(i + 3) * ldo + j..(i + 3) * ldo + j + NR]);
                    for k in 0..kk {
                        let bv = &b[k * ldb + j..k * ldb + j + NR];
                        let (x0, x1, x2, x3) = (a0[k], a1[k], a2[k], a3[k]);
                        for l in 0..NR {
                            c0[l] += x0 * bv[l];
                        }
                        for l in 0..NR {
                            c1[l] += x1 * bv[l];
                        }
                        for l in 0..NR {
                            c2[l] += x2 * bv[l];
                        }
                        for l in 0..NR {
                            c3[l] += x3 * bv[l];
                        }
                    }
                    out[i * ldo + j..i * ldo + j + NR].copy_from_slice(&c0);
                    out[(i + 1) * ldo + j..(i + 1) * ldo + j + NR].copy_from_slice(&c1);
                    out[(i + 2) * ldo + j..(i + 2) * ldo + j + NR].copy_from_slice(&c2);
                    out[(i + 3) * ldo + j..(i + 3) * ldo + j + NR].copy_from_slice(&c3);
                    j += NR;
                }
                // Column remainder: scalar accumulators, same k order.
                while j < n {
                    let mut c0 = out[i * ldo + j];
                    let mut c1 = out[(i + 1) * ldo + j];
                    let mut c2 = out[(i + 2) * ldo + j];
                    let mut c3 = out[(i + 3) * ldo + j];
                    for k in 0..kk {
                        let bv = b[k * ldb + j];
                        c0 += a0[k] * bv;
                        c1 += a1[k] * bv;
                        c2 += a2[k] * bv;
                        c3 += a3[k] * bv;
                    }
                    out[i * ldo + j] = c0;
                    out[(i + 1) * ldo + j] = c1;
                    out[(i + 2) * ldo + j] = c2;
                    out[(i + 3) * ldo + j] = c3;
                    j += 1;
                }
                i += MR;
            }
            // Row remainder: single-row tile, NR-wide then scalar columns.
            while i < m {
                let ar = &a[i * lda..i * lda + kk];
                let mut j = 0;
                while j + NR <= n {
                    let mut c = [0 as $t; NR];
                    c.copy_from_slice(&out[i * ldo + j..i * ldo + j + NR]);
                    for k in 0..kk {
                        let bv = &b[k * ldb + j..k * ldb + j + NR];
                        let x = ar[k];
                        for l in 0..NR {
                            c[l] += x * bv[l];
                        }
                    }
                    out[i * ldo + j..i * ldo + j + NR].copy_from_slice(&c);
                    j += NR;
                }
                while j < n {
                    let mut c = out[i * ldo + j];
                    for k in 0..kk {
                        c += ar[k] * b[k * ldb + j];
                    }
                    out[i * ldo + j] = c;
                    j += 1;
                }
                i += 1;
            }
        }
    };
}

gemm_acc_strided!(
    /// Accumulates `out[0..m, 0..n] += A[0..m, 0..kk] · B[0..kk, 0..n]` over
    /// strided row-major panels (`lda`/`ldb`/`ldo` elements between row
    /// starts); the final argument is the `(m, kk, n)` shape triple. Per
    /// output element the contraction index `k` ascends, so the result is
    /// bit-identical to the naive triple loop for any tiling.
    ///
    /// Panics (via slice indexing) if a panel reaches past its backing
    /// slice; shapes are the caller's responsibility.
    gemm_f64_acc_strided,
    f64,
    NR_F64
);

gemm_acc_strided!(
    /// `f32` twin of [`gemm_f64_acc_strided`] with 8-wide accumulators.
    gemm_f32_acc_strided,
    f32,
    NR_F32
);

/// `out = A · B` for contiguous row-major `f64` slices (`A` is `m×kk`, `B`
/// is `kk×n`, `out` is `m×n`, fully overwritten). Bit-identical to
/// [`Matrix::matmul`](crate::Matrix::matmul) on the same data.
pub fn gemm_f64(m: usize, kk: usize, n: usize, a: &[f64], b: &[f64], out: &mut [f64]) {
    debug_assert_eq!(a.len(), m * kk);
    debug_assert_eq!(b.len(), kk * n);
    debug_assert_eq!(out.len(), m * n);
    out.fill(0.0);
    gemm_f64_acc_strided(a, kk, b, n, out, n, (m, kk, n));
}

/// `out = A · B` for contiguous row-major `f32` slices (shapes as
/// [`gemm_f64`]). Same ascending-`k` contraction order in `f32` arithmetic.
pub fn gemm_f32(m: usize, kk: usize, n: usize, a: &[f32], b: &[f32], out: &mut [f32]) {
    debug_assert_eq!(a.len(), m * kk);
    debug_assert_eq!(b.len(), kk * n);
    debug_assert_eq!(out.len(), m * n);
    out.fill(0.0);
    gemm_f32_acc_strided(a, kk, b, n, out, n, (m, kk, n));
}

/// Fixed-point `out = A · B`: `i16` operands, `i32` accumulators (`A` is
/// `m×kk`, `B` is `kk×n`, `out` fully overwritten).
///
/// Integer addition is associative, so this kernel has no ordering contract
/// to honor — the tiling is purely for speed. Callers are responsible for
/// scaling operands so the products sum within `i32` (the quantized
/// inference plan in `pnc-core` uses Q1.14 on both sides, bounding each
/// accumulator by `kk · 2^28`).
pub fn gemm_i16_i32(m: usize, kk: usize, n: usize, a: &[i16], b: &[i16], out: &mut [i32]) {
    const NR: usize = 8;
    debug_assert_eq!(a.len(), m * kk);
    debug_assert_eq!(b.len(), kk * n);
    debug_assert_eq!(out.len(), m * n);
    out.fill(0);
    for i in 0..m {
        let ar = &a[i * kk..(i + 1) * kk];
        let out_row = &mut out[i * n..(i + 1) * n];
        let mut j = 0;
        while j + NR <= n {
            let mut c = [0i32; NR];
            for (k, &av) in ar.iter().enumerate() {
                let bv = &b[k * n + j..k * n + j + NR];
                let x = i32::from(av);
                for l in 0..NR {
                    c[l] += x * i32::from(bv[l]);
                }
            }
            out_row[j..j + NR].copy_from_slice(&c);
            j += NR;
        }
        while j < n {
            let mut c = 0i32;
            for (k, &av) in ar.iter().enumerate() {
                c += i32::from(av) * i32::from(b[k * n + j]);
            }
            out_row[j] = c;
            j += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive_f64(m: usize, kk: usize, n: usize, a: &[f64], b: &[f64]) -> Vec<f64> {
        let mut out = vec![0.0; m * n];
        for i in 0..m {
            for k in 0..kk {
                let aik = a[i * kk + k];
                for j in 0..n {
                    out[i * n + j] += aik * b[k * n + j];
                }
            }
        }
        out
    }

    #[test]
    fn gemm_f64_is_bit_identical_to_naive_across_shapes() {
        // Exercise every remainder path: m % 4 and n % 4 in all phases.
        for &(m, kk, n) in &[
            (1, 1, 1),
            (4, 4, 4),
            (5, 3, 7),
            (7, 9, 5),
            (8, 2, 9),
            (13, 17, 11),
            (3, 8, 4),
        ] {
            let a: Vec<f64> = (0..m * kk)
                .map(|v| ((v * 37 + 11) % 23) as f64 / 7.0 - 1.3)
                .collect();
            let b: Vec<f64> = (0..kk * n)
                .map(|v| ((v * 29 + 5) % 19) as f64 / 6.0 - 1.1)
                .collect();
            let mut out = vec![1.0; m * n]; // must be fully overwritten
            gemm_f64(m, kk, n, &a, &b, &mut out);
            let expect = naive_f64(m, kk, n, &a, &b);
            assert_eq!(out, expect, "shape {m}x{kk}x{n}");
        }
    }

    #[test]
    fn strided_accumulation_matches_single_pass() {
        // Splitting k into panels and accumulating must give the same bits
        // as one pass, because partial sums round-trip memory exactly.
        let (m, kk, n) = (6, 10, 9);
        let a: Vec<f64> = (0..m * kk).map(|v| (v as f64).sin()).collect();
        let b: Vec<f64> = (0..kk * n).map(|v| (v as f64).cos()).collect();
        let mut once = vec![0.0; m * n];
        gemm_f64(m, kk, n, &a, &b, &mut once);
        let mut split = vec![0.0; m * n];
        for (k0, k1) in [(0usize, 3usize), (3, 7), (7, 10)] {
            let a_panel: Vec<f64> = (0..m)
                .flat_map(|i| a[i * kk + k0..i * kk + k1].to_vec())
                .collect();
            gemm_f64_acc_strided(
                &a_panel,
                k1 - k0,
                &b[k0 * n..],
                n,
                &mut split,
                n,
                (m, k1 - k0, n),
            );
        }
        assert_eq!(once, split);
    }

    #[test]
    fn gemm_f32_matches_naive_f32() {
        let (m, kk, n) = (5, 6, 11);
        let a: Vec<f32> = (0..m * kk).map(|v| ((v % 13) as f32) / 3.0 - 1.5).collect();
        let b: Vec<f32> = (0..kk * n).map(|v| ((v % 7) as f32) / 2.0 - 1.0).collect();
        let mut out = vec![9.0f32; m * n];
        gemm_f32(m, kk, n, &a, &b, &mut out);
        for i in 0..m {
            for j in 0..n {
                let mut acc = 0.0f32;
                for k in 0..kk {
                    acc += a[i * kk + k] * b[k * n + j];
                }
                assert_eq!(out[i * n + j], acc, "({i},{j})");
            }
        }
    }

    #[test]
    fn gemm_i16_widens_products() {
        let (m, kk, n) = (3, 4, 9);
        let a: Vec<i16> = (0..m * kk).map(|v| (v as i16 - 6) * 1000).collect();
        let b: Vec<i16> = (0..kk * n).map(|v| (v as i16 - 18) * 700).collect();
        let mut out = vec![0i32; m * n];
        gemm_i16_i32(m, kk, n, &a, &b, &mut out);
        for i in 0..m {
            for j in 0..n {
                let mut acc = 0i64;
                for k in 0..kk {
                    acc += i64::from(a[i * kk + k]) * i64::from(b[k * n + j]);
                }
                assert_eq!(i64::from(out[i * n + j]), acc, "({i},{j})");
            }
        }
    }
}
