//! Scalar summary statistics.
//!
//! The experiment tables of the paper report the mean and standard deviation
//! of test accuracy over `N_test = 100` Monte-Carlo variation samples; these
//! helpers compute exactly those summaries.
//!
//! # Examples
//!
//! ```
//! let xs = [1.0, 2.0, 3.0, 4.0];
//! assert_eq!(pnc_linalg::stats::mean(&xs), 2.5);
//! ```

/// Arithmetic mean of a slice, or `0.0` for an empty slice.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Population standard deviation (divides by `n`), or `0.0` for a slice with
/// fewer than two elements.
///
/// The paper reports the spread of a complete set of Monte-Carlo evaluations,
/// so the population convention (rather than the `n - 1` sample convention)
/// is used. See [`sample_std`] for the unbiased variant.
pub fn std(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    (xs.iter().map(|x| (x - m).powi(2)).sum::<f64>() / xs.len() as f64).sqrt()
}

/// Sample standard deviation (divides by `n - 1`), or `0.0` for a slice with
/// fewer than two elements.
pub fn sample_std(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    (xs.iter().map(|x| (x - m).powi(2)).sum::<f64>() / (xs.len() - 1) as f64).sqrt()
}

/// Minimum of a slice, or `None` for an empty slice.
///
/// Returning `Option` (rather than `f64::INFINITY`) keeps non-finite
/// sentinels out of serialized artifacts when a summary is built from an
/// empty result set.
///
/// ```
/// assert_eq!(pnc_linalg::stats::min(&[]), None);
/// assert_eq!(pnc_linalg::stats::min(&[2.0, -1.0]), Some(-1.0));
/// ```
pub fn min(xs: &[f64]) -> Option<f64> {
    xs.iter().copied().reduce(f64::min)
}

/// Maximum of a slice, or `None` for an empty slice.
///
/// ```
/// assert_eq!(pnc_linalg::stats::max(&[]), None);
/// assert_eq!(pnc_linalg::stats::max(&[2.0, -1.0]), Some(2.0));
/// ```
pub fn max(xs: &[f64]) -> Option<f64> {
    xs.iter().copied().reduce(f64::max)
}

/// Coefficient of determination R² of predictions against targets.
///
/// Returns `1.0` for a perfect fit and can be negative for fits worse than
/// predicting the mean. Used to report the surrogate parity plot (Fig. 4,
/// right) as a scalar.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn r_squared(targets: &[f64], predictions: &[f64]) -> f64 {
    assert_eq!(
        targets.len(),
        predictions.len(),
        "r_squared requires equal-length slices"
    );
    if targets.is_empty() {
        return 0.0;
    }
    let m = mean(targets);
    let ss_tot: f64 = targets.iter().map(|t| (t - m).powi(2)).sum();
    let ss_res: f64 = targets
        .iter()
        .zip(predictions)
        .map(|(t, p)| (t - p).powi(2))
        .sum();
    if ss_tot == 0.0 {
        if ss_res == 0.0 {
            1.0
        } else {
            f64::NEG_INFINITY
        }
    } else {
        1.0 - ss_res / ss_tot
    }
}

/// Mean squared error between predictions and targets.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn mse(targets: &[f64], predictions: &[f64]) -> f64 {
    assert_eq!(
        targets.len(),
        predictions.len(),
        "mse requires equal-length slices"
    );
    if targets.is_empty() {
        return 0.0;
    }
    targets
        .iter()
        .zip(predictions)
        .map(|(t, p)| (t - p).powi(2))
        .sum::<f64>()
        / targets.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_of_empty_is_zero() {
        assert_eq!(mean(&[]), 0.0);
    }

    #[test]
    fn mean_basic() {
        assert_eq!(mean(&[2.0, 4.0]), 3.0);
    }

    #[test]
    fn std_of_constant_is_zero() {
        assert_eq!(std(&[5.0, 5.0, 5.0]), 0.0);
    }

    #[test]
    fn std_known_value() {
        // Population std of [1, 3] is 1.
        assert!((std(&[1.0, 3.0]) - 1.0).abs() < 1e-12);
        // Sample std of [1, 3] is sqrt(2).
        assert!((sample_std(&[1.0, 3.0]) - 2.0f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn min_max_basic() {
        let xs = [3.0, -1.0, 2.0];
        assert_eq!(min(&xs), Some(-1.0));
        assert_eq!(max(&xs), Some(3.0));
    }

    #[test]
    fn min_max_of_empty_is_none() {
        // Regression: these used to return ±INFINITY, which leaked
        // non-finite values into JSON artifacts.
        assert_eq!(min(&[]), None);
        assert_eq!(max(&[]), None);
    }

    #[test]
    fn r_squared_perfect_fit() {
        let t = [1.0, 2.0, 3.0];
        assert!((r_squared(&t, &t) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn r_squared_mean_prediction_is_zero() {
        let t = [1.0, 2.0, 3.0];
        let p = [2.0, 2.0, 2.0];
        assert!(r_squared(&t, &p).abs() < 1e-12);
    }

    #[test]
    fn mse_basic() {
        assert!((mse(&[1.0, 2.0], &[2.0, 4.0]) - 2.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "equal-length")]
    fn mse_length_mismatch_panics() {
        mse(&[1.0], &[1.0, 2.0]);
    }
}
