//! Sparse matrix storage and sparse LU factorization.
//!
//! Dense LU ([`Lu`](crate::Lu)) costs O(n³) regardless of structure, which
//! caps the circuit simulator at the paper's Fig. 1 activation subcircuit.
//! MNA matrices of full printed-neuromorphic networks are overwhelmingly
//! sparse — a node couples only to its few incident devices — so this module
//! provides the storage and factorization that scale with *nonzeros* instead
//! of dimension:
//!
//! * [`SparseBuilder`] — coordinate-format assembly buffer; duplicate
//!   entries are summed, mirroring MNA stamping.
//! * [`CscMatrix`] — compressed-sparse-column storage with deterministic
//!   matrix–vector products.
//! * [`SparseLu`] — sparse LU with Markowitz pivoting (fill-minimizing
//!   pivot choice under a partial-pivoting stability threshold) and a
//!   cached symbolic analysis: [`SparseLu::refactor`] re-runs the numeric
//!   elimination along the recorded pivot order, skipping the pivot search
//!   entirely for same-pattern matrices (Newton re-assemblies, sweep
//!   points).
//!
//! Everything here is deterministic: pivot selection scans in fixed index
//! order with fixed tie-breaking, eliminations run serially, and explicit
//! zeros are preserved so a matrix family sharing one sparsity pattern
//! keeps that pattern through every refactorization.
//!
//! # Examples
//!
//! ```
//! use pnc_linalg::sparse::{SparseBuilder, SparseLu};
//!
//! # fn main() -> Result<(), pnc_linalg::LinalgError> {
//! let mut b = SparseBuilder::new(2, 2);
//! b.push(0, 0, 4.0);
//! b.push(0, 1, 1.0);
//! b.push(1, 0, 1.0);
//! b.push(1, 1, 3.0);
//! let a = b.build()?;
//! let lu = SparseLu::factor(&a)?;
//! let x = lu.solve(&[1.0, 2.0])?;
//! assert!((4.0 * x[0] + x[1] - 1.0).abs() < 1e-12);
//! assert!((x[0] + 3.0 * x[1] - 2.0).abs() < 1e-12);
//! # Ok(())
//! # }
//! ```

#![deny(missing_docs)]

use crate::{LinalgError, Matrix};

/// Coordinate-format (triplet) assembly buffer for a sparse matrix.
///
/// [`push`](Self::push) records `(row, col, value)` triplets in any order;
/// [`build`](Self::build) sorts, sums duplicates (the natural semantics of
/// MNA stamping, where several devices contribute to one matrix entry), and
/// produces a [`CscMatrix`]. Exact-zero results of the summation are *kept*
/// as explicit entries so that re-assembling the same device structure
/// always yields the same sparsity pattern.
#[derive(Debug, Clone)]
pub struct SparseBuilder {
    rows: usize,
    cols: usize,
    triplets: Vec<(usize, usize, f64)>,
}

impl SparseBuilder {
    /// Creates an empty builder for a `rows × cols` matrix.
    pub fn new(rows: usize, cols: usize) -> Self {
        SparseBuilder {
            rows,
            cols,
            triplets: Vec::new(),
        }
    }

    /// Records `value` at `(row, col)`; repeated coordinates are summed by
    /// [`build`](Self::build). Out-of-range coordinates are reported there,
    /// not here, so stamping loops stay infallible.
    pub fn push(&mut self, row: usize, col: usize, value: f64) {
        self.triplets.push((row, col, value));
    }

    /// Number of triplets recorded so far (before duplicate merging).
    pub fn len(&self) -> usize {
        self.triplets.len()
    }

    /// `true` when no triplet has been recorded.
    pub fn is_empty(&self) -> bool {
        self.triplets.is_empty()
    }

    /// Compresses the triplets into column-major storage.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] if any triplet lies
    /// outside the declared shape.
    pub fn build(&self) -> Result<CscMatrix, LinalgError> {
        for &(r, c, _) in &self.triplets {
            if r >= self.rows || c >= self.cols {
                return Err(LinalgError::DimensionMismatch {
                    op: "sparse_build",
                    lhs: (self.rows, self.cols),
                    rhs: (r, c),
                });
            }
        }
        let mut sorted = self.triplets.clone();
        sorted.sort_by_key(|&(r, c, _)| (c, r));

        let mut col_ptr = vec![0usize; self.cols + 1];
        let mut row_idx = Vec::with_capacity(sorted.len());
        let mut values = Vec::with_capacity(sorted.len());
        let mut iter = sorted.into_iter().peekable();
        while let Some((r, c, mut v)) = iter.next() {
            while let Some(&(r2, c2, v2)) = iter.peek() {
                if r2 == r && c2 == c {
                    v += v2;
                    iter.next();
                } else {
                    break;
                }
            }
            row_idx.push(r);
            values.push(v);
            col_ptr[c + 1] += 1;
        }
        for c in 0..self.cols {
            col_ptr[c + 1] += col_ptr[c];
        }
        Ok(CscMatrix {
            nrows: self.rows,
            ncols: self.cols,
            col_ptr,
            row_idx,
            values,
        })
    }
}

/// Compressed-sparse-column matrix of `f64` entries.
///
/// Construct via [`SparseBuilder`]. Entries within each column are sorted
/// by row; explicit zeros are legal and preserved (see [`SparseBuilder`]).
#[derive(Debug, Clone, PartialEq)]
pub struct CscMatrix {
    nrows: usize,
    ncols: usize,
    /// `col_ptr[c]..col_ptr[c + 1]` indexes column `c` in `row_idx`/`values`.
    col_ptr: Vec<usize>,
    row_idx: Vec<usize>,
    values: Vec<f64>,
}

impl CscMatrix {
    /// Shape as `(rows, cols)`.
    pub fn shape(&self) -> (usize, usize) {
        (self.nrows, self.ncols)
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.nrows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.ncols
    }

    /// Number of stored entries (explicit zeros included).
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// The stored entry at `(row, col)`, or `0.0` when the position holds no
    /// entry.
    pub fn get(&self, row: usize, col: usize) -> f64 {
        if row >= self.nrows || col >= self.ncols {
            return 0.0;
        }
        let lo = self.col_ptr[col];
        let hi = self.col_ptr[col + 1];
        match self.row_idx[lo..hi].binary_search(&row) {
            Ok(k) => self.values[lo + k],
            Err(_) => 0.0,
        }
    }

    /// Computes `y = A·x` in a fixed accumulation order (column-major, rows
    /// ascending), so repeated products are bit-identical.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] if `x.len() != cols` or
    /// `y.len() != rows`.
    pub fn mul_vec(&self, x: &[f64], y: &mut [f64]) -> Result<(), LinalgError> {
        if x.len() != self.ncols || y.len() != self.nrows {
            return Err(LinalgError::DimensionMismatch {
                op: "sparse_mul_vec",
                lhs: (self.nrows, self.ncols),
                rhs: (y.len(), x.len()),
            });
        }
        y.fill(0.0);
        for (c, &xc) in x.iter().enumerate() {
            for k in self.col_ptr[c]..self.col_ptr[c + 1] {
                y[self.row_idx[k]] += self.values[k] * xc;
            }
        }
        Ok(())
    }

    /// Expands to a dense [`Matrix`] (tests and small diagnostics only).
    pub fn to_dense(&self) -> Matrix {
        let mut m = Matrix::zeros(self.nrows, self.ncols);
        for c in 0..self.ncols {
            for k in self.col_ptr[c]..self.col_ptr[c + 1] {
                m[(self.row_idx[k], c)] = self.values[k];
            }
        }
        m
    }
}

/// The cached symbolic analysis of a [`SparseLu`]: the pivot order chosen by
/// the Markowitz search. Refactorizations of same-pattern matrices follow
/// this order verbatim and skip the search.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Symbolic {
    row_perm: Vec<usize>,
    col_perm: Vec<usize>,
}

impl Symbolic {
    /// Dimension of the matrices this analysis applies to.
    pub fn dim(&self) -> usize {
        self.row_perm.len()
    }
}

/// Sparse LU factorization with Markowitz-ordered pivoting.
///
/// [`factor`](Self::factor) chooses each pivot to minimize the Markowitz
/// fill estimate `(r−1)·(c−1)` among entries passing a partial-pivoting
/// stability threshold, records the resulting pivot order as a [`Symbolic`]
/// analysis, and stores the numeric factors in a form optimized for
/// repeated [`solve`](Self::solve) calls. [`refactor`](Self::refactor)
/// renumbers a *same-pattern* matrix (identical structure, new values —
/// exactly what Newton re-assembly produces) along the cached pivot order,
/// skipping the O(n·nnz) pivot search.
///
/// All arithmetic runs in a fixed serial order: factors, refactors, and
/// solves are bit-identical across runs and thread counts.
#[derive(Debug, Clone)]
pub struct SparseLu {
    dim: usize,
    symbolic: Symbolic,
    /// Per elimination step `k`: `(original row, multiplier)` of every row
    /// the pivot row was subtracted from.
    l_ops: Vec<Vec<(usize, f64)>>,
    /// Per elimination step `k`: the pivot row over the columns still active
    /// after step `k` (original column indices), pivot entry excluded.
    u_rows: Vec<Vec<(usize, f64)>>,
    /// Pivot values, one per elimination step.
    pivots: Vec<f64>,
}

/// Pivots smaller than this (absolute value) are treated as singular —
/// matches the dense [`Lu`](crate::Lu) tolerance.
const PIVOT_TOL: f64 = 1e-14;

/// Relative stability threshold for Markowitz pivoting: a candidate must be
/// at least this fraction of the largest active entry in its column. The
/// classic compromise (Duff/Erisman/Reid) between sparsity and growth.
const MARKOWITZ_THRESHOLD: f64 = 0.1;

impl SparseLu {
    /// Factors a square sparse matrix, choosing the pivot order by the
    /// Markowitz criterion.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] if `a` is not square and
    /// [`LinalgError::Singular`] if no stable pivot remains at some
    /// elimination step.
    pub fn factor(a: &CscMatrix) -> Result<Self, LinalgError> {
        Self::factor_inner(a, None)
    }

    /// Re-runs the numeric factorization of a same-pattern matrix along the
    /// cached pivot order, without any pivot search.
    ///
    /// The caller guarantees `a` has the sparsity pattern of the originally
    /// factored matrix (the MNA assembly of a fixed circuit topology always
    /// does). On success `self` holds the new factors.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] on a shape change and
    /// [`LinalgError::Singular`] when a recorded pivot position is absent
    /// or numerically too small for the new values — the caller should then
    /// fall back to a fresh [`factor`](Self::factor), which re-runs the
    /// stability-aware pivot search. `self` is unchanged on error.
    pub fn refactor(&mut self, a: &CscMatrix) -> Result<(), LinalgError> {
        let fresh = Self::factor_inner(a, Some(&self.symbolic))?;
        *self = fresh;
        Ok(())
    }

    fn factor_inner(a: &CscMatrix, fixed: Option<&Symbolic>) -> Result<Self, LinalgError> {
        let (n, m) = a.shape();
        if n != m {
            return Err(LinalgError::DimensionMismatch {
                op: "sparse_lu_factor",
                lhs: a.shape(),
                rhs: a.shape(),
            });
        }
        if let Some(sym) = fixed {
            if sym.dim() != n {
                return Err(LinalgError::DimensionMismatch {
                    op: "sparse_lu_refactor",
                    lhs: (sym.dim(), sym.dim()),
                    rhs: a.shape(),
                });
            }
        }

        // Working rows: active entries sorted by column.
        let mut rows_ws: Vec<Vec<(usize, f64)>> = vec![Vec::new(); n];
        for c in 0..n {
            for k in a.col_ptr[c]..a.col_ptr[c + 1] {
                rows_ws[a.row_idx[k]].push((c, a.values[k]));
            }
        }
        for r in rows_ws.iter_mut() {
            r.sort_by_key(|&(c, _)| c);
        }

        let mut row_active = vec![true; n];
        let mut col_active = vec![true; n];
        // Active rows holding an entry in each column (Markowitz column
        // counts; maintained incrementally).
        let mut col_count = vec![0usize; n];
        for row in &rows_ws {
            for &(c, _) in row {
                col_count[c] += 1;
            }
        }

        let mut row_perm = Vec::with_capacity(n);
        let mut col_perm = Vec::with_capacity(n);
        let mut l_ops: Vec<Vec<(usize, f64)>> = Vec::with_capacity(n);
        let mut u_rows: Vec<Vec<(usize, f64)>> = Vec::with_capacity(n);
        let mut pivots = Vec::with_capacity(n);
        let mut col_max = vec![0.0f64; n];
        let mut merged: Vec<(usize, f64)> = Vec::new();

        for step in 0..n {
            // --- Pivot selection ---------------------------------------
            let (pi, pj) = if let Some(sym) = fixed {
                (sym.row_perm[step], sym.col_perm[step])
            } else {
                // Column maxima over the active submatrix, for the
                // stability threshold. Active rows only reference active
                // columns (eliminated columns are removed from every row).
                col_max.fill(0.0);
                for (r, row) in rows_ws.iter().enumerate() {
                    if !row_active[r] {
                        continue;
                    }
                    for &(c, v) in row {
                        let av = v.abs();
                        if col_active[c] && av > col_max[c] {
                            col_max[c] = av;
                        }
                    }
                }
                let mut best: Option<(usize, usize, usize)> = None;
                for (r, row) in rows_ws.iter().enumerate() {
                    if !row_active[r] {
                        continue;
                    }
                    let r_count = row.len();
                    for &(c, v) in row {
                        let av = v.abs();
                        if av < PIVOT_TOL || av < MARKOWITZ_THRESHOLD * col_max[c] {
                            continue;
                        }
                        let cost = (r_count - 1) * (col_count[c] - 1);
                        // Strict `<` keeps the first (lowest row, then
                        // lowest column) candidate on ties: deterministic.
                        if best.is_none_or(|(bc, _, _)| cost < bc) {
                            best = Some((cost, r, c));
                        }
                    }
                }
                match best {
                    Some((_, r, c)) => (r, c),
                    None => return Err(LinalgError::Singular { pivot: step }),
                }
            };

            if !row_active[pi] || !col_active[pj] {
                return Err(LinalgError::Singular { pivot: step });
            }
            let pivot_pos = match rows_ws[pi].binary_search_by_key(&pj, |&(c, _)| c) {
                Ok(p) => p,
                Err(_) => return Err(LinalgError::Singular { pivot: step }),
            };
            let pivot_val = rows_ws[pi][pivot_pos].1;
            if pivot_val.abs() < PIVOT_TOL {
                return Err(LinalgError::Singular { pivot: step });
            }

            // --- Elimination -------------------------------------------
            let mut pivot_row = std::mem::take(&mut rows_ws[pi]);
            row_active[pi] = false;
            for &(c, _) in &pivot_row {
                col_count[c] -= 1;
            }
            pivot_row.remove(pivot_pos);
            col_active[pj] = false;

            let mut ops: Vec<(usize, f64)> = Vec::new();
            for (r, row) in rows_ws.iter_mut().enumerate() {
                if !row_active[r] {
                    continue;
                }
                let Ok(pos) = row.binary_search_by_key(&pj, |&(c, _)| c) else {
                    continue;
                };
                let mult = row[pos].1 / pivot_val;
                row.remove(pos);
                col_count[pj] = col_count[pj].saturating_sub(1);
                // row ← row − mult · pivot_row, merged in column order.
                // Exact-zero results are kept so the pattern stays stable
                // across refactorizations.
                merged.clear();
                let mut i = 0;
                let mut j = 0;
                while i < row.len() || j < pivot_row.len() {
                    match (row.get(i), pivot_row.get(j)) {
                        (Some(&(ca, va)), Some(&(cb, vb))) => {
                            if ca < cb {
                                merged.push((ca, va));
                                i += 1;
                            } else if cb < ca {
                                merged.push((cb, -mult * vb));
                                col_count[cb] += 1;
                                j += 1;
                            } else {
                                merged.push((ca, va - mult * vb));
                                i += 1;
                                j += 1;
                            }
                        }
                        (Some(&(ca, va)), None) => {
                            merged.push((ca, va));
                            i += 1;
                        }
                        (None, Some(&(cb, vb))) => {
                            merged.push((cb, -mult * vb));
                            col_count[cb] += 1;
                            j += 1;
                        }
                        (None, None) => {}
                    }
                }
                std::mem::swap(row, &mut merged);
                ops.push((r, mult));
            }

            row_perm.push(pi);
            col_perm.push(pj);
            l_ops.push(ops);
            u_rows.push(pivot_row);
            pivots.push(pivot_val);
        }

        Ok(SparseLu {
            dim: n,
            symbolic: Symbolic { row_perm, col_perm },
            l_ops,
            u_rows,
            pivots,
        })
    }

    /// Dimension of the factored matrix.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// The cached pivot order, reusable via [`SparseLu::refactor`].
    pub fn symbolic(&self) -> &Symbolic {
        &self.symbolic
    }

    /// Stored nonzeros of the L and U factors combined (fill-in measure;
    /// the dense equivalent would be `dim²`).
    pub fn factor_nnz(&self) -> usize {
        let l: usize = self.l_ops.iter().map(Vec::len).sum();
        let u: usize = self.u_rows.iter().map(Vec::len).sum();
        l + u + self.dim
    }

    /// Solves `A·x = b` using the stored factors.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] if `b.len() != self.dim()`.
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>, LinalgError> {
        let mut x = vec![0.0; self.dim];
        self.solve_into(b, &mut x)?;
        Ok(x)
    }

    /// Solves `A·x = b` into a preallocated slice, allocating one internal
    /// scratch vector. Bit-identical to [`SparseLu::solve`].
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] on any length mismatch.
    pub fn solve_into(&self, b: &[f64], x: &mut [f64]) -> Result<(), LinalgError> {
        let n = self.dim;
        if b.len() != n || x.len() != n {
            return Err(LinalgError::DimensionMismatch {
                op: "sparse_lu_solve",
                lhs: (n, n),
                rhs: (b.len().max(x.len()), 1),
            });
        }
        // Forward: replay the recorded eliminations on b.
        let mut y = b.to_vec();
        for (k, ops) in self.l_ops.iter().enumerate() {
            let ypr = y[self.symbolic.row_perm[k]];
            for &(r, m) in ops {
                y[r] -= m * ypr;
            }
        }
        // Backward: every column in u_rows[k] is eliminated at a later step,
        // so solving in reverse step order has all dependencies ready.
        for k in (0..n).rev() {
            let mut acc = y[self.symbolic.row_perm[k]];
            for &(c, v) in &self.u_rows[k] {
                acc -= v * x[c];
            }
            x[self.symbolic.col_perm[k]] = acc / self.pivots[k];
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Lu;

    fn dense_residual(a: &CscMatrix, x: &[f64], b: &[f64]) -> f64 {
        let d = a.to_dense();
        let mut worst = 0.0f64;
        for i in 0..b.len() {
            let mut acc = -b[i];
            for (j, xj) in x.iter().enumerate() {
                acc += d[(i, j)] * xj;
            }
            worst = worst.max(acc.abs());
        }
        worst
    }

    fn tridiag(n: usize) -> CscMatrix {
        let mut b = SparseBuilder::new(n, n);
        for i in 0..n {
            b.push(i, i, 4.0 + i as f64 * 0.01);
            if i + 1 < n {
                b.push(i, i + 1, -1.0);
                b.push(i + 1, i, -1.5);
            }
        }
        b.build().unwrap()
    }

    #[test]
    fn builder_sums_duplicates_and_keeps_zeros() {
        let mut b = SparseBuilder::new(2, 2);
        b.push(0, 0, 2.0);
        b.push(0, 0, 3.0);
        b.push(1, 1, 1.0);
        b.push(1, 0, 5.0);
        b.push(1, 0, -5.0); // sums to an explicit zero — kept
        let m = b.build().unwrap();
        assert_eq!(m.nnz(), 3);
        assert_eq!(m.get(0, 0), 5.0);
        assert_eq!(m.get(1, 0), 0.0);
        assert_eq!(m.get(0, 1), 0.0);
        assert_eq!(m.get(1, 1), 1.0);
    }

    #[test]
    fn builder_rejects_out_of_range() {
        let mut b = SparseBuilder::new(2, 2);
        b.push(2, 0, 1.0);
        assert!(matches!(
            b.build(),
            Err(LinalgError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn mul_vec_matches_dense() {
        let a = tridiag(6);
        let x: Vec<f64> = (0..6).map(|i| 0.3 * i as f64 - 0.7).collect();
        let mut y = vec![0.0; 6];
        a.mul_vec(&x, &mut y).unwrap();
        let d = a.to_dense();
        for i in 0..6 {
            let want: f64 = (0..6).map(|j| d[(i, j)] * x[j]).sum();
            assert!((y[i] - want).abs() < 1e-12);
        }
    }

    #[test]
    fn solves_tridiagonal_system() {
        let n = 40;
        let a = tridiag(n);
        let b: Vec<f64> = (0..n).map(|i| (i as f64 * 0.37).sin()).collect();
        let lu = SparseLu::factor(&a).unwrap();
        let x = lu.solve(&b).unwrap();
        assert!(dense_residual(&a, &x, &b) < 1e-10);
        // Tridiagonal elimination in Markowitz order generates no fill.
        assert!(lu.factor_nnz() <= a.nnz());
    }

    #[test]
    fn agrees_with_dense_lu() {
        let a = tridiag(12);
        let b: Vec<f64> = (0..12).map(|i| 1.0 - 0.2 * i as f64).collect();
        let sparse = SparseLu::factor(&a).unwrap().solve(&b).unwrap();
        let dense = Lu::factor(&a.to_dense()).unwrap().solve(&b).unwrap();
        for (s, d) in sparse.iter().zip(&dense) {
            assert!((s - d).abs() < 1e-10, "sparse {s} vs dense {d}");
        }
    }

    #[test]
    fn refactor_matches_fresh_factor_bitwise() {
        let n = 24;
        let a = tridiag(n);
        let mut lu = SparseLu::factor(&a).unwrap();
        let sym = lu.symbolic().clone();

        // Same pattern, new values.
        let mut b = SparseBuilder::new(n, n);
        for i in 0..n {
            b.push(i, i, 5.0 + i as f64 * 0.02);
            if i + 1 < n {
                b.push(i, i + 1, -0.5);
                b.push(i + 1, i, -0.25);
            }
        }
        let a2 = b.build().unwrap();
        lu.refactor(&a2).unwrap();
        assert_eq!(lu.symbolic(), &sym, "refactor must keep the pivot order");

        let rhs: Vec<f64> = (0..n).map(|i| (i as f64).cos()).collect();
        let via_refactor = lu.solve(&rhs).unwrap();
        // A fresh factor of a2 may pick different pivots; the refactored
        // solve must still satisfy the system.
        assert!(dense_residual(&a2, &via_refactor, &rhs) < 1e-10);
    }

    #[test]
    fn refactor_rejects_shape_change() {
        let mut lu = SparseLu::factor(&tridiag(5)).unwrap();
        assert!(matches!(
            lu.refactor(&tridiag(6)),
            Err(LinalgError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn refactor_detects_newly_singular_values() {
        let mut b = SparseBuilder::new(2, 2);
        b.push(0, 0, 1.0);
        b.push(1, 1, 1.0);
        let mut lu = SparseLu::factor(&b.build().unwrap()).unwrap();
        let kept = lu.clone();

        let mut z = SparseBuilder::new(2, 2);
        z.push(0, 0, 0.0);
        z.push(1, 1, 1.0);
        let err = lu.refactor(&z.build().unwrap());
        assert!(matches!(err, Err(LinalgError::Singular { .. })));
        // Error must leave the old factors intact.
        assert_eq!(lu.pivots, kept.pivots);
    }

    #[test]
    fn detects_singular_matrix() {
        let mut b = SparseBuilder::new(2, 2);
        b.push(0, 0, 1.0);
        b.push(0, 1, 2.0);
        b.push(1, 0, 2.0);
        b.push(1, 1, 4.0);
        assert!(matches!(
            SparseLu::factor(&b.build().unwrap()),
            Err(LinalgError::Singular { .. })
        ));
    }

    #[test]
    fn rejects_non_square_and_bad_rhs() {
        let mut b = SparseBuilder::new(2, 3);
        b.push(0, 0, 1.0);
        assert!(matches!(
            SparseLu::factor(&b.build().unwrap()),
            Err(LinalgError::DimensionMismatch { .. })
        ));
        let lu = SparseLu::factor(&tridiag(3)).unwrap();
        assert!(lu.solve(&[1.0, 2.0]).is_err());
    }

    #[test]
    fn pivoting_handles_zero_diagonal() {
        // Anti-diagonal matrix: every diagonal entry is structurally zero.
        let mut b = SparseBuilder::new(3, 3);
        b.push(0, 2, 2.0);
        b.push(1, 1, 3.0);
        b.push(2, 0, 4.0);
        let a = b.build().unwrap();
        let x = SparseLu::factor(&a)
            .unwrap()
            .solve(&[2.0, 6.0, 8.0])
            .unwrap();
        assert!((x[0] - 2.0).abs() < 1e-12);
        assert!((x[1] - 2.0).abs() < 1e-12);
        assert!((x[2] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn solve_into_matches_solve_bitwise() {
        let a = tridiag(9);
        let b: Vec<f64> = (0..9).map(|i| 0.5 - i as f64).collect();
        let lu = SparseLu::factor(&a).unwrap();
        let fresh = lu.solve(&b).unwrap();
        let mut reused = vec![f64::NAN; 9];
        lu.solve_into(&b, &mut reused).unwrap();
        assert_eq!(fresh, reused);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use crate::Lu;
    use proptest::prelude::*;

    /// Random sparse diagonally dominant matrices (always factorable).
    fn arb_sparse_dd(n: usize) -> impl Strategy<Value = CscMatrix> {
        proptest::collection::vec((0..n, 0..n, -1.0..1.0f64), 0..(3 * n)).prop_map(move |entries| {
            let mut b = SparseBuilder::new(n, n);
            let mut diag_boost = vec![1.0f64; n];
            for (r, c, v) in entries {
                b.push(r, c, v);
                diag_boost[r] += v.abs();
            }
            for (i, boost) in diag_boost.iter().enumerate() {
                b.push(i, i, *boost + 1.0);
            }
            b.build().expect("in-range by construction")
        })
    }

    proptest! {
        #[test]
        fn sparse_solution_matches_dense_lu(
            (a, b) in (3usize..10).prop_flat_map(|n| {
                (arb_sparse_dd(n), proptest::collection::vec(-5.0..5.0f64, n))
            })
        ) {
            let sparse = SparseLu::factor(&a).unwrap().solve(&b).unwrap();
            let dense = Lu::factor(&a.to_dense()).unwrap().solve(&b).unwrap();
            for (s, d) in sparse.iter().zip(&dense) {
                prop_assert!((s - d).abs() < 1e-8, "sparse {} vs dense {}", s, d);
            }
        }

        #[test]
        fn refactor_same_values_is_bitwise_stable(
            a in (3usize..10).prop_flat_map(arb_sparse_dd)
        ) {
            let lu = SparseLu::factor(&a).unwrap();
            let mut again = lu.clone();
            again.refactor(&a).unwrap();
            let b: Vec<f64> = (0..a.rows()).map(|i| i as f64 - 2.0).collect();
            prop_assert_eq!(lu.solve(&b).unwrap(), again.solve(&b).unwrap());
        }
    }
}
