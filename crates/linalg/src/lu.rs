use crate::{LinalgError, Matrix};

/// LU decomposition with partial (row) pivoting.
///
/// Factors a square matrix `A` as `P·A = L·U` and reuses the factorization to
/// solve `A·x = b` for many right-hand sides. This is the linear-solver core
/// of both the Newton iteration in `pnc-spice` (modified nodal analysis) and
/// the damped normal equations in `pnc-fit` (Levenberg–Marquardt).
///
/// # Examples
///
/// ```
/// use pnc_linalg::{Lu, Matrix};
///
/// # fn main() -> Result<(), pnc_linalg::LinalgError> {
/// let a = Matrix::from_rows(&[&[2.0, 1.0], &[1.0, 3.0]])?;
/// let lu = Lu::factor(&a)?;
/// let x = lu.solve(&[3.0, 5.0])?;
/// // Verify A * x == b.
/// assert!((2.0 * x[0] + x[1] - 3.0).abs() < 1e-12);
/// assert!((x[0] + 3.0 * x[1] - 5.0).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Lu {
    /// Combined L (strict lower, unit diagonal implied) and U (upper) factors.
    factors: Matrix,
    /// Row permutation: `perm[i]` is the original row now at position `i`.
    perm: Vec<usize>,
    /// Sign of the permutation, used for the determinant.
    perm_sign: f64,
}

impl Lu {
    /// Pivots smaller than this (in absolute value) are treated as singular.
    const PIVOT_TOL: f64 = 1e-14;

    /// Factors a square matrix.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] if `a` is not square and
    /// [`LinalgError::Singular`] if a pivot below the singularity tolerance is
    /// encountered.
    pub fn factor(a: &Matrix) -> Result<Self, LinalgError> {
        let (n, m) = a.shape();
        if n != m {
            return Err(LinalgError::DimensionMismatch {
                op: "lu_factor",
                lhs: a.shape(),
                rhs: a.shape(),
            });
        }
        let mut f = a.clone();
        let mut perm: Vec<usize> = (0..n).collect();
        let mut perm_sign = 1.0;

        for k in 0..n {
            // Partial pivoting: find the largest |entry| in column k at/below k.
            let mut pivot_row = k;
            let mut pivot_val = f[(k, k)].abs();
            for i in (k + 1)..n {
                let v = f[(i, k)].abs();
                if v > pivot_val {
                    pivot_val = v;
                    pivot_row = i;
                }
            }
            if pivot_val < Self::PIVOT_TOL {
                return Err(LinalgError::Singular { pivot: k });
            }
            if pivot_row != k {
                for j in 0..n {
                    let tmp = f[(k, j)];
                    f[(k, j)] = f[(pivot_row, j)];
                    f[(pivot_row, j)] = tmp;
                }
                perm.swap(k, pivot_row);
                perm_sign = -perm_sign;
            }
            let pivot = f[(k, k)];
            for i in (k + 1)..n {
                let factor = f[(i, k)] / pivot;
                f[(i, k)] = factor;
                for j in (k + 1)..n {
                    let sub = factor * f[(k, j)];
                    f[(i, j)] -= sub;
                }
            }
        }

        Ok(Lu {
            factors: f,
            perm,
            perm_sign,
        })
    }

    /// Dimension of the factored matrix.
    pub fn dim(&self) -> usize {
        self.factors.rows()
    }

    /// Solves `A·x = b` using the stored factorization.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] if `b.len() != self.dim()`.
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>, LinalgError> {
        let mut x = vec![0.0; self.dim()];
        self.solve_into(b, &mut x)?;
        Ok(x)
    }

    /// Solves `A·x = b` into a preallocated output slice, allocating nothing.
    ///
    /// Bit-identical to [`Lu::solve`]; hot loops (Newton iterations,
    /// Levenberg–Marquardt damping attempts) reuse one buffer across calls.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] if `b.len()` or `x.len()`
    /// differs from `self.dim()`.
    pub fn solve_into(&self, b: &[f64], x: &mut [f64]) -> Result<(), LinalgError> {
        let n = self.dim();
        if b.len() != n || x.len() != n {
            return Err(LinalgError::DimensionMismatch {
                op: "lu_solve",
                lhs: (n, n),
                rhs: (b.len().max(x.len()), 1),
            });
        }
        // Forward substitution with permuted b (L has unit diagonal).
        for (i, xi) in x.iter_mut().enumerate() {
            *xi = b[self.perm[i]];
        }
        for i in 1..n {
            let mut acc = x[i];
            for (j, xj) in x.iter().enumerate().take(i) {
                acc -= self.factors[(i, j)] * xj;
            }
            x[i] = acc;
        }
        // Backward substitution with U.
        for i in (0..n).rev() {
            let mut acc = x[i];
            for (j, xj) in x.iter().enumerate().skip(i + 1) {
                acc -= self.factors[(i, j)] * xj;
            }
            x[i] = acc / self.factors[(i, i)];
        }
        Ok(())
    }

    /// Solves `A·X = B` column-by-column.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] if `b.rows() != self.dim()`.
    pub fn solve_matrix(&self, b: &Matrix) -> Result<Matrix, LinalgError> {
        let mut out = Matrix::zeros(self.dim(), b.cols());
        self.solve_matrix_into(b, &mut out)?;
        Ok(out)
    }

    /// Solves `A·X = B` column-by-column into a preallocated `out`, reusing
    /// one internal column buffer instead of allocating two per right-hand
    /// side as the old `solve_matrix` did.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] if `b.rows() != self.dim()`
    /// or `out` is not shaped like `b`.
    pub fn solve_matrix_into(&self, b: &Matrix, out: &mut Matrix) -> Result<(), LinalgError> {
        let n = self.dim();
        if b.rows() != n {
            return Err(LinalgError::DimensionMismatch {
                op: "lu_solve_matrix",
                lhs: (n, n),
                rhs: b.shape(),
            });
        }
        if out.shape() != b.shape() {
            return Err(LinalgError::DimensionMismatch {
                op: "lu_solve_matrix_into",
                lhs: b.shape(),
                rhs: out.shape(),
            });
        }
        let mut col = vec![0.0; n];
        let mut x = vec![0.0; n];
        for j in 0..b.cols() {
            for (i, c) in col.iter_mut().enumerate() {
                *c = b[(i, j)];
            }
            self.solve_into(&col, &mut x)?;
            for (i, &v) in x.iter().enumerate() {
                out[(i, j)] = v;
            }
        }
        Ok(())
    }

    /// Determinant of the factored matrix.
    pub fn det(&self) -> f64 {
        let mut d = self.perm_sign;
        for i in 0..self.dim() {
            d *= self.factors[(i, i)];
        }
        d
    }

    /// Computes the inverse of the factored matrix.
    ///
    /// Prefer [`Lu::solve`] where possible; the explicit inverse is provided
    /// for diagnostics and small covariance computations.
    ///
    /// # Errors
    ///
    /// Propagates solver errors (should not occur for a valid factorization).
    pub fn inverse(&self) -> Result<Matrix, LinalgError> {
        self.solve_matrix(&Matrix::identity(self.dim()))
    }
}

/// Convenience one-shot solve of `A·x = b`.
///
/// # Errors
///
/// Returns the underlying factorization or substitution error.
///
/// # Examples
///
/// ```
/// use pnc_linalg::Matrix;
///
/// # fn main() -> Result<(), pnc_linalg::LinalgError> {
/// let a = Matrix::identity(2);
/// let x = pnc_linalg::solve(&a, &[7.0, 8.0])?;
/// assert_eq!(x, vec![7.0, 8.0]);
/// # Ok(())
/// # }
/// ```
pub fn solve(a: &Matrix, b: &[f64]) -> Result<Vec<f64>, LinalgError> {
    Lu::factor(a)?.solve(b)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn solves_known_system() {
        let a = Matrix::from_rows(&[&[1.0, 2.0, 0.0], &[3.0, 4.0, 4.0], &[5.0, 6.0, 3.0]]).unwrap();
        let b = [3.0, 7.0, 8.0];
        let x = solve(&a, &b).unwrap();
        // Residual check.
        for i in 0..3 {
            let r: f64 = (0..3).map(|j| a[(i, j)] * x[j]).sum::<f64>() - b[i];
            assert!(r.abs() < 1e-10, "residual {r} at row {i}");
        }
    }

    #[test]
    fn requires_pivoting() {
        // Zero in the (0,0) position forces a row swap.
        let a = Matrix::from_rows(&[&[0.0, 1.0], &[1.0, 0.0]]).unwrap();
        let x = solve(&a, &[2.0, 3.0]).unwrap();
        assert!((x[0] - 3.0).abs() < 1e-12);
        assert!((x[1] - 2.0).abs() < 1e-12);
    }

    #[test]
    fn detects_singular_matrix() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 4.0]]).unwrap();
        assert!(matches!(Lu::factor(&a), Err(LinalgError::Singular { .. })));
    }

    #[test]
    fn rejects_non_square() {
        let a = Matrix::zeros(2, 3);
        assert!(matches!(
            Lu::factor(&a),
            Err(LinalgError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn rejects_wrong_rhs_length() {
        let lu = Lu::factor(&Matrix::identity(3)).unwrap();
        assert!(lu.solve(&[1.0, 2.0]).is_err());
    }

    #[test]
    fn determinant_of_diagonal() {
        let a = Matrix::from_rows(&[&[2.0, 0.0], &[0.0, 5.0]]).unwrap();
        assert!((Lu::factor(&a).unwrap().det() - 10.0).abs() < 1e-12);
    }

    #[test]
    fn determinant_sign_tracks_permutation() {
        let a = Matrix::from_rows(&[&[0.0, 1.0], &[1.0, 0.0]]).unwrap();
        assert!((Lu::factor(&a).unwrap().det() + 1.0).abs() < 1e-12);
    }

    #[test]
    fn inverse_times_matrix_is_identity() {
        let a = Matrix::from_rows(&[&[4.0, 7.0], &[2.0, 6.0]]).unwrap();
        let inv = Lu::factor(&a).unwrap().inverse().unwrap();
        let prod = a.matmul(&inv).unwrap();
        assert!(prod.approx_eq(&Matrix::identity(2), 1e-10));
    }

    #[test]
    fn solve_into_matches_solve_bitwise() {
        let a = Matrix::from_rows(&[&[1.0, 2.0, 0.0], &[3.0, 4.0, 4.0], &[5.0, 6.0, 3.0]]).unwrap();
        let b = [3.0, 7.0, 8.0];
        let lu = Lu::factor(&a).unwrap();
        let fresh = lu.solve(&b).unwrap();
        // A dirty preallocated buffer must not affect the result.
        let mut reused = vec![f64::NAN; 3];
        lu.solve_into(&b, &mut reused).unwrap();
        assert_eq!(fresh, reused);
        // Wrong output length is rejected.
        let mut short = vec![0.0; 2];
        assert!(lu.solve_into(&b, &mut short).is_err());
    }

    #[test]
    fn solve_matrix_into_matches_solve_matrix_bitwise() {
        let a = Matrix::from_rows(&[&[3.0, 1.0], &[1.0, 2.0]]).unwrap();
        let b = Matrix::from_rows(&[&[9.0, 4.0], &[8.0, 3.0]]).unwrap();
        let lu = Lu::factor(&a).unwrap();
        let fresh = lu.solve_matrix(&b).unwrap();
        let mut reused = Matrix::filled(2, 2, f64::NAN);
        lu.solve_matrix_into(&b, &mut reused).unwrap();
        assert_eq!(fresh, reused);
        let mut wrong = Matrix::zeros(2, 3);
        assert!(lu.solve_matrix_into(&b, &mut wrong).is_err());
    }

    #[test]
    fn solve_matrix_multiple_rhs() {
        let a = Matrix::from_rows(&[&[3.0, 1.0], &[1.0, 2.0]]).unwrap();
        let b = Matrix::from_rows(&[&[9.0, 4.0], &[8.0, 3.0]]).unwrap();
        let x = Lu::factor(&a).unwrap().solve_matrix(&b).unwrap();
        assert!(a.matmul(&x).unwrap().approx_eq(&b, 1e-10));
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    /// Generate diagonally dominant matrices: always invertible.
    fn arb_dd_matrix(n: usize) -> impl Strategy<Value = Matrix> {
        proptest::collection::vec(-1.0..1.0f64, n * n).prop_map(move |data| {
            let mut m = Matrix::from_vec(n, n, data).expect("sized");
            for i in 0..n {
                let row_sum: f64 = (0..n).map(|j| m[(i, j)].abs()).sum();
                m[(i, i)] += row_sum + 1.0;
            }
            m
        })
    }

    proptest! {
        #[test]
        fn solve_produces_small_residual(
            (a, b) in (2usize..7).prop_flat_map(|n| {
                (arb_dd_matrix(n), proptest::collection::vec(-10.0..10.0f64, n))
            })
        ) {
            let x = solve(&a, &b).unwrap();
            let n = b.len();
            for i in 0..n {
                let r: f64 = (0..n).map(|j| a[(i, j)] * x[j]).sum::<f64>() - b[i];
                prop_assert!(r.abs() < 1e-8, "residual {} at row {}", r, i);
            }
        }

        #[test]
        fn det_of_product_scales(
            a in arb_dd_matrix(4), s in 0.5..2.0f64
        ) {
            let det_a = Lu::factor(&a).unwrap().det();
            let det_sa = Lu::factor(&a.scale(s)).unwrap().det();
            // det(s*A) = s^n det(A) with n = 4
            prop_assert!((det_sa - s.powi(4) * det_a).abs() < 1e-6 * det_a.abs().max(1.0));
        }
    }
}
