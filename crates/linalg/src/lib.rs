//! Dense linear algebra substrate for the printed-neuromorphic stack.
//!
//! The paper's reference implementation leans on NumPy/PyTorch for its dense
//! linear algebra. This crate provides the small, allocation-friendly subset
//! that the rest of the workspace needs:
//!
//! * [`Matrix`] — a row-major dense `f64` matrix with the usual arithmetic,
//!   used as the value type of the autodiff engine and the assembly target of
//!   the circuit simulator.
//! * [`Lu`] — LU decomposition with partial pivoting, the linear solver behind
//!   both the modified-nodal-analysis Newton steps in `pnc-spice` and the
//!   normal equations of the Levenberg–Marquardt fitter in `pnc-fit`.
//! * [`stats`] — scalar summary statistics (mean/std/min/max) used when
//!   reporting Monte-Carlo robustness results.
//! * [`ParallelConfig`] — the workspace-wide thread-count knob and its
//!   deterministic ordered parallel map, honoring the `PNC_NUM_THREADS`
//!   environment variable.
//! * [`Workspace`] — a reusable buffer pool so shape-stable hot loops
//!   (training epochs, Newton iterations) allocate nothing in steady state.
//! * [`kernels`] — the cache-blocked matmul kernels behind [`Matrix`]'s hot
//!   methods, tunable via the `PNC_MATMUL_BLOCK` environment variable; every
//!   variant is bit-identical to the naive reference at any block size and
//!   thread count.
//! * [`simd`] — autovectorization-friendly register-tiled microkernels
//!   (f64×4, f32×8, i16→i32) shared by the blocked matmul and the compiled
//!   inference plans in `pnc-core`, all safe code, all honoring the same
//!   ascending-`k` accumulation order.
//! * [`sparse`] — compressed-sparse-column storage and Markowitz-ordered
//!   sparse LU with a cached symbolic analysis, the factorization behind
//!   the `sparse-lu` circuit-solver backend (docs/SOLVERS.md at the
//!   workspace root).
//!
//! # Examples
//!
//! Solve a small linear system:
//!
//! ```
//! use pnc_linalg::{Matrix, Lu};
//!
//! # fn main() -> Result<(), pnc_linalg::LinalgError> {
//! let a = Matrix::from_rows(&[&[4.0, 1.0], &[1.0, 3.0]])?;
//! let lu = Lu::factor(&a)?;
//! let x = lu.solve(&[1.0, 2.0])?;
//! assert!((4.0 * x[0] + x[1] - 1.0).abs() < 1e-12);
//! assert!((x[0] + 3.0 * x[1] - 2.0).abs() < 1e-12);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;
pub mod kernels;
mod lu;
mod matrix;
pub mod parallel;
pub mod simd;
pub mod sparse;
pub mod stats;
mod workspace;

pub use error::LinalgError;
pub use lu::{solve, Lu};
pub use matrix::Matrix;
pub use parallel::ParallelConfig;
pub use workspace::Workspace;
