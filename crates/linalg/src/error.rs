use std::fmt;

/// Error type for all fallible operations in this crate.
///
/// # Examples
///
/// ```
/// use pnc_linalg::{Matrix, LinalgError};
///
/// let err = Matrix::from_rows(&[&[1.0], &[2.0, 3.0]]).unwrap_err();
/// assert!(matches!(err, LinalgError::DimensionMismatch { .. }));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum LinalgError {
    /// Two operands had incompatible shapes for the requested operation.
    DimensionMismatch {
        /// Description of the operation that failed.
        op: &'static str,
        /// Shape of the left operand as `(rows, cols)`.
        lhs: (usize, usize),
        /// Shape of the right operand as `(rows, cols)`.
        rhs: (usize, usize),
    },
    /// A factorization or solve encountered a (numerically) singular matrix.
    Singular {
        /// Index of the pivot column where elimination broke down.
        pivot: usize,
    },
    /// A constructor received data inconsistent with the requested shape.
    InvalidShape {
        /// Requested number of rows.
        rows: usize,
        /// Requested number of columns.
        cols: usize,
        /// Number of elements actually provided.
        len: usize,
    },
}

impl fmt::Display for LinalgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LinalgError::DimensionMismatch { op, lhs, rhs } => write!(
                f,
                "dimension mismatch in {op}: left is {}x{}, right is {}x{}",
                lhs.0, lhs.1, rhs.0, rhs.1
            ),
            LinalgError::Singular { pivot } => {
                write!(f, "matrix is singular at pivot column {pivot}")
            }
            LinalgError::InvalidShape { rows, cols, len } => write!(
                f,
                "invalid shape: {rows}x{cols} requires {} elements, got {len}",
                rows * cols
            ),
        }
    }
}

impl std::error::Error for LinalgError {}
