//! Property-based gradient checks over randomly shaped compositions.

use pnc_autodiff::gradcheck::check_gradients;
use pnc_linalg::Matrix;
use proptest::prelude::*;

fn arb_matrix(rows: usize, cols: usize) -> impl Strategy<Value = Matrix> {
    proptest::collection::vec(-2.0..2.0f64, rows * cols)
        .prop_map(move |data| Matrix::from_vec(rows, cols, data).expect("sized"))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn mlp_like_composition_has_correct_gradients(
        (x, w1, w2) in (1usize..4, 1usize..4, 1usize..4, 1usize..4).prop_flat_map(|(b, i, h, o)| {
            (arb_matrix(b, i), arb_matrix(i, h), arb_matrix(h, o))
        })
    ) {
        let inputs = [x, w1, w2];
        let report = check_gradients(&inputs, 1e-6, |g, vars| {
            let h = g.matmul(vars[0], vars[1]).unwrap();
            let a = g.tanh(h);
            let y = g.matmul(a, vars[2]).unwrap();
            let s = g.sigmoid(y);
            g.mean(s)
        });
        prop_assert!(report.max_abs_error < 1e-6, "{:?}", report);
    }

    #[test]
    fn crossbar_like_normalization_has_correct_gradients(
        theta in arb_matrix(3, 2),
        x in arb_matrix(2, 3),
    ) {
        // Avoid division blow-ups: shift |θ| away from zero.
        let theta = theta.map(|v| v + 3.0 * v.signum() + if v == 0.0 { 3.0 } else { 0.0 });
        let inputs = [theta, x];
        let report = check_gradients(&inputs, 1e-6, |g, vars| {
            let absw = g.abs(vars[0]);
            let total = g.sum_rows(absw);          // 1×out
            let w = g.div(absw, total).unwrap();   // row-broadcast divide
            let z = g.matmul(vars[1], w).unwrap(); // batch × out
            let a = g.tanh(z);
            g.mean(a)
        });
        prop_assert!(report.max_abs_error < 1e-6, "{:?}", report);
    }

    #[test]
    fn slice_concat_pipeline_has_correct_gradients(v in arb_matrix(1, 6)) {
        let inputs = [v];
        let report = check_gradients(&inputs, 1e-6, |g, vars| {
            let a = g.slice_cols(vars[0], 0, 3).unwrap();
            let b = g.slice_cols(vars[0], 3, 3).unwrap();
            let prod = g.mul(a, b).unwrap();
            let cat = g.concat_cols(&[prod, a]).unwrap();
            let e = g.exp(cat);
            g.sum(e)
        });
        prop_assert!(report.max_abs_error < 1e-5, "{:?}", report);
    }
}
