//! Finite-difference gradient verification.
//!
//! Because every gradient in this workspace is hand-derived (the repro
//! constraint of the paper's Rust port), the test suites of this crate and
//! the downstream pNN crate lean heavily on central finite differences to
//! validate backpropagation end-to-end.
//!
//! # Examples
//!
//! ```
//! use pnc_autodiff::{gradcheck::check_gradients, Graph};
//! use pnc_linalg::Matrix;
//!
//! let inputs = [Matrix::row_vector(&[0.3, -0.8])];
//! let report = check_gradients(&inputs, 1e-6, |g, vars| {
//!     let t = g.tanh(vars[0]);
//!     g.sum(t)
//! });
//! assert!(report.max_abs_error < 1e-6, "{report:?}");
//! ```

use crate::{Graph, Var};
use pnc_linalg::Matrix;

/// Outcome of a finite-difference check.
#[derive(Debug, Clone, PartialEq)]
pub struct GradcheckReport {
    /// Largest absolute difference between analytic and numeric gradients.
    pub max_abs_error: f64,
    /// Where the largest error occurred: `(input index, row, col)`.
    pub worst: (usize, usize, usize),
    /// Total number of scalar entries checked.
    pub entries_checked: usize,
}

/// Compares analytic gradients of `build` against central finite differences.
///
/// `build` must construct the loss (a `1×1` node) from leaves registered for
/// each input matrix; it is invoked repeatedly with perturbed inputs, so it
/// must be deterministic.
///
/// `step` is the finite-difference step; `1e-6` is a good default for values
/// of order one.
///
/// # Panics
///
/// Panics if `build` produces a non-scalar loss or an internally inconsistent
/// graph — this is a test utility, so failures are loud.
pub fn check_gradients(
    inputs: &[Matrix],
    step: f64,
    mut build: impl FnMut(&mut Graph, &[Var]) -> Var,
) -> GradcheckReport {
    let eval = |mats: &[Matrix], build: &mut dyn FnMut(&mut Graph, &[Var]) -> Var| -> f64 {
        let mut g = Graph::new();
        let vars: Vec<Var> = mats.iter().map(|m| g.leaf(m.clone())).collect();
        let loss = build(&mut g, &vars);
        g.value(loss)[(0, 0)]
    };

    // Analytic gradients.
    let mut g = Graph::new();
    let vars: Vec<Var> = inputs.iter().map(|m| g.leaf(m.clone())).collect();
    let loss = build(&mut g, &vars);
    // pnc-lint: allow(no-panic-in-lib) — test utility; the documented contract is to fail loudly on a malformed build closure
    // pnc-lint: allow(panic-reachability) — same contract: check_gradients is a dev/test harness whose pub API promises a loud abort, not a Result
    let grads = g.backward(loss).expect("gradcheck loss must be scalar");

    let mut report = GradcheckReport {
        max_abs_error: 0.0,
        worst: (0, 0, 0),
        entries_checked: 0,
    };

    for (k, input) in inputs.iter().enumerate() {
        let (rows, cols) = input.shape();
        let zero;
        let analytic = match grads.get(vars[k]) {
            Some(m) => m,
            None => {
                zero = Matrix::zeros(rows, cols);
                &zero
            }
        };
        for i in 0..rows {
            for j in 0..cols {
                let mut plus = inputs.to_vec();
                plus[k][(i, j)] += step;
                let mut minus = inputs.to_vec();
                minus[k][(i, j)] -= step;
                let numeric = (eval(&plus, &mut build) - eval(&minus, &mut build)) / (2.0 * step);
                let err = (numeric - analytic[(i, j)]).abs();
                report.entries_checked += 1;
                if err > report.max_abs_error {
                    report.max_abs_error = err;
                    report.worst = (k, i, j);
                }
            }
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn passes_for_simple_composite() {
        let inputs = [
            Matrix::from_rows(&[&[0.5, -0.2], &[0.1, 0.9]]).unwrap(),
            Matrix::from_rows(&[&[1.0], &[2.0]]).unwrap(),
        ];
        let report = check_gradients(&inputs, 1e-6, |g, vars| {
            let prod = g.matmul(vars[0], vars[1]).unwrap();
            let act = g.sigmoid(prod);
            g.mean(act)
        });
        assert!(report.max_abs_error < 1e-7, "{report:?}");
        assert_eq!(report.entries_checked, 6);
    }

    #[test]
    fn passes_for_broadcast_division() {
        let inputs = [
            Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]).unwrap(),
            Matrix::row_vector(&[2.0, 5.0]),
        ];
        let report = check_gradients(&inputs, 1e-6, |g, vars| {
            let q = g.div(vars[0], vars[1]).unwrap();
            g.sum(q)
        });
        assert!(report.max_abs_error < 1e-7, "{report:?}");
    }

    #[test]
    fn passes_for_losses() {
        let inputs = [Matrix::from_rows(&[&[0.3, 0.7, 0.1], &[0.9, 0.2, 0.4]]).unwrap()];
        let report = check_gradients(&inputs, 1e-6, |g, vars| {
            g.cross_entropy_logits(vars[0], &[1, 0]).unwrap()
        });
        assert!(report.max_abs_error < 1e-7, "{report:?}");

        let report = check_gradients(&inputs, 1e-6, |g, vars| {
            g.margin_loss(vars[0], &[1, 0], 0.3).unwrap()
        });
        assert!(report.max_abs_error < 1e-7, "{report:?}");
    }

    #[test]
    fn detects_wrong_gradient() {
        // Abuse STE to create a deliberately wrong gradient: forward is x²,
        // backward pretends identity.
        let inputs = [Matrix::row_vector(&[2.0])];
        let report = check_gradients(&inputs, 1e-6, |g, vars| {
            let squared = g.value(vars[0]).map(|x| x * x);
            let y = g.ste(vars[0], squared).unwrap();
            g.sum(y)
        });
        // Numeric gradient is 2x = 4, analytic (STE) is 1.
        assert!(report.max_abs_error > 2.9, "{report:?}");
    }
}
