use std::fmt;

/// Error type for graph construction and backpropagation.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum AutodiffError {
    /// Two operands had shapes that neither match nor broadcast.
    ShapeMismatch {
        /// The operation name.
        op: &'static str,
        /// Left operand shape.
        lhs: (usize, usize),
        /// Right operand shape.
        rhs: (usize, usize),
    },
    /// `backward` was called on a non-scalar (not `1×1`) node.
    NonScalarLoss {
        /// The shape of the offending node.
        shape: (usize, usize),
    },
    /// A class-target index was out of range for the score matrix.
    InvalidTarget {
        /// The offending class index.
        class: usize,
        /// Number of classes (columns of the score matrix).
        num_classes: usize,
    },
    /// A loss op received a target list whose length differs from the batch.
    TargetLengthMismatch {
        /// Number of score rows (batch size).
        batch: usize,
        /// Number of targets supplied.
        targets: usize,
    },
    /// A backward-pass matrix operation failed on shapes the forward pass
    /// accepted. This indicates an internal inconsistency in a gradient
    /// rule; it is surfaced as an error rather than a panic so training
    /// loops can report it.
    Backward {
        /// The backward-pass operation that failed.
        op: &'static str,
        /// The underlying linear-algebra failure.
        source: pnc_linalg::LinalgError,
    },
}

impl fmt::Display for AutodiffError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AutodiffError::ShapeMismatch { op, lhs, rhs } => write!(
                f,
                "shape mismatch in {op}: {}x{} vs {}x{}",
                lhs.0, lhs.1, rhs.0, rhs.1
            ),
            AutodiffError::NonScalarLoss { shape } => write!(
                f,
                "backward requires a 1x1 loss node, got {}x{}",
                shape.0, shape.1
            ),
            AutodiffError::InvalidTarget { class, num_classes } => {
                write!(f, "target class {class} out of range (< {num_classes})")
            }
            AutodiffError::TargetLengthMismatch { batch, targets } => {
                write!(f, "batch has {batch} rows but {targets} targets were given")
            }
            AutodiffError::Backward { op, source } => {
                write!(f, "backward pass failed in {op}: {source}")
            }
        }
    }
}

impl std::error::Error for AutodiffError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            AutodiffError::Backward { source, .. } => Some(source),
            _ => None,
        }
    }
}
