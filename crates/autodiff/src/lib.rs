//! Reverse-mode automatic differentiation for printed neural networks.
//!
//! The paper's reference implementation trains its printed neural networks
//! (pNNs) with PyTorch. The Rust autodiff ecosystem being immature, this
//! crate implements the required subset from scratch as a small, fully
//! deterministic **tape** engine:
//!
//! * [`Graph`] — a define-by-run arena of tensor nodes. Every operation
//!   evaluates eagerly (values are [`Matrix`](pnc_linalg::Matrix)es) and
//!   records itself on the tape; [`Graph::backward`] then walks the tape in
//!   reverse to accumulate gradients.
//! * Elementwise binary ops broadcast scalars (`1×1`), row vectors (`1×n`)
//!   and column vectors (`m×1`) against full matrices, as the pNN forward
//!   pass requires (per-output conductance normalization, scalar η curve
//!   parameters).
//! * **Straight-through estimators** are first class: [`Graph::ste`] replaces
//!   a node's value by an arbitrary caller-computed projection while passing
//!   gradients through unchanged — exactly the trick the paper uses (Sec.
//!   II-C) to respect the printable-conductance constraint during training.
//! * Fused classification losses ([`Graph::cross_entropy_logits`],
//!   [`Graph::margin_loss`]) with hand-derived, numerically stable
//!   gradients.
//! * [`optim`] — `Adam` and `Sgd` optimizers over [`Parameter`]s that live
//!   outside the graph (the tape is rebuilt every step).
//! * [`gradcheck`] — a finite-difference gradient checker used extensively in
//!   the tests of this and downstream crates.
//!
//! # Examples
//!
//! Differentiate a tiny computation:
//!
//! ```
//! use pnc_autodiff::Graph;
//! use pnc_linalg::Matrix;
//!
//! # fn main() -> Result<(), pnc_autodiff::AutodiffError> {
//! let mut g = Graph::new();
//! let x = g.leaf(Matrix::row_vector(&[1.0, 2.0, 3.0]));
//! let y = g.tanh(x);
//! let loss = g.sum(y);
//! let grads = g.backward(loss)?;
//! let gx = grads.get(x).expect("leaf gradient");
//! // d tanh(x)/dx = 1 - tanh²(x)
//! assert!((gx[(0, 0)] - (1.0 - 1.0f64.tanh().powi(2))).abs() < 1e-12);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;
pub mod gradcheck;
mod graph;
pub mod optim;

pub use error::AutodiffError;
pub use graph::{GradStore, Graph, Var};
pub use optim::{Adam, Optimizer, Parameter, Sgd};
