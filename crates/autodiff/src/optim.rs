//! Gradient-based optimizers over externally stored parameters.
//!
//! The tape in [`Graph`] is rebuilt for every training step, so
//! trainable state lives outside the graph in [`Parameter`]s. A step is:
//!
//! 1. build a graph, inserting each parameter with
//!    [`Parameter::leaf`],
//! 2. compute the loss and call [`Graph::backward`](crate::Graph::backward),
//! 3. hand the gradients to an [`Optimizer`].
//!
//! [`Adam`] (the paper's optimizer, with its default settings) and plain
//! [`Sgd`] are provided. Different parameter groups (crossbar conductances θ
//! vs. nonlinear-circuit parameters 𝔴) use separate optimizer instances so
//! they can have the different learning rates the paper prescribes
//! (α_θ = 0.1, α_ω = 0.005).
//!
//! # Examples
//!
//! Minimize `(x − 3)²`:
//!
//! ```
//! use pnc_autodiff::{Adam, Graph, Optimizer, Parameter};
//! use pnc_linalg::Matrix;
//!
//! # fn main() -> Result<(), pnc_autodiff::AutodiffError> {
//! let mut p = Parameter::new(Matrix::filled(1, 1, 0.0));
//! let mut opt = Adam::new(0.1);
//! for _ in 0..500 {
//!     let mut g = Graph::new();
//!     let x = p.leaf(&mut g);
//!     let d = g.add_scalar(x, -3.0);
//!     let loss = g.powi(d, 2);
//!     let loss = g.sum(loss);
//!     let grads = g.backward(loss)?;
//!     opt.step(&mut [&mut p], &[x], &grads);
//! }
//! assert!((p.value()[(0, 0)] - 3.0).abs() < 1e-3);
//! # Ok(())
//! # }
//! ```

use crate::{GradStore, Graph, Var};
use pnc_linalg::Matrix;
use serde::{Deserialize, Serialize};

/// A trainable tensor with optimizer state, living outside the tape.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Parameter {
    value: Matrix,
    /// First-moment estimate (Adam) or velocity (SGD momentum).
    m: Matrix,
    /// Second-moment estimate (Adam only).
    v: Matrix,
    /// Number of optimizer steps already applied.
    steps: u64,
}

impl Parameter {
    /// Wraps an initial value.
    pub fn new(value: Matrix) -> Self {
        let (r, c) = value.shape();
        Parameter {
            value,
            m: Matrix::zeros(r, c),
            v: Matrix::zeros(r, c),
            steps: 0,
        }
    }

    /// The current value.
    pub fn value(&self) -> &Matrix {
        &self.value
    }

    /// Mutable access to the value (e.g. for re-initialization).
    pub fn value_mut(&mut self) -> &mut Matrix {
        &mut self.value
    }

    /// Registers this parameter's current value as a leaf on `graph`.
    pub fn leaf(&self, graph: &mut Graph) -> Var {
        graph.leaf(self.value.clone())
    }

    /// Resets optimizer state (moments and step count).
    pub fn reset_state(&mut self) {
        let (r, c) = self.value.shape();
        self.m = Matrix::zeros(r, c);
        self.v = Matrix::zeros(r, c);
        self.steps = 0;
    }
}

/// A gradient-descent update rule.
///
/// `params` and `vars` are parallel: `vars[i]` must be the leaf that
/// `params[i]` registered on the graph whose `grads` are being applied.
/// Parameters whose leaf received no gradient are left unchanged.
pub trait Optimizer {
    /// Applies one update step.
    fn step(&mut self, params: &mut [&mut Parameter], vars: &[Var], grads: &GradStore);

    /// Applies one update step from explicitly supplied gradient matrices
    /// (parallel to `params`). Used when a gradient was accumulated over
    /// several registrations of the same parameter — e.g. the Monte-Carlo
    /// variation-aware loss, where each noise sample registers its own leaf.
    ///
    /// # Panics
    ///
    /// Implementations panic if the slices are not parallel or a gradient
    /// shape differs from its parameter.
    fn step_dense(&mut self, params: &mut [&mut Parameter], grads: &[&Matrix]);

    /// The current learning rate.
    fn learning_rate(&self) -> f64;

    /// Changes the learning rate (e.g. for schedules).
    fn set_learning_rate(&mut self, lr: f64);
}

/// Adam (Kingma & Ba, 2014) with the default β/ε settings the paper uses.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Adam {
    /// Learning rate α.
    pub lr: f64,
    /// Exponential decay rate for the first moment.
    pub beta1: f64,
    /// Exponential decay rate for the second moment.
    pub beta2: f64,
    /// Numerical stabilizer.
    pub epsilon: f64,
}

impl Adam {
    /// Adam with default `β₁ = 0.9`, `β₂ = 0.999`, `ε = 1e-8`.
    pub fn new(lr: f64) -> Self {
        Adam {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            epsilon: 1e-8,
        }
    }
}

impl Adam {
    fn update(&self, param: &mut Parameter, grad: &Matrix) {
        assert_eq!(
            grad.shape(),
            param.value.shape(),
            "gradient shape must match parameter"
        );
        param.steps += 1;
        let t = param.steps as i32;
        let bias1 = 1.0 - self.beta1.powi(t);
        let bias2 = 1.0 - self.beta2.powi(t);
        for idx in 0..grad.len() {
            let g = grad.as_slice()[idx];
            let m = &mut param.m.as_mut_slice()[idx];
            *m = self.beta1 * *m + (1.0 - self.beta1) * g;
            let v = &mut param.v.as_mut_slice()[idx];
            *v = self.beta2 * *v + (1.0 - self.beta2) * g * g;
            let m_hat = *m / bias1;
            let v_hat = *v / bias2;
            param.value.as_mut_slice()[idx] -= self.lr * m_hat / (v_hat.sqrt() + self.epsilon);
        }
    }
}

impl Optimizer for Adam {
    fn step(&mut self, params: &mut [&mut Parameter], vars: &[Var], grads: &GradStore) {
        assert_eq!(
            params.len(),
            vars.len(),
            "params and vars must be parallel slices"
        );
        for (param, var) in params.iter_mut().zip(vars) {
            let Some(grad) = grads.get(*var) else {
                continue;
            };
            self.update(param, &grad.clone());
        }
    }

    fn step_dense(&mut self, params: &mut [&mut Parameter], grads: &[&Matrix]) {
        assert_eq!(
            params.len(),
            grads.len(),
            "params and grads must be parallel slices"
        );
        for (param, grad) in params.iter_mut().zip(grads) {
            self.update(param, grad);
        }
    }

    fn learning_rate(&self) -> f64 {
        self.lr
    }

    fn set_learning_rate(&mut self, lr: f64) {
        self.lr = lr;
    }
}

/// Plain stochastic gradient descent with optional momentum.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Sgd {
    /// Learning rate.
    pub lr: f64,
    /// Momentum coefficient (`0.0` disables momentum).
    pub momentum: f64,
}

impl Sgd {
    /// Momentum-free SGD.
    pub fn new(lr: f64) -> Self {
        Sgd { lr, momentum: 0.0 }
    }

    /// SGD with classical momentum.
    pub fn with_momentum(lr: f64, momentum: f64) -> Self {
        Sgd { lr, momentum }
    }
}

impl Sgd {
    fn update(&self, param: &mut Parameter, grad: &Matrix) {
        assert_eq!(
            grad.shape(),
            param.value.shape(),
            "gradient shape must match parameter"
        );
        param.steps += 1;
        for idx in 0..grad.len() {
            let g = grad.as_slice()[idx];
            let m = &mut param.m.as_mut_slice()[idx];
            *m = self.momentum * *m + g;
            param.value.as_mut_slice()[idx] -= self.lr * *m;
        }
    }
}

impl Optimizer for Sgd {
    fn step(&mut self, params: &mut [&mut Parameter], vars: &[Var], grads: &GradStore) {
        assert_eq!(
            params.len(),
            vars.len(),
            "params and vars must be parallel slices"
        );
        for (param, var) in params.iter_mut().zip(vars) {
            let Some(grad) = grads.get(*var) else {
                continue;
            };
            self.update(param, &grad.clone());
        }
    }

    fn step_dense(&mut self, params: &mut [&mut Parameter], grads: &[&Matrix]) {
        assert_eq!(
            params.len(),
            grads.len(),
            "params and grads must be parallel slices"
        );
        for (param, grad) in params.iter_mut().zip(grads) {
            self.update(param, grad);
        }
    }

    fn learning_rate(&self) -> f64 {
        self.lr
    }

    fn set_learning_rate(&mut self, lr: f64) {
        self.lr = lr;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quadratic_step(p: &mut Parameter, opt: &mut dyn Optimizer, target: f64) -> f64 {
        let mut g = Graph::new();
        let x = p.leaf(&mut g);
        let d = g.add_scalar(x, -target);
        let sq = g.powi(d, 2);
        let loss = g.sum(sq);
        let grads = g.backward(loss).unwrap();
        let value = g.value(loss)[(0, 0)];
        opt.step(&mut [p], &[x], &grads);
        value
    }

    #[test]
    fn sgd_converges_on_quadratic() {
        let mut p = Parameter::new(Matrix::filled(1, 1, 10.0));
        let mut opt = Sgd::new(0.1);
        for _ in 0..200 {
            quadratic_step(&mut p, &mut opt, 4.0);
        }
        assert!((p.value()[(0, 0)] - 4.0).abs() < 1e-6);
    }

    #[test]
    fn sgd_momentum_converges() {
        let mut p = Parameter::new(Matrix::filled(1, 1, 10.0));
        let mut opt = Sgd::with_momentum(0.02, 0.9);
        for _ in 0..400 {
            quadratic_step(&mut p, &mut opt, -2.0);
        }
        assert!((p.value()[(0, 0)] + 2.0).abs() < 1e-4);
    }

    #[test]
    fn adam_converges_on_quadratic() {
        let mut p = Parameter::new(Matrix::filled(1, 1, -5.0));
        let mut opt = Adam::new(0.2);
        let mut last = f64::INFINITY;
        for _ in 0..600 {
            last = quadratic_step(&mut p, &mut opt, 1.5);
        }
        assert!((p.value()[(0, 0)] - 1.5).abs() < 1e-3, "final loss {last}");
    }

    #[test]
    fn adam_first_step_size_is_learning_rate() {
        // A well-known Adam property: the very first update has magnitude ≈ lr
        // regardless of gradient scale.
        for &scale in &[1.0, 1e4, 1e-4] {
            let mut p = Parameter::new(Matrix::filled(1, 1, 0.0));
            let mut opt = Adam::new(0.05);
            let mut g = Graph::new();
            let x = p.leaf(&mut g);
            let y = g.scale(x, scale);
            let loss = g.sum(y);
            let grads = g.backward(loss).unwrap();
            opt.step(&mut [&mut p], &[x], &grads);
            assert!(
                (p.value()[(0, 0)].abs() - 0.05).abs() < 1e-5,
                "scale {scale}: step {}",
                p.value()[(0, 0)]
            );
        }
    }

    #[test]
    fn missing_gradient_leaves_parameter_unchanged() {
        let mut p = Parameter::new(Matrix::filled(1, 1, 7.0));
        let mut q = Parameter::new(Matrix::filled(1, 1, 1.0));
        let mut opt = Sgd::new(0.5);
        let mut g = Graph::new();
        let xp = p.leaf(&mut g);
        let xq = q.leaf(&mut g);
        // Loss only involves q.
        let loss = g.sum(xq);
        let grads = g.backward(loss).unwrap();
        opt.step(&mut [&mut p, &mut q], &[xp, xq], &grads);
        assert_eq!(p.value()[(0, 0)], 7.0);
        assert!((q.value()[(0, 0)] - 0.5).abs() < 1e-12);
    }

    #[test]
    fn reset_state_clears_moments() {
        let mut p = Parameter::new(Matrix::filled(1, 1, 0.0));
        let mut opt = Adam::new(0.1);
        quadratic_step(&mut p, &mut opt, 5.0);
        assert!(p.m.norm() > 0.0);
        p.reset_state();
        assert_eq!(p.m.norm(), 0.0);
        assert_eq!(p.v.norm(), 0.0);
        assert_eq!(p.steps, 0);
    }

    #[test]
    fn step_dense_matches_step() {
        // The two entry points must produce identical updates.
        let grad = Matrix::row_vector(&[0.5, -1.5]);
        let mut via_store = Parameter::new(Matrix::row_vector(&[1.0, 2.0]));
        let mut via_dense = via_store.clone();

        let mut g = Graph::new();
        let x = via_store.leaf(&mut g);
        let w = g.constant(grad.clone());
        let prod = g.mul(x, w).unwrap();
        let loss = g.sum(prod);
        let grads = g.backward(loss).unwrap();

        let mut opt1 = Adam::new(0.1);
        opt1.step(&mut [&mut via_store], &[x], &grads);
        let mut opt2 = Adam::new(0.1);
        opt2.step_dense(&mut [&mut via_dense], &[&grad]);
        assert_eq!(via_store.value(), via_dense.value());
    }

    #[test]
    #[should_panic(expected = "gradient shape")]
    fn step_dense_checks_shapes() {
        let mut p = Parameter::new(Matrix::zeros(1, 2));
        let g = Matrix::zeros(2, 1);
        Sgd::new(0.1).step_dense(&mut [&mut p], &[&g]);
    }

    #[test]
    fn learning_rate_accessors() {
        let mut a = Adam::new(0.1);
        a.set_learning_rate(0.2);
        assert_eq!(a.learning_rate(), 0.2);
        let mut s = Sgd::new(0.3);
        s.set_learning_rate(0.4);
        assert_eq!(s.learning_rate(), 0.4);
    }

    #[test]
    #[should_panic(expected = "parallel")]
    fn mismatched_slices_panic() {
        let mut p = Parameter::new(Matrix::filled(1, 1, 0.0));
        let mut opt = Sgd::new(0.1);
        let mut g = Graph::new();
        let x = g.leaf(Matrix::filled(1, 1, 0.0));
        let loss = g.sum(x);
        let store = g.backward(loss).unwrap();
        opt.step(&mut [&mut p], &[x, loss], &store);
    }
}
