use crate::AutodiffError;
use pnc_linalg::Matrix;

/// Handle to a tensor node in a [`Graph`].
///
/// `Var`s are cheap copyable indices; they are only meaningful for the graph
/// that created them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Var(usize);

impl Var {
    /// The raw tape index of this node.
    pub fn index(self) -> usize {
        self.0
    }
}

/// One recorded operation. Parents are stored as `Var` indices, which are
/// always smaller than the node's own index — the tape is topologically
/// sorted by construction.
#[derive(Debug, Clone)]
enum Op {
    /// Trainable input (gradient of interest).
    Leaf,
    /// Non-trainable input.
    Constant,
    Add(Var, Var),
    Sub(Var, Var),
    Mul(Var, Var),
    Div(Var, Var),
    MatMul(Var, Var),
    Neg(Var),
    Abs(Var),
    Tanh(Var),
    Sigmoid(Var),
    Exp(Var),
    Ln(Var),
    Relu(Var),
    Scale(Var, f64),
    AddScalar(Var),
    Powi(Var, i32),
    Sum(Var),
    Mean(Var),
    SumRows(Var),
    SumCols(Var),
    SliceCols {
        parent: Var,
        start: usize,
    },
    ConcatCols(Vec<Var>),
    /// Straight-through estimator: arbitrary forward projection, identity
    /// backward.
    Ste(Var),
    /// Fused loss with a precomputed gradient template w.r.t. the scores.
    FusedLoss {
        scores: Var,
        grad: Matrix,
    },
}

#[derive(Debug, Clone)]
struct Node {
    value: Matrix,
    op: Op,
}

/// Gradients produced by [`Graph::backward`], indexed by [`Var`].
#[derive(Debug, Clone)]
pub struct GradStore {
    grads: Vec<Option<Matrix>>,
}

impl GradStore {
    /// The gradient of the loss with respect to `v`, if any gradient flowed
    /// to it.
    pub fn get(&self, v: Var) -> Option<&Matrix> {
        self.grads.get(v.0).and_then(|g| g.as_ref())
    }

    fn accumulate(&mut self, v: Var, g: Matrix) -> Result<(), AutodiffError> {
        match &mut self.grads[v.0] {
            Some(existing) => {
                *existing = existing.add(&g).map_err(bw_err("grad_accumulate"))?;
            }
            slot @ None => *slot = Some(g),
        }
        Ok(())
    }
}

/// Wraps a linear-algebra failure inside a gradient rule as
/// [`AutodiffError::Backward`]. The forward pass validates shapes, so these
/// errors indicate an internal inconsistency in a hand-derived gradient —
/// surfaced as an error rather than a panic so callers can report it.
fn bw_err(op: &'static str) -> impl Fn(pnc_linalg::LinalgError) -> AutodiffError {
    move |source| AutodiffError::Backward { op, source }
}

/// A define-by-run computation tape over dense `f64` matrices.
///
/// Operations evaluate eagerly and record themselves; [`Graph::backward`]
/// replays the tape in reverse. Build a fresh graph per training step (the
/// usual define-by-run pattern) — leaves take their values from externally
/// stored [`Parameter`](crate::Parameter)s.
///
/// Elementwise binary operations broadcast `1×1` scalars, `1×n` row vectors
/// and `m×1` column vectors against `m×n` matrices.
///
/// # Examples
///
/// ```
/// use pnc_autodiff::Graph;
/// use pnc_linalg::Matrix;
///
/// # fn main() -> Result<(), pnc_autodiff::AutodiffError> {
/// let mut g = Graph::new();
/// let w = g.leaf(Matrix::from_rows(&[&[2.0]]).expect("shape"));
/// let x = g.constant(Matrix::row_vector(&[1.0, 2.0, 3.0]));
/// let y = g.mul(w, x)?;      // scalar broadcast
/// let loss = g.sum(y);
/// let grads = g.backward(loss)?;
/// assert_eq!(grads.get(w).expect("grad")[(0, 0)], 6.0); // 1 + 2 + 3
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Default)]
pub struct Graph {
    nodes: Vec<Node>,
}

/// Broadcast-compatible result shape, if any.
fn broadcast_shape(a: (usize, usize), b: (usize, usize)) -> Option<(usize, usize)> {
    let rows = if a.0 == b.0 {
        a.0
    } else if a.0 == 1 {
        b.0
    } else if b.0 == 1 {
        a.0
    } else {
        return None;
    };
    let cols = if a.1 == b.1 {
        a.1
    } else if a.1 == 1 {
        b.1
    } else if b.1 == 1 {
        a.1
    } else {
        return None;
    };
    Some((rows, cols))
}

/// Evaluates `f` elementwise over broadcast operands.
fn broadcast_zip(
    op: &'static str,
    a: &Matrix,
    b: &Matrix,
    f: impl Fn(f64, f64) -> f64,
) -> Result<Matrix, AutodiffError> {
    let shape = broadcast_shape(a.shape(), b.shape()).ok_or(AutodiffError::ShapeMismatch {
        op,
        lhs: a.shape(),
        rhs: b.shape(),
    })?;
    let (ar, ac) = a.shape();
    let (br, bc) = b.shape();
    Ok(Matrix::from_fn(shape.0, shape.1, |i, j| {
        let av = a[(if ar == 1 { 0 } else { i }, if ac == 1 { 0 } else { j })];
        let bv = b[(if br == 1 { 0 } else { i }, if bc == 1 { 0 } else { j })];
        f(av, bv)
    }))
}

/// Sums `grad` down to `shape` over any broadcast dimensions.
fn reduce_to(grad: &Matrix, shape: (usize, usize)) -> Matrix {
    let (gr, gc) = grad.shape();
    let (tr, tc) = shape;
    if (gr, gc) == (tr, tc) {
        return grad.clone();
    }
    let mut out = Matrix::zeros(tr, tc);
    for i in 0..gr {
        for j in 0..gc {
            let ti = if tr == 1 { 0 } else { i };
            let tj = if tc == 1 { 0 } else { j };
            out[(ti, tj)] += grad[(i, j)];
        }
    }
    out
}

impl Graph {
    /// Creates an empty tape.
    pub fn new() -> Self {
        Graph::default()
    }

    /// Number of nodes on the tape.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Returns `true` if no nodes have been recorded.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// The current value of a node.
    pub fn value(&self, v: Var) -> &Matrix {
        &self.nodes[v.0].value
    }

    /// The shape of a node.
    pub fn shape(&self, v: Var) -> (usize, usize) {
        self.nodes[v.0].value.shape()
    }

    fn push(&mut self, value: Matrix, op: Op) -> Var {
        self.nodes.push(Node { value, op });
        Var(self.nodes.len() - 1)
    }

    /// Registers a trainable leaf.
    pub fn leaf(&mut self, value: Matrix) -> Var {
        self.push(value, Op::Leaf)
    }

    /// Registers a non-trainable constant.
    pub fn constant(&mut self, value: Matrix) -> Var {
        self.push(value, Op::Constant)
    }

    /// Registers a `1×1` scalar constant.
    pub fn scalar(&mut self, value: f64) -> Var {
        self.constant(Matrix::filled(1, 1, value))
    }

    fn binary(
        &mut self,
        op_name: &'static str,
        a: Var,
        b: Var,
        f: impl Fn(f64, f64) -> f64,
        op: Op,
    ) -> Result<Var, AutodiffError> {
        let value = broadcast_zip(op_name, &self.nodes[a.0].value, &self.nodes[b.0].value, f)?;
        Ok(self.push(value, op))
    }

    /// Elementwise (broadcasting) sum.
    ///
    /// # Errors
    ///
    /// Returns [`AutodiffError::ShapeMismatch`] if the shapes do not
    /// broadcast.
    pub fn add(&mut self, a: Var, b: Var) -> Result<Var, AutodiffError> {
        self.binary("add", a, b, |x, y| x + y, Op::Add(a, b))
    }

    /// Elementwise (broadcasting) difference.
    ///
    /// # Errors
    ///
    /// Returns [`AutodiffError::ShapeMismatch`] if the shapes do not
    /// broadcast.
    pub fn sub(&mut self, a: Var, b: Var) -> Result<Var, AutodiffError> {
        self.binary("sub", a, b, |x, y| x - y, Op::Sub(a, b))
    }

    /// Elementwise (broadcasting) product.
    ///
    /// # Errors
    ///
    /// Returns [`AutodiffError::ShapeMismatch`] if the shapes do not
    /// broadcast.
    pub fn mul(&mut self, a: Var, b: Var) -> Result<Var, AutodiffError> {
        self.binary("mul", a, b, |x, y| x * y, Op::Mul(a, b))
    }

    /// Elementwise (broadcasting) quotient.
    ///
    /// # Errors
    ///
    /// Returns [`AutodiffError::ShapeMismatch`] if the shapes do not
    /// broadcast.
    pub fn div(&mut self, a: Var, b: Var) -> Result<Var, AutodiffError> {
        self.binary("div", a, b, |x, y| x / y, Op::Div(a, b))
    }

    /// Matrix product.
    ///
    /// # Errors
    ///
    /// Returns [`AutodiffError::ShapeMismatch`] if the inner dimensions
    /// differ.
    pub fn matmul(&mut self, a: Var, b: Var) -> Result<Var, AutodiffError> {
        let value = self.nodes[a.0]
            .value
            .matmul(&self.nodes[b.0].value)
            .map_err(|_| AutodiffError::ShapeMismatch {
                op: "matmul",
                lhs: self.shape(a),
                rhs: self.shape(b),
            })?;
        Ok(self.push(value, Op::MatMul(a, b)))
    }

    fn unary(&mut self, a: Var, f: impl Fn(f64) -> f64, op: Op) -> Var {
        let value = self.nodes[a.0].value.map(f);
        self.push(value, op)
    }

    /// Elementwise negation.
    pub fn neg(&mut self, a: Var) -> Var {
        self.unary(a, |x| -x, Op::Neg(a))
    }

    /// Elementwise absolute value (subgradient `sign(x)`, `0` at `0`).
    pub fn abs(&mut self, a: Var) -> Var {
        self.unary(a, f64::abs, Op::Abs(a))
    }

    /// Elementwise hyperbolic tangent.
    pub fn tanh(&mut self, a: Var) -> Var {
        self.unary(a, f64::tanh, Op::Tanh(a))
    }

    /// Elementwise logistic sigmoid.
    pub fn sigmoid(&mut self, a: Var) -> Var {
        self.unary(a, |x| 1.0 / (1.0 + (-x).exp()), Op::Sigmoid(a))
    }

    /// Elementwise exponential.
    pub fn exp(&mut self, a: Var) -> Var {
        self.unary(a, f64::exp, Op::Exp(a))
    }

    /// Elementwise natural logarithm.
    pub fn ln(&mut self, a: Var) -> Var {
        self.unary(a, f64::ln, Op::Ln(a))
    }

    /// Elementwise rectified linear unit.
    pub fn relu(&mut self, a: Var) -> Var {
        self.unary(a, |x| x.max(0.0), Op::Relu(a))
    }

    /// Multiplies every element by the literal `s`.
    pub fn scale(&mut self, a: Var, s: f64) -> Var {
        self.unary(a, |x| x * s, Op::Scale(a, s))
    }

    /// Adds the literal `s` to every element.
    pub fn add_scalar(&mut self, a: Var, s: f64) -> Var {
        self.unary(a, |x| x + s, Op::AddScalar(a))
    }

    /// Elementwise integer power.
    pub fn powi(&mut self, a: Var, k: i32) -> Var {
        self.unary(a, |x| x.powi(k), Op::Powi(a, k))
    }

    /// Sum of all elements, as a `1×1` node.
    pub fn sum(&mut self, a: Var) -> Var {
        let s = self.nodes[a.0].value.sum();
        self.push(Matrix::filled(1, 1, s), Op::Sum(a))
    }

    /// Mean of all elements, as a `1×1` node.
    pub fn mean(&mut self, a: Var) -> Var {
        let v = &self.nodes[a.0].value;
        let m = v.sum() / v.len() as f64;
        self.push(Matrix::filled(1, 1, m), Op::Mean(a))
    }

    /// Sums over rows: `m×n → 1×n`.
    pub fn sum_rows(&mut self, a: Var) -> Var {
        let v = &self.nodes[a.0].value;
        let (rows, cols) = v.shape();
        let out = Matrix::from_fn(1, cols, |_, j| (0..rows).map(|i| v[(i, j)]).sum());
        self.push(out, Op::SumRows(a))
    }

    /// Sums over columns: `m×n → m×1`.
    pub fn sum_cols(&mut self, a: Var) -> Var {
        let v = &self.nodes[a.0].value;
        let (rows, cols) = v.shape();
        let out = Matrix::from_fn(rows, 1, |i, _| (0..cols).map(|j| v[(i, j)]).sum());
        self.push(out, Op::SumCols(a))
    }

    /// Selects the column range `start..start + len` of `a`.
    ///
    /// # Errors
    ///
    /// Returns [`AutodiffError::ShapeMismatch`] if the range exceeds the
    /// number of columns.
    pub fn slice_cols(&mut self, a: Var, start: usize, len: usize) -> Result<Var, AutodiffError> {
        let v = &self.nodes[a.0].value;
        let (rows, cols) = v.shape();
        if start + len > cols || len == 0 {
            return Err(AutodiffError::ShapeMismatch {
                op: "slice_cols",
                lhs: (rows, cols),
                rhs: (start, len),
            });
        }
        let out = Matrix::from_fn(rows, len, |i, j| v[(i, start + j)]);
        Ok(self.push(out, Op::SliceCols { parent: a, start }))
    }

    /// Concatenates nodes with equal row counts along columns.
    ///
    /// # Errors
    ///
    /// Returns [`AutodiffError::ShapeMismatch`] if `parts` is empty or the
    /// row counts differ.
    pub fn concat_cols(&mut self, parts: &[Var]) -> Result<Var, AutodiffError> {
        let first = parts.first().ok_or(AutodiffError::ShapeMismatch {
            op: "concat_cols",
            lhs: (0, 0),
            rhs: (0, 0),
        })?;
        let rows = self.shape(*first).0;
        let mut total_cols = 0;
        for p in parts {
            let (r, c) = self.shape(*p);
            if r != rows {
                return Err(AutodiffError::ShapeMismatch {
                    op: "concat_cols",
                    lhs: (rows, 0),
                    rhs: (r, c),
                });
            }
            total_cols += c;
        }
        let mut out = Matrix::zeros(rows, total_cols);
        let mut offset = 0;
        for p in parts {
            let v = &self.nodes[p.0].value;
            let (_, c) = v.shape();
            for i in 0..rows {
                for j in 0..c {
                    out[(i, offset + j)] = v[(i, j)];
                }
            }
            offset += c;
        }
        Ok(self.push(out, Op::ConcatCols(parts.to_vec())))
    }

    /// Straight-through estimator: the node's forward value becomes
    /// `projected` (computed by the caller from [`Graph::value`] in any way,
    /// e.g. the printable-conductance projection of Sec. II-C), while the
    /// backward pass treats the op as the identity.
    ///
    /// # Errors
    ///
    /// Returns [`AutodiffError::ShapeMismatch`] if `projected` has a
    /// different shape than `a`.
    ///
    /// # Examples
    ///
    /// ```
    /// use pnc_autodiff::Graph;
    /// use pnc_linalg::Matrix;
    ///
    /// # fn main() -> Result<(), pnc_autodiff::AutodiffError> {
    /// let mut g = Graph::new();
    /// let x = g.leaf(Matrix::row_vector(&[0.4, -3.0]));
    /// let projected = g.value(x).map(|v| v.clamp(-1.0, 1.0));
    /// let y = g.ste(x, projected)?;
    /// let loss = g.sum(y);
    /// let grads = g.backward(loss)?;
    /// // Identity gradient despite the clamp in the forward pass.
    /// assert_eq!(grads.get(x).expect("grad")[(0, 1)], 1.0);
    /// # Ok(())
    /// # }
    /// ```
    pub fn ste(&mut self, a: Var, projected: Matrix) -> Result<Var, AutodiffError> {
        if projected.shape() != self.shape(a) {
            return Err(AutodiffError::ShapeMismatch {
                op: "ste",
                lhs: self.shape(a),
                rhs: projected.shape(),
            });
        }
        Ok(self.push(projected, Op::Ste(a)))
    }

    /// Clamps elementwise to `[lo, hi]` with a straight-through (identity)
    /// backward pass, as used for the feasible-range projections of Fig. 5.
    pub fn clamp_ste(&mut self, a: Var, lo: f64, hi: f64) -> Var {
        let projected = self.nodes[a.0].value.map(|x| x.clamp(lo, hi));
        self.push(projected, Op::Ste(a))
    }

    /// Softmax cross-entropy over logit rows, with integer class targets.
    /// Returns the mean loss as a `1×1` node.
    ///
    /// # Errors
    ///
    /// Returns [`AutodiffError::TargetLengthMismatch`] or
    /// [`AutodiffError::InvalidTarget`] on malformed targets.
    pub fn cross_entropy_logits(
        &mut self,
        scores: Var,
        targets: &[usize],
    ) -> Result<Var, AutodiffError> {
        let v = &self.nodes[scores.0].value;
        let (batch, classes) = v.shape();
        check_targets(batch, classes, targets)?;

        let mut grad = Matrix::zeros(batch, classes);
        let mut loss = 0.0;
        for i in 0..batch {
            // Stable softmax.
            let row_max = (0..classes)
                .map(|j| v[(i, j)])
                .fold(f64::NEG_INFINITY, f64::max);
            let exps: Vec<f64> = (0..classes).map(|j| (v[(i, j)] - row_max).exp()).collect();
            let denom: f64 = exps.iter().sum();
            let y = targets[i];
            loss += -(exps[y] / denom).ln();
            for j in 0..classes {
                let p = exps[j] / denom;
                grad[(i, j)] = (p - if j == y { 1.0 } else { 0.0 }) / batch as f64;
            }
        }
        loss /= batch as f64;
        Ok(self.push(Matrix::filled(1, 1, loss), Op::FusedLoss { scores, grad }))
    }

    /// The pNN margin loss used throughout the printed-neuromorphic line of
    /// work: `mean_i max(0, margin − s_y + max_{j≠y} s_j)`, encouraging the
    /// true-class output voltage to exceed every other output by `margin`.
    /// Returns the mean loss as a `1×1` node.
    ///
    /// # Errors
    ///
    /// Returns [`AutodiffError::TargetLengthMismatch`] or
    /// [`AutodiffError::InvalidTarget`] on malformed targets.
    pub fn margin_loss(
        &mut self,
        scores: Var,
        targets: &[usize],
        margin: f64,
    ) -> Result<Var, AutodiffError> {
        let v = &self.nodes[scores.0].value;
        let (batch, classes) = v.shape();
        check_targets(batch, classes, targets)?;

        let mut grad = Matrix::zeros(batch, classes);
        let mut loss = 0.0;
        for i in 0..batch {
            let y = targets[i];
            let (mut best_j, mut best) = (usize::MAX, f64::NEG_INFINITY);
            for j in 0..classes {
                if j != y && v[(i, j)] > best {
                    best = v[(i, j)];
                    best_j = j;
                }
            }
            if best_j == usize::MAX {
                // Single-class degenerate case: loss is zero.
                continue;
            }
            let violation = margin - v[(i, y)] + best;
            if violation > 0.0 {
                loss += violation;
                grad[(i, y)] -= 1.0 / batch as f64;
                grad[(i, best_j)] += 1.0 / batch as f64;
            }
        }
        loss /= batch as f64;
        Ok(self.push(Matrix::filled(1, 1, loss), Op::FusedLoss { scores, grad }))
    }

    /// Renders the tape as a Graphviz `dot` digraph for debugging: one box
    /// per node labeled with its index, op kind and shape, one edge per
    /// data dependency.
    ///
    /// # Examples
    ///
    /// ```
    /// use pnc_autodiff::Graph;
    /// use pnc_linalg::Matrix;
    ///
    /// let mut g = Graph::new();
    /// let x = g.leaf(Matrix::filled(1, 2, 1.0));
    /// let y = g.tanh(x);
    /// let _ = g.sum(y);
    /// let dot = g.to_dot();
    /// assert!(dot.contains("digraph tape"));
    /// assert!(dot.contains("Tanh"));
    /// ```
    pub fn to_dot(&self) -> String {
        use std::fmt::Write as _;
        let mut out =
            String::from("digraph tape {\n  rankdir=BT;\n  node [shape=box, fontsize=10];\n");
        for (id, node) in self.nodes.iter().enumerate() {
            let (r, c) = node.value.shape();
            let kind = match &node.op {
                Op::Leaf => "Leaf".to_string(),
                Op::Constant => "Const".to_string(),
                other => {
                    let dbg = format!("{other:?}");
                    dbg.split(['(', ' ', '{'])
                        .next()
                        .unwrap_or("Op")
                        .to_string()
                }
            };
            let _ = writeln!(out, "  n{id} [label=\"#{id} {kind}\\n{r}x{c}\"];");
            let parents: Vec<usize> = match &node.op {
                Op::Leaf | Op::Constant => vec![],
                Op::Add(a, b)
                | Op::Sub(a, b)
                | Op::Mul(a, b)
                | Op::Div(a, b)
                | Op::MatMul(a, b) => vec![a.0, b.0],
                Op::Neg(a)
                | Op::Abs(a)
                | Op::Tanh(a)
                | Op::Sigmoid(a)
                | Op::Exp(a)
                | Op::Ln(a)
                | Op::Relu(a)
                | Op::Scale(a, _)
                | Op::AddScalar(a)
                | Op::Powi(a, _)
                | Op::Sum(a)
                | Op::Mean(a)
                | Op::SumRows(a)
                | Op::SumCols(a)
                | Op::Ste(a) => vec![a.0],
                Op::SliceCols { parent, .. } => vec![parent.0],
                Op::ConcatCols(parts) => parts.iter().map(|p| p.0).collect(),
                Op::FusedLoss { scores, .. } => vec![scores.0],
            };
            for p in parents {
                let _ = writeln!(out, "  n{p} -> n{id};");
            }
        }
        out.push_str("}\n");
        out
    }

    /// Runs reverse-mode accumulation from the scalar node `loss`.
    ///
    /// # Errors
    ///
    /// Returns [`AutodiffError::NonScalarLoss`] if `loss` is not `1×1`.
    pub fn backward(&self, loss: Var) -> Result<GradStore, AutodiffError> {
        if self.shape(loss) != (1, 1) {
            return Err(AutodiffError::NonScalarLoss {
                shape: self.shape(loss),
            });
        }
        let mut store = GradStore {
            grads: vec![None; self.nodes.len()],
        };
        store.grads[loss.0] = Some(Matrix::filled(1, 1, 1.0));

        for id in (0..=loss.0).rev() {
            let Some(grad) = store.grads[id].clone() else {
                continue;
            };
            let node = &self.nodes[id];
            match &node.op {
                Op::Leaf | Op::Constant => {}
                Op::Add(a, b) => {
                    store.accumulate(*a, reduce_to(&grad, self.shape(*a)))?;
                    store.accumulate(*b, reduce_to(&grad, self.shape(*b)))?;
                }
                Op::Sub(a, b) => {
                    store.accumulate(*a, reduce_to(&grad, self.shape(*a)))?;
                    store.accumulate(*b, reduce_to(&grad.scale(-1.0), self.shape(*b)))?;
                }
                Op::Mul(a, b) => {
                    let ga = broadcast_zip("mul_bw", &grad, self.value(*b), |g, y| g * y)?;
                    let gb = broadcast_zip("mul_bw", &grad, self.value(*a), |g, x| g * x)?;
                    store.accumulate(*a, reduce_to(&ga, self.shape(*a)))?;
                    store.accumulate(*b, reduce_to(&gb, self.shape(*b)))?;
                }
                Op::Div(a, b) => {
                    let ga = broadcast_zip("div_bw", &grad, self.value(*b), |g, y| g / y)?;
                    // g_b = −g·a/b²; fold a and b in two broadcast passes.
                    let a_over_b2 =
                        broadcast_zip("div_bw", self.value(*a), self.value(*b), |x, y| {
                            -x / (y * y)
                        })?;
                    let gb = broadcast_zip("div_bw", &grad, &a_over_b2, |g, q| g * q)?;
                    store.accumulate(*a, reduce_to(&ga, self.shape(*a)))?;
                    store.accumulate(*b, reduce_to(&gb, self.shape(*b)))?;
                }
                Op::MatMul(a, b) => {
                    let ga = grad
                        .matmul(&self.value(*b).transpose())
                        .map_err(bw_err("matmul_bw"))?;
                    let gb = self
                        .value(*a)
                        .transpose()
                        .matmul(&grad)
                        .map_err(bw_err("matmul_bw"))?;
                    store.accumulate(*a, ga)?;
                    store.accumulate(*b, gb)?;
                }
                Op::Neg(a) => store.accumulate(*a, grad.scale(-1.0))?,
                Op::Abs(a) => {
                    let x = self.value(*a);
                    let g = grad
                        .zip_with(x, "abs_bw", |g, x| g * sign(x))
                        .map_err(bw_err("elementwise_bw"))?;
                    store.accumulate(*a, g)?;
                }
                Op::Tanh(a) => {
                    let g = grad
                        .zip_with(&node.value, "tanh_bw", |g, t| g * (1.0 - t * t))
                        .map_err(bw_err("elementwise_bw"))?;
                    store.accumulate(*a, g)?;
                }
                Op::Sigmoid(a) => {
                    let g = grad
                        .zip_with(&node.value, "sigmoid_bw", |g, s| g * s * (1.0 - s))
                        .map_err(bw_err("elementwise_bw"))?;
                    store.accumulate(*a, g)?;
                }
                Op::Exp(a) => {
                    let g = grad
                        .zip_with(&node.value, "exp_bw", |g, e| g * e)
                        .map_err(bw_err("elementwise_bw"))?;
                    store.accumulate(*a, g)?;
                }
                Op::Ln(a) => {
                    let g = grad
                        .zip_with(self.value(*a), "ln_bw", |g, x| g / x)
                        .map_err(bw_err("elementwise_bw"))?;
                    store.accumulate(*a, g)?;
                }
                Op::Relu(a) => {
                    let g = grad
                        .zip_with(
                            self.value(*a),
                            "relu_bw",
                            |g, x| if x > 0.0 { g } else { 0.0 },
                        )
                        .map_err(bw_err("elementwise_bw"))?;
                    store.accumulate(*a, g)?;
                }
                Op::Scale(a, s) => store.accumulate(*a, grad.scale(*s))?,
                Op::AddScalar(a) => store.accumulate(*a, grad)?,
                Op::Powi(a, k) => {
                    let g = grad
                        .zip_with(self.value(*a), "powi_bw", |g, x| {
                            g * *k as f64 * x.powi(k - 1)
                        })
                        .map_err(bw_err("elementwise_bw"))?;
                    store.accumulate(*a, g)?;
                }
                Op::Sum(a) => {
                    let (r, c) = self.shape(*a);
                    store.accumulate(*a, Matrix::filled(r, c, grad[(0, 0)]))?;
                }
                Op::Mean(a) => {
                    let (r, c) = self.shape(*a);
                    store.accumulate(*a, Matrix::filled(r, c, grad[(0, 0)] / (r * c) as f64))?;
                }
                Op::SumRows(a) => {
                    let (r, c) = self.shape(*a);
                    store.accumulate(*a, Matrix::from_fn(r, c, |_, j| grad[(0, j)]))?;
                }
                Op::SumCols(a) => {
                    let (r, c) = self.shape(*a);
                    store.accumulate(*a, Matrix::from_fn(r, c, |i, _| grad[(i, 0)]))?;
                }
                Op::SliceCols { parent, start } => {
                    let (r, c) = self.shape(*parent);
                    let (_, w) = node.value.shape();
                    let mut g = Matrix::zeros(r, c);
                    for i in 0..r {
                        for j in 0..w {
                            g[(i, start + j)] = grad[(i, j)];
                        }
                    }
                    store.accumulate(*parent, g)?;
                }
                Op::ConcatCols(parts) => {
                    let mut offset = 0;
                    for p in parts {
                        let (r, c) = self.shape(*p);
                        let g = Matrix::from_fn(r, c, |i, j| grad[(i, offset + j)]);
                        store.accumulate(*p, g)?;
                        offset += c;
                    }
                }
                Op::Ste(a) => store.accumulate(*a, grad)?,
                Op::FusedLoss {
                    scores,
                    grad: template,
                } => {
                    store.accumulate(*scores, template.scale(grad[(0, 0)]))?;
                }
            }
        }
        Ok(store)
    }
}

fn sign(x: f64) -> f64 {
    if x > 0.0 {
        1.0
    } else if x < 0.0 {
        -1.0
    } else {
        0.0
    }
}

fn check_targets(batch: usize, classes: usize, targets: &[usize]) -> Result<(), AutodiffError> {
    if targets.len() != batch {
        return Err(AutodiffError::TargetLengthMismatch {
            batch,
            targets: targets.len(),
        });
    }
    if let Some(&bad) = targets.iter().find(|&&t| t >= classes) {
        return Err(AutodiffError::InvalidTarget {
            class: bad,
            num_classes: classes,
        });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m(rows: &[&[f64]]) -> Matrix {
        Matrix::from_rows(rows).unwrap()
    }

    #[test]
    fn add_and_sub_gradients() {
        let mut g = Graph::new();
        let a = g.leaf(m(&[&[1.0, 2.0]]));
        let b = g.leaf(m(&[&[3.0, 4.0]]));
        let s = g.sub(a, b).unwrap();
        let t = g.add(s, a).unwrap();
        let loss = g.sum(t);
        let grads = g.backward(loss).unwrap();
        assert_eq!(grads.get(a).unwrap().as_slice(), &[2.0, 2.0]);
        assert_eq!(grads.get(b).unwrap().as_slice(), &[-1.0, -1.0]);
    }

    #[test]
    fn mul_gradient_is_other_operand() {
        let mut g = Graph::new();
        let a = g.leaf(m(&[&[2.0, 3.0]]));
        let b = g.leaf(m(&[&[5.0, 7.0]]));
        let p = g.mul(a, b).unwrap();
        let loss = g.sum(p);
        let grads = g.backward(loss).unwrap();
        assert_eq!(grads.get(a).unwrap().as_slice(), &[5.0, 7.0]);
        assert_eq!(grads.get(b).unwrap().as_slice(), &[2.0, 3.0]);
    }

    #[test]
    fn div_gradients() {
        let mut g = Graph::new();
        let a = g.leaf(m(&[&[6.0]]));
        let b = g.leaf(m(&[&[3.0]]));
        let q = g.div(a, b).unwrap();
        let grads = g.backward(q).unwrap();
        assert!((grads.get(a).unwrap()[(0, 0)] - 1.0 / 3.0).abs() < 1e-12);
        assert!((grads.get(b).unwrap()[(0, 0)] + 6.0 / 9.0).abs() < 1e-12);
    }

    #[test]
    fn scalar_broadcast_reduces_gradient() {
        let mut g = Graph::new();
        let s = g.leaf(m(&[&[2.0]]));
        let x = g.constant(m(&[&[1.0, 2.0], &[3.0, 4.0]]));
        let y = g.mul(s, x).unwrap();
        assert_eq!(g.shape(y), (2, 2));
        let loss = g.sum(y);
        let grads = g.backward(loss).unwrap();
        assert_eq!(grads.get(s).unwrap()[(0, 0)], 10.0);
    }

    #[test]
    fn row_vector_broadcast() {
        let mut g = Graph::new();
        let row = g.leaf(m(&[&[1.0, 2.0]]));
        let x = g.constant(m(&[&[1.0, 1.0], &[1.0, 1.0], &[1.0, 1.0]]));
        let y = g.div(x, row).unwrap();
        let loss = g.sum(y);
        let grads = g.backward(loss).unwrap();
        // d/d row_j of sum_i x_ij/row_j = −3/row_j².
        assert!((grads.get(row).unwrap()[(0, 0)] + 3.0).abs() < 1e-12);
        assert!((grads.get(row).unwrap()[(0, 1)] + 0.75).abs() < 1e-12);
    }

    #[test]
    fn column_vector_broadcast() {
        let mut g = Graph::new();
        let col = g.leaf(m(&[&[1.0], &[2.0]]));
        let x = g.constant(m(&[&[1.0, 2.0], &[3.0, 4.0]]));
        let y = g.add(x, col).unwrap();
        let loss = g.sum(y);
        let grads = g.backward(loss).unwrap();
        assert_eq!(grads.get(col).unwrap().as_slice(), &[2.0, 2.0]);
    }

    #[test]
    fn incompatible_shapes_error() {
        let mut g = Graph::new();
        let a = g.leaf(Matrix::zeros(2, 3));
        let b = g.leaf(Matrix::zeros(3, 2));
        assert!(matches!(
            g.add(a, b),
            Err(AutodiffError::ShapeMismatch { .. })
        ));
    }

    #[test]
    fn matmul_gradients() {
        let mut g = Graph::new();
        let a = g.leaf(m(&[&[1.0, 2.0], &[3.0, 4.0]]));
        let b = g.leaf(m(&[&[5.0], &[6.0]]));
        let y = g.matmul(a, b).unwrap();
        let loss = g.sum(y);
        let grads = g.backward(loss).unwrap();
        // dL/dA = 1·Bᵀ (broadcast over rows), dL/dB = Aᵀ·1.
        assert_eq!(grads.get(a).unwrap().as_slice(), &[5.0, 6.0, 5.0, 6.0]);
        assert_eq!(grads.get(b).unwrap().as_slice(), &[4.0, 6.0]);
    }

    #[test]
    fn chain_of_unaries() {
        let mut g = Graph::new();
        let x = g.leaf(m(&[&[0.3]]));
        let t = g.tanh(x);
        let s = g.sigmoid(t);
        let e = g.exp(s);
        let loss = g.sum(e);
        let grads = g.backward(loss).unwrap();

        // Analytic chain.
        let xv = 0.3f64;
        let tv = xv.tanh();
        let sv = 1.0 / (1.0 + (-tv).exp());
        let expected = sv.exp() * sv * (1.0 - sv) * (1.0 - tv * tv);
        assert!((grads.get(x).unwrap()[(0, 0)] - expected).abs() < 1e-12);
    }

    #[test]
    fn abs_subgradient() {
        let mut g = Graph::new();
        let x = g.leaf(m(&[&[-2.0, 0.0, 3.0]]));
        let a = g.abs(x);
        let loss = g.sum(a);
        let grads = g.backward(loss).unwrap();
        assert_eq!(grads.get(x).unwrap().as_slice(), &[-1.0, 0.0, 1.0]);
    }

    #[test]
    fn relu_gates_gradient() {
        let mut g = Graph::new();
        let x = g.leaf(m(&[&[-1.0, 2.0]]));
        let r = g.relu(x);
        let loss = g.sum(r);
        let grads = g.backward(loss).unwrap();
        assert_eq!(grads.get(x).unwrap().as_slice(), &[0.0, 1.0]);
    }

    #[test]
    fn ln_and_powi() {
        let mut g = Graph::new();
        let x = g.leaf(m(&[&[2.0]]));
        let p = g.powi(x, 3);
        let l = g.ln(p);
        let grads = g.backward(l).unwrap();
        // d ln(x³)/dx = 3/x.
        assert!((grads.get(x).unwrap()[(0, 0)] - 1.5).abs() < 1e-12);
    }

    #[test]
    fn mean_divides_gradient() {
        let mut g = Graph::new();
        let x = g.leaf(Matrix::filled(2, 2, 1.0));
        let loss = g.mean(x);
        let grads = g.backward(loss).unwrap();
        assert_eq!(grads.get(x).unwrap().as_slice(), &[0.25; 4]);
    }

    #[test]
    fn sum_rows_and_cols() {
        let mut g = Graph::new();
        let x = g.leaf(m(&[&[1.0, 2.0], &[3.0, 4.0]]));
        let r = g.sum_rows(x);
        assert_eq!(g.value(r).as_slice(), &[4.0, 6.0]);
        let c = g.sum_cols(x);
        assert_eq!(g.value(c).as_slice(), &[3.0, 7.0]);
        let s1 = g.sum(r);
        let grads = g.backward(s1).unwrap();
        assert_eq!(grads.get(x).unwrap().as_slice(), &[1.0; 4]);
    }

    #[test]
    fn slice_and_concat_round_trip() {
        let mut g = Graph::new();
        let x = g.leaf(m(&[&[1.0, 2.0, 3.0, 4.0]]));
        let a = g.slice_cols(x, 0, 2).unwrap();
        let b = g.slice_cols(x, 2, 2).unwrap();
        let back = g.concat_cols(&[b, a]).unwrap();
        assert_eq!(g.value(back).as_slice(), &[3.0, 4.0, 1.0, 2.0]);
        let doubled = g.scale(back, 2.0);
        let loss = g.sum(doubled);
        let grads = g.backward(loss).unwrap();
        assert_eq!(grads.get(x).unwrap().as_slice(), &[2.0; 4]);
    }

    #[test]
    fn slice_out_of_range_errors() {
        let mut g = Graph::new();
        let x = g.leaf(Matrix::zeros(1, 3));
        assert!(g.slice_cols(x, 2, 2).is_err());
        assert!(g.slice_cols(x, 0, 0).is_err());
    }

    #[test]
    fn concat_requires_matching_rows() {
        let mut g = Graph::new();
        let a = g.leaf(Matrix::zeros(1, 2));
        let b = g.leaf(Matrix::zeros(2, 2));
        assert!(g.concat_cols(&[a, b]).is_err());
        assert!(g.concat_cols(&[]).is_err());
    }

    #[test]
    fn ste_passes_gradient_through_projection() {
        let mut g = Graph::new();
        let x = g.leaf(m(&[&[5.0, -5.0]]));
        let y = g.clamp_ste(x, -1.0, 1.0);
        assert_eq!(g.value(y).as_slice(), &[1.0, -1.0]);
        let loss = g.sum(y);
        let grads = g.backward(loss).unwrap();
        assert_eq!(grads.get(x).unwrap().as_slice(), &[1.0, 1.0]);
    }

    #[test]
    fn ste_shape_checked() {
        let mut g = Graph::new();
        let x = g.leaf(Matrix::zeros(1, 2));
        assert!(g.ste(x, Matrix::zeros(2, 1)).is_err());
    }

    #[test]
    fn backward_rejects_nonscalar() {
        let mut g = Graph::new();
        let x = g.leaf(Matrix::zeros(2, 2));
        assert!(matches!(
            g.backward(x),
            Err(AutodiffError::NonScalarLoss { .. })
        ));
    }

    #[test]
    fn cross_entropy_matches_manual() {
        let mut g = Graph::new();
        let scores = g.leaf(m(&[&[2.0, 1.0, 0.0], &[0.0, 0.0, 0.0]]));
        let loss = g.cross_entropy_logits(scores, &[0, 2]).unwrap();

        // Manual: row 0 softmax of [2,1,0], loss −ln p0; row 1 uniform.
        let exps = [2.0f64.exp(), 1.0f64.exp(), 1.0];
        let denom: f64 = exps.iter().sum();
        let expected = (-(exps[0] / denom).ln() + -(1.0f64 / 3.0).ln()) / 2.0;
        assert!((g.value(loss)[(0, 0)] - expected).abs() < 1e-12);

        let grads = g.backward(loss).unwrap();
        let gs = grads.get(scores).unwrap();
        // Row 1: (1/3 − onehot₂)/2.
        assert!((gs[(1, 2)] - (1.0 / 3.0 - 1.0) / 2.0).abs() < 1e-12);
        assert!((gs[(1, 0)] - (1.0 / 3.0) / 2.0).abs() < 1e-12);
        // Gradients of each row sum to zero.
        assert!((gs[(0, 0)] + gs[(0, 1)] + gs[(0, 2)]).abs() < 1e-12);
    }

    #[test]
    fn cross_entropy_validates_targets() {
        let mut g = Graph::new();
        let scores = g.leaf(Matrix::zeros(2, 3));
        assert!(matches!(
            g.cross_entropy_logits(scores, &[0]),
            Err(AutodiffError::TargetLengthMismatch { .. })
        ));
        assert!(matches!(
            g.cross_entropy_logits(scores, &[0, 3]),
            Err(AutodiffError::InvalidTarget { .. })
        ));
    }

    #[test]
    fn margin_loss_zero_when_separated() {
        let mut g = Graph::new();
        let scores = g.leaf(m(&[&[1.0, 0.0], &[0.0, 1.0]]));
        let loss = g.margin_loss(scores, &[0, 1], 0.3).unwrap();
        assert_eq!(g.value(loss)[(0, 0)], 0.0);
        let grads = g.backward(loss).unwrap();
        assert_eq!(grads.get(scores).unwrap().norm(), 0.0);
    }

    #[test]
    fn margin_loss_penalizes_violations() {
        let mut g = Graph::new();
        let scores = g.leaf(m(&[&[0.5, 0.6]]));
        let loss = g.margin_loss(scores, &[0], 0.3).unwrap();
        // violation = 0.3 − 0.5 + 0.6 = 0.4
        assert!((g.value(loss)[(0, 0)] - 0.4).abs() < 1e-12);
        let grads = g.backward(loss).unwrap();
        let gs = grads.get(scores).unwrap();
        assert_eq!(gs[(0, 0)], -1.0);
        assert_eq!(gs[(0, 1)], 1.0);
    }

    #[test]
    fn gradient_accumulates_over_shared_subexpression() {
        let mut g = Graph::new();
        let x = g.leaf(m(&[&[3.0]]));
        let sq = g.mul(x, x).unwrap();
        let y = g.add(sq, x).unwrap(); // x² + x
        let grads = g.backward(y).unwrap();
        assert!((grads.get(x).unwrap()[(0, 0)] - 7.0).abs() < 1e-12); // 2x+1
    }

    #[test]
    fn constants_do_not_stop_flow_but_get_grads_too() {
        let mut g = Graph::new();
        let x = g.leaf(m(&[&[2.0]]));
        let c = g.scalar(10.0);
        let y = g.mul(x, c).unwrap();
        let grads = g.backward(y).unwrap();
        assert_eq!(grads.get(x).unwrap()[(0, 0)], 10.0);
        // Constants receive gradients (harmless); leaves are what optimizers
        // read.
        assert_eq!(grads.get(c).unwrap()[(0, 0)], 2.0);
    }
}
