use crate::AutodiffError;
use pnc_linalg::{Matrix, Workspace};

/// Handle to a tensor node in a [`Graph`].
///
/// `Var`s are cheap copyable indices; they are only meaningful for the graph
/// that created them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Var(usize);

impl Var {
    /// The raw tape index of this node.
    pub fn index(self) -> usize {
        self.0
    }
}

/// One recorded operation. Parents are stored as `Var` indices, which are
/// always smaller than the node's own index — the tape is topologically
/// sorted by construction.
#[derive(Debug, Clone)]
enum Op {
    /// Trainable input (gradient of interest).
    Leaf,
    /// Non-trainable input.
    Constant,
    Add(Var, Var),
    Sub(Var, Var),
    Mul(Var, Var),
    Div(Var, Var),
    MatMul(Var, Var),
    Neg(Var),
    Abs(Var),
    Tanh(Var),
    Sigmoid(Var),
    Exp(Var),
    Ln(Var),
    Relu(Var),
    Scale(Var, f64),
    AddScalar(Var),
    Powi(Var, i32),
    Sum(Var),
    Mean(Var),
    SumRows(Var),
    SumCols(Var),
    SliceCols {
        parent: Var,
        start: usize,
    },
    ConcatCols(Vec<Var>),
    /// Straight-through estimator: arbitrary forward projection, identity
    /// backward.
    Ste(Var),
    /// Fused loss with a precomputed gradient template w.r.t. the scores.
    FusedLoss {
        scores: Var,
        grad: Matrix,
    },
}

#[derive(Debug, Clone)]
struct Node {
    value: Matrix,
    op: Op,
}

/// Gradients produced by [`Graph::backward`], indexed by [`Var`].
///
/// A `GradStore` owns both the gradient arena and a buffer pool: pass the
/// same store to [`Graph::backward_into`] across training steps and the
/// backward pass writes into the preallocated gradient buffers instead of
/// allocating (and cloning) matrices per op.
#[derive(Debug, Default)]
pub struct GradStore {
    grads: Vec<Option<Matrix>>,
    pool: Workspace,
}

impl GradStore {
    /// Creates an empty store; [`Graph::backward_into`] sizes it to the tape.
    pub fn new() -> Self {
        GradStore::default()
    }

    /// The gradient of the loss with respect to `v`, if any gradient flowed
    /// to it.
    pub fn get(&self, v: Var) -> Option<&Matrix> {
        self.grads.get(v.0).and_then(|g| g.as_ref())
    }

    /// Clears all gradients, retiring their buffers into the pool, and
    /// resizes the arena for a tape of `len` nodes.
    fn reset_for(&mut self, len: usize) {
        for slot in self.grads.iter_mut() {
            if let Some(m) = slot.take() {
                self.pool.give(m);
            }
        }
        self.grads.resize(len, None);
    }

    /// Adds `g` into the slot for `v` (in place when one exists), taking
    /// ownership of `g`'s buffer either as the slot value or back into the
    /// pool. Bit-identical to the old allocating `existing + g` path.
    fn accumulate_owned(&mut self, v: Var, g: Matrix) -> Result<(), AutodiffError> {
        match &mut self.grads[v.0] {
            Some(existing) => {
                existing.add_assign(&g).map_err(bw_err("grad_accumulate"))?;
                self.pool.give(g);
            }
            slot @ None => *slot = Some(g),
        }
        Ok(())
    }

    /// Pre-overhaul accumulate, kept for [`Graph::backward_reference`]:
    /// replaces the slot with a freshly allocated `existing + g`.
    fn accumulate_alloc(&mut self, v: Var, g: Matrix) -> Result<(), AutodiffError> {
        match &mut self.grads[v.0] {
            Some(existing) => {
                *existing = existing.add(&g).map_err(bw_err("grad_accumulate"))?;
            }
            slot @ None => *slot = Some(g),
        }
        Ok(())
    }

    /// Adds `g` into the slot for `v` without taking ownership: in place when
    /// the slot is occupied, via a pooled copy when it is empty.
    fn accumulate_ref(&mut self, v: Var, g: &Matrix) -> Result<(), AutodiffError> {
        match &mut self.grads[v.0] {
            Some(existing) => existing.add_assign(g).map_err(bw_err("grad_accumulate"))?,
            None => {
                let (r, c) = g.shape();
                let mut buf = self.pool.take(r, c);
                buf.copy_from(g).map_err(bw_err("grad_accumulate"))?;
                self.grads[v.0] = Some(buf);
            }
        }
        Ok(())
    }
}

/// Wraps a linear-algebra failure inside a gradient rule as
/// [`AutodiffError::Backward`]. The forward pass validates shapes, so these
/// errors indicate an internal inconsistency in a hand-derived gradient —
/// surfaced as an error rather than a panic so callers can report it.
fn bw_err(op: &'static str) -> impl Fn(pnc_linalg::LinalgError) -> AutodiffError {
    move |source| AutodiffError::Backward { op, source }
}

/// A define-by-run computation tape over dense `f64` matrices.
///
/// Operations evaluate eagerly and record themselves; [`Graph::backward`]
/// replays the tape in reverse. The tape is rebuilt every training step (the
/// usual define-by-run pattern) — leaves take their values from externally
/// stored [`Parameter`](crate::Parameter)s. Hot loops should call
/// [`Graph::reset`] between steps instead of constructing a new graph: the
/// node arena and every retired value buffer are retained in an internal
/// [`Workspace`], so a shape-stable step allocates nothing in steady state.
///
/// Elementwise binary operations broadcast `1×1` scalars, `1×n` row vectors
/// and `m×1` column vectors against `m×n` matrices.
///
/// # Examples
///
/// ```
/// use pnc_autodiff::Graph;
/// use pnc_linalg::Matrix;
///
/// # fn main() -> Result<(), pnc_autodiff::AutodiffError> {
/// let mut g = Graph::new();
/// let w = g.leaf(Matrix::from_rows(&[&[2.0]]).expect("shape"));
/// let x = g.constant(Matrix::row_vector(&[1.0, 2.0, 3.0]));
/// let y = g.mul(w, x)?;      // scalar broadcast
/// let loss = g.sum(y);
/// let grads = g.backward(loss)?;
/// assert_eq!(grads.get(w).expect("grad")[(0, 0)], 6.0); // 1 + 2 + 3
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Default)]
pub struct Graph {
    nodes: Vec<Node>,
    pool: Workspace,
}

/// Broadcast-compatible result shape, if any.
fn broadcast_shape(a: (usize, usize), b: (usize, usize)) -> Option<(usize, usize)> {
    let rows = if a.0 == b.0 {
        a.0
    } else if a.0 == 1 {
        b.0
    } else if b.0 == 1 {
        a.0
    } else {
        return None;
    };
    let cols = if a.1 == b.1 {
        a.1
    } else if a.1 == 1 {
        b.1
    } else if b.1 == 1 {
        a.1
    } else {
        return None;
    };
    Some((rows, cols))
}

/// Evaluates `f` elementwise over broadcast operands into a preallocated
/// `out` of the broadcast shape (fully overwritten). Same fill order — and
/// therefore the same bits — as the old allocating `Matrix::from_fn` path:
/// the shape-specialized branches below only replace bounds-checked `(i, j)`
/// indexing with slice iteration, applying `f` to the identical operand pair
/// at the identical row-major position.
fn broadcast_fill(a: &Matrix, b: &Matrix, f: impl Fn(f64, f64) -> f64, out: &mut Matrix) {
    let (ar, ac) = a.shape();
    let (br, bc) = b.shape();
    let (rows, cols) = out.shape();
    let o = out.as_mut_slice();
    if (ar, ac) == (rows, cols) && (br, bc) == (rows, cols) {
        // Equal shapes: one flat pass.
        for ((o, &av), &bv) in o.iter_mut().zip(a.as_slice()).zip(b.as_slice()) {
            *o = f(av, bv);
        }
    } else if (ar, ac) == (rows, cols) && (br, bc) == (1, 1) {
        // Scalar right operand.
        let bv = b.as_slice()[0];
        for (o, &av) in o.iter_mut().zip(a.as_slice()) {
            *o = f(av, bv);
        }
    } else if (br, bc) == (rows, cols) && (ar, ac) == (1, 1) {
        // Scalar left operand.
        let av = a.as_slice()[0];
        for (o, &bv) in o.iter_mut().zip(b.as_slice()) {
            *o = f(av, bv);
        }
    } else if (ar, ac) == (rows, cols) && (br, bc) == (1, cols) {
        // Row-vector right operand, repeated down the rows.
        let b_row = b.as_slice();
        for (out_row, a_row) in o
            .chunks_exact_mut(cols)
            .zip(a.as_slice().chunks_exact(cols))
        {
            for ((o, &av), &bv) in out_row.iter_mut().zip(a_row).zip(b_row) {
                *o = f(av, bv);
            }
        }
    } else if (ar, ac) == (rows, cols) && (br, bc) == (rows, 1) {
        // Column-vector right operand, one value per row.
        for ((out_row, a_row), &bv) in o
            .chunks_exact_mut(cols)
            .zip(a.as_slice().chunks_exact(cols))
            .zip(b.as_slice())
        {
            for (o, &av) in out_row.iter_mut().zip(a_row) {
                *o = f(av, bv);
            }
        }
    } else {
        // Remaining broadcast combinations (left-operand vectors, outer
        // products): the general indexed walk.
        for i in 0..rows {
            for j in 0..cols {
                let av = a[(if ar == 1 { 0 } else { i }, if ac == 1 { 0 } else { j })];
                let bv = b[(if br == 1 { 0 } else { i }, if bc == 1 { 0 } else { j })];
                o[i * cols + j] = f(av, bv);
            }
        }
    }
}

/// Allocating broadcast combine, kept verbatim from the pre-overhaul
/// backward for [`Graph::backward_reference`] — per-element indexed access
/// included, so reference timings stay representative of the old path.
fn broadcast_zip(
    op: &'static str,
    a: &Matrix,
    b: &Matrix,
    f: impl Fn(f64, f64) -> f64,
) -> Result<Matrix, AutodiffError> {
    let shape = broadcast_shape(a.shape(), b.shape()).ok_or(AutodiffError::ShapeMismatch {
        op,
        lhs: a.shape(),
        rhs: b.shape(),
    })?;
    let (ar, ac) = a.shape();
    let (br, bc) = b.shape();
    Ok(Matrix::from_fn(shape.0, shape.1, |i, j| {
        let av = a[(if ar == 1 { 0 } else { i }, if ac == 1 { 0 } else { j })];
        let bv = b[(if br == 1 { 0 } else { i }, if bc == 1 { 0 } else { j })];
        f(av, bv)
    }))
}

/// Allocating broadcast reduction, kept verbatim from the pre-overhaul
/// backward for [`Graph::backward_reference`]: sums `grad` down to a fresh
/// matrix of `shape` through per-element indexed access.
fn reduce_to(grad: &Matrix, shape: (usize, usize)) -> Matrix {
    let (gr, gc) = grad.shape();
    let (tr, tc) = shape;
    if (gr, gc) == (tr, tc) {
        return grad.clone();
    }
    let mut out = Matrix::zeros(tr, tc);
    for i in 0..gr {
        for j in 0..gc {
            let ti = if tr == 1 { 0 } else { i };
            let tj = if tc == 1 { 0 } else { j };
            out[(ti, tj)] += grad[(i, j)];
        }
    }
    out
}

/// Sums `grad` down into a zeroed `out` over any broadcast dimensions,
/// visiting `grad` row-major exactly like the old allocating `reduce_to` —
/// the specialized branches keep that element order and only drop the
/// per-element bounds checks.
fn reduce_into(grad: &Matrix, out: &mut Matrix) {
    let (gr, gc) = grad.shape();
    let (tr, tc) = out.shape();
    if (tr, tc) == (1, 1) {
        // Full reduction: flat pass in row-major (= visitation) order.
        let mut acc = out.as_slice()[0];
        for &x in grad.as_slice() {
            acc += x;
        }
        out.as_mut_slice()[0] = acc;
    } else if tr == 1 && tc == gc {
        // Sum down the rows into a row vector.
        let o = out.as_mut_slice();
        for g_row in grad.as_slice().chunks_exact(gc) {
            for (o, &x) in o.iter_mut().zip(g_row) {
                *o += x;
            }
        }
    } else if tc == 1 && tr == gr {
        // Sum across the columns into a column vector.
        for (o, g_row) in out
            .as_mut_slice()
            .iter_mut()
            .zip(grad.as_slice().chunks_exact(gc))
        {
            let mut acc = *o;
            for &x in g_row {
                acc += x;
            }
            *o = acc;
        }
    } else {
        for i in 0..gr {
            for j in 0..gc {
                let ti = if tr == 1 { 0 } else { i };
                let tj = if tc == 1 { 0 } else { j };
                out[(ti, tj)] += grad[(i, j)];
            }
        }
    }
}

impl Graph {
    /// Creates an empty tape.
    pub fn new() -> Self {
        Graph::default()
    }

    /// Clears the tape for the next step while retaining capacity: the node
    /// arena keeps its allocation and every node's value buffer (including
    /// fused-loss gradient templates) is retired into the internal pool, so
    /// rebuilding a same-shaped tape allocates nothing.
    ///
    /// All previously issued [`Var`] handles are invalidated.
    ///
    /// # Examples
    ///
    /// ```
    /// use pnc_autodiff::Graph;
    /// use pnc_linalg::Matrix;
    ///
    /// # fn main() -> Result<(), pnc_autodiff::AutodiffError> {
    /// let mut g = Graph::new();
    /// for step in 0..3 {
    ///     g.reset();
    ///     let x = g.leaf(Matrix::filled(1, 2, step as f64));
    ///     let y = g.tanh(x);
    ///     let loss = g.sum(y);
    ///     let _grads = g.backward(loss)?;
    /// }
    /// # Ok(())
    /// # }
    /// ```
    pub fn reset(&mut self) {
        for node in self.nodes.drain(..) {
            let Node { value, op } = node;
            if let Op::FusedLoss { grad, .. } = op {
                self.pool.give(grad);
            }
            self.pool.give(value);
        }
    }

    /// Number of nodes on the tape.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Returns `true` if no nodes have been recorded.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// The current value of a node.
    pub fn value(&self, v: Var) -> &Matrix {
        &self.nodes[v.0].value
    }

    /// The shape of a node.
    pub fn shape(&self, v: Var) -> (usize, usize) {
        self.nodes[v.0].value.shape()
    }

    fn push(&mut self, value: Matrix, op: Op) -> Var {
        self.nodes.push(Node { value, op });
        Var(self.nodes.len() - 1)
    }

    /// Registers a trainable leaf.
    pub fn leaf(&mut self, value: Matrix) -> Var {
        self.push(value, Op::Leaf)
    }

    /// Registers a non-trainable constant.
    pub fn constant(&mut self, value: Matrix) -> Var {
        self.push(value, Op::Constant)
    }

    /// Registers a `1×1` scalar constant.
    pub fn scalar(&mut self, value: f64) -> Var {
        self.constant(Matrix::filled(1, 1, value))
    }

    fn binary(
        &mut self,
        op_name: &'static str,
        a: Var,
        b: Var,
        f: impl Fn(f64, f64) -> f64,
        op: Op,
    ) -> Result<Var, AutodiffError> {
        let shape =
            broadcast_shape(self.shape(a), self.shape(b)).ok_or(AutodiffError::ShapeMismatch {
                op: op_name,
                lhs: self.shape(a),
                rhs: self.shape(b),
            })?;
        let mut value = self.pool.take(shape.0, shape.1);
        broadcast_fill(
            &self.nodes[a.0].value,
            &self.nodes[b.0].value,
            f,
            &mut value,
        );
        Ok(self.push(value, op))
    }

    /// Elementwise (broadcasting) sum.
    ///
    /// # Errors
    ///
    /// Returns [`AutodiffError::ShapeMismatch`] if the shapes do not
    /// broadcast.
    pub fn add(&mut self, a: Var, b: Var) -> Result<Var, AutodiffError> {
        self.binary("add", a, b, |x, y| x + y, Op::Add(a, b))
    }

    /// Elementwise (broadcasting) difference.
    ///
    /// # Errors
    ///
    /// Returns [`AutodiffError::ShapeMismatch`] if the shapes do not
    /// broadcast.
    pub fn sub(&mut self, a: Var, b: Var) -> Result<Var, AutodiffError> {
        self.binary("sub", a, b, |x, y| x - y, Op::Sub(a, b))
    }

    /// Elementwise (broadcasting) product.
    ///
    /// # Errors
    ///
    /// Returns [`AutodiffError::ShapeMismatch`] if the shapes do not
    /// broadcast.
    pub fn mul(&mut self, a: Var, b: Var) -> Result<Var, AutodiffError> {
        self.binary("mul", a, b, |x, y| x * y, Op::Mul(a, b))
    }

    /// Elementwise (broadcasting) quotient.
    ///
    /// # Errors
    ///
    /// Returns [`AutodiffError::ShapeMismatch`] if the shapes do not
    /// broadcast.
    pub fn div(&mut self, a: Var, b: Var) -> Result<Var, AutodiffError> {
        self.binary("div", a, b, |x, y| x / y, Op::Div(a, b))
    }

    /// Matrix product.
    ///
    /// # Errors
    ///
    /// Returns [`AutodiffError::ShapeMismatch`] if the inner dimensions
    /// differ.
    pub fn matmul(&mut self, a: Var, b: Var) -> Result<Var, AutodiffError> {
        let (m, ka) = self.shape(a);
        let (kb, n) = self.shape(b);
        if ka != kb {
            return Err(AutodiffError::ShapeMismatch {
                op: "matmul",
                lhs: self.shape(a),
                rhs: self.shape(b),
            });
        }
        let mut value = self.pool.take(m, n);
        self.nodes[a.0]
            .value
            .matmul_into(&self.nodes[b.0].value, &mut value)
            .map_err(|_| AutodiffError::ShapeMismatch {
                op: "matmul",
                lhs: (m, ka),
                rhs: (kb, n),
            })?;
        Ok(self.push(value, Op::MatMul(a, b)))
    }

    fn unary(&mut self, a: Var, f: impl Fn(f64) -> f64, op: Op) -> Var {
        let (r, c) = self.shape(a);
        let mut value = self.pool.take(r, c);
        for (o, &x) in value
            .as_mut_slice()
            .iter_mut()
            .zip(self.nodes[a.0].value.as_slice())
        {
            *o = f(x);
        }
        self.push(value, op)
    }

    /// Elementwise negation.
    pub fn neg(&mut self, a: Var) -> Var {
        self.unary(a, |x| -x, Op::Neg(a))
    }

    /// Elementwise absolute value (subgradient `sign(x)`, `0` at `0`).
    pub fn abs(&mut self, a: Var) -> Var {
        self.unary(a, f64::abs, Op::Abs(a))
    }

    /// Elementwise hyperbolic tangent.
    pub fn tanh(&mut self, a: Var) -> Var {
        self.unary(a, f64::tanh, Op::Tanh(a))
    }

    /// Elementwise logistic sigmoid.
    pub fn sigmoid(&mut self, a: Var) -> Var {
        self.unary(a, |x| 1.0 / (1.0 + (-x).exp()), Op::Sigmoid(a))
    }

    /// Elementwise exponential.
    pub fn exp(&mut self, a: Var) -> Var {
        self.unary(a, f64::exp, Op::Exp(a))
    }

    /// Elementwise natural logarithm.
    pub fn ln(&mut self, a: Var) -> Var {
        self.unary(a, f64::ln, Op::Ln(a))
    }

    /// Elementwise rectified linear unit.
    pub fn relu(&mut self, a: Var) -> Var {
        self.unary(a, |x| x.max(0.0), Op::Relu(a))
    }

    /// Multiplies every element by the literal `s`.
    pub fn scale(&mut self, a: Var, s: f64) -> Var {
        self.unary(a, |x| x * s, Op::Scale(a, s))
    }

    /// Adds the literal `s` to every element.
    pub fn add_scalar(&mut self, a: Var, s: f64) -> Var {
        self.unary(a, |x| x + s, Op::AddScalar(a))
    }

    /// Elementwise integer power.
    pub fn powi(&mut self, a: Var, k: i32) -> Var {
        self.unary(a, |x| x.powi(k), Op::Powi(a, k))
    }

    /// Sum of all elements, as a `1×1` node.
    pub fn sum(&mut self, a: Var) -> Var {
        let s = self.nodes[a.0].value.sum();
        let mut out = self.pool.take(1, 1);
        out[(0, 0)] = s;
        self.push(out, Op::Sum(a))
    }

    /// Mean of all elements, as a `1×1` node.
    pub fn mean(&mut self, a: Var) -> Var {
        let v = &self.nodes[a.0].value;
        let m = v.sum() / v.len() as f64;
        let mut out = self.pool.take(1, 1);
        out[(0, 0)] = m;
        self.push(out, Op::Mean(a))
    }

    /// Sums over rows: `m×n → 1×n`.
    pub fn sum_rows(&mut self, a: Var) -> Var {
        let (rows, cols) = self.shape(a);
        let mut out = self.pool.take(1, cols);
        let v = &self.nodes[a.0].value;
        for j in 0..cols {
            out[(0, j)] = (0..rows).map(|i| v[(i, j)]).sum();
        }
        self.push(out, Op::SumRows(a))
    }

    /// Sums over columns: `m×n → m×1`.
    pub fn sum_cols(&mut self, a: Var) -> Var {
        let (rows, cols) = self.shape(a);
        let mut out = self.pool.take(rows, 1);
        let v = &self.nodes[a.0].value;
        for i in 0..rows {
            out[(i, 0)] = (0..cols).map(|j| v[(i, j)]).sum();
        }
        self.push(out, Op::SumCols(a))
    }

    /// Selects the column range `start..start + len` of `a`.
    ///
    /// # Errors
    ///
    /// Returns [`AutodiffError::ShapeMismatch`] if the range exceeds the
    /// number of columns.
    pub fn slice_cols(&mut self, a: Var, start: usize, len: usize) -> Result<Var, AutodiffError> {
        let v = &self.nodes[a.0].value;
        let (rows, cols) = v.shape();
        if start + len > cols || len == 0 {
            return Err(AutodiffError::ShapeMismatch {
                op: "slice_cols",
                lhs: (rows, cols),
                rhs: (start, len),
            });
        }
        let mut out = self.pool.take(rows, len);
        let v = &self.nodes[a.0].value;
        for (out_row, v_row) in out
            .as_mut_slice()
            .chunks_exact_mut(len)
            .zip(v.as_slice().chunks_exact(cols))
        {
            out_row.copy_from_slice(&v_row[start..start + len]);
        }
        Ok(self.push(out, Op::SliceCols { parent: a, start }))
    }

    /// Concatenates nodes with equal row counts along columns.
    ///
    /// # Errors
    ///
    /// Returns [`AutodiffError::ShapeMismatch`] if `parts` is empty or the
    /// row counts differ.
    pub fn concat_cols(&mut self, parts: &[Var]) -> Result<Var, AutodiffError> {
        let first = parts.first().ok_or(AutodiffError::ShapeMismatch {
            op: "concat_cols",
            lhs: (0, 0),
            rhs: (0, 0),
        })?;
        let rows = self.shape(*first).0;
        let mut total_cols = 0;
        for p in parts {
            let (r, c) = self.shape(*p);
            if r != rows {
                return Err(AutodiffError::ShapeMismatch {
                    op: "concat_cols",
                    lhs: (rows, 0),
                    rhs: (r, c),
                });
            }
            total_cols += c;
        }
        let mut out = self.pool.take(rows, total_cols);
        let mut offset = 0;
        for p in parts {
            let v = &self.nodes[p.0].value;
            let (_, c) = v.shape();
            for (out_row, v_row) in out
                .as_mut_slice()
                .chunks_exact_mut(total_cols)
                .zip(v.as_slice().chunks_exact(c))
            {
                out_row[offset..offset + c].copy_from_slice(v_row);
            }
            offset += c;
        }
        Ok(self.push(out, Op::ConcatCols(parts.to_vec())))
    }

    /// Straight-through estimator: the node's forward value becomes
    /// `projected` (computed by the caller from [`Graph::value`] in any way,
    /// e.g. the printable-conductance projection of Sec. II-C), while the
    /// backward pass treats the op as the identity.
    ///
    /// # Errors
    ///
    /// Returns [`AutodiffError::ShapeMismatch`] if `projected` has a
    /// different shape than `a`.
    ///
    /// # Examples
    ///
    /// ```
    /// use pnc_autodiff::Graph;
    /// use pnc_linalg::Matrix;
    ///
    /// # fn main() -> Result<(), pnc_autodiff::AutodiffError> {
    /// let mut g = Graph::new();
    /// let x = g.leaf(Matrix::row_vector(&[0.4, -3.0]));
    /// let projected = g.value(x).map(|v| v.clamp(-1.0, 1.0));
    /// let y = g.ste(x, projected)?;
    /// let loss = g.sum(y);
    /// let grads = g.backward(loss)?;
    /// // Identity gradient despite the clamp in the forward pass.
    /// assert_eq!(grads.get(x).expect("grad")[(0, 1)], 1.0);
    /// # Ok(())
    /// # }
    /// ```
    pub fn ste(&mut self, a: Var, projected: Matrix) -> Result<Var, AutodiffError> {
        if projected.shape() != self.shape(a) {
            return Err(AutodiffError::ShapeMismatch {
                op: "ste",
                lhs: self.shape(a),
                rhs: projected.shape(),
            });
        }
        Ok(self.push(projected, Op::Ste(a)))
    }

    /// Clamps elementwise to `[lo, hi]` with a straight-through (identity)
    /// backward pass, as used for the feasible-range projections of Fig. 5.
    pub fn clamp_ste(&mut self, a: Var, lo: f64, hi: f64) -> Var {
        self.unary(a, |x| x.clamp(lo, hi), Op::Ste(a))
    }

    /// Softmax cross-entropy over logit rows, with integer class targets.
    /// Returns the mean loss as a `1×1` node.
    ///
    /// # Errors
    ///
    /// Returns [`AutodiffError::TargetLengthMismatch`] or
    /// [`AutodiffError::InvalidTarget`] on malformed targets.
    pub fn cross_entropy_logits(
        &mut self,
        scores: Var,
        targets: &[usize],
    ) -> Result<Var, AutodiffError> {
        let (batch, classes) = self.shape(scores);
        check_targets(batch, classes, targets)?;

        let mut grad = self.pool.take(batch, classes);
        let mut loss = 0.0;
        {
            let v = &self.nodes[scores.0].value;
            let mut exps = vec![0.0; classes];
            for i in 0..batch {
                // Stable softmax.
                let row_max = (0..classes)
                    .map(|j| v[(i, j)])
                    .fold(f64::NEG_INFINITY, f64::max);
                for (j, e) in exps.iter_mut().enumerate() {
                    *e = (v[(i, j)] - row_max).exp();
                }
                let denom: f64 = exps.iter().sum();
                let y = targets[i];
                loss += -(exps[y] / denom).ln();
                for j in 0..classes {
                    let p = exps[j] / denom;
                    grad[(i, j)] = (p - if j == y { 1.0 } else { 0.0 }) / batch as f64;
                }
            }
        }
        loss /= batch as f64;
        let mut out = self.pool.take(1, 1);
        out[(0, 0)] = loss;
        Ok(self.push(out, Op::FusedLoss { scores, grad }))
    }

    /// The pNN margin loss used throughout the printed-neuromorphic line of
    /// work: `mean_i max(0, margin − s_y + max_{j≠y} s_j)`, encouraging the
    /// true-class output voltage to exceed every other output by `margin`.
    /// Returns the mean loss as a `1×1` node.
    ///
    /// # Errors
    ///
    /// Returns [`AutodiffError::TargetLengthMismatch`] or
    /// [`AutodiffError::InvalidTarget`] on malformed targets.
    pub fn margin_loss(
        &mut self,
        scores: Var,
        targets: &[usize],
        margin: f64,
    ) -> Result<Var, AutodiffError> {
        let (batch, classes) = self.shape(scores);
        check_targets(batch, classes, targets)?;

        // Pooled buffers arrive zeroed, so the sparse writes below match the
        // old `Matrix::zeros` template exactly.
        let mut grad = self.pool.take(batch, classes);
        let mut loss = 0.0;
        {
            let v = &self.nodes[scores.0].value;
            for i in 0..batch {
                let y = targets[i];
                let (mut best_j, mut best) = (usize::MAX, f64::NEG_INFINITY);
                for j in 0..classes {
                    if j != y && v[(i, j)] > best {
                        best = v[(i, j)];
                        best_j = j;
                    }
                }
                if best_j == usize::MAX {
                    // Single-class degenerate case: loss is zero.
                    continue;
                }
                let violation = margin - v[(i, y)] + best;
                if violation > 0.0 {
                    loss += violation;
                    grad[(i, y)] -= 1.0 / batch as f64;
                    grad[(i, best_j)] += 1.0 / batch as f64;
                }
            }
        }
        loss /= batch as f64;
        let mut out = self.pool.take(1, 1);
        out[(0, 0)] = loss;
        Ok(self.push(out, Op::FusedLoss { scores, grad }))
    }

    /// Renders the tape as a Graphviz `dot` digraph for debugging: one box
    /// per node labeled with its index, op kind and shape, one edge per
    /// data dependency.
    ///
    /// # Examples
    ///
    /// ```
    /// use pnc_autodiff::Graph;
    /// use pnc_linalg::Matrix;
    ///
    /// let mut g = Graph::new();
    /// let x = g.leaf(Matrix::filled(1, 2, 1.0));
    /// let y = g.tanh(x);
    /// let _ = g.sum(y);
    /// let dot = g.to_dot();
    /// assert!(dot.contains("digraph tape"));
    /// assert!(dot.contains("Tanh"));
    /// ```
    pub fn to_dot(&self) -> String {
        use std::fmt::Write as _;
        let mut out =
            String::from("digraph tape {\n  rankdir=BT;\n  node [shape=box, fontsize=10];\n");
        for (id, node) in self.nodes.iter().enumerate() {
            let (r, c) = node.value.shape();
            let kind = match &node.op {
                Op::Leaf => "Leaf".to_string(),
                Op::Constant => "Const".to_string(),
                other => {
                    let dbg = format!("{other:?}");
                    dbg.split(['(', ' ', '{'])
                        .next()
                        .unwrap_or("Op")
                        .to_string()
                }
            };
            let _ = writeln!(out, "  n{id} [label=\"#{id} {kind}\\n{r}x{c}\"];");
            let parents: Vec<usize> = match &node.op {
                Op::Leaf | Op::Constant => vec![],
                Op::Add(a, b)
                | Op::Sub(a, b)
                | Op::Mul(a, b)
                | Op::Div(a, b)
                | Op::MatMul(a, b) => vec![a.0, b.0],
                Op::Neg(a)
                | Op::Abs(a)
                | Op::Tanh(a)
                | Op::Sigmoid(a)
                | Op::Exp(a)
                | Op::Ln(a)
                | Op::Relu(a)
                | Op::Scale(a, _)
                | Op::AddScalar(a)
                | Op::Powi(a, _)
                | Op::Sum(a)
                | Op::Mean(a)
                | Op::SumRows(a)
                | Op::SumCols(a)
                | Op::Ste(a) => vec![a.0],
                Op::SliceCols { parent, .. } => vec![parent.0],
                Op::ConcatCols(parts) => parts.iter().map(|p| p.0).collect(),
                Op::FusedLoss { scores, .. } => vec![scores.0],
            };
            for p in parents {
                let _ = writeln!(out, "  n{p} -> n{id};");
            }
        }
        out.push_str("}\n");
        out
    }

    /// Runs reverse-mode accumulation from the scalar node `loss`.
    ///
    /// Allocates a fresh [`GradStore`]; hot loops should hold a store across
    /// steps and call [`Graph::backward_into`] instead.
    ///
    /// # Errors
    ///
    /// Returns [`AutodiffError::NonScalarLoss`] if `loss` is not `1×1`.
    pub fn backward(&self, loss: Var) -> Result<GradStore, AutodiffError> {
        let mut store = GradStore::new();
        self.backward_into(loss, &mut store)?;
        Ok(store)
    }

    /// Runs reverse-mode accumulation from the scalar node `loss` with the
    /// pre-overhaul allocating implementation: a cloned gradient per visited
    /// node, a freshly allocated matrix per op rule, and materialized
    /// transposes with the naive [`Matrix::matmul_reference`] kernel.
    ///
    /// Kept — like [`Matrix::matmul_reference`] — as the independent
    /// reference the equivalence tests check [`Graph::backward_into`]
    /// against bitwise, and as the honest baseline the `kernels` bench
    /// times the buffer-reuse pass over. Not for hot loops.
    ///
    /// # Errors
    ///
    /// Returns [`AutodiffError::NonScalarLoss`] if `loss` is not `1×1`.
    pub fn backward_reference(&self, loss: Var) -> Result<GradStore, AutodiffError> {
        if self.shape(loss) != (1, 1) {
            return Err(AutodiffError::NonScalarLoss {
                shape: self.shape(loss),
            });
        }
        let mut store = GradStore::new();
        store.grads.resize(self.nodes.len(), None);
        store.grads[loss.0] = Some(Matrix::filled(1, 1, 1.0));

        for id in (0..=loss.0).rev() {
            let Some(grad) = store.grads[id].clone() else {
                continue;
            };
            let node = &self.nodes[id];
            match &node.op {
                Op::Leaf | Op::Constant => {}
                Op::Add(a, b) => {
                    store.accumulate_alloc(*a, reduce_to(&grad, self.shape(*a)))?;
                    store.accumulate_alloc(*b, reduce_to(&grad, self.shape(*b)))?;
                }
                Op::Sub(a, b) => {
                    store.accumulate_alloc(*a, reduce_to(&grad, self.shape(*a)))?;
                    store.accumulate_alloc(*b, reduce_to(&grad.scale(-1.0), self.shape(*b)))?;
                }
                Op::Mul(a, b) => {
                    let ga = broadcast_zip("mul_bw", &grad, self.value(*b), |g, y| g * y)?;
                    let gb = broadcast_zip("mul_bw", &grad, self.value(*a), |g, x| g * x)?;
                    store.accumulate_alloc(*a, reduce_to(&ga, self.shape(*a)))?;
                    store.accumulate_alloc(*b, reduce_to(&gb, self.shape(*b)))?;
                }
                Op::Div(a, b) => {
                    let ga = broadcast_zip("div_bw", &grad, self.value(*b), |g, y| g / y)?;
                    // g_b = −g·a/b²; fold a and b in two broadcast passes.
                    let a_over_b2 =
                        broadcast_zip("div_bw", self.value(*a), self.value(*b), |x, y| {
                            -x / (y * y)
                        })?;
                    let gb = broadcast_zip("div_bw", &grad, &a_over_b2, |g, q| g * q)?;
                    store.accumulate_alloc(*a, reduce_to(&ga, self.shape(*a)))?;
                    store.accumulate_alloc(*b, reduce_to(&gb, self.shape(*b)))?;
                }
                Op::MatMul(a, b) => {
                    let ga = grad
                        .matmul_reference(&self.value(*b).transpose())
                        .map_err(bw_err("matmul_bw"))?;
                    let gb = self
                        .value(*a)
                        .transpose()
                        .matmul_reference(&grad)
                        .map_err(bw_err("matmul_bw"))?;
                    store.accumulate_alloc(*a, ga)?;
                    store.accumulate_alloc(*b, gb)?;
                }
                Op::Neg(a) => store.accumulate_alloc(*a, grad.scale(-1.0))?,
                Op::Abs(a) => {
                    let x = self.value(*a);
                    let g = grad
                        .zip_with(x, "abs_bw", |g, x| g * sign(x))
                        .map_err(bw_err("elementwise_bw"))?;
                    store.accumulate_alloc(*a, g)?;
                }
                Op::Tanh(a) => {
                    let g = grad
                        .zip_with(&node.value, "tanh_bw", |g, t| g * (1.0 - t * t))
                        .map_err(bw_err("elementwise_bw"))?;
                    store.accumulate_alloc(*a, g)?;
                }
                Op::Sigmoid(a) => {
                    let g = grad
                        .zip_with(&node.value, "sigmoid_bw", |g, s| g * s * (1.0 - s))
                        .map_err(bw_err("elementwise_bw"))?;
                    store.accumulate_alloc(*a, g)?;
                }
                Op::Exp(a) => {
                    let g = grad
                        .zip_with(&node.value, "exp_bw", |g, e| g * e)
                        .map_err(bw_err("elementwise_bw"))?;
                    store.accumulate_alloc(*a, g)?;
                }
                Op::Ln(a) => {
                    let g = grad
                        .zip_with(self.value(*a), "ln_bw", |g, x| g / x)
                        .map_err(bw_err("elementwise_bw"))?;
                    store.accumulate_alloc(*a, g)?;
                }
                Op::Relu(a) => {
                    let g = grad
                        .zip_with(
                            self.value(*a),
                            "relu_bw",
                            |g, x| if x > 0.0 { g } else { 0.0 },
                        )
                        .map_err(bw_err("elementwise_bw"))?;
                    store.accumulate_alloc(*a, g)?;
                }
                Op::Scale(a, s) => store.accumulate_alloc(*a, grad.scale(*s))?,
                Op::AddScalar(a) => store.accumulate_alloc(*a, grad)?,
                Op::Powi(a, k) => {
                    let g = grad
                        .zip_with(self.value(*a), "powi_bw", |g, x| {
                            g * *k as f64 * x.powi(k - 1)
                        })
                        .map_err(bw_err("elementwise_bw"))?;
                    store.accumulate_alloc(*a, g)?;
                }
                Op::Sum(a) => {
                    let (r, c) = self.shape(*a);
                    store.accumulate_alloc(*a, Matrix::filled(r, c, grad[(0, 0)]))?;
                }
                Op::Mean(a) => {
                    let (r, c) = self.shape(*a);
                    store.accumulate_alloc(
                        *a,
                        Matrix::filled(r, c, grad[(0, 0)] / (r * c) as f64),
                    )?;
                }
                Op::SumRows(a) => {
                    let (r, c) = self.shape(*a);
                    store.accumulate_alloc(*a, Matrix::from_fn(r, c, |_, j| grad[(0, j)]))?;
                }
                Op::SumCols(a) => {
                    let (r, c) = self.shape(*a);
                    store.accumulate_alloc(*a, Matrix::from_fn(r, c, |i, _| grad[(i, 0)]))?;
                }
                Op::SliceCols { parent, start } => {
                    let (r, c) = self.shape(*parent);
                    let (_, w) = node.value.shape();
                    let mut g = Matrix::zeros(r, c);
                    for i in 0..r {
                        for j in 0..w {
                            g[(i, start + j)] = grad[(i, j)];
                        }
                    }
                    store.accumulate_alloc(*parent, g)?;
                }
                Op::ConcatCols(parts) => {
                    let mut offset = 0;
                    for p in parts {
                        let (r, c) = self.shape(*p);
                        let g = Matrix::from_fn(r, c, |i, j| grad[(i, offset + j)]);
                        store.accumulate_alloc(*p, g)?;
                        offset += c;
                    }
                }
                Op::Ste(a) => store.accumulate_alloc(*a, grad)?,
                Op::FusedLoss {
                    scores,
                    grad: template,
                } => {
                    store.accumulate_alloc(*scores, template.scale(grad[(0, 0)]))?;
                }
            }
        }
        Ok(store)
    }

    /// Runs reverse-mode accumulation from the scalar node `loss`, writing
    /// into the preallocated gradient buffers of `store`.
    ///
    /// The store is cleared first (its buffers are retained), gradients are
    /// accumulated in place, and every intermediate lives in the store's
    /// buffer pool — after a first warm-up pass, a shape-stable tape runs
    /// backward without touching the allocator. Results are bit-identical to
    /// the allocating [`Graph::backward`].
    ///
    /// # Errors
    ///
    /// Returns [`AutodiffError::NonScalarLoss`] if `loss` is not `1×1`.
    pub fn backward_into(&self, loss: Var, store: &mut GradStore) -> Result<(), AutodiffError> {
        if self.shape(loss) != (1, 1) {
            return Err(AutodiffError::NonScalarLoss {
                shape: self.shape(loss),
            });
        }
        store.reset_for(self.nodes.len());
        let mut seed = store.pool.take(1, 1);
        seed[(0, 0)] = 1.0;
        store.grads[loss.0] = Some(seed);

        for id in (0..=loss.0).rev() {
            // Take the node's gradient out of the arena for the duration of
            // the propagation (parents always have smaller indices, so the
            // slot cannot be touched), then put it back — no per-node clone.
            let Some(grad) = store.grads[id].take() else {
                continue;
            };
            let node = &self.nodes[id];
            match &node.op {
                Op::Leaf | Op::Constant => {}
                Op::Add(a, b) => {
                    self.flow(store, *a, &grad)?;
                    self.flow(store, *b, &grad)?;
                }
                Op::Sub(a, b) => {
                    self.flow(store, *a, &grad)?;
                    self.flow_scaled(store, *b, &grad, -1.0)?;
                }
                Op::Mul(a, b) => {
                    self.flow_zip(store, *a, &grad, self.value(*b), |g, y| g * y)?;
                    self.flow_zip(store, *b, &grad, self.value(*a), |g, x| g * x)?;
                }
                Op::Div(a, b) => {
                    self.flow_zip(store, *a, &grad, self.value(*b), |g, y| g / y)?;
                    // g_b = −g·a/b²; fold a and b in two broadcast passes.
                    let (qr, qc) = broadcast_shape(self.shape(*a), self.shape(*b)).ok_or(
                        AutodiffError::ShapeMismatch {
                            op: "div_bw",
                            lhs: self.shape(*a),
                            rhs: self.shape(*b),
                        },
                    )?;
                    let mut a_over_b2 = store.pool.take(qr, qc);
                    broadcast_fill(
                        self.value(*a),
                        self.value(*b),
                        |x, y| -x / (y * y),
                        &mut a_over_b2,
                    );
                    self.flow_zip(store, *b, &grad, &a_over_b2, |g, q| g * q)?;
                    store.pool.give(a_over_b2);
                }
                Op::MatMul(a, b) => {
                    // dL/dA = grad · Bᵀ and dL/dB = Aᵀ · grad, via the
                    // transpose-free kernels into pooled buffers.
                    let (ar, ac) = self.shape(*a);
                    let mut ga = store.pool.take(ar, ac);
                    grad.matmul_nt_into(self.value(*b), &mut ga)
                        .map_err(bw_err("matmul_bw"))?;
                    store.accumulate_owned(*a, ga)?;
                    let (br, bc) = self.shape(*b);
                    let mut gb = store.pool.take(br, bc);
                    self.value(*a)
                        .matmul_tn_into(&grad, &mut gb)
                        .map_err(bw_err("matmul_bw"))?;
                    store.accumulate_owned(*b, gb)?;
                }
                Op::Neg(a) => self.flow_scaled(store, *a, &grad, -1.0)?,
                Op::Abs(a) => {
                    self.elementwise_bw(store, *a, &grad, self.value(*a), |g, x| g * sign(x))?;
                }
                Op::Tanh(a) => {
                    self.elementwise_bw(store, *a, &grad, &node.value, |g, t| g * (1.0 - t * t))?;
                }
                Op::Sigmoid(a) => {
                    self.elementwise_bw(store, *a, &grad, &node.value, |g, s| g * s * (1.0 - s))?;
                }
                Op::Exp(a) => {
                    self.elementwise_bw(store, *a, &grad, &node.value, |g, e| g * e)?;
                }
                Op::Ln(a) => {
                    self.elementwise_bw(store, *a, &grad, self.value(*a), |g, x| g / x)?;
                }
                Op::Relu(a) => {
                    self.elementwise_bw(store, *a, &grad, self.value(*a), |g, x| {
                        if x > 0.0 {
                            g
                        } else {
                            0.0
                        }
                    })?;
                }
                Op::Scale(a, s) => self.flow_scaled(store, *a, &grad, *s)?,
                Op::AddScalar(a) => store.accumulate_ref(*a, &grad)?,
                Op::Powi(a, k) => {
                    self.elementwise_bw(store, *a, &grad, self.value(*a), |g, x| {
                        g * *k as f64 * x.powi(k - 1)
                    })?;
                }
                Op::Sum(a) => {
                    let (r, c) = self.shape(*a);
                    let mut g = store.pool.take(r, c);
                    g.as_mut_slice().fill(grad[(0, 0)]);
                    store.accumulate_owned(*a, g)?;
                }
                Op::Mean(a) => {
                    let (r, c) = self.shape(*a);
                    let mut g = store.pool.take(r, c);
                    g.as_mut_slice().fill(grad[(0, 0)] / (r * c) as f64);
                    store.accumulate_owned(*a, g)?;
                }
                Op::SumRows(a) => {
                    let (r, c) = self.shape(*a);
                    let mut g = store.pool.take(r, c);
                    for g_row in g.as_mut_slice().chunks_exact_mut(c) {
                        g_row.copy_from_slice(grad.as_slice());
                    }
                    store.accumulate_owned(*a, g)?;
                }
                Op::SumCols(a) => {
                    let (r, c) = self.shape(*a);
                    let mut g = store.pool.take(r, c);
                    for (g_row, &gv) in g.as_mut_slice().chunks_exact_mut(c).zip(grad.as_slice()) {
                        g_row.fill(gv);
                    }
                    store.accumulate_owned(*a, g)?;
                }
                Op::SliceCols { parent, start } => {
                    let (r, c) = self.shape(*parent);
                    let (_, w) = node.value.shape();
                    // Pooled buffers arrive zeroed, matching Matrix::zeros.
                    let mut g = store.pool.take(r, c);
                    for (g_row, grad_row) in g
                        .as_mut_slice()
                        .chunks_exact_mut(c)
                        .zip(grad.as_slice().chunks_exact(w))
                    {
                        g_row[*start..start + w].copy_from_slice(grad_row);
                    }
                    store.accumulate_owned(*parent, g)?;
                }
                Op::ConcatCols(parts) => {
                    let total = node.value.cols();
                    let mut offset = 0;
                    for p in parts {
                        let (r, c) = self.shape(*p);
                        let mut g = store.pool.take(r, c);
                        for (g_row, grad_row) in g
                            .as_mut_slice()
                            .chunks_exact_mut(c)
                            .zip(grad.as_slice().chunks_exact(total))
                        {
                            g_row.copy_from_slice(&grad_row[offset..offset + c]);
                        }
                        store.accumulate_owned(*p, g)?;
                        offset += c;
                    }
                }
                Op::Ste(a) => store.accumulate_ref(*a, &grad)?,
                Op::FusedLoss {
                    scores,
                    grad: template,
                } => {
                    self.flow_scaled(store, *scores, template, grad[(0, 0)])?;
                }
            }
            store.grads[id] = Some(grad);
        }
        Ok(())
    }

    /// Propagates `grad` unchanged to `v`, summing over broadcast dimensions
    /// when the shapes differ (same two-step order as the old `reduce_to` +
    /// accumulate path, so the bits match).
    fn flow(&self, store: &mut GradStore, v: Var, grad: &Matrix) -> Result<(), AutodiffError> {
        let target = self.shape(v);
        if grad.shape() == target {
            store.accumulate_ref(v, grad)
        } else {
            let mut red = store.pool.take(target.0, target.1);
            reduce_into(grad, &mut red);
            store.accumulate_owned(v, red)
        }
    }

    /// Propagates `grad * s` to `v` (with broadcast reduction), matching the
    /// old `grad.scale(s)` + `reduce_to` + accumulate path bit for bit.
    fn flow_scaled(
        &self,
        store: &mut GradStore,
        v: Var,
        grad: &Matrix,
        s: f64,
    ) -> Result<(), AutodiffError> {
        let (gr, gc) = grad.shape();
        let mut scaled = store.pool.take(gr, gc);
        for (o, &x) in scaled.as_mut_slice().iter_mut().zip(grad.as_slice()) {
            *o = x * s;
        }
        let target = self.shape(v);
        if scaled.shape() == target {
            store.accumulate_owned(v, scaled)
        } else {
            let mut red = store.pool.take(target.0, target.1);
            reduce_into(&scaled, &mut red);
            store.pool.give(scaled);
            store.accumulate_owned(v, red)
        }
    }

    /// Propagates a broadcast-zip of `grad` and `other` to `v` (with
    /// broadcast reduction), matching the old `broadcast_zip` + `reduce_to`
    /// + accumulate path bit for bit.
    fn flow_zip(
        &self,
        store: &mut GradStore,
        v: Var,
        grad: &Matrix,
        other: &Matrix,
        f: impl Fn(f64, f64) -> f64,
    ) -> Result<(), AutodiffError> {
        let shape =
            broadcast_shape(grad.shape(), other.shape()).ok_or(AutodiffError::ShapeMismatch {
                op: "zip_bw",
                lhs: grad.shape(),
                rhs: other.shape(),
            })?;
        let mut g = store.pool.take(shape.0, shape.1);
        broadcast_fill(grad, other, f, &mut g);
        let target = self.shape(v);
        if g.shape() == target {
            store.accumulate_owned(v, g)
        } else {
            let mut red = store.pool.take(target.0, target.1);
            reduce_into(&g, &mut red);
            store.pool.give(g);
            store.accumulate_owned(v, red)
        }
    }

    /// Propagates an equal-shaped elementwise gradient `f(grad, x)` to `v`,
    /// matching the old `grad.zip_with(x, ..)` + accumulate path bit for
    /// bit.
    fn elementwise_bw(
        &self,
        store: &mut GradStore,
        v: Var,
        grad: &Matrix,
        x: &Matrix,
        f: impl Fn(f64, f64) -> f64,
    ) -> Result<(), AutodiffError> {
        let (r, c) = grad.shape();
        let mut g = store.pool.take(r, c);
        grad.zip_with_into(x, "elementwise_bw", &f, &mut g)
            .map_err(bw_err("elementwise_bw"))?;
        store.accumulate_owned(v, g)
    }
}

fn sign(x: f64) -> f64 {
    if x > 0.0 {
        1.0
    } else if x < 0.0 {
        -1.0
    } else {
        0.0
    }
}

fn check_targets(batch: usize, classes: usize, targets: &[usize]) -> Result<(), AutodiffError> {
    if targets.len() != batch {
        return Err(AutodiffError::TargetLengthMismatch {
            batch,
            targets: targets.len(),
        });
    }
    if let Some(&bad) = targets.iter().find(|&&t| t >= classes) {
        return Err(AutodiffError::InvalidTarget {
            class: bad,
            num_classes: classes,
        });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m(rows: &[&[f64]]) -> Matrix {
        Matrix::from_rows(rows).unwrap()
    }

    #[test]
    fn add_and_sub_gradients() {
        let mut g = Graph::new();
        let a = g.leaf(m(&[&[1.0, 2.0]]));
        let b = g.leaf(m(&[&[3.0, 4.0]]));
        let s = g.sub(a, b).unwrap();
        let t = g.add(s, a).unwrap();
        let loss = g.sum(t);
        let grads = g.backward(loss).unwrap();
        assert_eq!(grads.get(a).unwrap().as_slice(), &[2.0, 2.0]);
        assert_eq!(grads.get(b).unwrap().as_slice(), &[-1.0, -1.0]);
    }

    #[test]
    fn mul_gradient_is_other_operand() {
        let mut g = Graph::new();
        let a = g.leaf(m(&[&[2.0, 3.0]]));
        let b = g.leaf(m(&[&[5.0, 7.0]]));
        let p = g.mul(a, b).unwrap();
        let loss = g.sum(p);
        let grads = g.backward(loss).unwrap();
        assert_eq!(grads.get(a).unwrap().as_slice(), &[5.0, 7.0]);
        assert_eq!(grads.get(b).unwrap().as_slice(), &[2.0, 3.0]);
    }

    #[test]
    fn div_gradients() {
        let mut g = Graph::new();
        let a = g.leaf(m(&[&[6.0]]));
        let b = g.leaf(m(&[&[3.0]]));
        let q = g.div(a, b).unwrap();
        let grads = g.backward(q).unwrap();
        assert!((grads.get(a).unwrap()[(0, 0)] - 1.0 / 3.0).abs() < 1e-12);
        assert!((grads.get(b).unwrap()[(0, 0)] + 6.0 / 9.0).abs() < 1e-12);
    }

    #[test]
    fn scalar_broadcast_reduces_gradient() {
        let mut g = Graph::new();
        let s = g.leaf(m(&[&[2.0]]));
        let x = g.constant(m(&[&[1.0, 2.0], &[3.0, 4.0]]));
        let y = g.mul(s, x).unwrap();
        assert_eq!(g.shape(y), (2, 2));
        let loss = g.sum(y);
        let grads = g.backward(loss).unwrap();
        assert_eq!(grads.get(s).unwrap()[(0, 0)], 10.0);
    }

    #[test]
    fn row_vector_broadcast() {
        let mut g = Graph::new();
        let row = g.leaf(m(&[&[1.0, 2.0]]));
        let x = g.constant(m(&[&[1.0, 1.0], &[1.0, 1.0], &[1.0, 1.0]]));
        let y = g.div(x, row).unwrap();
        let loss = g.sum(y);
        let grads = g.backward(loss).unwrap();
        // d/d row_j of sum_i x_ij/row_j = −3/row_j².
        assert!((grads.get(row).unwrap()[(0, 0)] + 3.0).abs() < 1e-12);
        assert!((grads.get(row).unwrap()[(0, 1)] + 0.75).abs() < 1e-12);
    }

    #[test]
    fn column_vector_broadcast() {
        let mut g = Graph::new();
        let col = g.leaf(m(&[&[1.0], &[2.0]]));
        let x = g.constant(m(&[&[1.0, 2.0], &[3.0, 4.0]]));
        let y = g.add(x, col).unwrap();
        let loss = g.sum(y);
        let grads = g.backward(loss).unwrap();
        assert_eq!(grads.get(col).unwrap().as_slice(), &[2.0, 2.0]);
    }

    #[test]
    fn incompatible_shapes_error() {
        let mut g = Graph::new();
        let a = g.leaf(Matrix::zeros(2, 3));
        let b = g.leaf(Matrix::zeros(3, 2));
        assert!(matches!(
            g.add(a, b),
            Err(AutodiffError::ShapeMismatch { .. })
        ));
    }

    #[test]
    fn matmul_gradients() {
        let mut g = Graph::new();
        let a = g.leaf(m(&[&[1.0, 2.0], &[3.0, 4.0]]));
        let b = g.leaf(m(&[&[5.0], &[6.0]]));
        let y = g.matmul(a, b).unwrap();
        let loss = g.sum(y);
        let grads = g.backward(loss).unwrap();
        // dL/dA = 1·Bᵀ (broadcast over rows), dL/dB = Aᵀ·1.
        assert_eq!(grads.get(a).unwrap().as_slice(), &[5.0, 6.0, 5.0, 6.0]);
        assert_eq!(grads.get(b).unwrap().as_slice(), &[4.0, 6.0]);
    }

    #[test]
    fn chain_of_unaries() {
        let mut g = Graph::new();
        let x = g.leaf(m(&[&[0.3]]));
        let t = g.tanh(x);
        let s = g.sigmoid(t);
        let e = g.exp(s);
        let loss = g.sum(e);
        let grads = g.backward(loss).unwrap();

        // Analytic chain.
        let xv = 0.3f64;
        let tv = xv.tanh();
        let sv = 1.0 / (1.0 + (-tv).exp());
        let expected = sv.exp() * sv * (1.0 - sv) * (1.0 - tv * tv);
        assert!((grads.get(x).unwrap()[(0, 0)] - expected).abs() < 1e-12);
    }

    #[test]
    fn abs_subgradient() {
        let mut g = Graph::new();
        let x = g.leaf(m(&[&[-2.0, 0.0, 3.0]]));
        let a = g.abs(x);
        let loss = g.sum(a);
        let grads = g.backward(loss).unwrap();
        assert_eq!(grads.get(x).unwrap().as_slice(), &[-1.0, 0.0, 1.0]);
    }

    #[test]
    fn relu_gates_gradient() {
        let mut g = Graph::new();
        let x = g.leaf(m(&[&[-1.0, 2.0]]));
        let r = g.relu(x);
        let loss = g.sum(r);
        let grads = g.backward(loss).unwrap();
        assert_eq!(grads.get(x).unwrap().as_slice(), &[0.0, 1.0]);
    }

    #[test]
    fn ln_and_powi() {
        let mut g = Graph::new();
        let x = g.leaf(m(&[&[2.0]]));
        let p = g.powi(x, 3);
        let l = g.ln(p);
        let grads = g.backward(l).unwrap();
        // d ln(x³)/dx = 3/x.
        assert!((grads.get(x).unwrap()[(0, 0)] - 1.5).abs() < 1e-12);
    }

    #[test]
    fn mean_divides_gradient() {
        let mut g = Graph::new();
        let x = g.leaf(Matrix::filled(2, 2, 1.0));
        let loss = g.mean(x);
        let grads = g.backward(loss).unwrap();
        assert_eq!(grads.get(x).unwrap().as_slice(), &[0.25; 4]);
    }

    #[test]
    fn sum_rows_and_cols() {
        let mut g = Graph::new();
        let x = g.leaf(m(&[&[1.0, 2.0], &[3.0, 4.0]]));
        let r = g.sum_rows(x);
        assert_eq!(g.value(r).as_slice(), &[4.0, 6.0]);
        let c = g.sum_cols(x);
        assert_eq!(g.value(c).as_slice(), &[3.0, 7.0]);
        let s1 = g.sum(r);
        let grads = g.backward(s1).unwrap();
        assert_eq!(grads.get(x).unwrap().as_slice(), &[1.0; 4]);
    }

    #[test]
    fn slice_and_concat_round_trip() {
        let mut g = Graph::new();
        let x = g.leaf(m(&[&[1.0, 2.0, 3.0, 4.0]]));
        let a = g.slice_cols(x, 0, 2).unwrap();
        let b = g.slice_cols(x, 2, 2).unwrap();
        let back = g.concat_cols(&[b, a]).unwrap();
        assert_eq!(g.value(back).as_slice(), &[3.0, 4.0, 1.0, 2.0]);
        let doubled = g.scale(back, 2.0);
        let loss = g.sum(doubled);
        let grads = g.backward(loss).unwrap();
        assert_eq!(grads.get(x).unwrap().as_slice(), &[2.0; 4]);
    }

    #[test]
    fn slice_out_of_range_errors() {
        let mut g = Graph::new();
        let x = g.leaf(Matrix::zeros(1, 3));
        assert!(g.slice_cols(x, 2, 2).is_err());
        assert!(g.slice_cols(x, 0, 0).is_err());
    }

    #[test]
    fn concat_requires_matching_rows() {
        let mut g = Graph::new();
        let a = g.leaf(Matrix::zeros(1, 2));
        let b = g.leaf(Matrix::zeros(2, 2));
        assert!(g.concat_cols(&[a, b]).is_err());
        assert!(g.concat_cols(&[]).is_err());
    }

    #[test]
    fn ste_passes_gradient_through_projection() {
        let mut g = Graph::new();
        let x = g.leaf(m(&[&[5.0, -5.0]]));
        let y = g.clamp_ste(x, -1.0, 1.0);
        assert_eq!(g.value(y).as_slice(), &[1.0, -1.0]);
        let loss = g.sum(y);
        let grads = g.backward(loss).unwrap();
        assert_eq!(grads.get(x).unwrap().as_slice(), &[1.0, 1.0]);
    }

    #[test]
    fn ste_shape_checked() {
        let mut g = Graph::new();
        let x = g.leaf(Matrix::zeros(1, 2));
        assert!(g.ste(x, Matrix::zeros(2, 1)).is_err());
    }

    #[test]
    fn backward_rejects_nonscalar() {
        let mut g = Graph::new();
        let x = g.leaf(Matrix::zeros(2, 2));
        assert!(matches!(
            g.backward(x),
            Err(AutodiffError::NonScalarLoss { .. })
        ));
    }

    #[test]
    fn cross_entropy_matches_manual() {
        let mut g = Graph::new();
        let scores = g.leaf(m(&[&[2.0, 1.0, 0.0], &[0.0, 0.0, 0.0]]));
        let loss = g.cross_entropy_logits(scores, &[0, 2]).unwrap();

        // Manual: row 0 softmax of [2,1,0], loss −ln p0; row 1 uniform.
        let exps = [2.0f64.exp(), 1.0f64.exp(), 1.0];
        let denom: f64 = exps.iter().sum();
        let expected = (-(exps[0] / denom).ln() + -(1.0f64 / 3.0).ln()) / 2.0;
        assert!((g.value(loss)[(0, 0)] - expected).abs() < 1e-12);

        let grads = g.backward(loss).unwrap();
        let gs = grads.get(scores).unwrap();
        // Row 1: (1/3 − onehot₂)/2.
        assert!((gs[(1, 2)] - (1.0 / 3.0 - 1.0) / 2.0).abs() < 1e-12);
        assert!((gs[(1, 0)] - (1.0 / 3.0) / 2.0).abs() < 1e-12);
        // Gradients of each row sum to zero.
        assert!((gs[(0, 0)] + gs[(0, 1)] + gs[(0, 2)]).abs() < 1e-12);
    }

    #[test]
    fn cross_entropy_validates_targets() {
        let mut g = Graph::new();
        let scores = g.leaf(Matrix::zeros(2, 3));
        assert!(matches!(
            g.cross_entropy_logits(scores, &[0]),
            Err(AutodiffError::TargetLengthMismatch { .. })
        ));
        assert!(matches!(
            g.cross_entropy_logits(scores, &[0, 3]),
            Err(AutodiffError::InvalidTarget { .. })
        ));
    }

    #[test]
    fn margin_loss_zero_when_separated() {
        let mut g = Graph::new();
        let scores = g.leaf(m(&[&[1.0, 0.0], &[0.0, 1.0]]));
        let loss = g.margin_loss(scores, &[0, 1], 0.3).unwrap();
        assert_eq!(g.value(loss)[(0, 0)], 0.0);
        let grads = g.backward(loss).unwrap();
        assert_eq!(grads.get(scores).unwrap().norm(), 0.0);
    }

    #[test]
    fn margin_loss_penalizes_violations() {
        let mut g = Graph::new();
        let scores = g.leaf(m(&[&[0.5, 0.6]]));
        let loss = g.margin_loss(scores, &[0], 0.3).unwrap();
        // violation = 0.3 − 0.5 + 0.6 = 0.4
        assert!((g.value(loss)[(0, 0)] - 0.4).abs() < 1e-12);
        let grads = g.backward(loss).unwrap();
        let gs = grads.get(scores).unwrap();
        assert_eq!(gs[(0, 0)], -1.0);
        assert_eq!(gs[(0, 1)], 1.0);
    }

    #[test]
    fn gradient_accumulates_over_shared_subexpression() {
        let mut g = Graph::new();
        let x = g.leaf(m(&[&[3.0]]));
        let sq = g.mul(x, x).unwrap();
        let y = g.add(sq, x).unwrap(); // x² + x
        let grads = g.backward(y).unwrap();
        assert!((grads.get(x).unwrap()[(0, 0)] - 7.0).abs() < 1e-12); // 2x+1
    }

    #[test]
    fn constants_do_not_stop_flow_but_get_grads_too() {
        let mut g = Graph::new();
        let x = g.leaf(m(&[&[2.0]]));
        let c = g.scalar(10.0);
        let y = g.mul(x, c).unwrap();
        let grads = g.backward(y).unwrap();
        assert_eq!(grads.get(x).unwrap()[(0, 0)], 10.0);
        // Constants receive gradients (harmless); leaves are what optimizers
        // read.
        assert_eq!(grads.get(c).unwrap()[(0, 0)], 2.0);
    }

    /// Builds a tape exercising every op family (matmul, broadcasts,
    /// elementwise, reductions, slicing, STE, fused loss) and returns the
    /// loss node plus the two leaves.
    fn build_mixed_tape(g: &mut Graph, seed: f64) -> (Var, Var, Var) {
        let w = g.leaf(m(&[&[0.3 + seed, -0.7], &[1.1, 0.4 - seed]]));
        let x = g.leaf(m(&[&[1.0, 2.0], &[-0.5, 0.25 + seed], &[3.0, -1.5]]));
        let bias = g.constant(m(&[&[0.1, -0.2]]));
        let z = g.matmul(x, w).unwrap();
        let z = g.add(z, bias).unwrap();
        let t = g.tanh(z);
        let s = g.sigmoid(z);
        let mix = g.mul(t, s).unwrap();
        let denom = g.add_scalar(s, 2.0);
        let ratio = g.div(mix, denom).unwrap();
        let col = g.slice_cols(ratio, 0, 1).unwrap();
        let rest = g.slice_cols(ratio, 1, 1).unwrap();
        let glued = g.concat_cols(&[rest, col]).unwrap();
        let proj = g.clamp_ste(glued, -0.8, 0.8);
        let powed = g.powi(proj, 2);
        let ab = g.abs(mix);
        let expd = g.exp(col);
        let lnterm = g.ln(denom);
        let relud = g.relu(z);
        let sum1 = g.add(powed, ab).unwrap();
        let rows = g.sum_rows(sum1);
        let cols = g.sum_cols(expd);
        let rsum = g.sum(rows);
        let csum = g.sum(cols);
        let lmean = g.mean(lnterm);
        let rmean = g.mean(relud);
        let ce = g.cross_entropy_logits(z, &[0, 1, 0]).unwrap();
        let ml = g.margin_loss(z, &[1, 0, 1], 0.25).unwrap();
        let mut loss = g.add(rsum, csum).unwrap();
        loss = g.add(loss, lmean).unwrap();
        loss = g.add(loss, rmean).unwrap();
        loss = g.add(loss, ce).unwrap();
        loss = g.add(loss, ml).unwrap();
        let loss = g.scale(loss, 0.5);
        (loss, w, x)
    }

    #[test]
    fn backward_into_matches_backward_bitwise() {
        let mut fresh = Graph::new();
        let (loss_f, w_f, x_f) = build_mixed_tape(&mut fresh, 0.0);
        let reference = fresh.backward_reference(loss_f).unwrap();

        let mut g = Graph::new();
        let (loss, w, x) = build_mixed_tape(&mut g, 0.0);
        let mut store = GradStore::new();
        g.backward_into(loss, &mut store).unwrap();
        assert_eq!(store.get(w), reference.get(w_f));
        assert_eq!(store.get(x), reference.get(x_f));
        assert_eq!(store.get(loss), reference.get(loss_f));

        // The convenience wrapper must agree with both.
        let wrapped = g.backward(loss).unwrap();
        assert_eq!(wrapped.get(w), reference.get(w_f));
        assert_eq!(wrapped.get(x), reference.get(x_f));
    }

    #[test]
    fn reset_reuse_cycles_stay_bit_identical() {
        // One graph + one store reused across draws must reproduce the bits
        // of a fresh graph + allocating backward for each draw.
        let mut g = Graph::new();
        let mut store = GradStore::new();
        for cycle in 0..4 {
            let seed = 0.05 * cycle as f64;
            let mut fresh = Graph::new();
            let (loss_f, w_f, x_f) = build_mixed_tape(&mut fresh, seed);
            let reference = fresh.backward_reference(loss_f).unwrap();

            g.reset();
            let (loss, w, x) = build_mixed_tape(&mut g, seed);
            assert_eq!(g.value(loss), fresh.value(loss_f));
            g.backward_into(loss, &mut store).unwrap();
            assert_eq!(store.get(w), reference.get(w_f));
            assert_eq!(store.get(x), reference.get(x_f));
        }
    }
}
