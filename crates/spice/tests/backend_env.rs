//! The `PNC_SPICE_BACKEND` environment path of [`SolverBackend`].
//!
//! Kept in its own integration-test binary because it mutates process
//! environment — no other test shares this process, so there is no race
//! with parallel test threads reading the variable (the same isolation
//! pattern as `pnc-core`'s `precision_env` test).

use pnc_spice::{Circuit, DcSolver, SolverBackend, SpiceError, BACKEND_ENV_VAR, GROUND};

#[test]
fn env_override_selects_backends_and_hard_errors_on_typos() {
    std::env::remove_var(BACKEND_ENV_VAR);
    assert_eq!(
        SolverBackend::from_env().expect("unset is the dense default"),
        SolverBackend::DenseLu
    );

    for (value, expected) in [
        ("dense-lu", SolverBackend::DenseLu),
        (" Sparse-LU ", SolverBackend::SparseLu),
        ("coord_descent", SolverBackend::CoordDescent),
    ] {
        std::env::set_var(BACKEND_ENV_VAR, value);
        assert_eq!(
            SolverBackend::from_env().expect("valid spelling"),
            expected,
            "{value:?}"
        );
    }

    // The env-selected backend actually drives solves: a voltage source
    // floating between two non-ground nodes is solvable by the LU backends
    // but rejected by coordinate descent, so the typed rejection proves the
    // dispatch happened.
    let mut floating = Circuit::new();
    let a = floating.new_node();
    let b = floating.new_node();
    floating.vsource(a, b, 0.5).expect("valid");
    floating.resistor(a, GROUND, 1_000.0).expect("valid");
    floating.resistor(b, GROUND, 1_000.0).expect("valid");

    std::env::set_var(BACKEND_ENV_VAR, "coord-descent");
    let err = DcSolver::new().solve(&floating);
    assert!(
        matches!(
            err,
            Err(SpiceError::UnsupportedTopology { backend, .. }) if backend == "coord-descent"
        ),
        "env-selected coord-descent must reject the floating source: {err:?}"
    );
    std::env::set_var(BACKEND_ENV_VAR, "sparse-lu");
    DcSolver::new()
        .solve(&floating)
        .expect("sparse-lu handles floating sources");

    // A solver pinned in code ignores the environment entirely.
    std::env::set_var(BACKEND_ENV_VAR, "coord-descent");
    DcSolver::with_backend(SolverBackend::DenseLu)
        .solve(&floating)
        .expect("pinned backend must ignore the env override");

    // The hardened path: an operator typo must be a typed error naming the
    // variable, never a silent fallback to some other solver.
    for bad in ["newton", "dense", "sparse", ""] {
        std::env::set_var(BACKEND_ENV_VAR, bad);
        match SolverBackend::from_env() {
            Err(SpiceError::Config { detail }) => {
                assert!(
                    detail.contains(BACKEND_ENV_VAR) && detail.contains(bad),
                    "error must name the variable and the bad value: {detail}"
                );
            }
            other => panic!("{bad:?} must fail from_env, got {other:?}"),
        }
        // The same hard error surfaces from an actual solve, before any
        // numeric work.
        let mut ckt = Circuit::new();
        let n = ckt.new_node();
        ckt.resistor(n, GROUND, 1_000.0).expect("valid");
        match DcSolver::new().solve(&ckt) {
            Err(SpiceError::Config { detail }) => {
                assert!(detail.contains(BACKEND_ENV_VAR), "{detail}");
            }
            other => panic!("solve with {bad:?} must fail, got {other:?}"),
        }
    }

    std::env::remove_var(BACKEND_ENV_VAR);
}
