//! Integration checks of the convergence-recovery ladder: under deterministic
//! fault injection, plain damped Newton must fail on the targeted sweep
//! points, while the same solver with the default [`RecoveryPolicy`] rescues
//! every Tab. I circuit and reproduces the clean solver's curve.

use pnc_spice::circuits::{NonlinearCircuitParams, PtanhCircuit};
use pnc_spice::sweep::linspace;
use pnc_spice::{DcSolver, FaultInjection, RecoveryPolicy, RecoveryRung, SpiceError};
use proptest::prelude::*;

/// The fault-injection trigger: a sweep grid value that is neither 0 nor the
/// 1.0 V supply (which is itself a voltage source).
const TRIGGER: f64 = 0.5;

fn plain_solver_with_fault() -> DcSolver {
    DcSolver {
        recovery: RecoveryPolicy::disabled(),
        fault_injection: Some(FaultInjection::recoverable_at(vec![TRIGGER])),
        ..DcSolver::new()
    }
}

fn ladder_solver_with_fault() -> DcSolver {
    DcSolver {
        fault_injection: Some(FaultInjection::recoverable_at(vec![TRIGGER])),
        ..DcSolver::new()
    }
}

/// Tab. I corner values of ω = [R1, R2, R3, R4, R5, W, L].
const LO: [f64; 7] = [10.0, 5.0, 10e3, 8e3, 10e3, 200e-6, 10e-6];
const HI: [f64; 7] = [500.0, 250.0, 500e3, 400e3, 500e3, 800e-6, 70e-6];

/// All feasible corners of the Tab. I box (the divider constraints
/// `r2 < r1`, `r4 < r3` rule some out).
fn feasible_corners() -> Vec<NonlinearCircuitParams> {
    (0..128u32)
        .filter_map(|mask| {
            let mut omega = [0.0; 7];
            for (k, slot) in omega.iter_mut().enumerate() {
                *slot = if mask & (1 << k) == 0 { LO[k] } else { HI[k] };
            }
            let params = NonlinearCircuitParams::from_array(omega);
            params.validate().is_ok().then_some(params)
        })
        .collect()
}

#[test]
fn every_feasible_corner_fails_plain_and_is_rescued_by_the_ladder() {
    let corners = feasible_corners();
    assert!(corners.len() >= 64, "expected most corners feasible");
    let grid = linspace(0.0, 1.0, 21);

    for params in &corners {
        // Clean reference curve.
        let mut clean = PtanhCircuit::build(params).expect("corner builds");
        let reference = clean.transfer_curve(&grid).expect("clean sweep converges");

        // Plain Newton under injection fails at the triggered sweep point.
        let mut faulted = PtanhCircuit::build(params).expect("corner builds");
        faulted.set_solver(plain_solver_with_fault());
        match faulted.transfer_curve(&grid) {
            Err(SpiceError::NoConvergence { .. }) => {}
            other => panic!("plain Newton should fail under injection, got {other:?}"),
        }

        // The same circuit with the default ladder solves every point and
        // matches the clean curve.
        let mut rescued = PtanhCircuit::build(params).expect("corner builds");
        rescued.set_solver(ladder_solver_with_fault());
        let curve = rescued.transfer_curve(&grid).expect("ladder rescues");
        for ((v_ref, out_ref), (v_resc, out_resc)) in reference.iter().zip(&curve) {
            assert_eq!(v_ref, v_resc);
            assert!(
                (out_ref - out_resc).abs() < 1e-6,
                "corner {params:?} at Vin {v_ref}: clean {out_ref} vs rescued {out_resc}"
            );
        }
    }
}

#[test]
fn rescued_solve_reports_the_rung_used() {
    // An EGT inverter biased at the trigger voltage: the diagnostics must
    // show the gmin rung (plain and perturbed restarts are forced to fail)
    // and the operating point must match the clean solver's.
    use pnc_spice::{Circuit, EgtModel, GROUND};
    let mut c = Circuit::new();
    let supply = c.new_node();
    let input = c.new_node();
    let out = c.new_node();
    c.vsource(supply, GROUND, 1.0).unwrap();
    c.vsource(input, GROUND, TRIGGER).unwrap();
    c.resistor(supply, out, 200_000.0).unwrap();
    c.egt(out, input, GROUND, EgtModel::printed(600e-6, 20e-6))
        .unwrap();

    let clean = DcSolver::new().solve(&c).unwrap();
    assert_eq!(clean.diagnostics().rung, RecoveryRung::Plain);

    let rescued = ladder_solver_with_fault().solve(&c).unwrap();
    let d = rescued.diagnostics();
    assert_eq!(d.rung, RecoveryRung::GminStepping);
    assert!(d.recovered());
    assert!(d.residual.is_finite());
    assert!((rescued.voltage(out) - clean.voltage(out)).abs() < 1e-8);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Anywhere in the Tab. I box (not just corners): plain Newton under
    /// injection fails, the default ladder rescues, and the rescued curve
    /// matches the clean one.
    #[test]
    fn ladder_rescues_random_tab1_circuits(
        u in proptest::collection::vec(0.0..1.0f64, 7),
    ) {
        let raw: Vec<f64> = (0..7).map(|k| LO[k] + u[k] * (HI[k] - LO[k])).collect();
        let params = NonlinearCircuitParams {
            r1: raw[0],
            r2: raw[1].min(raw[0] * 0.999),
            r3: raw[2],
            r4: raw[3].min(raw[2] * 0.999),
            r5: raw[4],
            w: raw[5],
            l: raw[6],
        };
        prop_assume!(params.validate().is_ok());
        let grid = linspace(0.0, 1.0, 11);

        let mut clean = PtanhCircuit::build(&params).expect("builds");
        let reference = clean.transfer_curve(&grid).expect("clean sweep");

        let mut faulted = PtanhCircuit::build(&params).expect("builds");
        faulted.set_solver(plain_solver_with_fault());
        prop_assert!(faulted.transfer_curve(&grid).is_err());

        let mut rescued = PtanhCircuit::build(&params).expect("builds");
        rescued.set_solver(ladder_solver_with_fault());
        let curve = rescued.transfer_curve(&grid).expect("ladder rescues");
        for ((_, out_ref), (_, out_resc)) in reference.iter().zip(&curve) {
            prop_assert!((out_ref - out_resc).abs() < 1e-6);
        }
    }
}
