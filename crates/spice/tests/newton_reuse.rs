//! Jacobian-reuse (modified-Newton) solver contract on the paper's Fig. 3
//! nonlinear circuits: same accepted solutions as full-refactor Newton —
//! every point within the solver's residual bound — while factoring the
//! Jacobian strictly less than once per iteration across a warm-started
//! transfer-curve sweep.

use pnc_spice::circuits::{NonlinearCircuitParams, PtanhCircuit};
use pnc_spice::sweep::linspace;
use pnc_spice::{DcSolver, NewtonCache, RecoveryRung};

fn fig3_circuit(reuse: bool) -> PtanhCircuit {
    let mut ckt = PtanhCircuit::build(&NonlinearCircuitParams::nominal()).unwrap();
    ckt.set_solver(DcSolver {
        newton_reuse: reuse,
        ..DcSolver::new()
    });
    ckt
}

#[test]
fn reuse_sweep_matches_full_refactor_sweep_within_residual_bound() {
    let grid = linspace(0.0, 1.0, 81);
    let full = fig3_circuit(false).transfer_curve_solutions(&grid).unwrap();
    let reused = fig3_circuit(true).transfer_curve_solutions(&grid).unwrap();
    let tol = DcSolver::new().residual_tolerance;
    for (i, (a, b)) in full.iter().zip(&reused).enumerate() {
        // Both paths must satisfy the identical acceptance criterion...
        assert!(a.diagnostics().residual < tol, "full residual at point {i}");
        assert!(
            b.diagnostics().residual < tol,
            "reuse residual at point {i}"
        );
        // ...and land on the same operating point (two Newton solutions of
        // the same monotone circuit within the same residual bound).
        for (va, vb) in a.voltages().iter().zip(b.voltages()) {
            assert!((va - vb).abs() < 1e-6, "point {i}: full {va} vs reuse {vb}");
        }
    }
}

#[test]
fn reuse_sweep_factors_less_than_once_per_iteration() {
    let grid = linspace(0.0, 1.0, 81);
    let sols = fig3_circuit(true).transfer_curve_solutions(&grid).unwrap();
    let iterations: usize = sols.iter().map(|s| s.diagnostics().iterations).sum();
    let factorizations: usize = sols.iter().map(|s| s.diagnostics().factorizations).sum();
    assert!(
        sols.iter()
            .all(|s| s.diagnostics().rung == RecoveryRung::Plain),
        "the nominal Fig. 3 sweep must not need recovery"
    );
    assert!(factorizations > 0, "a cold sweep must factor at least once");
    assert!(
        iterations > factorizations,
        "Jacobian reuse must average more than one iteration per \
         factorization: {iterations} iterations / {factorizations} factorizations"
    );
}

#[test]
fn full_newton_factors_exactly_once_per_iteration() {
    let grid = linspace(0.0, 1.0, 31);
    let sols = fig3_circuit(false).transfer_curve_solutions(&grid).unwrap();
    for (i, s) in sols.iter().enumerate() {
        let d = s.diagnostics();
        assert_eq!(
            d.iterations, d.factorizations,
            "classic path at point {i} must factor every iteration"
        );
    }
}

#[test]
fn cache_is_ignored_when_reuse_is_disabled() {
    // With reuse disabled, solve_with_cache must run the classic path
    // bitwise-identically to solve_with_guess and leave the cache cold.
    let ckt = fig3_circuit(false);
    let solver = ckt.solver().clone();
    let mut cache = NewtonCache::new();
    let mut guess: Option<Vec<f64>> = None;
    let plain = solver
        .solve_with_guess(ckt.circuit(), guess.as_deref())
        .unwrap();
    let cached = solver
        .solve_with_cache(ckt.circuit(), guess.as_deref(), &mut cache)
        .unwrap();
    assert_eq!(plain.voltages(), cached.voltages());
    assert_eq!(plain.diagnostics(), cached.diagnostics());
    assert!(!cache.is_warm(), "disabled reuse must never warm the cache");
    guess = Some(plain.voltages()[1..].to_vec());
    let warm = solver
        .solve_with_cache(ckt.circuit(), guess.as_deref(), &mut cache)
        .unwrap();
    assert_eq!(
        warm.voltages(),
        solver
            .solve_with_guess(ckt.circuit(), guess.as_deref())
            .unwrap()
            .voltages()
    );
    assert!(!cache.is_warm());
}

#[test]
fn warm_cache_carries_across_close_operating_points() {
    // Consecutive warm-started solves at the same operating point: the
    // cold solve factors (possibly several times, far from the solution);
    // a followup may refactor once near the solution; after that the
    // cached LU is taken at the operating point itself, so further solves
    // reuse it entirely — zero new factorizations — while still meeting
    // the residual bound.
    let ckt = fig3_circuit(true);
    let solver = ckt.solver().clone();
    let mut cache = NewtonCache::new();
    let first = solver
        .solve_with_cache(ckt.circuit(), None, &mut cache)
        .unwrap();
    assert!(cache.is_warm());
    assert!(first.diagnostics().factorizations >= 1);
    let guess: Vec<f64> = first.voltages()[1..].to_vec();
    let second = solver
        .solve_with_cache(ckt.circuit(), Some(&guess), &mut cache)
        .unwrap();
    assert!(
        second.diagnostics().factorizations <= 1,
        "a warm restart may refactor at most once near the solution"
    );
    let third = solver
        .solve_with_cache(ckt.circuit(), Some(&guess), &mut cache)
        .unwrap();
    assert_eq!(
        third.diagnostics().factorizations,
        0,
        "a repeat solve at the cached operating point must reuse the LU"
    );
    for sol in [&second, &third] {
        assert!(sol.diagnostics().residual < solver.residual_tolerance);
        for (a, b) in first.voltages().iter().zip(sol.voltages()) {
            assert!((a - b).abs() < 1e-8);
        }
    }
}
