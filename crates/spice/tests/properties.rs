//! Property-based checks of circuit-theory invariants: the DC solver must
//! satisfy superposition and source scaling on linear networks, and the
//! paper's nonlinear circuit must stay physical over the whole Tab. I box.

use pnc_spice::circuits::{characteristic_curve, NonlinearCircuitParams};
use pnc_spice::{Circuit, DcSolver, DeviceId, Node, GROUND};
use proptest::prelude::*;

/// A random 4-node resistive network driven by two sources, returning the
/// circuit plus the two source handles and a probe node.
fn random_linear_network(
    resistors: &[(usize, usize, f64)],
    v1: f64,
    v2: f64,
) -> (Circuit, DeviceId, DeviceId, Node) {
    let mut c = Circuit::new();
    let nodes: Vec<Node> = (0..4).map(|_| c.new_node()).collect();
    let all = [GROUND, nodes[0], nodes[1], nodes[2], nodes[3]];
    let s1 = c.vsource(nodes[0], GROUND, v1).expect("valid");
    let s2 = c.vsource(nodes[1], GROUND, v2).expect("valid");
    // Baseline connectivity so no probe node floats.
    c.resistor(nodes[0], nodes[2], 1_000.0).expect("valid");
    c.resistor(nodes[1], nodes[3], 1_000.0).expect("valid");
    c.resistor(nodes[2], nodes[3], 1_000.0).expect("valid");
    c.resistor(nodes[3], GROUND, 1_000.0).expect("valid");
    for &(a, b, r) in resistors {
        if a != b {
            c.resistor(all[a], all[b], r).expect("valid");
        }
    }
    (c, s1, s2, nodes[3])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Superposition: the response to two sources equals the sum of the
    /// responses to each source alone.
    #[test]
    fn linear_superposition(
        resistors in proptest::collection::vec((0usize..5, 0usize..5, 100.0..100_000.0f64), 0..8),
        v1 in -2.0..2.0f64,
        v2 in -2.0..2.0f64,
    ) {
        let solver = DcSolver::new();
        let solve_probe = |a: f64, b: f64| -> f64 {
            let (c, _, _, probe) = random_linear_network(&resistors, a, b);
            solver.solve(&c).expect("linear networks converge").voltage(probe)
        };
        let both = solve_probe(v1, v2);
        let only1 = solve_probe(v1, 0.0);
        let only2 = solve_probe(0.0, v2);
        prop_assert!(
            (both - only1 - only2).abs() < 1e-6,
            "superposition violated: {both} vs {only1} + {only2}"
        );
    }

    /// Homogeneity: scaling every source scales every node voltage.
    #[test]
    fn linear_scaling(
        resistors in proptest::collection::vec((0usize..5, 0usize..5, 100.0..100_000.0f64), 0..8),
        v in 0.1..2.0f64,
        scale in 0.25..4.0f64,
    ) {
        let solver = DcSolver::new();
        let (c1, _, _, probe) = random_linear_network(&resistors, v, -v);
        let (c2, _, _, probe2) = random_linear_network(&resistors, v * scale, -v * scale);
        let a = solver.solve(&c1).expect("converges").voltage(probe);
        let b = solver.solve(&c2).expect("converges").voltage(probe2);
        prop_assert!((b - a * scale).abs() < 1e-6 * scale.max(1.0), "{b} vs {a}*{scale}");
    }

    /// Over the entire feasible design space, the nonlinear circuit's
    /// transfer curve stays physical: within the supply rails, monotone
    /// non-decreasing, and solvable at every sweep point.
    #[test]
    fn ptanh_curves_are_physical_over_the_design_space(
        u in proptest::collection::vec(0.0..1.0f64, 7),
    ) {
        // Map the unit sample into the Tab. I box with feasible dividers.
        let lo = [10.0, 0.05, 10e3, 0.05, 10e3, 200e-6, 10e-6];
        let hi = [500.0, 0.95, 500e3, 0.95, 500e3, 800e-6, 70e-6];
        let raw: Vec<f64> = (0..7).map(|k| lo[k] + u[k] * (hi[k] - lo[k])).collect();
        let params = NonlinearCircuitParams {
            r1: raw[0],
            r2: (raw[0] * raw[1]).clamp(5.0, 250.0).min(raw[0] * 0.999),
            r3: raw[2],
            r4: (raw[2] * raw[3]).clamp(8e3, 400e3).min(raw[2] * 0.999),
            r5: raw[4],
            w: raw[5],
            l: raw[6],
        };
        prop_assume!(params.validate().is_ok());

        let curve = characteristic_curve(&params, 31).expect("sweep converges");
        let mut prev = f64::NEG_INFINITY;
        for &(vin, vout) in &curve {
            prop_assert!((0.0..=1.0).contains(&vin));
            prop_assert!(
                (-1e-6..=1.0 + 1e-6).contains(&vout),
                "output {vout} escapes the rails at {vin} for {params:?}"
            );
            prop_assert!(vout >= prev - 1e-6, "non-monotone at {vin}");
            prev = vout;
        }
    }

    /// Netlist round trip preserves the DC solution for random linear
    /// networks.
    #[test]
    fn netlist_round_trip_preserves_solution(
        resistors in proptest::collection::vec((0usize..5, 0usize..5, 100.0..100_000.0f64), 0..8),
        v in -2.0..2.0f64,
    ) {
        let (c, _, _, probe) = random_linear_network(&resistors, v, 0.3);
        let parsed = Circuit::from_netlist(&c.to_netlist()).expect("parses");
        let solver = DcSolver::new();
        let a = solver.solve(&c).expect("converges").voltage(probe);
        let b = solver.solve(&parsed).expect("converges").voltage(probe);
        prop_assert!((a - b).abs() < 1e-6, "{a} vs {b}");
    }
}
