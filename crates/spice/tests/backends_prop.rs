//! Cross-backend property tests: on random ladder and crossbar topologies
//! the sparse-LU backend must track the dense-LU oracle to linear-solver
//! precision, coordinate descent must agree within its documented
//! residual-implied tolerance, and every backend must be bit-identical
//! across thread counts (the determinism contract of `docs/SOLVERS.md`).

use pnc_linalg::ParallelConfig;
use pnc_spice::circuits::{resistor_ladder, CrossbarNetwork, NonlinearCircuitParams, PtanhCircuit};
use pnc_spice::{sweep, Circuit, DcSolver, Node, SolverBackend, GROUND};
use proptest::prelude::*;

/// A random crossbar-like linear layer: `ins` source-driven columns fan
/// into `outs` weighted-sum rows through the given resistances, each row
/// pulled down to ground. Returns the circuit and the row nodes.
fn random_crossbar(
    ins: usize,
    outs: usize,
    volts: &[f64],
    weights: &[f64],
) -> (Circuit, Vec<Node>) {
    let mut c = Circuit::new();
    let cols: Vec<Node> = (0..ins).map(|_| c.new_node()).collect();
    for (k, &col) in cols.iter().enumerate() {
        c.vsource(col, GROUND, volts[k % volts.len()])
            .expect("valid");
    }
    let rows: Vec<Node> = (0..outs).map(|_| c.new_node()).collect();
    let mut w = 0usize;
    for &row in &rows {
        for &col in &cols {
            c.resistor(col, row, weights[w % weights.len()])
                .expect("valid");
            w += 1;
        }
        c.resistor(row, GROUND, weights[w % weights.len()])
            .expect("valid");
        w += 1;
    }
    (c, rows)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Random ladders: sparse LU tracks dense LU to solver precision and
    /// coordinate descent stays within its residual-implied bound. Short
    /// ladders only — coordinate descent propagates information one node
    /// per sweep, its documented weakness on high-diameter topologies.
    #[test]
    fn backends_agree_on_random_ladders(
        sections in 1usize..24,
        r_series in 100.0..50_000.0f64,
        r_shunt in 1_000.0..200_000.0f64,
    ) {
        let (ladder, _) = resistor_ladder(sections, r_series, r_shunt).expect("valid");
        let dense = DcSolver::new().solve(&ladder).expect("dense converges");
        let sparse = DcSolver::with_backend(SolverBackend::SparseLu)
            .solve(&ladder)
            .expect("sparse converges");
        let cd = DcSolver::with_backend(SolverBackend::CoordDescent)
            .solve(&ladder)
            .expect("cd converges");
        for ((d, s), c) in dense
            .voltages()
            .iter()
            .zip(sparse.voltages())
            .zip(cd.voltages())
        {
            prop_assert!((d - s).abs() < 1e-9, "sparse: {d} vs {s}");
            prop_assert!((d - c).abs() < 2e-4, "cd: {d} vs {c}");
        }
        prop_assert!(
            (dense.source_current(0) - sparse.source_current(0)).abs() < 1e-9
        );
        prop_assert!(
            (dense.source_current(0) - cd.source_current(0)).abs() < 1e-7
        );
    }

    /// Random single-layer crossbars: all three backends agree on every
    /// weighted-sum row voltage.
    #[test]
    fn backends_agree_on_random_crossbars(
        ins in 1usize..6,
        outs in 1usize..6,
        volts in proptest::collection::vec(0.0..1.0f64, 1..6),
        weights in proptest::collection::vec(5_000.0..150_000.0f64, 1..12),
    ) {
        let (c, rows) = random_crossbar(ins, outs, &volts, &weights);
        let dense = DcSolver::new().solve(&c).expect("dense converges");
        let sparse = DcSolver::with_backend(SolverBackend::SparseLu)
            .solve(&c)
            .expect("sparse converges");
        let cd = DcSolver::with_backend(SolverBackend::CoordDescent)
            .solve(&c)
            .expect("cd converges");
        for &row in &rows {
            prop_assert!((dense.voltage(row) - sparse.voltage(row)).abs() < 1e-9);
            prop_assert!((dense.voltage(row) - cd.voltage(row)).abs() < 2e-4);
        }
    }
}

/// Per-backend determinism across thread counts on the Fig. 1/Fig. 3
/// nonlinear circuit: a parallel transfer-curve sweep must be bit-identical
/// at 1, 2, and 8 threads for every backend.
#[test]
fn every_backend_is_thread_invariant_on_fig1_circuit() {
    let grid = sweep::linspace(0.0, 1.0, 41);
    for backend in SolverBackend::all() {
        let mut ckt = PtanhCircuit::build(&NonlinearCircuitParams::nominal()).expect("builds");
        ckt.set_solver(DcSolver::with_backend(backend));
        let one = ckt
            .transfer_curve_parallel(&grid, &ParallelConfig::with_threads(1))
            .expect("solves");
        let two = ckt
            .transfer_curve_parallel(&grid, &ParallelConfig::with_threads(2))
            .expect("solves");
        let eight = ckt
            .transfer_curve_parallel(&grid, &ParallelConfig::with_threads(8))
            .expect("solves");
        assert_eq!(one, two, "{backend:?} differs between 1 and 2 threads");
        assert_eq!(one, eight, "{backend:?} differs between 1 and 8 threads");
    }
}

/// Cross-backend agreement on the paper's Fig. 1 nonlinear transfer curve:
/// sparse LU tracks the dense oracle tightly; coordinate descent within its
/// documented tolerance.
#[test]
fn backends_agree_on_fig1_transfer_curve() {
    let grid = sweep::linspace(0.0, 1.0, 41);
    let curve = |backend: SolverBackend| -> Vec<(f64, f64)> {
        let mut ckt = PtanhCircuit::build(&NonlinearCircuitParams::nominal()).expect("builds");
        ckt.set_solver(DcSolver::with_backend(backend));
        ckt.transfer_curve(&grid).expect("solves")
    };
    let dense = curve(SolverBackend::DenseLu);
    let sparse = curve(SolverBackend::SparseLu);
    let cd = curve(SolverBackend::CoordDescent);
    for (((_, d), (_, s)), (_, c)) in dense.iter().zip(&sparse).zip(&cd) {
        assert!((d - s).abs() < 1e-8, "sparse: {d} vs {s}");
        assert!((d - c).abs() < 2e-4, "cd: {d} vs {c}");
    }
}

/// The crossbar-scale network solves on every backend with matching
/// outputs — the in-repo version of the bench's in-situ agreement bar.
#[test]
fn backends_agree_on_crossbar_network() {
    let net = CrossbarNetwork::build(&[10, 8, 6], 1234).expect("builds");
    let dense = net.solve().expect("dense solves");
    for (backend, tol) in [
        (SolverBackend::SparseLu, 1e-8),
        (SolverBackend::CoordDescent, 2e-4),
    ] {
        let mut alt = net.clone();
        alt.set_solver(DcSolver::with_backend(backend));
        let got = alt.solve().expect("alt backend solves");
        for (d, g) in dense.iter().zip(&got) {
            assert!((d - g).abs() < tol, "{backend:?}: {d} vs {g}");
        }
    }
}
