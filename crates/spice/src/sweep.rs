//! DC sweep analysis with warm-started continuation.
//!
//! The surrogate-modelling pipeline characterizes each sampled nonlinear
//! circuit by its DC transfer curve `V_in ↦ V_out`. A sweep steps one input
//! voltage source across a grid and re-solves the operating point, reusing
//! the previous solution as the Newton starting guess — the standard
//! continuation trick that keeps the solver fast and on the same solution
//! branch.

use crate::{Circuit, DcSolver, DeviceId, NewtonCache, Solution, SpiceError};
use pnc_linalg::ParallelConfig;

/// Sweeps the voltage source `source` over `values` and returns the solution
/// at every step, in order.
///
/// The circuit is mutated during the sweep; on return the source holds the
/// last value of `values`.
///
/// # Errors
///
/// Propagates [`SpiceError::BadDeviceRef`] if `source` is not a voltage
/// source, plus any solver error at an individual step.
///
/// # Examples
///
/// ```
/// use pnc_spice::{Circuit, DcSolver, GROUND, sweep::dc_sweep};
///
/// # fn main() -> Result<(), pnc_spice::SpiceError> {
/// let mut ckt = Circuit::new();
/// let vin = ckt.new_node();
/// let out = ckt.new_node();
/// let src = ckt.vsource(vin, GROUND, 0.0)?;
/// ckt.resistor(vin, out, 1_000.0)?;
/// ckt.resistor(out, GROUND, 1_000.0)?;
/// let sols = dc_sweep(&mut ckt, src, &[0.0, 0.5, 1.0], &DcSolver::new())?;
/// assert!((sols[2].voltage(out) - 0.5).abs() < 1e-9);
/// # Ok(())
/// # }
/// ```
pub fn dc_sweep(
    circuit: &mut Circuit,
    source: DeviceId,
    values: &[f64],
    solver: &DcSolver,
) -> Result<Vec<Solution>, SpiceError> {
    // One modified-Newton cache across the whole continuation: consecutive
    // points warm-start near each other, so the factored Jacobian usually
    // carries over and iterations-per-factorization climbs above one (see
    // `DcSolver::newton_reuse`; a no-op when reuse is disabled).
    let mut cache = NewtonCache::new();
    let mut out = Vec::with_capacity(values.len());
    let mut guess: Option<Vec<f64>> = None;
    for &v in values {
        circuit.set_vsource(source, v)?;
        let sol = solver.solve_with_cache(circuit, guess.as_deref(), &mut cache)?;
        guess = Some(sol.voltages()[1..].to_vec());
        out.push(sol);
    }
    Ok(out)
}

/// Fixed chunk length for [`dc_sweep_parallel`].
///
/// Chunking is by this constant — never by thread count — so each chunk's
/// continuation path (cold Newton solve at its first point, then
/// nearest-neighbor warm starts) is the same no matter how many workers
/// run, keeping sweep results bit-identical across thread counts.
pub const SWEEP_CHUNK: usize = 16;

/// Like [`dc_sweep`], but fans fixed-size chunks of operating points out
/// over `parallel` worker threads, each on its own clone of the circuit.
///
/// Within a chunk, points warm-start from the previously solved neighbor
/// exactly as [`dc_sweep`] does; only the first point of each chunk starts
/// cold. Results come back in sweep order. Because the chunk boundaries are
/// fixed ([`SWEEP_CHUNK`]), the output is identical at every thread count —
/// though chunk-initial points may converge to (tolerance-level) different
/// values than a single full-continuation [`dc_sweep`] would produce.
///
/// The input circuit is not mutated.
///
/// # Errors
///
/// Same contract as [`dc_sweep`]; with multiple failing points the
/// lowest-index error is reported.
///
/// # Examples
///
/// ```
/// use pnc_linalg::ParallelConfig;
/// use pnc_spice::{Circuit, DcSolver, GROUND, sweep::dc_sweep_parallel};
///
/// # fn main() -> Result<(), pnc_spice::SpiceError> {
/// let mut ckt = Circuit::new();
/// let vin = ckt.new_node();
/// let out = ckt.new_node();
/// let src = ckt.vsource(vin, GROUND, 0.0)?;
/// ckt.resistor(vin, out, 1_000.0)?;
/// ckt.resistor(out, GROUND, 1_000.0)?;
/// let grid = pnc_spice::sweep::linspace(0.0, 1.0, 64);
/// let sols = dc_sweep_parallel(&ckt, src, &grid, &DcSolver::new(), &ParallelConfig::automatic())?;
/// assert_eq!(sols.len(), 64);
/// assert!((sols[63].voltage(out) - 0.5).abs() < 1e-9);
/// # Ok(())
/// # }
/// ```
pub fn dc_sweep_parallel(
    circuit: &Circuit,
    source: DeviceId,
    values: &[f64],
    solver: &DcSolver,
    parallel: &ParallelConfig,
) -> Result<Vec<Solution>, SpiceError> {
    let chunks: Vec<&[f64]> = values.chunks(SWEEP_CHUNK).collect();
    let solved: Vec<Vec<Solution>> = parallel.try_ordered_par_map(&chunks, |chunk| {
        let mut local = circuit.clone();
        dc_sweep(&mut local, source, chunk, solver)
    })?;
    Ok(solved.into_iter().flatten().collect())
}

/// Returns `n` equally spaced grid points covering `[lo, hi]` inclusive.
///
/// # Panics
///
/// Panics if `n < 2`.
///
/// # Examples
///
/// ```
/// let g = pnc_spice::sweep::linspace(0.0, 1.0, 5);
/// assert_eq!(g, vec![0.0, 0.25, 0.5, 0.75, 1.0]);
/// ```
pub fn linspace(lo: f64, hi: f64, n: usize) -> Vec<f64> {
    assert!(n >= 2, "linspace needs at least two points");
    let step = (hi - lo) / (n - 1) as f64;
    (0..n).map(|i| lo + step * i as f64).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GROUND;

    #[test]
    fn linspace_endpoints_and_count() {
        let g = linspace(-1.0, 1.0, 11);
        assert_eq!(g.len(), 11);
        assert_eq!(g[0], -1.0);
        assert_eq!(*g.last().unwrap(), 1.0);
    }

    #[test]
    #[should_panic(expected = "at least two")]
    fn linspace_rejects_single_point() {
        linspace(0.0, 1.0, 1);
    }

    #[test]
    fn sweep_tracks_source_value() {
        let mut c = Circuit::new();
        let n = c.new_node();
        let src = c.vsource(n, GROUND, 0.0).unwrap();
        c.resistor(n, GROUND, 10.0).unwrap();
        let vals = linspace(0.0, 1.0, 6);
        let sols = dc_sweep(&mut c, src, &vals, &DcSolver::new()).unwrap();
        for (sol, v) in sols.iter().zip(&vals) {
            assert!((sol.voltage(n) - v).abs() < 1e-12);
        }
    }

    #[test]
    fn parallel_sweep_is_identical_across_thread_counts() {
        // A nonlinear network (EGT inverter) so Newton actually iterates.
        let mut c = Circuit::new();
        let vdd = c.new_node();
        let vin_node = c.new_node();
        let out = c.new_node();
        c.vsource(vdd, GROUND, 1.0).unwrap();
        let src = c.vsource(vin_node, GROUND, 0.0).unwrap();
        c.resistor(vdd, out, 100_000.0).unwrap();
        c.egt(
            out,
            vin_node,
            GROUND,
            crate::EgtModel::printed(400e-6, 40e-6),
        )
        .unwrap();
        let vals = linspace(0.0, 1.0, 70);
        let solver = DcSolver::new();
        let serial = dc_sweep_parallel(&c, src, &vals, &solver, &ParallelConfig::serial()).unwrap();
        assert_eq!(serial.len(), vals.len());
        for threads in [2, 3, 4, 8] {
            let parallel = dc_sweep_parallel(
                &c,
                src,
                &vals,
                &solver,
                &ParallelConfig::with_threads(threads),
            )
            .unwrap();
            for (a, b) in serial.iter().zip(&parallel) {
                assert_eq!(a.voltages(), b.voltages(), "threads = {threads}");
            }
        }
    }

    #[test]
    fn parallel_sweep_matches_serial_sweep_closely() {
        let mut c = Circuit::new();
        let n = c.new_node();
        let src = c.vsource(n, GROUND, 0.0).unwrap();
        c.resistor(n, GROUND, 10.0).unwrap();
        let vals = linspace(0.0, 1.0, 40);
        let solver = DcSolver::new();
        let full = dc_sweep(&mut c.clone(), src, &vals, &solver).unwrap();
        let chunked =
            dc_sweep_parallel(&c, src, &vals, &solver, &ParallelConfig::automatic()).unwrap();
        for (a, b) in full.iter().zip(&chunked) {
            assert!((a.voltage(n) - b.voltage(n)).abs() < 1e-9);
        }
    }

    #[test]
    fn parallel_sweep_handles_empty_grid_and_leaves_input_untouched() {
        let mut c = Circuit::new();
        let n = c.new_node();
        let src = c.vsource(n, GROUND, 0.25).unwrap();
        c.resistor(n, GROUND, 10.0).unwrap();
        let before = c.clone();
        let sols = dc_sweep_parallel(&c, src, &[], &DcSolver::new(), &ParallelConfig::automatic())
            .unwrap();
        assert!(sols.is_empty());
        let grid = linspace(0.0, 1.0, 33);
        dc_sweep_parallel(
            &c,
            src,
            &grid,
            &DcSolver::new(),
            &ParallelConfig::automatic(),
        )
        .unwrap();
        assert_eq!(c, before, "input circuit must not be mutated");
    }

    #[test]
    fn sweep_rejects_non_source() {
        let mut c = Circuit::new();
        let n = c.new_node();
        let r = c.resistor(n, GROUND, 10.0).unwrap();
        assert!(dc_sweep(&mut c, r, &[0.0], &DcSolver::new()).is_err());
    }
}
