//! DC sweep analysis with warm-started continuation.
//!
//! The surrogate-modelling pipeline characterizes each sampled nonlinear
//! circuit by its DC transfer curve `V_in ↦ V_out`. A sweep steps one input
//! voltage source across a grid and re-solves the operating point, reusing
//! the previous solution as the Newton starting guess — the standard
//! continuation trick that keeps the solver fast and on the same solution
//! branch.

use crate::{Circuit, DcSolver, DeviceId, SpiceError, Solution};

/// Sweeps the voltage source `source` over `values` and returns the solution
/// at every step, in order.
///
/// The circuit is mutated during the sweep; on return the source holds the
/// last value of `values`.
///
/// # Errors
///
/// Propagates [`SpiceError::BadDeviceRef`] if `source` is not a voltage
/// source, plus any solver error at an individual step.
///
/// # Examples
///
/// ```
/// use pnc_spice::{Circuit, DcSolver, GROUND, sweep::dc_sweep};
///
/// # fn main() -> Result<(), pnc_spice::SpiceError> {
/// let mut ckt = Circuit::new();
/// let vin = ckt.new_node();
/// let out = ckt.new_node();
/// let src = ckt.vsource(vin, GROUND, 0.0)?;
/// ckt.resistor(vin, out, 1_000.0)?;
/// ckt.resistor(out, GROUND, 1_000.0)?;
/// let sols = dc_sweep(&mut ckt, src, &[0.0, 0.5, 1.0], &DcSolver::new())?;
/// assert!((sols[2].voltage(out) - 0.5).abs() < 1e-9);
/// # Ok(())
/// # }
/// ```
pub fn dc_sweep(
    circuit: &mut Circuit,
    source: DeviceId,
    values: &[f64],
    solver: &DcSolver,
) -> Result<Vec<Solution>, SpiceError> {
    let mut out = Vec::with_capacity(values.len());
    let mut guess: Option<Vec<f64>> = None;
    for &v in values {
        circuit.set_vsource(source, v)?;
        let sol = solver.solve_with_guess(circuit, guess.as_deref())?;
        guess = Some(sol.voltages()[1..].to_vec());
        out.push(sol);
    }
    Ok(out)
}

/// Returns `n` equally spaced grid points covering `[lo, hi]` inclusive.
///
/// # Panics
///
/// Panics if `n < 2`.
///
/// # Examples
///
/// ```
/// let g = pnc_spice::sweep::linspace(0.0, 1.0, 5);
/// assert_eq!(g, vec![0.0, 0.25, 0.5, 0.75, 1.0]);
/// ```
pub fn linspace(lo: f64, hi: f64, n: usize) -> Vec<f64> {
    assert!(n >= 2, "linspace needs at least two points");
    let step = (hi - lo) / (n - 1) as f64;
    (0..n).map(|i| lo + step * i as f64).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GROUND;

    #[test]
    fn linspace_endpoints_and_count() {
        let g = linspace(-1.0, 1.0, 11);
        assert_eq!(g.len(), 11);
        assert_eq!(g[0], -1.0);
        assert_eq!(*g.last().unwrap(), 1.0);
    }

    #[test]
    #[should_panic(expected = "at least two")]
    fn linspace_rejects_single_point() {
        linspace(0.0, 1.0, 1);
    }

    #[test]
    fn sweep_tracks_source_value() {
        let mut c = Circuit::new();
        let n = c.new_node();
        let src = c.vsource(n, GROUND, 0.0).unwrap();
        c.resistor(n, GROUND, 10.0).unwrap();
        let vals = linspace(0.0, 1.0, 6);
        let sols = dc_sweep(&mut c, src, &vals, &DcSolver::new()).unwrap();
        for (sol, v) in sols.iter().zip(&vals) {
            assert!((sol.voltage(n) - v).abs() < 1e-12);
        }
    }

    #[test]
    fn sweep_rejects_non_source() {
        let mut c = Circuit::new();
        let n = c.new_node();
        let r = c.resistor(n, GROUND, 10.0).unwrap();
        assert!(dc_sweep(&mut c, r, &[0.0], &DcSolver::new()).is_err());
    }
}
