//! Exact nonlinear coordinate descent for resistive networks.
//!
//! Implements the solver of Scellier, *A Fast Algorithm to Simulate
//! Nonlinear Resistive Networks* (arXiv 2402.11674), adapted to this
//! crate's device set: nodes driven by ground-referenced voltage sources
//! are clamped, and every remaining (free) node's scalar KCL equation
//! `f_i(v_i) = 0` is solved exactly in turn — a Gauss–Seidel-style sweep —
//! until the whole network satisfies the same voltage-update *and*
//! KCL-residual tolerances as the Newton backends. No global linear system
//! is ever assembled or factored.
//!
//! Each per-node equation is monotone increasing in the node's own voltage
//! (every conductance is non-negative and `gmin` adds a strictly positive
//! floor), so the safeguarded scalar Newton inner loop converges to the
//! unique per-node root. Sweeps run in ascending node order with no
//! threading, so results are bit-identical across runs and `PNC_NUM_THREADS`
//! settings. Selection guidance and failure modes are catalogued in
//! `docs/SOLVERS.md` at the workspace root.

use crate::mna::OBS_CD_SWEEPS;
use crate::{
    Circuit, DcSolver, Device, Node, RecoveryRung, Solution, SolveDiagnostics, SpiceError,
};

/// Iteration cap of the per-node scalar Newton loop inside one coordinate
/// update; each equation is monotone, so the cap only bounds pathological
/// device models.
const CD_INNER_ITERS: usize = 60;

/// Per-inner-iteration clamp on a node voltage move, in volts. Looser than
/// the Newton backends' `max_step` because a scalar update cannot overshoot
/// other nodes, only its own root.
const CD_STEP_CLAMP: f64 = 1.0;

/// Internal residual polish factor. Newton's quadratic convergence
/// overshoots `residual_tolerance` by orders of magnitude on its final
/// iteration; coordinate descent converges linearly and would otherwise
/// stop right at the bound, where circuit gain can amplify the residual
/// slack into visible voltage differences. Sweeps therefore aim this much
/// below `residual_tolerance`; the documented tolerance itself is still the
/// acceptance bar if the sweep budget runs out first.
const CD_POLISH_FACTOR: f64 = 1e-3;

/// `1.0` when `node` is the free node with MNA index `i`, else `0.0`.
fn ind(i: usize, node: Node) -> f64 {
    if node.index() != 0 && node.index() - 1 == i {
        1.0
    } else {
        0.0
    }
}

/// Sign with which a two-terminal current (flowing `a → b` internally)
/// enters node `i`'s KCL sum: `+1` leaving via `a`, `−1` via `b`.
fn sign(i: usize, a: Node, b: Node) -> f64 {
    ind(i, a) - ind(i, b)
}

/// Coordinate-descent DC solve. `x0` is the warm-start MNA vector from the
/// shared Newton prelude (node voltages in `x0[..n]`; branch currents are
/// ignored and recomputed from KCL at the solution).
pub(crate) fn solve(
    solver: &DcSolver,
    circuit: &Circuit,
    x0: &[f64],
    cap_state: Option<(&[f64], f64)>,
    rung: RecoveryRung,
) -> Result<Solution, SpiceError> {
    let n = circuit.num_nodes();
    let m = circuit.num_vsources();
    let devices = circuit.devices();

    // Clamp analysis: each voltage source must pin one non-ground node
    // against ground, and no node may be pinned twice (the MNA formulation
    // of either case is singular or needs a branch unknown this method
    // does not carry).
    let mut clamp: Vec<Option<f64>> = vec![None; n];
    let mut vsrc_nodes: Vec<(usize, bool)> = Vec::with_capacity(m);
    for device in devices {
        let Device::VSource {
            plus,
            minus,
            voltage,
        } = device
        else {
            continue;
        };
        let (node, value, plus_clamped) = if plus.index() != 0 && minus.index() == 0 {
            (plus.index() - 1, *voltage, true)
        } else if plus.index() == 0 && minus.index() != 0 {
            (minus.index() - 1, -*voltage, false)
        } else {
            return Err(SpiceError::UnsupportedTopology {
                backend: "coord-descent",
                detail: "every voltage source must connect one non-ground node to ground".into(),
            });
        };
        if clamp[node].is_some() {
            return Err(SpiceError::UnsupportedTopology {
                backend: "coord-descent",
                detail: format!(
                    "node {} is pinned by more than one voltage source",
                    node + 1
                ),
            });
        }
        clamp[node] = Some(value);
        vsrc_nodes.push((node, plus_clamped));
    }

    let mut v: Vec<f64> = x0[..n].to_vec();
    for (vi, c) in v.iter_mut().zip(&clamp) {
        if let Some(value) = c {
            *vi = *value;
        }
    }
    let free: Vec<usize> = (0..n).filter(|i| clamp[*i].is_none()).collect();

    // Device indices whose KCL current at a node depends on that node's
    // voltage; built once and iterated in fixed order for determinism.
    let mut touching: Vec<Vec<usize>> = vec![Vec::new(); n];
    for (di, device) in devices.iter().enumerate() {
        let mut note = |node: Node| {
            if node.index() != 0 {
                let slot = &mut touching[node.index() - 1];
                // A device with both terminals on one node would be pushed
                // twice; its current there is identically zero, keep one.
                if slot.last() != Some(&di) {
                    slot.push(di);
                }
            }
        };
        match device {
            Device::Resistor { a, b, .. } => {
                note(*a);
                note(*b);
            }
            Device::Capacitor { a, b, .. } => {
                if cap_state.is_some() {
                    note(*a);
                    note(*b);
                }
            }
            Device::ISource { from, to, .. } => {
                note(*from);
                note(*to);
            }
            Device::Egt { drain, source, .. } => {
                note(*drain);
                note(*source);
            }
            Device::VSource { .. } => {}
        }
    }

    // Voltage of `node` under the estimate `v` (ground = 0).
    let volt = |v: &[f64], node: Node| -> f64 {
        if node.index() == 0 {
            0.0
        } else {
            v[node.index() - 1]
        }
    };

    // KCL sum of currents leaving node `i` (amperes) and its derivative with
    // respect to `v[i]` (siemens). Matches the Newton backends' residual
    // exactly: gmin to ground plus every device current, voltage-source
    // branches excluded.
    let node_flow = |v: &[f64], i: usize| -> (f64, f64) {
        let mut f = solver.gmin * v[i];
        let mut fp = solver.gmin;
        for &di in &touching[i] {
            match &devices[di] {
                Device::Resistor { a, b, resistance } => {
                    let s = sign(i, *a, *b);
                    if s != 0.0 {
                        let g = 1.0 / resistance;
                        f += s * g * (volt(v, *a) - volt(v, *b));
                        fp += g;
                    }
                }
                Device::Capacitor { a, b, capacitance } => {
                    // Backward-Euler companion, as in the Newton assembly.
                    let Some((prev, h)) = cap_state else { continue };
                    let s = sign(i, *a, *b);
                    if s != 0.0 {
                        let g_c = capacitance / h;
                        let v_prev = prev[a.index()] - prev[b.index()];
                        f += s * g_c * (volt(v, *a) - volt(v, *b) - v_prev);
                        fp += g_c;
                    }
                }
                Device::ISource { from, to, current } => {
                    f += sign(i, *from, *to) * current;
                }
                Device::Egt {
                    drain,
                    gate,
                    source,
                    model,
                } => {
                    let vgs = volt(v, *gate) - volt(v, *source);
                    let vds = volt(v, *drain) - volt(v, *source);
                    let op = model.evaluate(vgs, vds);
                    let s = sign(i, *drain, *source);
                    if s != 0.0 {
                        f += s * op.id;
                        let dg = ind(i, *gate) - ind(i, *source);
                        let dd = ind(i, *drain) - ind(i, *source);
                        fp += s * (op.gm * dg + op.gds * dd);
                    }
                }
                Device::VSource { .. } => {}
            }
        }
        (f, fp)
    };

    // Exact per-node solve: safeguarded scalar Newton on the monotone
    // single-variable KCL equation. Returns how far the node moved.
    let polish_tol = solver.residual_tolerance * CD_POLISH_FACTOR;
    let inner_tol = 0.5 * polish_tol;
    let update_node = |v: &mut Vec<f64>, i: usize| -> f64 {
        let start = v[i];
        for _ in 0..CD_INNER_ITERS {
            let (f, fp) = node_flow(v, i);
            if f.abs() <= inner_tol {
                break;
            }
            let step = (-f / fp.max(solver.gmin)).clamp(-CD_STEP_CLAMP, CD_STEP_CLAMP);
            v[i] += step;
            if step.abs() < 1e-16 {
                break;
            }
        }
        (v[i] - start).abs()
    };

    // Cyclic sweeps over the free nodes in ascending index order. The
    // sweep budget scales with the free-node count because information
    // propagates at most one topological hop per sweep.
    let max_sweeps = solver
        .max_iterations
        .saturating_mul(4)
        .saturating_add(free.len().saturating_mul(4))
        .saturating_add(16);
    let mut sweeps = 0usize;
    let residual = loop {
        sweeps += 1;
        OBS_CD_SWEEPS.increment();
        let mut max_dv = 0.0_f64;
        for &i in &free {
            max_dv = max_dv.max(update_node(&mut v, i));
        }
        // Acceptance mirrors the Newton backends: the sweep must have
        // settled *and* the full KCL residual must be small, evaluated
        // after the sweep so later updates cannot hide earlier drift.
        let mut residual = 0.0_f64;
        for &i in &free {
            residual = residual.max(node_flow(&v, i).0.abs());
        }
        if max_dv < solver.tolerance && residual < polish_tol {
            break residual;
        }
        if sweeps >= max_sweeps {
            // Out of budget: the polished target was not reached, but the
            // documented tolerance contract may still be satisfied.
            if residual < solver.residual_tolerance {
                break residual;
            }
            return Err(SpiceError::NoConvergence {
                iterations: sweeps,
                residual,
            });
        }
    };

    // Branch currents from KCL at each clamped node: the source carries
    // exactly the current the rest of the circuit draws there.
    let source_currents: Vec<f64> = vsrc_nodes
        .iter()
        .map(|&(node, plus_clamped)| {
            let flow = node_flow(&v, node).0;
            if plus_clamped {
                -flow
            } else {
                flow
            }
        })
        .collect();

    let mut voltages = vec![0.0; n + 1];
    voltages[1..].copy_from_slice(&v);
    Ok(Solution {
        voltages,
        source_currents,
        diagnostics: SolveDiagnostics {
            iterations: sweeps,
            residual,
            rung,
            attempts: 1,
            factorizations: 0,
        },
    })
}
