//! Transient (time-domain) analysis with backward-Euler integration.
//!
//! Printed electronics is slow — the electrolyte gate of a printed EGT has
//! an enormous capacitance, which is why the paper's application domain is
//! low-frequency, near-sensor classification. This module quantifies that:
//! add [`Circuit::capacitor`]s to a netlist (e.g. gate capacitances) and
//! integrate the response to a stimulus over time.
//!
//! Backward Euler is unconditionally stable and first-order accurate — the
//! right trade-off for stiff RC networks with Newton-linearized transistors.
//!
//! # Examples
//!
//! RC step response:
//!
//! ```
//! use pnc_spice::{Circuit, TransientSolver, GROUND};
//!
//! # fn main() -> Result<(), pnc_spice::SpiceError> {
//! let mut ckt = Circuit::new();
//! let vin = ckt.new_node();
//! let out = ckt.new_node();
//! let src = ckt.vsource(vin, GROUND, 0.0)?;
//! ckt.resistor(vin, out, 1_000.0)?;
//! ckt.capacitor(out, GROUND, 1e-6)?;       // τ = 1 ms
//! let solver = TransientSolver::new(1e-5); // 10 µs steps
//! let wave = solver.simulate(&mut ckt, 5e-3, |t, c| {
//!     c.set_vsource(src, if t > 0.0 { 1.0 } else { 0.0 })
//! })?;
//! let final_v = wave.solutions.last().expect("steps").voltage(out);
//! assert!((final_v - 1.0).abs() < 0.01); // fully charged after 5τ
//! # Ok(())
//! # }
//! ```

use crate::{Circuit, DcSolver, Solution, SpiceError};

/// A simulated waveform: one solution per accepted timestep (the initial
/// operating point first, at `t = 0`).
#[derive(Debug, Clone, PartialEq)]
pub struct Waveform {
    /// Time of each stored point, in seconds.
    pub times: Vec<f64>,
    /// Circuit solution at each time.
    pub solutions: Vec<Solution>,
}

impl Waveform {
    /// The voltage waveform of one node.
    pub fn voltage_series(&self, node: crate::Node) -> Vec<(f64, f64)> {
        self.times
            .iter()
            .zip(&self.solutions)
            .map(|(&t, s)| (t, s.voltage(node)))
            .collect()
    }

    /// First time the node's voltage enters (and stays within) `tolerance`
    /// of its final value — a settling-time measurement.
    pub fn settling_time(&self, node: crate::Node, tolerance: f64) -> Option<f64> {
        let series = self.voltage_series(node);
        let target = series.last()?.1;
        let mut settled_at = None;
        for &(t, v) in &series {
            if (v - target).abs() <= tolerance {
                settled_at.get_or_insert(t);
            } else {
                settled_at = None;
            }
        }
        settled_at
    }
}

/// Fixed-step backward-Euler transient solver.
#[derive(Debug, Clone, PartialEq)]
pub struct TransientSolver {
    /// Integration timestep in seconds.
    pub timestep: f64,
    /// The Newton engine used for each implicit step.
    pub dc: DcSolver,
}

impl TransientSolver {
    /// Creates a solver with the given fixed timestep.
    ///
    /// # Panics
    ///
    /// Panics if `timestep` is not positive and finite.
    pub fn new(timestep: f64) -> Self {
        assert!(
            timestep.is_finite() && timestep > 0.0,
            "timestep must be positive"
        );
        TransientSolver {
            timestep,
            dc: DcSolver::new(),
        }
    }

    /// Integrates the circuit over `duration` seconds.
    ///
    /// `stimulus(t, circuit)` runs before every step (including `t = 0`,
    /// whose result defines the initial DC operating point with capacitors
    /// open) and may update source values.
    ///
    /// # Errors
    ///
    /// Propagates stimulus and Newton failures.
    pub fn simulate(
        &self,
        circuit: &mut Circuit,
        duration: f64,
        mut stimulus: impl FnMut(f64, &mut Circuit) -> Result<(), SpiceError>,
    ) -> Result<Waveform, SpiceError> {
        stimulus(0.0, circuit)?;
        let initial = self.dc.solve(circuit)?;
        let mut prev_voltages = initial.voltages().to_vec();
        let mut times = vec![0.0];
        let mut solutions = vec![initial];

        let steps = (duration / self.timestep).ceil() as usize;
        for k in 1..=steps {
            let t = k as f64 * self.timestep;
            stimulus(t, circuit)?;
            let guess = prev_voltages[1..].to_vec();
            let sol = self.dc.solve_recovered(
                circuit,
                Some(&guess),
                Some((&prev_voltages, self.timestep)),
            )?;
            times.push(t);
            prev_voltages = sol.voltages().to_vec();
            solutions.push(sol);
        }
        Ok(Waveform { times, solutions })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{EgtModel, GROUND};

    #[test]
    fn rc_step_response_matches_analytic() {
        let r = 10_000.0;
        let c = 1e-7; // τ = 1 ms
        let tau = r * c;
        let mut ckt = Circuit::new();
        let vin = ckt.new_node();
        let out = ckt.new_node();
        let src = ckt.vsource(vin, GROUND, 0.0).unwrap();
        ckt.resistor(vin, out, r).unwrap();
        ckt.capacitor(out, GROUND, c).unwrap();

        let solver = TransientSolver::new(tau / 200.0);
        let wave = solver
            .simulate(&mut ckt, 3.0 * tau, |t, c| {
                c.set_vsource(src, if t > 0.0 { 1.0 } else { 0.0 })
            })
            .unwrap();

        for (t, v) in wave.voltage_series(out) {
            if t == 0.0 {
                continue;
            }
            let expected = 1.0 - (-t / tau).exp();
            assert!(
                (v - expected).abs() < 0.01,
                "at t = {t}: {v} vs analytic {expected}"
            );
        }
    }

    #[test]
    fn rc_discharge() {
        let mut ckt = Circuit::new();
        let out = ckt.new_node();
        let vin = ckt.new_node();
        let src = ckt.vsource(vin, GROUND, 1.0).unwrap();
        ckt.resistor(vin, out, 1_000.0).unwrap();
        ckt.capacitor(out, GROUND, 1e-6).unwrap();
        // Start charged (source at 1 V), then drop the source to 0.
        let solver = TransientSolver::new(1e-5);
        let wave = solver
            .simulate(&mut ckt, 5e-3, |t, c| {
                c.set_vsource(src, if t > 0.0 { 0.0 } else { 1.0 })
            })
            .unwrap();
        let series = wave.voltage_series(out);
        assert!((series.first().unwrap().1 - 1.0).abs() < 1e-6);
        assert!(series.last().unwrap().1 < 0.01);
        // Monotone discharge.
        for w in series.windows(2) {
            assert!(w[1].1 <= w[0].1 + 1e-9);
        }
    }

    #[test]
    fn settling_time_of_rc_is_a_few_tau() {
        let tau = 1e-3;
        let mut ckt = Circuit::new();
        let vin = ckt.new_node();
        let out = ckt.new_node();
        let src = ckt.vsource(vin, GROUND, 0.0).unwrap();
        ckt.resistor(vin, out, 10_000.0).unwrap();
        ckt.capacitor(out, GROUND, tau / 10_000.0).unwrap();
        let wave = TransientSolver::new(tau / 100.0)
            .simulate(&mut ckt, 10.0 * tau, |t, c| {
                c.set_vsource(src, if t > 0.0 { 1.0 } else { 0.0 })
            })
            .unwrap();
        let settle = wave.settling_time(out, 0.01).expect("settles");
        // 1 % settling of an RC is ≈ 4.6 τ.
        assert!(
            (3.5 * tau..6.0 * tau).contains(&settle),
            "settling time {settle}"
        );
    }

    #[test]
    fn loaded_inverter_with_gate_capacitance_settles_to_dc() {
        // An EGT inverter whose input is driven through an RC (the printed
        // gate capacitance): the transient must converge to the DC solution.
        let model = EgtModel::printed(600e-6, 20e-6);
        let build = || {
            let mut ckt = Circuit::new();
            let vdd = ckt.new_node();
            let drive = ckt.new_node();
            let gate = ckt.new_node();
            let out = ckt.new_node();
            ckt.vsource(vdd, GROUND, 1.0).unwrap();
            let src = ckt.vsource(drive, GROUND, 0.8).unwrap();
            ckt.resistor(drive, gate, 50_000.0).unwrap();
            ckt.capacitor(gate, GROUND, 1e-8).unwrap(); // printed gate cap
            ckt.resistor(vdd, out, 100_000.0).unwrap();
            ckt.egt(out, gate, GROUND, model).unwrap();
            (ckt, src, gate, out)
        };

        // DC reference with the gate fully settled.
        let (dc_ckt, _, _, dc_out) = build();
        let dc = DcSolver::new().solve(&dc_ckt).unwrap();

        let (mut ckt, src, _gate, out) = build();
        let wave = TransientSolver::new(2e-5)
            .simulate(&mut ckt, 5e-3, |t, c| {
                c.set_vsource(src, if t > 0.0 { 0.8 } else { 0.0 })
            })
            .unwrap();
        let final_v = wave.solutions.last().unwrap().voltage(out);
        assert!(
            (final_v - dc.voltage(dc_out)).abs() < 1e-3,
            "transient end {final_v} vs dc {}",
            dc.voltage(dc_out)
        );
        // The output takes a finite time to move: printed latency.
        let settle = wave.settling_time(out, 0.01).expect("settles");
        assert!(settle > 1e-4, "settling should be RC-limited, got {settle}");
    }

    #[test]
    #[should_panic(expected = "timestep must be positive")]
    fn rejects_bad_timestep() {
        TransientSolver::new(0.0);
    }

    #[test]
    fn capacitor_validation() {
        let mut c = Circuit::new();
        let n = c.new_node();
        assert!(c.capacitor(n, GROUND, 0.0).is_err());
        assert!(c.capacitor(n, GROUND, -1e-9).is_err());
        assert!(c.capacitor(n, GROUND, 1e-9).is_ok());
    }
}
