//! Netlists of the paper's nonlinear subcircuits.
//!
//! Fig. 1 (right) of the paper shows the inverter-based nonlinear circuit: an
//! input voltage divider, two cascaded EGT inverter stages and an inter-stage
//! divider. Its physical parameterization is
//! ω = \[R1ᴺ, R2ᴺ, R3ᴺ, R4ᴺ, R5ᴺ, W, L\] (Tab. I). This module builds the
//! corresponding [`Circuit`]s:
//!
//! * [`PtanhCircuit`] — the two-stage tanh-like activation circuit. Rising,
//!   saturating transfer curve `V_a = ptanh(V_z)` (Eq. 2).
//! * The *negative weight* circuit is, as in the paper ("as a shortcut, we
//!   use the same circuit as ptanh circuit"), the same netlist; its
//!   mathematical model is the negated transfer function (Eq. 3), which the
//!   fitting layer in `pnc-fit` expresses as a ptanh with negated η₁, η₂.
//!
//! Topology (node names as in the code):
//!
//! ```text
//!  V_in ──R1──┬── g1 (gate T1)         V_DD ──R5──┬── d1
//!             R2                                   │ drain
//!             │                             T1 (W/L)│  gate = g1
//!            GND                                   ─┴─ GND
//!
//!  d1 ──R3──┬── g2 (gate T2)           V_DD ──R_L2──┬── out
//!           R4                                       │ drain
//!           │                                 T2 (W/L)│  gate = g2
//!          GND                                       ─┴─ GND
//! ```
//!
//! The two dividers realize the ratio constraints of Tab. I (`R1 > R2`,
//! `R3 > R4`): if a divider's series resistor did not dominate, its ratio
//! would no longer be approximately constant under the loading of the
//! surrounding stages. The second stage load `R_L2` is a fixed process
//! constant ([`SECOND_STAGE_LOAD_OHMS`]) — the paper's schematic has a
//! corresponding fixed supply element that is not part of ω.

use crate::{sweep, Circuit, DcSolver, DeviceId, EgtModel, Node, SpiceError, GROUND};
use serde::{Deserialize, Serialize};

/// Supply voltage of the printed circuits, in volts.
pub const VDD: f64 = 1.0;

/// Fixed load resistance of the second inverter stage, in ohms.
pub const SECOND_STAGE_LOAD_OHMS: f64 = 200_000.0;

/// Physical parameterization ω of a nonlinear circuit (Tab. I).
///
/// Resistances are in ohms, geometry in meters.
///
/// # Examples
///
/// ```
/// use pnc_spice::circuits::NonlinearCircuitParams;
///
/// let omega = NonlinearCircuitParams::nominal();
/// assert!(omega.r1 > omega.r2); // divider constraint of Tab. I
/// assert!(omega.r3 > omega.r4);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NonlinearCircuitParams {
    /// Input divider series resistor R1ᴺ (Ω).
    pub r1: f64,
    /// Input divider shunt resistor R2ᴺ (Ω); must satisfy `r2 < r1`.
    pub r2: f64,
    /// Inter-stage divider series resistor R3ᴺ (Ω).
    pub r3: f64,
    /// Inter-stage divider shunt resistor R4ᴺ (Ω); must satisfy `r4 < r3`.
    pub r4: f64,
    /// First-stage load resistor R5ᴺ (Ω).
    pub r5: f64,
    /// Transistor channel width W (m), shared by both stages.
    pub w: f64,
    /// Transistor channel length L (m), shared by both stages.
    pub l: f64,
}

impl NonlinearCircuitParams {
    /// A mid-range parameterization used as the *fixed* (non-learnable)
    /// nonlinear circuit: the design prior work would have used for every
    /// task.
    pub fn nominal() -> Self {
        NonlinearCircuitParams {
            r1: 200.0,
            r2: 100.0,
            r3: 300_000.0,
            r4: 150_000.0,
            r5: 100_000.0,
            w: 800e-6,
            l: 20e-6,
        }
    }

    /// The parameters as the 7-vector `[r1, r2, r3, r4, r5, w, l]` in SI
    /// units, the layout used throughout the surrogate pipeline.
    pub fn to_array(self) -> [f64; 7] {
        [self.r1, self.r2, self.r3, self.r4, self.r5, self.w, self.l]
    }

    /// Builds parameters from the 7-vector layout of [`Self::to_array`].
    pub fn from_array(a: [f64; 7]) -> Self {
        NonlinearCircuitParams {
            r1: a[0],
            r2: a[1],
            r3: a[2],
            r4: a[3],
            r5: a[4],
            w: a[5],
            l: a[6],
        }
    }

    /// Validates positivity and the Tab. I inequality constraints.
    ///
    /// # Errors
    ///
    /// Returns [`SpiceError::InvalidValue`] naming the first violated
    /// component.
    pub fn validate(&self) -> Result<(), SpiceError> {
        let checks: [(&'static str, f64); 7] = [
            ("r1", self.r1),
            ("r2", self.r2),
            ("r3", self.r3),
            ("r4", self.r4),
            ("r5", self.r5),
            ("w", self.w),
            ("l", self.l),
        ];
        for (name, v) in checks {
            if !(v.is_finite() && v > 0.0) {
                return Err(SpiceError::InvalidValue {
                    device: name,
                    value: v,
                });
            }
        }
        if self.r2 >= self.r1 {
            return Err(SpiceError::InvalidValue {
                device: "r2 (must be < r1)",
                value: self.r2,
            });
        }
        if self.r4 >= self.r3 {
            return Err(SpiceError::InvalidValue {
                device: "r4 (must be < r3)",
                value: self.r4,
            });
        }
        Ok(())
    }
}

/// A built ptanh circuit ready for DC analysis.
///
/// # Examples
///
/// ```
/// use pnc_spice::circuits::{NonlinearCircuitParams, PtanhCircuit};
///
/// # fn main() -> Result<(), pnc_spice::SpiceError> {
/// let mut ckt = PtanhCircuit::build(&NonlinearCircuitParams::nominal())?;
/// let curve = ckt.transfer_curve(&pnc_spice::sweep::linspace(0.0, 1.0, 21))?;
/// assert_eq!(curve.len(), 21);
/// // Rising, bounded transfer curve.
/// assert!(curve.first().unwrap().1 < curve.last().unwrap().1);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct PtanhCircuit {
    circuit: Circuit,
    vin: DeviceId,
    out: Node,
    solver: DcSolver,
}

impl PtanhCircuit {
    /// Builds the two-stage nonlinear circuit for the given physical
    /// parameters.
    ///
    /// # Errors
    ///
    /// Returns [`SpiceError::InvalidValue`] if the parameters violate the
    /// Tab. I constraints.
    pub fn build(params: &NonlinearCircuitParams) -> Result<Self, SpiceError> {
        params.validate()?;
        let egt = EgtModel::printed(params.w, params.l);

        let mut c = Circuit::new();
        let vdd = c.new_node();
        let vin_node = c.new_node();
        let g1 = c.new_node();
        let d1 = c.new_node();
        let g2 = c.new_node();
        let out = c.new_node();

        c.vsource(vdd, GROUND, VDD)?;
        let vin = c.vsource(vin_node, GROUND, 0.0)?;

        // Input divider.
        c.resistor(vin_node, g1, params.r1)?;
        c.resistor(g1, GROUND, params.r2)?;

        // First inverter: load R5, EGT pull-down.
        c.resistor(vdd, d1, params.r5)?;
        c.egt(d1, g1, GROUND, egt)?;

        // Inter-stage divider.
        c.resistor(d1, g2, params.r3)?;
        c.resistor(g2, GROUND, params.r4)?;

        // Second inverter with the fixed process load.
        c.resistor(vdd, out, SECOND_STAGE_LOAD_OHMS)?;
        c.egt(out, g2, GROUND, egt)?;

        Ok(PtanhCircuit {
            circuit: c,
            vin,
            out,
            solver: DcSolver::new(),
        })
    }

    /// The output voltage for a single input voltage.
    ///
    /// # Errors
    ///
    /// Propagates solver failures.
    pub fn output_at(&mut self, v_in: f64) -> Result<f64, SpiceError> {
        self.circuit.set_vsource(self.vin, v_in)?;
        Ok(self.solver.solve(&self.circuit)?.voltage(self.out))
    }

    /// Sweeps the input over `v_in` and returns `(V_in, V_out)` pairs — the
    /// characteristic curve the surrogate pipeline fits ptanh parameters to.
    ///
    /// # Errors
    ///
    /// Propagates solver failures at any sweep point.
    pub fn transfer_curve(&mut self, v_in: &[f64]) -> Result<Vec<(f64, f64)>, SpiceError> {
        let sols = sweep::dc_sweep(&mut self.circuit, self.vin, v_in, &self.solver)?;
        Ok(v_in
            .iter()
            .zip(sols)
            .map(|(&v, sol)| (v, sol.voltage(self.out)))
            .collect())
    }

    /// Like [`transfer_curve`](Self::transfer_curve), but returns the full
    /// [`Solution`](crate::Solution) per sweep point so callers can inspect
    /// [`SolveDiagnostics`](crate::SolveDiagnostics) — iterations,
    /// factorizations, recovery rungs — across the sweep. The bench harness
    /// uses this to report iterations-per-factorization of the
    /// Jacobian-reuse solver on the paper's Fig. 3 transfer curves.
    ///
    /// # Errors
    ///
    /// Propagates solver failures at any sweep point.
    pub fn transfer_curve_solutions(
        &mut self,
        v_in: &[f64],
    ) -> Result<Vec<crate::Solution>, SpiceError> {
        sweep::dc_sweep(&mut self.circuit, self.vin, v_in, &self.solver)
    }

    /// Like [`transfer_curve`](Self::transfer_curve), but sweeps fixed-size
    /// chunks of the grid on `parallel` worker threads (see
    /// [`sweep::dc_sweep_parallel`]) and leaves `self` unchanged. The curve
    /// is identical at every thread count.
    ///
    /// # Errors
    ///
    /// Propagates solver failures at any sweep point (lowest grid index
    /// wins).
    pub fn transfer_curve_parallel(
        &self,
        v_in: &[f64],
        parallel: &pnc_linalg::ParallelConfig,
    ) -> Result<Vec<(f64, f64)>, SpiceError> {
        let sols = sweep::dc_sweep_parallel(&self.circuit, self.vin, v_in, &self.solver, parallel)?;
        Ok(v_in
            .iter()
            .zip(sols)
            .map(|(&v, sol)| (v, sol.voltage(self.out)))
            .collect())
    }

    /// Replaces the DC solver used for all subsequent analyses.
    ///
    /// The dataset builder uses this to install solvers with custom
    /// [`RecoveryPolicy`](crate::RecoveryPolicy) or (in tests) fault
    /// injection; everything else keeps the [`DcSolver::new`] default.
    pub fn set_solver(&mut self, solver: DcSolver) {
        self.solver = solver;
    }

    /// The DC solver currently used by this circuit.
    pub fn solver(&self) -> &DcSolver {
        &self.solver
    }

    /// Access to the underlying netlist (for inspection and tests).
    pub fn circuit(&self) -> &Circuit {
        &self.circuit
    }
}

/// Convenience: the characteristic curve of the circuit parameterized by
/// `params`, sampled on a uniform `n`-point grid over `[0, VDD]`.
///
/// # Errors
///
/// Propagates construction and solver failures.
///
/// # Examples
///
/// ```
/// use pnc_spice::circuits::{characteristic_curve, NonlinearCircuitParams};
///
/// let curve = characteristic_curve(&NonlinearCircuitParams::nominal(), 41)?;
/// assert_eq!(curve.len(), 41);
/// # Ok::<(), pnc_spice::SpiceError>(())
/// ```
pub fn characteristic_curve(
    params: &NonlinearCircuitParams,
    n: usize,
) -> Result<Vec<(f64, f64)>, SpiceError> {
    let mut ckt = PtanhCircuit::build(params)?;
    ckt.transfer_curve(&sweep::linspace(0.0, VDD, n))
}

/// Deterministic 64-bit LCG (Knuth's MMIX constants) returning uniform
/// samples in `[0, 1)`; the crossbar builder uses it so benchmark netlists
/// are reproducible from a seed without a random-number dependency.
fn lcg_uniform(state: &mut u64) -> f64 {
    *state = state
        .wrapping_mul(6364136223846793005)
        .wrapping_add(1442695040888963407);
    ((*state >> 11) as f64) / ((1u64 << 53) as f64)
}

/// Builds a driven resistor ladder: a 1 V source feeding `sections` series
/// resistors of `r_series` ohms, each junction shunted to ground through
/// `r_shunt` ohms. Returns the circuit and its far-end node.
///
/// The MNA matrix is tridiagonal-plus-border, the canonical topology where
/// sparse LU scales linearly while dense LU pays the full O(n³) — the
/// solver-backend bench sweeps this family. Its diameter also grows with
/// `sections`, which is exactly the regime where the coordinate-descent
/// backend degrades (information moves one node per sweep); see
/// `docs/SOLVERS.md`.
///
/// # Errors
///
/// Returns [`SpiceError::InvalidValue`] for non-positive or non-finite
/// resistances, or a zero section count.
///
/// # Examples
///
/// ```
/// use pnc_spice::{circuits::resistor_ladder, DcSolver};
///
/// # fn main() -> Result<(), pnc_spice::SpiceError> {
/// let (ladder, far_end) = resistor_ladder(64, 1_000.0, 10_000.0)?;
/// let sol = DcSolver::new().solve(&ladder)?;
/// // The ladder attenuates monotonically toward the far end.
/// let v = sol.voltage(far_end);
/// assert!(v > 0.0 && v < 1.0);
/// # Ok(())
/// # }
/// ```
pub fn resistor_ladder(
    sections: usize,
    r_series: f64,
    r_shunt: f64,
) -> Result<(Circuit, Node), SpiceError> {
    if sections == 0 {
        return Err(SpiceError::InvalidValue {
            device: "ladder sections",
            value: 0.0,
        });
    }
    let mut c = Circuit::new();
    let drive = c.new_node();
    c.vsource(drive, GROUND, VDD)?;
    let mut prev = drive;
    for _ in 0..sections {
        let node = c.new_node();
        c.resistor(prev, node, r_series)?;
        c.resistor(node, GROUND, r_shunt)?;
        prev = node;
    }
    Ok((c, prev))
}

/// A multilayer printed-neural-network circuit at full SPICE level: each
/// layer is a resistor crossbar computing conductance-weighted sums
/// (Eq. 1 of the paper) feeding one two-stage EGT activation
/// (the [`PtanhCircuit`] topology) per neuron, with layer outputs wired as
/// the next layer's inputs.
///
/// This is the crossbar-scale workload ROADMAP item 1 calls for: a
/// `[16, 16, 16, 16]` network has hundreds of MNA unknowns — more than 10×
/// the Fig. 1 subcircuit — at a few nonzeros per row, the regime where the
/// sparse and coordinate-descent backends of [`DcSolver`]
/// pull away from dense LU. All component values derive deterministically
/// from `seed`, so benchmark netlists are reproducible.
///
/// # Examples
///
/// ```
/// use pnc_spice::circuits::CrossbarNetwork;
///
/// # fn main() -> Result<(), pnc_spice::SpiceError> {
/// let net = CrossbarNetwork::build(&[4, 3, 2], 7)?;
/// let outputs = net.solve()?;
/// assert_eq!(outputs.len(), 2);
/// // Activation outputs stay within the supply rails.
/// assert!(outputs.iter().all(|v| (-1e-6..=1.0 + 1e-6).contains(v)));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct CrossbarNetwork {
    circuit: Circuit,
    outputs: Vec<Node>,
    solver: DcSolver,
}

impl CrossbarNetwork {
    /// Builds the network. `layers[0]` is the number of circuit inputs
    /// (each driven by a seeded voltage source in `[0, VDD]`); every later
    /// entry is a crossbar-plus-activation layer of that many neurons.
    ///
    /// # Errors
    ///
    /// Returns [`SpiceError::InvalidValue`] unless `layers` has at least an
    /// input and one neuron layer, all with non-zero width.
    pub fn build(layers: &[usize], seed: u64) -> Result<Self, SpiceError> {
        if layers.len() < 2 || layers.contains(&0) {
            return Err(SpiceError::InvalidValue {
                device: "crossbar layer sizes",
                value: layers.len() as f64,
            });
        }
        let mut rng = seed ^ 0x9e37_79b9_7f4a_7c15;
        // Crossbar weight resistors span a printed-plausible decade.
        let weight_r = |rng: &mut u64| 10_000.0 + 90_000.0 * lcg_uniform(rng);
        let act = NonlinearCircuitParams::nominal();
        let egt = EgtModel::printed(act.w, act.l);

        let mut c = Circuit::new();
        let vdd = c.new_node();
        c.vsource(vdd, GROUND, VDD)?;

        let mut inputs: Vec<Node> = Vec::with_capacity(layers[0]);
        for _ in 0..layers[0] {
            let n = c.new_node();
            c.vsource(n, GROUND, VDD * lcg_uniform(&mut rng))?;
            inputs.push(n);
        }

        let mut prev = inputs;
        for &width in &layers[1..] {
            let mut outs = Vec::with_capacity(width);
            for _ in 0..width {
                // Weighted-sum node z (Eq. 1): one crossbar resistor per
                // upstream output, a bias column from VDD, and the
                // denominator pulldown.
                let z = c.new_node();
                for &src in &prev {
                    c.resistor(src, z, weight_r(&mut rng))?;
                }
                c.resistor(vdd, z, weight_r(&mut rng))?;
                c.resistor(z, GROUND, weight_r(&mut rng))?;

                // Two-stage EGT activation, as in [`PtanhCircuit`] with z
                // taking the place of the divided input.
                let d1 = c.new_node();
                let g2 = c.new_node();
                let out = c.new_node();
                c.resistor(vdd, d1, act.r5)?;
                c.egt(d1, z, GROUND, egt)?;
                c.resistor(d1, g2, act.r3)?;
                c.resistor(g2, GROUND, act.r4)?;
                c.resistor(vdd, out, SECOND_STAGE_LOAD_OHMS)?;
                c.egt(out, g2, GROUND, egt)?;
                outs.push(out);
            }
            prev = outs;
        }

        Ok(CrossbarNetwork {
            circuit: c,
            outputs: prev,
            solver: DcSolver::new(),
        })
    }

    /// Solves the DC operating point and returns the final layer's output
    /// voltages.
    ///
    /// # Errors
    ///
    /// Propagates solver failures.
    pub fn solve(&self) -> Result<Vec<f64>, SpiceError> {
        let sol = self.solver.solve(&self.circuit)?;
        Ok(self.outputs.iter().map(|&n| sol.voltage(n)).collect())
    }

    /// Replaces the DC solver used by [`Self::solve`] — the hook the
    /// backend bench uses to pin a [`SolverBackend`](crate::SolverBackend)
    /// per run.
    pub fn set_solver(&mut self, solver: DcSolver) {
        self.solver = solver;
    }

    /// The DC solver currently in use.
    pub fn solver(&self) -> &DcSolver {
        &self.solver
    }

    /// Output nodes of the final layer, in neuron order.
    pub fn outputs(&self) -> &[Node] {
        &self.outputs
    }

    /// Access to the underlying netlist (for inspection and tests).
    pub fn circuit(&self) -> &Circuit {
        &self.circuit
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pnc_linalg::ParallelConfig;

    #[test]
    fn parallel_transfer_curve_is_thread_invariant_and_close_to_serial() {
        let params = NonlinearCircuitParams::nominal();
        let ckt = PtanhCircuit::build(&params).unwrap();
        let grid = sweep::linspace(0.0, VDD, 61);
        let serial = ckt
            .transfer_curve_parallel(&grid, &ParallelConfig::serial())
            .unwrap();
        let four = ckt
            .transfer_curve_parallel(&grid, &ParallelConfig::with_threads(4))
            .unwrap();
        assert_eq!(serial, four, "curve must not depend on thread count");
        // Chunked warm starts may differ from full continuation only at
        // solver-tolerance level.
        let full = PtanhCircuit::build(&params)
            .unwrap()
            .transfer_curve(&grid)
            .unwrap();
        for ((v_full, out_full), (v_chunk, out_chunk)) in full.iter().zip(&serial) {
            assert_eq!(v_full, v_chunk);
            assert!((out_full - out_chunk).abs() < 1e-6);
        }
    }

    #[test]
    fn resistor_ladder_attenuates_and_backends_agree() {
        let (ladder, far_end) = resistor_ladder(40, 1_000.0, 10_000.0).unwrap();
        let dense = crate::DcSolver::new().solve(&ladder).unwrap();
        let sparse = crate::DcSolver::with_backend(crate::SolverBackend::SparseLu)
            .solve(&ladder)
            .unwrap();
        let v = dense.voltage(far_end);
        assert!(
            v > 0.0 && v < 0.5,
            "a 40-section ladder attenuates, got {v}"
        );
        for (a, b) in dense.voltages().iter().zip(sparse.voltages()) {
            assert!((a - b).abs() < 1e-9, "dense {a} vs sparse {b}");
        }
    }

    #[test]
    fn crossbar_network_is_crossbar_scale_and_backends_agree() {
        let net = CrossbarNetwork::build(&[8, 8, 8], 42).unwrap();
        // ≥ 10× the 6-node Fig. 1 subcircuit.
        assert!(
            net.circuit().num_nodes() >= 60,
            "nodes {}",
            net.circuit().num_nodes()
        );
        let dense = net.solve().unwrap();
        // Agreement bounds per SOLVERS.md: sparse LU solves the same Newton
        // system (tight); coordinate descent only guarantees the shared KCL
        // residual tolerance, which the ~200 kΩ output impedance maps to a
        // couple of 1e-4 V of voltage slack.
        for (backend, tol) in [
            (crate::SolverBackend::SparseLu, 1e-8),
            (crate::SolverBackend::CoordDescent, 2e-4),
        ] {
            let mut alt = net.clone();
            alt.set_solver(crate::DcSolver::with_backend(backend));
            let got = alt.solve().unwrap();
            for (a, b) in dense.iter().zip(&got) {
                assert!((a - b).abs() < tol, "{backend:?}: dense {a} vs {b}");
            }
        }
    }

    #[test]
    fn crossbar_network_is_seed_deterministic() {
        let a = CrossbarNetwork::build(&[4, 3], 9).unwrap().solve().unwrap();
        let b = CrossbarNetwork::build(&[4, 3], 9).unwrap().solve().unwrap();
        let c = CrossbarNetwork::build(&[4, 3], 10)
            .unwrap()
            .solve()
            .unwrap();
        assert_eq!(a, b, "same seed must rebuild the same netlist");
        assert_ne!(a, c, "different seeds must differ");
    }

    #[test]
    fn builders_reject_degenerate_shapes() {
        assert!(resistor_ladder(0, 1_000.0, 1_000.0).is_err());
        assert!(CrossbarNetwork::build(&[4], 1).is_err());
        assert!(CrossbarNetwork::build(&[4, 0, 2], 1).is_err());
    }

    #[test]
    fn nominal_params_are_valid() {
        NonlinearCircuitParams::nominal().validate().unwrap();
    }

    #[test]
    fn validate_rejects_divider_violations() {
        let mut p = NonlinearCircuitParams::nominal();
        p.r2 = p.r1 + 1.0;
        assert!(p.validate().is_err());
        let mut p = NonlinearCircuitParams::nominal();
        p.r4 = p.r3;
        assert!(p.validate().is_err());
    }

    #[test]
    fn validate_rejects_nonpositive() {
        let mut p = NonlinearCircuitParams::nominal();
        p.w = 0.0;
        assert!(p.validate().is_err());
    }

    #[test]
    fn array_round_trip() {
        let p = NonlinearCircuitParams::nominal();
        assert_eq!(NonlinearCircuitParams::from_array(p.to_array()), p);
    }

    #[test]
    fn transfer_curve_is_monotone_rising_and_bounded() {
        let curve = characteristic_curve(&NonlinearCircuitParams::nominal(), 51).unwrap();
        let mut prev = -1.0;
        for &(vin, vout) in &curve {
            assert!((0.0..=VDD).contains(&vin));
            assert!(
                (-1e-6..=VDD + 1e-6).contains(&vout),
                "output {vout} out of supply range"
            );
            assert!(vout >= prev - 1e-7, "curve must be non-decreasing");
            prev = vout;
        }
        // Two cascaded inversions: rising overall, with usable swing.
        let swing = curve.last().unwrap().1 - curve.first().unwrap().1;
        assert!(swing > 0.2, "swing too small: {swing}");
    }

    #[test]
    fn geometry_changes_the_curve() {
        let base = NonlinearCircuitParams::nominal();
        let mut wide = base;
        wide.w = 800e-6;
        wide.l = 10e-6;
        let a = characteristic_curve(&base, 21).unwrap();
        let b = characteristic_curve(&wide, 21).unwrap();
        let max_diff = a
            .iter()
            .zip(&b)
            .map(|((_, ya), (_, yb))| (ya - yb).abs())
            .fold(0.0_f64, f64::max);
        assert!(
            max_diff > 0.05,
            "W/L should reshape the curve, diff {max_diff}"
        );
    }

    #[test]
    fn divider_ratio_shifts_the_transition() {
        // A smaller input-divider ratio moves the transition to higher V_in.
        let mut steep = NonlinearCircuitParams::nominal();
        steep.r1 = 100.0;
        steep.r2 = 90.0; // ratio 0.47
        let mut shallow = NonlinearCircuitParams::nominal();
        shallow.r1 = 400.0;
        shallow.r2 = 50.0; // ratio 0.11

        let mid = |params: &NonlinearCircuitParams| -> f64 {
            let curve = characteristic_curve(params, 101).unwrap();
            let lo = curve.first().unwrap().1;
            let hi = curve.last().unwrap().1;
            let target = 0.5 * (lo + hi);
            curve
                .iter()
                .find(|&&(_, v)| v >= target)
                .map(|&(vin, _)| vin)
                .unwrap_or(1.0)
        };

        assert!(
            mid(&steep) < mid(&shallow),
            "transition should move right as the divider ratio shrinks"
        );
    }

    #[test]
    fn output_at_matches_sweep() {
        let p = NonlinearCircuitParams::nominal();
        let mut ckt = PtanhCircuit::build(&p).unwrap();
        let single = ckt.output_at(0.6).unwrap();
        let curve = characteristic_curve(&p, 6).unwrap();
        // 0.6 is the 4th point of linspace(0, 1, 6).
        assert!((curve[3].0 - 0.6).abs() < 1e-12);
        assert!((curve[3].1 - single).abs() < 1e-6);
    }
}
