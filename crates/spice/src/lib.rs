//! A DC analog circuit simulator for printed neuromorphic circuits.
//!
//! The paper characterizes its nonlinear subcircuits with Cadence Virtuoso
//! SPICE simulations on a printed process design kit (pPDK) \[Rasheed et al.\].
//! Neither is available here, so this crate is the substitute substrate: a
//! from-scratch DC operating-point simulator built on
//!
//! * **modified nodal analysis** (MNA) assembly of resistors, independent
//!   sources and transistors ([`Circuit`]),
//! * a behavioral **printed electrolyte-gated transistor** (EGT) model with
//!   geometry (W/L) scaling, smooth triode/saturation interpolation and
//!   channel-length modulation ([`EgtModel`]),
//! * damped **Newton–Raphson** iteration with analytic device Jacobians and a
//!   `gmin` safety conductance ([`DcSolver`]),
//! * three interchangeable **solver backends** — dense LU (the oracle),
//!   sparse LU with cached symbolic analysis, and the exact
//!   coordinate-descent method of Scellier 2024 — selected per-circuit via
//!   [`DcSolver::backend`] or process-wide via `PNC_SPICE_BACKEND`
//!   ([`SolverBackend`]; catalogue and selection guidance in
//!   `docs/SOLVERS.md` at the workspace root),
//! * **DC sweeps** with warm-started continuation ([`sweep::dc_sweep`]), and
//! * ready-made netlists of the paper's nonlinear subcircuits: the two-stage
//!   tanh-like `ptanh` circuit, the single-stage negative-weight inverter,
//!   and scalable resistor-ladder / crossbar-network benchmark topologies
//!   ([`circuits`]).
//!
//! # MNA formulation
//!
//! The unknown vector stacks the non-ground node voltages (indices
//! `0..num_nodes`) and one branch current per independent voltage source
//! (indices `num_nodes..`). Node rows are Kirchhoff current sums —
//! conductance stamps for resistors, backward-Euler companions for
//! capacitors in transient analysis, linearized companion models for EGTs —
//! and each voltage source contributes a branch row `v₊ − v₋ = V` plus
//! `±1` couplings that inject its branch current into the terminal node
//! rows. Every backend solves this same system (coordinate descent
//! eliminates the branch unknowns by clamping source-driven nodes) and all
//! honor the same dual convergence contract: the voltage update *and* the
//! KCL residual must settle below their tolerances.
//!
//! The substitution preserves what the downstream pipeline needs: a smooth
//! family of tanh-like transfer curves, nonlinearly parameterized by the seven
//! physical quantities ω = [R1ᴺ..R5ᴺ, W, L] of Tab. I.
//!
//! # Examples
//!
//! Solve a resistive divider:
//!
//! ```
//! use pnc_spice::{Circuit, DcSolver, GROUND};
//!
//! # fn main() -> Result<(), pnc_spice::SpiceError> {
//! let mut ckt = Circuit::new();
//! let vin = ckt.new_node();
//! let out = ckt.new_node();
//! ckt.vsource(vin, GROUND, 1.0)?;
//! ckt.resistor(vin, out, 1_000.0)?;
//! ckt.resistor(out, GROUND, 3_000.0)?;
//! let sol = DcSolver::new().solve(&ckt)?;
//! assert!((sol.voltage(out) - 0.75).abs() < 1e-9);
//! # Ok(())
//! # }
//! ```
//!
//! # Observability
//!
//! Every recovered solve feeds the `spice.*` counters and histograms of
//! `pnc-obs` (solve totals, Newton iterations, recovery-rung usage, KCL
//! residuals) — see `docs/METRICS.md` at the workspace root.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod backend;
mod cd;
pub mod circuits;
mod egt;
mod error;
mod mna;
mod netlist;
mod netlist_io;
pub mod sweep;
mod transient;

pub use backend::{SolverBackend, BACKEND_ENV_VAR};
pub use egt::{EgtModel, EgtOperatingPoint};
pub use error::SpiceError;
pub use mna::{
    DcSolver, FaultInjection, NewtonCache, RecoveryPolicy, RecoveryRung, Solution,
    SolveDiagnostics, NEWTON_REUSE_ENV_VAR,
};
pub use netlist::{Circuit, Device, DeviceId, Node, GROUND};
pub use netlist_io::parse_value;
pub use transient::{TransientSolver, Waveform};
