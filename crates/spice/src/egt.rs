use serde::{Deserialize, Serialize};

/// Behavioral model of a printed inorganic electrolyte-gated transistor (EGT).
///
/// Printed EGTs (Rasheed et al., *IEEE TED* 2018) are n-type devices that
/// operate at supply voltages around 1 V thanks to the huge gate capacitance
/// of the solid electrolyte. The pPDK used by the paper is proprietary, so we
/// substitute a smooth behavioral model that keeps the properties the
/// downstream pipeline depends on:
///
/// * drain current scales with the printed geometry ratio `W/L`,
/// * a threshold voltage around 0.3 V inside the 0–1 V signal range,
/// * smooth (C¹) triode/saturation interpolation so Newton iteration and the
///   surrogate-fitting loop behave well,
/// * channel-length modulation giving finite output conductance.
///
/// The current equation for `v_ds >= 0` is
///
/// ```text
/// v_ov = n_ss · ln(1 + exp((v_gs − v_th)/n_ss))        (softplus overdrive)
/// i_d  = (β/2) · v_ov² · tanh(2·v_ds / v_ov) · (1 + λ·v_ds)
/// β    = k_p · W / L
/// ```
///
/// which reduces to the Shichman–Hodges triode conductance `β·v_ov·v_ds` for
/// small `v_ds` and the saturation current `(β/2)·v_ov²·(1+λ·v_ds)` for large
/// `v_ds`. Negative `v_ds` is handled by source/drain exchange (the printed
/// device is symmetric).
///
/// # Examples
///
/// ```
/// use pnc_spice::EgtModel;
///
/// let egt = EgtModel::printed(400e-6, 40e-6); // W = 400 µm, L = 40 µm
/// let on = egt.evaluate(0.9, 1.0);
/// let off = egt.evaluate(0.0, 1.0);
/// assert!(on.id > 100.0 * off.id.max(1e-18));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EgtModel {
    /// Process transconductance parameter `k_p` in A/V² (per W/L square).
    pub kp: f64,
    /// Threshold voltage in volts.
    pub vth: f64,
    /// Channel-length modulation coefficient in 1/V.
    pub lambda: f64,
    /// Softplus smoothing width (an effective subthreshold slope) in volts.
    pub n_ss: f64,
    /// Printed channel width in meters.
    pub w: f64,
    /// Printed channel length in meters.
    pub l: f64,
}

/// The operating point of an EGT: current and small-signal derivatives.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EgtOperatingPoint {
    /// Drain current in amperes (positive into the drain for `v_ds >= 0`).
    pub id: f64,
    /// Transconductance `∂i_d/∂v_gs` in siemens.
    pub gm: f64,
    /// Output conductance `∂i_d/∂v_ds` in siemens.
    pub gds: f64,
}

impl EgtModel {
    /// Creates a model with the default printed-process parameters
    /// (`k_p = 10 µA/V²`, `v_th = 0.08 V`, `λ = 0.05 /V`, `n_ss = 30 mV`) and
    /// the given geometry.
    ///
    /// The defaults are chosen so the two-inverter ptanh circuit of the paper
    /// produces its full family of tanh-like transfer curves over the Tab. I
    /// design space at a 1 V supply: the low threshold keeps both stages
    /// switching even behind the passive attenuation of the two voltage
    /// dividers (whose ratios are below 0.5 by the `R1 > R2`, `R3 > R4`
    /// constraints), which matches the low thresholds reported for printed
    /// electrolyte-gated devices.
    pub fn printed(w: f64, l: f64) -> Self {
        EgtModel {
            kp: 1.0e-5,
            vth: 0.08,
            lambda: 0.05,
            n_ss: 0.03,
            w,
            l,
        }
    }

    /// The geometry gain `β = k_p · W / L`.
    pub fn beta(&self) -> f64 {
        self.kp * self.w / self.l
    }

    /// Evaluates current and derivatives at the given gate-source and
    /// drain-source voltages.
    ///
    /// Handles `v_ds < 0` by exchanging source and drain (the printed device
    /// is geometrically symmetric), so the returned derivatives are always
    /// with respect to the *original* terminal voltages.
    pub fn evaluate(&self, v_gs: f64, v_ds: f64) -> EgtOperatingPoint {
        if v_ds >= 0.0 {
            self.evaluate_forward(v_gs, v_ds)
        } else {
            // Exchange drain and source: v_gs' = v_gd = v_gs - v_ds,
            // v_ds' = -v_ds, i_d = -i_d'.
            let fwd = self.evaluate_forward(v_gs - v_ds, -v_ds);
            // Chain rule back to the original variables:
            // i_d(v_gs, v_ds) = -i'(v_gs - v_ds, -v_ds)
            EgtOperatingPoint {
                id: -fwd.id,
                gm: -fwd.gm,
                gds: fwd.gm + fwd.gds,
            }
        }
    }

    fn evaluate_forward(&self, v_gs: f64, v_ds: f64) -> EgtOperatingPoint {
        let beta = self.beta();
        // Softplus overdrive and its derivative (logistic sigmoid).
        let z = (v_gs - self.vth) / self.n_ss;
        let (v_ov, dvov_dvgs) = if z > 30.0 {
            (v_gs - self.vth, 1.0)
        } else if z < -30.0 {
            // Far below threshold: exponentially small but nonzero to keep
            // the Jacobian well conditioned.
            let e = z.exp();
            (self.n_ss * e, e / (1.0 + e))
        } else {
            let e = z.exp();
            (self.n_ss * (1.0 + e).ln(), e / (1.0 + e))
        };
        // Guard against a literally zero overdrive in the tanh argument.
        let v_ov = v_ov.max(1e-12);

        let u = 2.0 * v_ds / v_ov;
        let t = u.tanh();
        let sech2 = 1.0 - t * t;
        let clm = 1.0 + self.lambda * v_ds;

        let id = 0.5 * beta * v_ov * v_ov * t * clm;

        // ∂i/∂v_ov at fixed v_ds, then chain through the softplus.
        let di_dvov = 0.5 * beta * clm * (2.0 * v_ov * t - 2.0 * v_ds * sech2);
        let gm = di_dvov * dvov_dvgs;

        // ∂i/∂v_ds: tanh term and channel-length modulation term.
        let gds = 0.5 * beta * v_ov * v_ov * (sech2 * (2.0 / v_ov) * clm + t * self.lambda);

        EgtOperatingPoint { id, gm, gds }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> EgtModel {
        EgtModel::printed(400e-6, 40e-6)
    }

    #[test]
    fn beta_scales_with_geometry() {
        let narrow = EgtModel::printed(200e-6, 70e-6);
        let wide = EgtModel::printed(800e-6, 10e-6);
        assert!(wide.beta() > 20.0 * narrow.beta());
    }

    #[test]
    fn off_current_is_tiny_on_current_is_not() {
        let m = model();
        let off = m.evaluate(0.0, 1.0).id;
        let on = m.evaluate(1.0, 1.0).id;
        assert!(off >= 0.0);
        assert!(off < 1e-7);
        assert!(on > 1e-6);
    }

    #[test]
    fn current_is_monotone_in_vgs() {
        let m = model();
        let mut prev = -1.0;
        for i in 0..=20 {
            let vgs = i as f64 * 0.05;
            let id = m.evaluate(vgs, 0.8).id;
            assert!(id >= prev, "i_d must rise with v_gs");
            prev = id;
        }
    }

    #[test]
    fn current_is_monotone_in_vds() {
        let m = model();
        let mut prev = -1.0;
        for i in 0..=20 {
            let vds = i as f64 * 0.05;
            let id = m.evaluate(0.7, vds).id;
            assert!(id >= prev, "i_d must rise with v_ds (λ > 0)");
            prev = id;
        }
    }

    #[test]
    fn zero_vds_means_zero_current() {
        let m = model();
        assert_eq!(m.evaluate(0.8, 0.0).id, 0.0);
    }

    #[test]
    fn triode_limit_matches_linear_conductance() {
        let m = model();
        // For very small v_ds, i_d ≈ β·v_ov·v_ds.
        let vgs = 0.9;
        let vds = 1e-6;
        let z = (vgs - m.vth) / m.n_ss;
        let v_ov = m.n_ss * (1.0 + z.exp()).ln();
        let expected = m.beta() * v_ov * vds;
        let got = m.evaluate(vgs, vds).id;
        assert!(
            (got - expected).abs() < 1e-3 * expected,
            "triode current {got} vs expected {expected}"
        );
    }

    #[test]
    fn saturation_limit_matches_square_law() {
        let m = model();
        let vgs = 0.9;
        let vds = 5.0; // deep saturation
        let z = (vgs - m.vth) / m.n_ss;
        let v_ov = m.n_ss * (1.0 + z.exp()).ln();
        let expected = 0.5 * m.beta() * v_ov * v_ov * (1.0 + m.lambda * vds);
        let got = m.evaluate(vgs, vds).id;
        assert!((got - expected).abs() < 1e-3 * expected);
    }

    #[test]
    fn gm_matches_finite_difference() {
        let m = model();
        for &(vgs, vds) in &[(0.2, 0.5), (0.5, 0.5), (0.8, 0.1), (1.0, 1.0)] {
            let h = 1e-7;
            let fd = (m.evaluate(vgs + h, vds).id - m.evaluate(vgs - h, vds).id) / (2.0 * h);
            let gm = m.evaluate(vgs, vds).gm;
            assert!(
                (fd - gm).abs() <= 1e-4 * fd.abs().max(1e-12),
                "gm mismatch at ({vgs}, {vds}): analytic {gm}, fd {fd}"
            );
        }
    }

    #[test]
    fn gds_matches_finite_difference() {
        let m = model();
        for &(vgs, vds) in &[(0.5, 0.3), (0.8, 0.05), (1.0, 0.9)] {
            let h = 1e-7;
            let fd = (m.evaluate(vgs, vds + h).id - m.evaluate(vgs, vds - h).id) / (2.0 * h);
            let gds = m.evaluate(vgs, vds).gds;
            assert!(
                (fd - gds).abs() <= 1e-4 * fd.abs().max(1e-12),
                "gds mismatch at ({vgs}, {vds}): analytic {gds}, fd {fd}"
            );
        }
    }

    #[test]
    fn reverse_operation_is_antisymmetric() {
        // With drain and source exchanged the device is the same geometry,
        // so i_d(v_g − v_s, v_d − v_s) = −i_d evaluated with the roles swapped.
        let m = model();
        let fwd = m.evaluate(0.9, 0.4).id;
        // Swap: gate at 0.9 − 0.4 above the new source (old drain), v_ds −0.4.
        let rev = m.evaluate(0.5, -0.4).id;
        assert!((fwd + rev).abs() < 1e-12 * fwd.abs().max(1e-15));
    }

    #[test]
    fn reverse_derivatives_match_finite_difference() {
        let m = model();
        let (vgs, vds) = (0.7, -0.3);
        let h = 1e-7;
        let op = m.evaluate(vgs, vds);
        let fd_gm = (m.evaluate(vgs + h, vds).id - m.evaluate(vgs - h, vds).id) / (2.0 * h);
        let fd_gds = (m.evaluate(vgs, vds + h).id - m.evaluate(vgs, vds - h).id) / (2.0 * h);
        assert!((op.gm - fd_gm).abs() <= 1e-4 * fd_gm.abs().max(1e-12));
        assert!((op.gds - fd_gds).abs() <= 1e-4 * fd_gds.abs().max(1e-12));
    }

    #[test]
    fn current_is_continuous_across_vds_zero() {
        let m = model();
        let below = m.evaluate(0.8, -1e-9).id;
        let above = m.evaluate(0.8, 1e-9).id;
        assert!((below - above).abs() < 1e-12);
    }
}
