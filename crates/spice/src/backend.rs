//! Solver-backend selection: which algorithm computes DC operating points.
//!
//! The workspace carries three interchangeable backends behind one
//! [`DcSolver`](crate::DcSolver) API (full catalogue, selection guidance,
//! and tolerance contract in `docs/SOLVERS.md` at the workspace root):
//!
//! * [`SolverBackend::DenseLu`] — damped Newton over a dense MNA matrix
//!   with dense LU. The oracle: every other backend is validated against
//!   it. O(dim³) per factorization.
//! * [`SolverBackend::SparseLu`] — the same Newton iteration over
//!   compressed-sparse-column assembly with Markowitz-ordered sparse LU;
//!   the symbolic analysis is cached and reused across same-pattern
//!   refactorizations (Newton iterations, sweep points).
//! * [`SolverBackend::CoordDescent`] — the exact coordinate-descent method
//!   of Scellier, *A Fast Algorithm to Simulate Nonlinear Resistive
//!   Networks* (arXiv 2402.11674): no global linear solve at all; each
//!   node's KCL equation is solved exactly in turn until the whole network
//!   settles. Requires every voltage source to be referenced to ground.
//!
//! Selection is per-circuit via [`DcSolver::backend`](crate::DcSolver) or
//! process-wide via the [`BACKEND_ENV_VAR`] environment variable. An
//! unrecognized spelling is a hard [`SpiceError::Config`] error — never a
//! silent fallback.

use crate::SpiceError;
use serde::{Deserialize, Serialize};

/// Environment variable selecting the process-wide default solver backend
/// for [`DcSolver`](crate::DcSolver)s that do not pin one in code. Accepted
/// values: `dense-lu` (default when unset), `sparse-lu`, `coord-descent`.
pub const BACKEND_ENV_VAR: &str = "PNC_SPICE_BACKEND";

/// The algorithm a [`DcSolver`](crate::DcSolver) uses for operating-point
/// solves. See the module docs and `docs/SOLVERS.md` for the contract.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize, Default,
)]
pub enum SolverBackend {
    /// Damped Newton over dense MNA assembly with dense LU — the oracle
    /// backend, and the default.
    #[default]
    DenseLu,
    /// Damped Newton over sparse MNA assembly with Markowitz-ordered sparse
    /// LU and cached symbolic analysis.
    SparseLu,
    /// Exact nonlinear coordinate descent (Scellier 2024): per-node scalar
    /// solves swept until global KCL convergence.
    CoordDescent,
}

impl SolverBackend {
    /// Stable lower-kebab-case name used in configuration, metrics, and
    /// bench reports.
    pub fn as_str(self) -> &'static str {
        match self {
            SolverBackend::DenseLu => "dense-lu",
            SolverBackend::SparseLu => "sparse-lu",
            SolverBackend::CoordDescent => "coord-descent",
        }
    }

    /// Every backend, in documentation order (benches iterate this).
    pub fn all() -> [SolverBackend; 3] {
        [
            SolverBackend::DenseLu,
            SolverBackend::SparseLu,
            SolverBackend::CoordDescent,
        ]
    }

    /// Parses a backend name: `dense-lu`, `sparse-lu`, or `coord-descent`
    /// (underscores accepted for hyphens), case-insensitively and ignoring
    /// surrounding whitespace.
    ///
    /// # Errors
    ///
    /// Returns [`SpiceError::Config`] for any other spelling. There is no
    /// silent fallback: a typo'd backend in a deployment environment must
    /// fail loudly, not quietly solve with a different algorithm.
    pub fn parse(raw: &str) -> Result<Self, SpiceError> {
        match raw.trim().to_ascii_lowercase().replace('_', "-").as_str() {
            "dense-lu" => Ok(SolverBackend::DenseLu),
            "sparse-lu" => Ok(SolverBackend::SparseLu),
            "coord-descent" => Ok(SolverBackend::CoordDescent),
            other => Err(SpiceError::Config {
                detail: format!(
                    "unrecognized solver backend {other:?} (expected dense-lu, sparse-lu, or \
                     coord-descent)"
                ),
            }),
        }
    }

    /// Reads the backend from the [`BACKEND_ENV_VAR`] environment variable.
    /// Unset means [`Self::DenseLu`]; a set but unrecognized value is a hard
    /// [`SpiceError::Config`] error surfaced to the caller.
    ///
    /// The variable is re-read on every call (solves are orders of magnitude
    /// more expensive than an environment lookup), so tests and long-lived
    /// processes observe changes immediately.
    ///
    /// # Errors
    ///
    /// Returns [`SpiceError::Config`] when the variable is set to anything
    /// other than a recognized backend name.
    pub fn from_env() -> Result<Self, SpiceError> {
        match std::env::var(BACKEND_ENV_VAR) {
            Ok(raw) => Self::parse(&raw).map_err(|_| SpiceError::Config {
                detail: format!(
                    "environment variable {BACKEND_ENV_VAR}={raw:?} is not a valid solver \
                     backend (expected dense-lu, sparse-lu, or coord-descent)"
                ),
            }),
            Err(_) => Ok(SolverBackend::DenseLu),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_accepts_all_spellings() {
        assert_eq!(
            SolverBackend::parse("dense-lu").unwrap(),
            SolverBackend::DenseLu
        );
        assert_eq!(
            SolverBackend::parse(" Sparse_LU ").unwrap(),
            SolverBackend::SparseLu
        );
        assert_eq!(
            SolverBackend::parse("COORD-DESCENT").unwrap(),
            SolverBackend::CoordDescent
        );
    }

    #[test]
    fn parse_rejects_unknown_with_typed_error() {
        let err = SolverBackend::parse("newton").unwrap_err();
        assert!(matches!(err, SpiceError::Config { .. }), "{err:?}");
        assert!(err.to_string().contains("newton"), "{err}");
    }

    #[test]
    fn names_round_trip() {
        for b in SolverBackend::all() {
            assert_eq!(SolverBackend::parse(b.as_str()).unwrap(), b);
        }
    }

    #[test]
    fn default_is_the_oracle() {
        assert_eq!(SolverBackend::default(), SolverBackend::DenseLu);
    }
}
