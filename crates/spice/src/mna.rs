use crate::{Circuit, Device, SpiceError};
use pnc_linalg::{Lu, Matrix};

/// The result of a DC operating-point analysis.
///
/// Node voltages are indexed by [`Node`](crate::Node); branch currents are
/// reported for voltage sources in insertion order.
#[derive(Debug, Clone, PartialEq)]
pub struct Solution {
    /// Voltage of every node including ground at index 0.
    voltages: Vec<f64>,
    /// Current through each voltage source (flowing from `plus` through the
    /// source to `minus`), in source insertion order.
    source_currents: Vec<f64>,
    /// Newton iterations used.
    iterations: usize,
}

impl Solution {
    /// Voltage at `node` in volts.
    pub fn voltage(&self, node: crate::Node) -> f64 {
        self.voltages[node.index()]
    }

    /// All node voltages, ground first.
    pub fn voltages(&self) -> &[f64] {
        &self.voltages
    }

    /// Current through the `k`-th voltage source (insertion order among
    /// voltage sources), in amperes. Positive current flows into the `plus`
    /// terminal (i.e. the source is sinking current).
    pub fn source_current(&self, k: usize) -> f64 {
        self.source_currents[k]
    }

    /// Newton iterations the solve needed.
    pub fn iterations(&self) -> usize {
        self.iterations
    }
}

/// Damped Newton–Raphson DC operating-point solver over an MNA formulation.
///
/// Each iteration linearizes the nonlinear devices (EGTs) at the present
/// estimate, assembles the modified-nodal-analysis matrix (node equations
/// plus one branch equation per voltage source), solves it with LU, and takes
/// a damped step. A `gmin` conductance from every node to ground keeps the
/// system well posed even with floating subcircuits.
///
/// # Examples
///
/// ```
/// use pnc_spice::{Circuit, DcSolver, GROUND};
///
/// # fn main() -> Result<(), pnc_spice::SpiceError> {
/// let mut ckt = Circuit::new();
/// let n = ckt.new_node();
/// ckt.isource(GROUND, n, 1e-3)?;
/// ckt.resistor(n, GROUND, 2_000.0)?;
/// let sol = DcSolver::new().solve(&ckt)?;
/// assert!((sol.voltage(n) - 2.0).abs() < 1e-6);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct DcSolver {
    /// Maximum Newton iterations before reporting no convergence.
    pub max_iterations: usize,
    /// Convergence tolerance on the infinity norm of the voltage update, in
    /// volts.
    pub tolerance: f64,
    /// Per-iteration limit on any voltage change, in volts (Newton damping).
    pub max_step: f64,
    /// Safety conductance from every node to ground, in siemens.
    pub gmin: f64,
}

impl Default for DcSolver {
    fn default() -> Self {
        DcSolver {
            max_iterations: 500,
            tolerance: 1e-10,
            max_step: 0.25,
            gmin: 1e-12,
        }
    }
}

impl DcSolver {
    /// Creates a solver with default settings suitable for the 1 V printed
    /// circuits in this workspace.
    pub fn new() -> Self {
        DcSolver::default()
    }

    /// Solves the DC operating point starting from an all-zero voltage guess.
    ///
    /// # Errors
    ///
    /// Returns [`SpiceError::NoConvergence`] if the Newton iteration does not
    /// settle within the budget and [`SpiceError::SingularSystem`] if the MNA
    /// matrix cannot be factored (e.g. a loop of ideal sources).
    pub fn solve(&self, circuit: &Circuit) -> Result<Solution, SpiceError> {
        self.solve_with_guess(circuit, None)
    }

    /// Solves the DC operating point from a warm-start guess of node
    /// voltages (ground excluded, i.e. `guess.len() == circuit.num_nodes()`).
    ///
    /// Sweeps use this to continue from the previous point, which both speeds
    /// up convergence and keeps the solver on the same branch of the
    /// (monotone) transfer curve.
    ///
    /// # Errors
    ///
    /// As for [`DcSolver::solve`]; additionally returns
    /// [`SpiceError::BadDeviceRef`] if the guess has the wrong length.
    pub fn solve_with_guess(
        &self,
        circuit: &Circuit,
        guess: Option<&[f64]>,
    ) -> Result<Solution, SpiceError> {
        self.newton_solve(circuit, guess, None)
    }

    /// Newton iteration shared by DC analysis (`cap_state` = `None`,
    /// capacitors open) and the transient solver's backward-Euler steps
    /// (`cap_state` = previous node voltages including ground, and the
    /// timestep).
    pub(crate) fn newton_solve(
        &self,
        circuit: &Circuit,
        guess: Option<&[f64]>,
        cap_state: Option<(&[f64], f64)>,
    ) -> Result<Solution, SpiceError> {
        let n = circuit.num_nodes();
        let m = circuit.num_vsources();
        let dim = n + m;

        let mut x = vec![0.0; dim];
        if let Some(g) = guess {
            if g.len() != n {
                return Err(SpiceError::BadDeviceRef {
                    detail: format!("guess has {} entries, circuit has {} nodes", g.len(), n),
                });
            }
            x[..n].copy_from_slice(g);
        }

        if dim == 0 {
            return Ok(Solution {
                voltages: vec![0.0],
                source_currents: Vec::new(),
                iterations: 0,
            });
        }

        let mut last_update = f64::INFINITY;
        for iter in 0..self.max_iterations {
            let (g, rhs) = self.assemble(circuit, &x, cap_state);
            let lu = Lu::factor(&g)?;
            let x_new = lu.solve(&rhs)?;

            // Damped update: limit each voltage step.
            let mut max_delta = 0.0_f64;
            for i in 0..dim {
                let mut delta = x_new[i] - x[i];
                // Only damp node voltages; source branch currents may move freely.
                if i < n {
                    delta = delta.clamp(-self.max_step, self.max_step);
                }
                x[i] += delta;
                if i < n {
                    max_delta = max_delta.max(delta.abs());
                }
            }
            last_update = max_delta;
            if max_delta < self.tolerance {
                let mut voltages = vec![0.0; n + 1];
                voltages[1..].copy_from_slice(&x[..n]);
                return Ok(Solution {
                    voltages,
                    source_currents: x[n..].to_vec(),
                    iterations: iter + 1,
                });
            }
        }

        Err(SpiceError::NoConvergence {
            iterations: self.max_iterations,
            residual: last_update,
        })
    }

    /// Assembles the linearized MNA system `G·x = rhs` at the estimate `x`.
    ///
    /// With `cap_state = Some((prev_voltages, h))`, capacitors contribute
    /// their backward-Euler companion (conductance `C/h` plus a history
    /// current); otherwise they are open circuits (DC analysis).
    fn assemble(
        &self,
        circuit: &Circuit,
        x: &[f64],
        cap_state: Option<(&[f64], f64)>,
    ) -> (Matrix, Vec<f64>) {
        let n = circuit.num_nodes();
        let m = circuit.num_vsources();
        let dim = n + m;
        let mut g = Matrix::zeros(dim, dim);
        let mut rhs = vec![0.0; dim];

        // gmin from every node to ground keeps floating nodes solvable.
        for i in 0..n {
            g[(i, i)] += self.gmin;
        }

        // Voltage of a node under the current estimate (ground = 0).
        let volt = |node: crate::Node| -> f64 {
            if node.index() == 0 {
                0.0
            } else {
                x[node.index() - 1]
            }
        };
        // Row/col index of a node in the MNA system, None for ground.
        let idx = |node: crate::Node| -> Option<usize> {
            if node.index() == 0 {
                None
            } else {
                Some(node.index() - 1)
            }
        };

        let mut vsrc_counter = 0usize;
        for device in circuit.devices() {
            match device {
                Device::Resistor { a, b, resistance } => {
                    let cond = 1.0 / resistance;
                    if let Some(i) = idx(*a) {
                        g[(i, i)] += cond;
                    }
                    if let Some(j) = idx(*b) {
                        g[(j, j)] += cond;
                    }
                    if let (Some(i), Some(j)) = (idx(*a), idx(*b)) {
                        g[(i, j)] -= cond;
                        g[(j, i)] -= cond;
                    }
                }
                Device::VSource {
                    plus,
                    minus,
                    voltage,
                } => {
                    let k = n + vsrc_counter;
                    vsrc_counter += 1;
                    if let Some(i) = idx(*plus) {
                        g[(i, k)] += 1.0;
                        g[(k, i)] += 1.0;
                    }
                    if let Some(j) = idx(*minus) {
                        g[(j, k)] -= 1.0;
                        g[(k, j)] -= 1.0;
                    }
                    rhs[k] = *voltage;
                }
                Device::Capacitor { a, b, capacitance } => {
                    let Some((prev, h)) = cap_state else {
                        continue; // open circuit in DC analysis
                    };
                    let g_c = capacitance / h;
                    let v_prev = prev[a.index()] - prev[b.index()];
                    if let Some(i) = idx(*a) {
                        g[(i, i)] += g_c;
                        rhs[i] += g_c * v_prev;
                    }
                    if let Some(j) = idx(*b) {
                        g[(j, j)] += g_c;
                        rhs[j] -= g_c * v_prev;
                    }
                    if let (Some(i), Some(j)) = (idx(*a), idx(*b)) {
                        g[(i, j)] -= g_c;
                        g[(j, i)] -= g_c;
                    }
                }
                Device::ISource { from, to, current } => {
                    if let Some(i) = idx(*from) {
                        rhs[i] -= current;
                    }
                    if let Some(j) = idx(*to) {
                        rhs[j] += current;
                    }
                }
                Device::Egt {
                    drain,
                    gate,
                    source,
                    model,
                } => {
                    let vgs = volt(*gate) - volt(*source);
                    let vds = volt(*drain) - volt(*source);
                    let op = model.evaluate(vgs, vds);
                    // Companion model: i_d ≈ i_eq + gm·v_gs + gds·v_ds.
                    let i_eq = op.id - op.gm * vgs - op.gds * vds;

                    let d = idx(*drain);
                    let gt = idx(*gate);
                    let s = idx(*source);

                    // KCL at drain: +i_d leaves the node into the channel.
                    if let Some(di) = d {
                        rhs[di] -= i_eq;
                        if let Some(gi) = gt {
                            g[(di, gi)] += op.gm;
                        }
                        g[(di, di)] += op.gds;
                        if let Some(si) = s {
                            g[(di, si)] -= op.gm + op.gds;
                        }
                    }
                    // KCL at source: −i_d (channel current enters the node).
                    if let Some(si) = s {
                        rhs[si] += i_eq;
                        if let Some(gi) = gt {
                            g[(si, gi)] -= op.gm;
                        }
                        if let Some(di) = d {
                            g[(si, di)] -= op.gds;
                        }
                        g[(si, si)] += op.gm + op.gds;
                    }
                    // Gate draws no DC current.
                }
            }
        }

        (g, rhs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{EgtModel, GROUND};

    #[test]
    fn voltage_divider() {
        let mut c = Circuit::new();
        let vin = c.new_node();
        let mid = c.new_node();
        c.vsource(vin, GROUND, 1.0).unwrap();
        c.resistor(vin, mid, 1_000.0).unwrap();
        c.resistor(mid, GROUND, 1_000.0).unwrap();
        let sol = DcSolver::new().solve(&c).unwrap();
        assert!((sol.voltage(mid) - 0.5).abs() < 1e-9);
        assert!((sol.voltage(vin) - 1.0).abs() < 1e-12);
        // Source sinks the loop current: V/R_total = 0.5 mA flowing out of
        // the plus terminal, i.e. −0.5 mA into it.
        assert!((sol.source_current(0) + 0.5e-3).abs() < 1e-9);
    }

    #[test]
    fn two_sources_and_superposition() {
        // Two 1 V sources through 1 kΩ each into a common node with 1 kΩ to
        // ground: node voltage is 2/3 V.
        let mut c = Circuit::new();
        let a = c.new_node();
        let b = c.new_node();
        let out = c.new_node();
        c.vsource(a, GROUND, 1.0).unwrap();
        c.vsource(b, GROUND, 1.0).unwrap();
        c.resistor(a, out, 1_000.0).unwrap();
        c.resistor(b, out, 1_000.0).unwrap();
        c.resistor(out, GROUND, 1_000.0).unwrap();
        let sol = DcSolver::new().solve(&c).unwrap();
        assert!((sol.voltage(out) - 2.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn current_source_into_resistor() {
        let mut c = Circuit::new();
        let n = c.new_node();
        c.isource(GROUND, n, 2e-3).unwrap();
        c.resistor(n, GROUND, 500.0).unwrap();
        let sol = DcSolver::new().solve(&c).unwrap();
        assert!((sol.voltage(n) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn floating_node_is_pulled_to_ground_by_gmin() {
        let mut c = Circuit::new();
        let float = c.new_node();
        let used = c.new_node();
        c.vsource(used, GROUND, 1.0).unwrap();
        c.resistor(used, GROUND, 100.0).unwrap();
        // `float` has no device at all.
        let _ = float;
        let sol = DcSolver::new().solve(&c).unwrap();
        assert!(sol.voltage(float).abs() < 1e-9);
    }

    #[test]
    fn crossbar_weighted_sum_matches_eq1() {
        // A 2-input resistor crossbar (Fig. 1 left): V_z should equal the
        // conductance-weighted mean of inputs and bias, Eq. (1) of the paper.
        let g1 = 1.0 / 2_000.0;
        let g2 = 1.0 / 5_000.0;
        let gb = 1.0 / 10_000.0;
        let gd = 1.0 / 4_000.0;
        let (v1, v2, vb) = (0.8, 0.3, 1.0);

        let mut c = Circuit::new();
        let n1 = c.new_node();
        let n2 = c.new_node();
        let nb = c.new_node();
        let z = c.new_node();
        c.vsource(n1, GROUND, v1).unwrap();
        c.vsource(n2, GROUND, v2).unwrap();
        c.vsource(nb, GROUND, vb).unwrap();
        c.resistor(n1, z, 1.0 / g1).unwrap();
        c.resistor(n2, z, 1.0 / g2).unwrap();
        c.resistor(nb, z, 1.0 / gb).unwrap();
        c.resistor(z, GROUND, 1.0 / gd).unwrap();

        let sol = DcSolver::new().solve(&c).unwrap();
        let g_total = g1 + g2 + gb + gd;
        let expected = (g1 * v1 + g2 * v2 + gb * vb) / g_total;
        assert!((sol.voltage(z) - expected).abs() < 1e-9);
    }

    #[test]
    fn egt_inverter_output_swings() {
        let vdd = 1.0;
        let model = EgtModel::printed(600e-6, 20e-6);

        let out_at = |vin: f64| -> f64 {
            let mut c = Circuit::new();
            let supply = c.new_node();
            let input = c.new_node();
            let out = c.new_node();
            c.vsource(supply, GROUND, vdd).unwrap();
            c.vsource(input, GROUND, vin).unwrap();
            c.resistor(supply, out, 200_000.0).unwrap();
            c.egt(out, input, GROUND, model).unwrap();
            DcSolver::new().solve(&c).unwrap().voltage(out)
        };

        let high = out_at(0.0);
        let low = out_at(1.0);
        assert!(
            high > 0.95,
            "inverter output should be near VDD when off, got {high}"
        );
        assert!(
            low < 0.3,
            "inverter output should be pulled low when on, got {low}"
        );
    }

    #[test]
    fn egt_inverter_is_monotone_decreasing() {
        let model = EgtModel::printed(400e-6, 40e-6);
        let mut c = Circuit::new();
        let supply = c.new_node();
        let input = c.new_node();
        let out = c.new_node();
        c.vsource(supply, GROUND, 1.0).unwrap();
        let vin_id = c.vsource(input, GROUND, 0.0).unwrap();
        c.resistor(supply, out, 100_000.0).unwrap();
        c.egt(out, input, GROUND, model).unwrap();

        let solver = DcSolver::new();
        let mut prev = f64::INFINITY;
        let mut guess: Option<Vec<f64>> = None;
        for i in 0..=20 {
            let vin = i as f64 / 20.0;
            c.set_vsource(vin_id, vin).unwrap();
            let sol = solver.solve_with_guess(&c, guess.as_deref()).unwrap();
            let v = sol.voltage(out);
            assert!(
                v <= prev + 1e-9,
                "inverter must be monotone: {v} after {prev}"
            );
            prev = v;
            guess = Some(sol.voltages()[1..].to_vec());
        }
    }

    #[test]
    fn warm_start_reduces_iterations() {
        let model = EgtModel::printed(400e-6, 40e-6);
        let mut c = Circuit::new();
        let supply = c.new_node();
        let input = c.new_node();
        let out = c.new_node();
        c.vsource(supply, GROUND, 1.0).unwrap();
        c.vsource(input, GROUND, 0.5).unwrap();
        c.resistor(supply, out, 100_000.0).unwrap();
        c.egt(out, input, GROUND, model).unwrap();

        let solver = DcSolver::new();
        let cold = solver.solve(&c).unwrap();
        let warm = solver
            .solve_with_guess(&c, Some(&cold.voltages()[1..]))
            .unwrap();
        assert!(
            warm.iterations() <= 2,
            "warm start took {} iterations",
            warm.iterations()
        );
        assert!((warm.voltage(out) - cold.voltage(out)).abs() < 1e-8);
    }

    #[test]
    fn wrong_guess_length_is_rejected() {
        let mut c = Circuit::new();
        let n = c.new_node();
        c.resistor(n, GROUND, 1.0).unwrap();
        let err = DcSolver::new().solve_with_guess(&c, Some(&[0.0, 0.0]));
        assert!(matches!(err, Err(SpiceError::BadDeviceRef { .. })));
    }

    #[test]
    fn empty_circuit_solves_trivially() {
        let c = Circuit::new();
        let sol = DcSolver::new().solve(&c).unwrap();
        assert_eq!(sol.voltages(), &[0.0]);
    }
}
