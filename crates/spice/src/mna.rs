use crate::backend::SolverBackend;
use crate::{Circuit, Device, SpiceError};
use pnc_linalg::sparse::{CscMatrix, SparseBuilder, SparseLu};
use pnc_linalg::{LinalgError, Lu, Matrix};
use pnc_obs::{Counter, FieldValue, Histogram};
use serde::{Deserialize, Serialize};
use std::sync::OnceLock;

// Observability: one record per (possibly recovered) solve, taken at the
// `solve_recovered` wrapper so plain DC solves, every recovery rung, and
// transient backward-Euler steps all land in the same tallies. Catalogued in
// docs/METRICS.md.
static OBS_SOLVES: Counter = Counter::new("spice.solve.total");
static OBS_SOLVE_FAILURES: Counter = Counter::new("spice.solve.failures");
static OBS_NEWTON_ITERATIONS: Counter = Counter::new("spice.newton.iterations");
static OBS_NEWTON_ATTEMPTS: Counter = Counter::new("spice.newton.attempts");
static OBS_NEWTON_FACTORIZATIONS: Counter = Counter::new("spice.newton.factorizations");
static OBS_RUNG_PLAIN: Counter = Counter::new("spice.recovery.plain");
static OBS_RUNG_PERTURBED: Counter = Counter::new("spice.recovery.perturbed_guess");
static OBS_RUNG_GMIN: Counter = Counter::new("spice.recovery.gmin_stepping");
static OBS_RUNG_SOURCE: Counter = Counter::new("spice.recovery.source_stepping");
static OBS_GMIN_STEPS: Counter = Counter::new("spice.recovery.gmin_steps");
static OBS_SOURCE_STEPS: Counter = Counter::new("spice.recovery.source_steps");
static OBS_RESIDUAL: Histogram = Histogram::new("spice.newton.residual");
// Backend-dispatch tallies: one per-solve count on the backend that ran it,
// plus the sparse/coordinate-descent work counters those backends emit.
static OBS_BACKEND_DENSE: Counter = Counter::new("spice.backend.dense_lu");
static OBS_BACKEND_SPARSE: Counter = Counter::new("spice.backend.sparse_lu");
static OBS_BACKEND_CD: Counter = Counter::new("spice.backend.coord_descent");
pub(crate) static OBS_CD_SWEEPS: Counter = Counter::new("spice.backend.cd_sweeps");
static OBS_SPARSE_SYMBOLIC: Counter = Counter::new("spice.backend.sparse_symbolic");
static OBS_SPARSE_REFACTOR: Counter = Counter::new("spice.backend.sparse_refactor");

/// Registers the crate's whole metric set so summaries always carry every
/// documented key, including zero-valued failure/recovery counters.
fn obs_register() {
    static ONCE: std::sync::Once = std::sync::Once::new();
    ONCE.call_once(|| {
        OBS_SOLVES.register();
        OBS_SOLVE_FAILURES.register();
        OBS_NEWTON_ITERATIONS.register();
        OBS_NEWTON_ATTEMPTS.register();
        OBS_NEWTON_FACTORIZATIONS.register();
        OBS_RUNG_PLAIN.register();
        OBS_RUNG_PERTURBED.register();
        OBS_RUNG_GMIN.register();
        OBS_RUNG_SOURCE.register();
        OBS_GMIN_STEPS.register();
        OBS_SOURCE_STEPS.register();
        OBS_RESIDUAL.register();
        OBS_BACKEND_DENSE.register();
        OBS_BACKEND_SPARSE.register();
        OBS_BACKEND_CD.register();
        OBS_CD_SWEEPS.register();
        OBS_SPARSE_SYMBOLIC.register();
        OBS_SPARSE_REFACTOR.register();
    });
}

/// Environment variable gating Jacobian reuse in [`DcSolver`] (see
/// [`DcSolver::newton_reuse`]). Set to `0`, `off`, or `false` to force
/// classic full-Newton solves even when a [`NewtonCache`] is supplied.
pub const NEWTON_REUSE_ENV_VAR: &str = "PNC_NEWTON_REUSE";

/// Process-wide default of [`DcSolver::newton_reuse`], read once from
/// [`NEWTON_REUSE_ENV_VAR`]; reuse is on unless explicitly disabled.
fn newton_reuse_default() -> bool {
    static REUSE: OnceLock<bool> = OnceLock::new();
    *REUSE.get_or_init(|| match std::env::var(NEWTON_REUSE_ENV_VAR) {
        Ok(v) => {
            let v = v.trim().to_ascii_lowercase();
            !matches!(v.as_str(), "0" | "off" | "false")
        }
        Err(_) => true,
    })
}

/// Modified-Newton keeps a stale Jacobian only while each iteration shrinks
/// the residual to at most this fraction of the previous one; slower
/// contraction counts as a stall and triggers a refactorization.
const STALL_CONTRACTION: f64 = 0.5;

/// A factorization carried across warm-started solves is dropped when the
/// new starting point moved farther than this (infinity norm, volts) from
/// the operating point it was taken at.
const CACHE_GUESS_TOL: f64 = 0.05;

/// Reusable modified-Newton state: the most recent Jacobian LU
/// factorization and the operating point it was taken at.
///
/// Thread one cache through consecutive warm-started solves (e.g. the
/// points of a transfer-curve sweep) via [`DcSolver::solve_with_cache`].
/// While the residual keeps contracting geometrically the stale
/// factorization is reused — across iterations *and* across sweep points
/// whose operating point moved little — so iterations-per-factorization
/// rises above one. The cache is pure acceleration state: every iteration
/// still evaluates the exact residual of the freshly assembled system, so
/// dropping (or never supplying) a cache only costs speed, never accuracy.
#[derive(Debug, Default)]
pub struct NewtonCache {
    lu: Option<Lu>,
    /// Sparse counterpart of `lu`, used by the `sparse-lu` backend: carrying
    /// it across warm-started solves reuses both the numeric factorization
    /// (while the residual contracts) and its symbolic pivot order (on every
    /// refactorization).
    sparse: Option<SparseLu>,
    x_at_factor: Vec<f64>,
}

impl NewtonCache {
    /// Creates an empty (cold) cache.
    pub fn new() -> Self {
        NewtonCache::default()
    }

    /// `true` when the cache holds a factorization ready for reuse.
    pub fn is_warm(&self) -> bool {
        self.lu.is_some() || self.sparse.is_some()
    }

    /// Drops any held factorization.
    pub fn clear(&mut self) {
        self.lu = None;
        self.sparse = None;
        self.x_at_factor.clear();
    }

    /// `true` if the held dense factorization can be trusted for a solve of
    /// dimension `dim` starting from `x`.
    fn matches(&self, dim: usize, x: &[f64]) -> bool {
        self.lu.is_some() && self.guess_close(dim, x)
    }

    /// Sparse-backend counterpart of [`Self::matches`].
    fn matches_sparse(&self, dim: usize, x: &[f64]) -> bool {
        self.sparse.as_ref().is_some_and(|lu| lu.dim() == dim) && self.guess_close(dim, x)
    }

    fn guess_close(&self, dim: usize, x: &[f64]) -> bool {
        if self.x_at_factor.len() != dim {
            return false;
        }
        let mut dist = 0.0_f64;
        for (a, b) in self.x_at_factor.iter().zip(x) {
            dist = dist.max((a - b).abs());
        }
        dist <= CACHE_GUESS_TOL
    }
}

impl RecoveryRung {
    /// Stable lower-snake-case name used in metrics and sink events.
    pub fn as_str(self) -> &'static str {
        match self {
            RecoveryRung::Plain => "plain",
            RecoveryRung::PerturbedGuess => "perturbed_guess",
            RecoveryRung::GminStepping => "gmin_stepping",
            RecoveryRung::SourceStepping => "source_stepping",
        }
    }
}

/// Which rung of the convergence-recovery ladder produced a solution.
///
/// The variants are ordered by escalation cost: [`DcSolver`] tries them in
/// declaration order and stops at the first rung that converges, so
/// `rung == RecoveryRung::Plain` means no recovery was needed at all.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub enum RecoveryRung {
    /// The plain damped Newton loop from the caller's initial guess.
    #[default]
    Plain,
    /// Retry from a deterministically perturbed initial guess.
    PerturbedGuess,
    /// Gmin stepping: solve with a large shunt conductance on every node and
    /// relax it geometrically back to the configured `gmin`, warm-starting
    /// each step from the previous solution.
    GminStepping,
    /// Source stepping: ramp every independent source from zero to its full
    /// value, continuing from each intermediate solution.
    SourceStepping,
}

/// Structured outcome of a (possibly recovered) Newton solve.
///
/// Every [`Solution`] carries one of these instead of a bare iteration
/// count, so sweep and dataset layers can account for *how* each operating
/// point was obtained — not just that it was.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SolveDiagnostics {
    /// Total Newton iterations (LU solves) across all attempts, including
    /// failed rungs.
    pub iterations: usize,
    /// Infinity norm of the KCL residual (amperes on node rows, volts on
    /// source branch rows) at the accepted solution.
    pub residual: f64,
    /// The recovery rung that produced the solution.
    pub rung: RecoveryRung,
    /// Newton attempts made, counting every continuation step; `1` means the
    /// plain solve succeeded directly.
    pub attempts: usize,
    /// Jacobian LU factorizations performed across the counted successful
    /// attempts (failed attempts are excluded — their factorization count is
    /// not recoverable from the error). Classic full Newton factors once per
    /// iteration; the Jacobian-reuse path ([`DcSolver::newton_reuse`] with a
    /// [`NewtonCache`]) factors only when contraction stalls, so
    /// `iterations / factorizations` measures the reuse win. `0` is possible
    /// when a solve converges entirely on a factorization carried over from
    /// an earlier warm-started solve.
    pub factorizations: usize,
}

impl SolveDiagnostics {
    /// `true` if the plain Newton loop converged without any recovery.
    pub fn recovered(&self) -> bool {
        self.rung != RecoveryRung::Plain
    }
}

/// Configuration of the convergence-recovery ladder of [`DcSolver`].
///
/// When the plain damped Newton loop fails (iteration budget exhausted, a
/// stalled update, or a singular Jacobian mid-iteration), the solver
/// escalates through the enabled rungs in [`RecoveryRung`] order. Every rung
/// is deterministic — no randomness, no dependence on thread scheduling — so
/// recovered sweeps stay bit-identical across thread counts.
///
/// Set a rung's step/attempt count to `0` to disable it;
/// [`RecoveryPolicy::disabled`] turns the ladder off entirely, restoring the
/// historical fail-fast behavior.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RecoveryPolicy {
    /// Number of perturbed-guess retries (rung 1). Each retry `k` starts from
    /// the caller's guess (or zero) shifted by `k · perturbation_scale` with
    /// alternating sign per node.
    pub guess_perturbations: usize,
    /// Magnitude of the deterministic initial-guess perturbation, in volts.
    pub perturbation_scale: f64,
    /// Number of geometric gmin relaxation steps (rung 2); the shunt
    /// conductance travels from `gmin_initial` down to the solver's `gmin`.
    pub gmin_steps: usize,
    /// Starting shunt conductance of gmin stepping, in siemens.
    pub gmin_initial: f64,
    /// Number of source-ramp steps (rung 3); sources scale through
    /// `k / source_steps` for `k = 1..=source_steps`. Only applied to DC
    /// solves (never inside a transient timestep).
    pub source_steps: usize,
}

impl Default for RecoveryPolicy {
    fn default() -> Self {
        RecoveryPolicy {
            guess_perturbations: 2,
            perturbation_scale: 0.1,
            gmin_steps: 8,
            gmin_initial: 1e-3,
            source_steps: 8,
        }
    }
}

impl RecoveryPolicy {
    /// Disables every rung: a failed plain Newton solve errors immediately.
    pub fn disabled() -> Self {
        RecoveryPolicy {
            guess_perturbations: 0,
            perturbation_scale: 0.0,
            gmin_steps: 0,
            gmin_initial: 0.0,
            source_steps: 0,
        }
    }
}

/// Deterministic fault injection for exercising the recovery ladder and the
/// downstream degradation paths in tests.
///
/// When any independent voltage source in the circuit matches one of
/// `trigger_values` (within `tolerance`), Newton attempts on rungs *below*
/// `min_successful_rung` fail instantly with
/// [`SpiceError::NoConvergence`]; attempts at or above that rung run
/// normally. `min_successful_rung: None` makes matching solves unrecoverable
/// at every rung.
///
/// This is a test-only diagnostic device: it lets a test force
/// non-convergence on chosen sweep points (a sweep grid value is a vsource
/// value) and assert that the ladder rescues them — or, with `None`, that
/// failure accounting degrades gracefully. Production solvers leave
/// [`DcSolver::fault_injection`] as `None`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultInjection {
    /// Voltage-source values (in volts) that trigger an injected failure.
    pub trigger_values: Vec<f64>,
    /// Absolute tolerance used when matching trigger values.
    pub tolerance: f64,
    /// First rung allowed to succeed on a triggered solve; `None` means no
    /// rung succeeds.
    pub min_successful_rung: Option<RecoveryRung>,
}

impl FaultInjection {
    /// A plan that fails plain Newton (and perturbed restarts) on the given
    /// source values but lets gmin stepping rescue the solve.
    pub fn recoverable_at(trigger_values: Vec<f64>) -> Self {
        FaultInjection {
            trigger_values,
            tolerance: 1e-9,
            min_successful_rung: Some(RecoveryRung::GminStepping),
        }
    }

    /// A plan under which the triggered solves fail at every rung.
    pub fn unrecoverable_at(trigger_values: Vec<f64>) -> Self {
        FaultInjection {
            trigger_values,
            tolerance: 1e-9,
            min_successful_rung: None,
        }
    }

    fn triggers(&self, circuit: &Circuit, rung: RecoveryRung) -> bool {
        let below = match self.min_successful_rung {
            Some(min) => rung < min,
            None => true,
        };
        below
            && circuit.devices().iter().any(|d| {
                if let Device::VSource { voltage, .. } = d {
                    self.trigger_values
                        .iter()
                        .any(|t| (voltage - t).abs() <= self.tolerance)
                } else {
                    false
                }
            })
    }
}

/// The result of a DC operating-point analysis.
///
/// Node voltages are indexed by [`Node`](crate::Node); branch currents are
/// reported for voltage sources in insertion order.
#[derive(Debug, Clone, PartialEq)]
pub struct Solution {
    /// Voltage of every node including ground at index 0.
    pub(crate) voltages: Vec<f64>,
    /// Current through each voltage source (flowing from `plus` through the
    /// source to `minus`), in source insertion order.
    pub(crate) source_currents: Vec<f64>,
    /// How the solve went: iterations, recovery rung, final residual.
    pub(crate) diagnostics: SolveDiagnostics,
}

impl Solution {
    /// Voltage at `node` in volts.
    pub fn voltage(&self, node: crate::Node) -> f64 {
        self.voltages[node.index()]
    }

    /// All node voltages, ground first.
    pub fn voltages(&self) -> &[f64] {
        &self.voltages
    }

    /// Current through the `k`-th voltage source (insertion order among
    /// voltage sources), in amperes. Positive current flows into the `plus`
    /// terminal (i.e. the source is sinking current).
    pub fn source_current(&self, k: usize) -> f64 {
        self.source_currents[k]
    }

    /// Newton iterations the solve needed (summed over all recovery
    /// attempts).
    pub fn iterations(&self) -> usize {
        self.diagnostics.iterations
    }

    /// Full structured diagnostics of the solve.
    pub fn diagnostics(&self) -> &SolveDiagnostics {
        &self.diagnostics
    }
}

/// Damped Newton–Raphson DC operating-point solver over an MNA formulation.
///
/// Each iteration linearizes the nonlinear devices (EGTs) at the present
/// estimate, assembles the modified-nodal-analysis matrix (node equations
/// plus one branch equation per voltage source), solves it with LU, and takes
/// a damped step. A `gmin` conductance from every node to ground keeps the
/// system well posed even with floating subcircuits.
///
/// Convergence requires *both* a settled voltage update (`tolerance`) and a
/// small KCL residual (`residual_tolerance`), so a stalled damped update
/// cannot be reported as a solution. When the plain loop fails, the solver
/// escalates through the deterministic recovery ladder configured by
/// [`RecoveryPolicy`] — perturbed restarts, gmin stepping, source stepping —
/// and every returned [`Solution`] carries [`SolveDiagnostics`] describing
/// which rung succeeded.
///
/// # Examples
///
/// ```
/// use pnc_spice::{Circuit, DcSolver, RecoveryRung, GROUND};
///
/// # fn main() -> Result<(), pnc_spice::SpiceError> {
/// let mut ckt = Circuit::new();
/// let n = ckt.new_node();
/// ckt.isource(GROUND, n, 1e-3)?;
/// ckt.resistor(n, GROUND, 2_000.0)?;
/// let sol = DcSolver::new().solve(&ckt)?;
/// assert!((sol.voltage(n) - 2.0).abs() < 1e-6);
/// assert_eq!(sol.diagnostics().rung, RecoveryRung::Plain);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct DcSolver {
    /// Maximum Newton iterations before reporting no convergence.
    pub max_iterations: usize,
    /// Convergence tolerance on the infinity norm of the voltage update, in
    /// volts.
    pub tolerance: f64,
    /// Convergence tolerance on the infinity norm of the KCL residual
    /// (amperes on node rows, volts on source branch rows).
    pub residual_tolerance: f64,
    /// Per-iteration limit on any voltage change, in volts (Newton damping).
    pub max_step: f64,
    /// Safety conductance from every node to ground, in siemens.
    pub gmin: f64,
    /// The convergence-recovery ladder used when plain Newton fails.
    pub recovery: RecoveryPolicy,
    /// Deterministic test-only fault injection; `None` in production.
    pub fault_injection: Option<FaultInjection>,
    /// Whether solves given a [`NewtonCache`] may keep a stale Jacobian
    /// factorization across iterations (and warm-started sweep points)
    /// while the residual contracts geometrically — modified Newton.
    /// Defaults from the `PNC_NEWTON_REUSE` environment variable
    /// ([`NEWTON_REUSE_ENV_VAR`]; `0`/`off`/`false` disable, enabled
    /// otherwise). Solves without a cache always run classic full Newton.
    pub newton_reuse: bool,
    /// Which algorithm computes the operating point (see [`SolverBackend`]
    /// and `docs/SOLVERS.md`). `None` — the default — resolves the
    /// `PNC_SPICE_BACKEND` environment variable at each solve, so an
    /// unrecognized value there surfaces as [`SpiceError::Config`] from the
    /// solve itself rather than silently falling back; `Some(backend)` pins
    /// the choice in code and ignores the environment.
    pub backend: Option<SolverBackend>,
}

impl Default for DcSolver {
    fn default() -> Self {
        DcSolver {
            max_iterations: 500,
            tolerance: 1e-10,
            residual_tolerance: 1e-9,
            max_step: 0.25,
            gmin: 1e-12,
            recovery: RecoveryPolicy::default(),
            fault_injection: None,
            newton_reuse: newton_reuse_default(),
            backend: None,
        }
    }
}

impl DcSolver {
    /// Creates a solver with default settings suitable for the 1 V printed
    /// circuits in this workspace.
    pub fn new() -> Self {
        DcSolver::default()
    }

    /// Creates a default solver pinned to `backend`, ignoring the
    /// `PNC_SPICE_BACKEND` environment variable.
    ///
    /// # Examples
    ///
    /// ```
    /// use pnc_spice::{Circuit, DcSolver, SolverBackend, GROUND};
    ///
    /// # fn main() -> Result<(), pnc_spice::SpiceError> {
    /// let mut ckt = Circuit::new();
    /// let n = ckt.new_node();
    /// ckt.vsource(n, GROUND, 1.0)?;
    /// ckt.resistor(n, GROUND, 1_000.0)?;
    /// let sol = DcSolver::with_backend(SolverBackend::CoordDescent).solve(&ckt)?;
    /// assert!((sol.voltage(n) - 1.0).abs() < 1e-9);
    /// # Ok(())
    /// # }
    /// ```
    pub fn with_backend(backend: SolverBackend) -> Self {
        DcSolver {
            backend: Some(backend),
            ..DcSolver::default()
        }
    }

    /// Solves the DC operating point starting from an all-zero voltage guess.
    ///
    /// # Errors
    ///
    /// Returns [`SpiceError::NoConvergence`] if the Newton iteration does not
    /// settle within the budget on any recovery rung and
    /// [`SpiceError::SingularSystem`] if the MNA matrix cannot be factored
    /// even with recovery (e.g. a loop of ideal sources). When every rung
    /// fails, the error of the *plain* attempt is reported.
    pub fn solve(&self, circuit: &Circuit) -> Result<Solution, SpiceError> {
        self.solve_with_guess(circuit, None)
    }

    /// Solves the DC operating point from a warm-start guess of node
    /// voltages (ground excluded, i.e. `guess.len() == circuit.num_nodes()`).
    ///
    /// Sweeps use this to continue from the previous point, which both speeds
    /// up convergence and keeps the solver on the same branch of the
    /// (monotone) transfer curve.
    ///
    /// # Errors
    ///
    /// As for [`DcSolver::solve`]; additionally returns
    /// [`SpiceError::BadDeviceRef`] if the guess has the wrong length.
    pub fn solve_with_guess(
        &self,
        circuit: &Circuit,
        guess: Option<&[f64]>,
    ) -> Result<Solution, SpiceError> {
        self.solve_recovered(circuit, guess, None)
    }

    /// Solves the DC operating point from a warm-start guess while carrying
    /// modified-Newton state in `cache` (see [`NewtonCache`]).
    ///
    /// With [`DcSolver::newton_reuse`] enabled, the plain Newton loop keeps
    /// the cached Jacobian factorization while the residual contracts
    /// geometrically — across its own iterations and across consecutive
    /// calls whose warm-start point moved little — and refactors only when
    /// contraction stalls. Convergence criteria are unchanged, so the
    /// accepted solution satisfies the same residual bound as a full-Newton
    /// solve. Recovery rungs never use the cache.
    ///
    /// # Errors
    ///
    /// As for [`DcSolver::solve_with_guess`].
    pub fn solve_with_cache(
        &self,
        circuit: &Circuit,
        guess: Option<&[f64]>,
        cache: &mut NewtonCache,
    ) -> Result<Solution, SpiceError> {
        self.solve_recovered_cached(circuit, guess, None, Some(cache))
    }

    /// Runs the recovery ladder around [`Self::newton_solve`]: plain solve,
    /// then perturbed restarts, gmin stepping and (for DC solves) source
    /// stepping, stopping at the first rung that converges. Records one
    /// observability sample per call (see `docs/METRICS.md`).
    pub(crate) fn solve_recovered(
        &self,
        circuit: &Circuit,
        guess: Option<&[f64]>,
        cap_state: Option<(&[f64], f64)>,
    ) -> Result<Solution, SpiceError> {
        self.solve_recovered_cached(circuit, guess, cap_state, None)
    }

    /// [`Self::solve_recovered`] with optional modified-Newton state threaded
    /// into the plain rung.
    pub(crate) fn solve_recovered_cached(
        &self,
        circuit: &Circuit,
        guess: Option<&[f64]>,
        cap_state: Option<(&[f64], f64)>,
        cache: Option<&mut NewtonCache>,
    ) -> Result<Solution, SpiceError> {
        obs_register();
        // Resolve the backend once per solve. A bad `PNC_SPICE_BACKEND`
        // value errors out here, before any numeric work — no fallback.
        let resolved = match self.backend {
            Some(b) => b,
            None => SolverBackend::from_env()?,
        };
        match resolved {
            SolverBackend::DenseLu => OBS_BACKEND_DENSE.increment(),
            SolverBackend::SparseLu => OBS_BACKEND_SPARSE.increment(),
            SolverBackend::CoordDescent => OBS_BACKEND_CD.increment(),
        }
        // Pin the resolved backend so every recovery rung (some clone the
        // solver) dispatches identically without re-reading the environment.
        let pinned;
        let solver = if self.backend == Some(resolved) {
            self
        } else {
            pinned = DcSolver {
                backend: Some(resolved),
                ..self.clone()
            };
            &pinned
        };
        let result = solver.solve_recovered_inner(circuit, guess, cap_state, cache);
        OBS_SOLVES.increment();
        match &result {
            Ok(sol) => {
                let d = sol.diagnostics();
                OBS_NEWTON_ITERATIONS.add(d.iterations as u64);
                OBS_NEWTON_ATTEMPTS.add(d.attempts as u64);
                OBS_NEWTON_FACTORIZATIONS.add(d.factorizations as u64);
                OBS_RESIDUAL.observe(d.residual);
                match d.rung {
                    RecoveryRung::Plain => OBS_RUNG_PLAIN.increment(),
                    RecoveryRung::PerturbedGuess => OBS_RUNG_PERTURBED.increment(),
                    RecoveryRung::GminStepping => OBS_RUNG_GMIN.increment(),
                    RecoveryRung::SourceStepping => OBS_RUNG_SOURCE.increment(),
                }
                // Recovered solves are rare enough to stream individually;
                // plain solves would flood the sink and are summarized by the
                // counters instead.
                if d.rung != RecoveryRung::Plain && pnc_obs::sink::enabled() {
                    pnc_obs::sink::emit(
                        "spice.solve.recovered",
                        &[
                            ("rung", FieldValue::Str(d.rung.as_str())),
                            ("iterations", FieldValue::U64(d.iterations as u64)),
                            ("attempts", FieldValue::U64(d.attempts as u64)),
                            ("residual", FieldValue::F64(d.residual)),
                        ],
                    );
                }
            }
            Err(e @ (SpiceError::NoConvergence { .. } | SpiceError::SingularSystem { .. })) => {
                OBS_SOLVE_FAILURES.increment();
                if pnc_obs::sink::enabled() {
                    pnc_obs::sink::emit(
                        "spice.solve.failed",
                        &[(
                            "kind",
                            FieldValue::Str(match e {
                                SpiceError::NoConvergence { .. } => "no_convergence",
                                _ => "singular_system",
                            }),
                        )],
                    );
                }
            }
            Err(_) => OBS_SOLVE_FAILURES.increment(),
        }
        result
    }

    fn solve_recovered_inner(
        &self,
        circuit: &Circuit,
        guess: Option<&[f64]>,
        cap_state: Option<(&[f64], f64)>,
        cache: Option<&mut NewtonCache>,
    ) -> Result<Solution, SpiceError> {
        // Total iterations, factorizations, and attempts across the ladder,
        // folded into the successful solution's diagnostics.
        let mut iterations = 0usize;
        let mut factorizations = 0usize;
        let mut attempts = 1usize;

        let first_err =
            match self.newton_solve(circuit, guess, cap_state, RecoveryRung::Plain, cache) {
                Ok(sol) => return Ok(sol),
                Err(e @ (SpiceError::NoConvergence { .. } | SpiceError::SingularSystem { .. })) => {
                    if let SpiceError::NoConvergence { iterations: n, .. } = e {
                        iterations += n;
                    }
                    e
                }
                Err(e) => return Err(e),
            };

        let finish = |mut sol: Solution,
                      rung: RecoveryRung,
                      iterations: usize,
                      factorizations: usize,
                      attempts: usize| {
            sol.diagnostics.iterations += iterations;
            sol.diagnostics.factorizations += factorizations;
            sol.diagnostics.rung = rung;
            sol.diagnostics.attempts = attempts;
            sol
        };

        // Rung 1: deterministic perturbed restarts.
        let n = circuit.num_nodes();
        for k in 1..=self.recovery.guess_perturbations {
            attempts += 1;
            let start = perturbed_guess(n, guess, k, self.recovery.perturbation_scale);
            match self.newton_solve(
                circuit,
                Some(&start),
                cap_state,
                RecoveryRung::PerturbedGuess,
                None,
            ) {
                Ok(sol) => {
                    return Ok(finish(
                        sol,
                        RecoveryRung::PerturbedGuess,
                        iterations,
                        factorizations,
                        attempts,
                    ))
                }
                Err(SpiceError::NoConvergence { iterations: n, .. }) => iterations += n,
                Err(SpiceError::SingularSystem { .. }) => {}
                Err(e) => return Err(e),
            }
        }

        // Rung 2: gmin stepping.
        if self.recovery.gmin_steps > 0 {
            match self.gmin_stepping(
                circuit,
                guess,
                cap_state,
                &mut iterations,
                &mut factorizations,
                &mut attempts,
            ) {
                Ok(sol) => {
                    return Ok(finish(
                        sol,
                        RecoveryRung::GminStepping,
                        iterations,
                        factorizations,
                        attempts,
                    ))
                }
                Err(SpiceError::NoConvergence { .. } | SpiceError::SingularSystem { .. }) => {}
                Err(e) => return Err(e),
            }
        }

        // Rung 3: source stepping — DC only; ramping sources inside a
        // backward-Euler step would fight the capacitor history terms.
        if self.recovery.source_steps > 0 && cap_state.is_none() {
            match self.source_stepping(circuit, &mut iterations, &mut factorizations, &mut attempts)
            {
                Ok(sol) => {
                    return Ok(finish(
                        sol,
                        RecoveryRung::SourceStepping,
                        iterations,
                        factorizations,
                        attempts,
                    ))
                }
                Err(SpiceError::NoConvergence { .. } | SpiceError::SingularSystem { .. }) => {}
                Err(e) => return Err(e),
            }
        }

        Err(first_err)
    }

    /// Rung 2: solve with a large gmin and geometrically relax it back to
    /// the configured value, warm-starting each step.
    fn gmin_stepping(
        &self,
        circuit: &Circuit,
        guess: Option<&[f64]>,
        cap_state: Option<(&[f64], f64)>,
        iterations: &mut usize,
        factorizations: &mut usize,
        attempts: &mut usize,
    ) -> Result<Solution, SpiceError> {
        let steps = self.recovery.gmin_steps;
        let start = self.recovery.gmin_initial.max(self.gmin.max(1e-15));
        let target = self.gmin.max(1e-15);
        let mut relaxed = self.clone();
        let mut guess_vec: Option<Vec<f64>> = guess.map(<[f64]>::to_vec);
        let mut last: Option<Solution> = None;
        for step in 0..=steps {
            relaxed.gmin = if step == steps {
                self.gmin
            } else {
                start * (target / start).powf(step as f64 / steps as f64)
            };
            *attempts += 1;
            OBS_GMIN_STEPS.increment();
            match relaxed.newton_solve(
                circuit,
                guess_vec.as_deref(),
                cap_state,
                RecoveryRung::GminStepping,
                None,
            ) {
                Ok(sol) => {
                    *iterations += sol.diagnostics.iterations;
                    *factorizations += sol.diagnostics.factorizations;
                    guess_vec = Some(sol.voltages()[1..].to_vec());
                    last = Some(sol);
                }
                Err(e) => {
                    if let SpiceError::NoConvergence { iterations: n, .. } = e {
                        *iterations += n;
                    }
                    return Err(e);
                }
            }
        }
        let Some(mut sol) = last else {
            // Zero steps only happens with a degenerate schedule; report it as
            // a non-convergence instead of panicking.
            return Err(SpiceError::NoConvergence {
                iterations: *iterations,
                residual: f64::INFINITY,
            });
        };
        // The accumulated totals are applied by `finish`; this solution's own
        // counts are already inside `iterations`/`factorizations`.
        sol.diagnostics.iterations = 0;
        sol.diagnostics.factorizations = 0;
        Ok(sol)
    }

    /// Rung 3: ramp all independent sources from zero to full value,
    /// continuing from each intermediate solution.
    fn source_stepping(
        &self,
        circuit: &Circuit,
        iterations: &mut usize,
        factorizations: &mut usize,
        attempts: &mut usize,
    ) -> Result<Solution, SpiceError> {
        let steps = self.recovery.source_steps;
        let mut guess_vec: Option<Vec<f64>> = None;
        let mut last: Option<Solution> = None;
        for k in 1..=steps {
            // The final step solves the original circuit verbatim, so the
            // returned operating point is exact — not a scaled variant.
            let scaled = if k == steps {
                circuit.clone()
            } else {
                circuit.scaled_sources(k as f64 / steps as f64)
            };
            *attempts += 1;
            OBS_SOURCE_STEPS.increment();
            match self.newton_solve(
                &scaled,
                guess_vec.as_deref(),
                None,
                RecoveryRung::SourceStepping,
                None,
            ) {
                Ok(sol) => {
                    *iterations += sol.diagnostics.iterations;
                    *factorizations += sol.diagnostics.factorizations;
                    guess_vec = Some(sol.voltages()[1..].to_vec());
                    last = Some(sol);
                }
                Err(e) => {
                    if let SpiceError::NoConvergence { iterations: n, .. } = e {
                        *iterations += n;
                    }
                    return Err(e);
                }
            }
        }
        let Some(mut sol) = last else {
            return Err(SpiceError::NoConvergence {
                iterations: *iterations,
                residual: f64::INFINITY,
            });
        };
        sol.diagnostics.iterations = 0;
        sol.diagnostics.factorizations = 0;
        Ok(sol)
    }

    /// Newton iteration shared by DC analysis (`cap_state` = `None`,
    /// capacitors open) and the transient solver's backward-Euler steps
    /// (`cap_state` = previous node voltages including ground, and the
    /// timestep). `rung` tags the attempt for diagnostics and fault
    /// injection; it does not change the numerics.
    ///
    /// Acceptance requires the voltage update *and* the KCL residual to be
    /// below their tolerances, so a stalled damped update is not mistaken
    /// for convergence.
    ///
    /// With `cache` supplied and [`DcSolver::newton_reuse`] enabled, the
    /// loop runs modified Newton: the Jacobian factorization is kept while
    /// the residual contracts geometrically (including a factorization
    /// carried in from an earlier warm-started solve whose operating point
    /// is close) and rebuilt only when contraction stalls. The residual is
    /// always evaluated on the freshly assembled system, so the acceptance
    /// criteria — and hence the returned solution's accuracy — are
    /// identical to the full-Newton path.
    pub(crate) fn newton_solve(
        &self,
        circuit: &Circuit,
        guess: Option<&[f64]>,
        cap_state: Option<(&[f64], f64)>,
        rung: RecoveryRung,
        cache: Option<&mut NewtonCache>,
    ) -> Result<Solution, SpiceError> {
        let n = circuit.num_nodes();
        let m = circuit.num_vsources();
        let dim = n + m;

        let mut x = vec![0.0; dim];
        if let Some(g) = guess {
            if g.len() != n {
                return Err(SpiceError::BadDeviceRef {
                    detail: format!("guess has {} entries, circuit has {} nodes", g.len(), n),
                });
            }
            x[..n].copy_from_slice(g);
        }

        if dim == 0 {
            return Ok(Solution {
                voltages: vec![0.0],
                source_currents: Vec::new(),
                diagnostics: SolveDiagnostics {
                    iterations: 0,
                    residual: 0.0,
                    rung,
                    attempts: 1,
                    factorizations: 0,
                },
            });
        }

        if let Some(fault) = &self.fault_injection {
            if fault.triggers(circuit, rung) {
                return Err(SpiceError::NoConvergence {
                    iterations: 0,
                    residual: f64::INFINITY,
                });
            }
        }

        // Backend dispatch happens after the shared prelude so guess
        // validation, trivial circuits, and fault injection behave the same
        // regardless of backend. `None` only reaches this point via direct
        // internal calls; it means the dense default.
        match self.backend.unwrap_or_default() {
            SolverBackend::DenseLu => self.newton_dense(circuit, x, cap_state, rung, cache),
            SolverBackend::SparseLu => self.newton_sparse(circuit, x, cap_state, rung, cache),
            SolverBackend::CoordDescent => crate::cd::solve(self, circuit, &x, cap_state, rung),
        }
    }

    /// The dense Newton loop behind [`SolverBackend::DenseLu`]: full dense
    /// assembly, dense LU per iteration (or modified Newton with `cache`).
    /// This is the oracle path the other backends are validated against.
    fn newton_dense(
        &self,
        circuit: &Circuit,
        mut x: Vec<f64>,
        cap_state: Option<(&[f64], f64)>,
        rung: RecoveryRung,
        mut cache: Option<&mut NewtonCache>,
    ) -> Result<Solution, SpiceError> {
        let n = circuit.num_nodes();
        let dim = x.len();

        // A factorization carried over from an earlier solve is only
        // trusted when the warm-start point stayed near where it was taken;
        // otherwise (or with reuse disabled) start cold.
        let reuse = self.newton_reuse && cache.is_some();
        if let Some(c) = cache.as_deref_mut() {
            if !reuse || !c.matches(dim, &x) {
                c.clear();
            }
        }

        let mut last_update = f64::INFINITY;
        let mut last_residual = f64::INFINITY;
        let mut prev_residual = f64::INFINITY;
        let mut factorizations = 0usize;
        let mut f = vec![0.0; dim];
        let mut delta = vec![0.0; dim];
        for iter in 0..=self.max_iterations {
            let (g, rhs) = self.assemble(circuit, &x, cap_state);

            // KCL residual of the nonlinear system at x: the companion
            // linearization is exact at its expansion point, so
            // F(x) = G(x)·x − rhs(x).
            let mut residual = 0.0_f64;
            for (i, fi) in f.iter_mut().enumerate() {
                let mut acc = -rhs[i];
                for (j, xj) in x.iter().enumerate() {
                    acc += g[(i, j)] * xj;
                }
                *fi = acc;
                residual = residual.max(acc.abs());
            }
            last_residual = residual;

            if last_update < self.tolerance && residual < self.residual_tolerance {
                let mut voltages = vec![0.0; n + 1];
                voltages[1..].copy_from_slice(&x[..n]);
                return Ok(Solution {
                    voltages,
                    source_currents: x[n..].to_vec(),
                    diagnostics: SolveDiagnostics {
                        iterations: iter,
                        residual,
                        rung,
                        attempts: 1,
                        factorizations,
                    },
                });
            }
            if iter == self.max_iterations {
                break;
            }

            let mut max_delta = 0.0_f64;
            if let Some(c) = cache.as_deref_mut().filter(|_| reuse) {
                // Modified Newton, delta form with a possibly stale
                // Jacobian: J_stale·Δ = −F(x). Refactor when there is no
                // factorization yet or the residual stopped contracting
                // geometrically under the stale one.
                if c.lu.is_none() || residual > STALL_CONTRACTION * prev_residual {
                    c.lu = Some(Lu::factor(&g)?);
                    c.x_at_factor.clear();
                    c.x_at_factor.extend_from_slice(&x);
                    factorizations += 1;
                }
                for fi in f.iter_mut() {
                    *fi = -*fi;
                }
                if let Some(lu) = c.lu.as_ref() {
                    lu.solve_into(&f, &mut delta)?;
                }
                for (i, d) in delta.iter().enumerate() {
                    let mut d = *d;
                    // Only damp node voltages; source branch currents may
                    // move freely.
                    if i < n {
                        d = d.clamp(-self.max_step, self.max_step);
                    }
                    x[i] += d;
                    if i < n {
                        max_delta = max_delta.max(d.abs());
                    }
                }
            } else {
                // Classic full Newton: factor every iteration and solve for
                // the next iterate directly (bitwise-unchanged legacy path).
                let lu = Lu::factor(&g)?;
                factorizations += 1;
                let x_new = lu.solve(&rhs)?;

                // Damped update: limit each voltage step.
                for i in 0..dim {
                    let mut delta = x_new[i] - x[i];
                    // Only damp node voltages; source branch currents may move freely.
                    if i < n {
                        delta = delta.clamp(-self.max_step, self.max_step);
                    }
                    x[i] += delta;
                    if i < n {
                        max_delta = max_delta.max(delta.abs());
                    }
                }
            }
            last_update = max_delta;
            prev_residual = residual;
        }

        Err(SpiceError::NoConvergence {
            iterations: self.max_iterations,
            residual: last_residual,
        })
    }

    /// The sparse Newton loop behind [`SolverBackend::SparseLu`]: the same
    /// damped iteration and acceptance criteria as [`Self::newton_dense`],
    /// but over compressed-sparse-column assembly with Markowitz-ordered
    /// sparse LU. Classic Newton refactors numerically every iteration while
    /// reusing the cached symbolic pivot order; with a [`NewtonCache`] and
    /// [`DcSolver::newton_reuse`], the numeric factorization is additionally
    /// kept while the residual contracts geometrically (modified Newton),
    /// across iterations and warm-started sweep points.
    fn newton_sparse(
        &self,
        circuit: &Circuit,
        mut x: Vec<f64>,
        cap_state: Option<(&[f64], f64)>,
        rung: RecoveryRung,
        mut cache: Option<&mut NewtonCache>,
    ) -> Result<Solution, SpiceError> {
        let n = circuit.num_nodes();
        let dim = x.len();

        let reuse = self.newton_reuse && cache.is_some();
        if let Some(c) = cache.as_deref_mut() {
            if !reuse || !c.matches_sparse(dim, &x) {
                c.clear();
            }
        }
        // Factorization slot for cache-less solves; dropped on return, but
        // its symbolic pivot order still serves every refactorization within
        // this solve.
        let mut local: Option<SparseLu> = None;

        let mut last_update = f64::INFINITY;
        let mut last_residual = f64::INFINITY;
        let mut prev_residual = f64::INFINITY;
        let mut factorizations = 0usize;
        let mut f = vec![0.0; dim];
        let mut delta = vec![0.0; dim];
        for iter in 0..=self.max_iterations {
            let (a, rhs) = self.assemble_sparse(circuit, &x, cap_state)?;

            // KCL residual of the nonlinear system at x — the companion
            // linearization is exact at its expansion point, so
            // F(x) = A(x)·x − rhs(x), as in the dense path.
            a.mul_vec(&x, &mut f)?;
            let mut residual = 0.0_f64;
            for (fi, r) in f.iter_mut().zip(&rhs) {
                *fi -= *r;
                residual = residual.max(fi.abs());
            }
            last_residual = residual;

            if last_update < self.tolerance && residual < self.residual_tolerance {
                let mut voltages = vec![0.0; n + 1];
                voltages[1..].copy_from_slice(&x[..n]);
                return Ok(Solution {
                    voltages,
                    source_currents: x[n..].to_vec(),
                    diagnostics: SolveDiagnostics {
                        iterations: iter,
                        residual,
                        rung,
                        attempts: 1,
                        factorizations,
                    },
                });
            }
            if iter == self.max_iterations {
                break;
            }

            // Numeric refactorization is skipped only in modified-Newton
            // mode while the residual keeps contracting geometrically.
            let stalled = residual > STALL_CONTRACTION * prev_residual;
            let slot = match cache.as_deref_mut() {
                Some(c) => &mut c.sparse,
                None => &mut local,
            };
            let refresh = match slot.as_ref() {
                None => true,
                Some(lu) => lu.dim() != dim || !reuse || stalled,
            };
            if refresh {
                match slot.as_mut().filter(|lu| lu.dim() == dim) {
                    Some(lu) => match lu.refactor(&a) {
                        Ok(()) => OBS_SPARSE_REFACTOR.increment(),
                        // A pivot order taken at a different operating point
                        // can go numerically bad; redo the symbolic analysis
                        // before giving up on the solve.
                        Err(LinalgError::Singular { .. }) => {
                            *slot = Some(SparseLu::factor(&a)?);
                            OBS_SPARSE_SYMBOLIC.increment();
                        }
                        Err(e) => return Err(e.into()),
                    },
                    None => {
                        *slot = Some(SparseLu::factor(&a)?);
                        OBS_SPARSE_SYMBOLIC.increment();
                    }
                }
                factorizations += 1;
                if let Some(c) = cache.as_deref_mut() {
                    c.x_at_factor.clear();
                    c.x_at_factor.extend_from_slice(&x);
                }
            }

            // Delta-form step with the (possibly stale) factorization:
            // J·Δ = −F(x), then the same damping as the dense path.
            for fi in f.iter_mut() {
                *fi = -*fi;
            }
            let lu = match cache.as_deref() {
                Some(c) => c.sparse.as_ref(),
                None => local.as_ref(),
            };
            if let Some(lu) = lu {
                lu.solve_into(&f, &mut delta)?;
            }
            let mut max_delta = 0.0_f64;
            for (i, d) in delta.iter().enumerate() {
                let mut d = *d;
                // Only damp node voltages; source branch currents may move
                // freely.
                if i < n {
                    d = d.clamp(-self.max_step, self.max_step);
                }
                x[i] += d;
                if i < n {
                    max_delta = max_delta.max(d.abs());
                }
            }
            last_update = max_delta;
            prev_residual = residual;
        }

        Err(SpiceError::NoConvergence {
            iterations: self.max_iterations,
            residual: last_residual,
        })
    }

    /// Sparse counterpart of [`Self::assemble`]: identical stamps pushed
    /// into a [`SparseBuilder`]. The builder keeps explicit zeros and the
    /// stamp positions depend only on the netlist topology (never on `x`),
    /// so the pattern — and with it the cached symbolic pivot order — is
    /// stable across Newton iterations and same-circuit sweep points.
    fn assemble_sparse(
        &self,
        circuit: &Circuit,
        x: &[f64],
        cap_state: Option<(&[f64], f64)>,
    ) -> Result<(CscMatrix, Vec<f64>), SpiceError> {
        let n = circuit.num_nodes();
        let m = circuit.num_vsources();
        let dim = n + m;
        let mut b = SparseBuilder::new(dim, dim);
        let mut rhs = vec![0.0; dim];

        // gmin from every node to ground keeps floating nodes solvable.
        for i in 0..n {
            b.push(i, i, self.gmin);
        }

        // Voltage of a node under the current estimate (ground = 0).
        let volt = |node: crate::Node| -> f64 {
            if node.index() == 0 {
                0.0
            } else {
                x[node.index() - 1]
            }
        };
        // Row/col index of a node in the MNA system, None for ground.
        let idx = |node: crate::Node| -> Option<usize> {
            if node.index() == 0 {
                None
            } else {
                Some(node.index() - 1)
            }
        };

        let mut vsrc_counter = 0usize;
        for device in circuit.devices() {
            match device {
                Device::Resistor {
                    a,
                    b: nb,
                    resistance,
                } => {
                    let cond = 1.0 / resistance;
                    if let Some(i) = idx(*a) {
                        b.push(i, i, cond);
                    }
                    if let Some(j) = idx(*nb) {
                        b.push(j, j, cond);
                    }
                    if let (Some(i), Some(j)) = (idx(*a), idx(*nb)) {
                        b.push(i, j, -cond);
                        b.push(j, i, -cond);
                    }
                }
                Device::VSource {
                    plus,
                    minus,
                    voltage,
                } => {
                    let k = n + vsrc_counter;
                    vsrc_counter += 1;
                    if let Some(i) = idx(*plus) {
                        b.push(i, k, 1.0);
                        b.push(k, i, 1.0);
                    }
                    if let Some(j) = idx(*minus) {
                        b.push(j, k, -1.0);
                        b.push(k, j, -1.0);
                    }
                    rhs[k] = *voltage;
                }
                Device::Capacitor {
                    a,
                    b: nb,
                    capacitance,
                } => {
                    let Some((prev, h)) = cap_state else {
                        continue; // open circuit in DC analysis
                    };
                    let g_c = capacitance / h;
                    let v_prev = prev[a.index()] - prev[nb.index()];
                    if let Some(i) = idx(*a) {
                        b.push(i, i, g_c);
                        rhs[i] += g_c * v_prev;
                    }
                    if let Some(j) = idx(*nb) {
                        b.push(j, j, g_c);
                        rhs[j] -= g_c * v_prev;
                    }
                    if let (Some(i), Some(j)) = (idx(*a), idx(*nb)) {
                        b.push(i, j, -g_c);
                        b.push(j, i, -g_c);
                    }
                }
                Device::ISource { from, to, current } => {
                    if let Some(i) = idx(*from) {
                        rhs[i] -= current;
                    }
                    if let Some(j) = idx(*to) {
                        rhs[j] += current;
                    }
                }
                Device::Egt {
                    drain,
                    gate,
                    source,
                    model,
                } => {
                    let vgs = volt(*gate) - volt(*source);
                    let vds = volt(*drain) - volt(*source);
                    let op = model.evaluate(vgs, vds);
                    // Companion model: i_d ≈ i_eq + gm·v_gs + gds·v_ds.
                    let i_eq = op.id - op.gm * vgs - op.gds * vds;

                    let d = idx(*drain);
                    let gt = idx(*gate);
                    let s = idx(*source);

                    // KCL at drain: +i_d leaves the node into the channel.
                    if let Some(di) = d {
                        rhs[di] -= i_eq;
                        if let Some(gi) = gt {
                            b.push(di, gi, op.gm);
                        }
                        b.push(di, di, op.gds);
                        if let Some(si) = s {
                            b.push(di, si, -(op.gm + op.gds));
                        }
                    }
                    // KCL at source: −i_d (channel current enters the node).
                    if let Some(si) = s {
                        rhs[si] += i_eq;
                        if let Some(gi) = gt {
                            b.push(si, gi, -op.gm);
                        }
                        if let Some(di) = d {
                            b.push(si, di, -op.gds);
                        }
                        b.push(si, si, op.gm + op.gds);
                    }
                    // Gate draws no DC current.
                }
            }
        }

        Ok((b.build()?, rhs))
    }

    /// Assembles the linearized MNA system `G·x = rhs` at the estimate `x`.
    ///
    /// With `cap_state = Some((prev_voltages, h))`, capacitors contribute
    /// their backward-Euler companion (conductance `C/h` plus a history
    /// current); otherwise they are open circuits (DC analysis).
    fn assemble(
        &self,
        circuit: &Circuit,
        x: &[f64],
        cap_state: Option<(&[f64], f64)>,
    ) -> (Matrix, Vec<f64>) {
        let n = circuit.num_nodes();
        let m = circuit.num_vsources();
        let dim = n + m;
        let mut g = Matrix::zeros(dim, dim);
        let mut rhs = vec![0.0; dim];

        // gmin from every node to ground keeps floating nodes solvable.
        for i in 0..n {
            g[(i, i)] += self.gmin;
        }

        // Voltage of a node under the current estimate (ground = 0).
        let volt = |node: crate::Node| -> f64 {
            if node.index() == 0 {
                0.0
            } else {
                x[node.index() - 1]
            }
        };
        // Row/col index of a node in the MNA system, None for ground.
        let idx = |node: crate::Node| -> Option<usize> {
            if node.index() == 0 {
                None
            } else {
                Some(node.index() - 1)
            }
        };

        let mut vsrc_counter = 0usize;
        for device in circuit.devices() {
            match device {
                Device::Resistor { a, b, resistance } => {
                    let cond = 1.0 / resistance;
                    if let Some(i) = idx(*a) {
                        g[(i, i)] += cond;
                    }
                    if let Some(j) = idx(*b) {
                        g[(j, j)] += cond;
                    }
                    if let (Some(i), Some(j)) = (idx(*a), idx(*b)) {
                        g[(i, j)] -= cond;
                        g[(j, i)] -= cond;
                    }
                }
                Device::VSource {
                    plus,
                    minus,
                    voltage,
                } => {
                    let k = n + vsrc_counter;
                    vsrc_counter += 1;
                    if let Some(i) = idx(*plus) {
                        g[(i, k)] += 1.0;
                        g[(k, i)] += 1.0;
                    }
                    if let Some(j) = idx(*minus) {
                        g[(j, k)] -= 1.0;
                        g[(k, j)] -= 1.0;
                    }
                    rhs[k] = *voltage;
                }
                Device::Capacitor { a, b, capacitance } => {
                    let Some((prev, h)) = cap_state else {
                        continue; // open circuit in DC analysis
                    };
                    let g_c = capacitance / h;
                    let v_prev = prev[a.index()] - prev[b.index()];
                    if let Some(i) = idx(*a) {
                        g[(i, i)] += g_c;
                        rhs[i] += g_c * v_prev;
                    }
                    if let Some(j) = idx(*b) {
                        g[(j, j)] += g_c;
                        rhs[j] -= g_c * v_prev;
                    }
                    if let (Some(i), Some(j)) = (idx(*a), idx(*b)) {
                        g[(i, j)] -= g_c;
                        g[(j, i)] -= g_c;
                    }
                }
                Device::ISource { from, to, current } => {
                    if let Some(i) = idx(*from) {
                        rhs[i] -= current;
                    }
                    if let Some(j) = idx(*to) {
                        rhs[j] += current;
                    }
                }
                Device::Egt {
                    drain,
                    gate,
                    source,
                    model,
                } => {
                    let vgs = volt(*gate) - volt(*source);
                    let vds = volt(*drain) - volt(*source);
                    let op = model.evaluate(vgs, vds);
                    // Companion model: i_d ≈ i_eq + gm·v_gs + gds·v_ds.
                    let i_eq = op.id - op.gm * vgs - op.gds * vds;

                    let d = idx(*drain);
                    let gt = idx(*gate);
                    let s = idx(*source);

                    // KCL at drain: +i_d leaves the node into the channel.
                    if let Some(di) = d {
                        rhs[di] -= i_eq;
                        if let Some(gi) = gt {
                            g[(di, gi)] += op.gm;
                        }
                        g[(di, di)] += op.gds;
                        if let Some(si) = s {
                            g[(di, si)] -= op.gm + op.gds;
                        }
                    }
                    // KCL at source: −i_d (channel current enters the node).
                    if let Some(si) = s {
                        rhs[si] += i_eq;
                        if let Some(gi) = gt {
                            g[(si, gi)] -= op.gm;
                        }
                        if let Some(di) = d {
                            g[(si, di)] -= op.gds;
                        }
                        g[(si, si)] += op.gm + op.gds;
                    }
                    // Gate draws no DC current.
                }
            }
        }

        (g, rhs)
    }
}

/// The deterministic rung-1 starting point: the caller's guess (or zero)
/// shifted by `k · scale` with alternating sign per node, so successive
/// retries explore both directions at growing amplitude.
fn perturbed_guess(n: usize, guess: Option<&[f64]>, k: usize, scale: f64) -> Vec<f64> {
    let mut x: Vec<f64> = match guess {
        Some(g) => g.to_vec(),
        None => vec![0.0; n],
    };
    for (i, xi) in x.iter_mut().enumerate() {
        let sign = if (i + k).is_multiple_of(2) { 1.0 } else { -1.0 };
        *xi += sign * scale * k as f64;
    }
    x
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{EgtModel, GROUND};

    #[test]
    fn voltage_divider() {
        let mut c = Circuit::new();
        let vin = c.new_node();
        let mid = c.new_node();
        c.vsource(vin, GROUND, 1.0).unwrap();
        c.resistor(vin, mid, 1_000.0).unwrap();
        c.resistor(mid, GROUND, 1_000.0).unwrap();
        let sol = DcSolver::new().solve(&c).unwrap();
        assert!((sol.voltage(mid) - 0.5).abs() < 1e-9);
        assert!((sol.voltage(vin) - 1.0).abs() < 1e-12);
        // Source sinks the loop current: V/R_total = 0.5 mA flowing out of
        // the plus terminal, i.e. −0.5 mA into it.
        assert!((sol.source_current(0) + 0.5e-3).abs() < 1e-9);
    }

    #[test]
    fn two_sources_and_superposition() {
        // Two 1 V sources through 1 kΩ each into a common node with 1 kΩ to
        // ground: node voltage is 2/3 V.
        let mut c = Circuit::new();
        let a = c.new_node();
        let b = c.new_node();
        let out = c.new_node();
        c.vsource(a, GROUND, 1.0).unwrap();
        c.vsource(b, GROUND, 1.0).unwrap();
        c.resistor(a, out, 1_000.0).unwrap();
        c.resistor(b, out, 1_000.0).unwrap();
        c.resistor(out, GROUND, 1_000.0).unwrap();
        let sol = DcSolver::new().solve(&c).unwrap();
        assert!((sol.voltage(out) - 2.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn current_source_into_resistor() {
        let mut c = Circuit::new();
        let n = c.new_node();
        c.isource(GROUND, n, 2e-3).unwrap();
        c.resistor(n, GROUND, 500.0).unwrap();
        let sol = DcSolver::new().solve(&c).unwrap();
        assert!((sol.voltage(n) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn floating_node_is_pulled_to_ground_by_gmin() {
        let mut c = Circuit::new();
        let float = c.new_node();
        let used = c.new_node();
        c.vsource(used, GROUND, 1.0).unwrap();
        c.resistor(used, GROUND, 100.0).unwrap();
        // `float` has no device at all.
        let _ = float;
        let sol = DcSolver::new().solve(&c).unwrap();
        assert!(sol.voltage(float).abs() < 1e-9);
    }

    #[test]
    fn crossbar_weighted_sum_matches_eq1() {
        // A 2-input resistor crossbar (Fig. 1 left): V_z should equal the
        // conductance-weighted mean of inputs and bias, Eq. (1) of the paper.
        let g1 = 1.0 / 2_000.0;
        let g2 = 1.0 / 5_000.0;
        let gb = 1.0 / 10_000.0;
        let gd = 1.0 / 4_000.0;
        let (v1, v2, vb) = (0.8, 0.3, 1.0);

        let mut c = Circuit::new();
        let n1 = c.new_node();
        let n2 = c.new_node();
        let nb = c.new_node();
        let z = c.new_node();
        c.vsource(n1, GROUND, v1).unwrap();
        c.vsource(n2, GROUND, v2).unwrap();
        c.vsource(nb, GROUND, vb).unwrap();
        c.resistor(n1, z, 1.0 / g1).unwrap();
        c.resistor(n2, z, 1.0 / g2).unwrap();
        c.resistor(nb, z, 1.0 / gb).unwrap();
        c.resistor(z, GROUND, 1.0 / gd).unwrap();

        let sol = DcSolver::new().solve(&c).unwrap();
        let g_total = g1 + g2 + gb + gd;
        let expected = (g1 * v1 + g2 * v2 + gb * vb) / g_total;
        assert!((sol.voltage(z) - expected).abs() < 1e-9);
    }

    #[test]
    fn egt_inverter_output_swings() {
        let vdd = 1.0;
        let model = EgtModel::printed(600e-6, 20e-6);

        let out_at = |vin: f64| -> f64 {
            let mut c = Circuit::new();
            let supply = c.new_node();
            let input = c.new_node();
            let out = c.new_node();
            c.vsource(supply, GROUND, vdd).unwrap();
            c.vsource(input, GROUND, vin).unwrap();
            c.resistor(supply, out, 200_000.0).unwrap();
            c.egt(out, input, GROUND, model).unwrap();
            DcSolver::new().solve(&c).unwrap().voltage(out)
        };

        let high = out_at(0.0);
        let low = out_at(1.0);
        assert!(
            high > 0.95,
            "inverter output should be near VDD when off, got {high}"
        );
        assert!(
            low < 0.3,
            "inverter output should be pulled low when on, got {low}"
        );
    }

    #[test]
    fn egt_inverter_is_monotone_decreasing() {
        let model = EgtModel::printed(400e-6, 40e-6);
        let mut c = Circuit::new();
        let supply = c.new_node();
        let input = c.new_node();
        let out = c.new_node();
        c.vsource(supply, GROUND, 1.0).unwrap();
        let vin_id = c.vsource(input, GROUND, 0.0).unwrap();
        c.resistor(supply, out, 100_000.0).unwrap();
        c.egt(out, input, GROUND, model).unwrap();

        let solver = DcSolver::new();
        let mut prev = f64::INFINITY;
        let mut guess: Option<Vec<f64>> = None;
        for i in 0..=20 {
            let vin = i as f64 / 20.0;
            c.set_vsource(vin_id, vin).unwrap();
            let sol = solver.solve_with_guess(&c, guess.as_deref()).unwrap();
            let v = sol.voltage(out);
            assert!(
                v <= prev + 1e-9,
                "inverter must be monotone: {v} after {prev}"
            );
            prev = v;
            guess = Some(sol.voltages()[1..].to_vec());
        }
    }

    #[test]
    fn warm_start_reduces_iterations() {
        let model = EgtModel::printed(400e-6, 40e-6);
        let mut c = Circuit::new();
        let supply = c.new_node();
        let input = c.new_node();
        let out = c.new_node();
        c.vsource(supply, GROUND, 1.0).unwrap();
        c.vsource(input, GROUND, 0.5).unwrap();
        c.resistor(supply, out, 100_000.0).unwrap();
        c.egt(out, input, GROUND, model).unwrap();

        let solver = DcSolver::new();
        let cold = solver.solve(&c).unwrap();
        let warm = solver
            .solve_with_guess(&c, Some(&cold.voltages()[1..]))
            .unwrap();
        assert!(
            warm.iterations() <= 2,
            "warm start took {} iterations",
            warm.iterations()
        );
        assert!((warm.voltage(out) - cold.voltage(out)).abs() < 1e-8);
    }

    #[test]
    fn wrong_guess_length_is_rejected() {
        let mut c = Circuit::new();
        let n = c.new_node();
        c.resistor(n, GROUND, 1.0).unwrap();
        let err = DcSolver::new().solve_with_guess(&c, Some(&[0.0, 0.0]));
        assert!(matches!(err, Err(SpiceError::BadDeviceRef { .. })));
    }

    #[test]
    fn empty_circuit_solves_trivially() {
        let c = Circuit::new();
        let sol = DcSolver::new().solve(&c).unwrap();
        assert_eq!(sol.voltages(), &[0.0]);
        assert_eq!(sol.diagnostics().rung, RecoveryRung::Plain);
    }

    #[test]
    fn plain_solve_reports_residual_and_rung() {
        let mut c = Circuit::new();
        let n = c.new_node();
        c.vsource(n, GROUND, 1.0).unwrap();
        c.resistor(n, GROUND, 1_000.0).unwrap();
        let sol = DcSolver::new().solve(&c).unwrap();
        let d = sol.diagnostics();
        assert_eq!(d.rung, RecoveryRung::Plain);
        assert_eq!(d.attempts, 1);
        assert!(d.residual.is_finite());
        assert!(d.residual < 1e-9, "residual {}", d.residual);
        assert!(!d.recovered());
    }

    #[test]
    fn residual_check_rejects_stalled_updates() {
        // A solver whose residual tolerance can never be met must report
        // NoConvergence even though the (tiny) voltage updates settle.
        let mut c = Circuit::new();
        let n = c.new_node();
        c.vsource(n, GROUND, 1.0).unwrap();
        c.resistor(n, GROUND, 1_000.0).unwrap();
        let solver = DcSolver {
            residual_tolerance: 0.0, // unachievable
            recovery: RecoveryPolicy::disabled(),
            ..DcSolver::new()
        };
        let err = solver.solve(&c);
        assert!(
            matches!(err, Err(SpiceError::NoConvergence { .. })),
            "{err:?}"
        );
    }

    #[test]
    fn fault_injection_fails_without_recovery() {
        let mut c = Circuit::new();
        let n = c.new_node();
        c.vsource(n, GROUND, 0.5).unwrap();
        c.resistor(n, GROUND, 1_000.0).unwrap();
        let solver = DcSolver {
            recovery: RecoveryPolicy::disabled(),
            fault_injection: Some(FaultInjection::recoverable_at(vec![0.5])),
            ..DcSolver::new()
        };
        assert!(matches!(
            solver.solve(&c),
            Err(SpiceError::NoConvergence { .. })
        ));
    }

    #[test]
    fn ladder_rescues_injected_fault_via_gmin_stepping() {
        let mut c = Circuit::new();
        let n = c.new_node();
        c.vsource(n, GROUND, 0.5).unwrap();
        c.resistor(n, GROUND, 1_000.0).unwrap();
        let solver = DcSolver {
            fault_injection: Some(FaultInjection::recoverable_at(vec![0.5])),
            ..DcSolver::new()
        };
        let sol = solver.solve(&c).unwrap();
        assert!((sol.voltage(n) - 0.5).abs() < 1e-9);
        let d = sol.diagnostics();
        assert_eq!(d.rung, RecoveryRung::GminStepping);
        assert!(d.recovered());
        // Plain + 2 perturbed restarts failed before the gmin rung ran.
        assert!(d.attempts > 3, "attempts {}", d.attempts);
    }

    #[test]
    fn ladder_rescues_via_source_stepping_when_gmin_is_disabled() {
        let mut c = Circuit::new();
        let n = c.new_node();
        c.vsource(n, GROUND, 0.5).unwrap();
        c.resistor(n, GROUND, 1_000.0).unwrap();
        let solver = DcSolver {
            recovery: RecoveryPolicy {
                gmin_steps: 0,
                guess_perturbations: 0,
                ..RecoveryPolicy::default()
            },
            fault_injection: Some(FaultInjection {
                trigger_values: vec![0.5],
                tolerance: 1e-9,
                min_successful_rung: Some(RecoveryRung::SourceStepping),
            }),
            ..DcSolver::new()
        };
        let sol = solver.solve(&c).unwrap();
        assert!((sol.voltage(n) - 0.5).abs() < 1e-9);
        assert_eq!(sol.diagnostics().rung, RecoveryRung::SourceStepping);
    }

    #[test]
    fn unrecoverable_fault_fails_at_every_rung() {
        let mut c = Circuit::new();
        let n = c.new_node();
        c.vsource(n, GROUND, 0.5).unwrap();
        c.resistor(n, GROUND, 1_000.0).unwrap();
        let solver = DcSolver {
            fault_injection: Some(FaultInjection::unrecoverable_at(vec![0.5])),
            ..DcSolver::new()
        };
        assert!(matches!(
            solver.solve(&c),
            Err(SpiceError::NoConvergence { .. })
        ));
        // A non-triggering source value solves normally.
        let mut ok = Circuit::new();
        let m = ok.new_node();
        ok.vsource(m, GROUND, 0.7).unwrap();
        ok.resistor(m, GROUND, 1_000.0).unwrap();
        let sol = solver.solve(&ok).unwrap();
        assert_eq!(sol.diagnostics().rung, RecoveryRung::Plain);
    }

    #[test]
    fn recovered_solution_matches_plain_solution() {
        // The rescued EGT inverter operating point must equal the one plain
        // Newton finds without injection.
        let model = EgtModel::printed(600e-6, 20e-6);
        let build = || {
            let mut c = Circuit::new();
            let supply = c.new_node();
            let input = c.new_node();
            let out = c.new_node();
            c.vsource(supply, GROUND, 1.0).unwrap();
            c.vsource(input, GROUND, 0.4).unwrap();
            c.resistor(supply, out, 200_000.0).unwrap();
            c.egt(out, input, GROUND, model).unwrap();
            (c, out)
        };
        let (c, out) = build();
        let plain = DcSolver::new().solve(&c).unwrap();
        let faulted = DcSolver {
            fault_injection: Some(FaultInjection::recoverable_at(vec![0.4])),
            ..DcSolver::new()
        };
        let rescued = faulted.solve(&c).unwrap();
        assert_eq!(rescued.diagnostics().rung, RecoveryRung::GminStepping);
        assert!(
            (rescued.voltage(out) - plain.voltage(out)).abs() < 1e-8,
            "rescued {} vs plain {}",
            rescued.voltage(out),
            plain.voltage(out)
        );
    }

    #[test]
    fn ladder_is_deterministic() {
        let mut c = Circuit::new();
        let n = c.new_node();
        c.vsource(n, GROUND, 0.5).unwrap();
        c.resistor(n, GROUND, 1_000.0).unwrap();
        let solver = DcSolver {
            fault_injection: Some(FaultInjection::recoverable_at(vec![0.5])),
            ..DcSolver::new()
        };
        let a = solver.solve(&c).unwrap();
        let b = solver.solve(&c).unwrap();
        assert_eq!(a, b, "recovery must be deterministic");
    }

    #[test]
    fn recovery_policy_default_and_disabled() {
        let p = RecoveryPolicy::default();
        assert!(p.guess_perturbations > 0 && p.gmin_steps > 0 && p.source_steps > 0);
        let off = RecoveryPolicy::disabled();
        assert_eq!(off.guess_perturbations, 0);
        assert_eq!(off.gmin_steps, 0);
        assert_eq!(off.source_steps, 0);
    }

    fn egt_inverter_circuit(vin: f64) -> (Circuit, crate::Node) {
        let model = EgtModel::printed(600e-6, 20e-6);
        let mut c = Circuit::new();
        let supply = c.new_node();
        let input = c.new_node();
        let out = c.new_node();
        c.vsource(supply, GROUND, 1.0).unwrap();
        c.vsource(input, GROUND, vin).unwrap();
        c.resistor(supply, out, 200_000.0).unwrap();
        c.egt(out, input, GROUND, model).unwrap();
        (c, out)
    }

    #[test]
    fn sparse_backend_matches_dense_on_nonlinear_circuit() {
        for vin in [0.0, 0.3, 0.5, 0.8, 1.0] {
            let (c, out) = egt_inverter_circuit(vin);
            let dense = DcSolver::new().solve(&c).unwrap();
            let sparse = DcSolver::with_backend(SolverBackend::SparseLu)
                .solve(&c)
                .unwrap();
            assert!(
                (dense.voltage(out) - sparse.voltage(out)).abs() < 1e-9,
                "vin {vin}: dense {} vs sparse {}",
                dense.voltage(out),
                sparse.voltage(out)
            );
            assert!((dense.source_current(0) - sparse.source_current(0)).abs() < 1e-9);
        }
    }

    #[test]
    fn coord_descent_matches_dense_on_nonlinear_circuit() {
        for vin in [0.0, 0.3, 0.5, 0.8, 1.0] {
            let (c, out) = egt_inverter_circuit(vin);
            let dense = DcSolver::new().solve(&c).unwrap();
            let cd = DcSolver::with_backend(SolverBackend::CoordDescent)
                .solve(&c)
                .unwrap();
            // CD stops once the KCL residual is below tolerance; through the
            // 200 kΩ output impedance that allows a few µV of voltage slack
            // (the documented cross-backend agreement bound in SOLVERS.md).
            assert!(
                (dense.voltage(out) - cd.voltage(out)).abs() < 1e-5,
                "vin {vin}: dense {} vs cd {}",
                dense.voltage(out),
                cd.voltage(out)
            );
            assert!((dense.source_current(0) - cd.source_current(0)).abs() < 1e-8);
            assert_eq!(cd.diagnostics().factorizations, 0);
        }
    }

    #[test]
    fn coord_descent_source_currents_match_dense() {
        let mut c = Circuit::new();
        let vin = c.new_node();
        let mid = c.new_node();
        c.vsource(vin, GROUND, 1.0).unwrap();
        c.resistor(vin, mid, 1_000.0).unwrap();
        c.resistor(mid, GROUND, 1_000.0).unwrap();
        let cd = DcSolver::with_backend(SolverBackend::CoordDescent)
            .solve(&c)
            .unwrap();
        assert!((cd.voltage(mid) - 0.5).abs() < 1e-9);
        assert!((cd.source_current(0) + 0.5e-3).abs() < 1e-8);
    }

    #[test]
    fn coord_descent_handles_minus_clamped_sources() {
        // A vsource wired ground-to-node clamps the node at −V.
        let mut c = Circuit::new();
        let n = c.new_node();
        c.vsource(GROUND, n, 1.0).unwrap();
        c.resistor(n, GROUND, 1_000.0).unwrap();
        let cd = DcSolver::with_backend(SolverBackend::CoordDescent)
            .solve(&c)
            .unwrap();
        let dense = DcSolver::new().solve(&c).unwrap();
        assert!((cd.voltage(n) + 1.0).abs() < 1e-9);
        assert!((cd.source_current(0) - dense.source_current(0)).abs() < 1e-8);
    }

    #[test]
    fn coord_descent_rejects_floating_vsource() {
        let mut c = Circuit::new();
        let a = c.new_node();
        let b = c.new_node();
        c.vsource(a, b, 0.5).unwrap();
        c.resistor(a, GROUND, 1_000.0).unwrap();
        c.resistor(b, GROUND, 1_000.0).unwrap();
        let err = DcSolver::with_backend(SolverBackend::CoordDescent).solve(&c);
        assert!(
            matches!(err, Err(SpiceError::UnsupportedTopology { backend, .. }) if backend == "coord-descent"),
            "{err:?}"
        );
        // The LU backends handle the same circuit fine.
        DcSolver::new().solve(&c).unwrap();
        DcSolver::with_backend(SolverBackend::SparseLu)
            .solve(&c)
            .unwrap();
    }

    #[test]
    fn sparse_backend_reuses_symbolic_analysis_across_sweep() {
        // A warm-started sweep through one cache must refactor numerically
        // without redoing the Markowitz analysis (counted via diagnostics:
        // factorizations happen, yet solves still converge identically).
        let model = EgtModel::printed(400e-6, 40e-6);
        let mut c = Circuit::new();
        let supply = c.new_node();
        let input = c.new_node();
        let out = c.new_node();
        c.vsource(supply, GROUND, 1.0).unwrap();
        let vin_id = c.vsource(input, GROUND, 0.0).unwrap();
        c.resistor(supply, out, 100_000.0).unwrap();
        c.egt(out, input, GROUND, model).unwrap();

        let dense = DcSolver::new();
        let sparse = DcSolver::with_backend(SolverBackend::SparseLu);
        let mut cache = NewtonCache::new();
        let mut guess: Option<Vec<f64>> = None;
        for i in 0..=10 {
            let vin = i as f64 / 10.0;
            c.set_vsource(vin_id, vin).unwrap();
            let s = sparse
                .solve_with_cache(&c, guess.as_deref(), &mut cache)
                .unwrap();
            let d = dense.solve(&c).unwrap();
            assert!(
                (s.voltage(out) - d.voltage(out)).abs() < 1e-8,
                "vin {vin}: sparse {} vs dense {}",
                s.voltage(out),
                d.voltage(out)
            );
            guess = Some(s.voltages()[1..].to_vec());
        }
        assert!(cache.is_warm());
    }

    #[test]
    fn backend_solves_are_deterministic() {
        for backend in SolverBackend::all() {
            let (c, _) = egt_inverter_circuit(0.45);
            let solver = DcSolver::with_backend(backend);
            let a = solver.solve(&c).unwrap();
            let b = solver.solve(&c).unwrap();
            assert_eq!(a, b, "{backend:?} must be run-to-run deterministic");
        }
    }

    #[test]
    fn rung_ordering_matches_escalation_cost() {
        assert!(RecoveryRung::Plain < RecoveryRung::PerturbedGuess);
        assert!(RecoveryRung::PerturbedGuess < RecoveryRung::GminStepping);
        assert!(RecoveryRung::GminStepping < RecoveryRung::SourceStepping);
    }
}
