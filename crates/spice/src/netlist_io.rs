//! SPICE-format netlist serialization.
//!
//! Circuits can be written as (and re-read from) a SPICE-like card format,
//! so designs produced by this workspace can be inspected with standard
//! tooling and re-simulated elsewhere:
//!
//! ```text
//! * printed neuromorphic netlist
//! R1 1 2 100k
//! V1 1 0 1.0
//! I1 0 2 1m
//! M1 3 2 0 W=400u L=40u KP=10u VTH=0.08 LAMBDA=0.05 NSS=0.03
//! .end
//! ```
//!
//! Node 0 is ground. Values accept the usual SPICE suffixes
//! (`f p n u m k meg g t`). The EGT card (`M…`) carries the behavioral
//! model parameters inline, since printed processes have no global `.model`
//! library here.

use crate::{Circuit, Device, EgtModel, Node, SpiceError, GROUND};
use std::fmt::Write as _;

/// Formats a value with SPICE magnitude suffixes.
fn format_value(v: f64) -> String {
    let a = v.abs();
    let (scaled, suffix) = if a == 0.0 {
        (v, "")
    } else if a >= 1e9 {
        (v / 1e9, "g")
    } else if a >= 1e6 {
        (v / 1e6, "meg")
    } else if a >= 1e3 {
        (v / 1e3, "k")
    } else if a >= 1.0 {
        (v, "")
    } else if a >= 1e-3 {
        (v / 1e-3, "m")
    } else if a >= 1e-6 {
        (v / 1e-6, "u")
    } else if a >= 1e-9 {
        (v / 1e-9, "n")
    } else if a >= 1e-12 {
        (v / 1e-12, "p")
    } else {
        (v / 1e-15, "f")
    };
    let mut s = format!("{scaled:.6}");
    while s.contains('.') && (s.ends_with('0') || s.ends_with('.')) {
        s.pop();
    }
    format!("{s}{suffix}")
}

/// Parses a SPICE value with an optional magnitude suffix.
///
/// # Errors
///
/// Returns [`SpiceError::BadDeviceRef`] for unparseable tokens.
pub fn parse_value(token: &str) -> Result<f64, SpiceError> {
    let lower = token.to_ascii_lowercase();
    let (digits, mult) = if let Some(stripped) = lower.strip_suffix("meg") {
        (stripped, 1e6)
    } else if let Some(stripped) = lower.strip_suffix('f') {
        (stripped, 1e-15)
    } else if let Some(stripped) = lower.strip_suffix('p') {
        (stripped, 1e-12)
    } else if let Some(stripped) = lower.strip_suffix('n') {
        (stripped, 1e-9)
    } else if let Some(stripped) = lower.strip_suffix('u') {
        (stripped, 1e-6)
    } else if let Some(stripped) = lower.strip_suffix('m') {
        (stripped, 1e-3)
    } else if let Some(stripped) = lower.strip_suffix('k') {
        (stripped, 1e3)
    } else if let Some(stripped) = lower.strip_suffix('g') {
        (stripped, 1e9)
    } else if let Some(stripped) = lower.strip_suffix('t') {
        (stripped, 1e12)
    } else {
        (lower.as_str(), 1.0)
    };
    digits
        .parse::<f64>()
        .map(|v| v * mult)
        .map_err(|_| SpiceError::BadDeviceRef {
            detail: format!("cannot parse value token {token:?}"),
        })
}

impl Circuit {
    /// Writes the circuit as a SPICE-format netlist string.
    ///
    /// # Examples
    ///
    /// ```
    /// use pnc_spice::{Circuit, GROUND};
    ///
    /// # fn main() -> Result<(), pnc_spice::SpiceError> {
    /// let mut ckt = Circuit::new();
    /// let n = ckt.new_node();
    /// ckt.vsource(n, GROUND, 1.0)?;
    /// ckt.resistor(n, GROUND, 100_000.0)?;
    /// let text = ckt.to_netlist();
    /// assert!(text.contains("R2 1 0 100k"));
    /// # Ok(())
    /// # }
    /// ```
    pub fn to_netlist(&self) -> String {
        let mut out = String::from("* printed neuromorphic netlist\n");
        for (k, device) in self.devices().iter().enumerate() {
            let idx = k + 1;
            match device {
                Device::Resistor { a, b, resistance } => {
                    let _ = writeln!(
                        out,
                        "R{idx} {} {} {}",
                        a.index(),
                        b.index(),
                        format_value(*resistance)
                    );
                }
                Device::VSource {
                    plus,
                    minus,
                    voltage,
                } => {
                    let _ = writeln!(
                        out,
                        "V{idx} {} {} {}",
                        plus.index(),
                        minus.index(),
                        format_value(*voltage)
                    );
                }
                Device::ISource { from, to, current } => {
                    let _ = writeln!(
                        out,
                        "I{idx} {} {} {}",
                        from.index(),
                        to.index(),
                        format_value(*current)
                    );
                }
                Device::Capacitor { a, b, capacitance } => {
                    let _ = writeln!(
                        out,
                        "C{idx} {} {} {}",
                        a.index(),
                        b.index(),
                        format_value(*capacitance)
                    );
                }
                Device::Egt {
                    drain,
                    gate,
                    source,
                    model,
                } => {
                    let _ = writeln!(
                        out,
                        "M{idx} {} {} {} W={} L={} KP={} VTH={} LAMBDA={} NSS={}",
                        drain.index(),
                        gate.index(),
                        source.index(),
                        format_value(model.w),
                        format_value(model.l),
                        format_value(model.kp),
                        format_value(model.vth),
                        format_value(model.lambda),
                        format_value(model.n_ss)
                    );
                }
            }
        }
        out.push_str(".end\n");
        out
    }

    /// Parses a netlist written by [`Circuit::to_netlist`] (or hand-written
    /// in the same card subset).
    ///
    /// # Errors
    ///
    /// Returns [`SpiceError::BadDeviceRef`] for malformed cards and
    /// propagates the builder validations (positive resistances, known
    /// nodes are allocated on demand).
    pub fn from_netlist(text: &str) -> Result<Circuit, SpiceError> {
        let mut circuit = Circuit::new();

        // First pass: find the highest node index so handles exist.
        let mut max_node = 0usize;
        for line in text.lines() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('*') || line.starts_with('.') {
                continue;
            }
            let tokens: Vec<&str> = line.split_whitespace().collect();
            let node_count = match tokens.first().map(|t| t.chars().next().unwrap_or(' ')) {
                Some('R') | Some('V') | Some('I') | Some('C') => 2,
                Some('M') => 3,
                _ => 0,
            };
            for t in tokens.iter().skip(1).take(node_count) {
                let n: usize = t.parse().map_err(|_| SpiceError::BadDeviceRef {
                    detail: format!("bad node token {t:?} in line {line:?}"),
                })?;
                max_node = max_node.max(n);
            }
        }
        let mut nodes = vec![GROUND];
        for _ in 0..max_node {
            nodes.push(circuit.new_node());
        }
        let node = |i: usize| -> Node { nodes[i] };

        for (lineno, line) in text.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('*') || line.starts_with('.') {
                continue;
            }
            let tokens: Vec<&str> = line.split_whitespace().collect();
            let bad = |detail: String| SpiceError::BadDeviceRef {
                detail: format!("line {}: {detail}", lineno + 1),
            };
            let parse_node = |t: &str| -> Result<Node, SpiceError> {
                t.parse::<usize>()
                    .map(node)
                    .map_err(|_| bad(format!("bad node {t:?}")))
            };
            match tokens[0].chars().next().unwrap_or(' ') {
                'R' => {
                    if tokens.len() != 4 {
                        return Err(bad("resistor card needs 4 tokens".into()));
                    }
                    circuit.resistor(
                        parse_node(tokens[1])?,
                        parse_node(tokens[2])?,
                        parse_value(tokens[3])?,
                    )?;
                }
                'V' => {
                    if tokens.len() != 4 {
                        return Err(bad("voltage-source card needs 4 tokens".into()));
                    }
                    circuit.vsource(
                        parse_node(tokens[1])?,
                        parse_node(tokens[2])?,
                        parse_value(tokens[3])?,
                    )?;
                }
                'I' => {
                    if tokens.len() != 4 {
                        return Err(bad("current-source card needs 4 tokens".into()));
                    }
                    circuit.isource(
                        parse_node(tokens[1])?,
                        parse_node(tokens[2])?,
                        parse_value(tokens[3])?,
                    )?;
                }
                'C' => {
                    if tokens.len() != 4 {
                        return Err(bad("capacitor card needs 4 tokens".into()));
                    }
                    circuit.capacitor(
                        parse_node(tokens[1])?,
                        parse_node(tokens[2])?,
                        parse_value(tokens[3])?,
                    )?;
                }
                'M' => {
                    if tokens.len() < 4 {
                        return Err(bad("egt card needs drain gate source".into()));
                    }
                    let mut model = EgtModel::printed(1e-6, 1e-6);
                    for kv in &tokens[4..] {
                        let (key, value) = kv
                            .split_once('=')
                            .ok_or_else(|| bad(format!("expected KEY=VALUE, got {kv:?}")))?;
                        let v = parse_value(value)?;
                        match key.to_ascii_uppercase().as_str() {
                            "W" => model.w = v,
                            "L" => model.l = v,
                            "KP" => model.kp = v,
                            "VTH" => model.vth = v,
                            "LAMBDA" => model.lambda = v,
                            "NSS" => model.n_ss = v,
                            other => return Err(bad(format!("unknown parameter {other}"))),
                        }
                    }
                    circuit.egt(
                        parse_node(tokens[1])?,
                        parse_node(tokens[2])?,
                        parse_node(tokens[3])?,
                        model,
                    )?;
                }
                other => return Err(bad(format!("unknown card {other:?}"))),
            }
        }
        Ok(circuit)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::circuits::{NonlinearCircuitParams, PtanhCircuit};
    use crate::DcSolver;

    #[test]
    fn format_value_uses_suffixes() {
        assert_eq!(format_value(100_000.0), "100k");
        assert_eq!(format_value(1.5e6), "1.5meg");
        assert_eq!(format_value(0.001), "1m");
        assert_eq!(format_value(400e-6), "400u");
        assert_eq!(format_value(20e-9), "20n");
        assert_eq!(format_value(1.0), "1");
        assert_eq!(format_value(0.0), "0");
    }

    #[test]
    fn parse_value_round_trips_suffixes() {
        for v in [
            0.0, 1.0, -2.5, 100e3, 1.5e6, 3.3e-3, 400e-6, 20e-9, 2e-12, 5e9,
        ] {
            let parsed = parse_value(&format_value(v)).unwrap();
            assert!(
                (parsed - v).abs() <= 1e-6 * v.abs().max(1e-15),
                "{v} -> {} -> {parsed}",
                format_value(v)
            );
        }
        assert!(parse_value("12banana").is_err());
    }

    #[test]
    fn netlist_round_trip_preserves_circuit() {
        let ptanh = PtanhCircuit::build(&NonlinearCircuitParams::nominal()).unwrap();
        let original = ptanh.circuit().clone();
        let text = original.to_netlist();
        let parsed = Circuit::from_netlist(&text).unwrap();
        assert_eq!(parsed.num_nodes(), original.num_nodes());
        assert_eq!(parsed.devices().len(), original.devices().len());

        // The parsed circuit must solve to the same operating point.
        let solver = DcSolver::new();
        let a = solver.solve(&original).unwrap();
        let b = solver.solve(&parsed).unwrap();
        for (x, y) in a.voltages().iter().zip(b.voltages()) {
            assert!((x - y).abs() < 1e-6, "{x} vs {y}");
        }
    }

    #[test]
    fn netlist_text_is_readable() {
        let mut c = Circuit::new();
        let n = c.new_node();
        c.vsource(n, GROUND, 1.0).unwrap();
        c.resistor(n, GROUND, 47_000.0).unwrap();
        let text = c.to_netlist();
        assert!(text.starts_with("* printed neuromorphic netlist"));
        assert!(text.contains("V1 1 0 1"));
        assert!(text.contains("R2 1 0 47k"));
        assert!(text.trim_end().ends_with(".end"));
    }

    #[test]
    fn parser_rejects_malformed_cards() {
        assert!(Circuit::from_netlist("R1 1 0").is_err());
        assert!(Circuit::from_netlist("X1 1 0 5").is_err());
        assert!(Circuit::from_netlist("M1 1 2 0 Q=5").is_err());
        assert!(Circuit::from_netlist("R1 a 0 5").is_err());
    }

    #[test]
    fn parser_ignores_comments_and_directives() {
        let text = "* comment\n.option whatever\nR1 1 0 1k\n.end\n";
        let c = Circuit::from_netlist(text).unwrap();
        assert_eq!(c.devices().len(), 1);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #[test]
        fn value_round_trip(v in 1e-12..1e9f64) {
            let parsed = parse_value(&format_value(v)).unwrap();
            prop_assert!((parsed - v).abs() <= 1e-5 * v.abs());
        }

        #[test]
        fn random_resistor_networks_round_trip(
            resistors in proptest::collection::vec((0usize..5, 0usize..5, 1.0..1e6f64), 1..12)
        ) {
            let mut c = Circuit::new();
            let nodes: Vec<_> = (0..4).map(|_| c.new_node()).collect();
            let all = [GROUND, nodes[0], nodes[1], nodes[2], nodes[3]];
            c.vsource(nodes[0], GROUND, 1.0).unwrap();
            for (a, b, r) in resistors {
                if a != b {
                    c.resistor(all[a], all[b], r).unwrap();
                }
            }
            let parsed = Circuit::from_netlist(&c.to_netlist()).unwrap();
            prop_assert_eq!(parsed.devices().len(), c.devices().len());
        }
    }
}
