use crate::{EgtModel, SpiceError};
use serde::{Deserialize, Serialize};

/// The ground (reference) node. Always present; its voltage is 0 V.
pub const GROUND: Node = Node(0);

/// A circuit node. Create non-ground nodes with
/// [`Circuit::new_node`]; [`GROUND`] is node 0.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Node(pub(crate) usize);

impl Node {
    /// The raw index of this node (0 is ground).
    pub fn index(self) -> usize {
        self.0
    }

    /// Returns `true` if this is the ground node.
    pub fn is_ground(self) -> bool {
        self.0 == 0
    }
}

/// Identifies a device within its [`Circuit`], returned by the builder
/// methods. Used to address sweepable sources and to query branch currents.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct DeviceId(pub(crate) usize);

impl DeviceId {
    /// The raw index of this device in insertion order.
    pub fn index(self) -> usize {
        self.0
    }
}

/// A circuit element.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[non_exhaustive]
pub enum Device {
    /// Linear resistor between two nodes.
    Resistor {
        /// First terminal.
        a: Node,
        /// Second terminal.
        b: Node,
        /// Resistance in ohms (positive, finite).
        resistance: f64,
    },
    /// Independent voltage source; `plus` is held `voltage` volts above
    /// `minus`.
    VSource {
        /// Positive terminal.
        plus: Node,
        /// Negative terminal.
        minus: Node,
        /// Source voltage in volts.
        voltage: f64,
    },
    /// Independent current source driving `current` amperes from `from` into
    /// `to` (through the source).
    ISource {
        /// Node the current is drawn from.
        from: Node,
        /// Node the current is pushed into.
        to: Node,
        /// Source current in amperes.
        current: f64,
    },
    /// Printed electrolyte-gated transistor.
    Egt {
        /// Drain terminal.
        drain: Node,
        /// Gate terminal (draws no DC current).
        gate: Node,
        /// Source terminal.
        source: Node,
        /// Device model including geometry.
        model: EgtModel,
    },
    /// Linear capacitor. Open-circuit in DC analysis; integrated by the
    /// transient solver.
    Capacitor {
        /// First terminal.
        a: Node,
        /// Second terminal.
        b: Node,
        /// Capacitance in farads (positive, finite).
        capacitance: f64,
    },
}

/// A flat netlist of devices over a set of nodes, built incrementally.
///
/// `Circuit` is the assembly input of [`DcSolver`](crate::DcSolver). Node 0
/// is always ground; the builder methods validate node references and
/// component values at insertion time, so a constructed circuit is always
/// structurally sound (solvability is still checked at solve time).
///
/// # Examples
///
/// ```
/// use pnc_spice::{Circuit, GROUND};
///
/// # fn main() -> Result<(), pnc_spice::SpiceError> {
/// let mut ckt = Circuit::new();
/// let n = ckt.new_node();
/// ckt.vsource(n, GROUND, 1.0)?;
/// ckt.resistor(n, GROUND, 50.0)?;
/// assert_eq!(ckt.num_nodes(), 1);
/// assert_eq!(ckt.devices().len(), 2);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Circuit {
    /// Number of non-ground nodes.
    num_nodes: usize,
    devices: Vec<Device>,
}

impl Circuit {
    /// Creates an empty circuit containing only the ground node.
    pub fn new() -> Self {
        Circuit::default()
    }

    /// Allocates a fresh node and returns its handle.
    pub fn new_node(&mut self) -> Node {
        self.num_nodes += 1;
        Node(self.num_nodes)
    }

    /// Number of non-ground nodes.
    pub fn num_nodes(&self) -> usize {
        self.num_nodes
    }

    /// All devices in insertion order.
    pub fn devices(&self) -> &[Device] {
        &self.devices
    }

    /// Number of independent voltage sources (each adds one MNA branch
    /// unknown).
    pub fn num_vsources(&self) -> usize {
        self.devices
            .iter()
            .filter(|d| matches!(d, Device::VSource { .. }))
            .count()
    }

    fn check_node(&self, n: Node) -> Result<(), SpiceError> {
        if n.0 <= self.num_nodes {
            Ok(())
        } else {
            Err(SpiceError::UnknownNode {
                node: n.0,
                num_nodes: self.num_nodes,
            })
        }
    }

    fn check_positive(device: &'static str, value: f64) -> Result<(), SpiceError> {
        if value.is_finite() && value > 0.0 {
            Ok(())
        } else {
            Err(SpiceError::InvalidValue { device, value })
        }
    }

    /// Adds a resistor between `a` and `b`.
    ///
    /// # Errors
    ///
    /// Returns [`SpiceError::UnknownNode`] for invalid nodes and
    /// [`SpiceError::InvalidValue`] if `resistance` is not positive and
    /// finite.
    pub fn resistor(&mut self, a: Node, b: Node, resistance: f64) -> Result<DeviceId, SpiceError> {
        self.check_node(a)?;
        self.check_node(b)?;
        Self::check_positive("resistor", resistance)?;
        self.devices.push(Device::Resistor { a, b, resistance });
        Ok(DeviceId(self.devices.len() - 1))
    }

    /// Adds an independent voltage source holding `plus` at `voltage` volts
    /// above `minus`.
    ///
    /// # Errors
    ///
    /// Returns [`SpiceError::UnknownNode`] for invalid nodes and
    /// [`SpiceError::InvalidValue`] if `voltage` is not finite (any finite
    /// value, including zero and negatives, is allowed).
    pub fn vsource(
        &mut self,
        plus: Node,
        minus: Node,
        voltage: f64,
    ) -> Result<DeviceId, SpiceError> {
        self.check_node(plus)?;
        self.check_node(minus)?;
        if !voltage.is_finite() {
            return Err(SpiceError::InvalidValue {
                device: "vsource",
                value: voltage,
            });
        }
        self.devices.push(Device::VSource {
            plus,
            minus,
            voltage,
        });
        Ok(DeviceId(self.devices.len() - 1))
    }

    /// Adds an independent current source driving `current` amperes from
    /// `from` into `to`.
    ///
    /// # Errors
    ///
    /// Returns [`SpiceError::UnknownNode`] for invalid nodes and
    /// [`SpiceError::InvalidValue`] if `current` is not finite.
    pub fn isource(&mut self, from: Node, to: Node, current: f64) -> Result<DeviceId, SpiceError> {
        self.check_node(from)?;
        self.check_node(to)?;
        if !current.is_finite() {
            return Err(SpiceError::InvalidValue {
                device: "isource",
                value: current,
            });
        }
        self.devices.push(Device::ISource { from, to, current });
        Ok(DeviceId(self.devices.len() - 1))
    }

    /// Adds a printed EGT.
    ///
    /// # Errors
    ///
    /// Returns [`SpiceError::UnknownNode`] for invalid nodes and
    /// [`SpiceError::InvalidValue`] if the model geometry is not positive and
    /// finite.
    pub fn egt(
        &mut self,
        drain: Node,
        gate: Node,
        source: Node,
        model: EgtModel,
    ) -> Result<DeviceId, SpiceError> {
        self.check_node(drain)?;
        self.check_node(gate)?;
        self.check_node(source)?;
        Self::check_positive("egt width", model.w)?;
        Self::check_positive("egt length", model.l)?;
        Self::check_positive("egt kp", model.kp)?;
        self.devices.push(Device::Egt {
            drain,
            gate,
            source,
            model,
        });
        Ok(DeviceId(self.devices.len() - 1))
    }

    /// Adds a capacitor between `a` and `b`.
    ///
    /// Capacitors are open circuits for [`DcSolver`](crate::DcSolver) and
    /// integrated by [`TransientSolver`](crate::TransientSolver).
    ///
    /// # Errors
    ///
    /// Returns [`SpiceError::UnknownNode`] for invalid nodes and
    /// [`SpiceError::InvalidValue`] if `capacitance` is not positive and
    /// finite.
    pub fn capacitor(
        &mut self,
        a: Node,
        b: Node,
        capacitance: f64,
    ) -> Result<DeviceId, SpiceError> {
        self.check_node(a)?;
        self.check_node(b)?;
        Self::check_positive("capacitor", capacitance)?;
        self.devices.push(Device::Capacitor { a, b, capacitance });
        Ok(DeviceId(self.devices.len() - 1))
    }

    /// Returns a copy of the circuit with every independent source scaled by
    /// `alpha` (voltage sources and current sources alike). Used by the
    /// source-stepping recovery rung to ramp excitations from zero to full
    /// value.
    pub(crate) fn scaled_sources(&self, alpha: f64) -> Circuit {
        let devices = self
            .devices
            .iter()
            .map(|d| match d {
                Device::VSource {
                    plus,
                    minus,
                    voltage,
                } => Device::VSource {
                    plus: *plus,
                    minus: *minus,
                    voltage: voltage * alpha,
                },
                Device::ISource { from, to, current } => Device::ISource {
                    from: *from,
                    to: *to,
                    current: current * alpha,
                },
                other => other.clone(),
            })
            .collect();
        Circuit {
            num_nodes: self.num_nodes,
            devices,
        }
    }

    /// Replaces the value of the voltage source `id`.
    ///
    /// Used by DC sweeps to step an input source without rebuilding the
    /// netlist.
    ///
    /// # Errors
    ///
    /// Returns [`SpiceError::BadDeviceRef`] if `id` does not refer to a
    /// voltage source, and [`SpiceError::InvalidValue`] if `voltage` is not
    /// finite.
    pub fn set_vsource(&mut self, id: DeviceId, voltage: f64) -> Result<(), SpiceError> {
        if !voltage.is_finite() {
            return Err(SpiceError::InvalidValue {
                device: "vsource",
                value: voltage,
            });
        }
        match self.devices.get_mut(id.0) {
            Some(Device::VSource { voltage: v, .. }) => {
                *v = voltage;
                Ok(())
            }
            Some(other) => Err(SpiceError::BadDeviceRef {
                detail: format!("device {} is {:?}, not a voltage source", id.0, other),
            }),
            None => Err(SpiceError::BadDeviceRef {
                detail: format!("device index {} out of range", id.0),
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_node_indices_are_sequential() {
        let mut c = Circuit::new();
        assert_eq!(c.new_node().index(), 1);
        assert_eq!(c.new_node().index(), 2);
        assert_eq!(c.num_nodes(), 2);
        assert!(GROUND.is_ground());
        assert!(!Node(1).is_ground());
    }

    #[test]
    fn rejects_unknown_nodes() {
        let mut c = Circuit::new();
        let bogus = Node(7);
        assert!(matches!(
            c.resistor(bogus, GROUND, 1.0),
            Err(SpiceError::UnknownNode { node: 7, .. })
        ));
    }

    #[test]
    fn rejects_nonpositive_resistance() {
        let mut c = Circuit::new();
        let n = c.new_node();
        assert!(c.resistor(n, GROUND, 0.0).is_err());
        assert!(c.resistor(n, GROUND, -5.0).is_err());
        assert!(c.resistor(n, GROUND, f64::NAN).is_err());
        assert!(c.resistor(n, GROUND, f64::INFINITY).is_err());
    }

    #[test]
    fn vsource_allows_zero_and_negative() {
        let mut c = Circuit::new();
        let n = c.new_node();
        assert!(c.vsource(n, GROUND, 0.0).is_ok());
        assert!(c.vsource(n, GROUND, -1.0).is_ok());
        assert!(c.vsource(n, GROUND, f64::NAN).is_err());
    }

    #[test]
    fn set_vsource_updates_only_vsources() {
        let mut c = Circuit::new();
        let n = c.new_node();
        let r = c.resistor(n, GROUND, 10.0).unwrap();
        let v = c.vsource(n, GROUND, 1.0).unwrap();
        assert!(c.set_vsource(v, 2.0).is_ok());
        assert!(matches!(
            c.set_vsource(r, 2.0),
            Err(SpiceError::BadDeviceRef { .. })
        ));
        assert!(matches!(
            c.set_vsource(DeviceId(99), 2.0),
            Err(SpiceError::BadDeviceRef { .. })
        ));
        match &c.devices()[v.index()] {
            Device::VSource { voltage, .. } => assert_eq!(*voltage, 2.0),
            other => panic!("unexpected device {other:?}"),
        }
    }

    #[test]
    fn counts_vsources() {
        let mut c = Circuit::new();
        let n = c.new_node();
        c.vsource(n, GROUND, 1.0).unwrap();
        c.resistor(n, GROUND, 1.0).unwrap();
        c.vsource(n, GROUND, 0.5).unwrap();
        assert_eq!(c.num_vsources(), 2);
    }
}
