use pnc_linalg::LinalgError;
use std::fmt;

/// Error type for netlist construction and DC analysis.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum SpiceError {
    /// A device referenced a node that was never created with
    /// [`Circuit::new_node`](crate::Circuit::new_node).
    UnknownNode {
        /// The offending node index.
        node: usize,
        /// Number of nodes the circuit actually has (excluding ground).
        num_nodes: usize,
    },
    /// A component value was non-positive or non-finite.
    InvalidValue {
        /// The device kind, e.g. `"resistor"`.
        device: &'static str,
        /// The offending value.
        value: f64,
    },
    /// Newton–Raphson failed to converge within the iteration budget.
    NoConvergence {
        /// Number of iterations performed.
        iterations: usize,
        /// Final infinity-norm of the voltage update.
        residual: f64,
    },
    /// The MNA system was singular — typically a floating node or a loop of
    /// ideal voltage sources.
    SingularSystem {
        /// The underlying linear-algebra failure.
        source: LinalgError,
    },
    /// An operation referenced a device id not present in the circuit, or a
    /// device of the wrong kind (e.g. sweeping a resistor as a source).
    BadDeviceRef {
        /// Human-readable description.
        detail: String,
    },
    /// A solver configuration value was invalid — e.g. an unrecognized
    /// `PNC_SPICE_BACKEND` spelling. Configuration typos fail loudly instead
    /// of silently falling back to a different solver (the same contract as
    /// `PNC_INFER_PRECISION` in `pnc-core`).
    Config {
        /// Human-readable description of the rejected configuration.
        detail: String,
    },
    /// The selected solver backend cannot handle this circuit's topology
    /// (e.g. the coordinate-descent backend requires every voltage source to
    /// be referenced to ground). Switch backends; the dense/sparse LU paths
    /// handle every topology the netlist builder accepts.
    UnsupportedTopology {
        /// The backend that rejected the circuit (its `as_str` name).
        backend: &'static str,
        /// What the backend cannot represent.
        detail: String,
    },
}

impl fmt::Display for SpiceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SpiceError::UnknownNode { node, num_nodes } => {
                write!(f, "unknown node {node}: circuit has {num_nodes} nodes")
            }
            SpiceError::InvalidValue { device, value } => {
                write!(f, "invalid {device} value {value}: must be positive and finite")
            }
            SpiceError::NoConvergence {
                iterations,
                residual,
            } => write!(
                f,
                "newton iteration did not converge after {iterations} iterations (residual {residual:.3e})"
            ),
            SpiceError::SingularSystem { source } => {
                write!(f, "singular MNA system: {source}")
            }
            SpiceError::BadDeviceRef { detail } => write!(f, "bad device reference: {detail}"),
            SpiceError::Config { detail } => write!(f, "invalid solver configuration: {detail}"),
            SpiceError::UnsupportedTopology { backend, detail } => {
                write!(f, "backend {backend} cannot solve this circuit: {detail}")
            }
        }
    }
}

impl std::error::Error for SpiceError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SpiceError::SingularSystem { source } => Some(source),
            _ => None,
        }
    }
}

impl From<LinalgError> for SpiceError {
    fn from(source: LinalgError) -> Self {
        SpiceError::SingularSystem { source }
    }
}
