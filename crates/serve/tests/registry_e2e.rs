//! End-to-end serving contract: train a real Iris pNN, export it through
//! `pnc-core`'s artifact seam, load it back through the [`ModelRegistry`],
//! and serve concurrent traffic — at 1, 2, and 8 worker threads, through
//! the in-process path and the framed-TCP path.
//!
//! The load-bearing assertion is **byte identity**: every served response
//! must carry exactly the f64 bits a direct single-sample
//! [`InferencePlan`] call produces, regardless of how the micro-batcher
//! coalesced the traffic or which worker ran the batch.

use pnc_core::{
    InferencePlan, LabeledData, Pnn, PnnArtifact, PnnConfig, TrainConfig, Trainer, VariationModel,
};
use pnc_datasets::generators::iris;
use pnc_linalg::{Matrix, ParallelConfig};
use pnc_serve::{wire, ModelRegistry, ServeConfig, Server};
use pnc_surrogate::{
    build_dataset, train_surrogate, DatasetConfig, SurrogateModel, TrainConfig as SurrogateTrain,
};
use std::sync::{Arc, OnceLock};
use std::time::Duration;

fn surrogate() -> Arc<SurrogateModel> {
    static CELL: OnceLock<Arc<SurrogateModel>> = OnceLock::new();
    CELL.get_or_init(|| {
        let data = build_dataset(&DatasetConfig {
            samples: 150,
            sweep_points: 31,
        })
        .expect("builds");
        Arc::new(
            train_surrogate(
                &data,
                &SurrogateTrain {
                    layer_sizes: vec![10, 8, 4],
                    max_epochs: 300,
                    patience: 100,
                    ..SurrogateTrain::default()
                },
            )
            .expect("trains")
            .0,
        )
    })
    .clone()
}

/// A briefly-trained Iris network, its exported artifact, and the held-out
/// feature rows to serve — built once, shared by every test.
struct Fixture {
    artifact: PnnArtifact,
    test_rows: Vec<Vec<f64>>,
    /// Reference bits from direct single-sample plan calls.
    reference: Vec<(Vec<u64>, usize)>,
}

fn fixture() -> &'static Fixture {
    static CELL: OnceLock<Fixture> = OnceLock::new();
    CELL.get_or_init(|| {
        let data = iris();
        let (train, val, test) = data.split(7);
        let config = PnnConfig::for_dataset(data.num_features(), data.num_classes).with_seed(13);
        let mut pnn = Pnn::new(config, surrogate()).expect("valid config");
        Trainer::new(TrainConfig {
            variation: VariationModel::None,
            n_train_mc: 1,
            n_val_mc: 1,
            max_epochs: 6,
            patience: 6,
            parallel: ParallelConfig::serial(),
            ..TrainConfig::default()
        })
        .train(
            &mut pnn,
            LabeledData::new(&train.features, &train.labels).expect("train data"),
            LabeledData::new(&val.features, &val.labels).expect("val data"),
        )
        .expect("trains");

        let artifact = PnnArtifact::from_pnn(&pnn, "Iris").expect("exports");

        // Reference: direct single-sample plan calls — one row per infer,
        // the exact path serving must be indistinguishable from.
        let mut plan = InferencePlan::compile_artifact(&artifact).expect("compiles");
        let rows = test.features.rows();
        let mut test_rows = Vec::with_capacity(rows);
        let mut reference = Vec::with_capacity(rows);
        for i in 0..rows {
            let row: Vec<f64> = test.features.row(i).to_vec();
            let x = Matrix::from_fn(1, row.len(), |_, j| row[j]);
            let out = plan.infer(&x).expect("single-sample infer");
            let class = plan.predict(&x).expect("single-sample predict")[0];
            reference.push((out.row(0).iter().map(|v| v.to_bits()).collect(), class));
            test_rows.push(row);
        }
        Fixture {
            artifact,
            test_rows,
            reference,
        }
    })
}

/// A unique scratch directory per test (no tempfile dependency).
fn scratch_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("pnc-serve-e2e-{}-{tag}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("scratch dir");
    dir
}

fn registry_from_disk(tag: &str) -> ModelRegistry {
    let fx = fixture();
    let dir = scratch_dir(tag);
    fx.artifact.save(&dir.join("iris.json")).expect("saves");
    let mut registry = ModelRegistry::new(pnc_core::PlanPrecision::F64, 32);
    let loaded = registry.load_dir(&dir).expect("loads");
    assert_eq!(loaded, 1);
    assert_eq!(registry.names().collect::<Vec<_>>(), vec!["Iris"]);
    registry
}

fn serving_config(worker_threads: usize) -> ServeConfig {
    ServeConfig {
        // A short dwell and a small max_batch force real coalescing *and*
        // real partial batches under the concurrent load below.
        max_batch: 4,
        max_wait: Duration::from_micros(500),
        queue_capacity: 256,
        worker_threads,
        ..ServeConfig::default()
    }
}

/// The tentpole contract: at every worker count, hammered by 8 client
/// threads at once, every response is byte-identical to the direct
/// single-sample plan call.
#[test]
fn concurrent_serving_is_byte_identical_at_1_2_8_worker_threads() {
    let fx = fixture();
    let registry = registry_from_disk("inproc");
    for worker_threads in [1usize, 2, 8] {
        let server = Arc::new(Server::start(&registry, serving_config(worker_threads)));
        let mut clients = Vec::new();
        for c in 0..8u64 {
            let server = Arc::clone(&server);
            clients.push(std::thread::spawn(move || {
                let fx = fixture();
                // Each client walks the rows from a different offset so
                // batches mix unrelated requests.
                let n = fx.test_rows.len();
                for step in 0..2 * n {
                    let i = (step + c as usize * 3) % n;
                    let scored = server
                        .classify("Iris", &fx.test_rows[i])
                        .expect("classify succeeds");
                    let bits: Vec<u64> = scored.scores.iter().map(|v| v.to_bits()).collect();
                    let (ref_bits, ref_class) = &fx.reference[i];
                    assert_eq!(
                        &bits, ref_bits,
                        "row {i}: served scores differ from direct plan bits \
                         at {worker_threads} worker threads"
                    );
                    assert_eq!(scored.class, *ref_class, "row {i}: class differs");
                }
            }));
        }
        for client in clients {
            client.join().expect("client thread");
        }
        server.shutdown();
        // After shutdown: typed rejection, not a hang or a panic.
        assert!(matches!(
            server.classify("Iris", &fx.test_rows[0]),
            Err(pnc_serve::ServeError::ShuttingDown)
        ));
    }
}

/// The same contract through the framed-TCP front door.
#[test]
fn tcp_round_trip_preserves_bit_identity() {
    let fx = fixture();
    let registry = registry_from_disk("tcp");
    let server = Arc::new(Server::start(&registry, serving_config(2)));
    let tcp = wire::TcpServer::start(Arc::clone(&server), "127.0.0.1:0").expect("binds");
    let addr = tcp.local_addr();

    let mut clients = Vec::new();
    for c in 0..4u64 {
        clients.push(std::thread::spawn(move || {
            let fx = fixture();
            let mut client = wire::WireClient::connect(addr).expect("connects");
            let n = fx.test_rows.len();
            for step in 0..n {
                let i = (step + c as usize * 5) % n;
                let scored = client
                    .classify("Iris", &fx.test_rows[i])
                    .expect("tcp classify");
                let bits: Vec<u64> = scored.scores.iter().map(|v| v.to_bits()).collect();
                let (ref_bits, ref_class) = &fx.reference[i];
                assert_eq!(&bits, ref_bits, "row {i}: TCP hop changed f64 bits");
                assert_eq!(scored.class, *ref_class, "row {i}: TCP class differs");
            }
        }));
    }
    for client in clients {
        client.join().expect("tcp client thread");
    }

    // Typed errors cross the wire with their kinds intact.
    let mut client = wire::WireClient::connect(addr).expect("connects");
    assert!(matches!(
        client.classify("NoSuchModel", &fx.test_rows[0]),
        Err(pnc_serve::ServeError::UnknownModel { .. })
    ));
    assert!(matches!(
        client.classify("Iris", &[1.0]),
        Err(pnc_serve::ServeError::BadRequest { .. })
    ));

    tcp.shutdown();
    server.shutdown();
}

/// Registry-level rejection paths: corrupt artifacts never become servable,
/// duplicates never shadow each other.
#[test]
fn registry_rejects_corrupt_and_duplicate_artifacts() {
    let fx = fixture();
    let mut registry = ModelRegistry::new(pnc_core::PlanPrecision::F64, 8);
    registry.insert(fx.artifact.clone()).expect("first insert");
    let err = registry
        .insert(fx.artifact.clone())
        .expect_err("duplicate name must be rejected");
    assert_eq!(err.kind(), "config");

    // A non-finite weight (as a corrupt JSON round trip would produce it)
    // is rejected at load time with the artifact kind.
    let mut corrupt = fx.artifact.clone();
    corrupt.name = "IrisCorrupt".to_string();
    corrupt.layers[0].w_pos[0] = f64::NAN;
    let err = registry
        .insert(corrupt)
        .expect_err("non-finite artifact must be rejected");
    assert_eq!(err.kind(), "artifact");
    assert_eq!(
        registry.len(),
        1,
        "rejected artifacts must not be half-loaded"
    );
}

/// Overload backpressure under the smallest possible queue: some requests
/// are rejected with the typed overload error, and every accepted request
/// still gets the bit-exact answer.
#[test]
fn overload_rejections_are_typed_and_accepted_requests_stay_exact() {
    let registry = registry_from_disk("overload");
    let config = ServeConfig {
        max_batch: 1,
        // A long dwell on a 1-capacity queue makes overload certain while
        // 8 clients hammer it.
        max_wait: Duration::from_millis(2),
        queue_capacity: 1,
        worker_threads: 1,
        ..ServeConfig::default()
    };
    let server = Arc::new(Server::start(&registry, config));
    let mut clients = Vec::new();
    for _ in 0..8 {
        let server = Arc::clone(&server);
        clients.push(std::thread::spawn(move || {
            let fx = fixture();
            let mut overloaded = 0usize;
            for i in 0..20 {
                let i = i % fx.test_rows.len();
                match server.classify("Iris", &fx.test_rows[i]) {
                    Ok(scored) => {
                        let bits: Vec<u64> = scored.scores.iter().map(|v| v.to_bits()).collect();
                        assert_eq!(&bits, &fx.reference[i].0, "accepted answer must stay exact");
                    }
                    Err(pnc_serve::ServeError::Overloaded { model }) => {
                        assert_eq!(model, "Iris");
                        overloaded += 1;
                    }
                    Err(other) => panic!("only overload rejections are acceptable: {other}"),
                }
            }
            overloaded
        }));
    }
    let rejected: usize = clients
        .into_iter()
        .map(|c| c.join().expect("client thread"))
        .sum();
    assert!(
        rejected > 0,
        "a 1-deep queue under 8 hammering clients must shed load"
    );
    server.shutdown();
}
