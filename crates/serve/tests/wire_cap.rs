//! Wire-framing behaviour at the 16 MiB frame cap: the boundary payload is
//! legal, one byte more is rejected before any allocation or partial
//! write, and a poisoned length prefix surfaces to [`WireClient`] users as
//! a typed [`ServeError`], not a hang or an abort.

use pnc_serve::wire::{read_frame, write_frame, WireClient, MAX_FRAME_BYTES};
use pnc_serve::ServeError;
use std::io::Write;
use std::net::TcpListener;

#[test]
fn frame_exactly_at_the_cap_round_trips() {
    let payload = vec![0xA5u8; MAX_FRAME_BYTES];
    let mut buf = Vec::new();
    write_frame(&mut buf, &payload).expect("cap-sized payload is legal");
    assert_eq!(buf.len(), 4 + MAX_FRAME_BYTES);
    let mut cursor = std::io::Cursor::new(buf);
    let back = read_frame(&mut cursor).expect("cap-sized frame reads back");
    assert_eq!(back.len(), MAX_FRAME_BYTES);
    assert!(back == payload, "payload bytes must survive the round trip");
}

#[test]
fn write_rejects_cap_plus_one_before_touching_the_stream() {
    let payload = vec![0u8; MAX_FRAME_BYTES + 1];
    let mut buf = Vec::new();
    let err = write_frame(&mut buf, &payload).expect_err("must reject");
    assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
    assert!(
        buf.is_empty(),
        "an oversized frame must not leave a partial prefix on the stream"
    );
}

#[test]
fn read_rejects_cap_plus_one_prefix_before_allocating() {
    let mut raw = Vec::new();
    raw.extend_from_slice(&((MAX_FRAME_BYTES as u32) + 1).to_be_bytes());
    // Deliberately no payload bytes: a pre-allocation reject never reads
    // past the prefix, so their absence must not matter.
    let mut cursor = std::io::Cursor::new(raw);
    let err = read_frame(&mut cursor).expect_err("must reject");
    assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
    assert_eq!(
        cursor.position(),
        4,
        "only the 4-byte prefix may be consumed on reject"
    );
}

#[test]
fn read_accepts_a_prefix_exactly_at_the_cap() {
    let mut raw = Vec::new();
    raw.extend_from_slice(&(MAX_FRAME_BYTES as u32).to_be_bytes());
    raw.extend_from_slice(&vec![7u8; MAX_FRAME_BYTES]);
    let mut cursor = std::io::Cursor::new(raw);
    let frame = read_frame(&mut cursor).expect("cap-sized prefix is legal");
    assert_eq!(frame.len(), MAX_FRAME_BYTES);
}

#[test]
fn poisoned_length_prefix_surfaces_as_a_typed_client_error() {
    // A "server" that answers any request with a corrupt (oversized)
    // length prefix. The client must fail its read with a typed
    // ServeError::Io carrying InvalidData — before allocating the
    // advertised 4 GiB.
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("addr");
    let server = std::thread::spawn(move || {
        let (mut stream, _) = listener.accept().expect("accept");
        // Drain the request frame, then poison the response.
        let _ = read_frame(&mut stream);
        stream
            .write_all(&u32::MAX.to_be_bytes())
            .expect("write prefix");
        let _ = stream.flush();
    });
    let mut client = WireClient::connect(addr).expect("connect");
    let err = client
        .classify("iris", &[0.1, 0.2])
        .expect_err("corrupt response must be an error");
    match err {
        ServeError::Io(io) => assert_eq!(io.kind(), std::io::ErrorKind::InvalidData, "{io}"),
        other => panic!("expected ServeError::Io, got {other:?}"),
    }
    server.join().expect("server thread");
}
