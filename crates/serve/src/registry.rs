//! The bespoke-model registry: exported [`PnnArtifact`] files in, compiled
//! [`CompiledPnn`] plans out.
//!
//! The registry is the deployment boundary of the "highly-bespoke" story:
//! every tabular task gets its own tiny network, so a fleet deployment is a
//! directory of artifact files keyed by model name. Loading is strict —
//! [`PnnArtifact::validate`] runs on every artifact (corrupt, non-finite, or
//! shape-inconsistent exports are rejected at load time, before they can
//! serve a single request) — and deterministic (directory loads sort file
//! names, so iteration order never depends on the filesystem).

use crate::{ServeError, OBS_MODELS_LOADED};
use pnc_core::{CompiledPnn, PlanPrecision, PnnArtifact};
use std::collections::BTreeMap;
use std::path::Path;

/// One loaded model: the validated artifact plus its compiled plan.
#[derive(Debug, Clone)]
pub struct ModelEntry {
    /// The validated artifact, kept for introspection (design, dims, name).
    pub artifact: PnnArtifact,
    /// The plan compiled at the registry's precision and capacity. Workers
    /// clone this so each owns its scratch buffers.
    pub(crate) plan: CompiledPnn,
}

impl ModelEntry {
    /// Compiled plan for this model (shared scratch — clone it to run
    /// inference from several threads).
    pub fn plan(&self) -> &CompiledPnn {
        &self.plan
    }
}

/// Holds every servable model, keyed by artifact name.
///
/// All models compile at one registry-level [`PlanPrecision`] and one plan
/// capacity. The capacity should match the server's `max_batch` so every
/// coalesced micro-batch runs as a single plan chunk (larger batches would
/// still be correct — chunking never changes bits — just split internally).
#[derive(Debug, Clone)]
pub struct ModelRegistry {
    precision: PlanPrecision,
    plan_capacity: usize,
    models: BTreeMap<String, ModelEntry>,
}

impl ModelRegistry {
    /// An empty registry compiling plans at `precision` with micro-batch
    /// buffers sized for `plan_capacity` rows (clamped to ≥ 1).
    pub fn new(precision: PlanPrecision, plan_capacity: usize) -> ModelRegistry {
        crate::obs_register();
        ModelRegistry {
            precision,
            plan_capacity: plan_capacity.max(1),
            models: BTreeMap::new(),
        }
    }

    /// The precision every plan in this registry compiles at.
    pub fn precision(&self) -> PlanPrecision {
        self.precision
    }

    /// The micro-batch capacity every plan in this registry compiles with.
    pub fn plan_capacity(&self) -> usize {
        self.plan_capacity
    }

    /// Validates and compiles an artifact into the registry under its
    /// embedded name.
    ///
    /// # Errors
    ///
    /// [`ServeError::Artifact`] when validation or compilation fails (the
    /// artifact never becomes servable), [`ServeError::Config`] when the
    /// name is already taken — two different artifacts silently shadowing
    /// each other is a deployment bug, not a merge.
    pub fn insert(&mut self, artifact: PnnArtifact) -> Result<(), ServeError> {
        if self.models.contains_key(&artifact.name) {
            return Err(ServeError::Config {
                detail: format!("duplicate model name {:?} in registry", artifact.name),
            });
        }
        let plan = CompiledPnn::compile_artifact(&artifact, self.precision, self.plan_capacity)?;
        OBS_MODELS_LOADED.increment();
        self.models
            .insert(artifact.name.clone(), ModelEntry { artifact, plan });
        Ok(())
    }

    /// Loads one artifact JSON file (see [`PnnArtifact::load`]) and inserts
    /// it.
    ///
    /// # Errors
    ///
    /// I/O failures, artifact validation failures, and duplicate names, as
    /// in [`Self::insert`].
    pub fn load_file(&mut self, path: &Path) -> Result<(), ServeError> {
        let artifact = PnnArtifact::load(path)?;
        self.insert(artifact)
    }

    /// Loads every `*.json` artifact in `dir`, in sorted file-name order
    /// (deterministic regardless of filesystem enumeration order). Returns
    /// how many models were loaded.
    ///
    /// # Errors
    ///
    /// Fails on the first unreadable or invalid artifact — a fleet with a
    /// corrupt member should not come up partially.
    pub fn load_dir(&mut self, dir: &Path) -> Result<usize, ServeError> {
        let mut paths: Vec<_> = std::fs::read_dir(dir)?
            .collect::<Result<Vec<_>, _>>()?
            .into_iter()
            .map(|e| e.path())
            .filter(|p| p.extension().is_some_and(|ext| ext == "json"))
            .collect();
        paths.sort();
        for path in &paths {
            self.load_file(path)?;
        }
        Ok(paths.len())
    }

    /// Looks up a model by name.
    pub fn get(&self, name: &str) -> Option<&ModelEntry> {
        self.models.get(name)
    }

    /// Model names in sorted order.
    pub fn names(&self) -> impl Iterator<Item = &str> {
        self.models.keys().map(String::as_str)
    }

    /// Iterates `(name, entry)` in sorted-name order.
    pub(crate) fn entries(&self) -> impl Iterator<Item = (&String, &ModelEntry)> {
        self.models.iter()
    }

    /// Number of loaded models.
    pub fn len(&self) -> usize {
        self.models.len()
    }

    /// Whether the registry holds no models.
    pub fn is_empty(&self) -> bool {
        self.models.is_empty()
    }
}
