//! Typed serving errors — every rejection a client can see has a stable
//! wire kind, so operators can alert on overload separately from bad input.

use pnc_core::PnnError;
use std::fmt;

/// Error type of the serving layer.
#[derive(Debug)]
#[non_exhaustive]
pub enum ServeError {
    /// The request named a model id the registry does not hold.
    UnknownModel {
        /// The unmatched model id.
        model: String,
    },
    /// The request was malformed (wrong feature width, unparsable frame).
    BadRequest {
        /// Human-readable description.
        detail: String,
    },
    /// The model's bounded queue was full — explicit overload rejection,
    /// the backpressure contract (shed load instead of queueing unboundedly).
    Overloaded {
        /// The model whose queue was full.
        model: String,
    },
    /// The server is draining; no new requests are accepted.
    ShuttingDown,
    /// Loading or compiling an exported artifact failed.
    Artifact(PnnError),
    /// The serving configuration was invalid (bad `PNC_SERVE_*` value).
    Config {
        /// Human-readable description.
        detail: String,
    },
    /// A transport-level failure on the framed-TCP path.
    Io(std::io::Error),
    /// An internal failure (worker died, inference error on a batch).
    Internal {
        /// Human-readable description.
        detail: String,
    },
}

impl ServeError {
    /// Stable machine-readable kind, used as the wire error code.
    pub fn kind(&self) -> &'static str {
        match self {
            ServeError::UnknownModel { .. } => "unknown_model",
            ServeError::BadRequest { .. } => "bad_request",
            ServeError::Overloaded { .. } => "overloaded",
            ServeError::ShuttingDown => "shutting_down",
            ServeError::Artifact(_) => "artifact",
            ServeError::Config { .. } => "config",
            ServeError::Io(_) => "io",
            ServeError::Internal { .. } => "internal",
        }
    }
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::UnknownModel { model } => write!(f, "unknown model {model:?}"),
            ServeError::BadRequest { detail } => write!(f, "bad request: {detail}"),
            ServeError::Overloaded { model } => {
                write!(f, "model {model:?} is overloaded (queue full)")
            }
            ServeError::ShuttingDown => write!(f, "server is shutting down"),
            ServeError::Artifact(e) => write!(f, "artifact rejected: {e}"),
            ServeError::Config { detail } => write!(f, "invalid serving config: {detail}"),
            ServeError::Io(e) => write!(f, "transport failure: {e}"),
            ServeError::Internal { detail } => write!(f, "internal serving failure: {detail}"),
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServeError::Artifact(e) => Some(e),
            ServeError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<PnnError> for ServeError {
    fn from(e: PnnError) -> Self {
        ServeError::Artifact(e)
    }
}

impl From<std::io::Error> for ServeError {
    fn from(e: std::io::Error) -> Self {
        ServeError::Io(e)
    }
}
