//! The framed-TCP request path: length-prefixed JSON over a plain socket.
//!
//! Frame format: a 4-byte big-endian payload length, then that many bytes
//! of UTF-8 JSON — [`WireRequest`] client→server, [`WireResponse`]
//! server→client. No HTTP, no TLS, no external dependency: the same
//! zero-dep discipline as the rest of the workspace, and enough protocol
//! for a sidecar or an edge gateway to front a bespoke-model fleet.
//!
//! f64 features and scores travel as JSON numbers. Rust's float formatting
//! is shortest-round-trip (every finite f64 prints to a decimal string that
//! parses back to the same bits), so the wire hop preserves the serving
//! layer's bit-identity contract; non-finite values cannot occur because
//! artifacts are validated finite at load time and the forward is a
//! composition of finite operations.

use crate::{Scored, ServeError, Server};
use serde::{Deserialize, Serialize};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

/// Upper bound on a frame payload (16 MiB) — a corrupt length prefix must
/// not trigger a giant allocation.
pub const MAX_FRAME_BYTES: usize = 16 * 1024 * 1024;

/// One classification request: which model, which feature row. `id` is
/// echoed on the response so clients can pipeline requests on one
/// connection.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WireRequest {
    /// Client-chosen correlation id, echoed verbatim.
    pub id: u64,
    /// Registry model name.
    pub model: String,
    /// Feature row; its length must match the model's input width.
    pub features: Vec<f64>,
}

/// One classification response. A flat struct rather than a Result-shaped
/// enum: `ok` discriminates, `scores`/`class` are meaningful when `ok`,
/// `error_kind`/`error_detail` when not ([`ServeError::kind`] wire codes).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WireResponse {
    /// The request's correlation id (0 when the request was unparsable).
    pub id: u64,
    /// Whether classification succeeded.
    pub ok: bool,
    /// Output voltages per class (empty on error).
    pub scores: Vec<f64>,
    /// Argmax class (0 on error).
    pub class: usize,
    /// Stable error code from [`ServeError::kind`] (empty on success).
    pub error_kind: String,
    /// Human-readable error description (empty on success).
    pub error_detail: String,
}

impl WireResponse {
    /// A success response for `id`.
    pub fn success(id: u64, scored: Scored) -> WireResponse {
        WireResponse {
            id,
            ok: true,
            scores: scored.scores,
            class: scored.class,
            error_kind: String::new(),
            error_detail: String::new(),
        }
    }

    /// An error response for `id`.
    pub fn failure(id: u64, error: &ServeError) -> WireResponse {
        WireResponse {
            id,
            ok: false,
            scores: Vec::new(),
            class: 0,
            error_kind: error.kind().to_string(),
            error_detail: error.to_string(),
        }
    }
}

/// Writes one length-prefixed frame.
///
/// # Errors
///
/// Propagates transport failures; rejects payloads over
/// [`MAX_FRAME_BYTES`] as [`std::io::ErrorKind::InvalidData`].
pub fn write_frame(stream: &mut impl Write, payload: &[u8]) -> std::io::Result<()> {
    if payload.len() > MAX_FRAME_BYTES {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            format!("frame of {} bytes exceeds MAX_FRAME_BYTES", payload.len()),
        ));
    }
    stream.write_all(&(payload.len() as u32).to_be_bytes())?;
    stream.write_all(payload)?;
    stream.flush()
}

/// Reads one length-prefixed frame.
///
/// # Errors
///
/// Propagates transport failures (including clean EOF as
/// [`std::io::ErrorKind::UnexpectedEof`]); rejects length prefixes over
/// [`MAX_FRAME_BYTES`] as [`std::io::ErrorKind::InvalidData`] without
/// allocating.
pub fn read_frame(stream: &mut impl Read) -> std::io::Result<Vec<u8>> {
    let mut len = [0u8; 4];
    stream.read_exact(&mut len)?;
    let len = u32::from_be_bytes(len) as usize;
    if len > MAX_FRAME_BYTES {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            format!("frame length prefix {len} exceeds MAX_FRAME_BYTES"),
        ));
    }
    let mut payload = vec![0u8; len];
    stream.read_exact(&mut payload)?;
    Ok(payload)
}

/// Parses a JSON frame payload: UTF-8 validation, then deserialization.
fn parse_json<T: serde::Deserialize>(raw: &[u8]) -> Result<T, String> {
    let text = std::str::from_utf8(raw).map_err(|e| format!("frame is not UTF-8: {e}"))?;
    serde_json::from_str(text).map_err(|e| e.to_string())
}

/// A blocking client for the framed protocol: one connection, sequential
/// request/response with auto-assigned correlation ids.
#[derive(Debug)]
pub struct WireClient {
    stream: TcpStream,
    next_id: u64,
}

impl WireClient {
    /// Connects to a [`TcpServer`] (or anything speaking the protocol).
    ///
    /// # Errors
    ///
    /// Propagates connection failures.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<WireClient, ServeError> {
        Ok(WireClient {
            stream: TcpStream::connect(addr)?,
            next_id: 1,
        })
    }

    /// Sends one classification request and blocks for its response,
    /// surfacing server-side rejections as the matching [`ServeError`].
    ///
    /// # Errors
    ///
    /// Transport failures as [`ServeError::Io`]; server rejections mapped
    /// back from their wire kind (`overloaded` → [`ServeError::Overloaded`]
    /// and so on).
    pub fn classify(&mut self, model: &str, features: &[f64]) -> Result<Scored, ServeError> {
        let id = self.next_id;
        self.next_id += 1;
        let request = WireRequest {
            id,
            model: model.to_string(),
            features: features.to_vec(),
        };
        let payload = serde_json::to_string(&request).map_err(|e| ServeError::Internal {
            detail: format!("request serialization failed: {e}"),
        })?;
        write_frame(&mut self.stream, payload.as_bytes())?;
        let raw = read_frame(&mut self.stream)?;
        let response: WireResponse = parse_json(&raw).map_err(|e| ServeError::Internal {
            detail: format!("unparsable response frame: {e}"),
        })?;
        if response.id != id {
            return Err(ServeError::Internal {
                detail: format!("response id {} does not match request id {id}", response.id),
            });
        }
        if response.ok {
            Ok(Scored {
                scores: response.scores,
                class: response.class,
            })
        } else {
            Err(match response.error_kind.as_str() {
                "unknown_model" => ServeError::UnknownModel {
                    model: model.to_string(),
                },
                "bad_request" => ServeError::BadRequest {
                    detail: response.error_detail,
                },
                "overloaded" => ServeError::Overloaded {
                    model: model.to_string(),
                },
                "shutting_down" => ServeError::ShuttingDown,
                _ => ServeError::Internal {
                    detail: response.error_detail,
                },
            })
        }
    }
}

/// The TCP front door: an accept loop handing each connection to its own
/// handler thread, all of them funneling into one shared [`Server`].
pub struct TcpServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept_thread: Mutex<Option<JoinHandle<()>>>,
}

fn handle_connection(server: &Server, mut stream: TcpStream) {
    loop {
        let raw = match read_frame(&mut stream) {
            Ok(raw) => raw,
            // Includes clean EOF: the client hung up.
            Err(_) => return,
        };
        let response = match parse_json::<WireRequest>(&raw) {
            Ok(request) => match server.classify(&request.model, &request.features) {
                Ok(scored) => WireResponse::success(request.id, scored),
                Err(e) => WireResponse::failure(request.id, &e),
            },
            Err(e) => WireResponse::failure(
                0,
                &ServeError::BadRequest {
                    detail: format!("unparsable request frame: {e}"),
                },
            ),
        };
        let Ok(payload) = serde_json::to_string(&response) else {
            return;
        };
        if write_frame(&mut stream, payload.as_bytes()).is_err() {
            return;
        }
    }
}

impl TcpServer {
    /// Binds `bind_addr` (use port 0 for an ephemeral port) and starts the
    /// accept loop. The server handle is shared — the caller keeps its
    /// `Arc` and remains responsible for [`Server::shutdown`] after the
    /// TCP front stops.
    ///
    /// # Errors
    ///
    /// Propagates bind failures.
    pub fn start(
        server: Arc<Server>,
        bind_addr: impl ToSocketAddrs,
    ) -> Result<TcpServer, ServeError> {
        let listener = TcpListener::bind(bind_addr)?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let accept_stop = Arc::clone(&stop);
        let accept_thread = std::thread::spawn(move || {
            // Connection handlers run detached: they exit when their client
            // disconnects (or errors), holding only an Arc on the server.
            for stream in listener.incoming() {
                if accept_stop.load(Ordering::SeqCst) {
                    break;
                }
                let Ok(stream) = stream else { continue };
                let server = Arc::clone(&server);
                std::thread::spawn(move || handle_connection(&server, stream));
            }
        });
        Ok(TcpServer {
            addr,
            stop,
            accept_thread: Mutex::new(Some(accept_thread)),
        })
    }

    /// The bound address — connect [`WireClient`]s here.
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops accepting new connections and joins the accept loop. Live
    /// connections finish on their own when their clients disconnect; the
    /// underlying [`Server`] keeps answering them until its own
    /// [`Server::shutdown`]. Idempotent.
    pub fn shutdown(&self) {
        if self.stop.swap(true, Ordering::SeqCst) {
            return;
        }
        // Unblock the accept loop with a throwaway connection to our own
        // port; the loop then observes the stop flag and exits.
        let _ = TcpStream::connect(self.addr);
        let thread = {
            let mut guard = self.accept_thread.lock().unwrap_or_else(|e| e.into_inner());
            guard.take()
        };
        if let Some(thread) = thread {
            let _ = thread.join();
        }
    }
}

impl Drop for TcpServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frames_round_trip() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello frames").expect("writes");
        write_frame(&mut buf, b"").expect("empty payload is legal");
        let mut cursor = std::io::Cursor::new(buf);
        assert_eq!(read_frame(&mut cursor).expect("first"), b"hello frames");
        assert_eq!(read_frame(&mut cursor).expect("second"), b"");
        assert!(
            read_frame(&mut cursor).is_err(),
            "EOF after the last frame is an error, not a phantom frame"
        );
    }

    #[test]
    fn oversized_length_prefix_is_rejected_without_allocating() {
        let mut raw = Vec::new();
        raw.extend_from_slice(&(u32::MAX).to_be_bytes());
        raw.extend_from_slice(b"junk");
        let mut cursor = std::io::Cursor::new(raw);
        let err = read_frame(&mut cursor).expect_err("must reject");
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
    }

    #[test]
    fn wire_structs_round_trip_json_exactly() {
        let request = WireRequest {
            id: 42,
            model: "Iris".to_string(),
            // Awkward bit patterns: subnormal, negative zero, max finite.
            features: vec![5e-324, -0.0, f64::MAX, 0.1 + 0.2],
        };
        let json = serde_json::to_string(&request).expect("serializes");
        let back: WireRequest = serde_json::from_str(&json).expect("parses");
        assert_eq!(request, back, "f64 bits must survive the JSON hop");

        let response = WireResponse::success(
            42,
            Scored {
                scores: vec![0.9303070279367, -0.0000000001],
                class: 0,
            },
        );
        let json = serde_json::to_string(&response).expect("serializes");
        let back: WireResponse = serde_json::from_str(&json).expect("parses");
        assert_eq!(response, back);
    }
}
