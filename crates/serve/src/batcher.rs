//! Per-model micro-batching: a bounded queue, a dwell policy, and batch
//! workers that coalesce concurrent requests into one plan call.
//!
//! The batching policy is `max_batch` / `max_wait`: a worker blocks until
//! the first request arrives, then dwells up to `max_wait` for more before
//! running whatever it has (never more than `max_batch` rows). Because the
//! compiled plans have no cross-row coupling (DESIGN.md §12), coalescing is
//! purely an overhead amortization — every response is bit-identical to a
//! single-sample plan call, whatever the batch composition.
//!
//! Backpressure is explicit: the queue is bounded, and a full queue rejects
//! the *new* request with a typed overload error instead of growing without
//! bound or silently dropping queued work. Shutdown is a graceful drain —
//! a closed queue accepts nothing new but workers keep pulling until it is
//! empty, so every accepted request gets a response.

use crate::{ServeError, OBS_BATCHES, OBS_BATCH_SIZE, OBS_QUEUE_DEPTH, OBS_RESPONSES};
use pnc_core::CompiledPnn;
use pnc_linalg::Matrix;
use std::collections::VecDeque;
use std::sync::mpsc::SyncSender;
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// One classification result: the output voltages and the argmax class,
/// exactly as a direct [`pnc_core::InferencePlan`] `infer` + `predict` pair
/// would produce them.
#[derive(Debug, Clone, PartialEq)]
pub struct Scored {
    /// Output voltages, one per class, in f64 bits straight out of the plan.
    pub scores: Vec<f64>,
    /// Argmax over `scores` with the plan's exact tie-breaking (last
    /// maximum under IEEE total order).
    pub class: usize,
}

/// One accepted request waiting for a worker: validated features plus the
/// rendezvous channel its submitter is blocked on.
pub(crate) struct Pending {
    pub(crate) features: Vec<f64>,
    pub(crate) reply: SyncSender<Result<Scored, ServeError>>,
}

/// Why a push was refused — mapped to [`ServeError`] by the caller, which
/// knows the model name.
pub(crate) enum PushError {
    /// The bounded queue is at capacity.
    Full,
    /// The queue is closed (server draining).
    Closed,
}

struct QueueState {
    items: VecDeque<Pending>,
    open: bool,
}

/// The bounded per-model request queue shared by submitters and workers.
pub(crate) struct ModelQueue {
    state: Mutex<QueueState>,
    ready: Condvar,
    capacity: usize,
}

impl ModelQueue {
    pub(crate) fn new(capacity: usize) -> ModelQueue {
        ModelQueue {
            state: Mutex::new(QueueState {
                items: VecDeque::new(),
                open: true,
            }),
            ready: Condvar::new(),
            capacity: capacity.max(1),
        }
    }

    /// Enqueues a request, rejecting instead of blocking when full.
    pub(crate) fn push(&self, pending: Pending) -> Result<(), PushError> {
        let mut state = self.state.lock().unwrap_or_else(|e| e.into_inner());
        if !state.open {
            return Err(PushError::Closed);
        }
        if state.items.len() >= self.capacity {
            return Err(PushError::Full);
        }
        state.items.push_back(pending);
        OBS_QUEUE_DEPTH.observe(state.items.len() as f64);
        drop(state);
        self.ready.notify_one();
        Ok(())
    }

    /// Closes the queue: no new pushes, workers drain what remains and then
    /// see `None` from [`Self::next_batch`].
    pub(crate) fn close(&self) {
        let mut state = self.state.lock().unwrap_or_else(|e| e.into_inner());
        state.open = false;
        drop(state);
        self.ready.notify_all();
    }

    /// Blocks for the next micro-batch: waits for a first request, dwells
    /// up to `max_wait` for companions, drains at most `max_batch`.
    /// Returns `None` only when the queue is closed *and* empty — the
    /// worker's signal to exit after a complete drain.
    pub(crate) fn next_batch(&self, max_batch: usize, max_wait: Duration) -> Option<Vec<Pending>> {
        let max_batch = max_batch.max(1);
        let mut state = self.state.lock().unwrap_or_else(|e| e.into_inner());
        while state.items.is_empty() {
            if !state.open {
                return None;
            }
            state = self.ready.wait(state).unwrap_or_else(|e| e.into_inner());
        }
        if !max_wait.is_zero() {
            // Dwell: trade a bounded latency hit for a fuller batch. A
            // closed queue cuts the dwell short — drain fast on shutdown.
            let deadline = Instant::now() + max_wait;
            while state.items.len() < max_batch && state.open {
                let now = Instant::now();
                let Some(remaining) = deadline
                    .checked_duration_since(now)
                    .filter(|d| !d.is_zero())
                else {
                    break;
                };
                let (next, timeout) = self
                    .ready
                    .wait_timeout(state, remaining)
                    .unwrap_or_else(|e| e.into_inner());
                state = next;
                if timeout.timed_out() {
                    break;
                }
            }
        }
        let take = state.items.len().min(max_batch);
        Some(state.items.drain(..take).collect())
    }
}

/// The plan's argmax, replicated operation-for-operation (IEEE total order,
/// last maximum wins on ties) so served `class` fields are byte-identical
/// to [`pnc_core::InferencePlan::predict`].
fn argmax_row(row: &[f64]) -> usize {
    row.iter()
        .enumerate()
        .max_by(|a, b| a.1.total_cmp(b.1))
        .map(|(j, _)| j)
        .unwrap_or(0)
}

/// A batch worker's main loop: pull micro-batches until the queue drains
/// closed, run each through this worker's own plan clone, and answer every
/// request in the batch.
pub(crate) fn run_worker(
    mut plan: CompiledPnn,
    queue: Arc<ModelQueue>,
    max_batch: usize,
    max_wait: Duration,
) {
    let (in_dim, out_dim) = (plan.in_dim(), plan.out_dim());
    while let Some(batch) = queue.next_batch(max_batch, max_wait) {
        let rows = batch.len();
        OBS_BATCHES.increment();
        OBS_BATCH_SIZE.observe(rows as f64);
        // pnc-lint: allow(panic-reachability) — i < rows = batch.len() by Matrix::from_fn; features.len() == in_dim was validated at enqueue in Server::classify
        let x = Matrix::from_fn(rows, in_dim, |i, j| batch[i].features[j]);
        let mut out = Matrix::zeros(rows, out_dim);
        match plan.infer_into(&x, &mut out) {
            Ok(()) => {
                for (i, pending) in batch.into_iter().enumerate() {
                    let scores = out.row(i).to_vec();
                    let class = argmax_row(&scores);
                    // A disconnected submitter (client gave up) is not an
                    // error for the batch.
                    let _ = pending.reply.send(Ok(Scored { scores, class }));
                    OBS_RESPONSES.increment();
                }
            }
            Err(e) => {
                for pending in batch {
                    let _ = pending.reply.send(Err(ServeError::Internal {
                        detail: format!("batch inference failed: {e}"),
                    }));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::mpsc::sync_channel;

    fn pending() -> (
        Pending,
        std::sync::mpsc::Receiver<Result<Scored, ServeError>>,
    ) {
        let (tx, rx) = sync_channel(1);
        (
            Pending {
                features: vec![0.0],
                reply: tx,
            },
            rx,
        )
    }

    #[test]
    fn full_queue_rejects_new_requests_not_queued_ones() {
        let q = ModelQueue::new(2);
        let (p1, _r1) = pending();
        let (p2, _r2) = pending();
        let (p3, _r3) = pending();
        assert!(q.push(p1).is_ok());
        assert!(q.push(p2).is_ok());
        assert!(matches!(q.push(p3), Err(PushError::Full)));
        // The two accepted requests are still there, in order.
        let batch = q.next_batch(8, Duration::ZERO).expect("open queue");
        assert_eq!(batch.len(), 2);
    }

    #[test]
    fn closed_queue_rejects_pushes_but_drains_fully() {
        let q = ModelQueue::new(8);
        let (p1, _r1) = pending();
        let (p2, _r2) = pending();
        assert!(q.push(p1).is_ok());
        assert!(q.push(p2).is_ok());
        q.close();
        let (p3, _r3) = pending();
        assert!(matches!(q.push(p3), Err(PushError::Closed)));
        // Graceful drain: one item per batch at max_batch=1, then None.
        assert_eq!(q.next_batch(1, Duration::ZERO).expect("first").len(), 1);
        assert_eq!(q.next_batch(1, Duration::ZERO).expect("second").len(), 1);
        assert!(q.next_batch(1, Duration::ZERO).is_none());
    }

    #[test]
    fn next_batch_respects_max_batch() {
        let q = ModelQueue::new(16);
        let mut receivers = Vec::new();
        for _ in 0..5 {
            let (p, r) = pending();
            assert!(q.push(p).is_ok());
            receivers.push(r);
        }
        assert_eq!(q.next_batch(3, Duration::ZERO).expect("batch").len(), 3);
        assert_eq!(q.next_batch(3, Duration::ZERO).expect("rest").len(), 2);
    }

    #[test]
    fn blocked_worker_wakes_on_close() {
        let q = Arc::new(ModelQueue::new(4));
        let worker_q = Arc::clone(&q);
        let worker = std::thread::spawn(move || worker_q.next_batch(4, Duration::from_millis(50)));
        std::thread::sleep(Duration::from_millis(20));
        q.close();
        assert!(worker.join().expect("worker exits").is_none());
    }

    #[test]
    fn argmax_matches_plan_tie_breaking() {
        // Last maximum wins on exact ties, and positive NaN sorts above
        // every number under IEEE total order — the plan's exact semantics
        // (NaN can't occur in served scores, but the tie-breaking must
        // match bit-for-bit regardless).
        assert_eq!(argmax_row(&[1.0, 3.0, 2.0]), 1);
        assert_eq!(argmax_row(&[2.0, 2.0, 1.0]), 1);
        assert_eq!(argmax_row(&[f64::NAN, 0.0]), 0);
        assert_eq!(argmax_row(&[0.0, -0.0]), 0, "+0 beats -0 in total order");
        assert_eq!(argmax_row(&[]), 0);
    }
}
