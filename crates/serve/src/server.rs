//! The in-process serving front: per-model worker pools over the registry.
//!
//! [`Server::classify`] is the whole request path — validate, enqueue,
//! block on the rendezvous channel until a batch worker answers. It is
//! `&self` and thread-safe, so any number of client threads (or TCP
//! connection handlers, see [`crate::wire`]) share one server.

use crate::batcher::{run_worker, ModelQueue, Pending, PushError, Scored};
use crate::{
    ModelRegistry, ServeConfig, ServeError, OBS_LATENCY, OBS_REJECT_BAD_REQUEST,
    OBS_REJECT_OVERLOAD, OBS_REQUESTS,
};
use pnc_obs::Span;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::sync_channel;
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

struct ModelHandle {
    queue: Arc<ModelQueue>,
    in_dim: usize,
}

/// A running serving instance: every registry model gets a bounded queue
/// and `worker_threads` batch workers, each owning its own plan clone.
///
/// Dropping the server shuts it down gracefully (equivalent to calling
/// [`Self::shutdown`]): queues close, workers drain every accepted request,
/// threads join.
pub struct Server {
    models: BTreeMap<String, ModelHandle>,
    workers: Mutex<Vec<JoinHandle<()>>>,
    stopped: AtomicBool,
}

impl Server {
    /// Spawns the worker pool for every model in `registry` under the
    /// batching policy in `config` (the registry's precision was fixed at
    /// compile time; `config.precision` does not re-compile plans).
    pub fn start(registry: &ModelRegistry, config: ServeConfig) -> Server {
        crate::obs_register();
        let max_batch = config.max_batch.max(1);
        let mut models = BTreeMap::new();
        let mut workers = Vec::new();
        for (name, entry) in registry.entries() {
            let queue = Arc::new(ModelQueue::new(config.queue_capacity));
            for _ in 0..config.worker_threads.max(1) {
                let plan = entry.plan().clone();
                let queue = Arc::clone(&queue);
                let max_wait = config.max_wait;
                workers.push(std::thread::spawn(move || {
                    run_worker(plan, queue, max_batch, max_wait);
                }));
            }
            models.insert(
                name.clone(),
                ModelHandle {
                    queue,
                    in_dim: entry.plan().in_dim(),
                },
            );
        }
        Server {
            models,
            workers: Mutex::new(workers),
            stopped: AtomicBool::new(false),
        }
    }

    /// Classifies one feature row against a model, blocking until a batch
    /// worker answers. The response is bit-identical to a direct
    /// single-sample plan call on the same model — the determinism
    /// contract batching must uphold.
    ///
    /// # Errors
    ///
    /// [`ServeError::UnknownModel`] for an unregistered id,
    /// [`ServeError::BadRequest`] on a feature-width mismatch,
    /// [`ServeError::Overloaded`] when the model's bounded queue is full
    /// (the backpressure signal — retry with backoff),
    /// [`ServeError::ShuttingDown`] after [`Self::shutdown`] began, and
    /// [`ServeError::Internal`] if the worker pool failed mid-request.
    pub fn classify(&self, model: &str, features: &[f64]) -> Result<Scored, ServeError> {
        OBS_REQUESTS.increment();
        let handle = self
            .models
            .get(model)
            .ok_or_else(|| ServeError::UnknownModel {
                model: model.to_string(),
            })?;
        if features.len() != handle.in_dim {
            OBS_REJECT_BAD_REQUEST.increment();
            return Err(ServeError::BadRequest {
                detail: format!(
                    "model {model:?} expects {} features, got {}",
                    handle.in_dim,
                    features.len()
                ),
            });
        }
        let span = Span::new(&OBS_LATENCY);
        let (reply, response) = sync_channel(1);
        let pending = Pending {
            features: features.to_vec(),
            reply,
        };
        match handle.queue.push(pending) {
            Ok(()) => {}
            Err(PushError::Full) => {
                OBS_REJECT_OVERLOAD.increment();
                return Err(ServeError::Overloaded {
                    model: model.to_string(),
                });
            }
            Err(PushError::Closed) => return Err(ServeError::ShuttingDown),
        }
        let result = response.recv().map_err(|_| ServeError::Internal {
            detail: format!("worker pool for model {model:?} exited before answering"),
        })?;
        drop(span);
        result
    }

    /// Model names this server answers for, in sorted order.
    pub fn model_names(&self) -> impl Iterator<Item = &str> {
        self.models.keys().map(String::as_str)
    }

    /// Graceful drain: closes every queue (new requests get
    /// [`ServeError::ShuttingDown`]), lets workers finish every accepted
    /// request, and joins the worker threads. Idempotent.
    pub fn shutdown(&self) {
        if self.stopped.swap(true, Ordering::SeqCst) {
            return;
        }
        for handle in self.models.values() {
            handle.queue.close();
        }
        let workers = {
            let mut guard = self.workers.lock().unwrap_or_else(|e| e.into_inner());
            std::mem::take(&mut *guard)
        };
        for worker in workers {
            // A worker that panicked already failed its in-flight requests
            // via the dropped reply channels; nothing more to do here.
            let _ = worker.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shutdown();
    }
}
