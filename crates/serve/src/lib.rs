//! Batched serving layer over compiled inference plans.
//!
//! The paper's pitch is bespoke-per-task pNNs; at production scale that
//! means a fleet of tiny compiled models answering heavy concurrent
//! traffic. This crate is the front door:
//!
//! * [`ModelRegistry`] — loads exported [`pnc_core::PnnArtifact`] files
//!   (the deployment output of `pnc-core`'s export seam), validates them,
//!   and compiles each into a [`pnc_core::CompiledPnn`] at a
//!   registry-level [`pnc_core::PlanPrecision`].
//! * [`Server`] — per-model micro-batching workers: concurrent requests
//!   coalesce into chunked plan batch calls under a `max_batch` /
//!   `max_wait` policy, with bounded queues, explicit typed overload
//!   rejection ([`ServeError::Overloaded`]), and graceful drain on
//!   shutdown.
//! * [`wire`] — a zero-dependency framed-TCP request path
//!   (length-prefixed JSON), [`wire::TcpServer`].
//!
//! **Determinism contract** (DESIGN.md §13): a response is bit-identical
//! to a direct single-sample [`pnc_core::InferencePlan`] call on the same
//! model — regardless of how requests were batched, which worker served
//! them, or how many workers ran. Batching amortizes per-call overhead;
//! it never touches the numbers. Traffic *shape* (queue depths, batch
//! sizes, latencies) is inherently scheduling-dependent and excluded from
//! the bit-identity contract; payloads are not.
//!
//! Everything is instrumented through `pnc-obs` (`serve.*` counters and
//! histograms — see `docs/METRICS.md`), and the `serving` bench bin plus
//! `scripts/check_bench_serving.sh` gate the throughput floor in CI.
//!
//! # Examples
//!
//! ```no_run
//! use pnc_serve::{ModelRegistry, ServeConfig, Server};
//!
//! # fn main() -> Result<(), pnc_serve::ServeError> {
//! let config = ServeConfig::from_env()?;
//! let mut registry = ModelRegistry::new(config.precision, config.max_batch);
//! registry.load_dir(std::path::Path::new("artifacts/models"))?;
//! let server = Server::start(&registry, config);
//! let scored = server.classify("Iris", &[0.1, 0.5, 0.3, 0.2])?;
//! println!("class {} scores {:?}", scored.class, scored.scores);
//! server.shutdown();
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod batcher;
mod error;
mod registry;
mod server;
pub mod wire;

pub use batcher::Scored;
pub use error::ServeError;
pub use registry::{ModelEntry, ModelRegistry};
pub use server::Server;

use pnc_core::PlanPrecision;
use pnc_obs::{Counter, Histogram};
use std::time::Duration;

// Observability: serving traffic. Catalogued in docs/METRICS.md. Traffic
// metrics are load- and scheduling-dependent (unlike the numeric crates'
// counters they describe real concurrent events, not reproducible work).
pub(crate) static OBS_MODELS_LOADED: Counter = Counter::new("serve.models_loaded");
pub(crate) static OBS_REQUESTS: Counter = Counter::new("serve.requests");
pub(crate) static OBS_RESPONSES: Counter = Counter::new("serve.responses");
pub(crate) static OBS_REJECT_OVERLOAD: Counter = Counter::new("serve.rejects.overload");
pub(crate) static OBS_REJECT_BAD_REQUEST: Counter = Counter::new("serve.rejects.bad_request");
pub(crate) static OBS_BATCHES: Counter = Counter::new("serve.batches");
pub(crate) static OBS_BATCH_SIZE: Histogram = Histogram::new("serve.batch_size");
pub(crate) static OBS_QUEUE_DEPTH: Histogram = Histogram::new("serve.queue_depth");
pub(crate) static OBS_LATENCY: Histogram = Histogram::new("serve.latency_seconds");

pub(crate) fn obs_register() {
    static ONCE: std::sync::Once = std::sync::Once::new();
    ONCE.call_once(|| {
        OBS_MODELS_LOADED.register();
        OBS_REQUESTS.register();
        OBS_RESPONSES.register();
        OBS_REJECT_OVERLOAD.register();
        OBS_REJECT_BAD_REQUEST.register();
        OBS_BATCHES.register();
        OBS_BATCH_SIZE.register();
        OBS_QUEUE_DEPTH.register();
        OBS_LATENCY.register();
    });
}

/// Environment variable: micro-batch size cap (rows per plan call).
pub const MAX_BATCH_ENV_VAR: &str = "PNC_SERVE_MAX_BATCH";
/// Environment variable: micro-batch dwell deadline in microseconds.
pub const MAX_WAIT_ENV_VAR: &str = "PNC_SERVE_MAX_WAIT_US";
/// Environment variable: bounded per-model queue capacity.
pub const QUEUE_ENV_VAR: &str = "PNC_SERVE_QUEUE";
/// Environment variable: worker threads per model.
pub const THREADS_ENV_VAR: &str = "PNC_SERVE_THREADS";

/// Serving policy: batching, backpressure, and numeric precision.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Numeric precision every registry plan compiles at (shared
    /// registry-level setting; `PNC_INFER_PRECISION` under
    /// [`Self::from_env`]).
    pub precision: PlanPrecision,
    /// Most rows a worker coalesces into one plan call (≥ 1; default 32).
    pub max_batch: usize,
    /// How long a worker dwells for more requests after the first arrives
    /// and before running a partial batch (default 200 µs; zero = dispatch
    /// immediately, i.e. single-request-at-a-time when load is serial).
    pub max_wait: Duration,
    /// Bounded per-model queue capacity; a full queue rejects with
    /// [`ServeError::Overloaded`] (≥ 1; default 1024).
    pub queue_capacity: usize,
    /// Batch workers per model, each owning its own plan clone (≥ 1;
    /// default 1). Results are worker-count-independent by the determinism
    /// contract.
    pub worker_threads: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            precision: PlanPrecision::F64,
            max_batch: 32,
            max_wait: Duration::from_micros(200),
            queue_capacity: 1024,
            worker_threads: 1,
        }
    }
}

fn env_usize(var: &str, default: usize, min: usize) -> Result<usize, ServeError> {
    match std::env::var(var) {
        Ok(raw) => {
            let value: usize = raw.trim().parse().map_err(|_| ServeError::Config {
                detail: format!("invalid {var}={raw:?} (expected a non-negative integer)"),
            })?;
            if value < min {
                return Err(ServeError::Config {
                    detail: format!("invalid {var}={raw:?} (minimum {min})"),
                });
            }
            Ok(value)
        }
        Err(_) => Ok(default),
    }
}

impl ServeConfig {
    /// Reads the config from the environment, starting from
    /// [`Self::default`]: `PNC_SERVE_MAX_BATCH`, `PNC_SERVE_MAX_WAIT_US`,
    /// `PNC_SERVE_QUEUE`, `PNC_SERVE_THREADS`, and the shared
    /// `PNC_INFER_PRECISION` (see [`PlanPrecision::from_env`]).
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::Config`] on any unparsable or out-of-range
    /// value — a typo'd deployment variable fails startup loudly instead
    /// of silently serving defaults.
    pub fn from_env() -> Result<ServeConfig, ServeError> {
        let defaults = ServeConfig::default();
        let precision = PlanPrecision::from_env().map_err(|e| ServeError::Config {
            detail: e.to_string(),
        })?;
        let max_wait_us = env_usize(MAX_WAIT_ENV_VAR, defaults.max_wait.as_micros() as usize, 0)?;
        Ok(ServeConfig {
            precision,
            max_batch: env_usize(MAX_BATCH_ENV_VAR, defaults.max_batch, 1)?,
            max_wait: Duration::from_micros(max_wait_us as u64),
            queue_capacity: env_usize(QUEUE_ENV_VAR, defaults.queue_capacity, 1)?,
            worker_threads: env_usize(THREADS_ENV_VAR, defaults.worker_threads, 1)?,
        })
    }
}
