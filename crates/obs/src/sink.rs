//! Opt-in JSON-lines event sink.
//!
//! Events are structured `{"event": "...", "ts_ms": ..., <fields>}` lines
//! written to a destination selected once, lazily, from the `PNC_OBS`
//! environment variable:
//!
//! * unset / empty / `0` / `off` — sink disabled (the default). A disabled
//!   sink costs one relaxed atomic load per [`emit`] call and writes
//!   nothing.
//! * `jsonl:<path>` — append JSON lines to `<path>` (created if missing).
//! * `stderr` — write JSON lines to standard error.
//!
//! Any other value is treated as disabled after a one-time warning on
//! stderr. Event names and their fields are catalogued in
//! `docs/METRICS.md`; emission is best-effort (I/O errors are swallowed so
//! instrumentation can never fail the instrumented computation).

use std::io::Write;
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::{SystemTime, UNIX_EPOCH};

use crate::metrics::{escape, format_f64};

const UNINIT: u8 = 0;
const OFF: u8 = 1;
const ON: u8 = 2;

static STATE: AtomicU8 = AtomicU8::new(UNINIT);

fn writer_slot() -> &'static Mutex<Option<Box<dyn Write + Send>>> {
    static WRITER: OnceLock<Mutex<Option<Box<dyn Write + Send>>>> = OnceLock::new();
    WRITER.get_or_init(|| Mutex::new(None))
}

/// One typed field value of a sink event.
#[derive(Debug, Clone, PartialEq)]
pub enum FieldValue {
    /// An unsigned integer (counts, iteration totals, epochs).
    U64(u64),
    /// A signed integer.
    I64(i64),
    /// A floating-point quantity; non-finite values serialize as `null`.
    F64(f64),
    /// A boolean flag.
    Bool(bool),
    /// A static string (rung names, failure stages).
    Str(&'static str),
}

impl From<u64> for FieldValue {
    fn from(v: u64) -> Self {
        FieldValue::U64(v)
    }
}

impl From<usize> for FieldValue {
    fn from(v: usize) -> Self {
        FieldValue::U64(v as u64)
    }
}

impl From<i64> for FieldValue {
    fn from(v: i64) -> Self {
        FieldValue::I64(v)
    }
}

impl From<f64> for FieldValue {
    fn from(v: f64) -> Self {
        FieldValue::F64(v)
    }
}

impl From<bool> for FieldValue {
    fn from(v: bool) -> Self {
        FieldValue::Bool(v)
    }
}

impl From<&'static str> for FieldValue {
    fn from(v: &'static str) -> Self {
        FieldValue::Str(v)
    }
}

impl FieldValue {
    fn to_json(&self) -> String {
        match self {
            FieldValue::U64(v) => v.to_string(),
            FieldValue::I64(v) => v.to_string(),
            FieldValue::F64(v) if v.is_finite() => format_f64(*v),
            FieldValue::F64(_) => "null".to_string(),
            FieldValue::Bool(v) => v.to_string(),
            FieldValue::Str(s) => format!("\"{}\"", escape(s)),
        }
    }
}

/// Whether the event sink is currently enabled. The first call resolves
/// `PNC_OBS`; afterwards this is a single relaxed atomic load.
pub fn enabled() -> bool {
    match STATE.load(Ordering::Relaxed) {
        ON => true,
        OFF => false,
        _ => init_from_env(),
    }
}

fn init_from_env() -> bool {
    // Serialize initialization through the writer lock so two racing first
    // emitters cannot both open the destination.
    let mut slot = writer_slot()
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    match STATE.load(Ordering::Relaxed) {
        ON => return true,
        OFF => return false,
        _ => {}
    }
    let spec = std::env::var("PNC_OBS").unwrap_or_default();
    let writer: Option<Box<dyn Write + Send>> = match spec.trim() {
        "" | "0" | "off" => None,
        "stderr" => Some(Box::new(std::io::stderr())),
        s => match s.strip_prefix("jsonl:") {
            Some(path) => match std::fs::OpenOptions::new()
                .create(true)
                .append(true)
                .open(path)
            {
                Ok(f) => Some(Box::new(f)),
                Err(e) => {
                    eprintln!("pnc-obs: cannot open PNC_OBS sink {path:?}: {e}; sink disabled");
                    None
                }
            },
            None => {
                eprintln!(
                    "pnc-obs: unrecognized PNC_OBS value {s:?} \
                     (expected `jsonl:<path>` or `stderr`); sink disabled"
                );
                None
            }
        },
    };
    let on = writer.is_some();
    *slot = writer;
    STATE.store(if on { ON } else { OFF }, Ordering::Relaxed);
    on
}

/// Routes subsequent events to `w` (and enables the sink), bypassing
/// `PNC_OBS`. Test hook: lets unit tests capture the event stream in an
/// in-memory buffer.
pub fn install_writer(w: Box<dyn Write + Send>) {
    let mut slot = writer_slot()
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    *slot = Some(w);
    STATE.store(ON, Ordering::Relaxed);
}

/// Disables the sink and drops any installed writer. Test hook: the inverse
/// of [`install_writer`].
pub fn disable() {
    let mut slot = writer_slot()
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    *slot = None;
    STATE.store(OFF, Ordering::Relaxed);
}

/// Emits one structured event line if the sink is enabled; a no-op (one
/// relaxed atomic load) otherwise.
///
/// The line is `{"event": <name>, "ts_ms": <unix millis>, <fields>}`.
/// Field order follows the caller's slice, so lines are stable apart from
/// the timestamp. I/O errors are swallowed.
pub fn emit(event: &str, fields: &[(&str, FieldValue)]) {
    if !enabled() {
        return;
    }
    let ts_ms = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_millis() as u64)
        .unwrap_or(0);
    let mut line = format!("{{\"event\": \"{}\", \"ts_ms\": {}", escape(event), ts_ms);
    for (key, value) in fields {
        line.push_str(&format!(", \"{}\": {}", escape(key), value.to_json()));
    }
    line.push_str("}\n");
    let mut slot = writer_slot()
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    if let Some(w) = slot.as_mut() {
        let _ = w.write_all(line.as_bytes());
        let _ = w.flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn field_values_serialize_as_json() {
        assert_eq!(FieldValue::from(3u64).to_json(), "3");
        assert_eq!(FieldValue::from(-2i64).to_json(), "-2");
        assert_eq!(FieldValue::from(0.25).to_json(), "0.25");
        assert_eq!(FieldValue::from(f64::NAN).to_json(), "null");
        assert_eq!(FieldValue::from(true).to_json(), "true");
        assert_eq!(FieldValue::from("gmin").to_json(), "\"gmin\"");
    }
}
