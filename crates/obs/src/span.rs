//! RAII wall-clock span timers.

use std::time::Instant;

use crate::metrics::Histogram;
use crate::sink::{emit, enabled, FieldValue};

/// An RAII timer: records the elapsed wall-clock time (in seconds) into a
/// [`Histogram`] when dropped, and optionally emits a sink event carrying
/// the duration.
///
/// Wall time is inherently nondeterministic, so duration histograms are
/// **excluded** from the bit-identical determinism contract — only their
/// observation `count` is deterministic. See `DESIGN.md` §9.
///
/// # Examples
///
/// ```
/// use pnc_obs::{Histogram, Span};
///
/// static BUILD_SECONDS: Histogram = Histogram::new("doc.build_seconds");
///
/// {
///     let _span = Span::new(&BUILD_SECONDS);
///     // ... timed work ...
/// } // drop records the elapsed seconds
/// assert_eq!(pnc_obs::snapshot().histogram("doc.build_seconds").unwrap().count, 1);
/// ```
#[must_use = "a Span records its duration on drop; binding it to `_` drops it immediately"]
pub struct Span {
    histogram: &'static Histogram,
    event: Option<&'static str>,
    start: Instant,
}

impl Span {
    /// Starts a span that records into `histogram` on drop.
    pub fn new(histogram: &'static Histogram) -> Self {
        Span {
            histogram,
            event: None,
            start: Instant::now(),
        }
    }

    /// Starts a span that additionally emits a sink event named `event`
    /// (with a `seconds` field) on drop, when the sink is enabled.
    pub fn with_event(histogram: &'static Histogram, event: &'static str) -> Self {
        Span {
            histogram,
            event: Some(event),
            start: Instant::now(),
        }
    }

    /// Seconds elapsed since the span started (without ending it).
    pub fn elapsed_seconds(&self) -> f64 {
        self.start.elapsed().as_secs_f64()
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        let seconds = self.elapsed_seconds();
        self.histogram.observe(seconds);
        if let Some(event) = self.event {
            if enabled() {
                emit(event, &[("seconds", FieldValue::F64(seconds))]);
            }
        }
    }
}
