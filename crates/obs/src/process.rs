//! Process-level resource measurements (peak RSS).
//!
//! These readings come from the operating system, not from the computation,
//! so — like wall-clock durations — their *values* sit outside the
//! determinism contract. Only the gauge's name and registration are
//! deterministic.

use crate::metrics::Gauge;

/// Peak resident-set size of this process in bytes, as reported by the
/// kernel (`VmHWM`). Recorded by [`record_peak_rss`]; `None` until then.
static PEAK_RSS: Gauge = Gauge::new("process.peak_rss_bytes");

/// Reads the process's peak resident-set size (high-water mark) in bytes
/// from `/proc/self/status`.
///
/// Returns `None` on platforms without procfs or if the `VmHWM` line is
/// missing or malformed. The value is monotone over the process lifetime:
/// the kernel never lowers the high-water mark.
pub fn peak_rss_bytes() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    parse_vm_hwm(&status)
}

/// Reads the peak RSS and records it into the `process.peak_rss_bytes`
/// gauge, returning the reading. Call at measurement points (for example
/// after each benchmark phase); the gauge keeps the maximum across calls.
pub fn record_peak_rss() -> Option<u64> {
    let bytes = peak_rss_bytes()?;
    PEAK_RSS.record(bytes);
    Some(bytes)
}

/// Extracts the `VmHWM` value (in bytes) from the contents of
/// `/proc/self/status`. The kernel formats the line as
/// `VmHWM:\t    1772 kB`.
fn parse_vm_hwm(status: &str) -> Option<u64> {
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    let rest = line.strip_prefix("VmHWM:")?.trim();
    let kib_text = rest.strip_suffix("kB")?.trim();
    let kib: u64 = kib_text.parse().ok()?;
    kib.checked_mul(1024)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_kernel_formatted_vm_hwm_line() {
        let status = "Name:\tpnc\nVmPeak:\t  10000 kB\nVmHWM:\t    1772 kB\nVmRSS:\t    1500 kB\n";
        assert_eq!(parse_vm_hwm(status), Some(1772 * 1024));
    }

    #[test]
    fn missing_or_malformed_lines_yield_none() {
        assert_eq!(parse_vm_hwm(""), None);
        assert_eq!(parse_vm_hwm("VmRSS:\t 12 kB\n"), None);
        assert_eq!(parse_vm_hwm("VmHWM:\t twelve kB\n"), None);
        assert_eq!(parse_vm_hwm("VmHWM:\t 12 MB\n"), None);
    }

    #[test]
    fn reading_and_recording_peak_rss_works_on_linux() {
        // The workspace only targets Linux in CI; keep the assertion soft so
        // the test is a no-op on exotic platforms without procfs.
        if let Some(bytes) = record_peak_rss() {
            assert!(bytes > 0);
            // The gauge keeps the max, and VmHWM is monotone, so the
            // snapshot is at least this reading (concurrent tests may have
            // recorded a later, larger one).
            let snap = crate::snapshot();
            assert!(snap.gauge("process.peak_rss_bytes") >= Some(bytes));
        }
    }
}
