//! Named counters and histograms with deterministic thread-merged
//! aggregation.
//!
//! Metrics are `static` items registered lazily on first use. All stored
//! state is either a `u64` tally (whose atomic additions commute, so the
//! merged total is independent of thread interleaving) or an
//! order-independent extremum, which is what makes the aggregate
//! bit-identical at every thread count.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};

/// Number of histogram buckets: bucket 0 collects non-positive (and
/// non-finite) observations; buckets `1..NUM_BUCKETS` are logarithmic with
/// [`BUCKETS_PER_DECADE`] buckets per decade, spanning `1e-12` up to `1e12`
/// (the last bucket is the overflow bucket).
pub(crate) const NUM_BUCKETS: usize = 96;
/// Resolution of the logarithmic buckets.
const BUCKETS_PER_DECADE: f64 = 4.0;
/// `log10` of the lowest positive bucket boundary (`1e-12`).
const LOW_DECADE: f64 = -12.0;

/// A named, monotonically increasing `u64` metric.
///
/// Define one as a `static` and call [`Counter::add`] /
/// [`Counter::increment`] from any thread; additions are atomic and commute,
/// so the total is deterministic regardless of scheduling.
///
/// # Examples
///
/// ```
/// use pnc_obs::Counter;
///
/// static ITERATIONS: Counter = Counter::new("doc.iterations");
/// ITERATIONS.add(17);
/// ITERATIONS.increment();
/// assert_eq!(ITERATIONS.value(), 18);
/// ```
pub struct Counter {
    name: &'static str,
    value: AtomicU64,
    registered: AtomicBool,
}

impl Counter {
    /// Creates a counter. Use as a `static` initializer; the counter
    /// self-registers in the process-wide registry on first use.
    pub const fn new(name: &'static str) -> Self {
        Counter {
            name,
            value: AtomicU64::new(0),
            registered: AtomicBool::new(false),
        }
    }

    /// The metric name (dot-separated, catalogued in `docs/METRICS.md`).
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Adds `n` to the counter.
    pub fn add(&'static self, n: u64) {
        self.ensure_registered();
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Registers the counter without changing its value, so it appears in
    /// snapshots (at zero) even before the first [`Counter::add`].
    /// Instrumented crates register their whole metric set up front so
    /// end-of-run summaries always carry the full documented catalogue.
    pub fn register(&'static self) {
        self.ensure_registered();
    }

    /// Adds 1 to the counter.
    pub fn increment(&'static self) {
        self.add(1);
    }

    /// The current total.
    pub fn value(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }

    fn ensure_registered(&'static self) {
        if self
            .registered
            .compare_exchange(false, true, Ordering::Relaxed, Ordering::Relaxed)
            .is_ok()
        {
            registry()
                .counters
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner)
                .push(self);
        }
    }
}

/// A named histogram of `f64` observations over fixed logarithmic buckets.
///
/// The aggregate state is the observation count, per-bucket tallies (all
/// `u64`, hence order-independent under concurrent merging) and the running
/// min/max (extrema, also order-independent). A *sum* is deliberately **not**
/// kept: floating-point summation depends on the order of additions, which
/// would break the bit-identical-across-thread-counts contract. Consumers
/// needing a central tendency read the bucket distribution.
///
/// Buckets: bucket 0 holds non-positive and non-finite values; the rest are
/// logarithmic at 4 buckets per decade from `1e-12` to `1e12`, with the last
/// bucket collecting overflow. This spans every quantity the workspace
/// observes (KCL residuals ~1e-10, fit costs ~1e-6, RMSE volts ~1e-2,
/// durations in seconds).
///
/// # Examples
///
/// ```
/// use pnc_obs::Histogram;
///
/// static RESIDUAL: Histogram = Histogram::new("doc.residual");
/// RESIDUAL.observe(2.5e-10);
/// RESIDUAL.observe(4.0e-10);
/// let snap = pnc_obs::snapshot();
/// let h = snap.histogram("doc.residual").expect("registered");
/// assert_eq!(h.count, 2);
/// assert_eq!(h.min, Some(2.5e-10));
/// assert_eq!(h.max, Some(4.0e-10));
/// ```
pub struct Histogram {
    name: &'static str,
    count: AtomicU64,
    buckets: [AtomicU64; NUM_BUCKETS],
    /// Bit pattern of the running minimum (`f64::INFINITY` when empty).
    min_bits: AtomicU64,
    /// Bit pattern of the running maximum (`f64::NEG_INFINITY` when empty).
    max_bits: AtomicU64,
    registered: AtomicBool,
}

impl Histogram {
    /// Creates a histogram. Use as a `static` initializer; the histogram
    /// self-registers in the process-wide registry on first use.
    pub const fn new(name: &'static str) -> Self {
        Histogram {
            name,
            count: AtomicU64::new(0),
            buckets: [const { AtomicU64::new(0) }; NUM_BUCKETS],
            min_bits: AtomicU64::new(f64::INFINITY.to_bits()),
            max_bits: AtomicU64::new(f64::NEG_INFINITY.to_bits()),
            registered: AtomicBool::new(false),
        }
    }

    /// The metric name (dot-separated, catalogued in `docs/METRICS.md`).
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Records one observation.
    pub fn observe(&'static self, v: f64) {
        self.ensure_registered();
        self.count.fetch_add(1, Ordering::Relaxed);
        // pnc-lint: allow(panic-reachability) — bucket_index clamps to 0..NUM_BUCKETS for every f64 including NaN/inf (unit-tested below)
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        if v.is_finite() {
            update_extremum(&self.min_bits, v, |new, cur| new < cur);
            update_extremum(&self.max_bits, v, |new, cur| new > cur);
        }
    }

    /// The number of observations so far.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Registers the histogram without recording an observation (see
    /// [`Counter::register`]).
    pub fn register(&'static self) {
        self.ensure_registered();
    }

    fn ensure_registered(&'static self) {
        if self
            .registered
            .compare_exchange(false, true, Ordering::Relaxed, Ordering::Relaxed)
            .is_ok()
        {
            registry()
                .histograms
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner)
                .push(self);
        }
    }
}

/// A named `u64` level metric holding an order-independent **running
/// maximum** — the gauge flavor that fits the determinism contract, because
/// `max` commutes like the histogram extrema do.
///
/// The canonical use is process peak RSS ([`crate::record_peak_rss`]):
/// a measurement of the *environment* rather than of the computation, so —
/// like the `_seconds` histograms — a gauge's **value** is exempt from the
/// bit-identical-across-thread-counts contract; its registration and name
/// are not. See `docs/METRICS.md` ("Gauges").
///
/// # Examples
///
/// ```
/// use pnc_obs::Gauge;
///
/// static WATERMARK: Gauge = Gauge::new("doc.watermark");
/// WATERMARK.record(10);
/// WATERMARK.record(7); // lower: ignored
/// assert_eq!(WATERMARK.value(), Some(10));
/// ```
pub struct Gauge {
    name: &'static str,
    value: AtomicU64,
    /// Whether any value has been recorded (distinguishes "never measured"
    /// from a genuine zero).
    set: AtomicBool,
    registered: AtomicBool,
}

impl Gauge {
    /// Creates a gauge. Use as a `static` initializer; the gauge
    /// self-registers in the process-wide registry on first use.
    pub const fn new(name: &'static str) -> Self {
        Gauge {
            name,
            value: AtomicU64::new(0),
            set: AtomicBool::new(false),
            registered: AtomicBool::new(false),
        }
    }

    /// The metric name (dot-separated, catalogued in `docs/METRICS.md`).
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Records a measurement; the gauge keeps the maximum seen so far.
    pub fn record(&'static self, v: u64) {
        self.ensure_registered();
        self.value.fetch_max(v, Ordering::Relaxed);
        self.set.store(true, Ordering::Release);
    }

    /// The largest recorded value, or `None` if nothing was recorded yet.
    pub fn value(&self) -> Option<u64> {
        self.set
            .load(Ordering::Acquire)
            .then(|| self.value.load(Ordering::Relaxed))
    }

    /// Registers the gauge without recording a value (see
    /// [`Counter::register`]).
    pub fn register(&'static self) {
        self.ensure_registered();
    }

    fn ensure_registered(&'static self) {
        if self
            .registered
            .compare_exchange(false, true, Ordering::Relaxed, Ordering::Relaxed)
            .is_ok()
        {
            registry()
                .gauges
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner)
                .push(self);
        }
    }
}

/// CAS loop replacing the stored extremum when `better(new, current)` holds.
/// The final value depends only on the *set* of observations, never on their
/// order — which keeps histograms inside the determinism contract.
fn update_extremum(slot: &AtomicU64, v: f64, better: impl Fn(f64, f64) -> bool) {
    let mut current = slot.load(Ordering::Relaxed);
    while better(v, f64::from_bits(current)) {
        match slot.compare_exchange_weak(current, v.to_bits(), Ordering::Relaxed, Ordering::Relaxed)
        {
            Ok(_) => break,
            Err(actual) => current = actual,
        }
    }
}

/// Maps an observation to its bucket index (see [`Histogram`] docs).
fn bucket_index(v: f64) -> usize {
    if !v.is_finite() || v <= 0.0 {
        return 0;
    }
    let raw = (v.log10() * BUCKETS_PER_DECADE - LOW_DECADE * BUCKETS_PER_DECADE).floor();
    let clamped = raw.clamp(0.0, (NUM_BUCKETS - 2) as f64);
    1 + clamped as usize
}

/// Exclusive upper bound of bucket `idx`, `None` for the non-positive bucket
/// (0) and the overflow bucket (the last one).
fn bucket_upper_bound(idx: usize) -> Option<f64> {
    if idx == 0 || idx >= NUM_BUCKETS - 1 {
        return None;
    }
    Some(10f64.powf(LOW_DECADE + idx as f64 / BUCKETS_PER_DECADE))
}

struct Registry {
    counters: Mutex<Vec<&'static Counter>>,
    histograms: Mutex<Vec<&'static Histogram>>,
    gauges: Mutex<Vec<&'static Gauge>>,
}

fn registry() -> &'static Registry {
    static REGISTRY: OnceLock<Registry> = OnceLock::new();
    REGISTRY.get_or_init(|| Registry {
        counters: Mutex::new(Vec::new()),
        histograms: Mutex::new(Vec::new()),
        gauges: Mutex::new(Vec::new()),
    })
}

/// Point-in-time value of one [`Counter`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CounterSnapshot {
    /// Metric name.
    pub name: &'static str,
    /// Total at snapshot time.
    pub value: u64,
}

/// Point-in-time aggregate of one [`Histogram`].
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramSnapshot {
    /// Metric name.
    pub name: &'static str,
    /// Number of observations.
    pub count: u64,
    /// Smallest finite observation, `None` when empty.
    pub min: Option<f64>,
    /// Largest finite observation, `None` when empty.
    pub max: Option<f64>,
    /// Non-empty buckets as `(exclusive upper bound, count)`; the bound is
    /// `None` for the non-positive bucket and the overflow bucket.
    pub buckets: Vec<(Option<f64>, u64)>,
}

/// Point-in-time value of one [`Gauge`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GaugeSnapshot {
    /// Metric name.
    pub name: &'static str,
    /// Largest recorded value, `None` when never recorded.
    pub value: Option<u64>,
}

/// A deterministic, name-sorted snapshot of every registered metric.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricsSnapshot {
    /// All registered counters, sorted by name.
    pub counters: Vec<CounterSnapshot>,
    /// All registered histograms, sorted by name.
    pub histograms: Vec<HistogramSnapshot>,
    /// All registered gauges, sorted by name.
    pub gauges: Vec<GaugeSnapshot>,
}

impl MetricsSnapshot {
    /// The value of the counter called `name`, if registered.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|c| c.name == name)
            .map(|c| c.value)
    }

    /// The snapshot of the histogram called `name`, if registered.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms.iter().find(|h| h.name == name)
    }

    /// The recorded value of the gauge called `name`, if registered and
    /// ever recorded.
    pub fn gauge(&self, name: &str) -> Option<u64> {
        self.gauges
            .iter()
            .find(|g| g.name == name)
            .and_then(|g| g.value)
    }

    /// Serializes the snapshot as a stable JSON object:
    ///
    /// ```json
    /// {
    ///   "counters": {"name": value, ...},
    ///   "histograms": {"name": {"count": n, "min": x, "max": x,
    ///                           "buckets": [[upper_bound, count], ...]}, ...},
    ///   "gauges": {"name": value_or_null, ...}
    /// }
    /// ```
    ///
    /// Keys are sorted by metric name; a `null` bucket bound marks the
    /// non-positive and overflow buckets. Non-finite min/max serialize as
    /// `null`, as does a gauge that was registered but never recorded.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n  \"counters\": {");
        for (i, c) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\n    \"{}\": {}", escape(c.name), c.value));
        }
        out.push_str("\n  },\n  \"histograms\": {");
        for (i, h) in self.histograms.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\n    \"{}\": {{\"count\": {}, \"min\": {}, \"max\": {}, \"buckets\": [",
                escape(h.name),
                h.count,
                json_f64_opt(h.min),
                json_f64_opt(h.max)
            ));
            for (j, (bound, count)) in h.buckets.iter().enumerate() {
                if j > 0 {
                    out.push_str(", ");
                }
                out.push_str(&format!("[{}, {}]", json_f64_opt(*bound), count));
            }
            out.push_str("]}");
        }
        out.push_str("\n  },\n  \"gauges\": {");
        for (i, g) in self.gauges.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let value = match g.value {
                Some(v) => v.to_string(),
                None => "null".to_string(),
            };
            out.push_str(&format!("\n    \"{}\": {}", escape(g.name), value));
        }
        out.push_str("\n  }\n}\n");
        out
    }
}

/// JSON-escapes a metric name (names are ASCII identifiers in practice; the
/// escape keeps the writer safe regardless).
pub(crate) fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Formats an optional f64 as a JSON number or `null` (also `null` for
/// non-finite values, which JSON cannot represent).
pub(crate) fn json_f64_opt(v: Option<f64>) -> String {
    match v {
        Some(x) if x.is_finite() => format_f64(x),
        _ => "null".to_string(),
    }
}

/// Formats a finite f64 as a JSON number (Rust's shortest-roundtrip `{}`
/// display never produces exponent-free invalid JSON, but integers need a
/// trailing `.0` guard to stay floats on re-read — not required by JSON, so
/// plain display is used).
pub(crate) fn format_f64(v: f64) -> String {
    format!("{v}")
}

/// Takes a deterministic, name-sorted snapshot of every registered metric.
pub fn snapshot() -> MetricsSnapshot {
    let reg = registry();
    let mut counters: Vec<CounterSnapshot> = reg
        .counters
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
        .iter()
        .map(|c| CounterSnapshot {
            name: c.name,
            value: c.value(),
        })
        .collect();
    counters.sort_by_key(|c| c.name);
    let mut histograms: Vec<HistogramSnapshot> = reg
        .histograms
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
        .iter()
        .map(|h| {
            let count = h.count();
            let buckets: Vec<(Option<f64>, u64)> = h
                .buckets
                .iter()
                .enumerate()
                .filter_map(|(idx, b)| {
                    let n = b.load(Ordering::Relaxed);
                    (n > 0).then_some((bucket_upper_bound(idx), n))
                })
                .collect();
            let min = f64::from_bits(h.min_bits.load(Ordering::Relaxed));
            let max = f64::from_bits(h.max_bits.load(Ordering::Relaxed));
            HistogramSnapshot {
                name: h.name,
                count,
                min: min.is_finite().then_some(min),
                max: max.is_finite().then_some(max),
                buckets,
            }
        })
        .collect();
    histograms.sort_by_key(|h| h.name);
    let mut gauges: Vec<GaugeSnapshot> = reg
        .gauges
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
        .iter()
        .map(|g| GaugeSnapshot {
            name: g.name,
            value: g.value(),
        })
        .collect();
    gauges.sort_by_key(|g| g.name);
    MetricsSnapshot {
        counters,
        histograms,
        gauges,
    }
}

/// Resets every registered metric to its empty state (counters to zero,
/// histograms to no observations). Intended for tests and for benchmark
/// binaries that measure several configurations in one process.
pub fn reset() {
    let reg = registry();
    for c in reg
        .counters
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
        .iter()
    {
        c.value.store(0, Ordering::Relaxed);
    }
    for h in reg
        .histograms
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
        .iter()
    {
        h.count.store(0, Ordering::Relaxed);
        for b in &h.buckets {
            b.store(0, Ordering::Relaxed);
        }
        h.min_bits.store(f64::INFINITY.to_bits(), Ordering::Relaxed);
        h.max_bits
            .store(f64::NEG_INFINITY.to_bits(), Ordering::Relaxed);
    }
    for g in reg
        .gauges
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
        .iter()
    {
        g.set.store(false, Ordering::Relaxed);
        g.value.store(0, Ordering::Relaxed);
    }
}

/// Writes [`snapshot`]`().to_json()` to `path` — the end-of-run metrics
/// summary the bench binaries emit next to their main output.
///
/// # Errors
///
/// Propagates the underlying file-system error.
pub fn write_summary(path: &std::path::Path) -> std::io::Result<()> {
    std::fs::write(path, snapshot().to_json())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_spans_the_documented_range() {
        assert_eq!(bucket_index(f64::NAN), 0);
        assert_eq!(bucket_index(-1.0), 0);
        assert_eq!(bucket_index(0.0), 0);
        assert_eq!(bucket_index(f64::INFINITY), 0);
        assert_eq!(bucket_index(1e-13), 1, "below range clamps to first");
        assert_eq!(bucket_index(1e13), NUM_BUCKETS - 1, "above range clamps");
        // Monotone in v.
        let mut prev = 0;
        for exp in -48..=48 {
            let v = 10f64.powf(exp as f64 / 4.0) * 1.0001;
            let idx = bucket_index(v);
            assert!(idx >= prev, "bucket index must be monotone");
            prev = idx;
        }
    }

    #[test]
    fn bucket_upper_bounds_bracket_their_values() {
        for v in [1e-10, 3.3e-4, 0.02, 1.0, 7.5, 1234.5] {
            let idx = bucket_index(v);
            if let Some(ub) = bucket_upper_bound(idx) {
                assert!(v <= ub * 1.0000001, "v={v} above its bound {ub}");
            }
            if let Some(lb) = bucket_upper_bound(idx - 1) {
                assert!(v >= lb * 0.9999999, "v={v} below its bucket start {lb}");
            }
        }
    }

    #[test]
    fn json_formatting_is_valid() {
        assert_eq!(json_f64_opt(None), "null");
        assert_eq!(json_f64_opt(Some(f64::NAN)), "null");
        assert_eq!(json_f64_opt(Some(0.5)), "0.5");
        assert_eq!(escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
    }

    #[test]
    fn gauge_keeps_the_maximum_and_distinguishes_unset_from_zero() {
        static TEST_MAX_GAUGE: Gauge = Gauge::new("test.gauge.max");
        assert_eq!(TEST_MAX_GAUGE.value(), None);
        TEST_MAX_GAUGE.record(7);
        TEST_MAX_GAUGE.record(3);
        assert_eq!(TEST_MAX_GAUGE.value(), Some(7));
        TEST_MAX_GAUGE.record(11);
        assert_eq!(TEST_MAX_GAUGE.value(), Some(11));
        let snap = snapshot();
        assert_eq!(snap.gauge("test.gauge.max"), Some(11));
    }

    #[test]
    fn never_recorded_gauge_serializes_as_null() {
        static TEST_UNSET_GAUGE: Gauge = Gauge::new("test.gauge.unset");
        TEST_UNSET_GAUGE.register();
        let snap = snapshot();
        assert_eq!(snap.gauge("test.gauge.unset"), None);
        assert!(snap.to_json().contains("\"test.gauge.unset\": null"));
    }
}
