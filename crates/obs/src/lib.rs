//! Structured observability for the printed-neuromorphic workspace.
//!
//! Every crate in the workspace instruments its hot paths through this one
//! zero-dependency crate, so a single substrate answers "what is the system
//! doing": Newton iteration counts, recovery-rung usage, Levenberg–Marquardt
//! damping escalations, per-epoch Monte-Carlo losses, dataset-build
//! throughput. Three primitives:
//!
//! * [`Counter`] / [`Histogram`] — named, process-global metrics backed by
//!   atomic integers. Aggregation is **thread-merged and deterministic**:
//!   every stored quantity is a `u64` (counts, bucket tallies) or an
//!   order-independent extremum (min/max), so totals are bit-identical no
//!   matter how worker threads interleave — the same invariant the parallel
//!   substrate guarantees for numeric results (`DESIGN.md` §7).
//! * [`Span`] — an RAII wall-clock timer recording its elapsed time into a
//!   histogram on drop. Wall time is inherently nondeterministic, so
//!   duration histograms are *excluded* from the determinism contract
//!   (their `count` is still deterministic).
//! * [`Gauge`] — a named running-maximum measurement for environment
//!   readings such as peak RSS ([`record_peak_rss`]). Like wall time,
//!   gauge *values* come from the operating system and sit outside the
//!   determinism contract; names and registration stay deterministic.
//! * [`sink`] — an opt-in JSON-lines event stream, selected with the
//!   `PNC_OBS` environment variable (`jsonl:<path>` or `stderr`). Off by
//!   default: a disabled sink is one relaxed atomic load per [`sink::emit`]
//!   call and writes nothing.
//!
//! Metric snapshots serialize to JSON with [`snapshot`] /
//! [`MetricsSnapshot::to_json`] / [`write_summary`]; the bench binaries call
//! [`write_summary`] at end of run so every benchmark trajectory carries
//! solver-effort and robustness columns. The full catalogue of metric names,
//! units and emitting sites lives in `docs/METRICS.md` at the workspace
//! root; the design contract is `DESIGN.md` §9.
//!
//! # Examples
//!
//! ```
//! use pnc_obs::{Counter, Histogram};
//!
//! static SOLVES: Counter = Counter::new("example.solves");
//! static RESIDUAL: Histogram = Histogram::new("example.residual");
//!
//! SOLVES.add(3);
//! RESIDUAL.observe(1.5e-10);
//! let snap = pnc_obs::snapshot();
//! assert_eq!(snap.counter("example.solves"), Some(3));
//! assert!(snap.to_json().contains("example.residual"));
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

mod metrics;
mod process;
pub mod sink;
mod span;

pub use metrics::{
    reset, snapshot, write_summary, Counter, CounterSnapshot, Gauge, GaugeSnapshot, Histogram,
    HistogramSnapshot, MetricsSnapshot,
};
pub use process::{peak_rss_bytes, record_peak_rss};
pub use sink::FieldValue;
pub use span::Span;
