//! Determinism tests for pnc-obs aggregation: counter and histogram merges
//! must be bit-identical at 1, 2, and 8 threads, and a disabled sink must
//! add no events.
//!
//! All tests in this binary share the process-global metric registry, so
//! they serialize through a single mutex and `reset()` between runs.

use std::io::Write;
use std::sync::{Arc, Mutex, OnceLock};

use pnc_obs::{sink, Counter, FieldValue, Histogram, MetricsSnapshot};

fn test_lock() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(|| Mutex::new(()))
        .lock()
        .expect("unpoisoned")
}

static SOLVES: Counter = Counter::new("test.solves");
static RESIDUAL: Histogram = Histogram::new("test.residual");

/// The observations every thread partition must reduce to the same
/// aggregate: a fixed set of values split across `threads` workers.
fn workload() -> Vec<f64> {
    (0..640)
        .map(|i| 10f64.powf((i % 97) as f64 / 4.0 - 12.0) * (1.0 + i as f64 * 1e-3))
        .collect()
}

fn run_partitioned(threads: usize) -> MetricsSnapshot {
    pnc_obs::reset();
    let values = workload();
    let chunk = values.len().div_ceil(threads);
    std::thread::scope(|scope| {
        for part in values.chunks(chunk) {
            scope.spawn(move || {
                for &v in part {
                    SOLVES.add(1);
                    RESIDUAL.observe(v);
                }
            });
        }
    });
    pnc_obs::snapshot()
}

#[test]
fn counter_and_histogram_merge_bit_identical_across_thread_counts() {
    let _guard = test_lock();
    let reference = run_partitioned(1);
    assert_eq!(reference.counter("test.solves"), Some(640));
    assert_eq!(reference.histogram("test.residual").unwrap().count, 640);
    for threads in [2, 8] {
        let snap = run_partitioned(threads);
        // PartialEq compares every u64 tally and the f64 min/max bit
        // patterns via their values — the full aggregate must match the
        // single-threaded reduction exactly.
        assert_eq!(
            snap, reference,
            "aggregate diverged at {threads} threads from the 1-thread reference"
        );
        assert_eq!(
            snap.to_json(),
            reference.to_json(),
            "serialized summary diverged at {threads} threads"
        );
    }
    pnc_obs::reset();
}

#[test]
fn reset_clears_counters_and_histograms() {
    let _guard = test_lock();
    pnc_obs::reset();
    SOLVES.add(5);
    RESIDUAL.observe(0.5);
    pnc_obs::reset();
    let snap = pnc_obs::snapshot();
    assert_eq!(snap.counter("test.solves"), Some(0));
    let h = snap.histogram("test.residual").unwrap();
    assert_eq!(h.count, 0);
    assert_eq!(h.min, None);
    assert_eq!(h.max, None);
    assert!(h.buckets.is_empty());
}

/// A `Write` implementation capturing bytes into a shared buffer.
#[derive(Clone)]
struct SharedBuffer(Arc<Mutex<Vec<u8>>>);

impl Write for SharedBuffer {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.0.lock().expect("unpoisoned").extend_from_slice(buf);
        Ok(buf.len())
    }

    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

#[test]
fn disabled_sink_adds_no_events_and_enabled_sink_captures_them() {
    let _guard = test_lock();
    let buffer = SharedBuffer(Arc::new(Mutex::new(Vec::new())));

    // Enabled: events reach the installed writer as JSON lines.
    sink::install_writer(Box::new(buffer.clone()));
    assert!(sink::enabled());
    sink::emit(
        "test.event",
        &[
            ("iterations", FieldValue::U64(7)),
            ("residual", FieldValue::F64(1.5e-10)),
            ("rung", FieldValue::Str("gmin_stepping")),
        ],
    );
    let captured = String::from_utf8(buffer.0.lock().expect("unpoisoned").clone()).unwrap();
    assert!(captured.contains("\"event\": \"test.event\""));
    assert!(captured.contains("\"iterations\": 7"));
    assert!(captured.contains("\"rung\": \"gmin_stepping\""));
    assert!(captured.ends_with("}\n"));

    // Disabled: emitting adds nothing.
    sink::disable();
    assert!(!sink::enabled());
    let before = buffer.0.lock().expect("unpoisoned").len();
    sink::emit("test.event", &[("iterations", FieldValue::U64(9))]);
    let after = buffer.0.lock().expect("unpoisoned").len();
    assert_eq!(before, after, "disabled sink must not write");
}
