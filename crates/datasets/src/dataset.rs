use pnc_linalg::Matrix;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// A classification dataset with `[0, 1]`-normalized features.
///
/// Feature values double as input voltages of the printed circuits, hence
/// the normalization invariant (checked at construction).
///
/// # Examples
///
/// ```
/// use pnc_datasets::Dataset;
/// use pnc_linalg::Matrix;
///
/// let features = Matrix::from_rows(&[&[0.0, 1.0], &[1.0, 0.0]]).expect("shape");
/// let data = Dataset::new("toy", features, vec![0, 1], 2);
/// assert_eq!(data.len(), 2);
/// assert_eq!(data.label(1), 1);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Dataset {
    /// Human-readable name, matching the row labels of Tab. II.
    pub name: String,
    /// `n × d` feature matrix, min–max normalized to `[0, 1]`.
    pub features: Matrix,
    /// Class label per row.
    pub labels: Vec<usize>,
    /// Number of classes.
    pub num_classes: usize,
}

impl Dataset {
    /// Creates a dataset and checks its invariants.
    ///
    /// # Panics
    ///
    /// Panics if the label count differs from the row count, a label is out
    /// of range, or a feature leaves `[0, 1]` — generator bugs should be
    /// loud.
    pub fn new(
        name: impl Into<String>,
        features: Matrix,
        labels: Vec<usize>,
        num_classes: usize,
    ) -> Self {
        assert_eq!(
            features.rows(),
            labels.len(),
            "label count must match row count"
        );
        assert!(
            labels.iter().all(|&l| l < num_classes),
            "labels must be < num_classes"
        );
        assert!(
            features
                .as_slice()
                .iter()
                .all(|&v| (-1e-9..=1.0 + 1e-9).contains(&v)),
            "features must be normalized to [0, 1]"
        );
        Dataset {
            name: name.into(),
            features,
            labels,
            num_classes,
        }
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// Returns `true` if the dataset has no samples.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// Number of features.
    pub fn num_features(&self) -> usize {
        self.features.cols()
    }

    /// The feature row of sample `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn sample(&self, i: usize) -> &[f64] {
        self.features.row(i)
    }

    /// The label of sample `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn label(&self, i: usize) -> usize {
        self.labels[i]
    }

    /// Builds a sub-dataset from row indices.
    ///
    /// # Panics
    ///
    /// Panics if an index is out of range.
    pub fn subset(&self, indices: &[usize]) -> Dataset {
        let features = Matrix::from_fn(indices.len(), self.num_features(), |i, j| {
            self.features[(indices[i], j)]
        });
        let labels = indices.iter().map(|&i| self.labels[i]).collect();
        Dataset {
            name: self.name.clone(),
            features,
            labels,
            num_classes: self.num_classes,
        }
    }

    /// The paper's random 60/20/20 train/validation/test split,
    /// deterministically shuffled by `seed`.
    pub fn split(&self, seed: u64) -> (Dataset, Dataset, Dataset) {
        let mut indices: Vec<usize> = (0..self.len()).collect();
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        indices.shuffle(&mut rng);
        let n = self.len();
        let n_train = (n as f64 * 0.6).round() as usize;
        let n_val = (n as f64 * 0.2).round() as usize;
        let train = self.subset(&indices[..n_train]);
        let val = self.subset(&indices[n_train..(n_train + n_val).min(n)]);
        let test = self.subset(&indices[(n_train + n_val).min(n)..]);
        (train, val, test)
    }

    /// Per-class sample counts.
    pub fn class_counts(&self) -> Vec<usize> {
        let mut counts = vec![0usize; self.num_classes];
        for &l in &self.labels {
            counts[l] += 1;
        }
        counts
    }

    /// The accuracy of always predicting the most frequent class — the
    /// floor any trained model must beat.
    pub fn majority_accuracy(&self) -> f64 {
        let counts = self.class_counts();
        *counts.iter().max().unwrap_or(&0) as f64 / self.len().max(1) as f64
    }
}

/// Min–max normalizes the columns of `m` to `[0, 1]` in place. Constant
/// columns map to `0.5`.
pub(crate) fn normalize_columns(m: &mut Matrix) {
    let (rows, cols) = m.shape();
    for j in 0..cols {
        let mut lo = f64::INFINITY;
        let mut hi = f64::NEG_INFINITY;
        for i in 0..rows {
            lo = lo.min(m[(i, j)]);
            hi = hi.max(m[(i, j)]);
        }
        for i in 0..rows {
            m[(i, j)] = if hi > lo {
                (m[(i, j)] - lo) / (hi - lo)
            } else {
                0.5
            };
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> Dataset {
        let features = Matrix::from_fn(10, 2, |i, j| ((i + j) % 5) as f64 / 4.0);
        let labels = (0..10).map(|i| i % 2).collect();
        Dataset::new("toy", features, labels, 2)
    }

    #[test]
    fn accessors() {
        let d = toy();
        assert_eq!(d.len(), 10);
        assert_eq!(d.num_features(), 2);
        assert_eq!(d.label(3), 1);
        assert_eq!(d.class_counts(), vec![5, 5]);
        assert_eq!(d.majority_accuracy(), 0.5);
    }

    #[test]
    #[should_panic(expected = "label count")]
    fn rejects_label_mismatch() {
        Dataset::new("bad", Matrix::zeros(3, 2), vec![0, 1], 2);
    }

    #[test]
    #[should_panic(expected = "normalized")]
    fn rejects_unnormalized_features() {
        Dataset::new("bad", Matrix::filled(2, 2, 3.0), vec![0, 1], 2);
    }

    #[test]
    fn subset_selects_rows() {
        let d = toy();
        let s = d.subset(&[0, 9]);
        assert_eq!(s.len(), 2);
        assert_eq!(s.label(1), d.label(9));
        assert_eq!(s.sample(0), d.sample(0));
    }

    #[test]
    fn split_is_deterministic_and_complete() {
        let d = toy();
        let (a1, b1, c1) = d.split(3);
        let (a2, b2, c2) = d.split(3);
        assert_eq!(a1, a2);
        assert_eq!(b1, b2);
        assert_eq!(c1, c2);
        assert_eq!(a1.len() + b1.len() + c1.len(), d.len());
        let (a3, _, _) = d.split(4);
        assert_ne!(a1, a3, "different seeds should shuffle differently");
    }

    #[test]
    fn normalize_columns_handles_constant() {
        let mut m = Matrix::from_rows(&[&[2.0, 5.0], &[4.0, 5.0]]).unwrap();
        normalize_columns(&mut m);
        assert_eq!(m[(0, 0)], 0.0);
        assert_eq!(m[(1, 0)], 1.0);
        assert_eq!(m[(0, 1)], 0.5);
    }
}
