//! The 13 benchmark classification datasets of the paper's evaluation
//! (Tab. II), reconstructed for an offline environment.
//!
//! The paper evaluates on 13 small UCI datasets whose complexity matches the
//! device counts achievable in printed electronics. The originals cannot be
//! downloaded here, so this crate reconstructs each one in one of three
//! ways (documented per generator and in `DESIGN.md`):
//!
//! * **rule enumeration** — *Balance Scale* and *Tic-Tac-Toe Endgame* are
//!   deterministic enumerations of their published generation rules, and
//!   *Acute Inflammations* is re-generated from its rule system;
//! * **structural simulation** — *Energy Efficiency* (a simulated dataset in
//!   the original, too) and *Pendigits* (pen-stroke templates) are produced
//!   by small generative models with the original schema;
//! * **distribution matching** — the clinical/biological datasets are drawn
//!   from class-conditional Gaussian models with published per-class
//!   statistics, matching feature count, sample count, class balance and
//!   approximate separability.
//!
//! All features are min–max normalized to `[0, 1]` — input *voltages* for
//! the printed circuits, following the pNN convention. Everything is
//! deterministic given the generator seed baked into each dataset.
//!
//! # Examples
//!
//! ```
//! use pnc_datasets::{benchmark_suite, Dataset};
//!
//! let suite = benchmark_suite();
//! assert_eq!(suite.len(), 13);
//! let iris = suite.iter().find(|d| d.name == "Iris").expect("present");
//! assert_eq!(iris.num_features(), 4);
//! assert_eq!(iris.num_classes, 3);
//! let (train, val, test) = iris.split(1);
//! assert_eq!(train.len() + val.len() + test.len(), iris.len());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod csv;
mod dataset;
pub mod generators;
mod synth;

pub use dataset::Dataset;
pub use generators::benchmark_suite;
