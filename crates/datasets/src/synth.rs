//! Class-conditional Gaussian synthesis for the distribution-matched
//! datasets.

use crate::dataset::normalize_columns;
use crate::Dataset;
use pnc_linalg::Matrix;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One class of a Gaussian mixture: per-feature mean and standard deviation
/// plus the number of samples to draw.
pub(crate) struct GaussianClass {
    pub n: usize,
    pub mean: Vec<f64>,
    pub std: Vec<f64>,
}

/// Draws a standard normal via Box–Muller (keeps `rand` usage to the uniform
/// primitive so no extra distribution crates are needed).
pub(crate) fn randn(rng: &mut StdRng) -> f64 {
    let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// Builds a dataset from class-conditional Gaussians, then min–max
/// normalizes every feature column to `[0, 1]`.
///
/// # Panics
///
/// Panics if the classes disagree on dimension (generator bug).
pub(crate) fn gaussian_dataset(name: &str, classes: &[GaussianClass], seed: u64) -> Dataset {
    let dim = classes.first().map(|c| c.mean.len()).unwrap_or(0);
    assert!(
        classes
            .iter()
            .all(|c| c.mean.len() == dim && c.std.len() == dim),
        "all classes must share the feature dimension"
    );
    let total: usize = classes.iter().map(|c| c.n).sum();
    let mut rng = StdRng::seed_from_u64(seed);
    let mut features = Matrix::zeros(total, dim);
    let mut labels = Vec::with_capacity(total);
    let mut row = 0;
    for (label, class) in classes.iter().enumerate() {
        for _ in 0..class.n {
            for j in 0..dim {
                features[(row, j)] = class.mean[j] + class.std[j] * randn(&mut rng);
            }
            labels.push(label);
            row += 1;
        }
    }
    normalize_columns(&mut features);
    Dataset::new(name, features, labels, classes.len())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn randn_moments() {
        let mut rng = StdRng::seed_from_u64(0);
        let n = 20_000;
        let xs: Vec<f64> = (0..n).map(|_| randn(&mut rng)).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.03, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }

    #[test]
    fn gaussian_dataset_is_deterministic_and_separable() {
        let classes = [
            GaussianClass {
                n: 50,
                mean: vec![0.0, 0.0],
                std: vec![0.5, 0.5],
            },
            GaussianClass {
                n: 50,
                mean: vec![5.0, 5.0],
                std: vec![0.5, 0.5],
            },
        ];
        let a = gaussian_dataset("t", &classes, 9);
        let b = gaussian_dataset("t", &classes, 9);
        assert_eq!(a, b);
        assert_eq!(a.len(), 100);
        // Well-separated blobs: a mid-threshold splits them perfectly.
        let correct = (0..a.len())
            .filter(|&i| (a.sample(i)[0] > 0.5) == (a.label(i) == 1))
            .count();
        assert!(correct > 95, "only {correct}/100 separable");
    }
}
