//! Generators for the 13 benchmark datasets of Tab. II.
//!
//! Every generator is deterministic and documents how it reconstructs its
//! UCI original (see the crate docs for the three reconstruction classes).

mod gaussian;
mod rules;
mod simulated;

pub use gaussian::{
    breast_cancer_wisconsin, cardiotocography, iris, mammographic_mass, seeds, vertebral_column_2c,
    vertebral_column_3c,
};
pub use rules::{acute_inflammation, balance_scale, tic_tac_toe};
pub use simulated::{energy_efficiency_y1, energy_efficiency_y2, pendigits};

use crate::Dataset;

/// The full 13-dataset benchmark suite in the row order of Tab. II.
///
/// # Examples
///
/// ```
/// let names: Vec<_> = pnc_datasets::benchmark_suite()
///     .iter()
///     .map(|d| d.name.clone())
///     .collect();
/// assert_eq!(names[0], "Acute Inflammation");
/// assert_eq!(names[12], "Vertebral Column (3 cl.)");
/// ```
pub fn benchmark_suite() -> Vec<Dataset> {
    vec![
        acute_inflammation(),
        balance_scale(),
        breast_cancer_wisconsin(),
        cardiotocography(),
        energy_efficiency_y1(),
        energy_efficiency_y2(),
        iris(),
        mammographic_mass(),
        pendigits(),
        seeds(),
        tic_tac_toe(),
        vertebral_column_2c(),
        vertebral_column_3c(),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_has_thirteen_datasets_with_expected_schemas() {
        let suite = benchmark_suite();
        // (name, samples, features, classes) — samples are exact for the
        // enumerated datasets and match the UCI originals for the rest.
        let expected: [(&str, usize, usize, usize); 13] = [
            ("Acute Inflammation", 120, 6, 2),
            ("Balance Scale", 625, 4, 3),
            ("Breast Cancer Wisconsin", 683, 9, 2),
            ("Cardiotocography", 2126, 21, 3),
            ("Energy Efficiency (y1)", 768, 8, 3),
            ("Energy Efficiency (y2)", 768, 8, 3),
            ("Iris", 150, 4, 3),
            ("Mammographic Mass", 830, 5, 2),
            ("Pendigits", 10992, 16, 10),
            ("Seeds", 210, 7, 3),
            ("Tic-Tac-Toe Endgame", 958, 9, 2),
            ("Vertebral Column (2 cl.)", 310, 6, 2),
            ("Vertebral Column (3 cl.)", 310, 6, 3),
        ];
        assert_eq!(suite.len(), expected.len());
        for (d, (name, n, f, c)) in suite.iter().zip(expected) {
            assert_eq!(d.name, name);
            assert_eq!(d.len(), n, "{name}: sample count");
            assert_eq!(d.num_features(), f, "{name}: feature count");
            assert_eq!(d.num_classes, c, "{name}: class count");
        }
    }

    #[test]
    fn all_datasets_are_deterministic() {
        let a = benchmark_suite();
        let b = benchmark_suite();
        assert_eq!(a, b);
    }

    #[test]
    fn every_class_is_represented_everywhere() {
        for d in benchmark_suite() {
            let counts = d.class_counts();
            assert!(
                counts.iter().all(|&c| c > 0),
                "{}: empty class in {counts:?}",
                d.name
            );
        }
    }

    #[test]
    fn no_dataset_is_majority_trivial() {
        // Every dataset must leave real signal beyond the majority class.
        for d in benchmark_suite() {
            assert!(
                d.majority_accuracy() < 0.95,
                "{}: majority accuracy {}",
                d.name,
                d.majority_accuracy()
            );
        }
    }

    /// A nearest-centroid classifier (fit on train, evaluated on test) must
    /// beat the majority floor on every dataset — i.e. the synthesized data
    /// carry learnable class structure, as the UCI originals do.
    #[test]
    fn centroid_classifier_beats_majority() {
        for d in benchmark_suite() {
            let (train, _, test) = d.split(0);
            let dim = d.num_features();
            let mut centroids = vec![vec![0.0; dim]; d.num_classes];
            let mut counts = vec![0usize; d.num_classes];
            for i in 0..train.len() {
                let y = train.label(i);
                counts[y] += 1;
                for (j, &x) in train.sample(i).iter().enumerate() {
                    centroids[y][j] += x;
                }
            }
            for (c, n) in centroids.iter_mut().zip(&counts) {
                for v in c.iter_mut() {
                    *v /= (*n).max(1) as f64;
                }
            }
            let mut correct = 0;
            for i in 0..test.len() {
                let x = test.sample(i);
                let pred = (0..d.num_classes)
                    .min_by(|&a, &b| {
                        let da: f64 = x
                            .iter()
                            .zip(&centroids[a])
                            .map(|(xi, ci)| (xi - ci).powi(2))
                            .sum();
                        let db: f64 = x
                            .iter()
                            .zip(&centroids[b])
                            .map(|(xi, ci)| (xi - ci).powi(2))
                            .sum();
                        da.total_cmp(&db)
                    })
                    .expect("at least one class");
                if pred == test.label(i) {
                    correct += 1;
                }
            }
            let acc = correct as f64 / test.len() as f64;
            let floor = d.majority_accuracy();
            assert!(
                acc > floor - 0.02,
                "{}: centroid accuracy {acc} does not reach majority floor {floor}",
                d.name
            );
            assert!(
                acc > 1.05 / d.num_classes as f64,
                "{}: centroid accuracy {acc} is at chance",
                d.name
            );
        }
    }
}
