//! Structurally simulated datasets: the originals are themselves generated
//! (building-energy simulation, digitizer traces), so we reproduce the
//! generating structure.

use crate::dataset::normalize_columns;
use crate::synth::randn;
use crate::Dataset;
use pnc_linalg::Matrix;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The 768 parametric building configurations of the UCI *Energy Efficiency*
/// study: 12 building shapes (relative compactness / surface / wall / roof
/// area / height combinations) × 4 orientations × (1 + 3 × 5) glazing
/// configurations... reduced to the original grid of 12 × 4 × 4 × 4.
fn building_grid() -> Vec<[f64; 8]> {
    // The 12 shapes of the original study (relative compactness with the
    // corresponding surface/wall/roof areas and height).
    const SHAPES: [[f64; 5]; 12] = [
        [0.98, 514.5, 294.0, 110.25, 7.0],
        [0.90, 563.5, 318.5, 122.50, 7.0],
        [0.86, 588.0, 294.0, 147.00, 7.0],
        [0.82, 612.5, 318.5, 147.00, 7.0],
        [0.79, 637.0, 343.0, 147.00, 7.0],
        [0.76, 661.5, 416.5, 122.50, 7.0],
        [0.74, 686.0, 245.0, 220.50, 3.5],
        [0.71, 710.5, 269.5, 220.50, 3.5],
        [0.69, 735.0, 294.0, 220.50, 3.5],
        [0.66, 759.5, 318.5, 220.50, 3.5],
        [0.64, 784.0, 343.0, 220.50, 3.5],
        [0.62, 808.5, 367.5, 220.50, 3.5],
    ];
    let orientations = [2.0, 3.0, 4.0, 5.0];
    let glazing_areas = [0.0, 0.10, 0.25, 0.40];
    let glazing_dists = [0.0, 1.0, 2.0, 3.0];

    let mut rows = Vec::with_capacity(768);
    for shape in SHAPES {
        for &o in &orientations {
            for (gi, &ga) in glazing_areas.iter().enumerate() {
                for &gd in &glazing_dists {
                    // The original couples glazing distribution with area
                    // (no distribution when no glazing); we keep the grid
                    // complete at 12·4·4·4 = 768 rows as in UCI.
                    let gd = if gi == 0 { 0.0 } else { gd };
                    rows.push([shape[0], shape[1], shape[2], shape[3], shape[4], o, ga, gd]);
                }
            }
        }
    }
    rows
}

/// Physically plausible heating-load score: poor compactness, large wall
/// area, tall storeys and generous glazing all increase demand.
fn heating_load(row: &[f64; 8]) -> f64 {
    let [rc, _surface, wall, roof, height, orientation, glazing, gdist] = *row;
    40.0 * (1.0 - rc) + 0.06 * wall + 0.03 * roof + 2.0 * height + 22.0 * glazing - 0.4 * gdist
        + 0.3 * (orientation - 3.5).abs()
}

/// Cooling load weights the same drivers differently (solar gain through
/// glazing dominates).
fn cooling_load(row: &[f64; 8]) -> f64 {
    let [rc, surface, _wall, roof, height, orientation, glazing, gdist] = *row;
    25.0 * (1.0 - rc)
        + 0.02 * surface
        + 0.05 * roof
        + 2.4 * height
        + 30.0 * glazing
        + 0.2 * gdist
        + 0.5 * (orientation - 3.5).abs()
}

fn energy_dataset(name: &str, load: impl Fn(&[f64; 8]) -> f64) -> Dataset {
    let rows = building_grid();
    let scores: Vec<f64> = rows.iter().map(load).collect();
    // Tertile binning turns the regression target into the 3-class task the
    // pNN benchmark uses.
    let mut sorted = scores.clone();
    sorted.sort_by(f64::total_cmp);
    let t1 = sorted[sorted.len() / 3];
    let t2 = sorted[2 * sorted.len() / 3];
    let labels = scores
        .iter()
        .map(|&s| {
            if s < t1 {
                0
            } else if s < t2 {
                1
            } else {
                2
            }
        })
        .collect();
    let mut features = Matrix::from_fn(rows.len(), 8, |i, j| rows[i][j]);
    normalize_columns(&mut features);
    Dataset::new(name, features, labels, 3)
}

/// *Energy Efficiency* (UCI), heating-load target `y1`, binned into three
/// demand classes.
pub fn energy_efficiency_y1() -> Dataset {
    energy_dataset("Energy Efficiency (y1)", heating_load)
}

/// *Energy Efficiency* (UCI), cooling-load target `y2`, binned into three
/// demand classes.
pub fn energy_efficiency_y2() -> Dataset {
    energy_dataset("Energy Efficiency (y2)", cooling_load)
}

/// Stroke templates for the ten digits: coarse polylines in a 100×100 box,
/// mimicking how the original dataset captured pen trajectories on a
/// digitizer tablet.
fn digit_template(digit: usize) -> Vec<(f64, f64)> {
    match digit {
        0 => vec![
            (50.0, 95.0),
            (15.0, 75.0),
            (10.0, 40.0),
            (30.0, 5.0),
            (70.0, 5.0),
            (90.0, 40.0),
            (85.0, 75.0),
            (50.0, 95.0),
        ],
        1 => vec![(35.0, 75.0), (55.0, 95.0), (55.0, 50.0), (55.0, 5.0)],
        2 => vec![
            (15.0, 75.0),
            (40.0, 95.0),
            (80.0, 80.0),
            (70.0, 50.0),
            (20.0, 15.0),
            (10.0, 5.0),
            (90.0, 5.0),
        ],
        3 => vec![
            (15.0, 90.0),
            (70.0, 95.0),
            (85.0, 75.0),
            (45.0, 55.0),
            (90.0, 30.0),
            (65.0, 5.0),
            (15.0, 10.0),
        ],
        4 => vec![
            (70.0, 5.0),
            (70.0, 60.0),
            (70.0, 95.0),
            (15.0, 35.0),
            (90.0, 35.0),
        ],
        5 => vec![
            (85.0, 95.0),
            (20.0, 95.0),
            (15.0, 55.0),
            (65.0, 60.0),
            (85.0, 30.0),
            (55.0, 5.0),
            (15.0, 10.0),
        ],
        6 => vec![
            (75.0, 95.0),
            (35.0, 75.0),
            (15.0, 35.0),
            (35.0, 5.0),
            (80.0, 15.0),
            (75.0, 45.0),
            (20.0, 40.0),
        ],
        7 => vec![(10.0, 95.0), (90.0, 95.0), (55.0, 50.0), (30.0, 5.0)],
        8 => vec![
            (50.0, 95.0),
            (20.0, 75.0),
            (50.0, 50.0),
            (85.0, 75.0),
            (50.0, 95.0),
            (15.0, 25.0),
            (50.0, 5.0),
            (85.0, 25.0),
            (50.0, 50.0),
        ],
        _ => vec![
            (85.0, 75.0),
            (50.0, 95.0),
            (15.0, 70.0),
            (45.0, 45.0),
            (85.0, 75.0),
            (80.0, 30.0),
            (70.0, 5.0),
        ],
    }
}

/// Arc-length resampling of a polyline to `n` points.
fn resample(path: &[(f64, f64)], n: usize) -> Vec<(f64, f64)> {
    // Running arc length; tracking the total in a scalar avoids indexing
    // into `cumulative` for the previous entry.
    let mut total = 0.0;
    let mut cumulative = vec![0.0];
    for w in path.windows(2) {
        let d = ((w[1].0 - w[0].0).powi(2) + (w[1].1 - w[0].1).powi(2)).sqrt();
        total += d;
        cumulative.push(total);
    }
    (0..n)
        .map(|k| {
            let target = total * k as f64 / (n - 1) as f64;
            let seg = cumulative
                .windows(2)
                .position(|w| target <= w[1])
                .unwrap_or(path.len() - 2);
            let seg_len = (cumulative[seg + 1] - cumulative[seg]).max(1e-12);
            let t = (target - cumulative[seg]) / seg_len;
            (
                path[seg].0 + t * (path[seg + 1].0 - path[seg].0),
                path[seg].1 + t * (path[seg + 1].1 - path[seg].1),
            )
        })
        .collect()
}

/// *Pen-Based Recognition of Handwritten Digits* (UCI): 10 992 samples of
/// 8 resampled `(x, y)` pen coordinates (16 features), 10 classes. We
/// regenerate the capture process: jittered, slightly rotated and scaled
/// stroke templates, arc-length resampled to 8 points — the same
/// preprocessing the original applied to tablet traces.
pub fn pendigits() -> Dataset {
    let mut rng = StdRng::seed_from_u64(0xD161);
    let per_class = [1143, 1143, 1144, 1055, 1144, 1055, 1056, 1142, 1055, 1055];
    let total: usize = per_class.iter().sum();
    let mut features = Matrix::zeros(total, 16);
    let mut labels = Vec::with_capacity(total);
    let mut row = 0;
    for (digit, &count) in per_class.iter().enumerate() {
        let template = digit_template(digit);
        for _ in 0..count {
            // Writer variation: rotation, anisotropic scale, offset, jitter.
            let angle = 0.12 * randn(&mut rng);
            let (sa, ca) = angle.sin_cos();
            let sx = 1.0 + 0.12 * randn(&mut rng);
            let sy = 1.0 + 0.12 * randn(&mut rng);
            let dx = 6.0 * randn(&mut rng);
            let dy = 6.0 * randn(&mut rng);
            let jitter = rng.gen_range(1.5..4.0);

            let distorted: Vec<(f64, f64)> = template
                .iter()
                .map(|&(x, y)| {
                    let (cx, cy) = (x - 50.0, y - 50.0);
                    let (rx, ry) = (ca * cx - sa * cy, sa * cx + ca * cy);
                    (
                        50.0 + sx * rx + dx + jitter * randn(&mut rng),
                        50.0 + sy * ry + dy + jitter * randn(&mut rng),
                    )
                })
                .collect();
            for (k, (x, y)) in resample(&distorted, 8).into_iter().enumerate() {
                features[(row, 2 * k)] = x;
                features[(row, 2 * k + 1)] = y;
            }
            labels.push(digit);
            row += 1;
        }
    }
    normalize_columns(&mut features);
    Dataset::new("Pendigits", features, labels, 10)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn energy_grids_have_768_rows_and_balanced_tertiles() {
        for d in [energy_efficiency_y1(), energy_efficiency_y2()] {
            assert_eq!(d.len(), 768);
            let counts = d.class_counts();
            for &c in &counts {
                assert!(
                    (170..=350).contains(&c),
                    "{}: unbalanced tertiles {counts:?}",
                    d.name
                );
            }
        }
    }

    #[test]
    fn energy_targets_differ() {
        let y1 = energy_efficiency_y1();
        let y2 = energy_efficiency_y2();
        assert_eq!(y1.features, y2.features, "same buildings");
        assert_ne!(y1.labels, y2.labels, "different load targets");
    }

    #[test]
    fn resample_preserves_endpoints() {
        let path = [(0.0, 0.0), (10.0, 0.0), (10.0, 10.0)];
        let r = resample(&path, 5);
        assert_eq!(r.len(), 5);
        assert!((r[0].0).abs() < 1e-9);
        assert!((r[4].0 - 10.0).abs() < 1e-9 && (r[4].1 - 10.0).abs() < 1e-9);
        // Equal arc-length spacing: mid point is at length 10 of 20.
        assert!((r[2].0 - 10.0).abs() < 1e-9 && (r[2].1).abs() < 1e-9);
    }

    #[test]
    fn pendigits_has_uci_size_and_all_digits() {
        let d = pendigits();
        assert_eq!(d.len(), 10_992);
        assert_eq!(d.num_classes, 10);
        assert!(d.class_counts().iter().all(|&c| c > 1000));
    }

    #[test]
    fn pendigit_classes_are_distinguishable() {
        // Per-class mean trajectories must differ substantially between
        // digits (otherwise the task would be unlearnable noise).
        let d = pendigits();
        let mut means = vec![vec![0.0; 16]; 10];
        let mut counts = vec![0usize; 10];
        for i in 0..d.len() {
            counts[d.label(i)] += 1;
            for (j, &x) in d.sample(i).iter().enumerate() {
                means[d.label(i)][j] += x;
            }
        }
        for (m, c) in means.iter_mut().zip(&counts) {
            for v in m.iter_mut() {
                *v /= *c as f64;
            }
        }
        for a in 0..10 {
            for b in (a + 1)..10 {
                let dist: f64 = means[a]
                    .iter()
                    .zip(&means[b])
                    .map(|(x, y)| (x - y).powi(2))
                    .sum::<f64>()
                    .sqrt();
                assert!(dist > 0.15, "digits {a} and {b} too similar: {dist}");
            }
        }
    }
}
