//! Distribution-matched clinical/biological datasets.
//!
//! Each generator draws class-conditional Gaussians whose per-class means
//! and spreads follow the published summary statistics of the UCI original,
//! matching sample count, feature count, class balance and approximate
//! separability. The paper's claims are relative comparisons between
//! training setups on identical data, which this preserves.

use crate::synth::{gaussian_dataset, GaussianClass};
use crate::Dataset;

/// *Breast Cancer Wisconsin (Original)*, cleaned size: 683 samples, 9
/// cytological features graded 1–10, 2 classes (65 % benign / 35 %
/// malignant). Benign cases cluster at low grades, malignant at high grades
/// with larger spread.
pub fn breast_cancer_wisconsin() -> Dataset {
    gaussian_dataset(
        "Breast Cancer Wisconsin",
        &[
            GaussianClass {
                n: 444,
                mean: vec![3.0, 1.3, 1.4, 1.3, 2.1, 1.3, 2.1, 1.2, 1.1],
                std: vec![1.7, 0.9, 0.9, 1.0, 0.9, 1.2, 1.1, 0.9, 0.5],
            },
            GaussianClass {
                n: 239,
                mean: vec![7.2, 6.6, 6.6, 5.6, 5.3, 7.6, 6.0, 5.9, 2.6],
                std: vec![2.4, 2.7, 2.6, 3.2, 2.4, 3.1, 2.3, 3.4, 2.5],
            },
        ],
        0xBC,
    )
}

/// *Cardiotocography* (UCI CTG, NSP target): 2126 fetal heart-rate records
/// with 21 features, 3 classes — normal (78 %), suspect (14 %), pathological
/// (8 %). Suspect and pathological records differ in baseline variability,
/// deceleration counts and histogram statistics.
pub fn cardiotocography() -> Dataset {
    // 21 features loosely following the CTG feature groups: baseline,
    // accelerations/movements, decelerations, variability, histogram stats.
    let normal_mean = vec![
        133.0, 0.4, 8.0, 0.2, 0.0, 0.0, 0.5, 45.0, 1.3, 5.0, 10.0, 140.0, 93.0, 164.0, 4.0, 0.3,
        137.0, 140.0, 138.0, 15.0, 0.3,
    ];
    let normal_std = vec![
        9.0, 0.4, 6.0, 0.3, 0.2, 0.05, 0.5, 15.0, 0.8, 4.0, 6.0, 25.0, 25.0, 17.0, 2.8, 0.6, 15.0,
        15.0, 15.0, 12.0, 0.5,
    ];
    let suspect_mean = vec![
        141.0, 0.1, 4.0, 0.1, 0.3, 0.0, 2.2, 65.0, 0.6, 12.0, 14.0, 110.0, 85.0, 172.0, 3.0, 0.5,
        145.0, 147.0, 145.0, 9.0, 0.8,
    ];
    let suspect_std = vec![
        10.0, 0.2, 4.0, 0.2, 0.4, 0.05, 1.2, 18.0, 0.6, 6.0, 7.0, 30.0, 25.0, 18.0, 2.2, 0.7, 16.0,
        16.0, 16.0, 8.0, 0.7,
    ];
    let path_mean = vec![
        131.0, 0.05, 2.0, 0.05, 1.5, 0.1, 4.0, 85.0, 0.4, 20.0, 18.0, 90.0, 80.0, 178.0, 2.2, 0.8,
        120.0, 128.0, 122.0, 25.0, 1.6,
    ];
    let path_std = vec![
        14.0, 0.1, 3.0, 0.1, 1.2, 0.2, 2.0, 20.0, 0.5, 9.0, 8.0, 35.0, 28.0, 20.0, 1.8, 0.9, 20.0,
        20.0, 20.0, 18.0, 0.8,
    ];
    gaussian_dataset(
        "Cardiotocography",
        &[
            GaussianClass {
                n: 1655,
                mean: normal_mean,
                std: normal_std,
            },
            GaussianClass {
                n: 295,
                mean: suspect_mean,
                std: suspect_std,
            },
            GaussianClass {
                n: 176,
                mean: path_mean,
                std: path_std,
            },
        ],
        0xC76,
    )
}

/// *Iris*: 150 samples, 4 features, 3 balanced classes, drawn from the
/// classic per-class means and standard deviations (setosa / versicolor /
/// virginica). Setosa is linearly separable; the other two overlap —
/// matching the original's geometry.
pub fn iris() -> Dataset {
    gaussian_dataset(
        "Iris",
        &[
            GaussianClass {
                n: 50,
                mean: vec![5.006, 3.428, 1.462, 0.246],
                std: vec![0.352, 0.379, 0.174, 0.105],
            },
            GaussianClass {
                n: 50,
                mean: vec![5.936, 2.770, 4.260, 1.326],
                std: vec![0.516, 0.314, 0.470, 0.198],
            },
            GaussianClass {
                n: 50,
                mean: vec![6.588, 2.974, 5.552, 2.026],
                std: vec![0.636, 0.322, 0.552, 0.275],
            },
        ],
        0x1815,
    )
}

/// *Mammographic Mass* (UCI, rows with missing values removed ≈ 830):
/// 5 features (BI-RADS assessment, age, shape, margin, density), 2 nearly
/// balanced classes (benign / malignant).
pub fn mammographic_mass() -> Dataset {
    gaussian_dataset(
        "Mammographic Mass",
        &[
            GaussianClass {
                n: 427,
                mean: vec![3.7, 49.7, 2.2, 2.1, 2.9],
                std: vec![1.0, 13.7, 1.1, 1.2, 0.4],
            },
            GaussianClass {
                n: 403,
                mean: vec![4.8, 61.8, 3.6, 3.8, 2.9],
                std: vec![0.8, 11.7, 0.9, 1.2, 0.4],
            },
        ],
        0x3A3,
    )
}

/// *Seeds* (UCI): 210 wheat kernels, 7 geometric features, 3 balanced
/// varieties (Kama / Rosa / Canadian) with the published per-variety
/// geometry.
pub fn seeds() -> Dataset {
    gaussian_dataset(
        "Seeds",
        &[
            // Kama
            GaussianClass {
                n: 70,
                mean: vec![14.33, 14.29, 0.880, 5.51, 3.24, 2.67, 5.09],
                std: vec![1.22, 0.58, 0.016, 0.23, 0.18, 1.17, 0.26],
            },
            // Rosa
            GaussianClass {
                n: 70,
                mean: vec![18.33, 16.14, 0.884, 6.15, 3.68, 3.64, 6.02],
                std: vec![1.44, 0.62, 0.016, 0.27, 0.19, 1.18, 0.25],
            },
            // Canadian
            GaussianClass {
                n: 70,
                mean: vec![11.87, 13.25, 0.849, 5.23, 2.85, 4.79, 5.12],
                std: vec![0.72, 0.34, 0.022, 0.14, 0.15, 1.34, 0.16],
            },
        ],
        0x5EED,
    )
}

/// *Vertebral Column* (UCI), 3-class variant: 310 patients, 6 biomechanical
/// features, classes normal (100) / disk hernia (60) / spondylolisthesis
/// (150) with the published per-class spine geometry.
pub fn vertebral_column_3c() -> Dataset {
    gaussian_dataset("Vertebral Column (3 cl.)", &vertebral_classes(), 0x3BAC)
}

/// *Vertebral Column* (UCI), 2-class variant: the same cohort with disk
/// hernia and spondylolisthesis merged into "abnormal" (210 vs 100 normal).
pub fn vertebral_column_2c() -> Dataset {
    // Draw the identical cohort as the 3-class variant, then merge labels so
    // the two variants describe the same patients, as in UCI.
    let d3 = vertebral_column_3c();
    let labels = d3
        .labels
        .iter()
        .map(|&l| if l == 0 { 0 } else { 1 })
        .collect();
    Dataset::new("Vertebral Column (2 cl.)", d3.features, labels, 2)
}

fn vertebral_classes() -> Vec<GaussianClass> {
    vec![
        // Normal: moderate incidence, low grade of spondylolisthesis.
        GaussianClass {
            n: 100,
            mean: vec![51.7, 12.8, 43.5, 38.9, 123.9, 2.2],
            std: vec![12.4, 6.8, 12.3, 9.6, 9.0, 6.3],
        },
        // Disk hernia: reduced lordosis and sacral slope.
        GaussianClass {
            n: 60,
            mean: vec![47.6, 17.4, 35.5, 30.2, 116.5, 2.5],
            std: vec![10.7, 7.0, 9.7, 7.6, 9.3, 5.5],
        },
        // Spondylolisthesis: high incidence and a large slip grade.
        GaussianClass {
            n: 150,
            mean: vec![71.5, 20.7, 64.1, 50.8, 114.5, 51.9],
            std: vec![15.1, 11.5, 16.4, 12.3, 15.6, 40.0],
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn class_balances_match_the_originals() {
        assert_eq!(breast_cancer_wisconsin().class_counts(), vec![444, 239]);
        assert_eq!(cardiotocography().class_counts(), vec![1655, 295, 176]);
        assert_eq!(iris().class_counts(), vec![50, 50, 50]);
        assert_eq!(mammographic_mass().class_counts(), vec![427, 403]);
        assert_eq!(seeds().class_counts(), vec![70, 70, 70]);
        assert_eq!(vertebral_column_3c().class_counts(), vec![100, 60, 150]);
        assert_eq!(vertebral_column_2c().class_counts(), vec![100, 210]);
    }

    #[test]
    fn vertebral_variants_share_the_cohort() {
        let d2 = vertebral_column_2c();
        let d3 = vertebral_column_3c();
        assert_eq!(d2.features, d3.features);
        for i in 0..d2.len() {
            assert_eq!(d2.label(i) == 0, d3.label(i) == 0);
        }
    }

    #[test]
    fn iris_setosa_is_separable_by_petal_length() {
        let d = iris();
        // Feature 2 (petal length, normalized): setosa sits far below the
        // others, as in the real data.
        let max_setosa = (0..d.len())
            .filter(|&i| d.label(i) == 0)
            .map(|i| d.sample(i)[2])
            .fold(f64::NEG_INFINITY, f64::max);
        let min_other = (0..d.len())
            .filter(|&i| d.label(i) != 0)
            .map(|i| d.sample(i)[2])
            .fold(f64::INFINITY, f64::min);
        assert!(
            max_setosa < min_other,
            "setosa max {max_setosa} vs others min {min_other}"
        );
    }
}
