//! Rule-based datasets: exact or rule-faithful reconstructions.

use crate::dataset::normalize_columns;
use crate::Dataset;
use pnc_linalg::Matrix;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// *Acute Inflammations* (UCI): 120 presumptive patient records with 6
/// attributes (body temperature and five binary symptoms); the target is the
/// rule-based diagnosis "inflammation of urinary bladder".
///
/// The UCI original was itself created by a rule system, so we re-generate
/// it: temperature is swept over the clinical range and symptoms are drawn
/// deterministically; the label follows the published diagnostic pattern
/// (bladder inflammation ⇔ urine pushing together with either micturition
/// pain or (lumbar pain at sub-fever temperature)).
pub fn acute_inflammation() -> Dataset {
    let mut rng = StdRng::seed_from_u64(0x0ACE);
    let n = 120;
    let mut features = Matrix::zeros(n, 6);
    let mut labels = Vec::with_capacity(n);
    for i in 0..n {
        let temperature = 35.5 + 6.0 * (i as f64 / (n - 1) as f64);
        let nausea = rng.gen_bool(0.25);
        let lumbar_pain = rng.gen_bool(0.55);
        let urine_pushing = rng.gen_bool(0.60);
        let micturition_pain = rng.gen_bool(0.45);
        let burning_urethra = rng.gen_bool(0.35);

        let bladder_inflammation =
            urine_pushing && (micturition_pain || (lumbar_pain && temperature < 37.5));

        features[(i, 0)] = temperature;
        features[(i, 1)] = nausea as u8 as f64;
        features[(i, 2)] = lumbar_pain as u8 as f64;
        features[(i, 3)] = urine_pushing as u8 as f64;
        features[(i, 4)] = micturition_pain as u8 as f64;
        features[(i, 5)] = burning_urethra as u8 as f64;
        labels.push(bladder_inflammation as usize);
    }
    normalize_columns(&mut features);
    Dataset::new("Acute Inflammation", features, labels, 2)
}

/// *Balance Scale* (UCI): the complete, deterministic enumeration of the
/// four attributes (left/right weight and distance, each in 1..=5). The
/// class is the side the scale tips to — `left`, `balanced` or `right` by
/// comparing `lw·ld` with `rw·rd`. Identical to the UCI original (625 rows).
pub fn balance_scale() -> Dataset {
    let mut rows = Vec::with_capacity(625);
    let mut labels = Vec::with_capacity(625);
    for lw in 1..=5u32 {
        for ld in 1..=5u32 {
            for rw in 1..=5u32 {
                for rd in 1..=5u32 {
                    rows.push([lw as f64, ld as f64, rw as f64, rd as f64]);
                    let (l, r) = (lw * ld, rw * rd);
                    labels.push(match l.cmp(&r) {
                        std::cmp::Ordering::Greater => 0, // tips left
                        std::cmp::Ordering::Equal => 1,   // balanced
                        std::cmp::Ordering::Less => 2,    // tips right
                    });
                }
            }
        }
    }
    let mut features = Matrix::from_fn(rows.len(), 4, |i, j| rows[i][j]);
    normalize_columns(&mut features);
    Dataset::new("Balance Scale", features, labels, 3)
}

/// Cell states of a tic-tac-toe board.
#[derive(Clone, Copy, PartialEq, Eq)]
enum Cell {
    X,
    O,
    Blank,
}

fn winner(board: &[Cell; 9]) -> Option<Cell> {
    const LINES: [[usize; 3]; 8] = [
        [0, 1, 2],
        [3, 4, 5],
        [6, 7, 8],
        [0, 3, 6],
        [1, 4, 7],
        [2, 5, 8],
        [0, 4, 8],
        [2, 4, 6],
    ];
    for line in LINES {
        let c = board[line[0]];
        if c != Cell::Blank && board[line[1]] == c && board[line[2]] == c {
            return Some(c);
        }
    }
    None
}

/// Enumerates the terminal boards reachable by legal play (x moves first)
/// via exhaustive game-tree traversal — exactly the construction of the UCI
/// *Tic-Tac-Toe Endgame* dataset (958 boards, target "win for x").
fn enumerate_terminal_boards() -> Vec<[Cell; 9]> {
    use std::collections::BTreeSet;

    // A compact ordered key keeps the enumeration output deterministic.
    fn key(board: &[Cell; 9]) -> [u8; 9] {
        let mut k = [0u8; 9];
        for (slot, c) in k.iter_mut().zip(board) {
            *slot = match c {
                Cell::X => 1,
                Cell::O => 2,
                Cell::Blank => 0,
            };
        }
        k
    }

    fn walk(board: &mut [Cell; 9], x_to_move: bool, out: &mut BTreeSet<[u8; 9]>) {
        let finished = winner(board).is_some() || board.iter().all(|&c| c != Cell::Blank);
        if finished {
            out.insert(key(board));
            return;
        }
        let mark = if x_to_move { Cell::X } else { Cell::O };
        for i in 0..9 {
            if board[i] == Cell::Blank {
                board[i] = mark;
                walk(board, !x_to_move, out);
                board[i] = Cell::Blank;
            }
        }
    }

    let mut set = std::collections::BTreeSet::new();
    let mut board = [Cell::Blank; 9];
    walk(&mut board, true, &mut set);
    set.into_iter()
        .map(|k| {
            let mut b = [Cell::Blank; 9];
            for (cell, v) in b.iter_mut().zip(k) {
                *cell = match v {
                    1 => Cell::X,
                    2 => Cell::O,
                    _ => Cell::Blank,
                };
            }
            b
        })
        .collect()
}

/// *Tic-Tac-Toe Endgame* (UCI): all board configurations at the end of
/// legal games, classified by "x wins". Cells are encoded as voltages
/// `x ↦ 1`, `blank ↦ 0.5`, `o ↦ 0`. Exact reconstruction (958 rows, 65.3 %
/// positive).
pub fn tic_tac_toe() -> Dataset {
    let boards = enumerate_terminal_boards();
    let features = Matrix::from_fn(boards.len(), 9, |i, j| match boards[i][j] {
        Cell::X => 1.0,
        Cell::Blank => 0.5,
        Cell::O => 0.0,
    });
    let labels = boards
        .iter()
        .map(|b| (winner(b) == Some(Cell::X)) as usize)
        .collect();
    Dataset::new("Tic-Tac-Toe Endgame", features, labels, 2)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn acute_inflammation_has_rule_structure() {
        let d = acute_inflammation();
        assert_eq!(d.len(), 120);
        // Every positive has urine pushing set (feature 3).
        for i in 0..d.len() {
            if d.label(i) == 1 {
                assert_eq!(d.sample(i)[3], 1.0, "row {i} breaks the rule");
            }
        }
        let positives = d.class_counts()[1];
        assert!((30..=90).contains(&positives), "{positives} positives");
    }

    #[test]
    fn balance_scale_is_exact() {
        let d = balance_scale();
        assert_eq!(d.len(), 625);
        // UCI class distribution: 288 L, 49 B, 288 R.
        assert_eq!(d.class_counts(), vec![288, 49, 288]);
    }

    #[test]
    fn tic_tac_toe_matches_uci_exactly() {
        let d = tic_tac_toe();
        // The UCI dataset has 958 instances, 626 positive (65.3 %).
        assert_eq!(d.len(), 958);
        assert_eq!(d.class_counts()[1], 626);
    }

    #[test]
    fn tic_tac_toe_boards_are_legal() {
        let d = tic_tac_toe();
        for i in 0..d.len() {
            let row = d.sample(i);
            let x = row.iter().filter(|&&v| v == 1.0).count();
            let o = row.iter().filter(|&&v| v == 0.0).count();
            assert!(x == o || x == o + 1, "row {i}: illegal counts x={x} o={o}");
        }
    }
}
