//! CSV interchange for datasets.
//!
//! The bundled generators reconstruct the UCI benchmarks (see the crate
//! docs); users who *do* have the original files can load them instead and
//! run the identical experiment pipeline:
//!
//! ```text
//! sepal_length,sepal_width,petal_length,petal_width,label
//! 5.1,3.5,1.4,0.2,0
//! ...
//! ```
//!
//! The last column is the integer class label; features are min–max
//! normalized to `[0, 1]` on load (the pNN voltage convention).

use crate::dataset::normalize_columns;
use crate::Dataset;
use pnc_linalg::Matrix;
use std::fmt;
use std::path::Path;

/// Error type for CSV loading.
#[derive(Debug)]
#[non_exhaustive]
pub enum CsvError {
    /// File could not be read or written.
    Io(std::io::Error),
    /// The file content was malformed.
    Parse {
        /// 1-based line number.
        line: usize,
        /// Human-readable description.
        detail: String,
    },
}

impl fmt::Display for CsvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CsvError::Io(e) => write!(f, "csv i/o failed: {e}"),
            CsvError::Parse { line, detail } => write!(f, "csv line {line}: {detail}"),
        }
    }
}

impl std::error::Error for CsvError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CsvError::Io(e) => Some(e),
            CsvError::Parse { .. } => None,
        }
    }
}

impl From<std::io::Error> for CsvError {
    fn from(e: std::io::Error) -> Self {
        CsvError::Io(e)
    }
}

impl Dataset {
    /// Parses a dataset from CSV text: one sample per line, features first,
    /// the integer class label last. A first line that fails numeric
    /// parsing is treated as a header. Features are min–max normalized.
    ///
    /// # Errors
    ///
    /// Returns [`CsvError::Parse`] for ragged rows, non-numeric features,
    /// non-integer labels, or an empty body.
    ///
    /// # Examples
    ///
    /// ```
    /// use pnc_datasets::Dataset;
    ///
    /// let text = "f1,f2,label\n0.0,10.0,0\n1.0,20.0,1\n";
    /// let d = Dataset::from_csv_str("toy", text)?;
    /// assert_eq!(d.len(), 2);
    /// assert_eq!(d.num_features(), 2);
    /// assert_eq!(d.labels, vec![0, 1]);
    /// # Ok::<(), pnc_datasets::csv::CsvError>(())
    /// ```
    pub fn from_csv_str(name: &str, text: &str) -> Result<Dataset, CsvError> {
        let mut rows: Vec<Vec<f64>> = Vec::new();
        let mut labels: Vec<usize> = Vec::new();
        let mut width: Option<usize> = None;

        for (idx, line) in text.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            let fields: Vec<&str> = line.split(',').map(str::trim).collect();
            if fields.len() < 2 {
                return Err(CsvError::Parse {
                    line: idx + 1,
                    detail: "need at least one feature and a label".into(),
                });
            }
            let parsed: Result<Vec<f64>, _> = fields[..fields.len() - 1]
                .iter()
                .map(|f| f.parse::<f64>())
                .collect();
            let features = match parsed {
                Ok(v) => v,
                Err(_) if rows.is_empty() && labels.is_empty() => continue, // header
                Err(_) => {
                    return Err(CsvError::Parse {
                        line: idx + 1,
                        detail: "non-numeric feature".into(),
                    })
                }
            };
            let label: usize = fields[fields.len() - 1]
                .parse()
                .map_err(|_| CsvError::Parse {
                    line: idx + 1,
                    detail: format!("non-integer label {:?}", fields[fields.len() - 1]),
                })?;
            if let Some(w) = width {
                if features.len() != w {
                    return Err(CsvError::Parse {
                        line: idx + 1,
                        detail: format!("expected {w} features, got {}", features.len()),
                    });
                }
            } else {
                width = Some(features.len());
            }
            rows.push(features);
            labels.push(label);
        }

        let width = width.ok_or(CsvError::Parse {
            line: 1,
            detail: "no data rows".into(),
        })?;
        let mut features = Matrix::from_fn(rows.len(), width, |i, j| rows[i][j]);
        normalize_columns(&mut features);
        let num_classes = labels.iter().max().map_or(1, |&m| m + 1);
        Ok(Dataset::new(name, features, labels, num_classes))
    }

    /// Loads a dataset from a CSV file (see [`Dataset::from_csv_str`]).
    ///
    /// # Errors
    ///
    /// Returns [`CsvError::Io`] for file errors plus the parse errors of
    /// [`Dataset::from_csv_str`].
    pub fn from_csv(name: &str, path: &Path) -> Result<Dataset, CsvError> {
        let text = std::fs::read_to_string(path)?;
        Dataset::from_csv_str(name, &text)
    }

    /// Writes the (normalized) dataset as CSV with a generated header.
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        for j in 0..self.num_features() {
            out.push_str(&format!("f{j},"));
        }
        out.push_str("label\n");
        for i in 0..self.len() {
            for &v in self.sample(i) {
                out.push_str(&format!("{v},"));
            }
            out.push_str(&format!("{}\n", self.label(i)));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::iris;

    #[test]
    fn parses_with_and_without_header() {
        let with = "a,b,label\n1,2,0\n3,4,1\n";
        let without = "1,2,0\n3,4,1\n";
        let d1 = Dataset::from_csv_str("t", with).unwrap();
        let d2 = Dataset::from_csv_str("t", without).unwrap();
        assert_eq!(d1.features, d2.features);
        assert_eq!(d1.labels, d2.labels);
        assert_eq!(d1.num_classes, 2);
    }

    #[test]
    fn normalizes_features() {
        let d = Dataset::from_csv_str("t", "0,100,0\n10,300,1\n").unwrap();
        assert_eq!(d.sample(0), &[0.0, 0.0]);
        assert_eq!(d.sample(1), &[1.0, 1.0]);
    }

    #[test]
    fn rejects_ragged_and_bad_rows() {
        assert!(Dataset::from_csv_str("t", "1,2,0\n1,0\n").is_err());
        assert!(Dataset::from_csv_str("t", "1,2,0\nx,2,1\n").is_err());
        assert!(Dataset::from_csv_str("t", "1,2,notalabel\n").is_err());
        assert!(Dataset::from_csv_str("t", "").is_err());
        assert!(Dataset::from_csv_str("t", "header,only,line\n").is_err());
    }

    #[test]
    fn round_trips_through_csv() {
        let original = iris();
        let text = original.to_csv();
        let back = Dataset::from_csv_str("Iris", &text).unwrap();
        assert_eq!(back.len(), original.len());
        assert_eq!(back.labels, original.labels);
        assert_eq!(back.num_classes, original.num_classes);
        // Features are already normalized, so they survive unchanged up to
        // decimal printing.
        for i in 0..original.len() {
            for (a, b) in original.sample(i).iter().zip(back.sample(i)) {
                assert!((a - b).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn file_round_trip() {
        let d = Dataset::from_csv_str("t", "1,2,0\n3,4,1\n").unwrap();
        let path = std::env::temp_dir().join("pnc_datasets_csv_test.csv");
        std::fs::write(&path, d.to_csv()).unwrap();
        let back = Dataset::from_csv("t", &path).unwrap();
        assert_eq!(back.labels, d.labels);
        std::fs::remove_file(&path).ok();
    }
}
