//! Printed neural networks (pNNs) with **learnable nonlinear subcircuits**
//! and **variation-aware training** — the primary contribution of
//! *Highly-Bespoke Robust Printed Neuromorphic Circuits* (DATE 2023).
//!
//! A pNN models a printed analog neuromorphic circuit:
//!
//! * each layer is a resistor crossbar computing the normalized
//!   weighted sum of Eq. 1 over its input voltages (plus a bias input at
//!   1 V and a grounded `g_d` leg),
//! * negative weights are realized by routing the input through a
//!   negative-weight inverter (Eq. 3),
//! * each weighted sum feeds a tanh-like `ptanh` activation circuit
//!   (Eq. 2),
//! * the learnable crossbar conductances θ are projected onto the printable
//!   range with a straight-through estimator (Sec. II-C).
//!
//! On top of this baseline (prior work \[1\]), this crate implements the
//! paper's two contributions:
//!
//! 1. **Learnable nonlinear circuits** (Sec. III-B, Fig. 5) — the physical
//!    parameters ω of the activation and negative-weight circuits become
//!    trainable through the differentiable surrogate model of
//!    `pnc-surrogate`: a constrained parameter 𝔴 passes through a sigmoid,
//!    denormalization, divider reassembly (`R2 = k1·R1`, `R4 = k2·R3`) and
//!    feasibility clipping to produce printable component values.
//! 2. **Variation-aware training** (Sec. III-C) — printing variation is
//!    modeled as i.i.d. multiplicative noise `ε ~ U[1−ϵ, 1+ϵ]` on every
//!    *printable* value (projected conductances and physical ω), and the
//!    Monte-Carlo estimate of the expected loss is minimized.
//!
//! [`Pnn`] is the model, [`Trainer`] runs (variation-aware) training with
//! early stopping, [`eval`] measures Monte-Carlo robustness the way Tab. II
//! reports it, [`PrintedDesign`] exports the component values a printer
//! would receive, and [`InferencePlan`] compiles a trained network into an
//! allocation-free forward pass (bit-identical f64, plus f32 and Q1.14
//! fixed-point variants — see [`infer`]).
//!
//! # Examples
//!
//! Train a small pNN on one of the benchmark tasks:
//!
//! ```no_run
//! use pnc_core::{LabeledData, Pnn, PnnConfig, TrainConfig, Trainer, VariationModel};
//! use pnc_surrogate::{build_dataset, train_surrogate, DatasetConfig, TrainConfig as SurrogateTrain};
//! use std::sync::Arc;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let data = build_dataset(&DatasetConfig { samples: 500, sweep_points: 41 })?;
//! let (surrogate, _) = train_surrogate(&data, &SurrogateTrain::default())?;
//!
//! // Any [0, 1]-normalized tabular task works; pnc-datasets provides the
//! // paper's 13-dataset benchmark suite.
//! # let (x_train, y_train, x_val, y_val): (pnc_linalg::Matrix, Vec<usize>, pnc_linalg::Matrix, Vec<usize>) = unimplemented!();
//! let config = PnnConfig::for_dataset(x_train.cols(), 3);
//! let mut pnn = Pnn::new(config, Arc::new(surrogate))?;
//! let report = Trainer::new(TrainConfig {
//!     variation: VariationModel::Uniform { epsilon: 0.05 },
//!     ..TrainConfig::default()
//! })
//! .train(
//!     &mut pnn,
//!     LabeledData::new(&x_train, &y_train)?,
//!     LabeledData::new(&x_val, &y_val)?,
//! )?;
//! println!("best validation loss {}", report.best_val_loss);
//! # Ok(())
//! # }
//! ```
//!
//! # Observability
//!
//! Training feeds the `core.*` counters and histograms of `pnc-obs`
//! (epochs, Monte-Carlo draws, gradient norms, early stops, seed-search
//! progress) and emits per-epoch / end-of-run events when the `PNC_OBS`
//! sink is enabled — see `docs/METRICS.md` at the workspace root.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod aging;
mod error;
pub mod eval;
mod export;
pub mod hardware;
pub mod infer;
mod layer;
mod network;
mod nonlinearity;
mod train;
mod variation;

pub use error::PnnError;
pub use eval::{accuracy, mc_evaluate, mc_evaluate_with, McStats};
pub use export::{
    ArtifactLayer, CircuitDesign, CrossbarDesign, PnnArtifact, PrintedDesign,
    ARTIFACT_FORMAT_VERSION,
};
pub use infer::{CompiledPnn, InferencePlan, InferencePlanF32, InferencePlanQuant, PlanPrecision};
pub use layer::{project_printable, PLayer};
pub use network::{LossKind, NonlinearityGranularity, Pnn, PnnConfig, PnnVars};
pub use nonlinearity::{apply_inv, apply_ptanh, NonlinearCircuit};
pub use train::{train_best_of_seeds, LabeledData, TrainConfig, TrainReport, Trainer};
pub use variation::{NoiseSample, VariationModel};
