//! The nonlinear subcircuits of the pNN: fixed or learnable (Fig. 5).

use crate::PnnError;
use pnc_autodiff::{Graph, Parameter, Var};
use pnc_linalg::Matrix;
use pnc_spice::circuits::NonlinearCircuitParams;
use pnc_surrogate::{DesignSpace, SurrogateModel};
use serde::{Deserialize, Serialize};

/// One nonlinear subcircuit (activation or negative-weight) of a pNN.
///
/// * `Fixed` — the prior-work setting: one pre-designed physical
///   parameterization ω shared by all tasks. Still subject to printing
///   variation at test time.
/// * `Learnable` — the paper's contribution: the constrained parameter
///   𝔴 = \[R̃1, R̃3, R̃5, W̃, L̃, k₁, k₂\] (stored pre-sigmoid) is trained by
///   gradient descent through the surrogate model.
///
/// # Examples
///
/// ```
/// use pnc_core::NonlinearCircuit;
/// use pnc_spice::circuits::NonlinearCircuitParams;
///
/// let fixed = NonlinearCircuit::fixed(NonlinearCircuitParams::nominal());
/// let learnable = NonlinearCircuit::learnable_from(NonlinearCircuitParams::nominal());
/// // Both start from the same printable component values.
/// let a = fixed.printable_omega();
/// let b = learnable.printable_omega();
/// for (x, y) in a.iter().zip(&b) {
///     assert!((x - y).abs() < 0.05 * x.abs());
/// }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum NonlinearCircuit {
    /// Pre-designed, non-learnable circuit.
    Fixed {
        /// Physical parameters `[R1, R2, R3, R4, R5, W, L]` in SI units.
        omega: [f64; 7],
    },
    /// Learnable circuit parameterized by 𝔴 (pre-sigmoid).
    Learnable {
        /// The raw learnable parameter, shape `1×7`.
        w: Parameter,
    },
}

impl NonlinearCircuit {
    /// Creates a fixed circuit from physical parameters.
    pub fn fixed(params: NonlinearCircuitParams) -> Self {
        NonlinearCircuit::Fixed {
            omega: params.to_array(),
        }
    }

    /// Creates a learnable circuit initialized so that its printable values
    /// start at `params` (by inverting the sigmoid/normalization chain).
    pub fn learnable_from(params: NonlinearCircuitParams) -> Self {
        let space = DesignSpace::paper();
        let omega = params.to_array();
        // Normalized positions of [r1, r3, r5, w, l] in their boxes.
        let norm = |k: usize| (omega[k] - space.lo[k]) / (space.hi[k] - space.lo[k]);
        let k1 = omega[1] / omega[0];
        let k2 = omega[3] / omega[2];
        let targets = [norm(0), norm(2), norm(4), norm(5), norm(6), k1, k2];
        let logit = |p: f64| {
            let p = p.clamp(0.02, 0.98);
            (p / (1.0 - p)).ln()
        };
        let w = Matrix::row_vector(&targets.map(logit));
        NonlinearCircuit::Learnable {
            w: Parameter::new(w),
        }
    }

    /// Returns `true` if the circuit's parameters are trainable.
    pub fn is_learnable(&self) -> bool {
        matches!(self, NonlinearCircuit::Learnable { .. })
    }

    /// Registers the learnable parameter on the graph, if any.
    pub fn register(&self, g: &mut Graph) -> Option<Var> {
        match self {
            NonlinearCircuit::Fixed { .. } => None,
            NonlinearCircuit::Learnable { w } => Some(w.leaf(g)),
        }
    }

    /// Mutable access to the learnable parameter, if any.
    pub fn parameter_mut(&mut self) -> Option<&mut Parameter> {
        match self {
            NonlinearCircuit::Fixed { .. } => None,
            NonlinearCircuit::Learnable { w } => Some(w),
        }
    }

    /// The printable component values ω as plain numbers (the values sent to
    /// the printer; for learnable circuits, computed by the Fig. 5 chain
    /// from the current 𝔴).
    pub fn printable_omega(&self) -> [f64; 7] {
        match self {
            NonlinearCircuit::Fixed { omega } => *omega,
            NonlinearCircuit::Learnable { w } => {
                let space = DesignSpace::paper();
                let raw = w.value();
                let sig = |x: f64| 1.0 / (1.0 + (-x).exp());
                let s: Vec<f64> = (0..7).map(|k| sig(raw[(0, k)])).collect();
                let denorm = |k_box: usize, s: f64| {
                    space.lo[k_box] + s * (space.hi[k_box] - space.lo[k_box])
                };
                let r1 = denorm(0, s[0]);
                let r3 = denorm(2, s[1]);
                let r5 = denorm(4, s[2]);
                let w_ = denorm(5, s[3]);
                let l = denorm(6, s[4]);
                let r2 = (r1 * s[5]).clamp(space.lo[1], space.hi[1]);
                let r4 = (r3 * s[6]).clamp(space.lo[3], space.hi[3]);
                [r1, r2, r3, r4, r5, w_, l]
            }
        }
    }

    /// Builds the graph node of printable ω (`1×7`), implementing the
    /// processing chain of Fig. 5 for learnable circuits: sigmoid →
    /// denormalize → reassemble `R2 = k1·R1`, `R4 = k2·R3` → clip to the
    /// feasible box (straight-through).
    ///
    /// `w_var` must be the leaf returned by [`NonlinearCircuit::register`]
    /// on the same graph (`None` for fixed circuits).
    ///
    /// # Errors
    ///
    /// Returns [`PnnError::Autodiff`] on internal shape errors and
    /// [`PnnError::Config`] if a learnable circuit is used without its
    /// registered leaf.
    pub fn printable_omega_graph(
        &self,
        g: &mut Graph,
        w_var: Option<Var>,
    ) -> Result<Var, PnnError> {
        match self {
            NonlinearCircuit::Fixed { omega } => Ok(g.constant(Matrix::row_vector(omega))),
            NonlinearCircuit::Learnable { .. } => {
                let w_var = w_var.ok_or_else(|| PnnError::Config {
                    detail: "learnable circuit used without a registered leaf".into(),
                })?;
                let space = DesignSpace::paper();
                let s = g.sigmoid(w_var); // 1×7 in (0,1)

                // Split into the five box parameters and the two ratios.
                let s_r1 = g.slice_cols(s, 0, 1)?;
                let s_r3 = g.slice_cols(s, 1, 1)?;
                let s_r5 = g.slice_cols(s, 2, 1)?;
                let s_w = g.slice_cols(s, 3, 1)?;
                let s_l = g.slice_cols(s, 4, 1)?;
                let k1 = g.slice_cols(s, 5, 1)?;
                let k2 = g.slice_cols(s, 6, 1)?;

                let denorm = |g: &mut Graph, s: Var, k_box: usize| -> Result<Var, PnnError> {
                    let scaled = g.scale(s, space.hi[k_box] - space.lo[k_box]);
                    Ok(g.add_scalar(scaled, space.lo[k_box]))
                };
                let r1 = denorm(g, s_r1, 0)?;
                let r3 = denorm(g, s_r3, 2)?;
                let r5 = denorm(g, s_r5, 4)?;
                let w_ = denorm(g, s_w, 5)?;
                let l = denorm(g, s_l, 6)?;

                // Reassemble the divider shunt resistors and clip them to
                // their own feasible range (straight-through, as Fig. 5).
                let r2 = g.mul(r1, k1)?;
                let r2 = g.clamp_ste(r2, space.lo[1], space.hi[1]);
                let r4 = g.mul(r3, k2)?;
                let r4 = g.clamp_ste(r4, space.lo[3], space.hi[3]);

                Ok(g.concat_cols(&[r1, r2, r3, r4, r5, w_, l])?)
            }
        }
    }

    /// Builds the curve-parameter node η (`1×4`) for this circuit under an
    /// optional printing-variation factor applied to the *printable* values
    /// (as Sec. III-C prescribes — the noise multiplies component values,
    /// not the raw learnable parameter).
    ///
    /// # Errors
    ///
    /// Propagates graph and surrogate failures.
    pub fn eta_graph(
        &self,
        g: &mut Graph,
        w_var: Option<Var>,
        surrogate: &SurrogateModel,
        variation: Option<&[f64; 7]>,
    ) -> Result<Var, PnnError> {
        let omega = self.printable_omega_graph(g, w_var)?;
        let omega = match variation {
            Some(factors) => {
                let f = g.constant(Matrix::row_vector(factors));
                g.mul(omega, f)?
            }
            None => omega,
        };
        Ok(surrogate.predict_eta_graph(g, omega)?)
    }

    /// Plain-number version of [`NonlinearCircuit::eta_graph`] for
    /// evaluation paths that need no gradients.
    pub fn eta(&self, surrogate: &SurrogateModel, variation: Option<&[f64; 7]>) -> [f64; 4] {
        let mut omega = self.printable_omega();
        if let Some(f) = variation {
            for (o, &fk) in omega.iter_mut().zip(f) {
                *o *= fk;
            }
        }
        surrogate.predict_eta(&omega)
    }
}

/// Applies the ptanh activation of Eq. 2, `η₁ + η₂·tanh((x − η₃)·η₄)`, with
/// η given as a `1×4` node (broadcast over the `B×n` input).
///
/// # Errors
///
/// Returns an error on shape mismatches.
pub fn apply_ptanh(g: &mut Graph, eta: Var, x: Var) -> Result<Var, PnnError> {
    let e1 = g.slice_cols(eta, 0, 1)?;
    let e2 = g.slice_cols(eta, 1, 1)?;
    let e3 = g.slice_cols(eta, 2, 1)?;
    let e4 = g.slice_cols(eta, 3, 1)?;
    let shifted = g.sub(x, e3)?;
    let scaled = g.mul(shifted, e4)?;
    let t = g.tanh(scaled);
    let amp = g.mul(t, e2)?;
    Ok(g.add(amp, e1)?)
}

/// Applies the negative-weight circuit's transfer curve:
/// `η₁ − η₂·tanh((x − η₃)·η₄)` — the inverter's *physical* (positive,
/// falling) output voltage.
///
/// Eq. 3 of the paper writes the negative-weight model with an outer minus
/// sign, `−(η₁ + η₂·tanh(·))`, pulling the "negativity" into the voltage
/// itself. We keep the voltage physical instead: the inverted input stays in
/// the supply range (so the succeeding crossbar and activation circuit keep
/// operating around their design point), and the negative-weight semantics
/// arise from the falling slope — linearizing gives
/// `inv(x) ≈ a − b·x`, i.e. a negative effective weight plus a bias shift
/// that training absorbs. Both conventions span the same function class.
///
/// # Errors
///
/// Returns an error on shape mismatches.
pub fn apply_inv(g: &mut Graph, eta: Var, x: Var) -> Result<Var, PnnError> {
    let e1 = g.slice_cols(eta, 0, 1)?;
    let e2 = g.slice_cols(eta, 1, 1)?;
    let e3 = g.slice_cols(eta, 2, 1)?;
    let e4 = g.slice_cols(eta, 3, 1)?;
    let shifted = g.sub(x, e3)?;
    let scaled = g.mul(shifted, e4)?;
    let t = g.tanh(scaled);
    let amp = g.mul(t, e2)?;
    Ok(g.sub(e1, amp)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pnc_surrogate::{build_dataset, train_surrogate, DatasetConfig, TrainConfig};

    fn quick_surrogate() -> SurrogateModel {
        let data = build_dataset(&DatasetConfig {
            samples: 120,
            sweep_points: 31,
        })
        .unwrap();
        train_surrogate(
            &data,
            &TrainConfig {
                layer_sizes: vec![10, 8, 4],
                max_epochs: 300,
                patience: 100,
                ..TrainConfig::default()
            },
        )
        .unwrap()
        .0
    }

    #[test]
    fn learnable_initialization_recovers_nominal() {
        let nominal = NonlinearCircuitParams::nominal();
        let c = NonlinearCircuit::learnable_from(nominal);
        let omega = c.printable_omega();
        let expected = nominal.to_array();
        for (k, (a, b)) in omega.iter().zip(&expected).enumerate() {
            // The logit clamp at 0.98 allows a small deviation at the box
            // edges (W sits at its maximum in the nominal design).
            assert!((a - b).abs() < 0.05 * b.abs(), "component {k}: {a} vs {b}");
        }
    }

    #[test]
    fn printable_omega_graph_matches_plain() {
        let c = NonlinearCircuit::learnable_from(NonlinearCircuitParams::nominal());
        let plain = c.printable_omega();
        let mut g = Graph::new();
        let w = c.register(&mut g);
        let node = c.printable_omega_graph(&mut g, w).unwrap();
        for (k, &p) in plain.iter().enumerate() {
            assert!(
                (g.value(node)[(0, k)] - p).abs() < 1e-9 * p.abs().max(1.0),
                "component {k}"
            );
        }
    }

    #[test]
    fn fixed_circuit_needs_no_leaf() {
        let c = NonlinearCircuit::fixed(NonlinearCircuitParams::nominal());
        let mut g = Graph::new();
        assert!(c.register(&mut g).is_none());
        let node = c.printable_omega_graph(&mut g, None).unwrap();
        assert_eq!(g.shape(node), (1, 7));
    }

    #[test]
    fn learnable_without_leaf_is_a_config_error() {
        let c = NonlinearCircuit::learnable_from(NonlinearCircuitParams::nominal());
        let mut g = Graph::new();
        assert!(matches!(
            c.printable_omega_graph(&mut g, None),
            Err(PnnError::Config { .. })
        ));
    }

    #[test]
    fn printable_values_satisfy_feasibility() {
        // Even for extreme 𝔴 the chain must emit feasible components.
        let mut c = NonlinearCircuit::learnable_from(NonlinearCircuitParams::nominal());
        if let NonlinearCircuit::Learnable { w } = &mut c {
            for v in w.value_mut().as_mut_slice() {
                *v = 37.0; // saturate every sigmoid high
            }
        }
        let omega = c.printable_omega();
        let space = DesignSpace::paper();
        let params = NonlinearCircuitParams::from_array(omega);
        params.validate().expect("feasible");
        for (k, &o) in omega.iter().enumerate() {
            assert!(o <= space.hi[k] + 1e-9);
            assert!(o >= space.lo[k] - 1e-9);
        }
    }

    #[test]
    fn variation_scales_printable_values() {
        let surrogate = quick_surrogate();
        let c = NonlinearCircuit::fixed(NonlinearCircuitParams::nominal());
        let nominal_eta = c.eta(&surrogate, None);
        let varied_eta = c.eta(&surrogate, Some(&[1.1, 0.9, 1.05, 0.95, 1.1, 0.9, 1.1]));
        assert_ne!(nominal_eta, varied_eta);
    }

    #[test]
    fn eta_graph_matches_plain_eta() {
        let surrogate = quick_surrogate();
        let c = NonlinearCircuit::learnable_from(NonlinearCircuitParams::nominal());
        let plain = c.eta(&surrogate, None);
        let mut g = Graph::new();
        let w = c.register(&mut g);
        let eta = c.eta_graph(&mut g, w, &surrogate, None).unwrap();
        for (k, &p) in plain.iter().enumerate() {
            assert!((g.value(eta)[(0, k)] - p).abs() < 1e-9);
        }
    }

    #[test]
    fn gradients_reach_the_learnable_parameter() {
        let surrogate = quick_surrogate();
        let c = NonlinearCircuit::learnable_from(NonlinearCircuitParams::nominal());
        let mut g = Graph::new();
        let w = c.register(&mut g).unwrap();
        let eta = c.eta_graph(&mut g, Some(w), &surrogate, None).unwrap();
        let x = g.constant(Matrix::row_vector(&[0.2, 0.5, 0.8]));
        let a = apply_ptanh(&mut g, eta, x).unwrap();
        let loss = g.sum(a);
        let grads = g.backward(loss).unwrap();
        let gw = grads.get(w).expect("gradient flows to 𝔴");
        assert!(gw.norm() > 0.0, "gradient must be nonzero");
    }

    #[test]
    fn apply_ptanh_matches_formula() {
        let mut g = Graph::new();
        let eta = g.constant(Matrix::row_vector(&[0.5, 0.4, 0.55, 6.0]));
        let x = g.constant(Matrix::row_vector(&[0.0, 0.55, 1.0]));
        let a = apply_ptanh(&mut g, eta, x).unwrap();
        let f = |v: f64| 0.5 + 0.4 * ((v - 0.55) * 6.0).tanh();
        for (k, v) in [0.0, 0.55, 1.0].iter().enumerate() {
            assert!((g.value(a)[(0, k)] - f(*v)).abs() < 1e-12);
        }
    }

    #[test]
    fn apply_inv_is_the_falling_mirror_of_ptanh() {
        let mut g = Graph::new();
        let eta = g.constant(Matrix::row_vector(&[0.5, 0.4, 0.55, 6.0]));
        let x = g.constant(Matrix::row_vector(&[0.3, 0.55, 0.9]));
        let p = apply_ptanh(&mut g, eta, x).unwrap();
        let i = apply_inv(&mut g, eta, x).unwrap();
        for k in 0..3 {
            // ptanh + inv = 2·η₁ (mirror around the midpoint voltage).
            assert!((g.value(p)[(0, k)] + g.value(i)[(0, k)] - 1.0).abs() < 1e-12);
        }
        // Falling and positive over the supply range.
        assert!(g.value(i)[(0, 0)] > g.value(i)[(0, 2)]);
        assert!(g.value(i)[(0, 2)] > 0.0);
    }
}
