use std::fmt;

/// Error type for pNN construction, training and evaluation.
#[derive(Debug)]
#[non_exhaustive]
pub enum PnnError {
    /// An autodiff operation failed (almost always a shape bug).
    Autodiff(pnc_autodiff::AutodiffError),
    /// The surrogate model failed.
    Surrogate(pnc_surrogate::SurrogateError),
    /// The network configuration was invalid.
    Config {
        /// Human-readable description.
        detail: String,
    },
    /// The training/evaluation data were inconsistent with the network.
    Data {
        /// Human-readable description.
        detail: String,
    },
    /// An exported artifact failed validation (corrupt, non-finite values,
    /// inconsistent shapes) and must not be loaded into a serving registry.
    Artifact {
        /// Human-readable description.
        detail: String,
    },
}

impl fmt::Display for PnnError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PnnError::Autodiff(e) => write!(f, "autodiff failure: {e}"),
            PnnError::Surrogate(e) => write!(f, "surrogate failure: {e}"),
            PnnError::Config { detail } => write!(f, "invalid configuration: {detail}"),
            PnnError::Data { detail } => write!(f, "invalid data: {detail}"),
            PnnError::Artifact { detail } => write!(f, "invalid artifact: {detail}"),
        }
    }
}

impl std::error::Error for PnnError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PnnError::Autodiff(e) => Some(e),
            PnnError::Surrogate(e) => Some(e),
            _ => None,
        }
    }
}

impl From<pnc_autodiff::AutodiffError> for PnnError {
    fn from(e: pnc_autodiff::AutodiffError) -> Self {
        PnnError::Autodiff(e)
    }
}

impl From<pnc_surrogate::SurrogateError> for PnnError {
    fn from(e: pnc_surrogate::SurrogateError) -> Self {
        PnnError::Surrogate(e)
    }
}
