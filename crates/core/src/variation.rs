use pnc_linalg::Matrix;
use rand::rngs::StdRng;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// The printing-variation model applied to printable values.
///
/// The paper (Sec. III-C) models variation as i.i.d. multiplicative factors
/// `ε ~ U[1−ϵ, 1+ϵ]`, "because the printing variation is mainly driven by
/// \[the\] limited printing resolution". A Gaussian variant is provided as an
/// extension for sensitivity studies.
///
/// # Examples
///
/// ```
/// use pnc_core::VariationModel;
/// use rand::SeedableRng;
///
/// let model = VariationModel::Uniform { epsilon: 0.1 };
/// let mut rng = rand::rngs::StdRng::seed_from_u64(0);
/// let f = model.sample_factor(&mut rng);
/// assert!((0.9..=1.1).contains(&f));
/// assert!(VariationModel::None.sample_factor(&mut rng) == 1.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
#[non_exhaustive]
pub enum VariationModel {
    /// No variation (nominal printing).
    None,
    /// `ε ~ U[1−ϵ, 1+ϵ]` — the paper's model.
    Uniform {
        /// Relative half-width ϵ (e.g. `0.05` for 5 % variation).
        epsilon: f64,
    },
    /// `ε ~ N(1, σ²)`, truncated to stay positive — an extension used by the
    /// ablation benches.
    Gaussian {
        /// Relative standard deviation σ.
        sigma: f64,
    },
}

impl VariationModel {
    /// Returns `true` for the no-variation model.
    pub fn is_none(&self) -> bool {
        matches!(self, VariationModel::None)
    }

    /// Draws one multiplicative factor.
    pub fn sample_factor(&self, rng: &mut StdRng) -> f64 {
        match *self {
            VariationModel::None => 1.0,
            VariationModel::Uniform { epsilon } => rng.gen_range(1.0 - epsilon..=1.0 + epsilon),
            VariationModel::Gaussian { sigma } => {
                // Box–Muller; truncate at 5 % of nominal to keep printable
                // values positive.
                let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
                let u2: f64 = rng.gen_range(0.0..1.0);
                let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
                (1.0 + sigma * z).max(0.05)
            }
        }
    }

    /// Draws an `rows × cols` matrix of factors.
    pub fn sample_matrix(&self, rng: &mut StdRng, rows: usize, cols: usize) -> Matrix {
        Matrix::from_fn(rows, cols, |_, _| self.sample_factor(rng))
    }

    /// Draws a 7-component factor vector for a nonlinear circuit's ω.
    pub fn sample_omega(&self, rng: &mut StdRng) -> [f64; 7] {
        let mut out = [1.0; 7];
        for v in &mut out {
            *v = self.sample_factor(rng);
        }
        out
    }
}

/// One Monte-Carlo draw of printing variation for a whole network: a factor
/// matrix per crossbar and a factor 7-vector per nonlinear circuit
/// (activation and negative-weight circuits separately).
#[derive(Debug, Clone, PartialEq)]
pub struct NoiseSample {
    /// Multiplicative factors for each layer's projected conductances.
    pub theta_factors: Vec<Matrix>,
    /// Multiplicative factors for each nonlinear circuit's printable ω, in
    /// the network's circuit order (see [`Pnn`](crate::Pnn)).
    pub omega_factors: Vec<[f64; 7]>,
}

impl NoiseSample {
    /// The identity sample (no variation), for the given layer shapes and
    /// circuit count.
    pub fn identity(theta_shapes: &[(usize, usize)], circuits: usize) -> Self {
        NoiseSample {
            theta_factors: theta_shapes
                .iter()
                .map(|&(r, c)| Matrix::filled(r, c, 1.0))
                .collect(),
            omega_factors: vec![[1.0; 7]; circuits],
        }
    }

    /// Draws a sample from `model`.
    pub fn draw(
        model: &VariationModel,
        rng: &mut StdRng,
        theta_shapes: &[(usize, usize)],
        circuits: usize,
    ) -> Self {
        NoiseSample {
            theta_factors: theta_shapes
                .iter()
                .map(|&(r, c)| model.sample_matrix(rng, r, c))
                .collect(),
            omega_factors: (0..circuits).map(|_| model.sample_omega(rng)).collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn uniform_stays_in_band() {
        let m = VariationModel::Uniform { epsilon: 0.1 };
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let f = m.sample_factor(&mut rng);
            assert!((0.9..=1.1).contains(&f));
        }
    }

    #[test]
    fn uniform_is_centered() {
        let m = VariationModel::Uniform { epsilon: 0.1 };
        let mut rng = StdRng::seed_from_u64(2);
        let mean: f64 = (0..20_000).map(|_| m.sample_factor(&mut rng)).sum::<f64>() / 20_000.0;
        assert!((mean - 1.0).abs() < 0.005, "mean {mean}");
    }

    #[test]
    fn gaussian_stays_positive() {
        let m = VariationModel::Gaussian { sigma: 0.5 };
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            assert!(m.sample_factor(&mut rng) > 0.0);
        }
    }

    #[test]
    fn none_is_identity() {
        let m = VariationModel::None;
        let mut rng = StdRng::seed_from_u64(4);
        assert_eq!(m.sample_matrix(&mut rng, 2, 2), Matrix::filled(2, 2, 1.0));
        assert_eq!(m.sample_omega(&mut rng), [1.0; 7]);
    }

    #[test]
    fn noise_sample_shapes() {
        let mut rng = StdRng::seed_from_u64(5);
        let shapes = [(4, 3), (5, 2)];
        let s = NoiseSample::draw(
            &VariationModel::Uniform { epsilon: 0.05 },
            &mut rng,
            &shapes,
            4,
        );
        assert_eq!(s.theta_factors.len(), 2);
        assert_eq!(s.theta_factors[1].shape(), (5, 2));
        assert_eq!(s.omega_factors.len(), 4);
        let id = NoiseSample::identity(&shapes, 4);
        assert_eq!(id.theta_factors[0], Matrix::filled(4, 3, 1.0));
    }

    #[test]
    fn draws_differ_between_calls() {
        let mut rng = StdRng::seed_from_u64(6);
        let m = VariationModel::Uniform { epsilon: 0.1 };
        let shapes = [(3, 3)];
        let a = NoiseSample::draw(&m, &mut rng, &shapes, 1);
        let b = NoiseSample::draw(&m, &mut rng, &shapes, 1);
        assert_ne!(a, b);
    }
}
