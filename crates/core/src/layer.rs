//! The printed crossbar layer (Eq. 1) with straight-through conductance
//! projection.

use crate::nonlinearity::{apply_inv, apply_ptanh};
use crate::PnnError;
use pnc_autodiff::{Graph, Parameter, Var};
use pnc_linalg::Matrix;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Projects a surrogate-conductance value onto the printable set
/// `[−G_max, −G_min] ∪ {0} ∪ [G_min, G_max]` (Sec. II-C):
///
/// * magnitudes below `G_min/2` round to "not printed" (zero),
/// * magnitudes in `[G_min/2, G_min)` snap up to the minimum printable
///   conductance,
/// * magnitudes above `G_max` clip to the maximum.
///
/// Training passes gradients straight through this projection.
///
/// # Examples
///
/// ```
/// use pnc_core::project_printable;
///
/// assert_eq!(project_printable(0.004, 0.01, 1.0), 0.0);
/// assert_eq!(project_printable(0.007, 0.01, 1.0), 0.01);
/// assert_eq!(project_printable(-3.0, 0.01, 1.0), -1.0);
/// assert_eq!(project_printable(0.5, 0.01, 1.0), 0.5);
/// ```
pub fn project_printable(theta: f64, g_min: f64, g_max: f64) -> f64 {
    let magnitude = theta.abs();
    let sign = if theta >= 0.0 { 1.0 } else { -1.0 };
    if magnitude < 0.5 * g_min {
        0.0
    } else if magnitude < g_min {
        sign * g_min
    } else if magnitude > g_max {
        sign * g_max
    } else {
        theta
    }
}

/// One printed crossbar layer.
///
/// The learnable parameter θ has shape `(in + 2) × out`: one row per input
/// voltage, one row for the 1 V bias leg, and one row for the grounded
/// `g_d` leg of Eq. 1.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PLayer {
    /// Surrogate conductances θ.
    pub theta: Parameter,
    in_dim: usize,
    out_dim: usize,
}

impl PLayer {
    /// Creates a layer with conductances drawn uniformly from the printable
    /// magnitude range with random signs.
    pub fn new(in_dim: usize, out_dim: usize, g_min: f64, g_max: f64, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let theta = Matrix::from_fn(in_dim + 2, out_dim, |_, _| {
            let magnitude = rng.gen_range(g_min..g_max.min(10.0 * g_min));
            let sign = if rng.gen_bool(0.5) { 1.0 } else { -1.0 };
            sign * magnitude
        });
        PLayer {
            theta: Parameter::new(theta),
            in_dim,
            out_dim,
        }
    }

    /// Input dimension (excluding the bias and `g_d` rows).
    pub fn in_dim(&self) -> usize {
        self.in_dim
    }

    /// Output dimension.
    pub fn out_dim(&self) -> usize {
        self.out_dim
    }

    /// Shape of the θ parameter.
    pub fn theta_shape(&self) -> (usize, usize) {
        (self.in_dim + 2, self.out_dim)
    }

    /// The printable conductance matrix (projected θ values).
    pub fn printable_conductances(&self, g_min: f64, g_max: f64) -> Matrix {
        self.theta
            .value()
            .map(|t| project_printable(t, g_min, g_max))
    }

    /// Builds the crossbar forward pass on the graph.
    ///
    /// Implements Eq. 1 with negative weights (Eq. 3): each projected (and
    /// optionally variation-scaled) conductance contributes its input
    /// voltage — routed through the negative-weight circuit when θ < 0 —
    /// normalized by the total conductance including bias and `g_d` legs.
    ///
    /// Arguments:
    /// * `theta_var` — the leaf registered for this layer's θ,
    /// * `x` — input voltages, `B × in`,
    /// * `etas` — `(activation, negative-weight)` curve-parameter node pairs
    ///   (`1×4` each): one pair shared by the whole layer, or one pair per
    ///   output neuron (the per-neuron bespoke granularity),
    /// * `theta_factors` — optional printing-variation factors, multiplying
    ///   the *projected* conductances (Sec. III-C),
    /// * `apply_activation` — whether the ptanh circuit follows the crossbar.
    ///
    /// # Errors
    ///
    /// Returns [`PnnError`] on shape mismatches or if `etas` has neither 1
    /// nor `out_dim` entries.
    // Audited: the eight arguments mirror Eq. 1's inputs one-to-one (tape,
    // conductances, input voltages, circuit curves, the g_min/g_max printing
    // window, variation factors, activation switch). Bundling them into a
    // struct would add a builder used at exactly two call sites and hide the
    // correspondence with the paper, so the lint is waived instead.
    #[allow(clippy::too_many_arguments)]
    pub fn forward(
        &self,
        g: &mut Graph,
        theta_var: Var,
        x: Var,
        etas: &[(Var, Var)],
        g_min: f64,
        g_max: f64,
        theta_factors: Option<&Matrix>,
        apply_activation: bool,
    ) -> Result<Var, PnnError> {
        if etas.len() != 1 && etas.len() != self.out_dim {
            return Err(PnnError::Config {
                detail: format!(
                    "layer with {} outputs got {} circuit pairs (need 1 or {})",
                    self.out_dim,
                    etas.len(),
                    self.out_dim
                ),
            });
        }
        let batch = g.shape(x).0;
        if g.shape(x).1 != self.in_dim {
            return Err(PnnError::Data {
                detail: format!("layer expects {} inputs, got {}", self.in_dim, g.shape(x).1),
            });
        }

        // Straight-through projection onto the printable set.
        let projected = g
            .value(theta_var)
            .map(|t| project_printable(t, g_min, g_max));
        let theta_p = g.ste(theta_var, projected)?;

        // Printing variation multiplies printable values.
        let theta_eps = match theta_factors {
            Some(f) => {
                let fc = g.constant(f.clone());
                g.mul(theta_p, fc)?
            }
            None => theta_p,
        };

        // Normalized conductance weights W = |θ| / Σ_col |θ| (Eq. 1).
        let magnitude = g.abs(theta_eps);
        let total = g.sum_rows(magnitude);
        let weights = g.div(magnitude, total)?;

        // Sign masks are data-dependent constants of this forward pass.
        let theta_now = g.value(theta_eps).clone();
        let mask_pos = theta_now.map(|t| if t >= 0.0 { 1.0 } else { 0.0 });
        let mask_neg = theta_now.map(|t| if t < 0.0 { 1.0 } else { 0.0 });
        let mask_pos = g.constant(mask_pos);
        let mask_neg = g.constant(mask_neg);
        let w_pos = g.mul(weights, mask_pos)?;
        let w_neg = g.mul(weights, mask_neg)?;

        // Extended inputs: [x, 1 (bias), 0 (g_d)], and the negative-weight
        // path [inv(x), inv(1), 0]. The g_d leg is grounded, so its voltage
        // is 0 on both paths regardless of the θ sign.
        let ones = g.constant(Matrix::filled(batch, 1, 1.0));
        let zeros = g.constant(Matrix::filled(batch, 1, 0.0));
        let x_pos = g.concat_cols(&[x, ones, zeros])?;

        if etas.len() == 1 {
            // One circuit pair for the whole layer: single matmul path.
            let (_, eta_inv) = etas[0];
            let x_inv = apply_inv(g, eta_inv, x)?;
            let ones_inv = apply_inv(g, eta_inv, ones)?;
            let x_neg = g.concat_cols(&[x_inv, ones_inv, zeros])?;
            let z_pos = g.matmul(x_pos, w_pos)?;
            let z_neg = g.matmul(x_neg, w_neg)?;
            let z = g.add(z_pos, z_neg)?;
            return if apply_activation {
                apply_ptanh(g, etas[0].0, z)
            } else {
                Ok(z)
            };
        }

        // Per-neuron bespoke circuits: every output column j routes its
        // negative-weight inputs through *its own* inverter design and (if
        // enabled) its own activation circuit.
        let mut columns = Vec::with_capacity(self.out_dim);
        for (j, &(eta_act, eta_inv)) in etas.iter().enumerate() {
            let w_pos_j = g.slice_cols(w_pos, j, 1)?;
            let w_neg_j = g.slice_cols(w_neg, j, 1)?;
            let x_inv = apply_inv(g, eta_inv, x)?;
            let ones_inv = apply_inv(g, eta_inv, ones)?;
            let x_neg = g.concat_cols(&[x_inv, ones_inv, zeros])?;
            let z_pos = g.matmul(x_pos, w_pos_j)?;
            let z_neg = g.matmul(x_neg, w_neg_j)?;
            let z = g.add(z_pos, z_neg)?;
            columns.push(if apply_activation {
                apply_ptanh(g, eta_act, z)?
            } else {
                z
            });
        }
        Ok(g.concat_cols(&columns)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn projection_cases() {
        let (g_min, g_max) = (0.01, 1.0);
        assert_eq!(project_printable(0.0, g_min, g_max), 0.0);
        assert_eq!(project_printable(0.0049, g_min, g_max), 0.0);
        assert_eq!(project_printable(-0.0049, g_min, g_max), 0.0);
        assert_eq!(project_printable(0.0051, g_min, g_max), 0.01);
        assert_eq!(project_printable(-0.0051, g_min, g_max), -0.01);
        assert_eq!(project_printable(0.02, g_min, g_max), 0.02);
        assert_eq!(project_printable(1.7, g_min, g_max), 1.0);
        assert_eq!(project_printable(-1.7, g_min, g_max), -1.0);
    }

    #[test]
    fn projected_values_are_always_printable() {
        let (g_min, g_max) = (0.01, 1.0);
        for i in -2000..2000 {
            let theta = i as f64 * 1e-3;
            let p = project_printable(theta, g_min, g_max);
            let m = p.abs();
            assert!(
                m == 0.0 || (g_min..=g_max).contains(&m),
                "unprintable projection {p} from {theta}"
            );
            // Sign is preserved for nonzero projections.
            if p != 0.0 {
                assert_eq!(p.signum(), theta.signum());
            }
        }
    }

    fn toy_etas(g: &mut Graph) -> (Var, Var) {
        let act = g.constant(Matrix::row_vector(&[0.5, 0.4, 0.5, 4.0]));
        let inv = g.constant(Matrix::row_vector(&[0.45, 0.4, 0.5, 5.0]));
        (act, inv)
    }

    #[test]
    fn forward_shapes_and_range() {
        let layer = PLayer::new(3, 2, 0.01, 1.0, 7);
        let mut g = Graph::new();
        let theta = layer.theta.leaf(&mut g);
        let x = g.constant(Matrix::from_fn(5, 3, |i, j| ((i + j) % 3) as f64 / 2.0));
        let (act, inv) = toy_etas(&mut g);
        let out = layer
            .forward(&mut g, theta, x, &[(act, inv)], 0.01, 1.0, None, true)
            .unwrap();
        assert_eq!(g.shape(out), (5, 2));
        // ptanh output stays within η₁ ± η₂.
        for &v in g.value(out).as_slice() {
            assert!((0.1 - 1e-9..=0.9 + 1e-9).contains(&v), "activation {v}");
        }
    }

    #[test]
    fn all_positive_theta_uses_plain_inputs() {
        // With positive θ and no activation, the output is the Eq. 1
        // weighted mean of inputs, bias 1 V, and the grounded g_d leg.
        let mut layer = PLayer::new(2, 1, 0.01, 1.0, 1);
        *layer.theta.value_mut() = Matrix::from_rows(&[&[0.2], &[0.3], &[0.4], &[0.1]]).unwrap();
        let mut g = Graph::new();
        let theta = layer.theta.leaf(&mut g);
        let x = g.constant(Matrix::row_vector(&[0.8, 0.4]));
        let (act, inv) = toy_etas(&mut g);
        let out = layer
            .forward(&mut g, theta, x, &[(act, inv)], 0.01, 1.0, None, false)
            .unwrap();
        let expected = (0.2 * 0.8 + 0.3 * 0.4 + 0.4 * 1.0) / (0.2 + 0.3 + 0.4 + 0.1);
        assert!((g.value(out)[(0, 0)] - expected).abs() < 1e-12);
    }

    #[test]
    fn negative_theta_routes_through_inverter() {
        let mut layer = PLayer::new(1, 1, 0.01, 1.0, 1);
        *layer.theta.value_mut() = Matrix::from_rows(&[&[-0.5], &[0.3], &[0.2]]).unwrap();
        let mut g = Graph::new();
        let theta = layer.theta.leaf(&mut g);
        let x = g.constant(Matrix::row_vector(&[0.9]));
        let (act, inv_eta) = toy_etas(&mut g);
        let out = layer
            .forward(&mut g, theta, x, &[(act, inv_eta)], 0.01, 1.0, None, false)
            .unwrap();
        // inv(0.9) with η = [0.45, 0.4, 0.5, 5.0]: the falling inverter curve.
        let inv_val = 0.45 - 0.4 * ((0.9f64 - 0.5) * 5.0).tanh();
        let expected = (0.5 * inv_val + 0.3 * 1.0) / (0.5 + 0.3 + 0.2);
        assert!(
            (g.value(out)[(0, 0)] - expected).abs() < 1e-12,
            "{} vs {expected}",
            g.value(out)[(0, 0)]
        );
    }

    #[test]
    fn variation_factors_change_the_output() {
        let layer = PLayer::new(3, 2, 0.01, 1.0, 3);
        let x_data = Matrix::from_fn(4, 3, |i, j| ((i * 3 + j) % 5) as f64 / 4.0);

        let run = |factors: Option<&Matrix>| -> Matrix {
            let mut g = Graph::new();
            let theta = layer.theta.leaf(&mut g);
            let x = g.constant(x_data.clone());
            let (act, inv) = toy_etas(&mut g);
            let out = layer
                .forward(&mut g, theta, x, &[(act, inv)], 0.01, 1.0, factors, true)
                .unwrap();
            g.value(out).clone()
        };

        let nominal = run(None);
        let factors = Matrix::from_fn(5, 2, |i, j| 1.0 + 0.08 * ((i + 2 * j) % 3) as f64 - 0.08);
        let varied = run(Some(&factors));
        assert_ne!(nominal, varied);
    }

    #[test]
    fn gradient_flows_to_theta_through_projection() {
        let layer = PLayer::new(2, 2, 0.01, 1.0, 11);
        let mut g = Graph::new();
        let theta = layer.theta.leaf(&mut g);
        let x = g.constant(Matrix::from_fn(3, 2, |i, j| (i + j) as f64 / 4.0));
        let (act, inv) = toy_etas(&mut g);
        let out = layer
            .forward(&mut g, theta, x, &[(act, inv)], 0.01, 1.0, None, true)
            .unwrap();
        let loss = g.mean(out);
        let grads = g.backward(loss).unwrap();
        let gt = grads.get(theta).expect("theta gradient");
        assert!(gt.norm() > 0.0);
        assert_eq!(gt.shape(), layer.theta_shape());
    }

    #[test]
    fn rejects_wrong_input_width() {
        let layer = PLayer::new(3, 2, 0.01, 1.0, 7);
        let mut g = Graph::new();
        let theta = layer.theta.leaf(&mut g);
        let x = g.constant(Matrix::zeros(2, 5));
        let (act, inv) = toy_etas(&mut g);
        assert!(matches!(
            layer.forward(&mut g, theta, x, &[(act, inv)], 0.01, 1.0, None, true),
            Err(PnnError::Data { .. })
        ));
    }
}
