//! The printed neural network: layers, circuits and the forward pass.

use crate::layer::PLayer;
use crate::nonlinearity::NonlinearCircuit;
use crate::variation::NoiseSample;
use crate::PnnError;
use pnc_autodiff::{Graph, Var};
use pnc_linalg::Matrix;
use pnc_spice::circuits::NonlinearCircuitParams;
use pnc_surrogate::SurrogateModel;
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// The classification loss the pNN trains with.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum LossKind {
    /// The pNN margin loss used throughout the printed-neuromorphic line of
    /// work: hinge on the voltage gap between the true class and the
    /// runner-up.
    Margin {
        /// Required voltage gap (the original implementations use 0.3 V).
        margin: f64,
    },
    /// Softmax cross-entropy over output voltages scaled by `1/temperature`.
    CrossEntropy {
        /// Softmax temperature (output voltages span ≲1 V, so temperatures
        /// around 0.1 sharpen the distribution usefully).
        temperature: f64,
    },
}

impl Default for LossKind {
    fn default() -> Self {
        LossKind::Margin { margin: 0.3 }
    }
}

/// How many independent nonlinear circuits the network prints.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum NonlinearityGranularity {
    /// One activation + one negative-weight circuit design shared by all
    /// layers (a single bespoke design is replicated at print time).
    Shared,
    /// Each layer gets its own pair of circuit designs (the default; more
    /// bespoke flexibility at no training cost).
    PerLayer,
    /// Every output neuron gets its own pair of circuit designs — the most
    /// bespoke configuration additive manufacturing allows. Costs more
    /// learnable parameters and a per-column forward pass.
    PerNeuron,
}

/// Configuration of a [`Pnn`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PnnConfig {
    /// Layer widths, e.g. `[4, 3, 3]` for the paper's `#input-3-#output`
    /// topology on Iris.
    pub layer_sizes: Vec<usize>,
    /// Minimum printable conductance magnitude.
    pub g_min: f64,
    /// Maximum printable conductance magnitude.
    pub g_max: f64,
    /// Whether the nonlinear circuits are learnable (the paper's
    /// contribution) or fixed (prior work).
    pub learnable_nonlinearity: bool,
    /// Circuit sharing across layers.
    pub granularity: NonlinearityGranularity,
    /// Whether the final layer output passes through the activation circuit.
    pub activation_on_output: bool,
    /// Weight-initialization seed.
    pub seed: u64,
}

impl PnnConfig {
    /// The paper's topology for a dataset: `#input-3-#output`, learnable
    /// nonlinearity on, margin-loss-friendly defaults.
    pub fn for_dataset(num_features: usize, num_classes: usize) -> Self {
        PnnConfig {
            layer_sizes: vec![num_features, 3, num_classes],
            g_min: 0.01,
            g_max: 1.0,
            learnable_nonlinearity: true,
            granularity: NonlinearityGranularity::PerLayer,
            activation_on_output: true,
            seed: 0,
        }
    }

    /// Returns a copy with the nonlinearity fixed (the `α_ω = 0` ablation).
    pub fn with_fixed_nonlinearity(mut self) -> Self {
        self.learnable_nonlinearity = false;
        self
    }

    /// Returns a copy with a different seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    fn validate(&self) -> Result<(), PnnError> {
        if self.layer_sizes.len() < 2 {
            return Err(PnnError::Config {
                detail: "need at least input and output sizes".into(),
            });
        }
        if self.layer_sizes.contains(&0) {
            return Err(PnnError::Config {
                detail: "layer sizes must be positive".into(),
            });
        }
        if !(self.g_min > 0.0 && self.g_max > self.g_min) {
            return Err(PnnError::Config {
                detail: format!(
                    "need 0 < g_min < g_max, got {} and {}",
                    self.g_min, self.g_max
                ),
            });
        }
        Ok(())
    }
}

/// Leaf variables of one forward pass, used to route gradients back into
/// parameters.
#[derive(Debug, Clone)]
pub struct PnnVars {
    /// One θ leaf per layer.
    pub thetas: Vec<Var>,
    /// One 𝔴 leaf per learnable circuit (activation and negative-weight
    /// interleaved per circuit slot), empty when fixed.
    pub circuit_ws: Vec<Var>,
}

/// A printed neural network.
///
/// Circuits are stored as (activation, negative-weight) pairs: one pair
/// total under [`NonlinearityGranularity::Shared`], one per layer under
/// [`NonlinearityGranularity::PerLayer`].
///
/// # Examples
///
/// See the crate-level example; unit construction:
///
/// ```no_run
/// # use pnc_core::{Pnn, PnnConfig};
/// # use std::sync::Arc;
/// # fn with_model(surrogate: Arc<pnc_surrogate::SurrogateModel>) -> Result<(), pnc_core::PnnError> {
/// let pnn = Pnn::new(PnnConfig::for_dataset(4, 3), surrogate)?;
/// assert_eq!(pnn.num_layers(), 2);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Pnn {
    config: PnnConfig,
    layers: Vec<PLayer>,
    /// `(activation, negative-weight)` circuit pairs.
    circuits: Vec<(NonlinearCircuit, NonlinearCircuit)>,
    surrogate: Arc<SurrogateModel>,
}

/// Serializable snapshot of a network (used by [`Pnn::save`]/[`Pnn::load`]).
#[derive(Debug, Clone, Serialize, Deserialize)]
struct PnnState {
    config: PnnConfig,
    layers: Vec<PLayer>,
    circuits: Vec<(NonlinearCircuit, NonlinearCircuit)>,
    surrogate: SurrogateModel,
}

impl Pnn {
    /// Builds a network from a configuration and a trained surrogate model.
    ///
    /// Both learnable and fixed circuits start from the same mid-range
    /// nominal design ([`NonlinearCircuitParams::nominal`]), so ablation
    /// arms differ only in trainability.
    ///
    /// # Errors
    ///
    /// Returns [`PnnError::Config`] for invalid configurations.
    pub fn new(config: PnnConfig, surrogate: Arc<SurrogateModel>) -> Result<Self, PnnError> {
        config.validate()?;
        let mut layers = Vec::with_capacity(config.layer_sizes.len() - 1);
        for (i, w) in config.layer_sizes.windows(2).enumerate() {
            layers.push(PLayer::new(
                w[0],
                w[1],
                config.g_min,
                config.g_max,
                config
                    .seed
                    .wrapping_add(i as u64)
                    .wrapping_mul(0x9E3779B97F4A7C15),
            ));
        }
        let pairs = match config.granularity {
            NonlinearityGranularity::Shared => 1,
            NonlinearityGranularity::PerLayer => layers.len(),
            NonlinearityGranularity::PerNeuron => layers.iter().map(|l| l.out_dim()).sum::<usize>(),
        };
        let nominal = NonlinearCircuitParams::nominal();
        let make = || {
            if config.learnable_nonlinearity {
                NonlinearCircuit::learnable_from(nominal)
            } else {
                NonlinearCircuit::fixed(nominal)
            }
        };
        let circuits = (0..pairs).map(|_| (make(), make())).collect();
        Ok(Pnn {
            config,
            layers,
            circuits,
            surrogate,
        })
    }

    /// The configuration the network was built with.
    pub fn config(&self) -> &PnnConfig {
        &self.config
    }

    /// Number of crossbar layers.
    pub fn num_layers(&self) -> usize {
        self.layers.len()
    }

    /// The crossbar layers.
    pub fn layers(&self) -> &[PLayer] {
        &self.layers
    }

    /// Mutable access to the crossbar layers (used by the trainer).
    pub fn layers_mut(&mut self) -> &mut [PLayer] {
        &mut self.layers
    }

    /// The `(activation, negative-weight)` circuit pairs.
    pub fn circuits(&self) -> &[(NonlinearCircuit, NonlinearCircuit)] {
        &self.circuits
    }

    /// Mutable access to the circuit pairs (used by the trainer).
    pub fn circuits_mut(&mut self) -> &mut [(NonlinearCircuit, NonlinearCircuit)] {
        &mut self.circuits
    }

    /// The surrogate model used for circuit behavior.
    pub fn surrogate(&self) -> &SurrogateModel {
        &self.surrogate
    }

    /// θ shapes per layer, for sampling variation.
    pub fn theta_shapes(&self) -> Vec<(usize, usize)> {
        self.layers.iter().map(|l| l.theta_shape()).collect()
    }

    /// Total number of nonlinear circuits (pairs × 2), for sampling
    /// variation.
    pub fn num_circuits(&self) -> usize {
        self.circuits.len() * 2
    }

    /// The range of circuit-pair indices layer `i` uses: one shared pair,
    /// the layer's own pair, or one pair per output neuron. Shared with the
    /// plan compiler in [`crate::infer`], which must slice η pairs exactly
    /// as the graph forward does.
    pub(crate) fn pair_range(&self, layer: usize) -> std::ops::Range<usize> {
        match self.config.granularity {
            NonlinearityGranularity::Shared => 0..1,
            NonlinearityGranularity::PerLayer => layer..layer + 1,
            NonlinearityGranularity::PerNeuron => {
                let offset: usize = self.layers[..layer].iter().map(|l| l.out_dim()).sum();
                offset..offset + self.layers[layer].out_dim()
            }
        }
    }

    /// Builds the forward pass on `g` for a batch of input voltages,
    /// returning the output-voltage node and the registered leaves.
    ///
    /// `noise` carries one Monte-Carlo draw of printing variation
    /// (see [`NoiseSample`]); `None` means nominal printing. Circuit ω
    /// factors are consumed in pair order: activation then negative-weight
    /// for pair 0, then pair 1, …
    ///
    /// # Errors
    ///
    /// Returns [`PnnError::Data`] if `x` does not match the input width.
    pub fn forward(
        &self,
        g: &mut Graph,
        x: &Matrix,
        noise: Option<&NoiseSample>,
    ) -> Result<(Var, PnnVars), PnnError> {
        if x.cols() != self.config.layer_sizes[0] {
            return Err(PnnError::Data {
                detail: format!(
                    "expected {} input features, got {}",
                    self.config.layer_sizes[0],
                    x.cols()
                ),
            });
        }
        if let Some(n) = noise {
            if n.theta_factors.len() != self.layers.len()
                || n.omega_factors.len() != self.num_circuits()
            {
                return Err(PnnError::Data {
                    detail: "noise sample does not match the network shape".into(),
                });
            }
        }

        // Register circuit leaves and build η nodes once per circuit pair.
        let mut circuit_ws = Vec::new();
        let mut etas = Vec::with_capacity(self.circuits.len());
        for (pair_idx, (act, inv)) in self.circuits.iter().enumerate() {
            let act_w = act.register(g);
            let inv_w = inv.register(g);
            if let Some(v) = act_w {
                circuit_ws.push(v);
            }
            if let Some(v) = inv_w {
                circuit_ws.push(v);
            }
            let act_noise = noise.map(|n| &n.omega_factors[2 * pair_idx]);
            let inv_noise = noise.map(|n| &n.omega_factors[2 * pair_idx + 1]);
            let eta_act = act.eta_graph(g, act_w, &self.surrogate, act_noise)?;
            let eta_inv = inv.eta_graph(g, inv_w, &self.surrogate, inv_noise)?;
            etas.push((eta_act, eta_inv));
        }

        let mut thetas = Vec::with_capacity(self.layers.len());
        let mut h = g.constant(x.clone());
        let last = self.layers.len() - 1;
        for (i, layer) in self.layers.iter().enumerate() {
            let theta_var = layer.theta.leaf(g);
            thetas.push(theta_var);
            let layer_etas = &etas[self.pair_range(i)];
            let apply_act = i < last || self.config.activation_on_output;
            h = layer.forward(
                g,
                theta_var,
                h,
                layer_etas,
                self.config.g_min,
                self.config.g_max,
                noise.map(|n| &n.theta_factors[i]),
                apply_act,
            )?;
        }
        Ok((h, PnnVars { thetas, circuit_ws }))
    }

    /// Builds the configured classification loss over `scores`.
    ///
    /// # Errors
    ///
    /// Propagates target-validation errors.
    pub fn loss(
        &self,
        g: &mut Graph,
        scores: Var,
        targets: &[usize],
        kind: LossKind,
    ) -> Result<Var, PnnError> {
        match kind {
            LossKind::Margin { margin } => Ok(g.margin_loss(scores, targets, margin)?),
            LossKind::CrossEntropy { temperature } => {
                let scaled = g.scale(scores, 1.0 / temperature);
                Ok(g.cross_entropy_logits(scaled, targets)?)
            }
        }
    }

    /// Saves the trained network (configuration, crossbars, circuits, and
    /// the embedded surrogate model) as JSON — a self-contained artifact a
    /// fabrication flow can archive next to the printed device.
    ///
    /// # Errors
    ///
    /// Returns [`PnnError::Data`] on serialization or I/O failures.
    pub fn save(&self, path: &std::path::Path) -> Result<(), PnnError> {
        let state = PnnState {
            config: self.config.clone(),
            layers: self.layers.clone(),
            circuits: self.circuits.clone(),
            surrogate: (*self.surrogate).clone(),
        };
        let json = serde_json::to_string(&state).map_err(|e| PnnError::Data {
            detail: format!("serialize failed: {e}"),
        })?;
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent).map_err(|e| PnnError::Data {
                detail: format!("create dir failed: {e}"),
            })?;
        }
        std::fs::write(path, json).map_err(|e| PnnError::Data {
            detail: format!("write failed: {e}"),
        })
    }

    /// Loads a network saved by [`Pnn::save`].
    ///
    /// # Errors
    ///
    /// Returns [`PnnError::Data`] on I/O or deserialization failures.
    pub fn load(path: &std::path::Path) -> Result<Self, PnnError> {
        let json = std::fs::read_to_string(path).map_err(|e| PnnError::Data {
            detail: format!("read failed: {e}"),
        })?;
        let state: PnnState = serde_json::from_str(&json).map_err(|e| PnnError::Data {
            detail: format!("deserialize failed: {e}"),
        })?;
        Ok(Pnn {
            config: state.config,
            layers: state.layers,
            circuits: state.circuits,
            surrogate: Arc::new(state.surrogate),
        })
    }

    /// Convenience inference: output voltages for a batch, nominal or under
    /// one noise draw.
    ///
    /// # Errors
    ///
    /// As for [`Pnn::forward`].
    pub fn infer(&self, x: &Matrix, noise: Option<&NoiseSample>) -> Result<Matrix, PnnError> {
        let mut g = Graph::new();
        let (scores, _) = self.forward(&mut g, x, noise)?;
        Ok(g.value(scores).clone())
    }

    /// Argmax class predictions for a batch.
    ///
    /// # Errors
    ///
    /// As for [`Pnn::forward`].
    pub fn predict(&self, x: &Matrix, noise: Option<&NoiseSample>) -> Result<Vec<usize>, PnnError> {
        let scores = self.infer(x, noise)?;
        Ok((0..scores.rows())
            .map(|i| {
                let row = scores.row(i);
                row.iter()
                    .enumerate()
                    .max_by(|a, b| a.1.total_cmp(b.1))
                    .map(|(j, _)| j)
                    .unwrap_or(0)
            })
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pnc_surrogate::{build_dataset, train_surrogate, DatasetConfig, TrainConfig};

    fn quick_surrogate() -> Arc<SurrogateModel> {
        let data = build_dataset(&DatasetConfig {
            samples: 120,
            sweep_points: 31,
        })
        .unwrap();
        Arc::new(
            train_surrogate(
                &data,
                &TrainConfig {
                    layer_sizes: vec![10, 8, 4],
                    max_epochs: 300,
                    patience: 100,
                    ..TrainConfig::default()
                },
            )
            .unwrap()
            .0,
        )
    }

    fn toy_input(batch: usize, dim: usize) -> Matrix {
        Matrix::from_fn(batch, dim, |i, j| ((i * dim + j) % 7) as f64 / 6.0)
    }

    #[test]
    fn config_validation() {
        let s = quick_surrogate();
        let mut c = PnnConfig::for_dataset(4, 3);
        c.layer_sizes = vec![4];
        assert!(Pnn::new(c, s.clone()).is_err());
        let mut c = PnnConfig::for_dataset(4, 3);
        c.g_min = 0.0;
        assert!(Pnn::new(c, s.clone()).is_err());
        let mut c = PnnConfig::for_dataset(4, 3);
        c.layer_sizes = vec![4, 0, 3];
        assert!(Pnn::new(c, s).is_err());
    }

    #[test]
    fn forward_shapes_and_determinism() {
        let s = quick_surrogate();
        let pnn = Pnn::new(PnnConfig::for_dataset(4, 3), s).unwrap();
        let x = toy_input(6, 4);
        let a = pnn.infer(&x, None).unwrap();
        let b = pnn.infer(&x, None).unwrap();
        assert_eq!(a.shape(), (6, 3));
        assert_eq!(a, b);
    }

    #[test]
    fn learnable_network_exposes_circuit_leaves() {
        let s = quick_surrogate();
        let pnn = Pnn::new(PnnConfig::for_dataset(4, 3), s.clone()).unwrap();
        let mut g = Graph::new();
        let (_, vars) = pnn.forward(&mut g, &toy_input(2, 4), None).unwrap();
        // PerLayer granularity with 2 layers: 2 pairs × 2 circuits.
        assert_eq!(vars.circuit_ws.len(), 4);
        assert_eq!(vars.thetas.len(), 2);

        let fixed = Pnn::new(PnnConfig::for_dataset(4, 3).with_fixed_nonlinearity(), s).unwrap();
        let mut g = Graph::new();
        let (_, vars) = fixed.forward(&mut g, &toy_input(2, 4), None).unwrap();
        assert!(vars.circuit_ws.is_empty());
    }

    #[test]
    fn shared_granularity_uses_one_pair() {
        let s = quick_surrogate();
        let mut config = PnnConfig::for_dataset(4, 3);
        config.granularity = NonlinearityGranularity::Shared;
        let pnn = Pnn::new(config, s).unwrap();
        assert_eq!(pnn.circuits().len(), 1);
        assert_eq!(pnn.num_circuits(), 2);
        let mut g = Graph::new();
        let (_, vars) = pnn.forward(&mut g, &toy_input(2, 4), None).unwrap();
        assert_eq!(vars.circuit_ws.len(), 2);
    }

    #[test]
    fn per_neuron_granularity_counts_and_runs() {
        let s = quick_surrogate();
        let mut config = PnnConfig::for_dataset(4, 3); // layers 4->3->3
        config.granularity = NonlinearityGranularity::PerNeuron;
        let pnn = Pnn::new(config, s).unwrap();
        // 3 + 3 output neurons -> 6 pairs, 12 circuits.
        assert_eq!(pnn.circuits().len(), 6);
        assert_eq!(pnn.num_circuits(), 12);
        let mut g = Graph::new();
        let (out, vars) = pnn.forward(&mut g, &toy_input(4, 4), None).unwrap();
        assert_eq!(g.shape(out), (4, 3));
        assert_eq!(vars.circuit_ws.len(), 12);
    }

    #[test]
    fn per_neuron_equals_per_layer_at_identical_initialization() {
        // All circuits start from the same nominal design, so the per-column
        // forward path must produce the same outputs as the shared matmul
        // path - a strong check on the per-neuron implementation.
        let s = quick_surrogate();
        let per_layer = Pnn::new(PnnConfig::for_dataset(4, 3), s.clone()).unwrap();
        let mut config = PnnConfig::for_dataset(4, 3);
        config.granularity = NonlinearityGranularity::PerNeuron;
        let per_neuron = Pnn::new(config, s).unwrap();

        let x = toy_input(5, 4);
        let a = per_layer.infer(&x, None).unwrap();
        let b = per_neuron.infer(&x, None).unwrap();
        assert!(a.approx_eq(&b, 1e-12), "forward paths disagree");
    }

    #[test]
    fn per_neuron_gradients_reach_circuits() {
        let s = quick_surrogate();
        let mut config = PnnConfig::for_dataset(4, 2);
        config.granularity = NonlinearityGranularity::PerNeuron;
        let pnn = Pnn::new(config, s).unwrap();
        let mut g = Graph::new();
        let (scores, vars) = pnn.forward(&mut g, &toy_input(6, 4), None).unwrap();
        let loss = pnn
            .loss(&mut g, scores, &[0, 1, 0, 1, 0, 1], LossKind::default())
            .unwrap();
        let grads = g.backward(loss).unwrap();
        let with_grad = vars
            .circuit_ws
            .iter()
            .filter(|w| grads.get(**w).map(|m| m.norm() > 0.0).unwrap_or(false))
            .count();
        // At least the first layer's activation circuits must receive
        // gradient (output-layer inverters may be unused if no theta < 0).
        assert!(with_grad >= 2, "only {with_grad} circuit grads nonzero");
    }

    #[test]
    fn noise_changes_outputs() {
        use rand::SeedableRng;
        let s = quick_surrogate();
        let pnn = Pnn::new(PnnConfig::for_dataset(4, 3), s).unwrap();
        let x = toy_input(4, 4);
        let nominal = pnn.infer(&x, None).unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(0);
        let noise = NoiseSample::draw(
            &crate::VariationModel::Uniform { epsilon: 0.1 },
            &mut rng,
            &pnn.theta_shapes(),
            pnn.num_circuits(),
        );
        let varied = pnn.infer(&x, Some(&noise)).unwrap();
        assert_ne!(nominal, varied);
        let max_shift = nominal.sub(&varied).unwrap().norm_inf();
        assert!(
            max_shift < 0.5,
            "10% component noise should not rail outputs: {max_shift}"
        );
    }

    #[test]
    fn mismatched_noise_is_rejected() {
        let s = quick_surrogate();
        let pnn = Pnn::new(PnnConfig::for_dataset(4, 3), s).unwrap();
        let bad = NoiseSample::identity(&[(6, 3)], 1); // wrong shape count
        assert!(matches!(
            pnn.infer(&toy_input(2, 4), Some(&bad)),
            Err(PnnError::Data { .. })
        ));
    }

    #[test]
    fn wrong_input_width_is_rejected() {
        let s = quick_surrogate();
        let pnn = Pnn::new(PnnConfig::for_dataset(4, 3), s).unwrap();
        assert!(matches!(
            pnn.infer(&toy_input(2, 5), None),
            Err(PnnError::Data { .. })
        ));
    }

    #[test]
    fn gradients_reach_all_parameters() {
        let s = quick_surrogate();
        let pnn = Pnn::new(PnnConfig::for_dataset(4, 3), s).unwrap();
        let mut g = Graph::new();
        let (scores, vars) = pnn.forward(&mut g, &toy_input(5, 4), None).unwrap();
        let loss = pnn
            .loss(&mut g, scores, &[0, 1, 2, 0, 1], LossKind::default())
            .unwrap();
        let grads = g.backward(loss).unwrap();
        for (k, theta) in vars.thetas.iter().enumerate() {
            let gt = grads
                .get(*theta)
                .unwrap_or_else(|| panic!("theta {k} missing grad"));
            assert!(gt.norm() > 0.0, "theta {k} has zero gradient");
        }
        let mut any_circuit_grad = false;
        for w in &vars.circuit_ws {
            if let Some(gw) = grads.get(*w) {
                any_circuit_grad |= gw.norm() > 0.0;
            }
        }
        assert!(any_circuit_grad, "no circuit parameter received gradient");
    }

    #[test]
    fn both_loss_kinds_build() {
        let s = quick_surrogate();
        let pnn = Pnn::new(PnnConfig::for_dataset(4, 2), s).unwrap();
        let mut g = Graph::new();
        let (scores, _) = pnn.forward(&mut g, &toy_input(3, 4), None).unwrap();
        let m = pnn
            .loss(&mut g, scores, &[0, 1, 0], LossKind::Margin { margin: 0.3 })
            .unwrap();
        let ce = pnn
            .loss(
                &mut g,
                scores,
                &[0, 1, 0],
                LossKind::CrossEntropy { temperature: 0.1 },
            )
            .unwrap();
        assert!(g.value(m)[(0, 0)] >= 0.0);
        assert!(g.value(ce)[(0, 0)] >= 0.0);
    }

    #[test]
    fn save_load_round_trip_preserves_inference() {
        let s = quick_surrogate();
        let pnn = Pnn::new(PnnConfig::for_dataset(4, 3), s).unwrap();
        let path = std::env::temp_dir().join("pnc_core_save_test.json");
        pnn.save(&path).unwrap();
        let back = Pnn::load(&path).unwrap();
        let x = toy_input(4, 4);
        let a = pnn.infer(&x, None).unwrap();
        let b = back.infer(&x, None).unwrap();
        // JSON floats round-trip to within 1 ULP in this environment.
        assert!(a.approx_eq(&b, 1e-9));
        assert_eq!(back.config(), pnn.config());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn load_rejects_missing_file() {
        let err = Pnn::load(std::path::Path::new("/nonexistent/pnc.json"));
        assert!(matches!(err, Err(PnnError::Data { .. })));
    }

    #[test]
    fn predict_returns_valid_classes() {
        let s = quick_surrogate();
        let pnn = Pnn::new(PnnConfig::for_dataset(4, 3), s).unwrap();
        let preds = pnn.predict(&toy_input(8, 4), None).unwrap();
        assert_eq!(preds.len(), 8);
        assert!(preds.iter().all(|&p| p < 3));
    }
}
