//! Export of a trained pNN as a printable design.
//!
//! Training a pNN **is** designing a printed neuromorphic circuit
//! (Sec. II-C); this module extracts the component values a printer would
//! receive: per-crossbar conductances (with negative-weight flags) and the
//! bespoke physical parameterization of every nonlinear circuit.

use crate::network::Pnn;
use pnc_linalg::Matrix;
use pnc_spice::circuits::NonlinearCircuitParams;
use serde::{Deserialize, Serialize};
use std::fmt;

/// One crossbar of the printed design.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CrossbarDesign {
    /// Printable conductance magnitudes `|θ|` after projection; `0` means
    /// "do not print this resistor". Shape `(in + 2) × out` with the bias
    /// and `g_d` rows last.
    pub conductances: Matrix,
    /// `true` where the input is routed through the negative-weight circuit.
    pub negated: Vec<Vec<bool>>,
}

/// One nonlinear circuit of the printed design.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CircuitDesign {
    /// Physical component values `[R1, R2, R3, R4, R5, W, L]` (SI units).
    pub omega: [f64; 7],
    /// The resulting curve parameters η (via the surrogate model).
    pub eta: [f64; 4],
}

/// The complete printable design of a trained pNN.
///
/// # Examples
///
/// ```no_run
/// # use pnc_core::{Pnn, PrintedDesign};
/// # fn export(pnn: &Pnn) {
/// let design = PrintedDesign::from_pnn(pnn);
/// println!("{design}");
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PrintedDesign {
    /// Crossbars in layer order.
    pub crossbars: Vec<CrossbarDesign>,
    /// `(activation, negative-weight)` circuit designs per circuit pair.
    pub circuits: Vec<(CircuitDesign, CircuitDesign)>,
}

impl PrintedDesign {
    /// Extracts the design from a (typically trained) network.
    pub fn from_pnn(pnn: &Pnn) -> Self {
        let config = pnn.config();
        let crossbars = pnn
            .layers()
            .iter()
            .map(|layer| {
                let printable = layer.printable_conductances(config.g_min, config.g_max);
                let (rows, cols) = printable.shape();
                let negated = (0..rows)
                    .map(|i| (0..cols).map(|j| printable[(i, j)] < 0.0).collect())
                    .collect();
                CrossbarDesign {
                    conductances: printable.map(f64::abs),
                    negated,
                }
            })
            .collect();
        let circuits = pnn
            .circuits()
            .iter()
            .map(|(act, inv)| {
                let make = |c: &crate::NonlinearCircuit| {
                    let omega = c.printable_omega();
                    CircuitDesign {
                        omega,
                        eta: pnn.surrogate().predict_eta(&omega),
                    }
                };
                (make(act), make(inv))
            })
            .collect();
        PrintedDesign {
            crossbars,
            circuits,
        }
    }

    /// Total number of printed resistors across all crossbars (zeros are not
    /// printed).
    pub fn printed_resistor_count(&self) -> usize {
        self.crossbars
            .iter()
            .map(|cb| {
                cb.conductances
                    .as_slice()
                    .iter()
                    .filter(|&&g| g > 0.0)
                    .count()
            })
            .sum()
    }

    /// Every circuit's physical parameters satisfy the Tab. I feasibility
    /// constraints.
    pub fn is_feasible(&self) -> bool {
        self.circuits.iter().all(|(a, i)| {
            NonlinearCircuitParams::from_array(a.omega)
                .validate()
                .is_ok()
                && NonlinearCircuitParams::from_array(i.omega)
                    .validate()
                    .is_ok()
        })
    }
}

impl fmt::Display for PrintedDesign {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "printed neuromorphic design")?;
        for (k, cb) in self.crossbars.iter().enumerate() {
            let (rows, cols) = cb.conductances.shape();
            writeln!(
                f,
                "  crossbar {k}: {} inputs (+bias+gd) x {} outputs",
                rows - 2,
                cols
            )?;
            for i in 0..rows {
                write!(f, "    ")?;
                for j in 0..cols {
                    let g = cb.conductances[(i, j)];
                    if g == 0.0 {
                        write!(f, "     --      ")?;
                    } else {
                        let mark = if cb.negated[i][j] { '-' } else { '+' };
                        write!(f, "{mark}{g:<11.4} ")?;
                    }
                }
                writeln!(f)?;
            }
        }
        for (k, (act, inv)) in self.circuits.iter().enumerate() {
            for (role, c) in [("act", act), ("inv", inv)] {
                writeln!(
                    f,
                    "  circuit {k} {role}: R1={:.0}Ω R2={:.0}Ω R3={:.0}Ω R4={:.0}Ω R5={:.0}Ω W={:.0}µm L={:.0}µm  η=[{:.3}, {:.3}, {:.3}, {:.3}]",
                    c.omega[0],
                    c.omega[1],
                    c.omega[2],
                    c.omega[3],
                    c.omega[4],
                    c.omega[5] * 1e6,
                    c.omega[6] * 1e6,
                    c.eta[0],
                    c.eta[1],
                    c.eta[2],
                    c.eta[3]
                )?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::PnnConfig;
    use pnc_surrogate::{build_dataset, train_surrogate, DatasetConfig};
    use std::sync::Arc;

    fn quick_pnn() -> Pnn {
        let data = build_dataset(&DatasetConfig {
            samples: 120,
            sweep_points: 31,
        })
        .unwrap();
        let surrogate = Arc::new(
            train_surrogate(
                &data,
                &pnc_surrogate::TrainConfig {
                    layer_sizes: vec![10, 8, 4],
                    max_epochs: 300,
                    patience: 100,
                    ..pnc_surrogate::TrainConfig::default()
                },
            )
            .unwrap()
            .0,
        );
        Pnn::new(PnnConfig::for_dataset(3, 2), surrogate).unwrap()
    }

    #[test]
    fn export_has_expected_structure() {
        let pnn = quick_pnn();
        let design = PrintedDesign::from_pnn(&pnn);
        assert_eq!(design.crossbars.len(), 2);
        assert_eq!(design.crossbars[0].conductances.shape(), (5, 3));
        assert_eq!(design.crossbars[1].conductances.shape(), (5, 2));
        assert_eq!(design.circuits.len(), 2);
        assert!(design.is_feasible());
    }

    #[test]
    fn conductances_are_printable_magnitudes() {
        let pnn = quick_pnn();
        let config = pnn.config().clone();
        let design = PrintedDesign::from_pnn(&pnn);
        for cb in &design.crossbars {
            for &g in cb.conductances.as_slice() {
                assert!(
                    g == 0.0 || (config.g_min..=config.g_max).contains(&g),
                    "unprintable conductance {g}"
                );
            }
        }
        assert!(design.printed_resistor_count() > 0);
    }

    #[test]
    fn display_mentions_components() {
        let design = PrintedDesign::from_pnn(&quick_pnn());
        let text = design.to_string();
        assert!(text.contains("crossbar 0"));
        assert!(text.contains("R1="));
        assert!(text.contains("η="));
    }

    #[test]
    fn serde_round_trip() {
        let design = PrintedDesign::from_pnn(&quick_pnn());
        let json = serde_json::to_string(&design).unwrap();
        let back: PrintedDesign = serde_json::from_str(&json).unwrap();
        assert_eq!(design.crossbars.len(), back.crossbars.len());
        assert_eq!(design.circuits.len(), back.circuits.len());
    }
}
