//! Export of a trained pNN as a printable design.
//!
//! Training a pNN **is** designing a printed neuromorphic circuit
//! (Sec. II-C); this module extracts the component values a printer would
//! receive: per-crossbar conductances (with negative-weight flags) and the
//! bespoke physical parameterization of every nonlinear circuit.

use crate::infer::{extract_layers, ExtractedLayer};
use crate::network::Pnn;
use crate::PnnError;
use pnc_linalg::Matrix;
use pnc_spice::circuits::NonlinearCircuitParams;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::path::Path;

/// Current [`PnnArtifact`] format version; bumped on incompatible change.
pub const ARTIFACT_FORMAT_VERSION: u32 = 1;

/// One crossbar of the printed design.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CrossbarDesign {
    /// Printable conductance magnitudes `|θ|` after projection; `0` means
    /// "do not print this resistor". Shape `(in + 2) × out` with the bias
    /// and `g_d` rows last.
    pub conductances: Matrix,
    /// `true` where the input is routed through the negative-weight circuit.
    pub negated: Vec<Vec<bool>>,
}

/// One nonlinear circuit of the printed design.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CircuitDesign {
    /// Physical component values `[R1, R2, R3, R4, R5, W, L]` (SI units).
    pub omega: [f64; 7],
    /// The resulting curve parameters η (via the surrogate model).
    pub eta: [f64; 4],
}

/// The complete printable design of a trained pNN.
///
/// # Examples
///
/// ```no_run
/// # use pnc_core::{Pnn, PrintedDesign};
/// # fn export(pnn: &Pnn) {
/// let design = PrintedDesign::from_pnn(pnn);
/// println!("{design}");
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PrintedDesign {
    /// Crossbars in layer order.
    pub crossbars: Vec<CrossbarDesign>,
    /// `(activation, negative-weight)` circuit designs per circuit pair.
    pub circuits: Vec<(CircuitDesign, CircuitDesign)>,
}

impl PrintedDesign {
    /// Extracts the design from a (typically trained) network.
    pub fn from_pnn(pnn: &Pnn) -> Self {
        let config = pnn.config();
        let crossbars = pnn
            .layers()
            .iter()
            .map(|layer| {
                let printable = layer.printable_conductances(config.g_min, config.g_max);
                let (rows, cols) = printable.shape();
                let negated = (0..rows)
                    .map(|i| (0..cols).map(|j| printable[(i, j)] < 0.0).collect())
                    .collect();
                CrossbarDesign {
                    conductances: printable.map(f64::abs),
                    negated,
                }
            })
            .collect();
        let circuits = pnn
            .circuits()
            .iter()
            .map(|(act, inv)| {
                let make = |c: &crate::NonlinearCircuit| {
                    let omega = c.printable_omega();
                    CircuitDesign {
                        omega,
                        eta: pnn.surrogate().predict_eta(&omega),
                    }
                };
                (make(act), make(inv))
            })
            .collect();
        PrintedDesign {
            crossbars,
            circuits,
        }
    }

    /// Total number of printed resistors across all crossbars (zeros are not
    /// printed).
    pub fn printed_resistor_count(&self) -> usize {
        self.crossbars
            .iter()
            .map(|cb| {
                cb.conductances
                    .as_slice()
                    .iter()
                    .filter(|&&g| g > 0.0)
                    .count()
            })
            .sum()
    }

    /// Every circuit's physical parameters satisfy the Tab. I feasibility
    /// constraints.
    pub fn is_feasible(&self) -> bool {
        self.circuits.iter().all(|(a, i)| {
            NonlinearCircuitParams::from_array(a.omega)
                .validate()
                .is_ok()
                && NonlinearCircuitParams::from_array(i.omega)
                    .validate()
                    .is_ok()
        })
    }
}

impl PrintedDesign {
    /// Checks that every number in the design is finite: conductances,
    /// physical ω component values, and η curve parameters. A failed or
    /// diverged fit can leave NaN/inf in a design; such a design must never
    /// reach a printer — or a serving registry.
    ///
    /// # Errors
    ///
    /// Returns [`PnnError::Artifact`] naming the first offending value.
    pub fn validate(&self) -> Result<(), PnnError> {
        for (k, cb) in self.crossbars.iter().enumerate() {
            if let Some(g) = cb.conductances.as_slice().iter().find(|g| !g.is_finite()) {
                return Err(PnnError::Artifact {
                    detail: format!("crossbar {k}: non-finite conductance {g}"),
                });
            }
            let (rows, cols) = cb.conductances.shape();
            if cb.negated.len() != rows || cb.negated.iter().any(|r| r.len() != cols) {
                return Err(PnnError::Artifact {
                    detail: format!("crossbar {k}: negated mask shape mismatch"),
                });
            }
        }
        for (k, (act, inv)) in self.circuits.iter().enumerate() {
            for (role, c) in [("act", act), ("inv", inv)] {
                if c.omega.iter().any(|v| !v.is_finite()) {
                    return Err(PnnError::Artifact {
                        detail: format!("circuit {k} {role}: non-finite ω component"),
                    });
                }
                if c.eta.iter().any(|v| !v.is_finite()) {
                    return Err(PnnError::Artifact {
                        detail: format!("circuit {k} {role}: non-finite η parameter"),
                    });
                }
            }
        }
        Ok(())
    }
}

/// One crossbar layer of a [`PnnArtifact`]: the exact flattened f64 numbers
/// the compiled [`crate::InferencePlan`] executes — normalized sign-split
/// weights of Eq. 1, η quadruples of Eqs. 2–3, and the precomputed
/// `inv(1 V)` bias response.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ArtifactLayer {
    /// Input width of this crossbar.
    pub in_dim: usize,
    /// Output width of this crossbar.
    pub out_dim: usize,
    /// `(in_dim + 2) × out_dim` row-major positive-path weights.
    pub w_pos: Vec<f64>,
    /// Same shape: negative-path weights.
    pub w_neg: Vec<f64>,
    /// Activation-circuit η per circuit pair (1 entry, or `out_dim` for
    /// per-neuron bespoke circuits).
    pub eta_act: Vec<[f64; 4]>,
    /// Negative-weight-circuit η per circuit pair (same length).
    pub eta_inv: Vec<[f64; 4]>,
    /// `inv(1 V)` per circuit pair (same length).
    pub inv_ones: Vec<f64>,
    /// Whether the ptanh activation applies after this crossbar.
    pub apply_act: bool,
}

/// A trained pNN exported for deployment: everything a serving registry
/// needs to rebuild a [`crate::CompiledPnn`] **bit-identically** — no live
/// network, autodiff graph, or surrogate model required — plus the
/// [`PrintedDesign`] the same training run would send to a printer.
///
/// The layer payload carries the exact f64 numbers
/// [`crate::InferencePlan::compile`] extracts (graph-path η, normalized
/// sign-split weights), so a plan compiled from the artifact reproduces the
/// originating network's outputs bit for bit at every precision.
///
/// Loading always validates: [`Self::from_json`] / [`Self::load`] reject
/// artifacts with non-finite values (the vendored JSON layer round-trips
/// NaN/inf through `null` → NaN, exactly the corruption a failed fit
/// produces) with a typed [`PnnError::Artifact`] — at load time, not as NaN
/// scores at request time.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PnnArtifact {
    /// Format version, [`ARTIFACT_FORMAT_VERSION`] when written by this
    /// crate.
    pub format_version: u32,
    /// Model identifier (e.g. the dataset/task the pNN was trained for);
    /// serving registries key on it.
    pub name: String,
    /// Input feature width.
    pub in_dim: usize,
    /// Output class count.
    pub out_dim: usize,
    /// Crossbar layers in execution order.
    pub layers: Vec<ArtifactLayer>,
    /// The printable design of the same network, for provenance and
    /// feasibility auditing.
    pub design: PrintedDesign,
}

impl PnnArtifact {
    /// Extracts a deployment artifact from a (typically trained) network.
    ///
    /// # Errors
    ///
    /// Propagates surrogate/graph failures from η extraction.
    pub fn from_pnn(pnn: &Pnn, name: &str) -> Result<PnnArtifact, PnnError> {
        let layers: Vec<ArtifactLayer> = extract_layers(pnn)?
            .into_iter()
            .map(|l| {
                let (eta_act, eta_inv) = l.etas.iter().copied().unzip();
                ArtifactLayer {
                    in_dim: l.in_dim,
                    out_dim: l.out_dim,
                    w_pos: l.w_pos,
                    w_neg: l.w_neg,
                    eta_act,
                    eta_inv,
                    inv_ones: l.inv_ones,
                    apply_act: l.apply_act,
                }
            })
            .collect();
        Ok(PnnArtifact {
            format_version: ARTIFACT_FORMAT_VERSION,
            name: name.to_string(),
            in_dim: pnn.config().layer_sizes[0],
            out_dim: layers.last().map(|l| l.out_dim).unwrap_or(0),
            layers,
            design: PrintedDesign::from_pnn(pnn),
        })
    }

    /// Rebuilds the executable layer sequence. Callers validate first.
    pub(crate) fn extracted_layers(&self) -> Vec<ExtractedLayer> {
        self.layers
            .iter()
            .map(|l| ExtractedLayer {
                in_dim: l.in_dim,
                out_dim: l.out_dim,
                w_pos: l.w_pos.clone(),
                w_neg: l.w_neg.clone(),
                etas: l
                    .eta_act
                    .iter()
                    .copied()
                    .zip(l.eta_inv.iter().copied())
                    .collect(),
                inv_ones: l.inv_ones.clone(),
                apply_act: l.apply_act,
            })
            .collect()
    }

    /// Full artifact validation: version, non-empty consistent layer chain,
    /// finite weights and η everywhere (layers *and* embedded design).
    ///
    /// # Errors
    ///
    /// Returns [`PnnError::Artifact`] describing the first defect found.
    pub fn validate(&self) -> Result<(), PnnError> {
        let fail = |detail: String| Err(PnnError::Artifact { detail });
        if self.format_version != ARTIFACT_FORMAT_VERSION {
            return fail(format!(
                "unsupported format_version {} (this build reads {})",
                self.format_version, ARTIFACT_FORMAT_VERSION
            ));
        }
        if self.name.is_empty() {
            return fail("empty model name".to_string());
        }
        if self.layers.is_empty() {
            return fail("artifact has no layers".to_string());
        }
        let mut expect_in = self.in_dim;
        for (i, l) in self.layers.iter().enumerate() {
            if l.in_dim != expect_in {
                return fail(format!(
                    "layer {i}: in_dim {} breaks the layer chain (expected {expect_in})",
                    l.in_dim
                ));
            }
            if l.out_dim == 0 {
                return fail(format!("layer {i}: zero output width"));
            }
            let w_len = (l.in_dim + 2) * l.out_dim;
            if l.w_pos.len() != w_len || l.w_neg.len() != w_len {
                return fail(format!(
                    "layer {i}: weight lengths {}/{} != (in+2)*out = {w_len}",
                    l.w_pos.len(),
                    l.w_neg.len()
                ));
            }
            let pairs = l.eta_act.len();
            if pairs != 1 && pairs != l.out_dim {
                return fail(format!(
                    "layer {i}: {pairs} circuit pairs (expected 1 or out_dim {})",
                    l.out_dim
                ));
            }
            if l.eta_inv.len() != pairs || l.inv_ones.len() != pairs {
                return fail(format!(
                    "layer {i}: eta_inv/inv_ones lengths disagree with eta_act ({pairs})"
                ));
            }
            if let Some(w) = l
                .w_pos
                .iter()
                .chain(&l.w_neg)
                .chain(&l.inv_ones)
                .find(|w| !w.is_finite())
            {
                return fail(format!("layer {i}: non-finite weight {w}"));
            }
            if l.eta_act
                .iter()
                .chain(&l.eta_inv)
                .flatten()
                .any(|e| !e.is_finite())
            {
                return fail(format!("layer {i}: non-finite η parameter"));
            }
            expect_in = l.out_dim;
        }
        if expect_in != self.out_dim {
            return fail(format!(
                "last layer's out_dim {expect_in} != artifact out_dim {}",
                self.out_dim
            ));
        }
        self.design.validate()
    }

    /// Serializes to JSON.
    ///
    /// # Errors
    ///
    /// Returns [`PnnError::Artifact`] if serialization fails.
    pub fn to_json(&self) -> Result<String, PnnError> {
        serde_json::to_string(self).map_err(|e| PnnError::Artifact {
            detail: format!("serialization failed: {e}"),
        })
    }

    /// Parses **and validates** an artifact from JSON: corrupt shapes and
    /// non-finite values are load-time [`PnnError::Artifact`] errors.
    ///
    /// # Errors
    ///
    /// Returns [`PnnError::Artifact`] on parse failure or validation
    /// failure.
    pub fn from_json(json: &str) -> Result<PnnArtifact, PnnError> {
        let artifact: PnnArtifact = serde_json::from_str(json).map_err(|e| PnnError::Artifact {
            detail: format!("parse failed: {e}"),
        })?;
        artifact.validate()?;
        Ok(artifact)
    }

    /// Writes the artifact as JSON to `path`.
    ///
    /// # Errors
    ///
    /// Returns [`PnnError::Artifact`] on serialization or I/O failure.
    pub fn save(&self, path: &Path) -> Result<(), PnnError> {
        std::fs::write(path, self.to_json()?).map_err(|e| PnnError::Artifact {
            detail: format!("writing {} failed: {e}", path.display()),
        })
    }

    /// Reads and validates an artifact from a JSON file.
    ///
    /// # Errors
    ///
    /// Returns [`PnnError::Artifact`] on I/O, parse, or validation failure.
    pub fn load(path: &Path) -> Result<PnnArtifact, PnnError> {
        let json = std::fs::read_to_string(path).map_err(|e| PnnError::Artifact {
            detail: format!("reading {} failed: {e}", path.display()),
        })?;
        Self::from_json(&json)
    }
}

impl fmt::Display for PrintedDesign {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "printed neuromorphic design")?;
        for (k, cb) in self.crossbars.iter().enumerate() {
            let (rows, cols) = cb.conductances.shape();
            writeln!(
                f,
                "  crossbar {k}: {} inputs (+bias+gd) x {} outputs",
                rows - 2,
                cols
            )?;
            for i in 0..rows {
                write!(f, "    ")?;
                for j in 0..cols {
                    let g = cb.conductances[(i, j)];
                    if g == 0.0 {
                        write!(f, "     --      ")?;
                    } else {
                        let mark = if cb.negated[i][j] { '-' } else { '+' };
                        write!(f, "{mark}{g:<11.4} ")?;
                    }
                }
                writeln!(f)?;
            }
        }
        for (k, (act, inv)) in self.circuits.iter().enumerate() {
            for (role, c) in [("act", act), ("inv", inv)] {
                writeln!(
                    f,
                    "  circuit {k} {role}: R1={:.0}Ω R2={:.0}Ω R3={:.0}Ω R4={:.0}Ω R5={:.0}Ω W={:.0}µm L={:.0}µm  η=[{:.3}, {:.3}, {:.3}, {:.3}]",
                    c.omega[0],
                    c.omega[1],
                    c.omega[2],
                    c.omega[3],
                    c.omega[4],
                    c.omega[5] * 1e6,
                    c.omega[6] * 1e6,
                    c.eta[0],
                    c.eta[1],
                    c.eta[2],
                    c.eta[3]
                )?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::PnnConfig;
    use pnc_surrogate::{build_dataset, train_surrogate, DatasetConfig};
    use std::sync::Arc;

    fn quick_pnn() -> Pnn {
        let data = build_dataset(&DatasetConfig {
            samples: 120,
            sweep_points: 31,
        })
        .unwrap();
        let surrogate = Arc::new(
            train_surrogate(
                &data,
                &pnc_surrogate::TrainConfig {
                    layer_sizes: vec![10, 8, 4],
                    max_epochs: 300,
                    patience: 100,
                    ..pnc_surrogate::TrainConfig::default()
                },
            )
            .unwrap()
            .0,
        );
        Pnn::new(PnnConfig::for_dataset(3, 2), surrogate).unwrap()
    }

    #[test]
    fn export_has_expected_structure() {
        let pnn = quick_pnn();
        let design = PrintedDesign::from_pnn(&pnn);
        assert_eq!(design.crossbars.len(), 2);
        assert_eq!(design.crossbars[0].conductances.shape(), (5, 3));
        assert_eq!(design.crossbars[1].conductances.shape(), (5, 2));
        assert_eq!(design.circuits.len(), 2);
        assert!(design.is_feasible());
    }

    #[test]
    fn conductances_are_printable_magnitudes() {
        let pnn = quick_pnn();
        let config = pnn.config().clone();
        let design = PrintedDesign::from_pnn(&pnn);
        for cb in &design.crossbars {
            for &g in cb.conductances.as_slice() {
                assert!(
                    g == 0.0 || (config.g_min..=config.g_max).contains(&g),
                    "unprintable conductance {g}"
                );
            }
        }
        assert!(design.printed_resistor_count() > 0);
    }

    #[test]
    fn display_mentions_components() {
        let design = PrintedDesign::from_pnn(&quick_pnn());
        let text = design.to_string();
        assert!(text.contains("crossbar 0"));
        assert!(text.contains("R1="));
        assert!(text.contains("η="));
    }

    #[test]
    fn serde_round_trip() {
        let design = PrintedDesign::from_pnn(&quick_pnn());
        let json = serde_json::to_string(&design).unwrap();
        let back: PrintedDesign = serde_json::from_str(&json).unwrap();
        assert_eq!(design.crossbars.len(), back.crossbars.len());
        assert_eq!(design.circuits.len(), back.circuits.len());
    }

    #[test]
    fn artifact_round_trip_compiles_bit_identically() {
        let pnn = quick_pnn();
        let artifact = PnnArtifact::from_pnn(&pnn, "unit").expect("exports");
        artifact.validate().expect("valid");
        let back = PnnArtifact::from_json(&artifact.to_json().expect("serializes")).expect("loads");
        assert_eq!(artifact, back, "JSON round trip must preserve every bit");

        // A plan compiled from the artifact matches one compiled from the
        // live network bit for bit.
        let x = pnc_linalg::Matrix::from_fn(5, 3, |i, j| 0.1 * (i + j) as f64);
        let mut from_pnn = crate::InferencePlan::compile(&pnn).expect("compiles");
        let mut from_artifact = crate::InferencePlan::compile_artifact(&back).expect("compiles");
        assert_eq!(
            from_pnn.infer(&x).expect("pnn plan"),
            from_artifact.infer(&x).expect("artifact plan"),
            "artifact-compiled plan must be bit-identical"
        );
    }

    #[test]
    fn non_finite_artifact_is_rejected_at_load_time() {
        let pnn = quick_pnn();
        let mut artifact = PnnArtifact::from_pnn(&pnn, "unit").expect("exports");
        artifact.layers[0].w_pos[0] = f64::NAN;
        // The vendored JSON layer writes non-finite floats as `null` and
        // reads them back as NaN — exactly how a diverged fit's corruption
        // survives a round trip. Loading must still reject it.
        let json = artifact.to_json().expect("serializes");
        match PnnArtifact::from_json(&json) {
            Err(PnnError::Artifact { detail }) => {
                assert!(
                    detail.contains("non-finite"),
                    "should name the defect: {detail}"
                )
            }
            other => panic!("NaN weight must be an Artifact error, got {other:?}"),
        }

        // Same for a poisoned η and a poisoned embedded design.
        let mut bad_eta = PnnArtifact::from_pnn(&pnn, "unit").expect("exports");
        bad_eta.layers[0].eta_act[0][1] = f64::INFINITY;
        assert!(matches!(bad_eta.validate(), Err(PnnError::Artifact { .. })));
        let mut bad_design = PnnArtifact::from_pnn(&pnn, "unit").expect("exports");
        bad_design.design.circuits[0].0.eta[0] = f64::NAN;
        assert!(matches!(
            bad_design.validate(),
            Err(PnnError::Artifact { .. })
        ));
    }

    #[test]
    fn inconsistent_artifact_shapes_are_rejected() {
        let pnn = quick_pnn();
        let good = PnnArtifact::from_pnn(&pnn, "unit").expect("exports");

        let mut wrong_version = good.clone();
        wrong_version.format_version = 99;
        assert!(wrong_version.validate().is_err(), "unknown version");

        let mut empty_name = good.clone();
        empty_name.name.clear();
        assert!(empty_name.validate().is_err(), "empty name");

        let mut truncated = good.clone();
        truncated.layers[1].w_neg.pop();
        assert!(truncated.validate().is_err(), "truncated weights");

        let mut broken_chain = good.clone();
        broken_chain.layers[1].in_dim += 1;
        assert!(broken_chain.validate().is_err(), "broken layer chain");

        let mut no_layers = good;
        no_layers.layers.clear();
        assert!(no_layers.validate().is_err(), "no layers");
    }
}
