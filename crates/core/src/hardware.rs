//! Hardware-in-the-loop validation: run a trained pNN's inference at
//! *circuit level* and measure the model-to-hardware gap.
//!
//! The pNN abstraction (Eq. 1 + surrogate η curves) makes three
//! approximations relative to the printed hardware:
//!
//! 1. the crossbar is assumed to implement the ideal normalized weighted
//!    sum (exact by Kirchhoff, but worth verifying end-to-end),
//! 2. the activation/negative-weight behavior comes from the *surrogate
//!    network* η̂(ω) rather than the circuit itself,
//! 3. stages are assumed ideally buffered.
//!
//! [`HardwareSimulator`] re-runs inference with (1) exact MNA solves of
//! every crossbar (via `pnc-spice`) and (2) the nonlinear circuits
//! characterized by *direct DC simulation* of their netlists (a dense
//! tabulated sweep, like a measured response), keeping only assumption (3).
//! Comparing against [`Pnn::infer`](crate::Pnn::infer) therefore isolates
//! the surrogate approximation error — the quantity a designer must budget
//! before printing.
//!
//! # Examples
//!
//! ```no_run
//! # use pnc_core::{hardware::HardwareSimulator, Pnn};
//! # use pnc_linalg::Matrix;
//! # fn check(pnn: &Pnn, x: &Matrix) -> Result<(), pnc_core::PnnError> {
//! let hw = HardwareSimulator::new();
//! let report = hw.model_hardware_gap(pnn, x)?;
//! println!(
//!     "max output-voltage gap {:.4} V, prediction agreement {:.1} %",
//!     report.max_voltage_gap,
//!     report.prediction_agreement * 100.0
//! );
//! # Ok(())
//! # }
//! ```

use crate::network::Pnn;
use crate::PnnError;
use pnc_fit::Ptanh;
use pnc_linalg::Matrix;
use pnc_spice::circuits::{NonlinearCircuitParams, PtanhCircuit, VDD};
use pnc_spice::sweep::linspace;
use pnc_spice::{Circuit, DcSolver, GROUND};
use serde::{Deserialize, Serialize};

/// A nonlinear circuit characterized by direct simulation: a dense
/// tabulated transfer curve with linear interpolation, plus the mid-level
/// used to derive the complementary (negative-weight) output.
#[derive(Debug, Clone, PartialEq)]
struct TabulatedCircuit {
    /// Input grid (uniform over the supply range).
    inputs: Vec<f64>,
    /// Simulated outputs.
    outputs: Vec<f64>,
    /// Mid level `η₁` of the ptanh fit, the mirror point of the
    /// complementary output.
    mid: f64,
}

impl TabulatedCircuit {
    fn characterize(omega: &[f64; 7], points: usize) -> Result<Self, PnnError> {
        let params = NonlinearCircuitParams::from_array(*omega);
        let mut circuit = PtanhCircuit::build(&params).map_err(spice_err)?;
        let grid = linspace(0.0, VDD, points);
        let curve = circuit.transfer_curve(&grid).map_err(spice_err)?;
        let fit = pnc_fit::fit_ptanh(&curve).map_err(|e| PnnError::Data {
            detail: format!("hardware characterization fit failed: {e}"),
        })?;
        Ok(TabulatedCircuit {
            inputs: curve.iter().map(|p| p.0).collect(),
            outputs: curve.iter().map(|p| p.1).collect(),
            mid: fit.curve.eta[0],
        })
    }

    /// Linear interpolation of the measured response (clamped at the ends).
    fn eval(&self, v: f64) -> f64 {
        let n = self.inputs.len();
        if v <= self.inputs[0] {
            return self.outputs[0];
        }
        if v >= self.inputs[n - 1] {
            return self.outputs[n - 1];
        }
        let step = self.inputs[1] - self.inputs[0];
        let idx = ((v - self.inputs[0]) / step).floor() as usize;
        let idx = idx.min(n - 2);
        let t = (v - self.inputs[idx]) / step;
        self.outputs[idx] * (1.0 - t) + self.outputs[idx + 1] * t
    }

    /// The complementary (falling) output used for negative weights:
    /// the measured curve mirrored around its fitted mid level (see the
    /// sign-convention discussion on [`apply_inv`](crate::apply_inv)).
    fn eval_inv(&self, v: f64) -> f64 {
        2.0 * self.mid - self.eval(v)
    }

    /// The curve as a fitted [`Ptanh`], for reporting.
    fn fitted(&self) -> Result<Ptanh, PnnError> {
        let pts: Vec<(f64, f64)> = self
            .inputs
            .iter()
            .zip(&self.outputs)
            .map(|(&a, &b)| (a, b))
            .collect();
        Ok(pnc_fit::fit_ptanh(&pts)
            .map_err(|e| PnnError::Data {
                detail: format!("fit failed: {e}"),
            })?
            .curve)
    }
}

fn spice_err(e: pnc_spice::SpiceError) -> PnnError {
    PnnError::Data {
        detail: format!("circuit-level simulation failed: {e}"),
    }
}

/// The model-vs-hardware comparison produced by
/// [`HardwareSimulator::model_hardware_gap`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GapReport {
    /// Largest absolute output-voltage difference over all samples and
    /// output neurons.
    pub max_voltage_gap: f64,
    /// Mean absolute output-voltage difference.
    pub mean_voltage_gap: f64,
    /// Fraction of samples where both paths predict the same class.
    pub prediction_agreement: f64,
    /// Number of samples compared.
    pub samples: usize,
}

/// Circuit-level inference engine for trained pNNs.
#[derive(Debug, Clone, PartialEq)]
pub struct HardwareSimulator {
    /// Siemens per surrogate-conductance unit. The pNN math is
    /// scale-invariant, so this only anchors the printed resistor values
    /// (θ = 1 ↦ 100 kΩ at the default 10 µS).
    pub g_unit: f64,
    /// Grid points of the tabulated circuit characterization.
    pub sweep_points: usize,
}

impl Default for HardwareSimulator {
    fn default() -> Self {
        HardwareSimulator {
            g_unit: 1e-5,
            sweep_points: 201,
        }
    }
}

impl HardwareSimulator {
    /// Creates a simulator with default settings.
    pub fn new() -> Self {
        HardwareSimulator::default()
    }

    /// Solves one crossbar output voltage exactly by MNA: every printed
    /// conductance becomes a physical resistor and Kirchhoff does the
    /// weighted sum (Eq. 1 emerges, it is not assumed).
    fn crossbar_output(
        &self,
        inputs: &[f64],
        conductances: &[f64],
        bias_g: f64,
        gd_g: f64,
    ) -> Result<f64, PnnError> {
        let mut ckt = Circuit::new();
        let z = ckt.new_node();
        for (&v, &g) in inputs.iter().zip(conductances) {
            if g <= 0.0 {
                continue; // not printed
            }
            let n = ckt.new_node();
            ckt.vsource(n, GROUND, v).map_err(spice_err)?;
            ckt.resistor(n, z, 1.0 / (g * self.g_unit))
                .map_err(spice_err)?;
        }
        if bias_g > 0.0 {
            let n = ckt.new_node();
            ckt.vsource(n, GROUND, VDD).map_err(spice_err)?;
            ckt.resistor(n, z, 1.0 / (bias_g * self.g_unit))
                .map_err(spice_err)?;
        }
        if gd_g > 0.0 {
            ckt.resistor(z, GROUND, 1.0 / (gd_g * self.g_unit))
                .map_err(spice_err)?;
        }
        let sol = DcSolver::new().solve(&ckt).map_err(spice_err)?;
        Ok(sol.voltage(z))
    }

    /// Runs circuit-level inference: tabulated nonlinear circuits, exact
    /// crossbar solves, buffered stages.
    ///
    /// # Errors
    ///
    /// Propagates simulation, fitting and shape failures.
    pub fn infer(&self, pnn: &Pnn, x: &Matrix) -> Result<Matrix, PnnError> {
        let config = pnn.config();
        // Characterize each printed circuit pair once.
        let tables: Vec<(TabulatedCircuit, TabulatedCircuit)> = pnn
            .circuits()
            .iter()
            .map(|(act, inv)| {
                Ok((
                    TabulatedCircuit::characterize(&act.printable_omega(), self.sweep_points)?,
                    TabulatedCircuit::characterize(&inv.printable_omega(), self.sweep_points)?,
                ))
            })
            .collect::<Result<_, PnnError>>()?;

        let batch = x.rows();
        let mut h = x.clone();
        let last = pnn.num_layers() - 1;
        for (layer_idx, layer) in pnn.layers().iter().enumerate() {
            let printable = layer.printable_conductances(config.g_min, config.g_max);
            let (rows, outs) = printable.shape();
            let in_dim = rows - 2;
            // Base circuit-pair index for this layer; per-neuron adds j.
            let pair_base = match config.granularity {
                crate::NonlinearityGranularity::Shared => 0,
                crate::NonlinearityGranularity::PerLayer => layer_idx,
                crate::NonlinearityGranularity::PerNeuron => {
                    pnn.layers()[..layer_idx].iter().map(|l| l.out_dim()).sum()
                }
            };

            let mut next = Matrix::zeros(batch, outs);
            for s in 0..batch {
                for j in 0..outs {
                    let pair = if config.granularity == crate::NonlinearityGranularity::PerNeuron {
                        pair_base + j
                    } else {
                        pair_base
                    };
                    let (act_table, inv_table) = &tables[pair];
                    // Route each input through the negative-weight circuit
                    // when its conductance was printed on the inverting tap.
                    let mut voltages = Vec::with_capacity(in_dim + 1);
                    let mut conds = Vec::with_capacity(in_dim + 1);
                    for i in 0..in_dim {
                        let theta = printable[(i, j)];
                        let v_in = h[(s, i)];
                        voltages.push(if theta < 0.0 {
                            inv_table.eval_inv(v_in)
                        } else {
                            v_in
                        });
                        conds.push(theta.abs());
                    }
                    // Bias row: may also be inverted.
                    let theta_b = printable[(in_dim, j)];
                    let (bias_v, bias_g) = if theta_b < 0.0 {
                        (inv_table.eval_inv(VDD), theta_b.abs())
                    } else {
                        (VDD, theta_b)
                    };
                    if bias_v != VDD && bias_g > 0.0 {
                        // Inverted bias: treat as a regular input at the
                        // inverted voltage.
                        voltages.push(bias_v);
                        conds.push(bias_g);
                    }
                    let effective_bias = if bias_v == VDD { bias_g } else { 0.0 };
                    let gd_g = printable[(in_dim + 1, j)].abs();
                    let z = self.crossbar_output(&voltages, &conds, effective_bias, gd_g)?;
                    let apply_act = layer_idx < last || config.activation_on_output;
                    next[(s, j)] = if apply_act { act_table.eval(z) } else { z };
                }
            }
            h = next;
        }
        Ok(h)
    }

    /// Compares abstract-pNN inference with circuit-level inference.
    ///
    /// # Errors
    ///
    /// Propagates inference failures.
    pub fn model_hardware_gap(&self, pnn: &Pnn, x: &Matrix) -> Result<GapReport, PnnError> {
        let model = pnn.infer(x, None)?;
        let hardware = self.infer(pnn, x)?;
        let (batch, outs) = model.shape();
        let mut max_gap = 0.0_f64;
        let mut total_gap = 0.0;
        let mut agree = 0usize;
        for s in 0..batch {
            let mut best_model = 0;
            let mut best_hw = 0;
            for j in 0..outs {
                let gap = (model[(s, j)] - hardware[(s, j)]).abs();
                max_gap = max_gap.max(gap);
                total_gap += gap;
                if model[(s, j)] > model[(s, best_model)] {
                    best_model = j;
                }
                if hardware[(s, j)] > hardware[(s, best_hw)] {
                    best_hw = j;
                }
            }
            if best_model == best_hw {
                agree += 1;
            }
        }
        Ok(GapReport {
            max_voltage_gap: max_gap,
            mean_voltage_gap: total_gap / (batch * outs) as f64,
            prediction_agreement: agree as f64 / batch as f64,
            samples: batch,
        })
    }

    /// Reports, per circuit pair, the fitted η of the *simulated* circuit
    /// next to the surrogate's prediction — the per-circuit view of the
    /// surrogate gap.
    ///
    /// # Errors
    ///
    /// Propagates simulation and fitting failures.
    pub fn circuit_etas(&self, pnn: &Pnn) -> Result<Vec<(Ptanh, [f64; 4])>, PnnError> {
        pnn.circuits()
            .iter()
            .flat_map(|(a, i)| [a, i])
            .map(|c| {
                let omega = c.printable_omega();
                let table = TabulatedCircuit::characterize(&omega, self.sweep_points)?;
                Ok((table.fitted()?, pnn.surrogate().predict_eta(&omega)))
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::PnnConfig;
    use pnc_surrogate::{build_dataset, train_surrogate, DatasetConfig};
    use std::sync::Arc;

    fn quick_pnn() -> Pnn {
        let data = build_dataset(&DatasetConfig {
            samples: 200,
            sweep_points: 41,
        })
        .unwrap();
        let surrogate = Arc::new(
            train_surrogate(
                &data,
                &pnc_surrogate::TrainConfig {
                    layer_sizes: vec![10, 9, 7, 5, 4],
                    max_epochs: 800,
                    patience: 200,
                    ..pnc_surrogate::TrainConfig::default()
                },
            )
            .unwrap()
            .0,
        );
        Pnn::new(PnnConfig::for_dataset(3, 2), surrogate).unwrap()
    }

    #[test]
    fn tabulated_interpolation_matches_simulation() {
        let omega = NonlinearCircuitParams::nominal().to_array();
        let table = TabulatedCircuit::characterize(&omega, 201).unwrap();
        let mut circuit = PtanhCircuit::build(&NonlinearCircuitParams::from_array(omega)).unwrap();
        for k in 0..10 {
            let v = 0.05 + 0.09 * k as f64;
            let direct = circuit.output_at(v).unwrap();
            let interp = table.eval(v);
            assert!(
                (direct - interp).abs() < 2e-3,
                "interpolation error {} at {v}",
                (direct - interp).abs()
            );
        }
        // Clamping beyond the grid.
        assert_eq!(table.eval(-1.0), table.outputs[0]);
        assert_eq!(table.eval(2.0), *table.outputs.last().unwrap());
    }

    #[test]
    fn crossbar_output_matches_eq1() {
        let hw = HardwareSimulator::new();
        let inputs = [0.8, 0.3];
        let conds = [0.2, 0.5];
        let (bias_g, gd_g) = (0.1, 0.3);
        let z = hw.crossbar_output(&inputs, &conds, bias_g, gd_g).unwrap();
        let g_total = 0.2 + 0.5 + 0.1 + 0.3;
        let expected = (0.2 * 0.8 + 0.5 * 0.3 + 0.1 * 1.0) / g_total;
        // The solver's gmin safety conductance perturbs the ideal value at
        // the 1e-7 level.
        assert!((z - expected).abs() < 1e-6, "{z} vs {expected}");
    }

    #[test]
    fn zero_conductances_are_not_printed() {
        let hw = HardwareSimulator::new();
        // Only gd printed: node floats to ground through gd.
        let z = hw.crossbar_output(&[0.9], &[0.0], 0.0, 0.5).unwrap();
        assert!(z.abs() < 1e-9);
    }

    #[test]
    fn hardware_inference_is_close_to_model() {
        let pnn = quick_pnn();
        let x = Matrix::from_fn(6, 3, |i, j| ((i * 3 + j) % 7) as f64 / 6.0);
        let hw = HardwareSimulator::new();
        let report = hw.model_hardware_gap(&pnn, &x).unwrap();
        assert_eq!(report.samples, 6);
        // The gap is the surrogate approximation error. The quick test
        // surrogate is deliberately coarse, so only sanity-bound it here;
        // the workspace integration tests check the production surrogate's
        // gap tightly.
        assert!(
            report.max_voltage_gap < 0.9,
            "unexpectedly large hardware gap: {report:?}"
        );
        assert!(
            report.mean_voltage_gap < 0.2,
            "mean gap too large: {report:?}"
        );
        assert!(report.mean_voltage_gap <= report.max_voltage_gap);
        assert!(report.prediction_agreement >= 0.5);
    }

    #[test]
    fn circuit_etas_pairs_simulation_and_surrogate() {
        let pnn = quick_pnn();
        let hw = HardwareSimulator::new();
        let etas = hw.circuit_etas(&pnn).unwrap();
        assert_eq!(etas.len(), pnn.num_circuits());
        for (fitted, predicted) in etas {
            // Both describe the same physical circuit; the curves should
            // agree to within the surrogate tolerance at the midpoint.
            let p = Ptanh { eta: predicted };
            let gap = (fitted.eval(0.5) - p.eval(0.5)).abs();
            assert!(gap < 0.4, "midpoint gap {gap}");
        }
    }
}
