//! Aging of printed conductances: lifetime evaluation and aging-aware
//! training (the extension direction of the paper's companion work,
//! "Aging-Aware Training for Printed Neuromorphic Circuits", ICCAD 2022).
//!
//! Printed resistors drift over their lifetime — the effective conductance
//! decays as the printed film degrades. An [`AgingModel`] maps an age `t`
//! (in arbitrary lifetime units) to a multiplicative decay factor applied
//! to the *printable* crossbar conductances (the nonlinear circuits age
//! much more slowly and are left nominal, as in the companion work).
//!
//! Two entry points:
//!
//! * [`lifetime_accuracy`] — evaluate a trained pNN across its lifetime,
//!   Monte-Carlo style (aging × printing variation);
//! * [`TrainConfig::aging`](crate::TrainConfig) — train against ages drawn
//!   uniformly over the target lifetime, the aging-aware objective.
//!
//! # Examples
//!
//! ```
//! use pnc_core::aging::AgingModel;
//!
//! let model = AgingModel::Exponential { rate: 0.1 };
//! assert_eq!(model.decay(0.0), 1.0);
//! assert!(model.decay(5.0) < model.decay(1.0));
//! ```

use crate::eval::McStats;
use crate::network::Pnn;
use crate::train::LabeledData;
use crate::variation::{NoiseSample, VariationModel};
use crate::PnnError;
use pnc_linalg::stats;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// A lifetime-decay law for printed conductances.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
#[non_exhaustive]
pub enum AgingModel {
    /// `g(t) = g₀ · exp(−rate · t)` — the stretched-film decay used by the
    /// companion work (with stretch exponent 1).
    Exponential {
        /// Decay rate per lifetime unit.
        rate: f64,
    },
    /// `g(t) = g₀ · max(1 − rate·t, floor)` — a linear ramp with a floor.
    Linear {
        /// Decay rate per lifetime unit.
        rate: f64,
        /// Lowest decay factor (models the saturated degraded film).
        floor: f64,
    },
}

impl AgingModel {
    /// The multiplicative conductance factor at age `t >= 0`.
    pub fn decay(&self, t: f64) -> f64 {
        match *self {
            AgingModel::Exponential { rate } => (-rate * t.max(0.0)).exp(),
            AgingModel::Linear { rate, floor } => (1.0 - rate * t.max(0.0)).max(floor),
        }
    }
}

/// Lifetime parameters of aging-aware training: ages are drawn uniformly
/// from `[0, lifetime]` for every Monte-Carlo noise sample.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AgingAwareness {
    /// The decay law.
    pub model: AgingModel,
    /// The target lifetime to train over.
    pub lifetime: f64,
}

impl AgingAwareness {
    /// Draws an age and returns its decay factor.
    pub(crate) fn sample_decay(&self, rng: &mut StdRng) -> f64 {
        let t = rng.gen_range(0.0..=self.lifetime.max(0.0));
        self.model.decay(t)
    }
}

/// Applies an aging decay to the crossbar factors of a noise sample
/// (the nonlinear circuits are left untouched).
///
/// Aging is stochastic per device: each printed resistor follows its own
/// degradation trajectory, modeled as `decay^u` with `u ~ U[0, 2]` (mean
/// exponent 1, so the *average* film follows the [`AgingModel`] law). A
/// uniform decay would cancel exactly in the normalized weighted sum of
/// Eq. 1 — it is precisely the device-to-device aging mismatch that
/// degrades accuracy, as the companion work observes.
pub(crate) fn age_noise(sample: &mut NoiseSample, decay: f64, rng: &mut StdRng) {
    for m in &mut sample.theta_factors {
        for v in m.as_mut_slice() {
            *v *= decay.powf(rng.gen_range(0.0..2.0));
        }
    }
}

/// One point of a lifetime sweep.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AgePoint {
    /// The age the network was evaluated at.
    pub age: f64,
    /// The conductance decay factor at that age.
    pub decay: f64,
    /// Monte-Carlo accuracy statistics (aging × printing variation).
    pub stats: McStats,
}

/// Evaluates a trained pNN over its lifetime: at each age, the crossbar
/// conductances decay by the aging model while printing variation is drawn
/// per Monte-Carlo sample as usual.
///
/// # Errors
///
/// Returns [`PnnError::Data`] for empty inputs and propagates evaluation
/// failures.
///
/// # Examples
///
/// See the `aging` experiment binary in `pnc-bench`.
pub fn lifetime_accuracy(
    pnn: &Pnn,
    data: LabeledData<'_>,
    aging: &AgingModel,
    variation: &VariationModel,
    ages: &[f64],
    n_test: usize,
    seed: u64,
) -> Result<Vec<AgePoint>, PnnError> {
    if ages.is_empty() || n_test == 0 {
        return Err(PnnError::Data {
            detail: "need at least one age and one Monte-Carlo sample".into(),
        });
    }
    let shapes = pnn.theta_shapes();
    let mut out = Vec::with_capacity(ages.len());
    for &age in ages {
        let decay = aging.decay(age);
        let mut rng = StdRng::seed_from_u64(seed);
        let mut accuracies = Vec::with_capacity(n_test);
        for _ in 0..n_test {
            let mut noise = NoiseSample::draw(variation, &mut rng, &shapes, pnn.num_circuits());
            age_noise(&mut noise, decay, &mut rng);
            accuracies.push(crate::eval::accuracy(pnn, data, Some(&noise))?);
        }
        out.push(AgePoint {
            age,
            decay,
            stats: McStats {
                mean: stats::mean(&accuracies),
                std: stats::std(&accuracies),
                accuracies,
            },
        });
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::PnnConfig;
    use crate::train::{TrainConfig, Trainer};
    use pnc_linalg::Matrix;
    use pnc_surrogate::{build_dataset, train_surrogate, DatasetConfig};
    use std::sync::Arc;

    #[test]
    fn decay_laws() {
        let e = AgingModel::Exponential { rate: 0.5 };
        assert_eq!(e.decay(0.0), 1.0);
        assert!((e.decay(2.0) - (-1.0f64).exp()).abs() < 1e-12);
        assert_eq!(e.decay(-3.0), 1.0, "negative ages clamp to fresh");

        let l = AgingModel::Linear {
            rate: 0.2,
            floor: 0.3,
        };
        assert_eq!(l.decay(0.0), 1.0);
        assert!((l.decay(2.0) - 0.6).abs() < 1e-12);
        assert_eq!(l.decay(100.0), 0.3, "floor saturates");
    }

    #[test]
    fn age_noise_scales_only_theta_with_device_mismatch() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut sample = NoiseSample::identity(&[(20, 20)], 2);
        age_noise(&mut sample, 0.5, &mut rng);
        let values: Vec<f64> = sample.theta_factors[0].as_slice().to_vec();
        // Per-device factors lie in [decay², 1] and are not all equal.
        assert!(values
            .iter()
            .all(|&v| (0.25 - 1e-12..=1.0 + 1e-12).contains(&v)));
        let spread = values.iter().cloned().fold(f64::NEG_INFINITY, f64::max)
            - values.iter().cloned().fold(f64::INFINITY, f64::min);
        assert!(spread > 0.1, "aging must be device-to-device stochastic");
        // Mean exponent is 1: the average factor is near exp(mean ln)·spread
        // effects; just require it to be well below fresh and above decay².
        let mean = values.iter().sum::<f64>() / values.len() as f64;
        assert!((0.3..0.9).contains(&mean), "mean factor {mean}");
        assert_eq!(sample.omega_factors, vec![[1.0; 7]; 2]);

        // Fresh devices are untouched regardless of randomness.
        let mut fresh = NoiseSample::identity(&[(4, 4)], 1);
        age_noise(&mut fresh, 1.0, &mut rng);
        assert!(fresh.theta_factors[0].as_slice().iter().all(|&v| v == 1.0));
    }

    fn quick_pnn() -> (Pnn, Matrix, Vec<usize>) {
        let data = build_dataset(&DatasetConfig {
            samples: 120,
            sweep_points: 31,
        })
        .unwrap();
        let surrogate = Arc::new(
            train_surrogate(
                &data,
                &pnc_surrogate::TrainConfig {
                    layer_sizes: vec![10, 8, 4],
                    max_epochs: 300,
                    patience: 100,
                    ..pnc_surrogate::TrainConfig::default()
                },
            )
            .unwrap()
            .0,
        );
        let mut pnn = Pnn::new(PnnConfig::for_dataset(2, 2), surrogate).unwrap();
        // Simple separable blobs.
        let n = 40;
        let x = Matrix::from_fn(n, 2, |i, j| {
            let base = if i % 2 == 0 { 0.25 } else { 0.75 };
            (base + (((i * 7 + j * 3) % 11) as f64 / 11.0 - 0.5) * 0.2).clamp(0.0, 1.0)
        });
        let y: Vec<usize> = (0..n).map(|i| i % 2).collect();
        let d = LabeledData::new(&x, &y).unwrap();
        Trainer::new(TrainConfig {
            max_epochs: 60,
            patience: 60,
            n_train_mc: 3,
            n_val_mc: 2,
            ..TrainConfig::default()
        })
        .train(&mut pnn, d, d)
        .unwrap();
        (pnn, x, y)
    }

    #[test]
    fn lifetime_sweep_reports_every_age() {
        let (pnn, x, y) = quick_pnn();
        let d = LabeledData::new(&x, &y).unwrap();
        let points = lifetime_accuracy(
            &pnn,
            d,
            &AgingModel::Exponential { rate: 0.3 },
            &VariationModel::Uniform { epsilon: 0.05 },
            &[0.0, 1.0, 3.0],
            10,
            0,
        )
        .unwrap();
        assert_eq!(points.len(), 3);
        assert_eq!(points[0].decay, 1.0);
        assert!(points[2].decay < points[1].decay);
        // Fresh accuracy should be at least as good as heavily aged on
        // average (uniform decay of all conductances cancels in Eq. 1 only
        // partially: the g_d leg shifts the operating point).
        assert!(points[0].stats.mean >= 0.5);
    }

    #[test]
    fn lifetime_rejects_empty_inputs() {
        let (pnn, x, y) = quick_pnn();
        let d = LabeledData::new(&x, &y).unwrap();
        assert!(lifetime_accuracy(
            &pnn,
            d,
            &AgingModel::Exponential { rate: 0.1 },
            &VariationModel::None,
            &[],
            10,
            0
        )
        .is_err());
    }

    #[test]
    fn aging_aware_training_runs() {
        let (_, x, y) = quick_pnn();
        let d = LabeledData::new(&x, &y).unwrap();
        let data = build_dataset(&DatasetConfig {
            samples: 100,
            sweep_points: 31,
        })
        .unwrap();
        let surrogate = Arc::new(
            train_surrogate(
                &data,
                &pnc_surrogate::TrainConfig {
                    layer_sizes: vec![10, 8, 4],
                    max_epochs: 200,
                    patience: 80,
                    ..pnc_surrogate::TrainConfig::default()
                },
            )
            .unwrap()
            .0,
        );
        let mut pnn = Pnn::new(PnnConfig::for_dataset(2, 2), surrogate).unwrap();
        let report = Trainer::new(TrainConfig {
            variation: VariationModel::Uniform { epsilon: 0.05 },
            aging: Some(AgingAwareness {
                model: AgingModel::Exponential { rate: 0.2 },
                lifetime: 5.0,
            }),
            max_epochs: 40,
            patience: 40,
            n_train_mc: 3,
            n_val_mc: 2,
            ..TrainConfig::default()
        })
        .train(&mut pnn, d, d)
        .unwrap();
        assert!(report.best_val_loss.is_finite());
    }
}
