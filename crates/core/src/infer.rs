//! Compiled allocation-free inference plans for trained pNNs.
//!
//! [`Pnn::infer`] walks the full autodiff graph on every call: it re-runs
//! the 13-layer surrogate MLP per circuit pair, re-projects θ, and rebuilds
//! every node of the forward tape — all of which is input-independent for a
//! trained network. [`InferencePlan::compile`] hoists that work to
//! construction time: the printable weights `W⁺`/`W⁻` of Eq. 1 and the η
//! curve parameters of Eqs. 2–3 are extracted **once** (through the same
//! graph machinery the training forward uses, so the f64 plan is
//! bit-identical to [`Pnn::infer`]), and the per-call work collapses to a
//! fixed sequence of microkernel GEMMs and tanh curve evaluations over
//! preallocated buffers — zero allocations and zero graph-walking per
//! forward, for single samples and micro-batches alike.
//!
//! Three precisions share one compiled structure (see DESIGN.md §12 for the
//! full contract):
//!
//! * [`InferencePlan`] — f64, **bit-identical** to the graph path at every
//!   batch size and thread count.
//! * [`InferencePlanF32`] — f32 weights, activations, and curve evaluation;
//!   bounded-error parity (classification agreement is property-tested
//!   across the 13-dataset suite).
//! * [`InferencePlanQuant`] — fixed-point Q1.14 `i16` weights and
//!   activations with `i32` accumulators ([`pnc_linalg::simd::gemm_i16_i32`]);
//!   curve nonlinearities evaluate in f32 between crossbars. The Q1.14
//!   scheme is overflow-safe by construction: normalized crossbar columns
//!   sum to 1, so each accumulator stays below `2·2^15·2^14 < i32::MAX`.
//!
//! [`CompiledPnn`] wraps the three behind one API, selected by
//! [`PlanPrecision`] — programmatically or via the `PNC_INFER_PRECISION`
//! environment variable.
//!
//! Plans capture the *nominal* network: printing variation (a training and
//! robustness-evaluation concern) stays on the graph path.
//!
//! # Examples
//!
//! ```no_run
//! # use pnc_core::{InferencePlan, Pnn, PnnConfig};
//! # use pnc_linalg::Matrix;
//! # use std::sync::Arc;
//! # fn demo(pnn: &Pnn, x: &Matrix) -> Result<(), pnc_core::PnnError> {
//! let mut plan = InferencePlan::compile(pnn)?;
//! let scores = plan.infer(x)?; // bit-identical to pnn.infer(x, None)
//! # let _ = scores;
//! # Ok(())
//! # }
//! ```

use crate::layer::project_printable;
use crate::network::Pnn;
use crate::PnnError;
use pnc_autodiff::Graph;
use pnc_linalg::simd::{gemm_f32, gemm_f64, gemm_i16_i32};
use pnc_linalg::{Matrix, ParallelConfig};
use pnc_obs::Counter;

// Observability: compiled-inference traffic. Catalogued in docs/METRICS.md.
static OBS_PLANS_COMPILED: Counter = Counter::new("infer.plans_compiled");
static OBS_SAMPLES: Counter = Counter::new("infer.samples");
static OBS_BATCHES: Counter = Counter::new("infer.batches");

fn obs_register() {
    static ONCE: std::sync::Once = std::sync::Once::new();
    ONCE.call_once(|| {
        OBS_PLANS_COMPILED.register();
        OBS_SAMPLES.register();
        OBS_BATCHES.register();
    });
}

/// Environment variable selecting the default plan precision for
/// [`PlanPrecision::from_env`] / [`CompiledPnn::compile_from_env`]:
/// `f64` (default), `f32`, or `q16` (aliases `i16`, `quant`).
pub const PRECISION_ENV_VAR: &str = "PNC_INFER_PRECISION";

/// Default micro-batch capacity of a compiled plan: forward buffers are
/// sized for this many rows; larger batches stream through in chunks.
pub const DEFAULT_CAPACITY: usize = 64;

/// Q1.14 fixed-point scale of [`InferencePlanQuant`] (14 fractional bits).
const Q14_SCALE: f32 = 16384.0;
/// Dequantization factor for a product of two Q1.14 values (Q2.28).
const Q28_DEQ: f32 = 1.0 / (16384.0 * 16384.0);
/// Largest magnitude representable in Q1.14 without `i16` overflow.
const Q14_CLAMP: f32 = 1.9999;

fn quantize_q14(x: f32) -> i16 {
    (x.clamp(-Q14_CLAMP, Q14_CLAMP) * Q14_SCALE).round() as i16
}

/// Numeric precision of a compiled inference plan.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlanPrecision {
    /// Full f64 — bit-identical to the autodiff-graph forward.
    F64,
    /// Single precision — bounded-error parity with the f64 plan.
    F32,
    /// Fixed-point Q1.14 `i16` crossbars with `i32` accumulation.
    QuantI16,
}

impl PlanPrecision {
    /// Parses a precision name: `f64`, `f32`, or `q16` (aliases `i16`,
    /// `quant`), case-insensitively and ignoring surrounding whitespace.
    ///
    /// # Errors
    ///
    /// Returns [`PnnError::Config`] for any other spelling. There is no
    /// silent fallback: a typo in a deployment config must fail loudly, not
    /// quietly serve a different numeric contract.
    pub fn parse(raw: &str) -> Result<Self, PnnError> {
        match raw.trim().to_ascii_lowercase().as_str() {
            "f64" => Ok(PlanPrecision::F64),
            "f32" => Ok(PlanPrecision::F32),
            "q16" | "i16" | "quant" => Ok(PlanPrecision::QuantI16),
            other => Err(PnnError::Config {
                detail: format!(
                    "unrecognized plan precision {other:?} (expected f64, f32, or q16/i16/quant)"
                ),
            }),
        }
    }

    /// Reads the precision from the `PNC_INFER_PRECISION` environment
    /// variable. Unset means [`Self::F64`]; a set but unrecognized value is
    /// a hard [`PnnError::Config`] error surfaced to the caller.
    ///
    /// # Errors
    ///
    /// Returns [`PnnError::Config`] when the variable is set to anything
    /// other than `f64`, `f32`, or `q16`/`i16`/`quant`.
    pub fn from_env() -> Result<Self, PnnError> {
        match std::env::var(PRECISION_ENV_VAR) {
            Ok(raw) => Self::parse(&raw).map_err(|_| PnnError::Config {
                detail: format!(
                    "invalid {PRECISION_ENV_VAR}={raw:?} (expected f64, f32, or q16/i16/quant)"
                ),
            }),
            Err(_) => Ok(PlanPrecision::F64),
        }
    }

    /// Canonical lower-case name (`f64`, `f32`, `q16`), accepted back by
    /// [`Self::parse`].
    pub fn name(&self) -> &'static str {
        match self {
            PlanPrecision::F64 => "f64",
            PlanPrecision::F32 => "f32",
            PlanPrecision::QuantI16 => "q16",
        }
    }
}

/// One crossbar layer, flattened for execution: printable weights split by
/// sign, η curve parameters per circuit pair, and the precomputed inverter
/// response to the 1 V bias leg. `etas.len()` is 1 for the single-GEMM path
/// (shared or per-layer circuit granularity) and `out_dim` for the
/// per-neuron bespoke path — exactly the dispatch [`crate::PLayer::forward`]
/// uses.
#[derive(Debug, Clone)]
pub(crate) struct ExtractedLayer {
    pub(crate) in_dim: usize,
    pub(crate) out_dim: usize,
    /// `(in_dim + 2) × out_dim` row-major: normalized weights of θ ≥ 0
    /// entries, zero elsewhere.
    pub(crate) w_pos: Vec<f64>,
    /// Same shape: normalized weights of θ < 0 entries.
    pub(crate) w_neg: Vec<f64>,
    /// `(activation, negative-weight)` η quadruples per circuit pair.
    pub(crate) etas: Vec<([f64; 4], [f64; 4])>,
    /// `inv(1 V)` per pair — the negative-weight path of the bias leg.
    pub(crate) inv_ones: Vec<f64>,
    pub(crate) apply_act: bool,
}

impl ExtractedLayer {
    fn ext_dim(&self) -> usize {
        self.in_dim + 2
    }
}

/// Replicates the inverter transfer curve of [`crate::apply_inv`] with the
/// graph's exact scalar operation sequence.
#[inline]
fn inv_curve(e: &[f64; 4], x: f64) -> f64 {
    e[0] - ((x - e[2]) * e[3]).tanh() * e[1]
}

/// Replicates the ptanh activation of [`crate::apply_ptanh`] with the
/// graph's exact scalar operation sequence.
#[inline]
fn ptanh_curve(e: &[f64; 4], x: f64) -> f64 {
    ((x - e[2]) * e[3]).tanh() * e[1] + e[0]
}

#[inline]
fn inv_curve_f32(e: &[f32; 4], x: f32) -> f32 {
    e[0] - ((x - e[2]) * e[3]).tanh() * e[1]
}

#[inline]
fn ptanh_curve_f32(e: &[f32; 4], x: f32) -> f32 {
    ((x - e[2]) * e[3]).tanh() * e[1] + e[0]
}

/// Extracts the flattened layers of a trained network.
///
/// η values are read back from a scratch autodiff graph running the same
/// [`crate::NonlinearCircuit::eta_graph`] chain the training forward builds
/// (the plain `eta()` path differs from the graph in the last ulps), and
/// the weight arithmetic mirrors [`crate::PLayer::forward`] operation for
/// operation — both are required for the f64 plan's bit-identity contract.
pub(crate) fn extract_layers(pnn: &Pnn) -> Result<Vec<ExtractedLayer>, PnnError> {
    // η per circuit pair, through the graph machinery.
    let mut g = Graph::new();
    let mut pair_etas = Vec::with_capacity(pnn.circuits().len());
    for (act, inv) in pnn.circuits() {
        let act_w = act.register(&mut g);
        let inv_w = inv.register(&mut g);
        let eta_act = act.eta_graph(&mut g, act_w, pnn.surrogate(), None)?;
        let eta_inv = inv.eta_graph(&mut g, inv_w, pnn.surrogate(), None)?;
        let read = |g: &Graph, v| {
            let m = g.value(v);
            [m[(0, 0)], m[(0, 1)], m[(0, 2)], m[(0, 3)]]
        };
        pair_etas.push((read(&g, eta_act), read(&g, eta_inv)));
    }

    let config = pnn.config();
    let last = pnn.num_layers() - 1;
    let mut layers = Vec::with_capacity(pnn.num_layers());
    for (i, layer) in pnn.layers().iter().enumerate() {
        let (rows, out_dim) = layer.theta_shape();
        let in_dim = layer.in_dim();
        let theta = layer.theta.value();

        // Mirror the graph ops of `PLayer::forward` (nominal, no noise):
        // project (STE value) → abs → ascending-row column sums → divide →
        // multiply by the 1.0/0.0 sign masks.
        let projected: Vec<f64> = theta
            .as_slice()
            .iter()
            .map(|&t| project_printable(t, config.g_min, config.g_max))
            .collect();
        let mut total = vec![0.0_f64; out_dim];
        for r in 0..rows {
            for (j, tj) in total.iter_mut().enumerate() {
                *tj += projected[r * out_dim + j].abs();
            }
        }
        let mut w_pos = vec![0.0_f64; rows * out_dim];
        let mut w_neg = vec![0.0_f64; rows * out_dim];
        for r in 0..rows {
            for j in 0..out_dim {
                let p = projected[r * out_dim + j];
                let weight = p.abs() / total[j];
                let mask_pos = if p >= 0.0 { 1.0 } else { 0.0 };
                let mask_neg = if p < 0.0 { 1.0 } else { 0.0 };
                w_pos[r * out_dim + j] = weight * mask_pos;
                w_neg[r * out_dim + j] = weight * mask_neg;
            }
        }

        let etas: Vec<([f64; 4], [f64; 4])> = pair_etas[pnn.pair_range(i)].to_vec();
        let inv_ones: Vec<f64> = etas.iter().map(|(_, inv)| inv_curve(inv, 1.0)).collect();
        layers.push(ExtractedLayer {
            in_dim,
            out_dim,
            w_pos,
            w_neg,
            etas,
            inv_ones,
            apply_act: i < last || config.activation_on_output,
        });
    }
    Ok(layers)
}

/// Preallocated forward buffers of an f64 plan, sized at compile time for
/// `capacity` rows. `h` ping-pongs activations between layers; `x_ext` and
/// `x_inv` hold the `[x, 1, 0]` / `[inv(x), inv(1), 0]` extended inputs of
/// Eq. 1; `z_pos`/`z_neg` hold the two crossbar GEMM results.
#[derive(Debug, Clone)]
struct Scratch {
    h: Vec<f64>,
    x_ext: Vec<f64>,
    x_inv: Vec<f64>,
    z_pos: Vec<f64>,
    z_neg: Vec<f64>,
}

impl Scratch {
    fn new(layers: &[ExtractedLayer], capacity: usize) -> Scratch {
        let max_ext = layers
            .iter()
            .map(ExtractedLayer::ext_dim)
            .max()
            .unwrap_or(2);
        let max_out = layers.iter().map(|l| l.out_dim).max().unwrap_or(1);
        let max_width = layers
            .iter()
            .map(|l| l.in_dim.max(l.out_dim))
            .max()
            .unwrap_or(1);
        Scratch {
            h: vec![0.0; capacity * max_width],
            x_ext: vec![0.0; capacity * max_ext],
            x_inv: vec![0.0; capacity * max_ext],
            z_pos: vec![0.0; capacity * max_out],
            z_neg: vec![0.0; capacity * max_out],
        }
    }
}

/// Runs all layers over the `b` rows currently in `s.h` (row-major,
/// `layers[0].in_dim` wide); leaves the `b × out` output in `s.h`.
fn run_layers_f64(layers: &[ExtractedLayer], s: &mut Scratch, b: usize) {
    for layer in layers {
        let (input, ext, out) = (layer.in_dim, layer.ext_dim(), layer.out_dim);
        // Extended inputs [x, 1, 0] (and the copy frees `h` for the output).
        for i in 0..b {
            let row = i * ext;
            s.x_ext[row..row + input].copy_from_slice(&s.h[i * input..(i + 1) * input]);
            s.x_ext[row + input] = 1.0;
            s.x_ext[row + input + 1] = 0.0;
        }

        if layer.etas.len() == 1 {
            // Single circuit pair: the dual-GEMM path of Eq. 1 + Eq. 3.
            let (eta_act, eta_inv) = &layer.etas[0];
            for i in 0..b {
                let src = &s.x_ext[i * ext..i * ext + input];
                let dst = &mut s.x_inv[i * ext..(i + 1) * ext];
                for (d, &x) in dst[..input].iter_mut().zip(src) {
                    *d = inv_curve(eta_inv, x);
                }
                dst[input] = layer.inv_ones[0];
                dst[input + 1] = 0.0;
            }
            gemm_f64(
                b,
                ext,
                out,
                &s.x_ext[..b * ext],
                &layer.w_pos,
                &mut s.z_pos[..b * out],
            );
            gemm_f64(
                b,
                ext,
                out,
                &s.x_inv[..b * ext],
                &layer.w_neg,
                &mut s.z_neg[..b * out],
            );
            for idx in 0..b * out {
                let z = s.z_pos[idx] + s.z_neg[idx];
                s.h[idx] = if layer.apply_act {
                    ptanh_curve(eta_act, z)
                } else {
                    z
                };
            }
        } else {
            // Per-neuron bespoke circuits: column j routes through its own
            // inverter and activation design (dot products, k ascending).
            for (j, (eta_act, eta_inv)) in layer.etas.iter().enumerate() {
                for i in 0..b {
                    let row = i * ext;
                    for k in 0..input {
                        s.x_inv[row + k] = inv_curve(eta_inv, s.x_ext[row + k]);
                    }
                    s.x_inv[row + input] = layer.inv_ones[j];
                    s.x_inv[row + input + 1] = 0.0;
                }
                for i in 0..b {
                    let row = i * ext;
                    let mut z_pos = 0.0;
                    for k in 0..ext {
                        z_pos += s.x_ext[row + k] * layer.w_pos[k * out + j];
                    }
                    let mut z_neg = 0.0;
                    for k in 0..ext {
                        z_neg += s.x_inv[row + k] * layer.w_neg[k * out + j];
                    }
                    let z = z_pos + z_neg;
                    s.h[i * out + j] = if layer.apply_act {
                        ptanh_curve(eta_act, z)
                    } else {
                        z
                    };
                }
            }
        }
    }
}

fn argmax_row(row: &[f64]) -> usize {
    row.iter()
        .enumerate()
        .max_by(|a, b| a.1.total_cmp(b.1))
        .map(|(j, _)| j)
        .unwrap_or(0)
}

fn check_input(x: &Matrix, in_dim: usize) -> Result<(), PnnError> {
    if x.cols() != in_dim {
        return Err(PnnError::Data {
            detail: format!("plan expects {} input features, got {}", in_dim, x.cols()),
        });
    }
    Ok(())
}

fn check_output(out: &Matrix, rows: usize, out_dim: usize) -> Result<(), PnnError> {
    if out.shape() != (rows, out_dim) {
        return Err(PnnError::Data {
            detail: format!(
                "output buffer is {:?}, need {:?}",
                out.shape(),
                (rows, out_dim)
            ),
        });
    }
    Ok(())
}

/// A trained pNN compiled to a flat, allocation-free f64 forward pass.
///
/// Outputs are **bit-identical** to [`Pnn::infer`] with nominal printing
/// (`noise = None`) at every batch size, chunking, and — via
/// [`Self::infer_parallel`] — thread count; the property tests in
/// `tests/infer_plan.rs` assert exact equality across the 13-dataset suite.
/// After [`compile`](Self::compile), the serial entry points perform no
/// heap allocation beyond the caller-provided output.
#[derive(Debug, Clone)]
pub struct InferencePlan {
    layers: Vec<ExtractedLayer>,
    in_dim: usize,
    out_dim: usize,
    capacity: usize,
    scratch: Scratch,
}

impl InferencePlan {
    /// Compiles a trained network with the [`DEFAULT_CAPACITY`] micro-batch
    /// size.
    ///
    /// # Errors
    ///
    /// Propagates surrogate/graph failures from η extraction.
    pub fn compile(pnn: &Pnn) -> Result<InferencePlan, PnnError> {
        Self::compile_with_capacity(pnn, DEFAULT_CAPACITY)
    }

    /// Compiles with an explicit micro-batch capacity (clamped to ≥ 1).
    /// Larger batches stream through in `capacity`-row chunks — chunking
    /// never changes results because the forward has no cross-row coupling.
    ///
    /// # Errors
    ///
    /// Propagates surrogate/graph failures from η extraction.
    pub fn compile_with_capacity(pnn: &Pnn, capacity: usize) -> Result<InferencePlan, PnnError> {
        obs_register();
        let layers = extract_layers(pnn)?;
        let capacity = capacity.max(1);
        let scratch = Scratch::new(&layers, capacity);
        OBS_PLANS_COMPILED.increment();
        Ok(InferencePlan {
            in_dim: pnn.config().layer_sizes[0],
            out_dim: layers.last().map(|l| l.out_dim).unwrap_or(0),
            layers,
            capacity,
            scratch,
        })
    }

    /// Compiles a plan from an exported [`crate::PnnArtifact`] — no live
    /// network or surrogate needed. The artifact carries the exact f64
    /// numbers [`Self::compile`] would extract, so the resulting plan is
    /// **bit-identical** to one compiled from the originating network.
    ///
    /// # Errors
    ///
    /// Returns [`PnnError::Artifact`] if the artifact fails validation
    /// (non-finite values, inconsistent shapes).
    pub fn compile_artifact(artifact: &crate::PnnArtifact) -> Result<InferencePlan, PnnError> {
        Self::compile_artifact_with_capacity(artifact, DEFAULT_CAPACITY)
    }

    /// [`Self::compile_artifact`] with an explicit micro-batch capacity
    /// (clamped to ≥ 1).
    ///
    /// # Errors
    ///
    /// Returns [`PnnError::Artifact`] if the artifact fails validation.
    pub fn compile_artifact_with_capacity(
        artifact: &crate::PnnArtifact,
        capacity: usize,
    ) -> Result<InferencePlan, PnnError> {
        obs_register();
        artifact.validate()?;
        let layers = artifact.extracted_layers();
        let capacity = capacity.max(1);
        let scratch = Scratch::new(&layers, capacity);
        OBS_PLANS_COMPILED.increment();
        Ok(InferencePlan {
            in_dim: artifact.in_dim,
            out_dim: artifact.out_dim,
            layers,
            capacity,
            scratch,
        })
    }

    /// Input width the plan was compiled for.
    pub fn in_dim(&self) -> usize {
        self.in_dim
    }

    /// Output width (number of classes).
    pub fn out_dim(&self) -> usize {
        self.out_dim
    }

    /// Micro-batch capacity of the preallocated buffers.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of compiled crossbar layers.
    pub fn num_layers(&self) -> usize {
        self.layers.len()
    }

    /// Output voltages for a batch, bit-identical to
    /// `pnn.infer(x, None)`. Allocates only the returned matrix; use
    /// [`Self::infer_into`] for the fully allocation-free path.
    ///
    /// # Errors
    ///
    /// Returns [`PnnError::Data`] if `x` does not match the input width.
    pub fn infer(&mut self, x: &Matrix) -> Result<Matrix, PnnError> {
        let mut out = Matrix::zeros(x.rows(), self.out_dim);
        self.infer_into(x, &mut out)?;
        Ok(out)
    }

    /// Writes output voltages for a batch into `out` (`x.rows() ×
    /// out_dim`), allocation-free.
    ///
    /// # Errors
    ///
    /// Returns [`PnnError::Data`] on input-width or output-shape mismatch.
    pub fn infer_into(&mut self, x: &Matrix, out: &mut Matrix) -> Result<(), PnnError> {
        check_input(x, self.in_dim)?;
        check_output(out, x.rows(), self.out_dim)?;
        let (rows, in_dim, out_dim) = (x.rows(), self.in_dim, self.out_dim);
        let mut start = 0;
        while start < rows {
            let end = (start + self.capacity).min(rows);
            let b = end - start;
            self.scratch.h[..b * in_dim]
                .copy_from_slice(&x.as_slice()[start * in_dim..end * in_dim]);
            run_layers_f64(&self.layers, &mut self.scratch, b);
            out.as_mut_slice()[start * out_dim..end * out_dim]
                .copy_from_slice(&self.scratch.h[..b * out_dim]);
            start = end;
        }
        OBS_SAMPLES.add(rows as u64);
        OBS_BATCHES.increment();
        Ok(())
    }

    /// Argmax class predictions, matching [`Pnn::predict`] bit for bit.
    ///
    /// # Errors
    ///
    /// As for [`Self::infer`].
    pub fn predict(&mut self, x: &Matrix) -> Result<Vec<usize>, PnnError> {
        let scores = self.infer(x)?;
        Ok((0..scores.rows())
            .map(|i| argmax_row(scores.row(i)))
            .collect())
    }

    /// Parallel batched inference: rows are split into `capacity`-sized
    /// bands mapped over [`ParallelConfig`]'s deterministic ordered pool.
    /// Each band runs on its own scratch (one allocation per band — the
    /// price of `&self` sharing); results are bit-identical to
    /// [`Self::infer`] at every thread count because the forward has no
    /// cross-row coupling.
    ///
    /// # Errors
    ///
    /// Returns [`PnnError::Data`] if `x` does not match the input width.
    pub fn infer_parallel(&self, x: &Matrix, par: &ParallelConfig) -> Result<Matrix, PnnError> {
        check_input(x, self.in_dim)?;
        let (rows, in_dim, out_dim) = (x.rows(), self.in_dim, self.out_dim);
        let bands = pnc_linalg::kernels::row_bands(rows, self.capacity);
        let results = par.ordered_par_map(&bands, |&(s, e)| {
            let b = e - s;
            let mut scratch = Scratch::new(&self.layers, b);
            scratch.h[..b * in_dim].copy_from_slice(&x.as_slice()[s * in_dim..e * in_dim]);
            run_layers_f64(&self.layers, &mut scratch, b);
            scratch.h[..b * out_dim].to_vec()
        });
        let mut out = Matrix::zeros(rows, out_dim);
        for (&(s, e), band) in bands.iter().zip(&results) {
            out.as_mut_slice()[s * out_dim..e * out_dim].copy_from_slice(band);
        }
        OBS_SAMPLES.add(rows as u64);
        OBS_BATCHES.increment();
        Ok(out)
    }
}

/// f32 sibling of [`ExtractedLayer`].
#[derive(Debug, Clone)]
struct LayerF32 {
    in_dim: usize,
    out_dim: usize,
    w_pos: Vec<f32>,
    w_neg: Vec<f32>,
    etas: Vec<([f32; 4], [f32; 4])>,
    inv_ones: Vec<f32>,
    apply_act: bool,
}

impl LayerF32 {
    fn ext_dim(&self) -> usize {
        self.in_dim + 2
    }

    fn from_f64(l: &ExtractedLayer) -> LayerF32 {
        let etas: Vec<([f32; 4], [f32; 4])> = l
            .etas
            .iter()
            .map(|(a, i)| (a.map(|v| v as f32), i.map(|v| v as f32)))
            .collect();
        // inv(1 V) recomputed in f32 so the bias leg sees the same
        // arithmetic as the data legs.
        let inv_ones = etas.iter().map(|(_, i)| inv_curve_f32(i, 1.0)).collect();
        LayerF32 {
            in_dim: l.in_dim,
            out_dim: l.out_dim,
            w_pos: l.w_pos.iter().map(|&w| w as f32).collect(),
            w_neg: l.w_neg.iter().map(|&w| w as f32).collect(),
            etas,
            inv_ones,
            apply_act: l.apply_act,
        }
    }
}

#[derive(Debug, Clone)]
struct ScratchF32 {
    h: Vec<f32>,
    x_ext: Vec<f32>,
    x_inv: Vec<f32>,
    z_pos: Vec<f32>,
    z_neg: Vec<f32>,
}

impl ScratchF32 {
    fn new(layers: &[LayerF32], capacity: usize) -> ScratchF32 {
        let max_ext = layers.iter().map(LayerF32::ext_dim).max().unwrap_or(2);
        let max_out = layers.iter().map(|l| l.out_dim).max().unwrap_or(1);
        let max_width = layers
            .iter()
            .map(|l| l.in_dim.max(l.out_dim))
            .max()
            .unwrap_or(1);
        ScratchF32 {
            h: vec![0.0; capacity * max_width],
            x_ext: vec![0.0; capacity * max_ext],
            x_inv: vec![0.0; capacity * max_ext],
            z_pos: vec![0.0; capacity * max_out],
            z_neg: vec![0.0; capacity * max_out],
        }
    }
}

fn run_layers_f32(layers: &[LayerF32], s: &mut ScratchF32, b: usize) {
    for layer in layers {
        let (input, ext, out) = (layer.in_dim, layer.ext_dim(), layer.out_dim);
        for i in 0..b {
            let src_start = i * input;
            let dst = i * ext;
            for k in 0..input {
                s.x_ext[dst + k] = s.h[src_start + k];
            }
            s.x_ext[dst + input] = 1.0;
            s.x_ext[dst + input + 1] = 0.0;
        }
        if layer.etas.len() == 1 {
            let (eta_act, eta_inv) = &layer.etas[0];
            for i in 0..b {
                let row = i * ext;
                for k in 0..input {
                    s.x_inv[row + k] = inv_curve_f32(eta_inv, s.x_ext[row + k]);
                }
                s.x_inv[row + input] = layer.inv_ones[0];
                s.x_inv[row + input + 1] = 0.0;
            }
            gemm_f32(
                b,
                ext,
                out,
                &s.x_ext[..b * ext],
                &layer.w_pos,
                &mut s.z_pos[..b * out],
            );
            gemm_f32(
                b,
                ext,
                out,
                &s.x_inv[..b * ext],
                &layer.w_neg,
                &mut s.z_neg[..b * out],
            );
            for idx in 0..b * out {
                let z = s.z_pos[idx] + s.z_neg[idx];
                s.h[idx] = if layer.apply_act {
                    ptanh_curve_f32(eta_act, z)
                } else {
                    z
                };
            }
        } else {
            for (j, (eta_act, eta_inv)) in layer.etas.iter().enumerate() {
                for i in 0..b {
                    let row = i * ext;
                    for k in 0..input {
                        s.x_inv[row + k] = inv_curve_f32(eta_inv, s.x_ext[row + k]);
                    }
                    s.x_inv[row + input] = layer.inv_ones[j];
                    s.x_inv[row + input + 1] = 0.0;
                }
                for i in 0..b {
                    let row = i * ext;
                    let mut z_pos = 0.0_f32;
                    for k in 0..ext {
                        z_pos += s.x_ext[row + k] * layer.w_pos[k * out + j];
                    }
                    let mut z_neg = 0.0_f32;
                    for k in 0..ext {
                        z_neg += s.x_inv[row + k] * layer.w_neg[k * out + j];
                    }
                    let z = z_pos + z_neg;
                    s.h[i * out + j] = if layer.apply_act {
                        ptanh_curve_f32(eta_act, z)
                    } else {
                        z
                    };
                }
            }
        }
    }
}

/// Single-precision compiled plan: same op layout as [`InferencePlan`] with
/// f32 weights, buffers, and curve evaluation ([`pnc_linalg::simd::gemm_f32`]
/// microkernels). Parity with the f64 plan is bounded-error, property-tested
/// as ≥ 99.5 % classification agreement on held-out rows.
#[derive(Debug, Clone)]
pub struct InferencePlanF32 {
    layers: Vec<LayerF32>,
    in_dim: usize,
    out_dim: usize,
    capacity: usize,
    scratch: ScratchF32,
}

impl InferencePlanF32 {
    /// Compiles with the [`DEFAULT_CAPACITY`] micro-batch size.
    ///
    /// # Errors
    ///
    /// Propagates surrogate/graph failures from η extraction.
    pub fn compile(pnn: &Pnn) -> Result<InferencePlanF32, PnnError> {
        Self::compile_with_capacity(pnn, DEFAULT_CAPACITY)
    }

    /// Compiles with an explicit micro-batch capacity (clamped to ≥ 1).
    ///
    /// # Errors
    ///
    /// Propagates surrogate/graph failures from η extraction.
    pub fn compile_with_capacity(pnn: &Pnn, capacity: usize) -> Result<InferencePlanF32, PnnError> {
        obs_register();
        let layers: Vec<LayerF32> = extract_layers(pnn)?
            .iter()
            .map(LayerF32::from_f64)
            .collect();
        let capacity = capacity.max(1);
        let scratch = ScratchF32::new(&layers, capacity);
        OBS_PLANS_COMPILED.increment();
        Ok(InferencePlanF32 {
            in_dim: pnn.config().layer_sizes[0],
            out_dim: layers.last().map(|l| l.out_dim).unwrap_or(0),
            layers,
            capacity,
            scratch,
        })
    }

    /// Compiles from an exported [`crate::PnnArtifact`] (see
    /// [`InferencePlan::compile_artifact`]); the f64 → f32 narrowing is the
    /// same one [`Self::compile`] applies, so artifact- and network-compiled
    /// f32 plans are bit-identical to each other.
    ///
    /// # Errors
    ///
    /// Returns [`PnnError::Artifact`] if the artifact fails validation.
    pub fn compile_artifact(artifact: &crate::PnnArtifact) -> Result<InferencePlanF32, PnnError> {
        Self::compile_artifact_with_capacity(artifact, DEFAULT_CAPACITY)
    }

    /// [`Self::compile_artifact`] with an explicit micro-batch capacity
    /// (clamped to ≥ 1).
    ///
    /// # Errors
    ///
    /// Returns [`PnnError::Artifact`] if the artifact fails validation.
    pub fn compile_artifact_with_capacity(
        artifact: &crate::PnnArtifact,
        capacity: usize,
    ) -> Result<InferencePlanF32, PnnError> {
        obs_register();
        artifact.validate()?;
        let layers: Vec<LayerF32> = artifact
            .extracted_layers()
            .iter()
            .map(LayerF32::from_f64)
            .collect();
        let capacity = capacity.max(1);
        let scratch = ScratchF32::new(&layers, capacity);
        OBS_PLANS_COMPILED.increment();
        Ok(InferencePlanF32 {
            in_dim: artifact.in_dim,
            out_dim: artifact.out_dim,
            layers,
            capacity,
            scratch,
        })
    }

    /// Input width the plan was compiled for.
    pub fn in_dim(&self) -> usize {
        self.in_dim
    }

    /// Output width (number of classes).
    pub fn out_dim(&self) -> usize {
        self.out_dim
    }

    /// Output voltages (f32 math, widened to f64 for the caller).
    /// Allocates only the returned matrix; use [`Self::infer_into`] for the
    /// fully allocation-free path.
    ///
    /// # Errors
    ///
    /// Returns [`PnnError::Data`] if `x` does not match the input width.
    pub fn infer(&mut self, x: &Matrix) -> Result<Matrix, PnnError> {
        let mut out = Matrix::zeros(x.rows(), self.out_dim);
        self.infer_into(x, &mut out)?;
        Ok(out)
    }

    /// Writes output voltages for a batch into `out` (`x.rows() ×
    /// out_dim`), allocation-free.
    ///
    /// # Errors
    ///
    /// Returns [`PnnError::Data`] on input-width or output-shape mismatch.
    pub fn infer_into(&mut self, x: &Matrix, out: &mut Matrix) -> Result<(), PnnError> {
        check_input(x, self.in_dim)?;
        check_output(out, x.rows(), self.out_dim)?;
        let (rows, in_dim, out_dim) = (x.rows(), self.in_dim, self.out_dim);
        let mut start = 0;
        while start < rows {
            let end = (start + self.capacity).min(rows);
            let b = end - start;
            for (dst, &src) in self.scratch.h[..b * in_dim]
                .iter_mut()
                .zip(&x.as_slice()[start * in_dim..end * in_dim])
            {
                *dst = src as f32;
            }
            run_layers_f32(&self.layers, &mut self.scratch, b);
            for (dst, &src) in out.as_mut_slice()[start * out_dim..end * out_dim]
                .iter_mut()
                .zip(&self.scratch.h[..b * out_dim])
            {
                *dst = f64::from(src);
            }
            start = end;
        }
        OBS_SAMPLES.add(rows as u64);
        OBS_BATCHES.increment();
        Ok(())
    }

    /// Argmax class predictions.
    ///
    /// # Errors
    ///
    /// As for [`Self::infer`].
    pub fn predict(&mut self, x: &Matrix) -> Result<Vec<usize>, PnnError> {
        let scores = self.infer(x)?;
        Ok((0..scores.rows())
            .map(|i| argmax_row(scores.row(i)))
            .collect())
    }

    /// Parallel batched inference over `capacity`-row bands; bit-identical
    /// to [`Self::infer`] at every thread count (per-band scratch, one
    /// allocation per band).
    ///
    /// # Errors
    ///
    /// Returns [`PnnError::Data`] if `x` does not match the input width.
    pub fn infer_parallel(&self, x: &Matrix, par: &ParallelConfig) -> Result<Matrix, PnnError> {
        check_input(x, self.in_dim)?;
        let (rows, in_dim, out_dim) = (x.rows(), self.in_dim, self.out_dim);
        let bands = pnc_linalg::kernels::row_bands(rows, self.capacity);
        let results = par.ordered_par_map(&bands, |&(s, e)| {
            let b = e - s;
            let mut scratch = ScratchF32::new(&self.layers, b);
            for (dst, &src) in scratch.h[..b * in_dim]
                .iter_mut()
                .zip(&x.as_slice()[s * in_dim..e * in_dim])
            {
                *dst = src as f32;
            }
            run_layers_f32(&self.layers, &mut scratch, b);
            scratch.h[..b * out_dim].to_vec()
        });
        let mut out = Matrix::zeros(rows, out_dim);
        for (&(s, e), band) in bands.iter().zip(&results) {
            for (dst, &src) in out.as_mut_slice()[s * out_dim..e * out_dim]
                .iter_mut()
                .zip(band)
            {
                *dst = f64::from(src);
            }
        }
        OBS_SAMPLES.add(rows as u64);
        OBS_BATCHES.increment();
        Ok(out)
    }
}

/// Fixed-point sibling: Q1.14 `i16` weights, Q1.14 activations, `i32`
/// accumulators; η curves evaluated in f32 between crossbars.
#[derive(Debug, Clone)]
struct LayerQuant {
    in_dim: usize,
    out_dim: usize,
    w_pos: Vec<i16>,
    w_neg: Vec<i16>,
    etas: Vec<([f32; 4], [f32; 4])>,
    inv_ones_q: Vec<i16>,
    apply_act: bool,
}

impl LayerQuant {
    fn ext_dim(&self) -> usize {
        self.in_dim + 2
    }

    fn from_f64(l: &ExtractedLayer) -> LayerQuant {
        let etas: Vec<([f32; 4], [f32; 4])> = l
            .etas
            .iter()
            .map(|(a, i)| (a.map(|v| v as f32), i.map(|v| v as f32)))
            .collect();
        let inv_ones_q = etas
            .iter()
            .map(|(_, i)| quantize_q14(inv_curve_f32(i, 1.0)))
            .collect();
        LayerQuant {
            in_dim: l.in_dim,
            out_dim: l.out_dim,
            w_pos: l.w_pos.iter().map(|&w| quantize_q14(w as f32)).collect(),
            w_neg: l.w_neg.iter().map(|&w| quantize_q14(w as f32)).collect(),
            etas,
            inv_ones_q,
            apply_act: l.apply_act,
        }
    }
}

#[derive(Debug, Clone)]
struct ScratchQuant {
    /// Current activations, Q1.14.
    h_q: Vec<i16>,
    /// Current activations, f32 (the last layer's values are the output).
    h_f: Vec<f32>,
    x_ext: Vec<i16>,
    x_inv: Vec<i16>,
    z_pos: Vec<i32>,
    z_neg: Vec<i32>,
}

impl ScratchQuant {
    fn new(layers: &[LayerQuant], capacity: usize) -> ScratchQuant {
        let max_ext = layers.iter().map(LayerQuant::ext_dim).max().unwrap_or(2);
        let max_out = layers.iter().map(|l| l.out_dim).max().unwrap_or(1);
        let max_width = layers
            .iter()
            .map(|l| l.in_dim.max(l.out_dim))
            .max()
            .unwrap_or(1);
        ScratchQuant {
            h_q: vec![0; capacity * max_width],
            h_f: vec![0.0; capacity * max_width],
            x_ext: vec![0; capacity * max_ext],
            x_inv: vec![0; capacity * max_ext],
            z_pos: vec![0; capacity * max_out],
            z_neg: vec![0; capacity * max_out],
        }
    }
}

fn run_layers_quant(layers: &[LayerQuant], s: &mut ScratchQuant, b: usize) {
    const ONE_Q14: i16 = 16384;
    for layer in layers {
        let (input, ext, out) = (layer.in_dim, layer.ext_dim(), layer.out_dim);
        for i in 0..b {
            let src_start = i * input;
            let dst = i * ext;
            for k in 0..input {
                s.x_ext[dst + k] = s.h_q[src_start + k];
            }
            s.x_ext[dst + input] = ONE_Q14;
            s.x_ext[dst + input + 1] = 0;
        }
        if layer.etas.len() == 1 {
            let (eta_act, eta_inv) = &layer.etas[0];
            for i in 0..b {
                let row = i * ext;
                for k in 0..input {
                    let xf = f32::from(s.x_ext[row + k]) / Q14_SCALE;
                    s.x_inv[row + k] = quantize_q14(inv_curve_f32(eta_inv, xf));
                }
                s.x_inv[row + input] = layer.inv_ones_q[0];
                s.x_inv[row + input + 1] = 0;
            }
            gemm_i16_i32(
                b,
                ext,
                out,
                &s.x_ext[..b * ext],
                &layer.w_pos,
                &mut s.z_pos[..b * out],
            );
            gemm_i16_i32(
                b,
                ext,
                out,
                &s.x_inv[..b * ext],
                &layer.w_neg,
                &mut s.z_neg[..b * out],
            );
            for idx in 0..b * out {
                // Q2.28 accumulator → f32 voltage. Overflow-safe: the two
                // crossbar column sums each stay below 2^15 · 2^14.
                let z = (s.z_pos[idx] + s.z_neg[idx]) as f32 * Q28_DEQ;
                s.h_f[idx] = if layer.apply_act {
                    ptanh_curve_f32(eta_act, z)
                } else {
                    z
                };
            }
        } else {
            for (j, (eta_act, eta_inv)) in layer.etas.iter().enumerate() {
                for i in 0..b {
                    let row = i * ext;
                    for k in 0..input {
                        let xf = f32::from(s.x_ext[row + k]) / Q14_SCALE;
                        s.x_inv[row + k] = quantize_q14(inv_curve_f32(eta_inv, xf));
                    }
                    s.x_inv[row + input] = layer.inv_ones_q[j];
                    s.x_inv[row + input + 1] = 0;
                }
                for i in 0..b {
                    let row = i * ext;
                    let mut z_pos = 0_i32;
                    for k in 0..ext {
                        z_pos += i32::from(s.x_ext[row + k]) * i32::from(layer.w_pos[k * out + j]);
                    }
                    let mut z_neg = 0_i32;
                    for k in 0..ext {
                        z_neg += i32::from(s.x_inv[row + k]) * i32::from(layer.w_neg[k * out + j]);
                    }
                    let z = (z_pos + z_neg) as f32 * Q28_DEQ;
                    s.h_f[i * out + j] = if layer.apply_act {
                        ptanh_curve_f32(eta_act, z)
                    } else {
                        z
                    };
                }
            }
        }
        // Requantize for the next crossbar (harmless after the last layer).
        for idx in 0..b * out {
            s.h_q[idx] = quantize_q14(s.h_f[idx]);
        }
    }
}

/// Fixed-point compiled plan: Q1.14 `i16` crossbars with `i32`
/// accumulation ([`pnc_linalg::simd::gemm_i16_i32`]), f32 curve evaluation
/// between layers. Voltages are clamped to ±1.9999 V at quantization — far
/// outside the 0–1 V supply range real circuits produce. Parity with the
/// f64 plan is bounded-error, property-tested as ≥ 99.5 % classification
/// agreement on held-out rows.
#[derive(Debug, Clone)]
pub struct InferencePlanQuant {
    layers: Vec<LayerQuant>,
    in_dim: usize,
    out_dim: usize,
    capacity: usize,
    scratch: ScratchQuant,
}

impl InferencePlanQuant {
    /// Compiles with the [`DEFAULT_CAPACITY`] micro-batch size.
    ///
    /// # Errors
    ///
    /// Propagates surrogate/graph failures from η extraction.
    pub fn compile(pnn: &Pnn) -> Result<InferencePlanQuant, PnnError> {
        Self::compile_with_capacity(pnn, DEFAULT_CAPACITY)
    }

    /// Compiles with an explicit micro-batch capacity (clamped to ≥ 1).
    ///
    /// # Errors
    ///
    /// Propagates surrogate/graph failures from η extraction.
    pub fn compile_with_capacity(
        pnn: &Pnn,
        capacity: usize,
    ) -> Result<InferencePlanQuant, PnnError> {
        obs_register();
        let layers: Vec<LayerQuant> = extract_layers(pnn)?
            .iter()
            .map(LayerQuant::from_f64)
            .collect();
        let capacity = capacity.max(1);
        let scratch = ScratchQuant::new(&layers, capacity);
        OBS_PLANS_COMPILED.increment();
        Ok(InferencePlanQuant {
            in_dim: pnn.config().layer_sizes[0],
            out_dim: layers.last().map(|l| l.out_dim).unwrap_or(0),
            layers,
            capacity,
            scratch,
        })
    }

    /// Compiles from an exported [`crate::PnnArtifact`] (see
    /// [`InferencePlan::compile_artifact`]); quantization is the same one
    /// [`Self::compile`] applies, so artifact- and network-compiled Q1.14
    /// plans are bit-identical to each other.
    ///
    /// # Errors
    ///
    /// Returns [`PnnError::Artifact`] if the artifact fails validation.
    pub fn compile_artifact(artifact: &crate::PnnArtifact) -> Result<InferencePlanQuant, PnnError> {
        Self::compile_artifact_with_capacity(artifact, DEFAULT_CAPACITY)
    }

    /// [`Self::compile_artifact`] with an explicit micro-batch capacity
    /// (clamped to ≥ 1).
    ///
    /// # Errors
    ///
    /// Returns [`PnnError::Artifact`] if the artifact fails validation.
    pub fn compile_artifact_with_capacity(
        artifact: &crate::PnnArtifact,
        capacity: usize,
    ) -> Result<InferencePlanQuant, PnnError> {
        obs_register();
        artifact.validate()?;
        let layers: Vec<LayerQuant> = artifact
            .extracted_layers()
            .iter()
            .map(LayerQuant::from_f64)
            .collect();
        let capacity = capacity.max(1);
        let scratch = ScratchQuant::new(&layers, capacity);
        OBS_PLANS_COMPILED.increment();
        Ok(InferencePlanQuant {
            in_dim: artifact.in_dim,
            out_dim: artifact.out_dim,
            layers,
            capacity,
            scratch,
        })
    }

    /// Input width the plan was compiled for.
    pub fn in_dim(&self) -> usize {
        self.in_dim
    }

    /// Output width (number of classes).
    pub fn out_dim(&self) -> usize {
        self.out_dim
    }

    /// Output voltages (fixed-point crossbars, widened to f64). Allocates
    /// only the returned matrix; use [`Self::infer_into`] for the fully
    /// allocation-free path.
    ///
    /// # Errors
    ///
    /// Returns [`PnnError::Data`] if `x` does not match the input width.
    pub fn infer(&mut self, x: &Matrix) -> Result<Matrix, PnnError> {
        let mut out = Matrix::zeros(x.rows(), self.out_dim);
        self.infer_into(x, &mut out)?;
        Ok(out)
    }

    /// Writes output voltages for a batch into `out` (`x.rows() ×
    /// out_dim`), allocation-free.
    ///
    /// # Errors
    ///
    /// Returns [`PnnError::Data`] on input-width or output-shape mismatch.
    pub fn infer_into(&mut self, x: &Matrix, out: &mut Matrix) -> Result<(), PnnError> {
        check_input(x, self.in_dim)?;
        check_output(out, x.rows(), self.out_dim)?;
        let (rows, in_dim, out_dim) = (x.rows(), self.in_dim, self.out_dim);
        let mut start = 0;
        while start < rows {
            let end = (start + self.capacity).min(rows);
            let b = end - start;
            for (dst, &src) in self.scratch.h_q[..b * in_dim]
                .iter_mut()
                .zip(&x.as_slice()[start * in_dim..end * in_dim])
            {
                *dst = quantize_q14(src as f32);
            }
            run_layers_quant(&self.layers, &mut self.scratch, b);
            for (dst, &src) in out.as_mut_slice()[start * out_dim..end * out_dim]
                .iter_mut()
                .zip(&self.scratch.h_f[..b * out_dim])
            {
                *dst = f64::from(src);
            }
            start = end;
        }
        OBS_SAMPLES.add(rows as u64);
        OBS_BATCHES.increment();
        Ok(())
    }

    /// Argmax class predictions.
    ///
    /// # Errors
    ///
    /// As for [`Self::infer`].
    pub fn predict(&mut self, x: &Matrix) -> Result<Vec<usize>, PnnError> {
        let scores = self.infer(x)?;
        Ok((0..scores.rows())
            .map(|i| argmax_row(scores.row(i)))
            .collect())
    }

    /// Parallel batched inference over `capacity`-row bands; bit-identical
    /// to [`Self::infer`] at every thread count (per-band scratch, one
    /// allocation per band).
    ///
    /// # Errors
    ///
    /// Returns [`PnnError::Data`] if `x` does not match the input width.
    pub fn infer_parallel(&self, x: &Matrix, par: &ParallelConfig) -> Result<Matrix, PnnError> {
        check_input(x, self.in_dim)?;
        let (rows, in_dim, out_dim) = (x.rows(), self.in_dim, self.out_dim);
        let bands = pnc_linalg::kernels::row_bands(rows, self.capacity);
        let results = par.ordered_par_map(&bands, |&(s, e)| {
            let b = e - s;
            let mut scratch = ScratchQuant::new(&self.layers, b);
            for (dst, &src) in scratch.h_q[..b * in_dim]
                .iter_mut()
                .zip(&x.as_slice()[s * in_dim..e * in_dim])
            {
                *dst = quantize_q14(src as f32);
            }
            run_layers_quant(&self.layers, &mut scratch, b);
            scratch.h_f[..b * out_dim].to_vec()
        });
        let mut out = Matrix::zeros(rows, out_dim);
        for (&(s, e), band) in bands.iter().zip(&results) {
            for (dst, &src) in out.as_mut_slice()[s * out_dim..e * out_dim]
                .iter_mut()
                .zip(band)
            {
                *dst = f64::from(src);
            }
        }
        OBS_SAMPLES.add(rows as u64);
        OBS_BATCHES.increment();
        Ok(out)
    }
}

/// A compiled pNN at any precision, behind one dispatching API.
#[derive(Debug, Clone)]
pub enum CompiledPnn {
    /// Bit-exact f64 plan.
    F64(InferencePlan),
    /// Single-precision plan.
    F32(InferencePlanF32),
    /// Fixed-point Q1.14 plan.
    QuantI16(InferencePlanQuant),
}

impl CompiledPnn {
    /// Compiles at the requested precision.
    ///
    /// # Errors
    ///
    /// Propagates surrogate/graph failures from η extraction.
    pub fn compile(pnn: &Pnn, precision: PlanPrecision) -> Result<CompiledPnn, PnnError> {
        Ok(match precision {
            PlanPrecision::F64 => CompiledPnn::F64(InferencePlan::compile(pnn)?),
            PlanPrecision::F32 => CompiledPnn::F32(InferencePlanF32::compile(pnn)?),
            PlanPrecision::QuantI16 => CompiledPnn::QuantI16(InferencePlanQuant::compile(pnn)?),
        })
    }

    /// Compiles at the precision named by `PNC_INFER_PRECISION` (f64 when
    /// unset).
    ///
    /// # Errors
    ///
    /// As for [`Self::compile`], plus [`PnnError::Config`] when the
    /// variable is set to an unrecognized value ([`PlanPrecision::from_env`]
    /// — operator typos fail loudly instead of silently serving f64).
    pub fn compile_from_env(pnn: &Pnn) -> Result<CompiledPnn, PnnError> {
        Self::compile(pnn, PlanPrecision::from_env()?)
    }

    /// Compiles an exported [`crate::PnnArtifact`] at the requested
    /// precision and micro-batch capacity — the serving-registry entry
    /// point: no live network or surrogate required, and the f64 variant is
    /// bit-identical to a plan compiled from the originating network.
    ///
    /// # Errors
    ///
    /// Returns [`PnnError::Artifact`] if the artifact fails validation.
    pub fn compile_artifact(
        artifact: &crate::PnnArtifact,
        precision: PlanPrecision,
        capacity: usize,
    ) -> Result<CompiledPnn, PnnError> {
        Ok(match precision {
            PlanPrecision::F64 => CompiledPnn::F64(InferencePlan::compile_artifact_with_capacity(
                artifact, capacity,
            )?),
            PlanPrecision::F32 => CompiledPnn::F32(
                InferencePlanF32::compile_artifact_with_capacity(artifact, capacity)?,
            ),
            PlanPrecision::QuantI16 => CompiledPnn::QuantI16(
                InferencePlanQuant::compile_artifact_with_capacity(artifact, capacity)?,
            ),
        })
    }

    /// The plan's precision.
    pub fn precision(&self) -> PlanPrecision {
        match self {
            CompiledPnn::F64(_) => PlanPrecision::F64,
            CompiledPnn::F32(_) => PlanPrecision::F32,
            CompiledPnn::QuantI16(_) => PlanPrecision::QuantI16,
        }
    }

    /// Input width the plan was compiled for.
    pub fn in_dim(&self) -> usize {
        match self {
            CompiledPnn::F64(p) => p.in_dim(),
            CompiledPnn::F32(p) => p.in_dim(),
            CompiledPnn::QuantI16(p) => p.in_dim(),
        }
    }

    /// Output width (number of classes).
    pub fn out_dim(&self) -> usize {
        match self {
            CompiledPnn::F64(p) => p.out_dim(),
            CompiledPnn::F32(p) => p.out_dim(),
            CompiledPnn::QuantI16(p) => p.out_dim(),
        }
    }

    /// Writes output voltages for a batch into `out` (`x.rows() ×
    /// out_dim`), allocation-free.
    ///
    /// # Errors
    ///
    /// Returns [`PnnError::Data`] on input-width or output-shape mismatch.
    pub fn infer_into(&mut self, x: &Matrix, out: &mut Matrix) -> Result<(), PnnError> {
        match self {
            CompiledPnn::F64(p) => p.infer_into(x, out),
            CompiledPnn::F32(p) => p.infer_into(x, out),
            CompiledPnn::QuantI16(p) => p.infer_into(x, out),
        }
    }

    /// Output voltages for a batch (dispatching [`InferencePlan::infer`]
    /// and siblings).
    ///
    /// # Errors
    ///
    /// Returns [`PnnError::Data`] if `x` does not match the input width.
    pub fn infer(&mut self, x: &Matrix) -> Result<Matrix, PnnError> {
        match self {
            CompiledPnn::F64(p) => p.infer(x),
            CompiledPnn::F32(p) => p.infer(x),
            CompiledPnn::QuantI16(p) => p.infer(x),
        }
    }

    /// Argmax class predictions.
    ///
    /// # Errors
    ///
    /// As for [`Self::infer`].
    pub fn predict(&mut self, x: &Matrix) -> Result<Vec<usize>, PnnError> {
        match self {
            CompiledPnn::F64(p) => p.predict(x),
            CompiledPnn::F32(p) => p.predict(x),
            CompiledPnn::QuantI16(p) => p.predict(x),
        }
    }

    /// Parallel batched inference.
    ///
    /// # Errors
    ///
    /// As for [`Self::infer`].
    pub fn infer_parallel(&self, x: &Matrix, par: &ParallelConfig) -> Result<Matrix, PnnError> {
        match self {
            CompiledPnn::F64(p) => p.infer_parallel(x, par),
            CompiledPnn::F32(p) => p.infer_parallel(x, par),
            CompiledPnn::QuantI16(p) => p.infer_parallel(x, par),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantization_round_trips_supply_range() {
        for v in [0.0_f32, 0.25, 0.5, 0.9999, 1.0, -0.3] {
            let q = quantize_q14(v);
            let back = f32::from(q) / Q14_SCALE;
            assert!((back - v).abs() <= 0.5 / Q14_SCALE + 1e-7, "{v} -> {back}");
        }
        // Saturation instead of wraparound outside the representable range.
        assert_eq!(quantize_q14(3.0), quantize_q14(Q14_CLAMP));
        assert_eq!(quantize_q14(-3.0), quantize_q14(-Q14_CLAMP));
    }

    #[test]
    fn precision_parse_accepts_all_spellings() {
        // Exercises the parsing helper directly to avoid mutating process
        // env (`from_env` is `parse` plus the unset → F64 default).
        assert_eq!(PlanPrecision::parse("f32").unwrap(), PlanPrecision::F32);
        assert_eq!(
            PlanPrecision::parse(" Q16 ").unwrap(),
            PlanPrecision::QuantI16
        );
        assert_eq!(
            PlanPrecision::parse("i16").unwrap(),
            PlanPrecision::QuantI16
        );
        assert_eq!(
            PlanPrecision::parse("quant").unwrap(),
            PlanPrecision::QuantI16
        );
        assert_eq!(PlanPrecision::parse("F64").unwrap(), PlanPrecision::F64);
        for p in [
            PlanPrecision::F64,
            PlanPrecision::F32,
            PlanPrecision::QuantI16,
        ] {
            assert_eq!(PlanPrecision::parse(p.name()).unwrap(), p);
        }
    }

    #[test]
    fn precision_parse_rejects_unknown_values_with_typed_error() {
        // The silent-fallback regression: a typo'd precision used to
        // quietly select F64; it must now surface as a Config error.
        for bad in ["garbage", "f16", "", "q14", "fp64"] {
            match PlanPrecision::parse(bad) {
                Err(PnnError::Config { detail }) => {
                    assert!(
                        detail.contains("precision"),
                        "error should name the problem: {detail}"
                    );
                }
                other => panic!("{bad:?} must be a Config error, got {other:?}"),
            }
        }
    }
}
