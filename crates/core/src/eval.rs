//! Accuracy and Monte-Carlo robustness evaluation (Sec. IV-C).

use crate::network::Pnn;
use crate::train::LabeledData;
use crate::variation::{NoiseSample, VariationModel};
use crate::PnnError;
use pnc_linalg::{stats, ParallelConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// Classification accuracy of `pnn` on `data`, optionally under one
/// printing-variation draw.
///
/// # Errors
///
/// Propagates forward-pass failures.
///
/// # Examples
///
/// See [`mc_evaluate`] for the Monte-Carlo wrapper the experiment tables
/// use.
pub fn accuracy(
    pnn: &Pnn,
    data: LabeledData<'_>,
    noise: Option<&NoiseSample>,
) -> Result<f64, PnnError> {
    if data.is_empty() {
        return Err(PnnError::Data {
            detail: "cannot evaluate on empty data".into(),
        });
    }
    let preds = pnn.predict(data.features, noise)?;
    let correct = preds
        .iter()
        .zip(data.labels)
        .filter(|(p, t)| p == t)
        .count();
    Ok(correct as f64 / data.len() as f64)
}

/// Monte-Carlo robustness statistics: accuracy mean and standard deviation
/// over variation draws, exactly as Tab. II reports (`mean ± std` over
/// `N_test = 100` samples).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct McStats {
    /// Mean accuracy over the draws.
    pub mean: f64,
    /// Population standard deviation over the draws — the paper's
    /// robustness metric.
    pub std: f64,
    /// The individual per-draw accuracies.
    pub accuracies: Vec<f64>,
}

/// Evaluates `pnn` under `n_test` Monte-Carlo draws of `variation`,
/// applying the noise to every printable value (crossbar conductances *and*
/// nonlinear-circuit components — the full printing process).
///
/// # Errors
///
/// Returns [`PnnError::Data`] for empty data or `n_test == 0`, and
/// propagates forward-pass failures.
///
/// # Examples
///
/// ```no_run
/// # use pnc_core::{mc_evaluate, LabeledData, Pnn, VariationModel};
/// # fn eval(pnn: &Pnn, data: LabeledData<'_>) -> Result<(), pnc_core::PnnError> {
/// let stats = mc_evaluate(
///     pnn,
///     data,
///     &VariationModel::Uniform { epsilon: 0.10 },
///     100,
///     42,
/// )?;
/// println!("{:.3} ± {:.3}", stats.mean, stats.std);
/// # Ok(())
/// # }
/// ```
pub fn mc_evaluate(
    pnn: &Pnn,
    data: LabeledData<'_>,
    variation: &VariationModel,
    n_test: usize,
    seed: u64,
) -> Result<McStats, PnnError> {
    mc_evaluate_with(
        pnn,
        data,
        variation,
        n_test,
        seed,
        ParallelConfig::automatic(),
    )
}

/// [`mc_evaluate`] with an explicit thread-count configuration.
///
/// All noise is pre-drawn serially from the seeded generator (so the draw
/// sequence never depends on scheduling), then the independent accuracy
/// evaluations fan out over `parallel` workers and come back in draw order
/// — the returned statistics are identical at every thread count.
///
/// # Errors
///
/// Same contract as [`mc_evaluate`].
pub fn mc_evaluate_with(
    pnn: &Pnn,
    data: LabeledData<'_>,
    variation: &VariationModel,
    n_test: usize,
    seed: u64,
    parallel: ParallelConfig,
) -> Result<McStats, PnnError> {
    if n_test == 0 {
        return Err(PnnError::Data {
            detail: "n_test must be positive".into(),
        });
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let shapes = pnn.theta_shapes();
    let noise: Vec<Option<NoiseSample>> = (0..n_test)
        .map(|_| {
            if variation.is_none() {
                None
            } else {
                Some(NoiseSample::draw(
                    variation,
                    &mut rng,
                    &shapes,
                    pnn.num_circuits(),
                ))
            }
        })
        .collect();
    let accuracies =
        parallel.try_ordered_par_map(&noise, |sample| accuracy(pnn, data, sample.as_ref()))?;
    Ok(McStats {
        mean: stats::mean(&accuracies),
        std: stats::std(&accuracies),
        accuracies,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::PnnConfig;
    use pnc_linalg::Matrix;
    use pnc_surrogate::{build_dataset, train_surrogate, DatasetConfig};
    use std::sync::Arc;

    fn quick_pnn() -> Pnn {
        let data = build_dataset(&DatasetConfig {
            samples: 120,
            sweep_points: 31,
        })
        .unwrap();
        let surrogate = Arc::new(
            train_surrogate(
                &data,
                &pnc_surrogate::TrainConfig {
                    layer_sizes: vec![10, 8, 4],
                    max_epochs: 300,
                    patience: 100,
                    ..pnc_surrogate::TrainConfig::default()
                },
            )
            .unwrap()
            .0,
        );
        Pnn::new(PnnConfig::for_dataset(2, 2), surrogate).unwrap()
    }

    #[test]
    fn accuracy_counts_matches() {
        let pnn = quick_pnn();
        let x = Matrix::from_fn(6, 2, |i, j| ((i + j) % 4) as f64 / 3.0);
        let preds = pnn.predict(&x, None).unwrap();
        let data = LabeledData::new(&x, &preds).unwrap();
        // Using the model's own predictions as labels gives accuracy 1.
        assert_eq!(accuracy(&pnn, data, None).unwrap(), 1.0);
        // Flipping every label gives accuracy 0.
        let flipped: Vec<usize> = preds.iter().map(|&p| 1 - p).collect();
        let data = LabeledData::new(&x, &flipped).unwrap();
        assert_eq!(accuracy(&pnn, data, None).unwrap(), 0.0);
    }

    #[test]
    fn mc_evaluate_without_variation_has_zero_std() {
        let pnn = quick_pnn();
        let x = Matrix::from_fn(5, 2, |i, j| ((2 * i + j) % 5) as f64 / 4.0);
        let y = vec![0, 1, 0, 1, 0];
        let data = LabeledData::new(&x, &y).unwrap();
        let stats = mc_evaluate(&pnn, data, &VariationModel::None, 10, 0).unwrap();
        assert!(stats.std < 1e-12, "std {}", stats.std);
        assert_eq!(stats.accuracies.len(), 10);
        assert!(stats.accuracies.iter().all(|&a| a == stats.accuracies[0]));
    }

    #[test]
    fn mc_evaluate_is_seed_deterministic() {
        let pnn = quick_pnn();
        let x = Matrix::from_fn(8, 2, |i, j| ((i * 2 + 3 * j) % 7) as f64 / 6.0);
        let y = vec![0, 1, 0, 1, 0, 1, 0, 1];
        let data = LabeledData::new(&x, &y).unwrap();
        let v = VariationModel::Uniform { epsilon: 0.1 };
        let a = mc_evaluate(&pnn, data, &v, 20, 7).unwrap();
        let b = mc_evaluate(&pnn, data, &v, 20, 7).unwrap();
        assert_eq!(a, b);
        // Different seeds draw different noise; accuracies may or may not
        // coincide (they are coarse fractions), but the call must succeed.
        let c = mc_evaluate(&pnn, data, &v, 20, 8).unwrap();
        assert_eq!(c.accuracies.len(), 20);
    }

    #[test]
    fn mc_evaluate_is_identical_across_thread_counts() {
        let pnn = quick_pnn();
        let x = Matrix::from_fn(8, 2, |i, j| ((i * 3 + j) % 9) as f64 / 8.0);
        let y = vec![0, 1, 1, 0, 1, 0, 0, 1];
        let data = LabeledData::new(&x, &y).unwrap();
        let v = VariationModel::Gaussian { sigma: 0.05 };
        let serial = mc_evaluate_with(&pnn, data, &v, 24, 11, ParallelConfig::serial()).unwrap();
        for threads in [2, 4] {
            let parallel = mc_evaluate_with(
                &pnn,
                data,
                &v,
                24,
                11,
                ParallelConfig::with_threads(threads),
            )
            .unwrap();
            assert_eq!(serial, parallel, "threads = {threads}");
        }
    }

    #[test]
    fn rejects_zero_samples_and_empty_data() {
        let pnn = quick_pnn();
        let x = Matrix::from_fn(2, 2, |_, _| 0.5);
        let y = vec![0, 1];
        let data = LabeledData::new(&x, &y).unwrap();
        assert!(mc_evaluate(&pnn, data, &VariationModel::None, 0, 0).is_err());
        let empty_x = Matrix::zeros(0, 2);
        let empty = LabeledData {
            features: &empty_x,
            labels: &[],
        };
        assert!(accuracy(&pnn, empty, None).is_err());
    }
}
