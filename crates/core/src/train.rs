//! Nominal and variation-aware training (Sec. III-C).

use crate::network::{LossKind, Pnn};
use crate::variation::{NoiseSample, VariationModel};
use crate::PnnError;
use pnc_autodiff::{Adam, GradStore, Graph, Optimizer};
use pnc_linalg::{Matrix, ParallelConfig};
use pnc_obs::{Counter, FieldValue, Histogram};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};
use std::sync::{Mutex, PoisonError};

// Observability: training-loop effort and progress. Catalogued in
// docs/METRICS.md.
static OBS_RUNS: Counter = Counter::new("core.train.runs");
static OBS_EPOCHS: Counter = Counter::new("core.train.epochs");
static OBS_MC_DRAWS: Counter = Counter::new("core.train.mc_draws");
static OBS_EARLY_STOPS: Counter = Counter::new("core.train.early_stops");
static OBS_GRAD_NORM: Histogram = Histogram::new("core.train.grad_norm");
static OBS_SEEDS: Counter = Counter::new("core.seed_search.seeds");

fn obs_register() {
    static ONCE: std::sync::Once = std::sync::Once::new();
    ONCE.call_once(|| {
        OBS_RUNS.register();
        OBS_EPOCHS.register();
        OBS_MC_DRAWS.register();
        OBS_EARLY_STOPS.register();
        OBS_GRAD_NORM.register();
        OBS_SEEDS.register();
    });
}

/// Infinity norm over a gradient group (the scalar the per-epoch
/// `core.train.grad_norm` histogram records).
fn grad_inf_norm(grads: &[Matrix]) -> f64 {
    let mut norm = 0.0_f64;
    for g in grads {
        for i in 0..g.rows() {
            for j in 0..g.cols() {
                norm = norm.max(g[(i, j)].abs());
            }
        }
    }
    norm
}

/// Per-parameter-group gradients: crossbar thetas, then nonlinear-circuit
/// omega rows, in network order.
type GradPair = (Vec<Matrix>, Vec<Matrix>);

/// Maps a shape failure while summing per-draw gradients into a
/// [`PnnError`]. Draw gradients share the parameter shapes by construction,
/// so hitting this indicates an internal inconsistency in the MC loop.
fn grad_sum_err(source: pnc_linalg::LinalgError) -> PnnError {
    PnnError::Autodiff(pnc_autodiff::AutodiffError::Backward {
        op: "mc_grad_sum",
        source,
    })
}

/// A labeled batch: feature voltages and class targets.
///
/// # Examples
///
/// ```
/// use pnc_core::LabeledData;
/// use pnc_linalg::Matrix;
///
/// let x = Matrix::from_rows(&[&[0.1, 0.9], &[0.8, 0.2]]).expect("shape");
/// let labels = [1usize, 0];
/// let data = LabeledData::new(&x, &labels).expect("consistent");
/// assert_eq!(data.len(), 2);
/// ```
#[derive(Debug, Clone, Copy)]
pub struct LabeledData<'a> {
    /// Feature voltages, `n × d`.
    pub features: &'a Matrix,
    /// Class targets, length `n`.
    pub labels: &'a [usize],
}

impl<'a> LabeledData<'a> {
    /// Wraps features and labels, checking consistency.
    ///
    /// # Errors
    ///
    /// Returns [`PnnError::Data`] if the lengths disagree.
    pub fn new(features: &'a Matrix, labels: &'a [usize]) -> Result<Self, PnnError> {
        if features.rows() != labels.len() {
            return Err(PnnError::Data {
                detail: format!(
                    "{} feature rows but {} labels",
                    features.rows(),
                    labels.len()
                ),
            });
        }
        Ok(LabeledData { features, labels })
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// Returns `true` if the batch is empty.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }
}

/// Training configuration. Defaults follow the paper (Sec. IV-A) with a
/// reduced epoch budget; the bench harness raises the budget for
/// paper-fidelity runs.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TrainConfig {
    /// Adam learning rate for the crossbar conductances θ (paper: 0.1).
    pub lr_theta: f64,
    /// Adam learning rate for the nonlinear-circuit parameters 𝔴 (paper:
    /// 0.005; ignored when the network's circuits are fixed).
    pub lr_omega: f64,
    /// The classification loss.
    pub loss: LossKind,
    /// Printing-variation model used during training.
    /// [`VariationModel::None`] gives nominal training.
    pub variation: VariationModel,
    /// Whether training variation also hits the nonlinear circuits' ω.
    /// Prior-work variation-aware training varied only the crossbars; the
    /// paper's contribution extends it to the nonlinear circuits.
    pub vary_nonlinear: bool,
    /// Monte-Carlo samples per training step (paper: `N_train = 20`).
    pub n_train_mc: usize,
    /// Monte-Carlo samples for the validation loss (drawn once and reused
    /// every epoch so early stopping compares like with like).
    pub n_val_mc: usize,
    /// Maximum epochs.
    pub max_epochs: usize,
    /// Early-stopping patience in epochs (paper: 5000).
    pub patience: usize,
    /// Seed for noise draws.
    pub seed: u64,
    /// Optional aging-aware training: every Monte-Carlo sample additionally
    /// draws an age uniformly over the configured lifetime and decays the
    /// crossbar conductances accordingly (see [`crate::aging`]).
    pub aging: Option<crate::aging::AgingAwareness>,
    /// Thread-count control for the Monte-Carlo loss, the fixed-noise
    /// validation evaluation, and [`train_best_of_seeds`]. Training results
    /// are bit-identical at every thread count; `PNC_NUM_THREADS` overrides
    /// this setting process-wide.
    pub parallel: ParallelConfig,
}

impl Default for TrainConfig {
    fn default() -> Self {
        TrainConfig {
            lr_theta: 0.1,
            lr_omega: 0.005,
            loss: LossKind::default(),
            variation: VariationModel::None,
            vary_nonlinear: true,
            n_train_mc: 20,
            n_val_mc: 5,
            max_epochs: 500,
            patience: 100,
            seed: 0,
            aging: None,
            parallel: ParallelConfig::automatic(),
        }
    }
}

/// The outcome of a training run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrainReport {
    /// Best validation loss reached (the restored model's).
    pub best_val_loss: f64,
    /// Epoch index at which the best validation loss occurred.
    pub best_epoch: usize,
    /// Total epochs run (≤ `max_epochs`; early stopping may cut it short).
    pub epochs_run: usize,
    /// Training loss per epoch.
    pub train_losses: Vec<f64>,
    /// Validation loss per epoch.
    pub val_losses: Vec<f64>,
}

/// A reusable per-draw recording context: one autodiff tape plus one
/// gradient store, both of which retain their buffer pools across
/// [`Graph::reset`] / [`Graph::backward_into`] cycles.
#[derive(Debug, Default)]
struct DrawContext {
    graph: Graph,
    store: GradStore,
}

/// Runs (variation-aware) gradient training of a [`Pnn`] with per-group
/// Adam optimizers and early stopping, restoring the best-by-validation
/// parameters afterwards — the circuit that "would be the one to be printed"
/// (Sec. IV-C).
#[derive(Debug)]
pub struct Trainer {
    config: TrainConfig,
    /// Checkout pool of recording contexts reused across Monte-Carlo draws
    /// and epochs, so epoch-steady-state training does not rebuild tapes
    /// from scratch. At most one context per concurrently-running draw is
    /// ever created (single-threaded training keeps exactly one).
    scratch: Mutex<Vec<DrawContext>>,
}

impl Clone for Trainer {
    fn clone(&self) -> Self {
        // Scratch buffers are a per-instance cache, not state: a clone
        // starts with an empty pool and refills it on first use.
        Trainer::new(self.config)
    }
}

impl Trainer {
    /// Creates a trainer.
    pub fn new(config: TrainConfig) -> Self {
        Trainer {
            config,
            scratch: Mutex::new(Vec::new()),
        }
    }

    /// Checks a recording context out of the scratch pool (or makes a fresh
    /// one the first time a worker needs it).
    fn checkout(&self) -> DrawContext {
        let mut pool = self.scratch.lock().unwrap_or_else(PoisonError::into_inner);
        pool.pop().unwrap_or_default()
    }

    /// Returns a recording context — and the buffer pools it carries — for
    /// reuse by later draws and epochs.
    fn checkin(&self, ctx: DrawContext) {
        let mut pool = self.scratch.lock().unwrap_or_else(PoisonError::into_inner);
        pool.push(ctx);
    }

    /// The configuration.
    pub fn config(&self) -> &TrainConfig {
        &self.config
    }

    /// Draws the per-step noise list: one `None` for nominal training, or
    /// `n_train_mc` samples of the variation model.
    fn draw_noise(&self, pnn: &Pnn, rng: &mut StdRng, count: usize) -> Vec<Option<NoiseSample>> {
        if self.config.variation.is_none() && self.config.aging.is_none() {
            return vec![None];
        }
        let shapes = pnn.theta_shapes();
        (0..count)
            .map(|_| {
                let mut sample =
                    NoiseSample::draw(&self.config.variation, rng, &shapes, pnn.num_circuits());
                if !self.config.vary_nonlinear {
                    for f in &mut sample.omega_factors {
                        *f = [1.0; 7];
                    }
                }
                if let Some(aging) = &self.config.aging {
                    let decay = aging.sample_decay(rng);
                    crate::aging::age_noise(&mut sample, decay, rng);
                }
                Some(sample)
            })
            .collect()
    }

    /// Computes the Monte-Carlo loss over `noise` draws and returns
    /// `(loss value, per-parameter gradients)`; gradients are `None` when
    /// `backward` is false.
    ///
    /// Each draw records its forward pass (and, when requested, backward
    /// pass) on a private [`Graph`] checked out of the trainer's scratch
    /// pool, so draws run independently on worker threads under
    /// [`TrainConfig::parallel`] while reusing tape and gradient buffers
    /// across draws and epochs ([`Graph::reset`] retains capacity). Per-draw
    /// losses and gradients come back in draw order and are reduced
    /// left-to-right before the final `1/n` scaling — a fixed
    /// floating-point sequence, so the result is bit-identical at every
    /// thread count.
    ///
    /// # Errors
    ///
    /// Returns [`PnnError::Data`] for an empty `noise` slice and propagates
    /// forward/backward failures (lowest draw index wins, deterministically).
    fn mc_loss(
        &self,
        pnn: &Pnn,
        data: LabeledData<'_>,
        noise: &[Option<NoiseSample>],
        backward: bool,
    ) -> Result<(f64, Option<GradPair>), PnnError> {
        if noise.is_empty() {
            return Err(PnnError::Data {
                detail: "Monte-Carlo loss needs at least one noise draw".into(),
            });
        }
        OBS_MC_DRAWS.add(noise.len() as u64);
        struct DrawOutcome {
            loss: f64,
            grads: Option<GradPair>,
        }
        let theta_shapes = pnn.theta_shapes();
        let outcomes: Vec<DrawOutcome> = self.config.parallel.try_ordered_par_map(
            noise,
            |sample| -> Result<DrawOutcome, PnnError> {
                let mut ctx = self.checkout();
                ctx.graph.reset();
                let g = &mut ctx.graph;
                let (scores, vars) = pnn.forward(g, data.features, sample.as_ref())?;
                let loss = pnn.loss(g, scores, data.labels, self.config.loss)?;
                let loss_value = g.value(loss)[(0, 0)];
                if !backward {
                    self.checkin(ctx);
                    return Ok(DrawOutcome {
                        loss: loss_value,
                        grads: None,
                    });
                }
                ctx.graph.backward_into(loss, &mut ctx.store)?;
                // Missing leaf gradients (e.g. unused parameters) count
                // as zero so every draw contributes same-shaped terms.
                let theta_grads: Vec<Matrix> = vars
                    .thetas
                    .iter()
                    .zip(&theta_shapes)
                    .map(|(v, &(r, c))| {
                        ctx.store
                            .get(*v)
                            .cloned()
                            .unwrap_or_else(|| Matrix::zeros(r, c))
                    })
                    .collect();
                let w_grads: Vec<Matrix> = vars
                    .circuit_ws
                    .iter()
                    .map(|v| {
                        ctx.store
                            .get(*v)
                            .cloned()
                            .unwrap_or_else(|| Matrix::zeros(1, 7))
                    })
                    .collect();
                self.checkin(ctx);
                Ok(DrawOutcome {
                    loss: loss_value,
                    grads: Some((theta_grads, w_grads)),
                })
            },
        )?;

        // Deterministic ordered reduction: sum draws left-to-right in draw
        // order, then scale once by 1/n.
        let scale = 1.0 / outcomes.len() as f64;
        let mut loss_total = 0.0;
        for outcome in &outcomes {
            loss_total += outcome.loss;
        }
        let loss_value = loss_total * scale;

        if !backward {
            return Ok((loss_value, None));
        }

        let mut theta_grads: Vec<Matrix> = theta_shapes
            .iter()
            .map(|&(r, c)| Matrix::zeros(r, c))
            .collect();
        let missing_grads = || PnnError::Data {
            detail: "Monte-Carlo draw produced no gradients despite backward=true".into(),
        };
        let first = outcomes
            .first()
            .and_then(|o| o.grads.as_ref())
            .ok_or_else(missing_grads)?;
        let mut w_grads: Vec<Matrix> = (0..first.1.len()).map(|_| Matrix::zeros(1, 7)).collect();
        for outcome in &outcomes {
            let (draw_theta, draw_w) = outcome.grads.as_ref().ok_or_else(missing_grads)?;
            for (acc, g) in theta_grads.iter_mut().zip(draw_theta) {
                acc.add_assign(g).map_err(grad_sum_err)?;
            }
            for (acc, g) in w_grads.iter_mut().zip(draw_w) {
                acc.add_assign(g).map_err(grad_sum_err)?;
            }
        }
        for m in &mut theta_grads {
            m.scale_in_place(scale);
        }
        for m in &mut w_grads {
            m.scale_in_place(scale);
        }
        Ok((loss_value, Some((theta_grads, w_grads))))
    }

    /// Trains `pnn` on `train`, early-stopping on `val`, and restores the
    /// best-by-validation parameters.
    ///
    /// # Errors
    ///
    /// Returns [`PnnError::Data`] for empty or inconsistent data and
    /// propagates forward-pass failures.
    pub fn train(
        &self,
        pnn: &mut Pnn,
        train: LabeledData<'_>,
        val: LabeledData<'_>,
    ) -> Result<TrainReport, PnnError> {
        if train.is_empty() || val.is_empty() {
            return Err(PnnError::Data {
                detail: "training and validation sets must be non-empty".into(),
            });
        }
        obs_register();

        let mut rng = StdRng::seed_from_u64(self.config.seed);
        // Fixed validation noise so early stopping compares epochs fairly.
        let mut val_rng = StdRng::seed_from_u64(self.config.seed ^ 0x5A17_AB1E);
        let val_noise = self.draw_noise(pnn, &mut val_rng, self.config.n_val_mc.max(1));

        let mut opt_theta = Adam::new(self.config.lr_theta);
        let mut opt_omega = Adam::new(self.config.lr_omega);

        let mut best_snapshot = (pnn.layers().to_vec(), pnn.circuits().to_vec());
        let mut best_val = f64::INFINITY;
        let mut best_epoch = 0usize;
        let mut stale = 0usize;
        let mut train_losses = Vec::new();
        let mut val_losses = Vec::new();

        for epoch in 0..self.config.max_epochs {
            let noise = self.draw_noise(pnn, &mut rng, self.config.n_train_mc.max(1));
            let (train_loss, grads) = self.mc_loss(pnn, train, &noise, true)?;
            let (theta_grads, w_grads) = grads.ok_or_else(|| PnnError::Data {
                detail: "mc_loss returned no gradients despite backward=true".into(),
            })?;

            OBS_EPOCHS.increment();
            OBS_GRAD_NORM.observe(grad_inf_norm(&theta_grads));

            // Crossbar group.
            {
                let mut params: Vec<&mut pnc_autodiff::Parameter> =
                    pnn.layers_mut().iter_mut().map(|l| &mut l.theta).collect();
                let grad_refs: Vec<&Matrix> = theta_grads.iter().collect();
                opt_theta.step_dense(&mut params, &grad_refs);
            }
            // Nonlinear-circuit group (α_ω > 0 and learnable circuits only).
            if self.config.lr_omega > 0.0 && !w_grads.is_empty() {
                let mut params: Vec<&mut pnc_autodiff::Parameter> = pnn
                    .circuits_mut()
                    .iter_mut()
                    .flat_map(|(a, i)| [a.parameter_mut(), i.parameter_mut()])
                    .flatten()
                    .collect();
                let grad_refs: Vec<&Matrix> = w_grads.iter().collect();
                opt_omega.step_dense(&mut params, &grad_refs);
            }

            let (val_loss, _) = self.mc_loss(pnn, val, &val_noise, false)?;
            train_losses.push(train_loss);
            val_losses.push(val_loss);

            if pnc_obs::sink::enabled() {
                pnc_obs::sink::emit(
                    "core.train.epoch",
                    &[
                        ("epoch", FieldValue::U64(epoch as u64)),
                        ("train_loss", FieldValue::F64(train_loss)),
                        ("val_loss", FieldValue::F64(val_loss)),
                    ],
                );
            }

            if val_loss < best_val {
                best_val = val_loss;
                best_epoch = epoch;
                best_snapshot = (pnn.layers().to_vec(), pnn.circuits().to_vec());
                stale = 0;
            } else {
                stale += 1;
                if stale >= self.config.patience {
                    OBS_EARLY_STOPS.increment();
                    break;
                }
            }
        }

        // Restore the best circuit: the one that would be printed.
        let epochs_run = train_losses.len();
        let (layers, circuits) = best_snapshot;
        pnn.layers_mut().clone_from_slice(&layers);
        pnn.circuits_mut().clone_from_slice(&circuits);

        OBS_RUNS.increment();
        if pnc_obs::sink::enabled() {
            pnc_obs::sink::emit(
                "core.train.done",
                &[
                    ("epochs_run", FieldValue::U64(epochs_run as u64)),
                    ("best_epoch", FieldValue::U64(best_epoch as u64)),
                    ("best_val_loss", FieldValue::F64(best_val)),
                ],
            );
        }

        Ok(TrainReport {
            best_val_loss: best_val,
            best_epoch,
            epochs_run,
            train_losses,
            val_losses,
        })
    }
}

/// Trains one pNN per seed and returns the best by validation loss — the
/// paper's selection protocol (Sec. IV-C: "we select the best pNNs in each
/// setup w.r.t. the validation loss, as these circuits would be the ones to
/// be printed").
///
/// Each seed reseeds both the weight initialization
/// ([`PnnConfig::with_seed`](crate::PnnConfig::with_seed)) and the training
/// noise draws.
///
/// Seeds fan out over [`TrainConfig::parallel`] worker threads; every
/// seed's run is independent and internally deterministic, and the winner
/// is chosen by a strict `<` scan in seed order, so the selected circuit is
/// identical at every thread count (first seed wins ties, matching the old
/// serial loop). With the automatic thread setting, the per-seed inner
/// Monte-Carlo loop runs serially inside each worker rather than
/// oversubscribing the machine; when only one seed is given, that single
/// training run parallelizes over its Monte-Carlo draws instead.
///
/// # Errors
///
/// Returns [`PnnError::Config`] for an empty seed list and propagates
/// construction/training failures.
///
/// # Examples
///
/// Two-seed best-of-validation selection on a toy task, against a tiny
/// surrogate (a full-size one is cached by `artifacts::default_surrogate`
/// in the facade crate):
///
/// ```
/// use pnc_core::{train_best_of_seeds, LabeledData, PnnConfig, TrainConfig, VariationModel};
/// use pnc_linalg::Matrix;
/// use pnc_surrogate::{build_dataset_opts, train_surrogate, BuildOptions, DatasetConfig};
/// use std::sync::Arc;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let data = build_dataset_opts(
///     &DatasetConfig { samples: 12, sweep_points: 21 },
///     &BuildOptions { max_failure_fraction: Some(0.5), ..BuildOptions::default() },
/// )?;
/// let (surrogate, _) = train_surrogate(
///     &data,
///     &pnc_surrogate::TrainConfig {
///         layer_sizes: vec![10, 8, 4],
///         max_epochs: 30,
///         patience: 30,
///         ..pnc_surrogate::TrainConfig::default()
///     },
/// )?;
///
/// let x = Matrix::from_fn(8, 2, |i, j| ((i * 3 + j) % 5) as f64 / 4.0);
/// let y: Vec<usize> = (0..8).map(|i| i % 2).collect();
/// let labeled = LabeledData::new(&x, &y)?;
/// let (pnn, report) = train_best_of_seeds(
///     &PnnConfig::for_dataset(2, 2),
///     Arc::new(surrogate),
///     &TrainConfig {
///         variation: VariationModel::Uniform { epsilon: 0.1 },
///         n_train_mc: 2,
///         n_val_mc: 2,
///         max_epochs: 3,
///         patience: 3,
///         ..TrainConfig::default()
///     },
///     labeled,
///     labeled,
///     &[0, 1],
/// )?;
/// assert!(report.best_val_loss.is_finite());
/// assert_eq!(pnn.config().layer_sizes, vec![2, 3, 2]);
/// # Ok(())
/// # }
/// ```
pub fn train_best_of_seeds(
    config: &crate::PnnConfig,
    surrogate: std::sync::Arc<pnc_surrogate::SurrogateModel>,
    train_config: &TrainConfig,
    train: LabeledData<'_>,
    val: LabeledData<'_>,
    seeds: &[u64],
) -> Result<(Pnn, TrainReport), PnnError> {
    if seeds.is_empty() {
        return Err(PnnError::Config {
            detail: "need at least one seed".into(),
        });
    }
    let results: Vec<(Pnn, TrainReport)> = train_config.parallel.try_ordered_par_map(
        seeds,
        |&seed| -> Result<(Pnn, TrainReport), PnnError> {
            let mut pnn = Pnn::new(config.clone().with_seed(seed), surrogate.clone())?;
            let trainer = Trainer::new(TrainConfig {
                seed,
                ..*train_config
            });
            let report = trainer.train(&mut pnn, train, val)?;
            Ok((pnn, report))
        },
    )?;
    let mut best = 0;
    for (i, (_, report)) in results.iter().enumerate().skip(1) {
        if report.best_val_loss < results[best].1.best_val_loss {
            best = i;
        }
    }
    OBS_SEEDS.add(seeds.len() as u64);
    if pnc_obs::sink::enabled() {
        pnc_obs::sink::emit(
            "core.seed_search.done",
            &[
                ("seeds", FieldValue::U64(seeds.len() as u64)),
                ("best_seed", FieldValue::U64(seeds[best])),
                (
                    "best_val_loss",
                    FieldValue::F64(results[best].1.best_val_loss),
                ),
            ],
        );
    }
    results
        .into_iter()
        .nth(best)
        .ok_or_else(|| PnnError::Config {
            detail: "seed search produced no results".into(),
        })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::PnnConfig;
    use pnc_surrogate::{build_dataset, train_surrogate, DatasetConfig};
    use std::sync::Arc;

    fn quick_surrogate() -> Arc<pnc_surrogate::SurrogateModel> {
        let data = build_dataset(&DatasetConfig {
            samples: 120,
            sweep_points: 31,
        })
        .unwrap();
        Arc::new(
            train_surrogate(
                &data,
                &pnc_surrogate::TrainConfig {
                    layer_sizes: vec![10, 8, 4],
                    max_epochs: 400,
                    patience: 150,
                    ..pnc_surrogate::TrainConfig::default()
                },
            )
            .unwrap()
            .0,
        )
    }

    /// Two interleaved Gaussian blobs on 2 features.
    fn blobs() -> (Matrix, Vec<usize>) {
        let n = 40;
        let x = Matrix::from_fn(n, 2, |i, j| {
            let class = i % 2;
            let base = if class == 0 { 0.25 } else { 0.75 };
            let wobble = (((i * 7 + j * 3) % 11) as f64 / 11.0 - 0.5) * 0.2;
            (base + wobble).clamp(0.0, 1.0)
        });
        let y = (0..n).map(|i| i % 2).collect();
        (x, y)
    }

    fn quick_config() -> TrainConfig {
        TrainConfig {
            max_epochs: 60,
            patience: 60,
            n_train_mc: 3,
            n_val_mc: 2,
            ..TrainConfig::default()
        }
    }

    #[test]
    fn labeled_data_validates() {
        let x = Matrix::zeros(3, 2);
        assert!(LabeledData::new(&x, &[0, 1]).is_err());
        assert!(LabeledData::new(&x, &[0, 1, 0]).is_ok());
    }

    #[test]
    fn nominal_training_reduces_loss_and_learns_blobs() {
        let s = quick_surrogate();
        let (x, y) = blobs();
        let data = LabeledData::new(&x, &y).unwrap();
        let mut pnn = Pnn::new(PnnConfig::for_dataset(2, 2), s).unwrap();
        let report = Trainer::new(quick_config())
            .train(&mut pnn, data, data)
            .unwrap();

        assert!(report.epochs_run > 0);
        assert!(
            report.train_losses.last().unwrap() < &report.train_losses[0],
            "loss should fall: {:?} -> {:?}",
            report.train_losses.first(),
            report.train_losses.last()
        );
        let acc = crate::eval::accuracy(&pnn, data, None).unwrap();
        assert!(acc > 0.9, "blobs should be learnable, got {acc}");
    }

    #[test]
    fn variation_aware_training_runs_and_learns() {
        let s = quick_surrogate();
        let (x, y) = blobs();
        let data = LabeledData::new(&x, &y).unwrap();
        let mut pnn = Pnn::new(PnnConfig::for_dataset(2, 2), s).unwrap();
        let config = TrainConfig {
            variation: VariationModel::Uniform { epsilon: 0.1 },
            ..quick_config()
        };
        let report = Trainer::new(config).train(&mut pnn, data, data).unwrap();
        assert!(report.best_val_loss.is_finite());
        let acc = crate::eval::accuracy(&pnn, data, None).unwrap();
        assert!(
            acc > 0.85,
            "VA training should still learn blobs, got {acc}"
        );
    }

    #[test]
    fn learnable_circuits_actually_move() {
        let s = quick_surrogate();
        let (x, y) = blobs();
        let data = LabeledData::new(&x, &y).unwrap();
        let mut pnn = Pnn::new(PnnConfig::for_dataset(2, 2), s).unwrap();
        let before: Vec<[f64; 7]> = pnn
            .circuits()
            .iter()
            .map(|(a, _)| a.printable_omega())
            .collect();
        Trainer::new(quick_config())
            .train(&mut pnn, data, data)
            .unwrap();
        let after: Vec<[f64; 7]> = pnn
            .circuits()
            .iter()
            .map(|(a, _)| a.printable_omega())
            .collect();
        let moved = before
            .iter()
            .zip(&after)
            .any(|(b, a)| b.iter().zip(a).any(|(x, y)| (x - y).abs() > 1e-9));
        assert!(moved, "learnable ω must change during training");
    }

    #[test]
    fn fixed_circuits_do_not_move() {
        let s = quick_surrogate();
        let (x, y) = blobs();
        let data = LabeledData::new(&x, &y).unwrap();
        let mut pnn = Pnn::new(PnnConfig::for_dataset(2, 2).with_fixed_nonlinearity(), s).unwrap();
        let before: Vec<[f64; 7]> = pnn
            .circuits()
            .iter()
            .map(|(a, _)| a.printable_omega())
            .collect();
        Trainer::new(quick_config())
            .train(&mut pnn, data, data)
            .unwrap();
        let after: Vec<[f64; 7]> = pnn
            .circuits()
            .iter()
            .map(|(a, _)| a.printable_omega())
            .collect();
        assert_eq!(before, after, "fixed ω must not change");
    }

    #[test]
    fn mc_loss_rejects_empty_noise_slice() {
        let s = quick_surrogate();
        let (x, y) = blobs();
        let data = LabeledData::new(&x, &y).unwrap();
        let pnn = Pnn::new(PnnConfig::for_dataset(2, 2), s).unwrap();
        let trainer = Trainer::new(quick_config());
        for backward in [false, true] {
            let err = trainer.mc_loss(&pnn, data, &[], backward).unwrap_err();
            assert!(
                matches!(err, PnnError::Data { .. }),
                "expected PnnError::Data, got {err:?}"
            );
        }
    }

    #[test]
    fn training_is_bit_identical_across_thread_counts() {
        let s = quick_surrogate();
        let (x, y) = blobs();
        let data = LabeledData::new(&x, &y).unwrap();
        let run = |threads: usize| {
            let mut pnn = Pnn::new(PnnConfig::for_dataset(2, 2), s.clone()).unwrap();
            let config = TrainConfig {
                variation: VariationModel::Uniform { epsilon: 0.1 },
                n_train_mc: 4,
                n_val_mc: 3,
                max_epochs: 20,
                parallel: ParallelConfig::with_threads(threads),
                ..quick_config()
            };
            let report = Trainer::new(config).train(&mut pnn, data, data).unwrap();
            let thetas: Vec<Matrix> = pnn
                .layers()
                .iter()
                .map(|l| l.theta.value().clone())
                .collect();
            let omegas: Vec<[f64; 7]> = pnn
                .circuits()
                .iter()
                .map(|(a, _)| a.printable_omega())
                .collect();
            (report, thetas, omegas)
        };
        let (report_1, thetas_1, omegas_1) = run(1);
        for threads in [2, 4] {
            let (report_n, thetas_n, omegas_n) = run(threads);
            assert_eq!(
                report_1.train_losses, report_n.train_losses,
                "train losses diverge at {threads} threads"
            );
            assert_eq!(
                report_1.val_losses, report_n.val_losses,
                "val losses diverge at {threads} threads"
            );
            assert_eq!(report_1.best_epoch, report_n.best_epoch);
            assert_eq!(thetas_1, thetas_n, "final θ diverge at {threads} threads");
            assert_eq!(omegas_1, omegas_n, "final ω diverge at {threads} threads");
        }
    }

    #[test]
    fn best_of_seeds_is_identical_across_thread_counts() {
        let s = quick_surrogate();
        let (x, y) = blobs();
        let data = LabeledData::new(&x, &y).unwrap();
        let run = |threads: usize| {
            train_best_of_seeds(
                &PnnConfig::for_dataset(2, 2),
                s.clone(),
                &TrainConfig {
                    max_epochs: 15,
                    parallel: ParallelConfig::with_threads(threads),
                    ..quick_config()
                },
                data,
                data,
                &[1, 2, 3, 4],
            )
            .unwrap()
        };
        let (_, report_1) = run(1);
        let (_, report_4) = run(4);
        assert_eq!(report_1.best_val_loss, report_4.best_val_loss);
        assert_eq!(report_1.train_losses, report_4.train_losses);
    }

    #[test]
    fn training_is_deterministic_in_the_seed() {
        let s = quick_surrogate();
        let (x, y) = blobs();
        let data = LabeledData::new(&x, &y).unwrap();
        let mut a = Pnn::new(PnnConfig::for_dataset(2, 2), s.clone()).unwrap();
        let mut b = Pnn::new(PnnConfig::for_dataset(2, 2), s).unwrap();
        let ra = Trainer::new(quick_config())
            .train(&mut a, data, data)
            .unwrap();
        let rb = Trainer::new(quick_config())
            .train(&mut b, data, data)
            .unwrap();
        assert_eq!(ra.train_losses, rb.train_losses);
    }

    #[test]
    fn best_of_seeds_picks_lowest_validation_loss() {
        let s = quick_surrogate();
        let (x, y) = blobs();
        let data = LabeledData::new(&x, &y).unwrap();
        let config = PnnConfig::for_dataset(2, 2);
        let (pnn, best) =
            train_best_of_seeds(&config, s.clone(), &quick_config(), data, data, &[1, 2, 3])
                .unwrap();
        // Each individual seed's loss must be >= the selected one.
        for seed in [1u64, 2, 3] {
            let mut single = Pnn::new(config.clone().with_seed(seed), s.clone()).unwrap();
            let r = Trainer::new(TrainConfig {
                seed,
                ..quick_config()
            })
            .train(&mut single, data, data)
            .unwrap();
            assert!(r.best_val_loss >= best.best_val_loss - 1e-12);
        }
        assert!(crate::eval::accuracy(&pnn, data, None).unwrap() > 0.8);
    }

    #[test]
    fn best_of_seeds_rejects_empty_seed_list() {
        let s = quick_surrogate();
        let (x, y) = blobs();
        let data = LabeledData::new(&x, &y).unwrap();
        assert!(train_best_of_seeds(
            &PnnConfig::for_dataset(2, 2),
            s,
            &quick_config(),
            data,
            data,
            &[],
        )
        .is_err());
    }

    #[test]
    fn rejects_empty_data() {
        let s = quick_surrogate();
        let (x, y) = blobs();
        let data = LabeledData::new(&x, &y).unwrap();
        let empty_x = Matrix::zeros(0, 2);
        // Matrix::zeros(0, 2) has no rows; labels slice is empty.
        let empty = LabeledData {
            features: &empty_x,
            labels: &[],
        };
        let mut pnn = Pnn::new(PnnConfig::for_dataset(2, 2), s).unwrap();
        assert!(Trainer::new(quick_config())
            .train(&mut pnn, empty, data)
            .is_err());
    }
}
