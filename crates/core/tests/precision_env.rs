//! The `PNC_INFER_PRECISION` environment path of [`PlanPrecision`].
//!
//! Kept in its own integration-test binary because it mutates process
//! environment — no other test shares this process, so there is no race
//! with parallel test threads reading the variable.

use pnc_core::{PlanPrecision, PnnError};

#[test]
fn from_env_honours_valid_values_and_hard_errors_on_typos() {
    const VAR: &str = "PNC_INFER_PRECISION";

    std::env::remove_var(VAR);
    assert_eq!(
        PlanPrecision::from_env().expect("unset is the f64 default"),
        PlanPrecision::F64
    );

    for (value, expected) in [
        ("f64", PlanPrecision::F64),
        ("f32", PlanPrecision::F32),
        (" Q16 ", PlanPrecision::QuantI16),
        ("quant", PlanPrecision::QuantI16),
    ] {
        std::env::set_var(VAR, value);
        assert_eq!(
            PlanPrecision::from_env().expect("valid spelling"),
            expected,
            "{value:?}"
        );
    }

    // The hardened path: an operator typo must be a typed error naming the
    // variable, never a silent f64 fallback.
    for bad in ["f63", "fp32", "garbage", ""] {
        std::env::set_var(VAR, bad);
        match PlanPrecision::from_env() {
            Err(PnnError::Config { detail }) => {
                assert!(
                    detail.contains(VAR) && detail.contains(bad),
                    "error must name the variable and the bad value: {detail}"
                );
            }
            other => panic!("{bad:?} must fail from_env, got {other:?}"),
        }
    }

    std::env::remove_var(VAR);
}
