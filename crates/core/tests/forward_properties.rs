//! Property-based invariants of the pNN forward pass: outputs stay within
//! physical voltage bounds, variation perturbs but never destabilizes, and
//! the network is batch-consistent.

use pnc_core::{NoiseSample, Pnn, PnnConfig, VariationModel};
use pnc_linalg::Matrix;
use pnc_surrogate::{build_dataset, train_surrogate, DatasetConfig, SurrogateModel, TrainConfig};
use proptest::prelude::*;
use rand::SeedableRng;
use std::sync::{Arc, OnceLock};

fn surrogate() -> Arc<SurrogateModel> {
    static CELL: OnceLock<Arc<SurrogateModel>> = OnceLock::new();
    CELL.get_or_init(|| {
        let data = build_dataset(&DatasetConfig {
            samples: 150,
            sweep_points: 31,
        })
        .expect("builds");
        Arc::new(
            train_surrogate(
                &data,
                &TrainConfig {
                    layer_sizes: vec![10, 8, 4],
                    max_epochs: 300,
                    patience: 100,
                    ..TrainConfig::default()
                },
            )
            .expect("trains")
            .0,
        )
    })
    .clone()
}

/// The activation curve family is bounded by the η ranges the surrogate was
/// trained on; with headroom, no physical output voltage exceeds this.
const VOLTAGE_BOUND: f64 = 5.0;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Outputs are finite and bounded for arbitrary [0,1] inputs, random
    /// seeds, and random variation levels.
    #[test]
    fn outputs_are_finite_and_bounded(
        seed in 0u64..500,
        batch in 1usize..6,
        eps in 0.0..0.3f64,
        noise_seed in 0u64..500,
    ) {
        let pnn = Pnn::new(
            PnnConfig::for_dataset(3, 2).with_seed(seed),
            surrogate(),
        ).expect("valid config");
        let x = Matrix::from_fn(batch, 3, |i, j| {
            ((i * 13 + j * 7 + seed as usize) % 17) as f64 / 16.0
        });

        let noise = if eps > 0.0 {
            let mut rng = rand::rngs::StdRng::seed_from_u64(noise_seed);
            Some(NoiseSample::draw(
                &VariationModel::Uniform { epsilon: eps },
                &mut rng,
                &pnn.theta_shapes(),
                pnn.num_circuits(),
            ))
        } else {
            None
        };

        let out = pnn.infer(&x, noise.as_ref()).expect("forward pass");
        for &v in out.as_slice() {
            prop_assert!(v.is_finite(), "non-finite output");
            prop_assert!(v.abs() < VOLTAGE_BOUND, "output {v} out of physical range");
        }
    }

    /// Batch consistency: evaluating samples together or one-by-one gives
    /// identical outputs (no cross-sample leakage in the crossbar math).
    #[test]
    fn batch_rows_are_independent(seed in 0u64..200) {
        let pnn = Pnn::new(
            PnnConfig::for_dataset(4, 3).with_seed(seed),
            surrogate(),
        ).expect("valid config");
        let x = Matrix::from_fn(5, 4, |i, j| ((i * 5 + j * 3 + 1) % 11) as f64 / 10.0);
        let together = pnn.infer(&x, None).expect("batched");
        for i in 0..5 {
            let row = Matrix::from_fn(1, 4, |_, j| x[(i, j)]);
            let single = pnn.infer(&row, None).expect("single");
            for j in 0..3 {
                prop_assert!(
                    (together[(i, j)] - single[(0, j)]).abs() < 1e-12,
                    "row {i} output {j} differs batched vs single"
                );
            }
        }
    }

    /// Small variation produces small output perturbations (no chaotic
    /// amplification through the two-layer cascade).
    #[test]
    fn small_variation_small_effect(seed in 0u64..200, noise_seed in 0u64..200) {
        let pnn = Pnn::new(
            PnnConfig::for_dataset(3, 2).with_seed(seed),
            surrogate(),
        ).expect("valid config");
        let x = Matrix::from_fn(3, 3, |i, j| ((i + 2 * j) % 5) as f64 / 4.0);
        let nominal = pnn.infer(&x, None).expect("nominal");
        let mut rng = rand::rngs::StdRng::seed_from_u64(noise_seed);
        let noise = NoiseSample::draw(
            &VariationModel::Uniform { epsilon: 0.01 },
            &mut rng,
            &pnn.theta_shapes(),
            pnn.num_circuits(),
        );
        let varied = pnn.infer(&x, Some(&noise)).expect("varied");
        let max_shift = nominal.sub(&varied).expect("shapes").norm_inf();
        prop_assert!(max_shift < 0.25, "1% component noise moved outputs by {max_shift} V");
    }
}
