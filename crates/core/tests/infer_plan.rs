//! Parity contracts of the compiled inference plans (DESIGN.md §12),
//! exercised on the paper's network topology across the full 13-dataset
//! benchmark suite:
//!
//! * the f64 [`InferencePlan`] is **bit-identical** to the autodiff-graph
//!   forward — exact `assert_eq!`, at every batch chunking and at 1/2/8
//!   threads, on trained and freshly initialized networks alike;
//! * the f32 and Q1.14 fixed-point plans are bounded-error: aggregate
//!   classification agreement with the f64 path on held-out rows must be
//!   ≥ 99.5 %, and each is bit-identical to *itself* across thread counts.

use pnc_core::{
    InferencePlan, InferencePlanF32, InferencePlanQuant, LabeledData, NonlinearityGranularity, Pnn,
    PnnConfig, TrainConfig, Trainer, VariationModel,
};
use pnc_datasets::{benchmark_suite, Dataset};
use pnc_linalg::{Matrix, ParallelConfig};
use pnc_surrogate::{
    build_dataset, train_surrogate, DatasetConfig, SurrogateModel, TrainConfig as SurrogateTrain,
};
use std::sync::{Arc, OnceLock};

fn surrogate() -> Arc<SurrogateModel> {
    static CELL: OnceLock<Arc<SurrogateModel>> = OnceLock::new();
    CELL.get_or_init(|| {
        let data = build_dataset(&DatasetConfig {
            samples: 150,
            sweep_points: 31,
        })
        .expect("builds");
        Arc::new(
            train_surrogate(
                &data,
                &SurrogateTrain {
                    layer_sizes: vec![10, 8, 4],
                    max_epochs: 300,
                    patience: 100,
                    ..SurrogateTrain::default()
                },
            )
            .expect("trains")
            .0,
        )
    })
    .clone()
}

/// A network with the paper's `#input-3-#output` topology for a dataset,
/// briefly trained when `epochs > 0` (enough to move every parameter off
/// its initialization, so the plans face *trained* weights and circuits).
fn network_for(ds: &Dataset, train: &Dataset, val: &Dataset, seed: u64, epochs: usize) -> Pnn {
    let config = PnnConfig::for_dataset(ds.num_features(), ds.num_classes).with_seed(seed);
    let mut pnn = Pnn::new(config, surrogate()).expect("valid config");
    if epochs > 0 {
        Trainer::new(TrainConfig {
            variation: VariationModel::None,
            n_train_mc: 1,
            n_val_mc: 1,
            max_epochs: epochs,
            patience: epochs,
            parallel: ParallelConfig::serial(),
            ..TrainConfig::default()
        })
        .train(
            &mut pnn,
            LabeledData::new(&train.features, &train.labels).expect("train data"),
            LabeledData::new(&val.features, &val.labels).expect("val data"),
        )
        .expect("trains");
    }
    pnn
}

/// Small datasets get real training epochs; the larger ones ride along
/// untrained (same forward math, keeps the suite's runtime bounded).
fn training_epochs(ds: &Dataset) -> usize {
    if ds.len() <= 200 {
        6
    } else {
        0
    }
}

#[test]
fn f64_plan_is_bit_identical_on_all_13_datasets() {
    let mut checked = 0;
    for (i, ds) in benchmark_suite().iter().enumerate() {
        let (train, val, test) = ds.split(7);
        let pnn = network_for(ds, &train, &val, 40 + i as u64, training_epochs(ds));
        let graph_out = pnn.infer(&test.features, None).expect("graph forward");
        let mut plan = InferencePlan::compile(&pnn).expect("compiles");
        let plan_out = plan.infer(&test.features).expect("plan forward");
        assert_eq!(graph_out, plan_out, "{}: plan vs graph differ", ds.name);
        assert_eq!(
            pnn.predict(&test.features, None).expect("graph predict"),
            plan.predict(&test.features).expect("plan predict"),
            "{}: predictions differ",
            ds.name
        );
        checked += 1;
    }
    assert_eq!(checked, 13, "the suite must cover all 13 datasets");
}

#[test]
fn f64_plan_is_bit_identical_at_1_2_8_threads_and_any_chunking() {
    let suite = benchmark_suite();
    // Three datasets spanning small/medium feature counts keep this fast;
    // thread count and chunking cannot interact with the data anyway (the
    // forward has no cross-row coupling).
    for ds in suite.iter().take(3) {
        let (train, val, test) = ds.split(11);
        let pnn = network_for(ds, &train, &val, 5, training_epochs(ds));
        let graph_out = pnn.infer(&test.features, None).expect("graph forward");
        for capacity in [1, 3, 64] {
            let mut plan = InferencePlan::compile_with_capacity(&pnn, capacity).expect("compiles");
            assert_eq!(
                graph_out,
                plan.infer(&test.features).expect("plan forward"),
                "{}: capacity {capacity} chunking changed bits",
                ds.name
            );
            for threads in [1, 2, 8] {
                let par = plan
                    .infer_parallel(&test.features, &ParallelConfig::with_threads(threads))
                    .expect("parallel forward");
                assert_eq!(
                    graph_out, par,
                    "{}: {threads} threads / capacity {capacity} changed bits",
                    ds.name
                );
            }
        }
    }
}

#[test]
fn f64_plan_covers_every_granularity_and_headless_output() {
    let ds = &benchmark_suite()[0];
    let (_, _, test) = ds.split(3);
    for granularity in [
        NonlinearityGranularity::Shared,
        NonlinearityGranularity::PerLayer,
        NonlinearityGranularity::PerNeuron,
    ] {
        for activation_on_output in [true, false] {
            let mut config = PnnConfig::for_dataset(ds.num_features(), ds.num_classes);
            config.granularity = granularity;
            config.activation_on_output = activation_on_output;
            let pnn = Pnn::new(config, surrogate()).expect("valid config");
            let graph_out = pnn.infer(&test.features, None).expect("graph forward");
            let mut plan = InferencePlan::compile(&pnn).expect("compiles");
            assert_eq!(
                graph_out,
                plan.infer(&test.features).expect("plan forward"),
                "{granularity:?} / activation_on_output={activation_on_output}"
            );
        }
    }
}

#[test]
fn f32_and_quant_plans_agree_with_f64_on_995_permille_of_held_out_rows() {
    let mut total = 0usize;
    let mut f32_agree = 0usize;
    let mut quant_agree = 0usize;
    for (i, ds) in benchmark_suite().iter().enumerate() {
        let (train, val, test) = ds.split(17);
        let pnn = network_for(ds, &train, &val, 70 + i as u64, training_epochs(ds));
        let mut plan64 = InferencePlan::compile(&pnn).expect("f64 compiles");
        let mut plan32 = InferencePlanF32::compile(&pnn).expect("f32 compiles");
        let mut planq = InferencePlanQuant::compile(&pnn).expect("quant compiles");
        let p64 = plan64.predict(&test.features).expect("f64 predict");
        let p32 = plan32.predict(&test.features).expect("f32 predict");
        let pq = planq.predict(&test.features).expect("quant predict");
        total += p64.len();
        f32_agree += p64.iter().zip(&p32).filter(|(a, b)| a == b).count();
        quant_agree += p64.iter().zip(&pq).filter(|(a, b)| a == b).count();
    }
    let f32_rate = f32_agree as f64 / total as f64;
    let quant_rate = quant_agree as f64 / total as f64;
    assert!(
        f32_rate >= 0.995,
        "f32 agreement {f32_rate:.4} < 99.5% over {total} held-out rows"
    );
    assert!(
        quant_rate >= 0.995,
        "quant agreement {quant_rate:.4} < 99.5% over {total} held-out rows"
    );
}

#[test]
fn reduced_precision_plans_are_self_consistent_across_threads() {
    let ds = &benchmark_suite()[1];
    let (train, val, test) = ds.split(23);
    let pnn = network_for(ds, &train, &val, 9, training_epochs(ds));
    let mut plan32 = InferencePlanF32::compile_with_capacity(&pnn, 5).expect("f32 compiles");
    let mut planq = InferencePlanQuant::compile_with_capacity(&pnn, 5).expect("quant compiles");
    let serial32 = plan32.infer(&test.features).expect("f32 serial");
    let serialq = planq.infer(&test.features).expect("quant serial");
    for threads in [1, 2, 8] {
        let par = ParallelConfig::with_threads(threads);
        assert_eq!(
            serial32,
            plan32
                .infer_parallel(&test.features, &par)
                .expect("f32 par"),
            "f32 plan changed bits at {threads} threads"
        );
        assert_eq!(
            serialq,
            planq
                .infer_parallel(&test.features, &par)
                .expect("quant par"),
            "quant plan changed bits at {threads} threads"
        );
    }
}

/// Micro-batch chunking edge cases through all three precisions: an empty
/// batch (0 rows — a serving micro-batcher flushing an empty queue), and
/// row counts sitting exactly on, one under, and one over the capacity
/// boundary. Chunking must never panic and never change bits.
#[test]
fn empty_and_capacity_boundary_batches_chunk_correctly_at_all_precisions() {
    let ds = &benchmark_suite()[0];
    let (train, val, test) = ds.split(29);
    let pnn = network_for(ds, &train, &val, 3, training_epochs(ds));
    let graph_all = pnn.infer(&test.features, None).expect("graph forward");

    for capacity in [1, 3, 4] {
        let mut plan64 = InferencePlan::compile_with_capacity(&pnn, capacity).expect("f64");
        let mut plan32 = InferencePlanF32::compile_with_capacity(&pnn, capacity).expect("f32");
        let mut planq = InferencePlanQuant::compile_with_capacity(&pnn, capacity).expect("q16");

        // Reference outputs at full batch, per precision.
        let ref32 = plan32.infer(&test.features).expect("f32 full");
        let refq = planq.infer(&test.features).expect("q16 full");

        // 0 rows: must succeed with a 0-row output, not panic.
        let empty = Matrix::zeros(0, ds.num_features());
        for (name, out) in [
            ("f64", plan64.infer(&empty).expect("f64 empty")),
            ("f32", plan32.infer(&empty).expect("f32 empty")),
            ("q16", planq.infer(&empty).expect("q16 empty")),
        ] {
            assert_eq!(out.shape(), (0, ds.num_classes), "{name} empty batch");
        }
        assert_eq!(
            plan64.predict(&empty).expect("f64 empty predict"),
            Vec::<usize>::new()
        );
        // The parallel path must also tolerate 0 rows.
        for threads in [1, 2] {
            let par = ParallelConfig::with_threads(threads);
            assert_eq!(
                plan64
                    .infer_parallel(&empty, &par)
                    .expect("f64 par empty")
                    .shape(),
                (0, ds.num_classes)
            );
        }

        // capacity-1, capacity, and capacity+1 rows: the exact boundary at
        // which the chunk loop rolls over. Bits must match the full-batch
        // reference rows.
        for rows in [capacity.saturating_sub(1), capacity, capacity + 1] {
            let rows = rows.min(test.features.rows());
            let x = Matrix::from_fn(rows, ds.num_features(), |i, j| test.features[(i, j)]);
            let out64 = plan64.infer(&x).expect("f64 boundary");
            let out32 = plan32.infer(&x).expect("f32 boundary");
            let outq = planq.infer(&x).expect("q16 boundary");
            for i in 0..rows {
                assert_eq!(
                    out64.row(i),
                    graph_all.row(i),
                    "f64 cap {capacity} rows {rows}"
                );
                assert_eq!(out32.row(i), ref32.row(i), "f32 cap {capacity} rows {rows}");
                assert_eq!(outq.row(i), refq.row(i), "q16 cap {capacity} rows {rows}");
            }
        }
    }
}

#[test]
fn plan_rejects_wrong_input_width_and_output_shape() {
    let ds = &benchmark_suite()[0];
    let pnn = Pnn::new(
        PnnConfig::for_dataset(ds.num_features(), ds.num_classes),
        surrogate(),
    )
    .expect("valid config");
    let mut plan = InferencePlan::compile(&pnn).expect("compiles");
    let bad = Matrix::zeros(2, ds.num_features() + 1);
    assert!(plan.infer(&bad).is_err(), "wrong width must be rejected");
    let good = Matrix::zeros(2, ds.num_features());
    let mut wrong_out = Matrix::zeros(3, ds.num_classes);
    assert!(
        plan.infer_into(&good, &mut wrong_out).is_err(),
        "wrong output shape must be rejected"
    );
}
