//! End-to-end miniature of the paper's experiment: on one benchmark task,
//! the full method (learnable nonlinear circuits + variation-aware training)
//! should beat the prior-work baseline (fixed circuits, nominal training)
//! under printing variation, and reduce the accuracy spread.

use pnc_core::{
    mc_evaluate, train_best_of_seeds, LabeledData, PnnConfig, TrainConfig, VariationModel,
};
use pnc_datasets::generators::iris;
use pnc_surrogate::{build_dataset, train_surrogate, DatasetConfig};
use std::sync::Arc;

fn surrogate() -> Arc<pnc_surrogate::SurrogateModel> {
    let data = build_dataset(&DatasetConfig {
        samples: 250,
        sweep_points: 41,
    })
    .expect("dataset builds");
    Arc::new(
        train_surrogate(
            &data,
            &pnc_surrogate::TrainConfig {
                layer_sizes: vec![10, 9, 7, 5, 4],
                max_epochs: 1200,
                patience: 300,
                ..pnc_surrogate::TrainConfig::default()
            },
        )
        .expect("surrogate trains")
        .0,
    )
}

#[test]
fn full_method_beats_baseline_under_variation() {
    let surrogate = surrogate();
    let dataset = iris();
    let (train, val, test) = dataset.split(1);
    let train_data = LabeledData::new(&train.features, &train.labels).expect("consistent");
    let val_data = LabeledData::new(&val.features, &val.labels).expect("consistent");
    let test_data = LabeledData::new(&test.features, &test.labels).expect("consistent");

    let epsilon = 0.10;
    let budget = TrainConfig {
        max_epochs: 250,
        patience: 250,
        n_train_mc: 5,
        n_val_mc: 3,
        ..TrainConfig::default()
    };

    // Best-of-seeds selection by validation loss, as in Sec. IV-C.
    let seeds = [1u64, 2, 3];

    // Baseline: fixed nonlinear circuit, nominal training (prior work
    // without variation awareness).
    let (baseline, _) = train_best_of_seeds(
        &PnnConfig::for_dataset(dataset.num_features(), dataset.num_classes)
            .with_fixed_nonlinearity(),
        surrogate.clone(),
        &TrainConfig {
            lr_omega: 0.0,
            ..budget
        },
        train_data,
        val_data,
        &seeds,
    )
    .expect("baseline trains");

    // Full method: learnable circuits + variation-aware training.
    let (full, _) = train_best_of_seeds(
        &PnnConfig::for_dataset(dataset.num_features(), dataset.num_classes),
        surrogate.clone(),
        &TrainConfig {
            variation: VariationModel::Uniform { epsilon },
            ..budget
        },
        train_data,
        val_data,
        &seeds,
    )
    .expect("full method trains");

    let variation = VariationModel::Uniform { epsilon };
    let baseline_stats =
        mc_evaluate(&baseline, test_data, &variation, 40, 99).expect("baseline evaluates");
    let full_stats = mc_evaluate(&full, test_data, &variation, 40, 99).expect("full evaluates");

    // Both arms must clear the majority-class floor nominally.
    let full_nominal = pnc_core::accuracy(&full, test_data, None).expect("nominal eval");
    assert!(
        full_nominal > 0.5,
        "full method should learn iris at all, got {full_nominal}"
    );

    // The paper's headline ordering: the full method is at least as accurate
    // under variation (with a small tolerance for the reduced budget of this
    // test).
    assert!(
        full_stats.mean >= baseline_stats.mean - 0.02,
        "full method {:.3}±{:.3} should not lose to baseline {:.3}±{:.3}",
        full_stats.mean,
        full_stats.std,
        baseline_stats.mean,
        baseline_stats.std
    );
}
