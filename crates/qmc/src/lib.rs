//! Quasi Monte-Carlo sampling for design-space exploration.
//!
//! The paper (Sec. III-A) draws 10 000 representative points from the feasible
//! design space of the printed nonlinear circuit using quasi Monte-Carlo
//! sampling \[Sobol, 1990\]. This crate provides the two classic
//! low-discrepancy sequences:
//!
//! * [`Sobol`] — a Gray-code Sobol' sequence with embedded direction numbers
//!   for up to [`Sobol::MAX_DIM`] dimensions, the sampler actually used by the
//!   surrogate-modelling pipeline.
//! * [`Halton`] — the Halton sequence, kept as a cross-check and for tests.
//!
//! Both produce points in the half-open unit hypercube `[0, 1)^d`; use
//! [`scale_to_box`] to map them onto an arbitrary axis-aligned box such as the
//! component ranges of Tab. I.
//!
//! # Examples
//!
//! ```
//! use pnc_qmc::{Sobol, scale_to_box};
//!
//! # fn main() -> Result<(), pnc_qmc::QmcError> {
//! let mut sobol = Sobol::new(7)?;
//! let unit = sobol.next_point();
//! // Map onto the resistance range 10..500 Ohm in every coordinate.
//! let lo = [10.0; 7];
//! let hi = [500.0; 7];
//! let point = scale_to_box(&unit, &lo, &hi)?;
//! assert!(point.iter().all(|&x| (10.0..500.0).contains(&x)));
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod halton;
mod sobol;

pub use halton::Halton;
pub use sobol::Sobol;

use std::fmt;

/// Error type for quasi Monte-Carlo construction and scaling.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum QmcError {
    /// Requested dimension is zero or exceeds the supported maximum.
    UnsupportedDimension {
        /// The requested dimension.
        requested: usize,
        /// The maximum supported dimension.
        max: usize,
    },
    /// Bounds slices disagree with the point dimension, or a lower bound is
    /// not strictly below its upper bound.
    InvalidBounds {
        /// Human-readable description of the problem.
        detail: String,
    },
}

impl fmt::Display for QmcError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QmcError::UnsupportedDimension { requested, max } => {
                write!(
                    f,
                    "unsupported dimension {requested} (supported: 1..={max})"
                )
            }
            QmcError::InvalidBounds { detail } => write!(f, "invalid bounds: {detail}"),
        }
    }
}

impl std::error::Error for QmcError {}

/// Maps a point from the unit hypercube onto the box `[lo, hi)`.
///
/// # Errors
///
/// Returns [`QmcError::InvalidBounds`] if the slice lengths differ or any
/// `lo[i] >= hi[i]`.
///
/// # Examples
///
/// ```
/// let p = pnc_qmc::scale_to_box(&[0.5, 0.25], &[0.0, 10.0], &[2.0, 20.0])?;
/// assert_eq!(p, vec![1.0, 12.5]);
/// # Ok::<(), pnc_qmc::QmcError>(())
/// ```
pub fn scale_to_box(unit: &[f64], lo: &[f64], hi: &[f64]) -> Result<Vec<f64>, QmcError> {
    if unit.len() != lo.len() || unit.len() != hi.len() {
        return Err(QmcError::InvalidBounds {
            detail: format!(
                "point has {} coordinates but bounds have {} and {}",
                unit.len(),
                lo.len(),
                hi.len()
            ),
        });
    }
    for (i, (&l, &h)) in lo.iter().zip(hi).enumerate() {
        if l >= h || l.is_nan() || h.is_nan() {
            return Err(QmcError::InvalidBounds {
                detail: format!("lo[{i}] = {l} is not below hi[{i}] = {h}"),
            });
        }
    }
    Ok(unit
        .iter()
        .zip(lo.iter().zip(hi))
        .map(|(&u, (&l, &h))| l + u * (h - l))
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_to_box_maps_endpoints() {
        let p = scale_to_box(&[0.0, 1.0], &[2.0, 2.0], &[4.0, 4.0]).unwrap();
        assert_eq!(p, vec![2.0, 4.0]);
    }

    #[test]
    fn scale_to_box_rejects_length_mismatch() {
        assert!(scale_to_box(&[0.5], &[0.0, 0.0], &[1.0, 1.0]).is_err());
    }

    #[test]
    fn scale_to_box_rejects_inverted_bounds() {
        assert!(scale_to_box(&[0.5], &[1.0], &[0.0]).is_err());
    }

    #[test]
    fn error_display_is_informative() {
        let e = QmcError::UnsupportedDimension {
            requested: 99,
            max: 21,
        };
        assert!(e.to_string().contains("99"));
    }
}
