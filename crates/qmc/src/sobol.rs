use crate::QmcError;

/// Primitive-polynomial parameters for one Sobol' dimension: the polynomial
/// degree `s`, the interior coefficient bits `a`, and the initial odd
/// direction numbers `m[0..s]` (each `m[k] < 2^(k+1)` and odd).
struct Params {
    s: u32,
    a: u32,
    m: &'static [u32],
}

/// Direction-number parameters following the Joe–Kuo construction. Dimension
/// 1 (index 0) is the van der Corput sequence in base 2 and needs no entry.
/// Any table of odd `m_k < 2^k` over primitive polynomials yields a valid
/// Sobol' sequence; these are the standard low-dimension values.
const PARAMS: &[Params] = &[
    Params {
        s: 1,
        a: 0,
        m: &[1],
    }, // dim 2
    Params {
        s: 2,
        a: 1,
        m: &[1, 3],
    }, // dim 3
    Params {
        s: 3,
        a: 1,
        m: &[1, 3, 1],
    }, // dim 4
    Params {
        s: 3,
        a: 2,
        m: &[1, 1, 1],
    }, // dim 5
    Params {
        s: 4,
        a: 1,
        m: &[1, 1, 3, 3],
    }, // dim 6
    Params {
        s: 4,
        a: 4,
        m: &[1, 3, 5, 13],
    }, // dim 7
    Params {
        s: 5,
        a: 2,
        m: &[1, 1, 5, 5, 17],
    }, // dim 8
    Params {
        s: 5,
        a: 4,
        m: &[1, 1, 5, 5, 5],
    }, // dim 9
    Params {
        s: 5,
        a: 7,
        m: &[1, 1, 7, 11, 19],
    }, // dim 10
    Params {
        s: 5,
        a: 11,
        m: &[1, 1, 5, 1, 1],
    }, // dim 11
    Params {
        s: 5,
        a: 13,
        m: &[1, 1, 1, 3, 11],
    }, // dim 12
    Params {
        s: 5,
        a: 14,
        m: &[1, 3, 5, 5, 31],
    }, // dim 13
    Params {
        s: 6,
        a: 1,
        m: &[1, 3, 3, 9, 7, 49],
    }, // dim 14
    Params {
        s: 6,
        a: 13,
        m: &[1, 1, 1, 15, 21, 21],
    }, // dim 15
    Params {
        s: 6,
        a: 16,
        m: &[1, 3, 1, 13, 27, 49],
    }, // dim 16
    Params {
        s: 6,
        a: 19,
        m: &[1, 1, 1, 15, 7, 5],
    }, // dim 17
    Params {
        s: 6,
        a: 22,
        m: &[1, 3, 1, 3, 25, 61],
    }, // dim 18
    Params {
        s: 6,
        a: 25,
        m: &[1, 1, 5, 5, 19, 61],
    }, // dim 19
    Params {
        s: 7,
        a: 1,
        m: &[1, 3, 7, 11, 23, 15, 57],
    }, // dim 20
    Params {
        s: 7,
        a: 4,
        m: &[1, 1, 3, 5, 17, 13, 39],
    }, // dim 21
];

const BITS: u32 = 32;

/// Gray-code Sobol' low-discrepancy sequence in `[0, 1)^d`.
///
/// This is the quasi Monte-Carlo sampler used by the surrogate-modelling
/// pipeline (Sec. III-A of the paper) to draw representative points from the
/// feasible design space of the nonlinear circuit.
///
/// The generator is deterministic: two `Sobol` instances of the same
/// dimension always produce the same sequence. The sequence starts at index
/// 0, so the first point is the origin; emitting aligned power-of-two blocks
/// from index 0 preserves the digital-net stratification properties that the
/// tests below verify.
///
/// # Examples
///
/// ```
/// use pnc_qmc::Sobol;
///
/// # fn main() -> Result<(), pnc_qmc::QmcError> {
/// let mut s = Sobol::new(2)?;
/// assert_eq!(s.next_point(), vec![0.0, 0.0]); // index 0: the origin
/// assert_eq!(s.next_point(), vec![0.5, 0.5]);
/// let batch = s.take(3);
/// assert_eq!(batch.len(), 3);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Sobol {
    dim: usize,
    /// `directions[j][k]` is the k-th direction integer of coordinate j.
    directions: Vec<[u32; BITS as usize]>,
    /// Current Gray-code state per coordinate (the value of the point at
    /// `index`).
    state: Vec<u32>,
    /// Index of the next point to emit.
    index: u64,
}

impl Sobol {
    /// Maximum supported dimension.
    pub const MAX_DIM: usize = PARAMS.len() + 1;

    /// Creates a Sobol' sequence of the given dimension.
    ///
    /// # Errors
    ///
    /// Returns [`QmcError::UnsupportedDimension`] if `dim` is zero or larger
    /// than [`Sobol::MAX_DIM`].
    pub fn new(dim: usize) -> Result<Self, QmcError> {
        if dim == 0 || dim > Self::MAX_DIM {
            return Err(QmcError::UnsupportedDimension {
                requested: dim,
                max: Self::MAX_DIM,
            });
        }
        let mut directions = Vec::with_capacity(dim);
        // Dimension 1: van der Corput, v_k = 2^(31-k).
        let mut first = [0u32; BITS as usize];
        for (k, v) in first.iter_mut().enumerate() {
            *v = 1 << (BITS - 1 - k as u32);
        }
        directions.push(first);

        for p in PARAMS.iter().take(dim.saturating_sub(1)) {
            let s = p.s as usize;
            let mut v = [0u32; BITS as usize];
            // Seed the first s direction integers from the initial m values:
            // v_k = m_k * 2^(31-k).
            for (k, slot) in v.iter_mut().enumerate().take(s.min(BITS as usize)) {
                debug_assert!(p.m[k] % 2 == 1, "initial direction numbers must be odd");
                debug_assert!(p.m[k] < (1 << (k + 1)), "m_k must be below 2^(k+1)");
                *slot = p.m[k] << (BITS - 1 - k as u32);
            }
            // Recurrence for the remaining direction integers.
            for k in s..BITS as usize {
                let mut value = v[k - s] ^ (v[k - s] >> p.s);
                for bit in 1..s {
                    let coeff = (p.a >> (s - 1 - bit)) & 1;
                    if coeff == 1 {
                        value ^= v[k - bit];
                    }
                }
                v[k] = value;
            }
            directions.push(v);
        }

        Ok(Sobol {
            dim,
            directions,
            state: vec![0; dim],
            index: 0,
        })
    }

    /// The dimension of generated points.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Returns the next point of the sequence.
    ///
    /// Never exhausts in practice (the period is 2³² points).
    pub fn next_point(&mut self) -> Vec<f64> {
        let scale = 1.0 / (1u64 << BITS) as f64;
        let out = self.state.iter().map(|&s| s as f64 * scale).collect();
        // Gray-code update towards the next index: flip the direction integer
        // indexed by the lowest zero bit of the current index.
        let c = self.index.trailing_ones() as usize;
        self.index += 1;
        for j in 0..self.dim {
            self.state[j] ^= self.directions[j][c];
        }
        out
    }

    /// Returns the next `n` points of the sequence.
    pub fn take(&mut self, n: usize) -> Vec<Vec<f64>> {
        (0..n).map(|_| self.next_point()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_zero_and_oversized_dimension() {
        assert!(Sobol::new(0).is_err());
        assert!(Sobol::new(Sobol::MAX_DIM + 1).is_err());
        assert!(Sobol::new(Sobol::MAX_DIM).is_ok());
    }

    #[test]
    fn first_dimension_is_van_der_corput() {
        let mut s = Sobol::new(1).unwrap();
        let seq: Vec<f64> = (0..8).map(|_| s.next_point()[0]).collect();
        // Gray-code ordering of the base-2 van der Corput sequence.
        assert_eq!(seq, vec![0.0, 0.5, 0.75, 0.25, 0.375, 0.875, 0.625, 0.125]);
    }

    #[test]
    fn points_are_in_unit_cube() {
        let mut s = Sobol::new(7).unwrap();
        for p in s.take(1000) {
            assert_eq!(p.len(), 7);
            for x in p {
                assert!((0.0..1.0).contains(&x), "coordinate {x} out of range");
            }
        }
    }

    #[test]
    fn sequence_is_deterministic() {
        let a: Vec<_> = Sobol::new(5).unwrap().take(50);
        let b: Vec<_> = Sobol::new(5).unwrap().take(50);
        assert_eq!(a, b);
    }

    #[test]
    fn each_power_of_two_block_is_stratified() {
        // Within the first 2^k points, every dyadic interval of length 2^-k
        // in each coordinate contains exactly one point — the defining (0, m, s)
        // net property in base 2 for m = 0.
        for dim in [2usize, 3, 7, 10] {
            let mut s = Sobol::new(dim).unwrap();
            let k = 4; // 16 points
            let pts = s.take(1 << k);
            for j in 0..dim {
                let mut seen = vec![false; 1 << k];
                for p in &pts {
                    let cell = (p[j] * (1 << k) as f64) as usize;
                    assert!(!seen[cell], "dim {dim}, coord {j}: cell {cell} hit twice");
                    seen[cell] = true;
                }
            }
        }
    }

    #[test]
    fn pairwise_2d_stratification_of_first_coordinates() {
        // The first 16 points of a 2-D Sobol sequence hit every cell of the
        // 4x4 grid exactly once.
        let mut s = Sobol::new(2).unwrap();
        let pts = s.take(16);
        let mut seen = [[false; 4]; 4];
        for p in pts {
            let i = (p[0] * 4.0) as usize;
            let j = (p[1] * 4.0) as usize;
            assert!(!seen[i][j], "cell ({i}, {j}) hit twice");
            seen[i][j] = true;
        }
    }

    #[test]
    fn mean_converges_to_half_faster_than_random() {
        let mut s = Sobol::new(7).unwrap();
        let n = 4096;
        let pts = s.take(n);
        for j in 0..7 {
            let mean: f64 = pts.iter().map(|p| p[j]).sum::<f64>() / n as f64;
            assert!(
                (mean - 0.5).abs() < 1e-3,
                "coordinate {j} mean {mean} too far from 0.5"
            );
        }
    }

    #[test]
    fn direction_number_invariants_hold() {
        for p in PARAMS {
            assert_eq!(p.m.len(), p.s as usize);
            for (k, &m) in p.m.iter().enumerate() {
                assert_eq!(m % 2, 1, "m must be odd");
                assert!(m < (1 << (k + 1)), "m_k must be < 2^(k+1)");
            }
            assert!(
                p.a < (1 << (p.s.saturating_sub(1))),
                "a must fit in s-1 bits"
            );
        }
    }
}
