use crate::QmcError;

/// The first 21 primes, one radix per supported dimension.
const PRIMES: &[u32] = &[
    2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47, 53, 59, 61, 67, 71, 73,
];

/// Halton low-discrepancy sequence in `[0, 1)^d`.
///
/// Provided as a second quasi Monte-Carlo sampler to cross-check the
/// [`Sobol`](crate::Sobol) sequence used by the main pipeline: both should
/// give statistically indistinguishable surrogate datasets. The `i`-th point's
/// `j`-th coordinate is the radical inverse of `i` in the `j`-th prime base.
///
/// Like the Sobol' generator, the sequence skips index 0 (the origin).
///
/// # Examples
///
/// ```
/// use pnc_qmc::Halton;
///
/// # fn main() -> Result<(), pnc_qmc::QmcError> {
/// let mut h = Halton::new(2)?;
/// let p = h.next_point();
/// assert_eq!(p, vec![0.5, 1.0 / 3.0]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Halton {
    dim: usize,
    index: u64,
}

impl Halton {
    /// Maximum supported dimension.
    pub const MAX_DIM: usize = PRIMES.len();

    /// Creates a Halton sequence of the given dimension.
    ///
    /// # Errors
    ///
    /// Returns [`QmcError::UnsupportedDimension`] if `dim` is zero or larger
    /// than [`Halton::MAX_DIM`].
    pub fn new(dim: usize) -> Result<Self, QmcError> {
        if dim == 0 || dim > Self::MAX_DIM {
            return Err(QmcError::UnsupportedDimension {
                requested: dim,
                max: Self::MAX_DIM,
            });
        }
        Ok(Halton { dim, index: 0 })
    }

    /// The dimension of generated points.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Radical inverse of `i` in base `b`.
    fn radical_inverse(mut i: u64, b: u64) -> f64 {
        let mut result = 0.0;
        let mut f = 1.0 / b as f64;
        while i > 0 {
            result += (i % b) as f64 * f;
            i /= b;
            f /= b as f64;
        }
        result
    }

    /// Returns the next point of the sequence.
    pub fn next_point(&mut self) -> Vec<f64> {
        self.index += 1;
        (0..self.dim)
            .map(|j| Self::radical_inverse(self.index, PRIMES[j] as u64))
            .collect()
    }

    /// Returns the next `n` points of the sequence.
    pub fn take(&mut self, n: usize) -> Vec<Vec<f64>> {
        (0..n).map(|_| self.next_point()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_bad_dimensions() {
        assert!(Halton::new(0).is_err());
        assert!(Halton::new(Halton::MAX_DIM + 1).is_err());
    }

    #[test]
    fn base_two_sequence_is_van_der_corput() {
        let mut h = Halton::new(1).unwrap();
        let seq: Vec<f64> = (0..6).map(|_| h.next_point()[0]).collect();
        assert_eq!(seq, vec![0.5, 0.25, 0.75, 0.125, 0.625, 0.375]);
    }

    #[test]
    fn base_three_coordinate() {
        let mut h = Halton::new(2).unwrap();
        let seq: Vec<f64> = (0..4).map(|_| h.next_point()[1]).collect();
        let expected = [1.0 / 3.0, 2.0 / 3.0, 1.0 / 9.0, 4.0 / 9.0];
        for (a, e) in seq.iter().zip(expected) {
            assert!((a - e).abs() < 1e-12);
        }
    }

    #[test]
    fn points_in_unit_cube_and_deterministic() {
        let a = Halton::new(7).unwrap().take(500);
        let b = Halton::new(7).unwrap().take(500);
        assert_eq!(a, b);
        for p in a {
            for x in p {
                assert!((0.0..1.0).contains(&x));
            }
        }
    }

    #[test]
    fn coordinate_means_near_half() {
        let pts = Halton::new(5).unwrap().take(4000);
        for j in 0..5 {
            let mean: f64 = pts.iter().map(|p| p[j]).sum::<f64>() / pts.len() as f64;
            assert!((mean - 0.5).abs() < 0.01, "coord {j} mean {mean}");
        }
    }
}
