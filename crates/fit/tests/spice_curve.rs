//! Integration: fit Eq. 2 to actual simulated transfer curves (Fig. 4 left).

use pnc_fit::fit_ptanh;
use pnc_spice::circuits::{characteristic_curve, NonlinearCircuitParams};

#[test]
fn nominal_circuit_curve_is_tanh_like() {
    let curve = characteristic_curve(&NonlinearCircuitParams::nominal(), 81).unwrap();
    let fit = fit_ptanh(&curve).unwrap();
    assert!(
        fit.rmse < 0.02,
        "the simulated curve should be well described by Eq. 2, rmse {}",
        fit.rmse
    );
    // Rising activation: positive amplitude, transition inside the supply range.
    assert!(fit.curve.eta[1] > 0.05, "eta {:?}", fit.curve.eta);
    assert!(
        (0.0..=1.0).contains(&fit.curve.eta[2]),
        "midpoint outside supply range: {:?}",
        fit.curve.eta
    );
}

#[test]
fn fits_hold_across_the_design_space_corners() {
    // A few corner-ish parameterizations: shapes differ but all stay
    // ptanh-describable within a loose tolerance.
    let cases = [
        NonlinearCircuitParams {
            r1: 100.0,
            r2: 90.0,
            r3: 400_000.0,
            r4: 300_000.0,
            r5: 300_000.0,
            w: 800e-6,
            l: 10e-6,
        },
        NonlinearCircuitParams {
            r1: 400.0,
            r2: 50.0,
            r3: 50_000.0,
            r4: 20_000.0,
            r5: 50_000.0,
            w: 200e-6,
            l: 70e-6,
        },
        NonlinearCircuitParams {
            r1: 300.0,
            r2: 200.0,
            r3: 100_000.0,
            r4: 80_000.0,
            r5: 400_000.0,
            w: 500e-6,
            l: 30e-6,
        },
    ];
    for (i, params) in cases.iter().enumerate() {
        let curve = characteristic_curve(params, 81).unwrap();
        let fit = fit_ptanh(&curve).unwrap();
        assert!(fit.rmse < 0.05, "case {i}: rmse {}", fit.rmse);
    }
}
