//! Property-based checks of the Levenberg–Marquardt contract: a `converged`
//! result always carries a finite cost, and pathological models surface as
//! errors or `converged: false` — never as a silent convergence claim.

use pnc_fit::{levenberg_marquardt, FitError, LmOptions};
use pnc_linalg::Matrix;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// On random exponential-decay fitting problems (including noisy and
    /// badly-started ones), `converged` implies a finite cost, and the cost
    /// never exceeds the initial cost.
    #[test]
    fn converged_implies_finite_cost(
        amp in 0.1..5.0f64,
        rate in 0.1..3.0f64,
        start_amp in -2.0..6.0f64,
        start_rate in 0.01..4.0f64,
        noise in 0.0..0.2f64,
    ) {
        let data: Vec<(f64, f64)> = (0..25)
            .map(|i| {
                let x = i as f64 * 0.15;
                // Deterministic pseudo-noise, varied by the proptest inputs.
                let wiggle = ((i * 7 + 3) % 11) as f64 / 11.0 - 0.5;
                (x, amp * (-rate * x).exp() + noise * wiggle)
            })
            .collect();

        let initial = [start_amp, start_rate];
        let initial_cost: f64 = 0.5
            * data
                .iter()
                .map(|&(x, y)| (initial[0] * (-initial[1] * x).exp() - y).powi(2))
                .sum::<f64>();

        let outcome = levenberg_marquardt(&initial, LmOptions::default(), |p| {
            let r: Vec<f64> = data
                .iter()
                .map(|&(x, y)| p[0] * (-p[1] * x).exp() - y)
                .collect();
            let j = Matrix::from_fn(data.len(), 2, |i, col| {
                let x = data[i].0;
                let e = (-p[1] * x).exp();
                if col == 0 { e } else { -p[0] * x * e }
            });
            (r, j)
        });

        match outcome {
            Ok(result) => {
                if result.converged {
                    prop_assert!(
                        result.cost.is_finite(),
                        "converged with cost {}",
                        result.cost
                    );
                }
                prop_assert!(result.cost <= initial_cost + 1e-12);
                prop_assert!(result.params.iter().all(|p| p.is_finite()));
            }
            // A degenerate start (e.g. a vanishing Jacobian) may leave the
            // damped normal equations singular at every λ — the documented
            // error, never a silent convergence claim.
            Err(FitError::InvalidData { .. }) | Err(FitError::Singular { .. }) => {}
            Err(other) => {
                prop_assert!(false, "unexpected error {other:?}");
            }
        }
    }

    /// A model that is NaN everywhere except the starting point must either
    /// error or report `converged: false` — and never a non-finite cost with
    /// `converged: true`.
    #[test]
    fn nan_wall_never_claims_convergence(start in -3.0..3.0f64) {
        let result = levenberg_marquardt(&[start], LmOptions::default(), |p| {
            let r = vec![if p[0] == start { 1.0 } else { f64::NAN }];
            (r, Matrix::from_rows(&[&[1.0]]).unwrap())
        })
        .unwrap();
        prop_assert!(!result.converged);
        prop_assert!(result.cost.is_finite());
    }

    /// Non-finite residuals at the starting point are always rejected as
    /// invalid data, whatever the non-finite value.
    #[test]
    fn nonfinite_start_is_invalid_data(which in 0usize..3) {
        let bad = [f64::NAN, f64::INFINITY, f64::NEG_INFINITY][which];
        let err = levenberg_marquardt(&[0.0], LmOptions::default(), |_| {
            (vec![bad], Matrix::from_rows(&[&[1.0]]).unwrap())
        });
        let is_invalid_data = matches!(err, Err(FitError::InvalidData { .. }));
        prop_assert!(is_invalid_data);
    }
}
