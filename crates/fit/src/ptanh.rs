use crate::{levenberg_marquardt, FitError, LmOptions};
use pnc_linalg::Matrix;
use pnc_obs::{Counter, Histogram};
use serde::{Deserialize, Serialize};

// Observability: completed ptanh extractions and their data-only fit
// quality. Catalogued in docs/METRICS.md.
static OBS_FITS: Counter = Counter::new("fit.ptanh.fits");
static OBS_RMSE: Histogram = Histogram::new("fit.ptanh.rmse");

fn obs_register() {
    static ONCE: std::sync::Once = std::sync::Once::new();
    ONCE.call_once(|| {
        crate::lm::obs_register();
        OBS_FITS.register();
        OBS_RMSE.register();
    });
}

/// The modified tanh curve of Eq. 2: `ptanh(v) = η₁ + η₂·tanh((v − η₃)·η₄)`.
///
/// Both the activation circuit (Eq. 2) and the negative-weight circuit
/// (Eq. 3, the negation) are expressed with this model — a negated curve is
/// simply `[−η₁, −η₂, η₃, η₄]` (see [`Ptanh::negated`]).
///
/// # Examples
///
/// ```
/// use pnc_fit::Ptanh;
///
/// let p = Ptanh { eta: [0.5, 0.5, 0.5, 4.0] };
/// assert!((p.eval(0.5) - 0.5).abs() < 1e-12);     // centred at η₃
/// assert!(p.eval(1.0) > 0.9);                      // saturates towards η₁+η₂
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Ptanh {
    /// The auxiliary parameters `[η₁, η₂, η₃, η₄]`.
    pub eta: [f64; 4],
}

impl Ptanh {
    /// Evaluates the curve at `v`.
    pub fn eval(&self, v: f64) -> f64 {
        let [e1, e2, e3, e4] = self.eta;
        e1 + e2 * ((v - e3) * e4).tanh()
    }

    /// Evaluates the derivative `d ptanh / dv`.
    pub fn derivative(&self, v: f64) -> f64 {
        let [_, e2, e3, e4] = self.eta;
        let u = (v - e3) * e4;
        let t = u.tanh();
        e2 * e4 * (1.0 - t * t)
    }

    /// The gradient of `eval(v)` with respect to the four η parameters.
    pub fn grad_eta(&self, v: f64) -> [f64; 4] {
        let [_, e2, e3, e4] = self.eta;
        let u = (v - e3) * e4;
        let t = u.tanh();
        let sech2 = 1.0 - t * t;
        [1.0, t, -e2 * e4 * sech2, e2 * (v - e3) * sech2]
    }

    /// The negated curve `−ptanh(v)`, i.e. the model of the negative-weight
    /// circuit (Eq. 3).
    pub fn negated(&self) -> Ptanh {
        let [e1, e2, e3, e4] = self.eta;
        Ptanh {
            eta: [-e1, -e2, e3, e4],
        }
    }

    /// Canonicalizes the sign ambiguity `(η₂, η₄) ↦ (−η₂, −η₄)` (which leaves
    /// the curve unchanged) so that `η₄ >= 0`.
    pub fn canonical(&self) -> Ptanh {
        if self.eta[3] < 0.0 {
            Ptanh {
                eta: [self.eta[0], -self.eta[1], self.eta[2], -self.eta[3]],
            }
        } else {
            *self
        }
    }
}

/// A fitted ptanh curve with its fit quality.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PtanhFit {
    /// The fitted curve (canonicalized to `η₄ >= 0`).
    pub curve: Ptanh,
    /// Root-mean-square residual of the fit, in volts.
    pub rmse: f64,
    /// Whether the optimizer reported convergence.
    pub converged: bool,
}

/// Fits Eq. 2 to `(V_in, V_out)` samples with default options.
///
/// This is the extraction step of the surrogate pipeline: the green simulated
/// points of Fig. 4 (left) in, the red fitted curve out.
///
/// # Errors
///
/// Returns [`FitError::InvalidData`] if fewer than 5 points are given, any
/// value is non-finite, or all `x` are identical.
///
/// # Examples
///
/// ```
/// use pnc_fit::{fit_ptanh, Ptanh};
///
/// # fn main() -> Result<(), pnc_fit::FitError> {
/// let truth = Ptanh { eta: [0.45, 0.35, 0.6, 8.0] };
/// let pts: Vec<(f64, f64)> = (0..60)
///     .map(|i| { let x = i as f64 / 59.0; (x, truth.eval(x)) })
///     .collect();
/// let fit = fit_ptanh(&pts)?;
/// assert!(fit.rmse < 1e-4);
/// # Ok(())
/// # }
/// ```
pub fn fit_ptanh(points: &[(f64, f64)]) -> Result<PtanhFit, FitError> {
    fit_ptanh_with(points, LmOptions::default())
}

/// Anchor priors pinning the η components that flat or saturated curves
/// leave unidentified (any η₃/η₄ describes a constant curve equally well).
/// The weights are small enough that well-identified fits are biased by
/// less than ~10⁻⁵ V, but they keep the surrogate's regression targets in a
/// compact, learnable range instead of scattering to arbitrary values.
const ETA_PRIOR: [f64; 4] = [0.5, 0.0, 0.5, 5.0];
const ETA_PRIOR_WEIGHT: [f64; 4] = [0.01, 0.01, 0.01, 0.001];

/// Fits Eq. 2 to `(V_in, V_out)` samples with explicit optimizer options.
///
/// Initialization is data-driven (plateau levels, half-swing crossing,
/// steepest slope) with a small deterministic multi-start fallback for flat
/// or noisy curves. A very light Tikhonov anchor (see the module source)
/// keeps non-identified parameters of degenerate curves bounded; the
/// reported [`PtanhFit::rmse`] is computed from the data residuals only.
///
/// # Errors
///
/// See [`fit_ptanh`].
pub fn fit_ptanh_with(points: &[(f64, f64)], options: LmOptions) -> Result<PtanhFit, FitError> {
    obs_register();
    validate(points)?;

    let starts = initial_guesses(points);
    let mut best: Option<(f64, crate::LmResult)> = None;
    let n = points.len();

    for start in starts {
        let result = levenberg_marquardt(&start, options, |p| {
            let curve = Ptanh {
                eta: [p[0], p[1], p[2], p[3]],
            };
            let mut r: Vec<f64> = points.iter().map(|&(x, y)| curve.eval(x) - y).collect();
            for k in 0..4 {
                r.push(ETA_PRIOR_WEIGHT[k] * (p[k] - ETA_PRIOR[k]));
            }
            let j = Matrix::from_fn(n + 4, 4, |i, col| {
                if i < n {
                    curve.grad_eta(points[i].0)[col]
                } else if i - n == col {
                    ETA_PRIOR_WEIGHT[col]
                } else {
                    0.0
                }
            });
            (r, j)
        })?;
        let better = best.as_ref().is_none_or(|(c, _)| result.cost < *c);
        if better {
            best = Some((result.cost, result));
        }
        // Early exit on an essentially perfect fit.
        if best
            .as_ref()
            .is_some_and(|(c, _)| *c < 1e-18 * points.len() as f64)
        {
            break;
        }
    }

    let Some((_, result)) = best else {
        return Err(FitError::InvalidData {
            detail: "no optimizer start produced a result".into(),
        });
    };
    let curve = Ptanh {
        eta: [
            result.params[0],
            result.params[1],
            result.params[2],
            result.params[3],
        ],
    }
    .canonical();
    // Data-only fit quality (the anchor residuals are excluded).
    let data_sse: f64 = points
        .iter()
        .map(|&(x, y)| (curve.eval(x) - y).powi(2))
        .sum();
    let rmse = (data_sse / points.len() as f64).sqrt();
    OBS_FITS.increment();
    OBS_RMSE.observe(rmse);
    Ok(PtanhFit {
        curve,
        rmse,
        converged: result.converged,
    })
}

fn validate(points: &[(f64, f64)]) -> Result<(), FitError> {
    if points.len() < 5 {
        return Err(FitError::InvalidData {
            detail: format!("need at least 5 points, got {}", points.len()),
        });
    }
    if points
        .iter()
        .any(|&(x, y)| !x.is_finite() || !y.is_finite())
    {
        return Err(FitError::InvalidData {
            detail: "non-finite sample".into(),
        });
    }
    let x0 = points[0].0;
    if points.iter().all(|&(x, _)| x == x0) {
        return Err(FitError::InvalidData {
            detail: "all x values identical".into(),
        });
    }
    Ok(())
}

/// Data-driven initial guesses: primary estimate plus deterministic
/// perturbations for robustness on flat/noisy curves.
fn initial_guesses(points: &[(f64, f64)]) -> Vec<[f64; 4]> {
    let mut sorted: Vec<(f64, f64)> = points.to_vec();
    sorted.sort_by(|a, b| a.0.total_cmp(&b.0));

    // `validate` guarantees non-empty input; an empty start list simply
    // yields `FitError::InvalidData` upstream instead of a panic here.
    let (Some(&(x_first, y_first)), Some(&(x_last, y_last))) = (sorted.first(), sorted.last())
    else {
        return Vec::new();
    };

    let y_min = sorted.iter().map(|p| p.1).fold(f64::INFINITY, f64::min);
    let y_max = sorted.iter().map(|p| p.1).fold(f64::NEG_INFINITY, f64::max);
    let e1 = 0.5 * (y_min + y_max);
    let half_swing = 0.5 * (y_max - y_min);

    // Overall direction: rising curves get η₂ > 0.
    let rising = y_last >= y_first;

    // Mid-level crossing for η₃.
    let e3 = sorted
        .windows(2)
        .find(|w| (w[0].1 - e1) * (w[1].1 - e1) <= 0.0 && w[0].1 != w[1].1)
        .map(|w| {
            let t = (e1 - w[0].1) / (w[1].1 - w[0].1);
            w[0].0 + t * (w[1].0 - w[0].0)
        })
        .unwrap_or_else(|| 0.5 * (x_first + x_last));

    // Steepest finite-difference slope for η₄ ≈ slope / η₂.
    let steepest = sorted
        .windows(2)
        .filter(|w| w[1].0 > w[0].0)
        .map(|w| (w[1].1 - w[0].1) / (w[1].0 - w[0].0))
        .fold(0.0_f64, |m, s| if s.abs() > m.abs() { s } else { m });
    let amp = if rising {
        half_swing.max(1e-6)
    } else {
        -half_swing.max(1e-6)
    };
    let e4 = (steepest / amp).abs().clamp(0.5, 100.0);

    let x_span = x_last - x_first;
    vec![
        [e1, amp, e3, e4],
        [e1, amp, e3, 2.0],
        [e1, amp, e3 + 0.25 * x_span, 0.5 * e4],
        [e1, amp, e3 - 0.25 * x_span, 2.0 * e4],
        [e1, 2.0 * amp, e3, 0.5],
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn samples(curve: &Ptanh, n: usize) -> Vec<(f64, f64)> {
        (0..n)
            .map(|i| {
                let x = i as f64 / (n - 1) as f64;
                (x, curve.eval(x))
            })
            .collect()
    }

    #[test]
    fn eval_and_derivative_are_consistent() {
        let p = Ptanh {
            eta: [0.4, 0.3, 0.5, 7.0],
        };
        for i in 0..10 {
            let v = i as f64 / 9.0;
            let h = 1e-7;
            let fd = (p.eval(v + h) - p.eval(v - h)) / (2.0 * h);
            assert!((fd - p.derivative(v)).abs() < 1e-6);
        }
    }

    #[test]
    fn grad_eta_matches_finite_difference() {
        let p = Ptanh {
            eta: [0.4, -0.3, 0.6, 5.0],
        };
        let v = 0.7;
        let g = p.grad_eta(v);
        for (k, &gk) in g.iter().enumerate() {
            let h = 1e-7;
            let mut up = p;
            up.eta[k] += h;
            let mut dn = p;
            dn.eta[k] -= h;
            let fd = (up.eval(v) - dn.eval(v)) / (2.0 * h);
            assert!((fd - gk).abs() < 1e-6, "component {k}: {fd} vs {gk}");
        }
    }

    #[test]
    fn negated_curve_is_pointwise_negation() {
        let p = Ptanh {
            eta: [0.5, 0.4, 0.5, 6.0],
        };
        let n = p.negated();
        for i in 0..10 {
            let v = i as f64 / 9.0;
            assert!((n.eval(v) + p.eval(v)).abs() < 1e-12);
        }
    }

    #[test]
    fn canonical_fixes_sign_ambiguity() {
        let p = Ptanh {
            eta: [0.5, 0.4, 0.5, -6.0],
        };
        let c = p.canonical();
        assert!(c.eta[3] > 0.0);
        for i in 0..10 {
            let v = i as f64 / 9.0;
            assert!((c.eval(v) - p.eval(v)).abs() < 1e-12);
        }
    }

    #[test]
    fn recovers_exact_rising_curve() {
        let truth = Ptanh {
            eta: [0.5, 0.4, 0.55, 9.0],
        };
        let fit = fit_ptanh(&samples(&truth, 80)).unwrap();
        assert!(fit.rmse < 1e-5, "rmse {}", fit.rmse);
        for i in 0..20 {
            let v = i as f64 / 19.0;
            assert!((fit.curve.eval(v) - truth.eval(v)).abs() < 1e-4);
        }
    }

    #[test]
    fn recovers_exact_falling_curve() {
        let truth = Ptanh {
            eta: [0.5, -0.35, 0.4, 12.0],
        };
        let fit = fit_ptanh(&samples(&truth, 80)).unwrap();
        // The identifiability anchor biases the saturated falling curve by a
        // few tens of microvolts.
        assert!(fit.rmse < 1e-4, "rmse {}", fit.rmse);
        assert!(
            fit.curve.eta[1] < 0.0,
            "falling curve keeps negative η₂ after canonicalization"
        );
    }

    #[test]
    fn tolerates_noise() {
        let truth = Ptanh {
            eta: [0.5, 0.4, 0.5, 6.0],
        };
        // Deterministic pseudo-noise.
        let pts: Vec<(f64, f64)> = (0..100)
            .map(|i| {
                let x = i as f64 / 99.0;
                let noise = 0.005 * ((i * 2654435761_usize) as f64 / usize::MAX as f64 - 0.5);
                (x, truth.eval(x) + noise)
            })
            .collect();
        let fit = fit_ptanh(&pts).unwrap();
        assert!(fit.rmse < 0.01, "rmse {}", fit.rmse);
        assert!((fit.curve.eta[2] - 0.5).abs() < 0.05);
    }

    #[test]
    fn fits_flat_curve_without_blowup() {
        let pts: Vec<(f64, f64)> = (0..50).map(|i| (i as f64 / 49.0, 0.81)).collect();
        let fit = fit_ptanh(&pts).unwrap();
        assert!(fit.rmse < 1e-4);
        // A flat curve is represented with vanishing amplitude or slope.
        let swing = (fit.curve.eval(1.0) - fit.curve.eval(0.0)).abs();
        assert!(swing < 1e-3, "swing {swing}");
    }

    #[test]
    fn fits_saturating_half_curve() {
        // Only the upper half of the sigmoid is visible in the window.
        let truth = Ptanh {
            eta: [0.5, 0.45, -0.2, 4.0],
        };
        let fit = fit_ptanh(&samples(&truth, 60)).unwrap();
        // Curve values must match in the observed window even if η is not
        // uniquely identified.
        for i in 0..20 {
            let v = i as f64 / 19.0;
            assert!(
                (fit.curve.eval(v) - truth.eval(v)).abs() < 2e-3,
                "mismatch at {v}"
            );
        }
    }

    #[test]
    fn rejects_too_few_points() {
        let pts = vec![(0.0, 0.0), (1.0, 1.0)];
        assert!(matches!(fit_ptanh(&pts), Err(FitError::InvalidData { .. })));
    }

    #[test]
    fn rejects_nan() {
        let pts = vec![
            (0.0, 0.0),
            (0.2, f64::NAN),
            (0.4, 0.1),
            (0.6, 0.4),
            (0.8, 0.9),
        ];
        assert!(fit_ptanh(&pts).is_err());
    }

    #[test]
    fn rejects_degenerate_x() {
        let pts = vec![(0.5, 0.0), (0.5, 0.1), (0.5, 0.2), (0.5, 0.3), (0.5, 0.4)];
        assert!(fit_ptanh(&pts).is_err());
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]
        #[test]
        fn fitted_curve_matches_generated_curve(
            e1 in 0.2..0.8f64,
            e2 in 0.1..0.45f64,
            e3 in 0.2..0.8f64,
            e4 in 1.0..20.0f64,
            rising in proptest::bool::ANY,
        ) {
            let truth = Ptanh { eta: [e1, if rising { e2 } else { -e2 }, e3, e4] };
            let pts: Vec<(f64, f64)> = (0..60)
                .map(|i| { let x = i as f64 / 59.0; (x, truth.eval(x)) })
                .collect();
            let fit = fit_ptanh(&pts).unwrap();
            // Compare curves pointwise: η itself can be non-identifiable.
            for i in 0..30 {
                let v = i as f64 / 29.0;
                prop_assert!(
                    (fit.curve.eval(v) - truth.eval(v)).abs() < 1e-3,
                    "mismatch at {} for eta {:?}: fit {:?}", v, truth.eta, fit.curve.eta
                );
            }
        }
    }
}
