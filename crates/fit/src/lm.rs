use crate::FitError;
use pnc_linalg::{Lu, Matrix};
use pnc_obs::{Counter, Histogram};

// Observability: one record per completed LM run, accumulated locally and
// flushed with a handful of atomic adds at the end so the inner damping loop
// stays untouched. Catalogued in docs/METRICS.md.
static OBS_RUNS: Counter = Counter::new("fit.lm.runs");
static OBS_ITERATIONS: Counter = Counter::new("fit.lm.iterations");
static OBS_LAMBDA_ESCALATIONS: Counter = Counter::new("fit.lm.lambda_escalations");
static OBS_NONCONVERGED: Counter = Counter::new("fit.lm.nonconverged");
static OBS_FINAL_COST: Histogram = Histogram::new("fit.lm.final_cost");

pub(crate) fn obs_register() {
    static ONCE: std::sync::Once = std::sync::Once::new();
    ONCE.call_once(|| {
        OBS_RUNS.register();
        OBS_ITERATIONS.register();
        OBS_LAMBDA_ESCALATIONS.register();
        OBS_NONCONVERGED.register();
        OBS_FINAL_COST.register();
    });
}

/// Options for the Levenberg–Marquardt solver.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LmOptions {
    /// Maximum number of accepted-or-rejected iterations.
    pub max_iterations: usize,
    /// Stop when the relative cost improvement falls below this.
    pub cost_tolerance: f64,
    /// Stop when the infinity norm of the step falls below this.
    pub step_tolerance: f64,
    /// Initial damping factor λ.
    pub initial_lambda: f64,
}

impl Default for LmOptions {
    fn default() -> Self {
        LmOptions {
            max_iterations: 200,
            cost_tolerance: 1e-14,
            step_tolerance: 1e-12,
            initial_lambda: 1e-3,
        }
    }
}

/// The outcome of a Levenberg–Marquardt run.
#[derive(Debug, Clone, PartialEq)]
pub struct LmResult {
    /// The best parameter vector found.
    pub params: Vec<f64>,
    /// Final cost `0.5 · ‖r‖²`.
    pub cost: f64,
    /// Iterations performed.
    pub iterations: usize,
    /// Whether a tolerance-based stop was reached (as opposed to running out
    /// of iterations).
    pub converged: bool,
}

/// Minimizes `0.5 · ‖r(p)‖²` by damped Gauss–Newton (Levenberg–Marquardt).
///
/// `model` maps a parameter vector to the residual vector `r` and the
/// Jacobian `J` with `J[(i, j)] = ∂r_i/∂p_j`. The residual length must be
/// constant across calls.
///
/// Damping uses the Marquardt diagonal scaling
/// `(JᵀJ + λ·diag(JᵀJ))·δ = −Jᵀr`, multiplying λ by 10 on a rejected step
/// and dividing by 10 on an accepted one.
///
/// # Errors
///
/// Returns [`FitError::InvalidData`] for an empty parameter vector or a
/// non-finite cost at the starting point, and [`FitError::Singular`] if the
/// damped normal equations stay singular even at very large λ (every damped
/// factorization in an inner loop failed).
///
/// When the inner damping loop exhausts its λ escalations without an
/// accepted step, the result distinguishes a genuine local optimum — the
/// smallest attempted step was below `step_tolerance`, reported as
/// `converged: true` — from giving up (a meaningful step existed but no
/// candidate improved the finite cost), reported as `converged: false`. A
/// `converged: true` result always carries a finite `cost`.
///
/// ```
/// use pnc_fit::{levenberg_marquardt, FitError, LmOptions};
/// use pnc_linalg::Matrix;
///
/// // NaN residuals at the starting point are rejected up front.
/// let err = levenberg_marquardt(&[1.0], LmOptions::default(), |p| {
///     (vec![f64::NAN * p[0]], Matrix::from_rows(&[&[1.0]]).unwrap())
/// });
/// assert!(matches!(err, Err(FitError::InvalidData { .. })));
/// ```
///
/// # Examples
///
/// Fit a line through two points:
///
/// ```
/// use pnc_fit::{levenberg_marquardt, LmOptions};
/// use pnc_linalg::Matrix;
///
/// # fn main() -> Result<(), pnc_fit::FitError> {
/// let data = [(0.0, 1.0), (1.0, 3.0)];
/// let result = levenberg_marquardt(
///     &[0.0, 0.0],
///     LmOptions::default(),
///     |p| {
///         let r: Vec<f64> = data.iter().map(|&(x, y)| p[0] + p[1] * x - y).collect();
///         let j = Matrix::from_fn(2, 2, |i, col| if col == 0 { 1.0 } else { data[i].0 });
///         (r, j)
///     },
/// )?;
/// assert!((result.params[0] - 1.0).abs() < 1e-9);
/// assert!((result.params[1] - 2.0).abs() < 1e-9);
/// # Ok(())
/// # }
/// ```
pub fn levenberg_marquardt(
    initial: &[f64],
    options: LmOptions,
    mut model: impl FnMut(&[f64]) -> (Vec<f64>, Matrix),
) -> Result<LmResult, FitError> {
    let n = initial.len();
    if n == 0 {
        return Err(FitError::InvalidData {
            detail: "empty parameter vector".into(),
        });
    }

    let mut params = initial.to_vec();
    let (mut residual, mut jacobian) = model(&params);
    let mut cost = 0.5 * residual.iter().map(|r| r * r).sum::<f64>();
    if !cost.is_finite() {
        return Err(FitError::InvalidData {
            detail: format!("initial cost is not finite ({cost})"),
        });
    }
    obs_register();
    let mut lambda = options.initial_lambda;
    let mut converged = false;
    let mut iterations = 0;
    let mut lambda_escalations: u64 = 0;
    // Hoisted scratch for the normal equations: the parameter count is fixed,
    // so the n×n system, the negated gradient, and the step vector are
    // allocated once and refilled every (re-damped) attempt.
    let mut jtj = Matrix::zeros(n, n);
    let mut damped = Matrix::zeros(n, n);
    let mut neg_g = vec![0.0; n];
    let mut step = vec![0.0; n];

    for iter in 0..options.max_iterations {
        iterations = iter + 1;

        // Normal equations: JᵀJ (without materializing Jᵀ) and −Jᵀr.
        if let Err(source) = jacobian.matmul_tn_into(&jacobian, &mut jtj) {
            return Err(FitError::Singular { source });
        }
        for (j, g) in neg_g.iter_mut().enumerate() {
            *g = -residual
                .iter()
                .enumerate()
                .map(|(i, r)| jacobian[(i, j)] * r)
                .sum::<f64>();
        }

        // Try steps with increasing damping until one is accepted or λ
        // explodes.
        let mut accepted = false;
        let mut last_singular = None;
        // Step norm of the least-damped solvable system: heavy damping
        // shrinks later steps toward zero regardless of the gradient, so only
        // the first attempt says whether a meaningful step existed.
        let mut first_step_norm = None;
        for _ in 0..30 {
            if let Err(source) = damped.copy_from(&jtj) {
                return Err(FitError::Singular { source });
            }
            for j in 0..n {
                // Marquardt scaling; fall back to absolute damping for zero
                // diagonal entries (parameters the residual ignores locally).
                let d = jtj[(j, j)];
                damped[(j, j)] = d + lambda * if d > 0.0 { d } else { 1.0 };
            }
            match Lu::factor(&damped).and_then(|lu| lu.solve_into(&neg_g, &mut step)) {
                Ok(()) => {}
                Err(source) => {
                    last_singular = Some(source);
                    lambda *= 10.0;
                    lambda_escalations += 1;
                    continue;
                }
            }
            let step_norm = step.iter().fold(0.0_f64, |m, s| m.max(s.abs()));
            first_step_norm.get_or_insert(step_norm);
            let candidate: Vec<f64> = params.iter().zip(&step).map(|(p, s)| p + s).collect();
            let (cand_res, cand_jac) = model(&candidate);
            let cand_cost = 0.5 * cand_res.iter().map(|r| r * r).sum::<f64>();

            if cand_cost.is_finite() && cand_cost < cost {
                let improvement = (cost - cand_cost) / cost.max(f64::MIN_POSITIVE);
                params = candidate;
                residual = cand_res;
                jacobian = cand_jac;
                cost = cand_cost;
                lambda = (lambda / 10.0).max(1e-12);
                accepted = true;
                if improvement < options.cost_tolerance || step_norm < options.step_tolerance {
                    converged = true;
                }
                break;
            }
            lambda *= 10.0;
            lambda_escalations += 1;
        }

        if !accepted {
            // The damping loop exhausted every λ escalation. Distinguish the
            // documented failure modes instead of claiming convergence:
            match first_step_norm {
                // Every damped factorization failed — the normal equations
                // are singular at any achievable damping.
                None => {
                    return match last_singular {
                        Some(source) => Err(FitError::Singular { source }),
                        // Unreachable by construction (no step norm means at
                        // least one solve failed), but degrade to an error
                        // rather than a panic.
                        None => Err(FitError::InvalidData {
                            detail: "damping loop made no step and recorded no solver failure"
                                .into(),
                        }),
                    };
                }
                // The least-damped proposed step already vanished: genuine
                // local optimum.
                Some(norm) if norm < options.step_tolerance => converged = true,
                // A meaningful step existed but nothing went downhill (e.g.
                // the model returns non-finite residuals nearby): give up
                // honestly rather than reporting convergence.
                Some(_) => break,
            }
        }
        if converged {
            break;
        }
    }

    OBS_RUNS.increment();
    OBS_ITERATIONS.add(iterations as u64);
    OBS_LAMBDA_ESCALATIONS.add(lambda_escalations);
    if !converged {
        OBS_NONCONVERGED.increment();
    }
    OBS_FINAL_COST.observe(cost);

    Ok(LmResult {
        params,
        cost,
        iterations,
        converged,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Exponential decay fit: a classic nonlinear test problem.
    #[test]
    fn fits_exponential_decay() {
        let truth = (2.5, 1.3);
        let xs: Vec<f64> = (0..30).map(|i| i as f64 * 0.1).collect();
        let data: Vec<(f64, f64)> = xs
            .iter()
            .map(|&x| (x, truth.0 * (-truth.1 * x).exp()))
            .collect();

        let result = levenberg_marquardt(&[1.0, 0.5], LmOptions::default(), |p| {
            let r: Vec<f64> = data
                .iter()
                .map(|&(x, y)| p[0] * (-p[1] * x).exp() - y)
                .collect();
            let j = Matrix::from_fn(data.len(), 2, |i, col| {
                let x = data[i].0;
                let e = (-p[1] * x).exp();
                if col == 0 {
                    e
                } else {
                    -p[0] * x * e
                }
            });
            (r, j)
        })
        .unwrap();

        assert!(result.converged);
        assert!((result.params[0] - truth.0).abs() < 1e-6);
        assert!((result.params[1] - truth.1).abs() < 1e-6);
        assert!(result.cost < 1e-15);
    }

    #[test]
    fn rosenbrock_valley() {
        // Rosenbrock as a residual problem: r = [10(y − x²), 1 − x].
        let result = levenberg_marquardt(
            &[-1.2, 1.0],
            LmOptions {
                max_iterations: 500,
                ..LmOptions::default()
            },
            |p| {
                let r = vec![10.0 * (p[1] - p[0] * p[0]), 1.0 - p[0]];
                let j = Matrix::from_rows(&[&[-20.0 * p[0], 10.0], &[-1.0, 0.0]]).unwrap();
                (r, j)
            },
        )
        .unwrap();
        assert!((result.params[0] - 1.0).abs() < 1e-6);
        assert!((result.params[1] - 1.0).abs() < 1e-6);
    }

    #[test]
    fn rejects_empty_parameters() {
        let err = levenberg_marquardt(&[], LmOptions::default(), |_| (vec![], Matrix::zeros(1, 1)));
        assert!(matches!(err, Err(FitError::InvalidData { .. })));
    }

    #[test]
    fn handles_insensitive_parameter() {
        // Second parameter does not influence the residual: JᵀJ is singular,
        // but Marquardt damping with the absolute fallback keeps it solvable.
        let result = levenberg_marquardt(&[0.0, 5.0], LmOptions::default(), |p| {
            let r = vec![p[0] - 3.0];
            let j = Matrix::from_rows(&[&[1.0, 0.0]]).unwrap();
            (r, j)
        })
        .unwrap();
        assert!((result.params[0] - 3.0).abs() < 1e-8);
        // Insensitive parameter stays where it started.
        assert!((result.params[1] - 5.0).abs() < 1e-8);
    }

    #[test]
    fn nan_initial_cost_is_rejected() {
        // A model that is NaN at the starting point must not "converge".
        let err = levenberg_marquardt(&[0.0], LmOptions::default(), |p| {
            let r = vec![if p[0] == 0.0 { f64::NAN } else { p[0] - 1.0 }];
            (r, Matrix::from_rows(&[&[1.0]]).unwrap())
        });
        match err {
            Err(FitError::InvalidData { detail }) => {
                assert!(detail.contains("initial cost"), "{detail}")
            }
            other => panic!("expected InvalidData, got {other:?}"),
        }
    }

    #[test]
    fn infinite_initial_cost_is_rejected() {
        let err = levenberg_marquardt(&[0.0], LmOptions::default(), |_| {
            (vec![f64::INFINITY], Matrix::from_rows(&[&[1.0]]).unwrap())
        });
        assert!(matches!(err, Err(FitError::InvalidData { .. })));
    }

    #[test]
    fn exhausted_damping_reports_not_converged() {
        // Finite at the start, NaN everywhere else: every candidate step is
        // rejected although the proposed steps are large. The solver must
        // give up honestly instead of claiming a tolerance-based stop.
        let result = levenberg_marquardt(&[0.0], LmOptions::default(), |p| {
            let r = vec![if p[0] == 0.0 { 1.0 } else { f64::NAN }];
            (r, Matrix::from_rows(&[&[1.0]]).unwrap())
        })
        .unwrap();
        assert!(!result.converged, "gave-up path must not claim convergence");
        assert!(result.cost.is_finite());
        assert_eq!(result.params, vec![0.0], "params stay at the best point");
        assert_eq!(result.iterations, 1, "one exhausted outer iteration");
    }

    #[test]
    fn persistently_singular_normal_equations_return_the_documented_error() {
        // A Jacobian so small that JᵀJ ≈ 1e-40 keeps the damped pivot under
        // the LU tolerance at every achievable λ: all 30 damped solves fail
        // and the documented `FitError::Singular` must surface (previously
        // this was silently reported as converged).
        let err = levenberg_marquardt(&[1.0], LmOptions::default(), |p| {
            let r = vec![1e-20 * p[0] - 1.0];
            (r, Matrix::from_rows(&[&[1e-20]]).unwrap())
        });
        assert!(matches!(err, Err(FitError::Singular { .. })), "{err:?}");
    }

    #[test]
    fn converged_never_pairs_with_nonfinite_cost() {
        // A model that degrades to NaN after improving for a while: whatever
        // the outcome, `converged` must imply a finite cost.
        let result = levenberg_marquardt(&[10.0], LmOptions::default(), |p| {
            let r = vec![if p[0].abs() < 5.0 { f64::NAN } else { p[0] }];
            (r, Matrix::from_rows(&[&[1.0]]).unwrap())
        })
        .unwrap();
        if result.converged {
            assert!(result.cost.is_finite());
        }
    }

    #[test]
    fn already_optimal_start_converges_immediately() {
        let result = levenberg_marquardt(&[3.0], LmOptions::default(), |p| {
            let r = vec![p[0] - 3.0];
            let j = Matrix::from_rows(&[&[1.0]]).unwrap();
            (r, j)
        })
        .unwrap();
        assert!(result.converged);
        assert!(result.cost < 1e-20);
        assert!(result.iterations <= 2);
    }
}
