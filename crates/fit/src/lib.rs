//! Nonlinear least-squares fitting for printed-circuit characteristic curves.
//!
//! The surrogate-modelling pipeline (Sec. III-A of the paper) extracts, for
//! every simulated nonlinear circuit, the auxiliary parameters
//! η = \[η₁, η₂, η₃, η₄\] of the modified tanh function
//!
//! ```text
//! ptanh(v) = η₁ + η₂ · tanh((v − η₃) · η₄)          (Eq. 2)
//! ```
//!
//! by minimizing the Euclidean distance to the simulated `(V_in, V_out)`
//! samples. This crate provides:
//!
//! * [`Ptanh`] — the curve model with analytic Jacobian,
//! * [`levenberg_marquardt`] — a generic damped Gauss–Newton solver over any
//!   residual model,
//! * [`fit_ptanh`] — the production entry point with data-driven
//!   initialization and multi-start fallback.
//!
//! # Examples
//!
//! ```
//! use pnc_fit::{fit_ptanh, Ptanh};
//!
//! # fn main() -> Result<(), pnc_fit::FitError> {
//! let truth = Ptanh { eta: [0.5, 0.4, 0.55, 6.0] };
//! let points: Vec<(f64, f64)> = (0..50)
//!     .map(|i| {
//!         let x = i as f64 / 49.0;
//!         (x, truth.eval(x))
//!     })
//!     .collect();
//! let fit = fit_ptanh(&points)?;
//! assert!(fit.rmse < 1e-4);
//! # Ok(())
//! # }
//! ```
//!
//! # Observability
//!
//! Completed LM runs and ptanh fits feed the `fit.*` counters and
//! histograms of `pnc-obs` (iterations, λ escalations, final cost, fit
//! RMSE) — see `docs/METRICS.md` at the workspace root.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod lm;
mod ptanh;

pub use lm::{levenberg_marquardt, LmOptions, LmResult};
pub use ptanh::{fit_ptanh, fit_ptanh_with, Ptanh, PtanhFit};

use std::fmt;

/// Error type for curve fitting.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum FitError {
    /// The input data were unusable (too few points, NaNs, zero variance in
    /// `x`).
    InvalidData {
        /// Human-readable description.
        detail: String,
    },
    /// The damped normal equations were singular beyond recovery.
    Singular {
        /// The underlying linear-algebra failure.
        source: pnc_linalg::LinalgError,
    },
}

impl fmt::Display for FitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FitError::InvalidData { detail } => write!(f, "invalid fit data: {detail}"),
            FitError::Singular { source } => write!(f, "singular normal equations: {source}"),
        }
    }
}

impl std::error::Error for FitError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            FitError::Singular { source } => Some(source),
            _ => None,
        }
    }
}
