//! Workspace discovery: which files to analyze, what crate and target kind
//! each belongs to, and the documentation set to cross-check.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use crate::docs::{DocFile, Docs};
use crate::source::{FileKind, SourceFile};

/// The loaded workspace, ready for [`crate::engine::analyze`].
#[derive(Debug)]
pub struct Workspace {
    /// Workspace root directory.
    pub root: PathBuf,
    /// Every analyzed source file, sorted by path.
    pub files: Vec<SourceFile>,
    /// Cross-check documents.
    pub docs: Docs,
}

/// Directory names never descended into.
const SKIP_DIRS: &[&str] = &["vendor", "target", ".git", "fixtures"];

/// Loads every analyzable `.rs` file under `root` plus the cross-check
/// documents. `vendor/` (third-party stand-ins), `target/`, and test
/// `fixtures/` are excluded.
pub fn load(root: &Path) -> io::Result<Workspace> {
    let mut files = Vec::new();

    // Root package: src/, tests/, examples/.
    let root_pkg = package_name(root).unwrap_or_else(|| "root".to_string());
    collect_target_dir(
        root,
        &root.join("src"),
        &root_pkg,
        TargetDir::Src,
        &mut files,
    )?;
    collect_target_dir(
        root,
        &root.join("tests"),
        &root_pkg,
        TargetDir::Tests,
        &mut files,
    )?;
    collect_target_dir(
        root,
        &root.join("examples"),
        &root_pkg,
        TargetDir::Examples,
        &mut files,
    )?;

    // Member crates under crates/.
    let crates_dir = root.join("crates");
    if crates_dir.is_dir() {
        let mut members: Vec<PathBuf> = fs::read_dir(&crates_dir)?
            .filter_map(|e| e.ok())
            .map(|e| e.path())
            .filter(|p| p.is_dir())
            .collect();
        members.sort();
        for member in members {
            let name = package_name(&member).unwrap_or_else(|| {
                format!(
                    "pnc-{}",
                    member
                        .file_name()
                        .map(|n| n.to_string_lossy().into_owned())
                        .unwrap_or_default()
                )
            });
            collect_target_dir(root, &member.join("src"), &name, TargetDir::Src, &mut files)?;
            collect_target_dir(
                root,
                &member.join("tests"),
                &name,
                TargetDir::Tests,
                &mut files,
            )?;
            collect_target_dir(
                root,
                &member.join("benches"),
                &name,
                TargetDir::Benches,
                &mut files,
            )?;
            collect_target_dir(
                root,
                &member.join("examples"),
                &name,
                TargetDir::Examples,
                &mut files,
            )?;
        }
    }

    files.sort_by(|a, b| a.path.cmp(&b.path));

    let docs = Docs {
        metrics: load_doc(root, "docs/METRICS.md"),
        readme: load_doc(root, "README.md"),
    };
    Ok(Workspace {
        root: root.to_path_buf(),
        files,
        docs,
    })
}

fn load_doc(root: &Path, rel: &str) -> Option<DocFile> {
    let text = fs::read_to_string(root.join(rel)).ok()?;
    Some(DocFile {
        path: rel.to_string(),
        text,
    })
}

/// Reads `name = "…"` from a directory's Cargo.toml `[package]` section.
fn package_name(dir: &Path) -> Option<String> {
    let manifest = fs::read_to_string(dir.join("Cargo.toml")).ok()?;
    let mut in_package = false;
    for line in manifest.lines() {
        let line = line.trim();
        if line.starts_with('[') {
            in_package = line == "[package]";
            continue;
        }
        if in_package {
            if let Some(rest) = line.strip_prefix("name") {
                let rest = rest.trim_start().strip_prefix('=')?.trim();
                return Some(rest.trim_matches('"').to_string());
            }
        }
    }
    None
}

#[derive(Clone, Copy, PartialEq)]
enum TargetDir {
    Src,
    Tests,
    Benches,
    Examples,
}

fn collect_target_dir(
    root: &Path,
    dir: &Path,
    crate_name: &str,
    target: TargetDir,
    out: &mut Vec<SourceFile>,
) -> io::Result<()> {
    if !dir.is_dir() {
        return Ok(());
    }
    let mut stack = vec![dir.to_path_buf()];
    while let Some(current) = stack.pop() {
        let mut entries: Vec<PathBuf> = fs::read_dir(&current)?
            .filter_map(|e| e.ok())
            .map(|e| e.path())
            .collect();
        entries.sort();
        for path in entries {
            if path.is_dir() {
                let name = path
                    .file_name()
                    .map(|n| n.to_string_lossy().into_owned())
                    .unwrap_or_default();
                if !SKIP_DIRS.contains(&name.as_str()) {
                    stack.push(path);
                }
            } else if path.extension().is_some_and(|e| e == "rs") {
                let rel = relative_path(root, &path);
                let kind = classify(&rel, target);
                let text = fs::read_to_string(&path)?;
                out.push(SourceFile::parse(&rel, crate_name, kind, &text));
            }
        }
    }
    Ok(())
}

/// Workspace-relative `/`-separated path for stable, OS-independent output.
fn relative_path(root: &Path, path: &Path) -> String {
    let rel = path.strip_prefix(root).unwrap_or(path);
    rel.components()
        .map(|c| c.as_os_str().to_string_lossy())
        .collect::<Vec<_>>()
        .join("/")
}

fn classify(rel: &str, target: TargetDir) -> FileKind {
    match target {
        TargetDir::Tests => FileKind::Test,
        TargetDir::Benches => FileKind::Bench,
        TargetDir::Examples => FileKind::Example,
        TargetDir::Src => {
            if rel.ends_with("src/lib.rs") {
                FileKind::CrateRoot
            } else if rel.ends_with("src/main.rs") || rel.contains("/src/bin/") {
                FileKind::Bin
            } else {
                FileKind::Lib
            }
        }
    }
}

/// Walks upward from `start` to find the workspace root: the first
/// directory whose `Cargo.toml` declares `[workspace]`.
pub fn find_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start.to_path_buf());
    while let Some(d) = dir {
        let manifest = d.join("Cargo.toml");
        if let Ok(text) = fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(d);
            }
        }
        dir = d.parent().map(Path::to_path_buf);
    }
    None
}
