//! A lexed source file plus the structure the rules need: which crate it
//! belongs to, what kind of target it is, which line ranges are
//! `#[cfg(test)]` code, and which `pnc-lint: allow(...)` suppressions it
//! carries.

use crate::lexer::{lex, Token, TokenKind};
use crate::scope::{parse_fns, FnItem};

/// What kind of compilation target a file belongs to. Rules use this to
/// scope themselves (e.g. panic-freedom applies to libraries and binaries,
/// not to tests or benches).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FileKind {
    /// A crate root (`src/lib.rs`).
    CrateRoot,
    /// Library code under `src/`.
    Lib,
    /// Binary code (`src/main.rs`, `src/bin/*`).
    Bin,
    /// Integration tests under `tests/`.
    Test,
    /// Benchmarks under `benches/`.
    Bench,
    /// Examples under `examples/`.
    Example,
}

impl FileKind {
    /// True for targets that ship as part of the library/binary surface
    /// (i.e. not tests, benches, or examples).
    pub fn is_shipping(self) -> bool {
        matches!(self, FileKind::CrateRoot | FileKind::Lib | FileKind::Bin)
    }
}

/// An inline suppression comment:
/// `// pnc-lint: allow(<rule>) — <reason>`.
///
/// A suppression silences findings of `rule` on its own line and on the
/// immediately following line (so it can sit at the end of the offending
/// line or on its own line directly above it). The em dash may also be
/// written `--` or `:`; the reason is mandatory.
#[derive(Debug, Clone)]
pub struct Suppression {
    /// Rule id the suppression targets.
    pub rule: String,
    /// Why the finding is acceptable here (required).
    pub reason: String,
    /// 1-based line of the comment.
    pub line: u32,
    /// 1-based column of the comment.
    pub col: u32,
}

/// A malformed suppression comment (missing reason, bad syntax); reported
/// as a finding by the engine so suppressions stay auditable.
#[derive(Debug, Clone)]
pub struct BadSuppression {
    /// What is wrong with it.
    pub message: String,
    /// 1-based line of the comment.
    pub line: u32,
    /// 1-based column of the comment.
    pub col: u32,
}

/// One file of the workspace, lexed and classified.
#[derive(Debug)]
pub struct SourceFile {
    /// Workspace-relative path with `/` separators (stable across OSes).
    pub path: String,
    /// Package name owning the file (e.g. `pnc-core`), or the root package
    /// name for `src/`, `tests/`, `examples/` at the workspace root.
    pub crate_name: String,
    /// Target classification.
    pub kind: FileKind,
    /// Token stream (comments included).
    pub tokens: Vec<Token>,
    /// Function items found by the scope parser (document order).
    pub fns: Vec<FnItem>,
    /// Inclusive 1-based line ranges covered by `#[cfg(test)] mod { … }`.
    pub test_spans: Vec<(u32, u32)>,
    /// Well-formed suppressions found in comments.
    pub suppressions: Vec<Suppression>,
    /// Malformed suppression comments.
    pub bad_suppressions: Vec<BadSuppression>,
}

impl SourceFile {
    /// Lexes `text` and extracts test spans and suppressions.
    pub fn parse(path: &str, crate_name: &str, kind: FileKind, text: &str) -> SourceFile {
        let tokens = lex(text);
        let test_spans = find_test_spans(&tokens);
        let (suppressions, bad_suppressions) = find_suppressions(&tokens);
        let fns = parse_fns(&tokens);
        SourceFile {
            path: path.to_string(),
            crate_name: crate_name.to_string(),
            kind,
            tokens,
            fns,
            test_spans,
            suppressions,
            bad_suppressions,
        }
    }

    /// True when `line` belongs to test code: the whole file is a test
    /// target, or the line falls inside a `#[cfg(test)]` module.
    pub fn is_test_line(&self, line: u32) -> bool {
        matches!(self.kind, FileKind::Test | FileKind::Bench)
            || self
                .test_spans
                .iter()
                .any(|&(start, end)| (start..=end).contains(&line))
    }

    /// Iterator over code tokens (skipping comments) with their indices into
    /// `self.tokens`.
    pub fn code_tokens(&self) -> impl Iterator<Item = (usize, &Token)> {
        self.tokens.iter().enumerate().filter(|(_, t)| t.is_code())
    }
}

/// Finds `#[cfg(test)]` (or `#[cfg(any(test, …))]`) attributes followed by a
/// `mod name { … }` and returns the brace-matched line ranges.
fn find_test_spans(tokens: &[Token]) -> Vec<(u32, u32)> {
    let code: Vec<(usize, &Token)> = tokens
        .iter()
        .enumerate()
        .filter(|(_, t)| t.is_code())
        .collect();
    let mut spans = Vec::new();
    let mut i = 0usize;
    while i < code.len() {
        if is_cfg_test_attr(&code, i) {
            // Skip to the closing `]` of the attribute.
            let mut j = i + 1; // at `[`
            let mut depth = 0i32;
            while j < code.len() {
                if code[j].1.is_punct('[') {
                    depth += 1;
                } else if code[j].1.is_punct(']') {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                j += 1;
            }
            // Skip any further attributes between cfg(test) and the item.
            let mut k = j + 1;
            while k + 1 < code.len() && code[k].1.is_punct('#') && code[k + 1].1.is_punct('[') {
                let mut depth = 0i32;
                k += 1;
                while k < code.len() {
                    if code[k].1.is_punct('[') {
                        depth += 1;
                    } else if code[k].1.is_punct(']') {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    k += 1;
                }
                k += 1;
            }
            // Expect `mod ident {` (also tolerate `pub mod`).
            if k < code.len() && code[k].1.is_ident("pub") {
                k += 1;
            }
            if k < code.len() && code[k].1.is_ident("mod") {
                // Find the opening brace, then match it.
                let mut b = k + 1;
                while b < code.len() && !code[b].1.is_punct('{') && !code[b].1.is_punct(';') {
                    b += 1;
                }
                if b < code.len() && code[b].1.is_punct('{') {
                    let start_line = code[i].1.line;
                    let mut depth = 0i32;
                    let mut e = b;
                    while e < code.len() {
                        if code[e].1.is_punct('{') {
                            depth += 1;
                        } else if code[e].1.is_punct('}') {
                            depth -= 1;
                            if depth == 0 {
                                break;
                            }
                        }
                        e += 1;
                    }
                    let end_line = if e < code.len() {
                        code[e].1.line
                    } else {
                        u32::MAX
                    };
                    spans.push((start_line, end_line));
                    i = e;
                }
            }
        }
        i += 1;
    }
    spans
}

/// True when the code-token sequence at `i` starts `#[cfg(` … `test` … `)]`.
fn is_cfg_test_attr(code: &[(usize, &Token)], i: usize) -> bool {
    if !(code[i].1.is_punct('#')
        && i + 3 < code.len()
        && code[i + 1].1.is_punct('[')
        && code[i + 2].1.is_ident("cfg")
        && code[i + 3].1.is_punct('('))
    {
        return false;
    }
    // Look for a bare `test` ident before the attribute closes.
    let mut depth = 0i32;
    let mut j = i + 1;
    while j < code.len() {
        if code[j].1.is_punct('[') {
            depth += 1;
        } else if code[j].1.is_punct(']') {
            depth -= 1;
            if depth == 0 {
                break;
            }
        } else if code[j].1.is_ident("test") {
            return true;
        }
        j += 1;
    }
    false
}

/// The marker that introduces a suppression comment.
const MARKER: &str = "pnc-lint:";

/// Scans comment tokens for suppression markers.
fn find_suppressions(tokens: &[Token]) -> (Vec<Suppression>, Vec<BadSuppression>) {
    let mut good = Vec::new();
    let mut bad = Vec::new();
    for tok in tokens {
        if !matches!(tok.kind, TokenKind::LineComment | TokenKind::BlockComment) {
            continue;
        }
        let body = tok
            .text
            .trim_start_matches('/')
            .trim_start_matches('*')
            .trim_end_matches('/')
            .trim_end_matches('*')
            .trim();
        let Some(rest) = body.strip_prefix(MARKER) else {
            // Catch near-misses like `pnc-lint allow(...)` so typos do not
            // silently fail to suppress; prose that merely mentions the
            // marker mid-comment is left alone.
            if body.starts_with("pnc-lint") && body.contains("allow") {
                bad.push(BadSuppression {
                    message: format!(
                        "malformed suppression (expected `{MARKER} allow(<rule>) — <reason>`)"
                    ),
                    line: tok.line,
                    col: tok.col,
                });
            }
            continue;
        };
        match parse_allow(rest.trim()) {
            Ok((rule, reason)) => good.push(Suppression {
                rule,
                reason,
                line: tok.line,
                col: tok.col,
            }),
            Err(message) => bad.push(BadSuppression {
                message,
                line: tok.line,
                col: tok.col,
            }),
        }
    }
    (good, bad)
}

/// Parses `allow(<rule>) — <reason>` (separator `—`, `--`, or `:`).
fn parse_allow(s: &str) -> Result<(String, String), String> {
    let Some(rest) = s.strip_prefix("allow") else {
        return Err(format!(
            "unknown pnc-lint directive (expected `{MARKER} allow(<rule>) — <reason>`)"
        ));
    };
    let rest = rest.trim_start();
    let Some(rest) = rest.strip_prefix('(') else {
        return Err("missing `(` after `allow`".to_string());
    };
    let Some(close) = rest.find(')') else {
        return Err("missing `)` in suppression".to_string());
    };
    let rule = rest[..close].trim();
    if rule.is_empty() {
        return Err("empty rule id in suppression".to_string());
    }
    let mut reason = rest[close + 1..].trim();
    for sep in ["—", "--", ":", "-"] {
        if let Some(stripped) = reason.strip_prefix(sep) {
            reason = stripped.trim();
            break;
        }
    }
    if reason.is_empty() {
        return Err(format!(
            "suppression for `{rule}` has no reason — write `{MARKER} allow({rule}) — <why this is sound>`"
        ));
    }
    Ok((rule.to_string(), reason.to_string()))
}
