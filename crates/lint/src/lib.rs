//! # pnc-lint — workspace-invariant static analysis
//!
//! A from-scratch, zero-dependency, token-level static analyzer for this
//! workspace's own source. It enforces the three contracts the paper
//! reproduction depends on and that `cargo test` can only spot-check at
//! runtime:
//!
//! * **Determinism** — results are bit-identical at any `PNC_NUM_THREADS`.
//!   Statically that means: no wall-clock reads in numeric paths
//!   (`no-wallclock`), no hash-ordered iteration in numeric crates
//!   (`no-hash-iteration`), and no scheduling-dependent float reductions in
//!   rayon chains (`ordered-reduction`).
//! * **Panic-freedom** — shipping code returns `Result` instead of
//!   aborting (`no-panic-in-lib`, ratcheted down via a checked-in
//!   baseline), and every crate keeps `#![forbid(unsafe_code)]`
//!   (`forbid-unsafe-kept`).
//! * **Doc/code consistency** — metric names match `docs/METRICS.md` 1:1
//!   (`metric-key-drift`) and every `PNC_…` environment variable read is in
//!   the README table (`env-var-registry`).
//!
//! On top of the flat token rules, a structural layer ([`scope`],
//! [`fingerprint`], [`callgraph`], [`structural`]) adds four rules that
//! reason about extents instead of lines:
//!
//! * **`oracle-freeze`** — the registry in `lint_baseline.json` pins
//!   content hashes of the designated oracle fns (`matmul_reference`,
//!   `backward_reference`, `newton_dense`); any body edit is a finding
//!   until re-frozen with `update-oracles --justify`.
//! * **`panic-reachability`** — walks the workspace call graph from every
//!   `pub` library fn to residual panic sites (including `[]` indexing in
//!   the input-facing crates) and reports the shortest call path.
//! * **`lock-across-blocking`** — a `MutexGuard` live across TCP/file I/O
//!   or `Condvar::wait` in `pnc-serve`.
//! * **`unordered-float-reduction`** — deferred parallel chains and
//!   captured `+=` accumulators that bypass the ordered helpers, where the
//!   line-local `ordered-reduction` rule cannot see the flow.
//!
//! The analyzer lexes (never fully parses) Rust: a small lexer
//! distinguishes code from comments, strings, raw strings, char literals,
//! and lifetimes; a brace-matched scope parser recovers fn/impl/mod
//! extents; and the rules are explicit token-pattern matches. That keeps
//! the whole subsystem dependency-free (no `syn`), fast, and simple to
//! audit. False positives are handled with inline suppressions that must
//! carry a reason; stale suppressions are themselves findings.
//!
//! The rule catalogue with examples lives in `docs/LINTS.md`; the
//! architecture notes are DESIGN.md §10. Run it as:
//!
//! ```text
//! cargo run -p pnc-lint -- check            # gate: nonzero exit on new findings
//! cargo run -p pnc-lint -- report           # everything, including suppressed
//! cargo run -p pnc-lint -- update-baseline  # re-ratchet after paying down debt
//! cargo run -p pnc-lint -- update-oracles --justify "<why>"  # re-freeze oracles
//! cargo run -p pnc-lint -- rules            # list rule ids and summaries
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod baseline;
pub mod callgraph;
pub mod diag;
pub mod docs;
pub mod engine;
pub mod fingerprint;
pub mod lexer;
pub mod report;
pub mod rules;
pub mod scope;
pub mod source;
pub mod structural;
pub mod workspace;

pub use diag::{Finding, Status};
pub use source::{FileKind, SourceFile};
